(* OptRouter command-line interface.

   Subcommands mirror the paper's flow: [gen] harvests difficult clips
   from a synthetic design, [route] solves clips optimally under a rule
   configuration, [sweep] reproduces the Δcost evaluation, [pincost]
   ranks clips, [show] renders them, and [cells] prints the per-technology
   pin shapes of Figure 9. *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Cells = Optrouter_cells.Cells
module Design = Optrouter_design.Design
module Extract = Optrouter_clips.Extract
module Pin_cost = Optrouter_clips.Pin_cost
module Clipfile = Optrouter_clipfile.Clipfile
module Formulate = Optrouter_core.Formulate
module Optrouter_drv = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route
module Maze = Optrouter_maze.Maze
module Sweep = Optrouter_eval.Sweep
module Global = Optrouter_global.Global
module Pool = Optrouter_exec.Pool
module Experiments = Optrouter_eval.Experiments
module Report = Optrouter_report.Report
module Milp = Optrouter_ilp.Milp
module Simplex = Optrouter_ilp.Simplex
module Lp_file = Optrouter_ilp.Lp_file
module Lp_audit = Optrouter_analysis.Lp_audit
module Source_lint = Optrouter_analysis.Source_lint
module Par_lint = Optrouter_analysis.Par_lint
module Serve = Optrouter_serve.Serve

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let tech_conv =
  let parse s =
    match Tech.by_name s with
    | t -> Ok t
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown technology %S (try N28-12T, N28-8T, N7-9T)" s))
  in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf t.Tech.name)

let tech_arg =
  Arg.(
    value
    & opt tech_conv Tech.n28_12t
    & info [ "tech" ] ~docv:"NAME" ~doc:"Technology preset (N28-12T, N28-8T, N7-9T).")

let rule_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n -> ( match Rules.rule n with r -> Ok r | exception Invalid_argument m -> Error (`Msg m))
    | None -> Error (`Msg "rule must be a number 1..14")
  in
  Arg.conv (parse, fun ppf (r : Rules.t) -> Format.pp_print_string ppf r.Rules.name)

let rule_arg =
  Arg.(
    value
    & opt rule_conv (Rules.rule 1)
    & info [ "rule" ] ~docv:"N"
        ~doc:
          "BEOL rule configuration RULEn (1..11, Table 3; 12..14 add the \
           DSA via-coloring family).")

let objective_conv =
  let parse s =
    match Rules.objective_of_name (String.lowercase_ascii s) with
    | Ok o -> Ok o
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf o -> Format.pp_print_string ppf (Rules.objective_name o))

let objective_arg =
  Arg.(
    value
    & opt objective_conv Rules.Wirelength
    & info [ "objective" ] ~docv:"OBJ"
        ~env:(Cmd.Env.info "OPTROUTER_OBJECTIVE")
        ~doc:
          "ILP objective: $(b,wirelength) (the paper's combined cost, the \
           default), $(b,via-count) (count via instances alone) or \
           $(b,via-weighted:W) (re-weight the via edges by W). Under sweep \
           the baseline and every rule solve share the objective and the \
           dcost column is measured in it.")

let time_limit_arg =
  Arg.(
    value
    & opt float 30.0
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:"Wall-clock time limit per ILP solve.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "OPTROUTER_JOBS")
        ~doc:
          "Fan independent ILP solves over $(docv) domains. Results are \
           identical to a serial run.")

let pricing_conv =
  let parse s =
    match Simplex.pricing_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Simplex.pricing_name p))

let pricing_arg =
  Arg.(
    value
    & opt (some pricing_conv) None
    & info [ "pricing" ] ~docv:"RULE"
        ~env:(Cmd.Env.info "OPTROUTER_PRICING")
        ~doc:
          "Simplex pricing rule: $(b,devex) (reference-weight partial \
           pricing, the default) or $(b,dantzig) (full most-negative scan). \
           Every rule proves the same optimum; only iteration counts and \
           speed change.")

let solve_mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "exact" -> Ok Optrouter_drv.Exact
    | "lagrangian" -> Ok Optrouter_drv.Lagrangian
    | other ->
      Error
        (`Msg
          (Printf.sprintf "unknown solve mode %S (exact or lagrangian)" other))
  in
  Arg.conv
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
          | Optrouter_drv.Exact -> "exact"
          | Optrouter_drv.Lagrangian -> "lagrangian") )

let solve_mode_arg =
  Arg.(
    value
    & opt solve_mode_conv Optrouter_drv.Exact
    & info [ "solve-mode" ] ~docv:"MODE"
        ~env:(Cmd.Env.info "OPTROUTER_SOLVE_MODE")
        ~doc:
          "Solve engine: $(b,exact) (build the full ILP and prove the \
           optimum, the default) or $(b,lagrangian) (sub-gradient \
           decomposition: per-net subproblems priced in parallel, a valid \
           dual bound, and a DRC-certified near-optimal routing with a \
           reported optimality gap — for clips beyond the exact solver's \
           reach).")

let solver_jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "solver-jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "OPTROUTER_SOLVER_JOBS")
        ~doc:
          "Run each branch-and-bound search on $(docv) worker domains. \
           Proved optima are identical to a serial solve; only node counts \
           and times change. Under sweep $(b,-j), solves only widen while \
           pool domains are idle (two-level scheduling).")

let clips_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"CLIPS" ~doc:"Clip file (see the clipfile format in the docs).")

let load_clips path =
  match Clipfile.read_file path with
  | Ok clips -> clips
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 1

let config_of ?(reuse = true) ?(audit = false) ?(solver_jobs = 1) ?pricing
    ?(solve_mode = Optrouter_drv.Exact) ~time_limit () =
  let simplex =
    match pricing with
    | None -> Simplex.make_params ()
    | Some pricing -> Simplex.make_params ~pricing ()
  in
  let milp =
    Milp.make_params ~max_nodes:200_000 ~time_limit_s:time_limit ~solver_jobs
      ~simplex ()
  in
  if audit then
    Optrouter_drv.make_config ~milp ~solve_mode ~seed_reuse:reuse
      ~audit:(Lp_audit.hook ()) ()
  else Optrouter_drv.make_config ~milp ~solve_mode ~seed_reuse:reuse ()

let audit_flag =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Run the model auditor on every formulation before solving and \
           abort on audit errors. Fast-path solves build no formulation and \
           are not audited.")

let no_reuse_arg =
  Arg.(
    value & flag
    & info [ "no-reuse" ]
        ~doc:
          "Disable the baseline-reuse fast path: re-solve every (clip, \
           rule) ILP from scratch instead of re-checking / re-encoding the \
           RULE1 baseline routing. Entries are identical either way; only \
           solver effort changes.")

(* ---- route ---- *)

let do_route tech rules objective time_limit solver_jobs pricing solve_mode
    audit lp_out route_out path () =
  let clips = load_clips path in
  let rules = Rules.with_objective objective rules in
  let config =
    config_of ~audit ~solver_jobs ?pricing ~solve_mode ~time_limit ()
  in
  List.iteri
    (fun i clip ->
      (match lp_out with
      | Some base ->
        let g = Graph.build ~tech ~rules clip in
        let form = Formulate.build ~rules g in
        let file = Printf.sprintf "%s.%d.lp" base i in
        Lp_file.write_file file (Formulate.lp form);
        Printf.printf "wrote %s\n" file
      | None -> ());
      let result = Optrouter_drv.route ~config ~tech ~rules clip in
      (match (route_out, result.Optrouter_drv.verdict) with
      | ( Some base,
          ( Optrouter_drv.Routed sol
          | Optrouter_drv.Limit (Some sol)
          | Optrouter_drv.Near_optimal sol ) ) ->
        let g = Graph.build ~tech ~rules clip in
        let file = Printf.sprintf "%s.%d.route" base i in
        Optrouter_clipfile.Routefile.write_file file g sol;
        Printf.printf "wrote %s\n" file
      | Some _, (Optrouter_drv.Unroutable | Optrouter_drv.Limit None) | None, _
        -> ());
      let stats = result.Optrouter_drv.stats in
      match result.Optrouter_drv.verdict with
      | Optrouter_drv.Routed sol ->
        Printf.printf
          "%s under %s: cost=%d wirelength=%d vias=%d (vars=%d rows=%d nodes=%d %.2fs)\n"
          clip.Clip.c_name rules.Rules.name sol.Route.metrics.cost
          sol.Route.metrics.wirelength sol.Route.metrics.vias
          stats.Optrouter_drv.sizes.Formulate.vars
          stats.Optrouter_drv.sizes.Formulate.rows stats.Optrouter_drv.nodes
          stats.Optrouter_drv.elapsed_s
      | Optrouter_drv.Unroutable ->
        Printf.printf "%s under %s: UNROUTABLE (%.2fs)\n" clip.Clip.c_name
          rules.Rules.name stats.Optrouter_drv.elapsed_s
      | Optrouter_drv.Limit _ ->
        Printf.printf "%s under %s: LIMIT after %.2fs (%d nodes)\n"
          clip.Clip.c_name rules.Rules.name stats.Optrouter_drv.elapsed_s
          stats.Optrouter_drv.nodes
      | Optrouter_drv.Near_optimal sol ->
        let gap_txt, dual_txt =
          match stats.Optrouter_drv.lagrangian with
          | Some ls ->
            ( (match ls.Optrouter_drv.lag_gap with
              | Some gp -> Printf.sprintf " gap<=%.2f%%" (100.0 *. gp)
              | None -> ""),
              Printf.sprintf " dual>=%.0f" ls.Optrouter_drv.dual_bound )
          | None -> ("", "")
        in
        Printf.printf
          "%s under %s: NEAR-OPTIMAL cost=%d wirelength=%d vias=%d%s%s \
           (%.2fs)\n"
          clip.Clip.c_name rules.Rules.name sol.Route.metrics.cost
          sol.Route.metrics.wirelength sol.Route.metrics.vias gap_txt dual_txt
          stats.Optrouter_drv.elapsed_s)
    clips

let lp_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lp-out" ] ~docv:"BASE" ~doc:"Also dump each clip's ILP as BASE.i.lp.")

let route_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "route-out" ] ~docv:"BASE"
        ~doc:"Write each routed solution as BASE.i.route.")

let route_cmd =
  let doc = "Route clips optimally under a rule configuration." in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const do_route $ tech_arg $ rule_arg $ objective_arg $ time_limit_arg
      $ solver_jobs_arg $ pricing_arg $ solve_mode_arg $ audit_flag
      $ lp_out_arg $ route_out_arg $ clips_file_arg $ logs_term)

(* ---- sweep ---- *)

let do_sweep tech objective time_limit jobs solver_jobs pricing solve_mode
    no_reuse audit csv_out path () =
  let clips = load_clips path in
  let config =
    config_of ~reuse:(not no_reuse) ~audit ~solver_jobs ?pricing ~solve_mode
      ~time_limit ()
  in
  (* Baseline and rule solves share the objective — the zero-Δ fast path
     is only a proof when both optimise the same thing. *)
  let rules =
    List.map (Rules.with_objective objective) (Experiments.rules_for tech)
  in
  let baseline = Rules.with_objective objective (Rules.rule 1) in
  let telemetry = ref Sweep.empty_telemetry in
  let on_entry =
    if Sys.getenv_opt "OPTROUTER_PROGRESS" = None then None
    else
      Some
        (fun (e : Sweep.entry) ->
          Printf.eprintf "[sweep] %s %s: %s\n%!" e.Sweep.clip_name
            e.Sweep.rule_name
            (match e.Sweep.delta with
            | Sweep.Delta d -> Printf.sprintf "dcost %d" d
            | Sweep.Infeasible -> "unroutable"
            | Sweep.Limit -> "limit"))
  in
  let entries =
    Pool.with_pool ~domains:jobs (fun pool ->
        Sweep.sweep ~config ~pool ~telemetry ?on_entry ~baseline ~tech ~rules
          clips)
  in
  (match csv_out with
  | Some file ->
    Report.Csv.write_file file
      ~header:[ "clip"; "rule"; "base_cost"; "cost"; "dcost" ]
      (List.map
         (fun (e : Sweep.entry) ->
           [
             e.Sweep.clip_name;
             e.Sweep.rule_name;
             string_of_int e.Sweep.base_cost;
             (match e.Sweep.cost with Some c -> string_of_int c | None -> "");
             Printf.sprintf "%.0f" (Sweep.delta_value e.Sweep.delta);
           ])
         entries);
    Printf.printf "wrote %s\n" file
  | None -> ());
  let rows =
    List.map
      (fun (e : Sweep.entry) ->
        [
          e.Sweep.clip_name;
          e.Sweep.rule_name;
          string_of_int e.Sweep.base_cost;
          (match e.Sweep.cost with Some c -> string_of_int c | None -> "-");
          (match e.Sweep.delta with
          | Sweep.Delta d -> string_of_int d
          | Sweep.Infeasible -> "infeasible"
          | Sweep.Limit -> "limit");
        ])
      entries
  in
  print_string
    (Report.Table.render
       ~header:[ "clip"; "rule"; "cost(RULE1)"; "cost"; "dcost" ]
       rows);
  print_string
    (Report.Series.plot ~y_label:"sorted dcost per rule" (Sweep.series entries));
  print_string (Sweep.render_telemetry !telemetry)

let sweep_cmd =
  let doc = "Evaluate all applicable RULEs on clips and report Δcost." in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the entries as CSV.")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const do_sweep $ tech_arg $ objective_arg $ time_limit_arg $ jobs_arg
      $ solver_jobs_arg $ pricing_arg $ solve_mode_arg $ no_reuse_arg
      $ audit_flag $ csv_out $ clips_file_arg $ logs_term)

(* ---- gen ---- *)

let do_gen tech profile_name util scale seed top paper out () =
  let profile =
    match String.lowercase_ascii profile_name with
    | "aes" -> Design.aes
    | "m0" -> Design.m0
    | other ->
      Printf.eprintf "error: unknown profile %S (aes or m0)\n" other;
      exit 1
  in
  let profile = Experiments.scaled_profile scale profile in
  let d = Design.generate ~seed profile ~util tech in
  Printf.printf "%s\n" (Format.asprintf "%a" Design.pp d);
  let params =
    if paper then Extract.paper_params tech else Extract.reduced_params
  in
  let clips = Extract.windows params d in
  Printf.printf "extracted %d clips\n" (List.length clips);
  let ranked = Extract.top_k top clips in
  Clipfile.write_file out (List.map fst ranked);
  Printf.printf "wrote top %d clips (by pin cost) to %s\n" (List.length ranked) out

let gen_cmd =
  let doc = "Generate a synthetic design and write its most difficult clips." in
  let profile =
    Arg.(value & opt string "aes" & info [ "profile" ] ~docv:"NAME" ~doc:"aes or m0")
  in
  let util =
    Arg.(value & opt float 0.92 & info [ "util" ] ~docv:"U" ~doc:"Target utilisation.")
  in
  let scale =
    Arg.(
      value & opt float 0.03
      & info [ "scale" ] ~docv:"S" ~doc:"Instance count scale factor vs Table 2.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Keep the K hardest clips.")
  in
  let paper =
    Arg.(
      value & flag
      & info [ "paper-size" ]
          ~doc:"Use paper-size windows (7x10 tracks, 8 layers) instead of reduced ones.")
  in
  let out =
    Arg.(
      value & opt string "clips.txt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output clip file.")
  in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(
      const do_gen $ tech_arg $ profile $ util $ scale $ seed $ top $ paper $ out
      $ logs_term)

(* ---- pincost ---- *)

let do_pincost path () =
  let clips = load_clips path in
  let rows =
    List.map
      (fun c ->
        [
          c.Clip.c_name;
          string_of_int (Clip.num_pins c);
          Printf.sprintf "%.2f" (Pin_cost.pec c);
          Printf.sprintf "%.2f" (Pin_cost.pac c);
          Printf.sprintf "%.2f" (Pin_cost.prc c);
          Printf.sprintf "%.2f" (Pin_cost.total c);
        ])
      clips
  in
  print_string
    (Report.Table.render ~header:[ "clip"; "pins"; "PEC"; "PAC"; "PRC"; "total" ] rows)

let pincost_cmd =
  let doc = "Rank clips by the pin cost metric (PEC + PAC + PRC)." in
  Cmd.v (Cmd.info "pincost" ~doc)
    Term.(const do_pincost $ clips_file_arg $ logs_term)

(* ---- show ---- *)

let render_clip (c : Clip.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Format.asprintf "%a@." Clip.pp c);
  let grid = Array.make_matrix c.Clip.rows c.Clip.cols '.' in
  List.iteri
    (fun k (net : Clip.net) ->
      let ch = Char.chr (Char.code 'a' + (k mod 26)) in
      List.iter
        (fun (pin : Clip.pin) ->
          List.iter (fun (x, y) -> grid.(y).(x) <- ch) pin.Clip.access)
        net.Clip.pins)
    c.Clip.nets;
  List.iter (fun (x, y, z) -> if z = 0 then grid.(y).(x) <- 'X') c.Clip.obstructions;
  for y = c.Clip.rows - 1 downto 0 do
    for x = 0 to c.Clip.cols - 1 do
      Buffer.add_char buf grid.(y).(x);
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let do_show path () =
  List.iter (fun c -> print_string (render_clip c)) (load_clips path)

let show_cmd =
  let doc = "Render clips as ASCII (access points on M2)." in
  Cmd.v (Cmd.info "show" ~doc) Term.(const do_show $ clips_file_arg $ logs_term)

(* ---- cells ---- *)

let do_cells tech () =
  List.iter
    (fun c -> print_endline (Cells.render tech c))
    (Cells.library tech)

let cells_cmd =
  let doc = "Print the synthetic cell library's pin layouts (Figure 9)." in
  Cmd.v (Cmd.info "cells" ~doc) Term.(const do_cells $ tech_arg $ logs_term)

(* ---- baseline ---- *)

let do_baseline tech rules path () =
  let clips = load_clips path in
  List.iter
    (fun clip ->
      let g = Graph.build ~tech ~rules clip in
      let r = Maze.route ~rules g in
      match r.Maze.solution with
      | Some sol ->
        Printf.printf "%s under %s (heuristic): cost=%d wirelength=%d vias=%d\n"
          clip.Clip.c_name rules.Rules.name sol.Route.metrics.cost
          sol.Route.metrics.wirelength sol.Route.metrics.vias
      | None ->
        Printf.printf "%s under %s (heuristic): FAILED\n" clip.Clip.c_name
          rules.Rules.name)
    clips

let baseline_cmd =
  let doc = "Route clips with the heuristic baseline router." in
  Cmd.v (Cmd.info "baseline" ~doc)
    Term.(const do_baseline $ tech_arg $ rule_arg $ clips_file_arg $ logs_term)

(* ---- global: congestion view of a generated design ---- *)

let do_global tech profile_name util scale seed () =
  let profile =
    match String.lowercase_ascii profile_name with
    | "aes" -> Design.aes
    | "m0" -> Design.m0
    | other ->
      Printf.eprintf "error: unknown profile %S (aes or m0)\n" other;
      exit 1
  in
  let profile = Experiments.scaled_profile scale profile in
  let d = Design.generate ~seed profile ~util tech in
  Printf.printf "%s\n" (Format.asprintf "%a" Design.pp d);
  let params = Extract.reduced_params in
  let gr =
    Global.route ~cell_w:params.Extract.window_cols
      ~cell_h:params.Extract.window_rows d
  in
  let ngx, ngy = Global.grid_size gr in
  let c = Global.congestion gr in
  Printf.printf
    "global routing over %dx%d gcells: %d/%d boundaries used, peak %d, %d over capacity\n\n"
    ngx ngy c.Global.used_edges c.Global.total_edges c.Global.max_usage
    c.Global.overflowed;
  print_string (Global.render_congestion gr)

let global_cmd =
  let doc = "Globally route a generated design and print its congestion map." in
  let profile =
    Arg.(value & opt string "aes" & info [ "profile" ] ~docv:"NAME" ~doc:"aes or m0")
  in
  let util =
    Arg.(value & opt float 0.92 & info [ "util" ] ~docv:"U" ~doc:"Target utilisation.")
  in
  let scale =
    Arg.(
      value & opt float 0.05
      & info [ "scale" ] ~docv:"S" ~doc:"Instance count scale factor vs Table 2.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "global" ~doc)
    Term.(const do_global $ tech_arg $ profile $ util $ scale $ seed $ logs_term)

(* ---- audit: static verification of every formulation, no solving ---- *)

let do_audit tech json_out verbose path () =
  let clips = load_clips path in
  let rules = Experiments.rules_for tech in
  let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
  let reports = ref [] in
  let nforms = ref 0 in
  List.iter
    (fun clip ->
      List.iter
        (fun (r : Rules.t) ->
          incr nforms;
          let g = Graph.build ~tech ~rules:r clip in
          let form = Formulate.build ~rules:r g in
          let ds = Lp_audit.audit ~rules:r form in
          errors := !errors + Lp_audit.error_count ds;
          warnings := !warnings + List.length (Lp_audit.by_severity Lp_audit.Warning ds);
          infos := !infos + List.length (Lp_audit.by_severity Lp_audit.Info ds);
          reports :=
            Lp_audit.to_json
              ~meta:
                [
                  ("clip", Report.Json.String clip.Clip.c_name);
                  ("rule", Report.Json.String r.Rules.name);
                ]
              ds
            :: !reports;
          let shown =
            if verbose then ds else Lp_audit.by_severity Lp_audit.Error ds
          in
          if shown <> [] then begin
            Printf.printf "%s under %s:\n" clip.Clip.c_name r.Rules.name;
            print_string (Lp_audit.render shown)
          end)
        rules)
    clips;
  (match json_out with
  | Some file ->
    Report.Json.write_file file
      (Report.Json.Obj
         [
           ("tech", Report.Json.String tech.Tech.name);
           ("formulations", Report.Json.Int !nforms);
           ("errors", Report.Json.Int !errors);
           ("warnings", Report.Json.Int !warnings);
           ("infos", Report.Json.Int !infos);
           ("reports", Report.Json.List (List.rev !reports));
         ]);
    Printf.printf "wrote %s\n" file
  | None -> ());
  Printf.printf
    "audited %d formulations (%d clips x %d rules): %d errors, %d warnings, %d infos\n"
    !nforms (List.length clips) (List.length rules) !errors !warnings !infos;
  if !errors > 0 then exit 1

let audit_cmd =
  let doc =
    "Statically audit the ILP formulation of every (clip, applicable rule) \
     pair without solving: structure, conditioning, redundancy and \
     rule-coverage checks. Exits 1 when any error-level diagnostic is found."
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the full report as JSON.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Print warning- and info-level diagnostics too, not just errors.")
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(const do_audit $ tech_arg $ json_out $ verbose $ clips_file_arg $ logs_term)

(* ---- lint: source lints over the project tree ---- *)

let do_lint par json_out expect_dirty paths () =
  let count, output =
    if par then begin
      let findings = Par_lint.lint_paths paths in
      ( List.length findings,
        if json_out then Par_lint.to_json findings ^ "\n"
        else Par_lint.render findings )
    end
    else begin
      let findings = Source_lint.lint_paths paths in
      (List.length findings, Source_lint.render findings)
    end
  in
  print_string output;
  if expect_dirty then begin
    if count = 0 then begin
      prerr_endline "lint: expected findings, found none";
      exit 1
    end;
    Printf.printf "%d finding(s), as expected\n" count
  end
  else if count > 0 then begin
    Printf.eprintf "lint: %d finding(s)\n" count;
    exit 1
  end

let lint_cmd =
  let doc =
    "Lint every .ml file under the given paths: by default the source \
     lints (L-rules: float conversions, float equality, catch-all \
     handlers, toplevel mutable state, determinism hazards); with \
     $(b,--par) the domain-safety lints (P-rules: unguarded cross-domain \
     mutation, atomic read-test-set windows, loopless condition waits, \
     blocking under a mutex, mixed lock discipline). Exits 1 when any \
     finding is reported, or — with $(b,--expect-dirty) — when none is."
  in
  let par =
    Arg.(
      value & flag
      & info [ "par" ] ~doc:"Run the domain-safety P-rules instead of the L-rules.")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the report as JSON (domain-safety lint only).")
  in
  let expect_dirty =
    Arg.(
      value & flag
      & info [ "expect-dirty" ]
          ~doc:
            "Reverse the exit convention: succeed only when findings are \
             reported. Lets CI assert known-bad fixtures stay detected.")
  in
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const do_lint $ par $ json_out $ expect_dirty $ paths $ logs_term)

(* ---- solve-lp: the MILP solver as a standalone utility ---- *)

let read_text_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let do_solve_lp time_limit solver_jobs pricing warm_basis basis_out path () =
  match Lp_file.read_file path with
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 1
  | Ok lp ->
    let has_integers =
      Array.exists
        (fun (v : Optrouter_ilp.Lp.var) -> v.Optrouter_ilp.Lp.kind = Optrouter_ilp.Lp.Integer)
        lp.Optrouter_ilp.Lp.vars
    in
    let print_point x =
      Array.iteri
        (fun j (v : Optrouter_ilp.Lp.var) ->
          if Float.abs x.(j) > 1e-9 then
            Printf.printf "  %s = %g\n" v.Optrouter_ilp.Lp.v_name x.(j))
        lp.Optrouter_ilp.Lp.vars
    in
    let basis =
      match warm_basis with
      | None -> None
      | Some file -> (
        match Simplex.Basis.of_string lp (read_text_file file) with
        | Ok (b, fixup) ->
          if fixup = `Patched then
            Printf.eprintf "note: warm basis %s repaired to fit %s\n" file path;
          Some b
        | Error msg ->
          Printf.eprintf "error: %s: %s\n" file msg;
          exit 1)
    in
    let simplex_params =
      match (basis, pricing) with
      | None, None -> Simplex.make_params ()
      | Some basis, None -> Simplex.make_params ~basis ()
      | None, Some pricing -> Simplex.make_params ~pricing ()
      | Some basis, Some pricing -> Simplex.make_params ~basis ~pricing ()
    in
    let write_basis b =
      match basis_out with
      | None -> ()
      | Some file ->
        Report.write_atomic file (Simplex.Basis.to_string lp b);
        Printf.printf "wrote %s\n" file
    in
    if has_integers then begin
      let params =
        Milp.make_params ~time_limit_s:time_limit ~solver_jobs
          ~simplex:simplex_params ()
      in
      let r = Milp.solve ?root_basis:basis ~params lp in
      (match r.Milp.root_basis with Some b -> write_basis b | None -> ());
      match r.Milp.outcome with
      | Milp.Proved_optimal ->
        Printf.printf "optimal: %g (%d nodes)\n" r.Milp.objective r.Milp.nodes;
        print_point r.Milp.x
      | Milp.Feasible ->
        Printf.printf "feasible (limit hit): %g, bound %g\n" r.Milp.objective
          r.Milp.best_bound;
        print_point r.Milp.x
      | Milp.Infeasible -> print_endline "infeasible"
      | Milp.Unbounded -> print_endline "unbounded"
      | Milp.Unknown ->
        Printf.printf "unknown (limit hit), bound %g\n" r.Milp.best_bound
    end
    else begin
      let r = Simplex.solve ~params:simplex_params lp in
      match r.Simplex.status with
      | Simplex.Optimal ->
        write_basis r.Simplex.basis;
        Printf.printf "optimal: %g (%d iterations, %d bound flips)\n"
          r.Simplex.objective r.Simplex.iterations r.Simplex.bound_flips;
        print_point r.Simplex.x
      | Simplex.Infeasible -> print_endline "infeasible"
      | Simplex.Unbounded -> print_endline "unbounded"
    end

let solve_lp_cmd =
  let doc = "Solve an LP/MILP from an LP-format file with the bundled solver." in
  let lp_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.lp")
  in
  let warm_basis =
    Arg.(
      value
      & opt (some file) None
      & info [ "warm-basis" ] ~docv:"FILE"
          ~doc:
            "Warm-start the (root) LP from a basis file previously written \
             by $(b,--basis-out). Statuses are matched by name, so the \
             basis may come from a structurally different LP; mismatches \
             are repaired.")
  in
  let basis_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "basis-out" ] ~docv:"FILE"
          ~doc:
            "Write the optimal (root-)LP basis in the textual basis format \
             for later $(b,--warm-basis) reuse.")
  in
  Cmd.v (Cmd.info "solve-lp" ~doc)
    Term.(
      const do_solve_lp $ time_limit_arg $ solver_jobs_arg $ pricing_arg
      $ warm_basis $ basis_out $ lp_file $ logs_term)

(* ---- serve / request ---- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to serve on / connect to.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port on 127.0.0.1 to serve on / connect to.")

let do_serve socket port cache_dir cache_capacity jobs solver_jobs batch queue
    time_limit pricing () =
  let listeners =
    (match socket with Some p -> [ Serve.Unix_socket p ] | None -> [])
    @ (match port with Some p -> [ Serve.Tcp p ] | None -> [])
  in
  if listeners = [] then begin
    Printf.eprintf "error: give --socket PATH and/or --port PORT\n";
    exit 2
  end;
  let config = config_of ~solver_jobs ?pricing ~time_limit () in
  let params =
    Serve.make_params ?cache_dir ~cache_capacity ~jobs ~solver_jobs
      ~batch_size:batch ~queue_capacity:queue ~time_limit_s:time_limit ~config
      ()
  in
  let t = Serve.create params in
  Fun.protect
    ~finally:(fun () -> Serve.destroy t)
    (fun () -> Serve.run t listeners)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for the on-disk result-cache tier (created if missing). \
           Without it the cache is memory-only.")

let cache_capacity_arg =
  Arg.(
    value
    & opt int 512
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"In-memory result-cache capacity (LRU entries).")

let batch_arg =
  Arg.(
    value
    & opt int 8
    & info [ "batch" ] ~docv:"N"
        ~doc:"Max requests handed to the worker pool at once.")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Pending-request bound. When full, the daemon stops reading from \
           connections until solves drain (backpressure).")

let serve_time_limit_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "time-limit" ] ~docv:"SECONDS"
        ~doc:
          "Server-side cap (and default) for per-request deadlines; a \
           request's $(b,deadline) header can only shorten it.")

let serve_cmd =
  let doc = "Run the routing daemon (routing as a service)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Accepts clip-route requests over a Unix-domain socket and/or a \
         loopback TCP port, batches them onto the two-level worker-pool \
         engine, and answers repeated traffic from a content-addressed \
         result cache (in-memory LRU plus an optional on-disk tier). \
         Cache-hit answers are byte-identical to a fresh solve; only \
         proven results are cached.";
      `P
        "Send $(b,optrouter-shutdown) on a connection (or use $(b,optrouter \
         request --shutdown)) to drain and stop the daemon.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const do_serve $ socket_arg $ port_arg $ cache_dir_arg
      $ cache_capacity_arg $ jobs_arg $ solver_jobs_arg $ batch_arg
      $ queue_arg $ serve_time_limit_arg $ pricing_arg $ logs_term)

let do_request socket port rule tech deadline no_cache stats shutdown path () =
  let listener =
    match (socket, port) with
    | Some p, None -> Serve.Unix_socket p
    | None, Some p -> Serve.Tcp p
    | Some _, Some _ ->
      Printf.eprintf "error: give either --socket or --port, not both\n";
      exit 2
    | None, None ->
      Printf.eprintf "error: give --socket PATH or --port PORT\n";
      exit 2
  in
  if path = None && not (stats || shutdown) then begin
    Printf.eprintf
      "error: nothing to do: give a clip file, --stats or --shutdown\n";
    exit 2
  end;
  let fd = Serve.connect listener in
  let failed = ref false in
  (* Per-request status and timing go to stderr; stdout carries only the
     result payloads, so two runs of the same request can be compared
     byte-for-byte (the CI smoke test does exactly that). *)
  (match path with
  | None -> ()
  | Some path ->
    let clips = load_clips path in
    List.iter
      (fun clip ->
        let msg =
          Serve.text_request ?tech ?deadline_s:deadline ~no_cache ~rule
            (Clipfile.to_string clip)
        in
        match Serve.parse_response (Serve.roundtrip fd msg) with
        | Ok (status, payload) ->
          (match status with
          | Some s -> Printf.eprintf "%s\n" (Serve.status_line s)
          | None -> ());
          print_string payload
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          failed := true)
      clips);
  if stats then print_string (Serve.roundtrip fd (Serve.stats_line ^ "\n"));
  if shutdown then
    print_string (Serve.roundtrip fd (Serve.shutdown_line ^ "\n"));
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  if !failed then exit 1

let rule_num_arg =
  Arg.(
    value
    & opt int 1
    & info [ "rule" ] ~docv:"N"
        ~doc:"BEOL rule configuration RULEn (1..14) to request.")

let req_tech_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tech" ] ~docv:"NAME"
        ~doc:
          "Technology preset to request (defaults to each clip's own tech \
           line).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-request deadline; the server caps it at its own \
           $(b,--time-limit).")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ask the server to solve even when the result is cached.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the server's cache/serve counters.")

let shutdown_flag =
  Arg.(
    value & flag
    & info [ "shutdown" ] ~doc:"Ask the daemon to drain and stop.")

let req_clips_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"CLIPS"
        ~doc:"Clip file; each clip becomes one request.")

let request_cmd =
  let doc = "Send routing requests to a running daemon." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to an $(b,optrouter serve) daemon, sends one request per \
         clip in the file, and prints each result payload on stdout (the \
         cache-status line of every reply goes to stderr, so payloads of \
         repeated runs can be compared byte-for-byte).";
    ]
  in
  Cmd.v (Cmd.info "request" ~doc ~man)
    Term.(
      const do_request $ socket_arg $ port_arg $ rule_num_arg $ req_tech_arg
      $ deadline_arg $ no_cache_flag $ stats_flag $ shutdown_flag
      $ req_clips_arg $ logs_term)

let main_cmd =
  let doc = "optimal ILP-based detailed router for BEOL design-rule evaluation" in
  Cmd.group
    (Cmd.info "optrouter" ~version:"1.0.0" ~doc)
    [
      route_cmd; sweep_cmd; audit_cmd; lint_cmd; gen_cmd; pincost_cmd;
      show_cmd; cells_cmd; baseline_cmd; solve_lp_cmd; global_cmd;
      serve_cmd; request_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
