(* Project source lints (see Optrouter_analysis.Source_lint for the
   L-rules and Optrouter_analysis.Par_lint for the P-rules).

   Usage: lint [--par] [--json] [--expect-dirty] PATH...

   Lints every .ml file under the given files/directories. By default
   the L-rules (source lint) run; with [--par] the P-rules
   (domain-safety lint) run instead. Exits 0 when clean and 1 when any
   finding is reported — or, with [--expect-dirty], the reverse, which
   lets CI assert that the known-bad fixtures are still detected
   without hand-maintaining expected output. *)

module Source_lint = Optrouter_analysis.Source_lint
module Par_lint = Optrouter_analysis.Par_lint

let () =
  let expect_dirty = ref false in
  let par = ref false in
  let json = ref false in
  let paths = ref [] in
  let args = List.tl (Array.to_list Sys.argv) in
  List.iter
    (fun arg ->
      match arg with
      | "--expect-dirty" -> expect_dirty := true
      | "--par" -> par := true
      | "--json" -> json := true
      | "--help" | "-h" ->
        print_endline "usage: lint [--par] [--json] [--expect-dirty] PATH...";
        print_endline "lints every .ml file under PATH...; codes:";
        List.iter
          (fun (code, doc) -> Printf.printf "  %s  %s\n" code doc)
          Source_lint.codes;
        List.iter
          (fun (code, doc) -> Printf.printf "  %s  %s\n" code doc)
          Par_lint.codes;
        exit 0
      | _ -> paths := arg :: !paths)
    args;
  if !paths = [] then begin
    prerr_endline "lint: no paths given (try --help)";
    exit 2
  end;
  let paths = List.rev !paths in
  let count, output =
    if !par then begin
      let findings = Par_lint.lint_paths paths in
      ( List.length findings,
        if !json then Par_lint.to_json findings ^ "\n"
        else Par_lint.render findings )
    end
    else begin
      let findings = Source_lint.lint_paths paths in
      (List.length findings, Source_lint.render findings)
    end
  in
  print_string output;
  if !expect_dirty then
    if count = 0 then begin
      prerr_endline "lint: expected findings, found none";
      exit 1
    end
    else begin
      Printf.printf "%d finding(s), as expected\n" count;
      exit 0
    end
  else if count > 0 then begin
    Printf.eprintf "lint: %d finding(s)\n" count;
    exit 1
  end
