(* Project source lint (see Optrouter_analysis.Source_lint for the rules).

   Usage: lint [--expect-dirty] PATH...

   Lints every .ml file under the given files/directories. Exits 0 when
   clean and 1 when any finding is reported — or, with [--expect-dirty],
   the reverse, which lets CI assert that the known-bad fixture is still
   detected without hand-maintaining expected output. *)

module Source_lint = Optrouter_analysis.Source_lint

let () =
  let expect_dirty = ref false in
  let paths = ref [] in
  let args = List.tl (Array.to_list Sys.argv) in
  List.iter
    (fun arg ->
      match arg with
      | "--expect-dirty" -> expect_dirty := true
      | "--help" | "-h" ->
        print_endline "usage: lint [--expect-dirty] PATH...";
        print_endline "lints every .ml file under PATH...; codes:";
        List.iter
          (fun (code, doc) -> Printf.printf "  %s  %s\n" code doc)
          Source_lint.codes;
        exit 0
      | _ -> paths := arg :: !paths)
    args;
  if !paths = [] then begin
    prerr_endline "lint: no paths given (try --help)";
    exit 2
  end;
  let findings = Source_lint.lint_paths (List.rev !paths) in
  print_string (Source_lint.render findings);
  if !expect_dirty then
    if findings = [] then begin
      prerr_endline "lint: expected findings, found none";
      exit 1
    end
    else begin
      Printf.printf "%d finding(s), as expected\n" (List.length findings);
      exit 0
    end
  else if findings <> [] then begin
    Printf.eprintf "lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
