(* Tests for the synthetic fabric: cell library, design generation, clip
   extraction, pin cost, the heuristic maze router, and the clip file
   format. *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Cells = Optrouter_cells.Cells
module Design = Optrouter_design.Design
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc
module Extract = Optrouter_clips.Extract
module Pin_cost = Optrouter_clips.Pin_cost
module Clipfile = Optrouter_clipfile.Clipfile
module Maze = Optrouter_maze.Maze
module Rect = Optrouter_geom.Rect
module Global = Optrouter_global.Global

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

let test_cells_library_per_tech () =
  List.iter
    (fun tech ->
      let lib = Cells.library tech in
      Alcotest.(check bool) "non-empty" true (List.length lib >= 8);
      List.iter
        (fun (c : Cells.t) ->
          Alcotest.(check bool) (c.Cells.c_name ^ " has pins") true (c.Cells.pins <> []);
          Alcotest.(check bool)
            (c.Cells.c_name ^ " has an output") true
            (Cells.outputs c <> []);
          List.iter
            (fun (p : Cells.pin) ->
              Alcotest.(check bool)
                (c.Cells.c_name ^ "." ^ p.Cells.p_name ^ " access points in cell")
                true
                (List.for_all
                   (fun (x, y) ->
                     x >= 0 && x < c.Cells.width_cols && y >= 1
                     && y <= tech.Tech.cell_height_tracks - 2)
                   p.Cells.offsets))
            c.Cells.pins)
        lib)
    Tech.all

let test_cells_n7_has_two_close_access_points () =
  let nand = Cells.nand2 Tech.n7_9t in
  List.iter
    (fun (p : Cells.pin) ->
      Alcotest.(check int)
        ("input pin " ^ p.Cells.p_name)
        2
        (List.length p.Cells.offsets);
      match p.Cells.offsets with
      | [ (_, y1); (_, y2) ] -> Alcotest.(check int) "adjacent rows" 1 (abs (y1 - y2))
      | _ -> Alcotest.fail "expected two offsets")
    (Cells.inputs nand)

let test_cells_n28_12t_has_more_access () =
  let ap tech =
    Cells.inputs (Cells.nand2 tech)
    |> List.map (fun (p : Cells.pin) -> List.length p.Cells.offsets)
    |> List.fold_left min max_int
  in
  Alcotest.(check bool) "12T > 8T" true (ap Tech.n28_12t > ap Tech.n28_8t);
  Alcotest.(check bool) "8T > 7nm" true (ap Tech.n28_8t > ap Tech.n7_9t)

let test_cells_render () =
  let s = Cells.render Tech.n28_12t (Cells.nand2 Tech.n28_12t) in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 0 && String.sub s 0 7 = "NAND2X1");
  Alcotest.(check bool) "has power rails" true (String.contains s '=');
  Alcotest.(check bool) "has pin A" true (String.contains s 'A')

(* ------------------------------------------------------------------ *)
(* Design generation                                                   *)
(* ------------------------------------------------------------------ *)

let small_profile = { Design.aes with Design.instance_count = 300 }

(* The generator's RNG seed is derived from the profile name through the
   stable digest, not [Hashtbl.hash] (whose value is unspecified and
   changed across OCaml releases — a silent reshuffle of every generated
   design). Pin the exact values so any change to the helper is loud.
   [""]'s digest is MD5's canonical empty-input vector, cross-checking
   that the helper is plain MD5 and not something homegrown. *)
let test_stable_digest_pinned () =
  Alcotest.(check string)
    "md5(\"\") canonical vector" "d41d8cd98f00b204e9800998ecf8427e"
    (Optrouter_hash.Stable.digest_hex "");
  Alcotest.(check string)
    "digest of AES profile name" "76b7593457e2ab50befe2dcd63cf388f"
    (Optrouter_hash.Stable.digest_hex "AES");
  Alcotest.(check int) "seed of AES profile name" 1991727412
    (Optrouter_hash.Stable.seed "AES");
  Alcotest.(check int) "seed of M0 profile name" 2216815828
    (Optrouter_hash.Stable.seed "M0")

(* With the seed pinned above, the generated design itself is pinned:
   record a few coarse facts so a digest change (or any other placement
   reshuffle) fails here rather than only in downstream clip harvests. *)
let test_design_pinned_shape () =
  let d = Design.generate ~seed:5 small_profile ~util:0.9 Tech.n28_12t in
  let first = d.Design.instances.(0) in
  Alcotest.(check int) "instance count" 300 (Array.length d.Design.instances);
  Alcotest.(check int) "net count" 205 (Array.length d.Design.nets);
  Alcotest.(check int) "first instance col" 57 first.Design.col;
  Alcotest.(check int) "first instance band" 5 first.Design.band

let test_design_deterministic () =
  let d1 = Design.generate ~seed:5 small_profile ~util:0.9 Tech.n28_12t in
  let d2 = Design.generate ~seed:5 small_profile ~util:0.9 Tech.n28_12t in
  Alcotest.(check int) "same nets" (Array.length d1.Design.nets)
    (Array.length d2.Design.nets);
  Alcotest.(check bool) "same placement" true
    (Array.for_all2
       (fun (a : Design.instance) (b : Design.instance) ->
         a.Design.col = b.Design.col && a.Design.band = b.Design.band)
       d1.Design.instances d2.Design.instances)

let test_design_utilization () =
  List.iter
    (fun util ->
      let d = Design.generate ~seed:1 small_profile ~util Tech.n28_8t in
      Alcotest.(check bool)
        (Printf.sprintf "achieved util near target %.2f (got %.2f)" util
           d.Design.achieved_util)
        true
        (Float.abs (d.Design.achieved_util -. util) < 0.08))
    [ 0.85; 0.9; 0.95 ]

let test_design_no_overlaps () =
  let d = Design.generate ~seed:3 small_profile ~util:0.92 Tech.n28_12t in
  let by_band = Hashtbl.create 16 in
  Array.iter
    (fun (inst : Design.instance) ->
      let old = Option.value ~default:[] (Hashtbl.find_opt by_band inst.Design.band) in
      Hashtbl.replace by_band inst.Design.band (inst :: old))
    d.Design.instances;
  Hashtbl.iter
    (fun _band insts ->
      let sorted =
        List.sort
          (fun (a : Design.instance) b -> Int.compare a.Design.col b.Design.col)
          insts
      in
      let rec check = function
        | (a : Design.instance) :: (b :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true
            (a.Design.col + a.Design.cell.Cells.width_cols <= b.Design.col);
          check rest
        | [ _ ] | [] -> ()
      in
      check sorted)
    by_band

let test_design_nets_wellformed () =
  let d = Design.generate ~seed:3 small_profile ~util:0.92 Tech.n28_12t in
  Alcotest.(check bool) "has nets" true (Array.length d.Design.nets > 50);
  let seen_inputs = Hashtbl.create 64 in
  Array.iter
    (fun (net : Design.dnet) ->
      Alcotest.(check bool) "has loads" true (net.Design.loads <> []);
      List.iter
        (fun (c : Design.conn) ->
          let key = (c.Design.inst, c.Design.pin) in
          Alcotest.(check bool) "input pin used once" false
            (Hashtbl.mem seen_inputs key);
          Hashtbl.replace seen_inputs key ())
        net.Design.loads)
    d.Design.nets

let test_design_pin_positions_in_extent () =
  let d = Design.generate ~seed:3 small_profile ~util:0.92 Tech.n7_9t in
  let cols, rows = Design.extent d in
  Array.iter
    (fun (net : Design.dnet) ->
      List.iter
        (fun conn ->
          List.iter
            (fun (x, y) ->
              Alcotest.(check bool) "in extent" true
                (x >= 0 && x < cols && y >= 0 && y < rows))
            (Design.access_positions d conn))
        (net.Design.driver :: net.Design.loads))
    d.Design.nets

(* ------------------------------------------------------------------ *)
(* Pin cost                                                            *)
(* ------------------------------------------------------------------ *)

let shaped_pin name (x, y) area_side =
  {
    Clip.p_name = name;
    access = [ (x, y) ];
    shape =
      Some
        (Rect.make ~xlo:(x * 136) ~ylo:(y * 100) ~xhi:((x * 136) + area_side)
           ~yhi:((y * 100) + area_side));
  }

let test_pin_cost_monotone_in_pins () =
  let mk n =
    Clip.make ~cols:6 ~rows:6 ~layers:2
      [
        {
          Clip.n_name = "n";
          pins = List.init n (fun i -> shaped_pin (Printf.sprintf "p%d" i) (i, i) 60);
        };
      ]
  in
  Alcotest.(check bool) "more pins cost more" true
    (Pin_cost.total (mk 4) > Pin_cost.total (mk 2))

let test_pin_cost_smaller_pins_cost_more () =
  let mk side =
    Clip.make ~cols:6 ~rows:6 ~layers:2
      [
        {
          Clip.n_name = "n";
          pins = [ shaped_pin "a" (0, 0) side; shaped_pin "b" (3, 3) side ];
        };
      ]
  in
  Alcotest.(check bool) "small pins are costlier" true
    (Pin_cost.pac (mk 40) > Pin_cost.pac (mk 200))

let test_pin_cost_closer_pins_cost_more () =
  let mk d =
    Clip.make ~cols:6 ~rows:6 ~layers:2
      [
        {
          Clip.n_name = "n";
          pins = [ shaped_pin "a" (0, 0) 60; shaped_pin "b" (d, d) 60 ];
        };
      ]
  in
  Alcotest.(check bool) "close pins are costlier" true
    (Pin_cost.prc (mk 1) > Pin_cost.prc (mk 5))

let test_pin_cost_port_pins_count_in_pec_only () =
  let with_port =
    Clip.make ~cols:6 ~rows:6 ~layers:2
      [
        {
          Clip.n_name = "n";
          pins =
            [
              shaped_pin "a" (0, 0) 60;
              shaped_pin "b" (3, 3) 60;
              { Clip.p_name = "port"; access = [ (5, 5) ]; shape = None };
            ];
        };
      ]
  in
  Alcotest.(check int) "PEC counts ports" 3
    (int_of_float (Pin_cost.pec with_port))

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let test_extract_windows () =
  let d = Design.generate ~seed:2 small_profile ~util:0.92 Tech.n28_8t in
  let clips = Extract.windows Extract.reduced_params d in
  Alcotest.(check bool) "clips extracted" true (List.length clips > 3);
  List.iter
    (fun c ->
      (match Clip.validate c with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("invalid clip: " ^ m));
      Alcotest.(check bool) "net cap respected" true
        (Clip.num_nets c <= Extract.reduced_params.Extract.max_nets))
    clips

let test_extract_top_k_sorted () =
  let d = Design.generate ~seed:2 small_profile ~util:0.92 Tech.n28_8t in
  let clips = Extract.windows Extract.reduced_params d in
  let ranked = Extract.top_k 5 clips in
  Alcotest.(check bool) "at most 5" true (List.length ranked <= 5);
  let costs = List.map snd ranked in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a >= b && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "descending" true (sorted costs)

let test_extract_paper_params_dimensions () =
  let p = Extract.paper_params Tech.n28_12t in
  Alcotest.(check int) "7 columns" 7 p.Extract.window_cols;
  Alcotest.(check int) "10 rows" 10 p.Extract.window_rows;
  Alcotest.(check int) "8 layers" 8 p.Extract.layers

(* ------------------------------------------------------------------ *)
(* Maze router                                                         *)
(* ------------------------------------------------------------------ *)

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }

let test_maze_routes_simple () =
  let c = Clip.make ~cols:4 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (3, 0) ] in
  let g = Graph.build ~tech:Tech.n28_12t ~rules:(Rules.rule 1) c in
  let r = Maze.route ~rules:(Rules.rule 1) g in
  match r.Maze.solution with
  | Some sol ->
    Alcotest.(check int) "straight wire" 3 sol.Route.metrics.cost;
    Alcotest.(check int) "drc clean" 0
      (List.length (Drc.check ~rules:(Rules.rule 1) g sol))
  | None -> Alcotest.fail "maze failed on a trivial clip"

let test_maze_multi_pin () =
  let c =
    Clip.make ~cols:5 ~rows:3 ~layers:2
      [
        {
          Clip.n_name = "a";
          pins = [ pin "s" [ (0, 0) ]; pin "t1" [ (4, 0) ]; pin "t2" [ (2, 2) ] ];
        };
      ]
  in
  let g = Graph.build ~tech:Tech.n28_12t ~rules:(Rules.rule 1) c in
  let r = Maze.route ~rules:(Rules.rule 1) g in
  match r.Maze.solution with
  | Some sol ->
    Alcotest.(check int) "drc clean" 0
      (List.length (Drc.check ~rules:(Rules.rule 1) g sol))
  | None -> Alcotest.fail "maze failed on a Steiner net"

let test_maze_respects_rules () =
  (* Under RULE6 the maze must avoid adjacent vias or fail; it must never
     return a solution with violations. *)
  let c =
    Clip.make ~cols:6 ~rows:3 ~layers:3
      [ two_pin "a" (0, 0) (0, 1); two_pin "b" (3, 0) (3, 1) ]
  in
  let rules = Rules.rule 6 in
  let g = Graph.build ~tech:Tech.n28_12t ~rules c in
  let r = Maze.route ~rules g in
  match r.Maze.solution with
  | Some sol ->
    Alcotest.(check int) "drc clean under RULE6" 0
      (List.length (Drc.check ~rules g sol))
  | None -> () (* failing is acceptable; lying is not *)

let test_maze_zero_restarts () =
  let c = Clip.make ~cols:3 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let g = Graph.build ~tech:Tech.n28_12t ~rules:(Rules.rule 1) c in
  let r =
    Maze.route ~params:{ Maze.default_params with Maze.restarts = 0 }
      ~rules:(Rules.rule 1) g
  in
  Alcotest.(check bool) "no attempts, no solution" true (r.Maze.solution = None);
  Alcotest.(check int) "zero restarts used" 0 r.Maze.restarts_used

let test_maze_deterministic () =
  let c =
    Clip.make ~cols:5 ~rows:4 ~layers:3
      [ two_pin "a" (0, 0) (4, 2); two_pin "b" (2, 0) (2, 3) ]
  in
  let g = Graph.build ~tech:Tech.n28_12t ~rules:(Rules.rule 1) c in
  let cost () =
    match (Maze.route ~rules:(Rules.rule 1) g).Maze.solution with
    | Some sol -> sol.Route.metrics.cost
    | None -> -1
  in
  Alcotest.(check int) "same result" (cost ()) (cost ())

(* ------------------------------------------------------------------ *)
(* Clip file                                                           *)
(* ------------------------------------------------------------------ *)

let sample_clip =
  Clip.make ~name:"sample" ~tech_name:"N28-8T"
    ~obstructions:[ (1, 1, 0) ]
    ~cols:5 ~rows:4 ~layers:3
    [
      {
        Clip.n_name = "n0";
        pins =
          [
            {
              Clip.p_name = "u1/Y";
              access = [ (0, 0); (0, 1) ];
              shape = Some (Rect.make ~xlo:0 ~ylo:0 ~xhi:50 ~yhi:250);
            };
            { Clip.p_name = "port"; access = [ (4, 3) ]; shape = None };
          ];
      };
      two_pin "n1" (2, 0) (2, 3);
    ]

let test_clipfile_roundtrip () =
  let text = Clipfile.to_string sample_clip in
  match Clipfile.of_string text with
  | Error m -> Alcotest.fail m
  | Ok [ c ] ->
    Alcotest.(check string) "name" sample_clip.Clip.c_name c.Clip.c_name;
    Alcotest.(check string) "tech" sample_clip.Clip.tech_name c.Clip.tech_name;
    Alcotest.(check int) "cols" sample_clip.Clip.cols c.Clip.cols;
    Alcotest.(check int) "nets" (Clip.num_nets sample_clip) (Clip.num_nets c);
    Alcotest.(check int) "pins" (Clip.num_pins sample_clip) (Clip.num_pins c);
    Alcotest.(check bool) "obstructions" true
      (c.Clip.obstructions = sample_clip.Clip.obstructions);
    Alcotest.(check string) "exact round trip" text (Clipfile.to_string c)
  | Ok _ -> Alcotest.fail "expected exactly one clip"

let test_clipfile_multiple_clips () =
  let text = Clipfile.to_string sample_clip ^ Clipfile.to_string sample_clip in
  match Clipfile.of_string text with
  | Ok clips -> Alcotest.(check int) "two clips" 2 (List.length clips)
  | Error m -> Alcotest.fail m

let test_clipfile_comments_and_blanks () =
  let text = "# a comment\n\n" ^ Clipfile.to_string sample_clip in
  Alcotest.(check bool) "parses" true (Result.is_ok (Clipfile.of_string text))

let test_clipfile_errors () =
  let bad cases =
    List.iter
      (fun (label, text) ->
        Alcotest.(check bool) label true (Result.is_error (Clipfile.of_string text)))
      cases
  in
  bad
    [
      ("endclip before size", "clip x\nendclip\n");
      ("pin outside net", "clip x\nsize 2 2 1\npin p access 0,0\nendclip\n");
      ("unterminated net", "clip x\nsize 2 2 1\nnet n\n");
      ("bad integer", "clip x\nsize a 2 1\nendclip\n");
      ("unknown directive", "clip x\nfoo\n");
      ("bad access point", "clip x\nsize 2 2 1\nnet n\npin p access zz\nendnet\nendclip\n");
    ]

let test_clipfile_file_io () =
  let path = Filename.temp_file "optrouter" ".clips" in
  Clipfile.write_file path [ sample_clip; sample_clip ];
  (match Clipfile.read_file path with
  | Ok clips -> Alcotest.(check int) "two clips" 2 (List.length clips)
  | Error m -> Alcotest.fail m);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Priority queue                                                      *)
(* ------------------------------------------------------------------ *)

module Pqueue = Optrouter_maze.Pqueue

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  List.iter (fun k -> Pqueue.push q k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "length" 5 (Pqueue.length q);
  let order = List.init 5 (fun _ -> fst (Pqueue.pop q)) in
  Alcotest.(check (list (float 0.0))) "sorted pops" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  Alcotest.(check bool) "empty again" true (Pqueue.is_empty q);
  match Pqueue.pop q with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let prop_global_deterministic =
  QCheck.Test.make ~name:"global routing is deterministic" ~count:5
    QCheck.(int_range 1 50)
    (fun seed ->
      let d = Design.generate ~seed small_profile ~util:0.9 Tech.n28_8t in
      let summary gr =
        let c = Global.congestion gr in
        (c.Global.used_edges, c.Global.max_usage)
      in
      summary (Global.route ~cell_w:5 ~cell_h:5 d)
      = summary (Global.route ~cell_w:5 ~cell_h:5 d))

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing key order" ~count:200
    QCheck.(list pos_float)
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.push q k i) keys;
      let rec drain prev =
        if Pqueue.is_empty q then true
        else begin
          let k, _ = Pqueue.pop q in
          k >= prev && drain k
        end
      in
      drain neg_infinity)

(* ------------------------------------------------------------------ *)
(* Global router                                                       *)
(* ------------------------------------------------------------------ *)

let global_design = Design.generate ~seed:11 small_profile ~util:0.9 Tech.n28_8t

let test_global_route_covers_pins () =
  let gr = Global.route ~cell_w:5 ~cell_h:5 global_design in
  let ngx, ngy = Global.grid_size gr in
  Alcotest.(check bool) "grid nonempty" true (ngx > 0 && ngy > 0);
  Array.iteri
    (fun ni (net : Design.dnet) ->
      let cells = Global.net_gcells gr ni in
      List.iter
        (fun conn ->
          List.iter
            (fun (x, y) ->
              let g = (min (x / 5) (ngx - 1), min (y / 5) (ngy - 1)) in
              Alcotest.(check bool) "pin gcell on route" true (List.mem g cells))
            (Design.access_positions global_design conn))
        (net.Design.driver :: net.Design.loads))
    global_design.Design.nets

let test_global_route_connected () =
  (* Each net's gcell set must be connected through its edge list. *)
  let gr = Global.route ~cell_w:4 ~cell_h:4 global_design in
  Array.iteri
    (fun ni _ ->
      let cells = Global.net_gcells gr ni in
      match cells with
      | [] | [ _ ] -> ()
      | start :: _ ->
        let adj = Hashtbl.create 16 in
        List.iter
          (fun c ->
            List.iter
              (fun n ->
                let old = Option.value ~default:[] (Hashtbl.find_opt adj c) in
                Hashtbl.replace adj c (n :: old))
              (Global.crossings gr ~net:ni ~gx:(fst c) ~gy:(snd c)))
          cells;
        let visited = Hashtbl.create 16 in
        let rec bfs c =
          if not (Hashtbl.mem visited c) then begin
            Hashtbl.replace visited c ();
            List.iter bfs (Option.value ~default:[] (Hashtbl.find_opt adj c))
          end
        in
        bfs start;
        List.iter
          (fun c ->
            Alcotest.(check bool) "gcell reachable" true (Hashtbl.mem visited c))
          cells)
    global_design.Design.nets

let test_global_congestion_sane () =
  let gr = Global.route ~cell_w:5 ~cell_h:5 global_design in
  let c = Global.congestion gr in
  Alcotest.(check bool) "edges used" true (c.Global.used_edges > 0);
  Alcotest.(check bool) "usage bounded by used edges" true
    (c.Global.used_edges <= c.Global.total_edges);
  Alcotest.(check bool) "max usage positive" true (c.Global.max_usage > 0);
  let render = Global.render_congestion gr in
  Alcotest.(check bool) "render nonempty" true (String.length render > 0)

let test_extract_pass_throughs () =
  let params =
    { Extract.reduced_params with Extract.include_pass_throughs = true }
  in
  let plain = Extract.windows Extract.reduced_params global_design in
  let with_thru = Extract.windows params global_design in
  let count_thru clips =
    List.fold_left
      (fun acc (c : Clip.t) ->
        acc
        + List.length
            (List.filter
               (fun (n : Clip.net) ->
                 List.exists
                   (fun (p : Clip.pin) ->
                     String.length p.Clip.p_name >= 3
                     && String.sub p.Clip.p_name (String.length p.Clip.p_name - 3) 3
                        = "/in")
                   n.Clip.pins)
               c.Clip.nets))
      0 clips
  in
  Alcotest.(check int) "no pass-throughs by default" 0 (count_thru plain);
  Alcotest.(check bool) "pass-throughs appear" true (count_thru with_thru > 0);
  List.iter
    (fun c ->
      match Clip.validate c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    with_thru

(* ------------------------------------------------------------------ *)
(* Route file                                                          *)
(* ------------------------------------------------------------------ *)

let test_routefile_export () =
  let c =
    Clip.make ~name:"exported" ~cols:4 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (3, 2) ]
  in
  let rules = Rules.rule 1 in
  let g = Graph.build ~tech:Tech.n28_12t ~rules c in
  match (Maze.route ~rules g).Maze.solution with
  | None -> Alcotest.fail "maze failed"
  | Some sol ->
    let s = Optrouter_clipfile.Routefile.to_string g sol in
    let has sub =
      let len_s = String.length s and len = String.length sub in
      let rec go i = i + len <= len_s && (String.sub s i len = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "header" true (has "route exported tech N28-12T");
    Alcotest.(check bool) "cost recorded" true
      (has (Printf.sprintf "cost %d" sol.Route.metrics.cost));
    Alcotest.(check bool) "wire lines" true (has "wire M2");
    Alcotest.(check bool) "via lines" true (has "via V23");
    Alcotest.(check bool) "access lines" true (has "access");
    Alcotest.(check bool) "net block" true (has "net a" && has "endnet")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

(* Clip file round trip on randomly generated clips. *)
let random_clip_gen =
  let open QCheck.Gen in
  let* cols = int_range 2 8 in
  let* rows = int_range 2 8 in
  let* layers = int_range 1 4 in
  let* nnets = int_range 1 3 in
  let* positions =
    shuffle_l
      (List.concat_map (fun x -> List.init rows (fun y -> (x, y))) (List.init cols Fun.id))
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | p :: rest -> p :: take (n - 1) rest
  in
  let pts = take (2 * nnets) positions in
  let nets =
    List.init nnets (fun k ->
        match (List.nth_opt pts (2 * k), List.nth_opt pts ((2 * k) + 1)) with
        | Some p1, Some p2 -> two_pin (Printf.sprintf "n%d" k) p1 p2
        | _ -> two_pin (Printf.sprintf "n%d" k) (0, 0) (cols - 1, rows - 1))
  in
  return (Clip.make ~cols ~rows ~layers nets)

let prop_clipfile_roundtrip =
  QCheck.Test.make ~name:"clip file round-trips arbitrary clips" ~count:100
    (QCheck.make ~print:Clipfile.to_string random_clip_gen)
    (fun clip ->
      match Clipfile.of_string (Clipfile.to_string clip) with
      | Ok [ c ] -> Clipfile.to_string c = Clipfile.to_string clip
      | Ok _ | Error _ -> false)

(* Maze solutions, when produced, are always DRC-clean. *)
let prop_maze_sound =
  QCheck.Test.make ~name:"maze solutions are DRC-clean" ~count:25
    (QCheck.make ~print:Clipfile.to_string random_clip_gen)
    (fun clip ->
      if clip.Clip.layers < 2 then true
      else begin
        let rules = Rules.rule 1 in
        let g = Graph.build ~tech:Tech.n28_12t ~rules clip in
        match (Maze.route ~rules g).Maze.solution with
        | Some sol -> Drc.check ~rules g sol = []
        | None -> true
      end)

let () =
  Alcotest.run "fabric"
    [
      ( "cells",
        [
          Alcotest.test_case "library per technology" `Quick
            test_cells_library_per_tech;
          Alcotest.test_case "N7 pins have two adjacent access points" `Quick
            test_cells_n7_has_two_close_access_points;
          Alcotest.test_case "access point ordering across techs" `Quick
            test_cells_n28_12t_has_more_access;
          Alcotest.test_case "render" `Quick test_cells_render;
        ] );
      ( "design",
        [
          Alcotest.test_case "deterministic generation" `Quick
            test_design_deterministic;
          Alcotest.test_case "stable digest pinned values" `Quick
            test_stable_digest_pinned;
          Alcotest.test_case "pinned generated shape" `Quick
            test_design_pinned_shape;
          Alcotest.test_case "utilisation targeting" `Quick test_design_utilization;
          Alcotest.test_case "no placement overlaps" `Quick test_design_no_overlaps;
          Alcotest.test_case "well-formed netlist" `Quick
            test_design_nets_wellformed;
          Alcotest.test_case "pin positions in extent" `Quick
            test_design_pin_positions_in_extent;
        ] );
      ( "pin-cost",
        [
          Alcotest.test_case "monotone in pin count" `Quick
            test_pin_cost_monotone_in_pins;
          Alcotest.test_case "smaller pins cost more" `Quick
            test_pin_cost_smaller_pins_cost_more;
          Alcotest.test_case "closer pins cost more" `Quick
            test_pin_cost_closer_pins_cost_more;
          Alcotest.test_case "ports count in PEC only" `Quick
            test_pin_cost_port_pins_count_in_pec_only;
        ] );
      ( "extract",
        [
          Alcotest.test_case "windows are valid clips" `Quick test_extract_windows;
          Alcotest.test_case "top-k is sorted" `Quick test_extract_top_k_sorted;
          Alcotest.test_case "paper window dimensions" `Quick
            test_extract_paper_params_dimensions;
        ] );
      ( "maze",
        [
          Alcotest.test_case "routes a wire" `Quick test_maze_routes_simple;
          Alcotest.test_case "routes a Steiner net" `Quick test_maze_multi_pin;
          Alcotest.test_case "respects via restrictions" `Quick
            test_maze_respects_rules;
          Alcotest.test_case "deterministic" `Quick test_maze_deterministic;
          Alcotest.test_case "zero restarts" `Quick test_maze_zero_restarts;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          qtest prop_pqueue_sorted;
        ] );
      ( "global",
        [
          Alcotest.test_case "routes cover pins" `Quick
            test_global_route_covers_pins;
          Alcotest.test_case "routes are connected" `Quick
            test_global_route_connected;
          Alcotest.test_case "congestion stats" `Quick test_global_congestion_sane;
          Alcotest.test_case "pass-through extraction" `Quick
            test_extract_pass_throughs;
          qtest prop_global_deterministic;
        ] );
      ( "clipfile",
        [
          Alcotest.test_case "round trip" `Quick test_clipfile_roundtrip;
          Alcotest.test_case "multiple clips" `Quick test_clipfile_multiple_clips;
          Alcotest.test_case "comments and blanks" `Quick
            test_clipfile_comments_and_blanks;
          Alcotest.test_case "malformed inputs rejected" `Quick test_clipfile_errors;
          Alcotest.test_case "file io" `Quick test_clipfile_file_io;
          Alcotest.test_case "route export" `Quick test_routefile_export;
        ] );
      ( "properties",
        [ qtest prop_clipfile_roundtrip; qtest prop_maze_sound ] );
    ]
