(* Tests for the technology layer: presets, BEOL stack, rule
   configurations and the via shape catalogue. *)

module Tech = Optrouter_tech.Tech
module Layer = Optrouter_tech.Layer
module Rules = Optrouter_tech.Rules
module Via_shape = Optrouter_tech.Via_shape

(* ------------------------------------------------------------------ *)
(* Layers                                                              *)
(* ------------------------------------------------------------------ *)

let test_layer_direction_convention () =
  Alcotest.(check bool) "M2 horizontal" true
    (Layer.direction_of_metal 2 = Layer.Horizontal);
  Alcotest.(check bool) "M3 vertical" true
    (Layer.direction_of_metal 3 = Layer.Vertical);
  Alcotest.(check bool) "M8 horizontal" true
    (Layer.direction_of_metal 8 = Layer.Horizontal)

(* ------------------------------------------------------------------ *)
(* Technology presets                                                  *)
(* ------------------------------------------------------------------ *)

let test_tech_presets () =
  Alcotest.(check int) "three presets" 3 (List.length Tech.all);
  Alcotest.(check int) "12T height" 12 Tech.n28_12t.Tech.cell_height_tracks;
  Alcotest.(check int) "8T height" 8 Tech.n28_8t.Tech.cell_height_tracks;
  Alcotest.(check int) "9T height" 9 Tech.n7_9t.Tech.cell_height_tracks;
  Alcotest.(check int) "paper via weight" 4 Tech.n28_12t.Tech.via_weight

let test_tech_by_name () =
  Alcotest.(check string) "lookup" "N28-8T" (Tech.by_name "N28-8T").Tech.name;
  match Tech.by_name "N3-6T" with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_tech_clip_tracks () =
  (* The paper's 1um x 1um clip is 7 vertical x 10 horizontal tracks. *)
  let cols, rows = Tech.clip_tracks_1um Tech.n28_12t in
  Alcotest.(check int) "7 columns" 7 cols;
  Alcotest.(check int) "10 rows" 10 rows

let test_tech_stack () =
  let stack = Tech.stack Tech.n28_12t (Rules.rule 3) in
  Alcotest.(check int) "8 layers from M2" 8 (List.length stack);
  (match stack with
  | m2 :: m3 :: _ ->
    Alcotest.(check int) "first is M2" 2 m2.Layer.metal;
    Alcotest.(check bool) "M2 horizontal" true (Layer.is_horizontal m2);
    Alcotest.(check bool) "M2 LELE under RULE3" true
      (m2.Layer.patterning = Layer.Lele);
    Alcotest.(check bool) "M3 SADP under RULE3" true
      (m3.Layer.patterning = Layer.Sadp);
    Alcotest.(check int) "horizontal pitch" 100 m2.Layer.pitch;
    Alcotest.(check int) "vertical pitch" 136 m3.Layer.pitch
  | _ -> Alcotest.fail "stack too short")

let test_row_height () =
  Alcotest.(check int) "12T row" 1200 (Tech.row_height Tech.n28_12t);
  Alcotest.(check int) "9T row" 900 (Tech.row_height Tech.n7_9t)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_rules_table3 () =
  (* Spot-check Table 3. *)
  let check n sadp blocked =
    let r = Rules.rule n in
    Alcotest.(check bool)
      (Printf.sprintf "RULE%d sadp" n)
      true
      (r.Rules.sadp_from = sadp);
    Alcotest.(check int)
      (Printf.sprintf "RULE%d blocked" n)
      blocked
      (List.length (Rules.blocked_neighbour_offsets r.Rules.via_restriction))
  in
  check 1 None 0;
  check 2 (Some 2) 0;
  check 5 (Some 5) 0;
  check 6 None 4;
  check 7 (Some 2) 4;
  check 8 (Some 3) 4;
  check 9 None 8;
  check 11 (Some 3) 8;
  (* DSA family (RULE12+): sweep-orthogonal to Table 3 *)
  check 12 None 0;
  check 13 (Some 3) 0;
  check 14 None 4;
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "RULE%d dsa" n)
        (n >= 12) (Rules.rule n).Rules.dsa)
    [ 1; 3; 11; 12; 13; 14 ];
  Alcotest.(check int) "catalogue size" 14 (List.length Rules.all)

let test_rules_out_of_range () =
  (match Rules.rule 0 with
  | _ -> Alcotest.fail "rule 0"
  | exception Invalid_argument _ -> ());
  match Rules.rule 15 with
  | _ -> Alcotest.fail "rule 15"
  | exception Invalid_argument _ -> ()

let test_rules_patterning_of () =
  let r3 = Rules.rule 3 in
  Alcotest.(check bool) "M2 LELE" true
    (Rules.patterning_of r3 ~metal:2 = Layer.Lele);
  Alcotest.(check bool) "M3 SADP" true
    (Rules.patterning_of r3 ~metal:3 = Layer.Sadp);
  Alcotest.(check bool) "M8 SADP" true
    (Rules.patterning_of r3 ~metal:8 = Layer.Sadp);
  let r1 = Rules.rule 1 in
  Alcotest.(check bool) "RULE1 all LELE" true
    (List.for_all
       (fun m -> Rules.patterning_of r1 ~metal:m = Layer.Lele)
       [ 2; 3; 4; 5; 6; 7; 8 ])

let test_rules_n7_applicability () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "RULE%d on N7" n)
        expected
        (Rules.applicable ~tech_name:"N7-9T" (Rules.rule n)))
    [
      (1, true); (2, false); (3, true); (4, true); (5, true);
      (6, true); (7, false); (8, true); (9, false); (10, false); (11, false);
      (* DSA rules carry no pitch-split assumptions: evaluable anywhere *)
      (12, true); (13, true); (14, true);
    ];
  (* every rule applies on 28nm *)
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool) (r.Rules.name ^ " on N28") true
        (Rules.applicable ~tech_name:"N28-12T" r))
    Rules.all

let test_blocked_offsets_symmetric () =
  (* Every blocked offset's negation is also blocked: adjacency is
     symmetric, which the formulation's deduplication relies on. *)
  List.iter
    (fun restriction ->
      let offs = Rules.blocked_neighbour_offsets restriction in
      List.iter
        (fun (dx, dy) ->
          Alcotest.(check bool) "negation present" true
            (List.mem (-dx, -dy) offs))
        offs)
    [ Rules.Orthogonal; Rules.Orthogonal_diagonal ]

(* ------------------------------------------------------------------ *)
(* Canonical spellings (golden)                                        *)
(* ------------------------------------------------------------------ *)

(* The serve cache keys and warm-basis files are content-addressed over
   these exact byte strings. Extending [Rules.t]/[Tech.t] (or the config
   fingerprint) must leave the legacy spellings byte-identical — a silent
   change here invalidates every cached entry without a key-version bump
   to account for it. *)

let test_rules_canonical_golden () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "RULE%d canonical" n)
        expected
        (Rules.canonical (Rules.rule n)))
    [
      (1, "rule=RULE1;sadp_from=none;via_restriction=none");
      (3, "rule=RULE3;sadp_from=3;via_restriction=none");
      (8, "rule=RULE8;sadp_from=3;via_restriction=orthogonal");
      (11, "rule=RULE11;sadp_from=3;via_restriction=orthogonal+diagonal");
    ]

let test_tech_canonical_golden () =
  List.iter
    (fun (tech, expected) ->
      Alcotest.(check string) (tech.Tech.name ^ " canonical") expected
        (Tech.canonical tech))
    [
      ( Tech.n28_12t,
        "tech=N28-12T;cell_height_tracks=12;hpitch=100;vpitch=136;num_layers=8;via_weight=4;pin_width=50;access_points_per_pin=5"
      );
      ( Tech.n28_8t,
        "tech=N28-8T;cell_height_tracks=8;hpitch=100;vpitch=136;num_layers=8;via_weight=4;pin_width=50;access_points_per_pin=4"
      );
      ( Tech.n7_9t,
        "tech=N7-9T;cell_height_tracks=9;hpitch=100;vpitch=136;num_layers=8;via_weight=4;pin_width=24;access_points_per_pin=2"
      );
    ]

let test_config_fingerprint_golden () =
  let module Optrouter = Optrouter_core.Optrouter in
  Alcotest.(check string) "default config fingerprint"
    ("options:vertex_exclusivity=true;sadp_aux_vars=false;aggregated_flows=false\n"
   ^ "single_vias=true;bidirectional=false\n"
   ^ "milp:integrality_tol=9.9999999999999995e-07\n" ^ "solve_mode=exact\n")
    (Optrouter.config_fingerprint Optrouter.default_config)

(* [of_canonical] must invert [canonical] over the whole widened space —
   any rule, any DSA flag, any objective (the via weight is emitted with
   [%.17g], so even fractional weights round-trip bit-exactly). *)
let qcheck_rules_canonical_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 14 in
      let* obj =
        oneof
          [
            return Rules.Wirelength;
            return Rules.Via_count;
            (* dyadic weights exercise both integral and fractional
               spellings without float-noise in the generator itself *)
            map
              (fun k -> Rules.Via_weighted (float_of_int k /. 8.0))
              (int_range 0 1000);
          ]
      in
      return (Rules.with_objective obj (Rules.rule n)))
  in
  let print r = Rules.canonical r in
  QCheck.Test.make ~count:200 ~name:"of_canonical inverts canonical"
    (QCheck.make ~print gen) (fun r ->
      match Rules.of_canonical (Rules.canonical r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Via shapes                                                          *)
(* ------------------------------------------------------------------ *)

let test_via_shape_sites () =
  let single = Via_shape.single ~cost:4 in
  Alcotest.(check int) "single site" 1 (List.length (Via_shape.sites single));
  let bar = Via_shape.bar_2x1 ~cost:4 in
  Alcotest.(check int) "bar sites" 2 (List.length (Via_shape.sites bar));
  let square = Via_shape.square_2x2 ~cost:4 in
  Alcotest.(check int) "square sites" 4 (List.length (Via_shape.sites square));
  Alcotest.(check bool) "square covers 2x2" true
    (List.sort compare (Via_shape.sites square)
    = [ (0, 0); (0, 1); (1, 0); (1, 1) ])

let test_via_shape_cost_ordering () =
  (* Larger shapes are cheaper (manufacturability preference), but never
     free. *)
  let c = 4 in
  let single = Via_shape.single ~cost:c in
  let bar = Via_shape.bar_2x1 ~cost:c in
  let square = Via_shape.square_2x2 ~cost:c in
  Alcotest.(check bool) "bar < single" true (bar.Via_shape.cost < single.Via_shape.cost);
  Alcotest.(check bool) "square < bar" true
    (square.Via_shape.cost < bar.Via_shape.cost);
  Alcotest.(check bool) "positive" true (square.Via_shape.cost >= 1);
  (* degenerate weight still yields positive costs *)
  Alcotest.(check bool) "clamped" true ((Via_shape.square_2x2 ~cost:1).Via_shape.cost >= 1)

let () =
  Alcotest.run "tech"
    [
      ( "layer",
        [ Alcotest.test_case "direction convention" `Quick test_layer_direction_convention ] );
      ( "tech",
        [
          Alcotest.test_case "presets" `Quick test_tech_presets;
          Alcotest.test_case "by_name" `Quick test_tech_by_name;
          Alcotest.test_case "1um clip tracks" `Quick test_tech_clip_tracks;
          Alcotest.test_case "stack" `Quick test_tech_stack;
          Alcotest.test_case "row height" `Quick test_row_height;
        ] );
      ( "rules",
        [
          Alcotest.test_case "table 3 contents" `Quick test_rules_table3;
          Alcotest.test_case "out of range" `Quick test_rules_out_of_range;
          Alcotest.test_case "patterning_of" `Quick test_rules_patterning_of;
          Alcotest.test_case "N7 applicability" `Quick test_rules_n7_applicability;
          Alcotest.test_case "blocked offsets symmetric" `Quick
            test_blocked_offsets_symmetric;
        ] );
      ( "canonical-golden",
        [
          Alcotest.test_case "rules spellings pinned" `Quick
            test_rules_canonical_golden;
          Alcotest.test_case "tech spellings pinned" `Quick
            test_tech_canonical_golden;
          QCheck_alcotest.to_alcotest qcheck_rules_canonical_roundtrip;
          Alcotest.test_case "config fingerprint pinned" `Quick
            test_config_fingerprint_golden;
        ] );
      ( "via-shapes",
        [
          Alcotest.test_case "sites" `Quick test_via_shape_sites;
          Alcotest.test_case "cost ordering" `Quick test_via_shape_cost_ordering;
        ] );
    ]
