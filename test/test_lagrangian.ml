(* Tests for the Lagrangian decomposition solve mode: dual-bound
   soundness against the exact ILP, DRC-certified rounding, width
   determinism and the solve-mode plumbing through the driver. *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Optrouter = Optrouter_core.Optrouter
module Lagrangian = Optrouter_lagrangian.Lagrangian
module Clipfile = Optrouter_clipfile.Clipfile

let tech = Tech.n28_12t
let rule = Rules.rule

let pin name access = { Clip.p_name = name; access; shape = None }
let net name pins = { Clip.n_name = name; pins }

let two_pin name (x1, y1) (x2, y2) =
  net name [ pin (name ^ ".s") [ (x1, y1) ]; pin (name ^ ".t") [ (x2, y2) ] ]

let bundled_clips () =
  (* dune runtest runs in test/; dune exec runs at the project root *)
  let path =
    if Sys.file_exists "../data/samples.clips" then "../data/samples.clips"
    else "data/samples.clips"
  in
  match Clipfile.read_file path with
  | Ok clips -> clips
  | Error e -> Alcotest.failf "samples.clips: %s" e

let exact_cost clip =
  match (Optrouter.route ~tech ~rules:(rule 1) clip).Optrouter.verdict with
  | Optrouter.Routed sol -> sol.Route.metrics.cost
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    Alcotest.failf "clip %s: exact solve must prove under RULE1"
      clip.Clip.c_name

(* ------------------------------------------------------------------ *)
(* Bundled clips: certified rounding with gap <= 2% vs the ILP optimum  *)
(* ------------------------------------------------------------------ *)

let test_bundled_gap () =
  List.iter
    (fun clip ->
      let opt = exact_cost clip in
      let rules = rule 1 in
      let g = Graph.build ~tech ~rules clip in
      let r = Lagrangian.solve ~rules g in
      Alcotest.(check bool)
        (clip.Clip.c_name ^ " dual bound is a lower bound")
        true
        (r.Lagrangian.dual_bound <= float_of_int opt +. 1e-6);
      match r.Lagrangian.solution with
      | None -> Alcotest.failf "%s: no rounded routing" clip.Clip.c_name
      | Some sol ->
        Alcotest.(check (list Alcotest.reject))
          (clip.Clip.c_name ^ " rounding is DRC-clean")
          [] (Drc.check ~rules g sol);
        Alcotest.(check bool)
          (clip.Clip.c_name ^ " primal is an upper bound")
          true
          (sol.Route.metrics.cost >= opt);
        (match r.Lagrangian.gap with
        | None -> Alcotest.failf "%s: no gap reported" clip.Clip.c_name
        | Some gap ->
          Alcotest.(check bool)
            (Printf.sprintf "%s gap %.4f <= 2%%" clip.Clip.c_name gap)
            true
            (gap >= 0.0 && gap <= 0.02));
        (* the reported gap is measured against the true optimum too *)
        let true_gap =
          float_of_int (sol.Route.metrics.cost - opt)
          /. float_of_int (max 1 sol.Route.metrics.cost)
        in
        Alcotest.(check bool)
          (clip.Clip.c_name ^ " within 2% of the ILP optimum")
          true (true_gap <= 0.02))
    (bundled_clips ())

(* ------------------------------------------------------------------ *)
(* Width determinism: -j 1/2/4 round to byte-identical routings         *)
(* ------------------------------------------------------------------ *)

let solution_bytes (sol : Route.solution) =
  String.concat "|"
    (Array.to_list
       (Array.map
          (fun (r : Route.net_route) ->
            Printf.sprintf "%d:%s" r.Route.net
              (String.concat ","
                 (List.map string_of_int (List.sort Int.compare r.Route.edges))))
          sol.Route.routes))

let test_width_determinism () =
  List.iter
    (fun clip ->
      let rules = rule 1 in
      let g = Graph.build ~tech ~rules clip in
      let solve jobs =
        Lagrangian.solve ~params:(Lagrangian.make_params ~jobs ()) ~rules g
      in
      let r1 = solve 1 and r2 = solve 2 and r4 = solve 4 in
      let bytes label (r : Lagrangian.t) =
        match r.Lagrangian.solution with
        | Some sol ->
          Alcotest.(check (list Alcotest.reject))
            (label ^ " DRC-clean") []
            (Drc.check ~rules g sol);
          solution_bytes sol
        | None -> Alcotest.failf "%s: no rounded routing" label
      in
      let b1 = bytes "-j1" r1 in
      Alcotest.(check string)
        (clip.Clip.c_name ^ ": -j2 identical to -j1")
        b1 (bytes "-j2" r2);
      Alcotest.(check string)
        (clip.Clip.c_name ^ ": -j4 identical to -j1")
        b1 (bytes "-j4" r4);
      Alcotest.(check (float 1e-9))
        (clip.Clip.c_name ^ ": dual bound width-independent")
        r1.Lagrangian.dual_bound r4.Lagrangian.dual_bound;
      Alcotest.(check int)
        (clip.Clip.c_name ^ ": iteration count width-independent")
        r1.Lagrangian.iterations r4.Lagrangian.iterations)
    (bundled_clips ())

(* ------------------------------------------------------------------ *)
(* Driver plumbing: verdict, stats, fingerprint                         *)
(* ------------------------------------------------------------------ *)

let lag_config = Optrouter.make_config ~solve_mode:Optrouter.Lagrangian ()

let test_near_optimal_verdict () =
  let clip =
    Clip.make ~name:"plumb" ~cols:4 ~rows:3 ~layers:3
      [ two_pin "a" (0, 0) (3, 2); two_pin "b" (0, 2) (3, 0) ]
  in
  let result = Optrouter.route ~config:lag_config ~tech ~rules:(rule 1) clip in
  match result.Optrouter.verdict with
  | Optrouter.Near_optimal sol ->
    let opt = exact_cost clip in
    Alcotest.(check bool) "cost bounded by dual" true
      (sol.Route.metrics.cost >= opt);
    let stats = result.Optrouter.stats in
    (match stats.Optrouter.lagrangian with
    | None -> Alcotest.fail "lagrangian stats missing"
    | Some ls ->
      Alcotest.(check bool) "dual <= primal" true
        (ls.Optrouter.dual_bound <= float_of_int sol.Route.metrics.cost +. 1e-6);
      Alcotest.(check bool) "iterations ran" true (ls.Optrouter.lag_iterations >= 1);
      (match ls.Optrouter.primal_cost with
      | Some c ->
        Alcotest.(check int) "stats primal is the verdict cost"
          sol.Route.metrics.cost c
      | None -> Alcotest.fail "stats primal missing"))
  | Optrouter.Routed _ | Optrouter.Unroutable | Optrouter.Limit _ ->
    Alcotest.fail "lagrangian mode must answer Near_optimal here"

let test_unroutable_detected () =
  (* A pin fenced in by obstructions on M1 with a single layer cannot
     reach its mate: the reachability pre-check must prove it. *)
  let clip =
    Clip.make ~name:"fenced" ~cols:3 ~rows:3 ~layers:1
      ~obstructions:[ (1, 0, 0); (0, 1, 0); (1, 2, 0) ]
      [ two_pin "a" (0, 0) (2, 2) ]
  in
  let result = Optrouter.route ~config:lag_config ~tech ~rules:(rule 1) clip in
  match result.Optrouter.verdict with
  | Optrouter.Unroutable -> ()
  | Optrouter.Routed _ | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    Alcotest.fail "expected Unroutable from the reachability pre-check"

let test_fingerprint_distinguishes_modes () =
  let exact = Optrouter.make_config () in
  Alcotest.(check bool) "solve_mode changes the fingerprint" true
    (Optrouter.config_fingerprint exact
    <> Optrouter.config_fingerprint lag_config);
  (* effort knobs still do not: same mode, different jobs/time budget *)
  let lag_wide =
    Optrouter.make_config ~solve_mode:Optrouter.Lagrangian
      ~milp:
        (Optrouter_ilp.Milp.make_params ~time_limit_s:1.0 ~solver_jobs:4 ())
      ()
  in
  Alcotest.(check string) "effort knobs do not change the fingerprint"
    (Optrouter.config_fingerprint lag_config)
    (Optrouter.config_fingerprint lag_wide)

(* ------------------------------------------------------------------ *)
(* Properties: dual <= ILP optimum <= rounded primal                    *)
(* ------------------------------------------------------------------ *)

(* Random clips with a planted non-overlapping pin layout (the routing
   test suite's generator). *)
let random_clip_gen =
  let open QCheck.Gen in
  let* cols = int_range 3 4 in
  let* rows = int_range 2 3 in
  let* layers = int_range 2 3 in
  let* nnets = int_range 1 2 in
  let* shuffled =
    let all =
      List.concat_map
        (fun x -> List.init rows (fun y -> (x, y)))
        (List.init cols Fun.id)
    in
    shuffle_l all
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | p :: rest -> p :: take (n - 1) rest
  in
  let positions = take (2 * nnets) shuffled in
  let nets =
    List.init nnets (fun k ->
        match
          (List.nth_opt positions (2 * k), List.nth_opt positions ((2 * k) + 1))
        with
        | Some p1, Some p2 -> two_pin (Printf.sprintf "n%d" k) p1 p2
        | _, _ -> two_pin (Printf.sprintf "n%d" k) (0, 0) (cols - 1, rows - 1))
  in
  return (Clip.make ~cols ~rows ~layers nets)

let arbitrary_clip =
  QCheck.make ~print:(Format.asprintf "%a" Clip.pp) random_clip_gen

let prop_sandwich =
  QCheck.Test.make ~name:"dual bound <= ILP optimum <= rounded primal"
    ~count:15 arbitrary_clip (fun c ->
      let rules = rule 1 in
      match (Optrouter.route ~tech ~rules c).Optrouter.verdict with
      | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
        true (* only exact-proven clips pin the sandwich *)
      | Optrouter.Routed sol ->
        let opt = sol.Route.metrics.cost in
        let g = Graph.build ~tech ~rules c in
        let r = Lagrangian.solve ~rules g in
        r.Lagrangian.dual_bound <= float_of_int opt +. 1e-6
        && (match r.Lagrangian.solution with
           | None -> false (* RULE1 roundings must land *)
           | Some s ->
             s.Route.metrics.cost >= opt && Drc.check ~rules g s = []))

(* The sandwich must survive the two new sweep dimensions together: a
   DSA rule (whose coloring rows are absent from the relaxation — a
   relaxation stays a relaxation) and a via objective (pricing and
   bounds move to objective units; the integral weight keeps the
   ceil-lift legitimate). *)
let prop_sandwich_dsa_via =
  let rules = Rules.with_objective (Rules.Via_weighted 2.0) (rule 12) in
  let obj (m : Route.metrics) =
    Rules.objective_value rules.Rules.objective ~wirelength:m.Route.wirelength
      ~vias:m.Route.vias ~cost:m.Route.cost
  in
  QCheck.Test.make
    ~name:"RULE12 + via-weighted: dual <= ILP optimum <= certified primal"
    ~count:10 arbitrary_clip (fun c ->
      match (Optrouter.route ~tech ~rules c).Optrouter.verdict with
      | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
        true (* only exact-proven clips pin the sandwich *)
      | Optrouter.Routed sol ->
        let opt = obj sol.Route.metrics in
        let g = Graph.build ~tech ~rules c in
        let r = Lagrangian.solve ~rules g in
        r.Lagrangian.dual_bound <= opt +. 1e-6
        &&
        (* roundings may miss under DSA, but a reported one must be a
           DRC-certified upper bound in objective units *)
        (match r.Lagrangian.solution with
        | None -> true
        | Some s ->
          obj s.Route.metrics >= opt -. 1e-6 && Drc.check ~rules g s = []))

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "lagrangian"
    [
      ( "bundled",
        [
          Alcotest.test_case "gap <= 2% vs ILP optimum" `Quick test_bundled_gap;
          Alcotest.test_case "widths 1/2/4 byte-identical" `Quick
            test_width_determinism;
        ] );
      ( "driver",
        [
          Alcotest.test_case "near-optimal verdict + stats" `Quick
            test_near_optimal_verdict;
          Alcotest.test_case "reachability proves unroutable" `Quick
            test_unroutable_detected;
          Alcotest.test_case "fingerprint distinguishes modes" `Quick
            test_fingerprint_distinguishes_modes;
        ] );
      ("properties", [ qtest prop_sandwich; qtest prop_sandwich_dsa_via ]);
    ]
