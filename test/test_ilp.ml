(* Tests for the LP/MILP substrate: unit tests on known instances, plus
   property-based cross-validation against the dense reference simplex and
   exhaustive enumeration. *)

module Lp = Optrouter_ilp.Lp
module Simplex = Optrouter_ilp.Simplex
module Dense = Optrouter_ilp.Dense_simplex
module Milp = Optrouter_ilp.Milp
module Lp_file = Optrouter_ilp.Lp_file
module Presolve = Optrouter_ilp.Presolve

let check_float = Alcotest.(check (float 1e-6))

(* Compact LP construction: [vars] are (name, lo, up, obj, kind); [rows]
   are (name, [(index, coeff)], sense, rhs). *)
let build vars rows =
  let b = Lp.Builder.create () in
  List.iter
    (fun (name, lower, upper, obj, kind) ->
      ignore (Lp.Builder.add_var b ~name ~lower ~upper ~obj kind))
    vars;
  List.iter
    (fun (name, coeffs, sense, rhs) -> Lp.Builder.add_row b ~name coeffs sense rhs)
    rows;
  Lp.Builder.finish b

let cont name lower upper obj = (name, lower, upper, obj, Lp.Continuous)
let bin name obj = (name, 0.0, 1.0, obj, Lp.Integer)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_merges_duplicates () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_var b ~name:"x" ~lower:0.0 ~upper:1.0 ~obj:1.0 Lp.Continuous in
  Lp.Builder.add_row b ~name:"r" [ (x, 1.0); (x, 2.0) ] Lp.Le 5.0;
  let lp = Lp.Builder.finish b in
  Alcotest.(check int) "one row" 1 (Lp.nrows lp);
  let row = lp.rows.(0) in
  Alcotest.(check int) "one coeff" 1 (Array.length row.coeffs);
  let _, a = row.coeffs.(0) in
  check_float "merged coefficient" 3.0 a

let test_builder_drops_zero () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_var b ~name:"x" ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous in
  let y = Lp.Builder.add_var b ~name:"y" ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous in
  Lp.Builder.add_row b ~name:"r" [ (x, 1.0); (y, 1.0); (y, -1.0) ] Lp.Le 5.0;
  let lp = Lp.Builder.finish b in
  Alcotest.(check int) "y cancelled out" 1 (Array.length lp.rows.(0).coeffs)

let test_builder_cancels_to_empty () =
  (* repeated indices summing to exactly zero leave an EMPTY row, not a
     dropped one — the model auditor (A005/A007) depends on the row
     surviving so the cancellation stays visible *)
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_var b ~name:"x" ~lower:0.0 ~upper:1.0 ~obj:1.0 Lp.Continuous in
  Lp.Builder.add_row b ~name:"gone" [ (x, 2.5); (x, -2.5) ] Lp.Le 1.0;
  let lp = Lp.Builder.finish b in
  Alcotest.(check int) "row kept" 1 (Lp.nrows lp);
  Alcotest.(check int) "no coefficients" 0 (Array.length lp.rows.(0).coeffs);
  Alcotest.(check string) "name kept" "gone" lp.rows.(0).r_name;
  (* the empty row is vacuously satisfiable and must not break solving *)
  let res = Simplex.solve lp in
  Alcotest.(check bool) "still solves" true (res.status = Simplex.Optimal)

let test_builder_rejects_bad_bounds () =
  let b = Lp.Builder.create () in
  match
    Lp.Builder.add_var b ~name:"x" ~lower:2.0 ~upper:1.0 ~obj:0.0 Lp.Continuous
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_builder_rejects_bad_index () =
  let b = Lp.Builder.create () in
  ignore (Lp.Builder.add_var b ~name:"x" ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous);
  match Lp.Builder.add_row b ~name:"r" [ (7, 1.0) ] Lp.Le 1.0 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_feasibility_helpers () =
  let lp =
    build [ cont "x" 0.0 4.0 1.0; cont "y" 0.0 4.0 1.0 ]
      [ ("r1", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 2.0) ]
  in
  Alcotest.(check bool) "feasible point" true (Lp.is_feasible lp [| 1.0; 1.5 |]);
  Alcotest.(check bool) "violates row" false (Lp.is_feasible lp [| 0.5; 0.5 |]);
  Alcotest.(check bool) "violates bound" false (Lp.is_feasible lp [| 5.0; 0.0 |]);
  check_float "objective" 2.5 (Lp.objective_value lp [| 1.0; 1.5 |])

(* ------------------------------------------------------------------ *)
(* Simplex on known instances                                          *)
(* ------------------------------------------------------------------ *)

let solve_optimal lp =
  let res = Simplex.solve lp in
  (match res.status with
  | Simplex.Optimal -> ()
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded");
  (match Simplex.verify_optimal lp res with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("optimality certificate failed: " ^ e));
  res

let test_simplex_2var () =
  (* min -x - 2y s.t. x + y <= 4, x, y in [0, 3]: optimum at (1, 3), obj -7 *)
  let lp =
    build [ cont "x" 0.0 3.0 (-1.0); cont "y" 0.0 3.0 (-2.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 4.0) ]
  in
  let res = solve_optimal lp in
  check_float "objective" (-7.0) res.objective;
  check_float "x" 1.0 res.x.(0);
  check_float "y" 3.0 res.x.(1)

let test_simplex_equality () =
  (* min x + y s.t. x + 2y = 4, x,y >= 0: optimum (0, 2), obj 2 *)
  let lp =
    build [ cont "x" 0.0 10.0 1.0; cont "y" 0.0 10.0 1.0 ]
      [ ("eq", [ (0, 1.0); (1, 2.0) ], Lp.Eq, 4.0) ]
  in
  let res = solve_optimal lp in
  check_float "objective" 2.0 res.objective;
  check_float "y" 2.0 res.x.(1)

let test_simplex_infeasible () =
  let lp =
    build [ cont "x" 0.0 1.0 1.0 ]
      [
        ("lo", [ (0, 1.0) ], Lp.Ge, 2.0);
        ("hi", [ (0, 1.0) ], Lp.Le, 1.0);
      ]
  in
  let res = Simplex.solve lp in
  Alcotest.(check bool) "infeasible" true (res.status = Simplex.Infeasible)

let test_simplex_infeasible_eq_pair () =
  let lp =
    build
      [ cont "x" 0.0 10.0 0.0; cont "y" 0.0 10.0 0.0 ]
      [
        ("a", [ (0, 1.0); (1, 1.0) ], Lp.Eq, 1.0);
        ("b", [ (0, 1.0); (1, 1.0) ], Lp.Eq, 2.0);
      ]
  in
  let res = Simplex.solve lp in
  Alcotest.(check bool) "infeasible" true (res.status = Simplex.Infeasible)

let test_simplex_unbounded () =
  let lp =
    build [ cont "x" 0.0 infinity (-1.0) ]
      [ ("r", [ (0, -1.0) ], Lp.Le, 0.0) ]
  in
  let res = Simplex.solve lp in
  Alcotest.(check bool) "unbounded" true (res.status = Simplex.Unbounded)

let test_simplex_bounds_only () =
  (* No rows: min -2x + y drives x to upper, y to lower. *)
  let lp = build [ cont "x" 1.0 5.0 (-2.0); cont "y" 2.0 7.0 1.0 ] [] in
  let res = solve_optimal lp in
  check_float "x at upper" 5.0 res.x.(0);
  check_float "y at lower" 2.0 res.x.(1);
  check_float "objective" (-8.0) res.objective

let test_simplex_negative_lower () =
  (* Variables with negative lower bounds. min x s.t. x >= -3. *)
  let lp =
    build [ cont "x" (-5.0) 5.0 1.0 ] [ ("r", [ (0, 1.0) ], Lp.Ge, -3.0) ]
  in
  let res = solve_optimal lp in
  check_float "objective" (-3.0) res.objective

let test_simplex_free_variable () =
  (* Free variable pinned by an equality: min y s.t. x + y = 2, y >= 0,
     x free with x <= 1 forces y >= 1. *)
  let lp =
    build
      [ cont "x" neg_infinity 1.0 0.0; cont "y" 0.0 infinity 1.0 ]
      [ ("eq", [ (0, 1.0); (1, 1.0) ], Lp.Eq, 2.0) ]
  in
  let res = solve_optimal lp in
  check_float "objective" 1.0 res.objective

let test_simplex_degenerate () =
  (* Multiple redundant constraints through the optimum. *)
  let lp =
    build
      [ cont "x" 0.0 10.0 (-1.0); cont "y" 0.0 10.0 (-1.0) ]
      [
        ("a", [ (0, 1.0); (1, 1.0) ], Lp.Le, 2.0);
        ("b", [ (0, 1.0); (1, 1.0) ], Lp.Le, 2.0);
        ("c", [ (0, 2.0); (1, 2.0) ], Lp.Le, 4.0);
        ("d", [ (0, 1.0) ], Lp.Le, 2.0);
        ("e", [ (1, 1.0) ], Lp.Le, 2.0);
      ]
  in
  let res = solve_optimal lp in
  check_float "objective" (-2.0) res.objective

let test_simplex_warm_start () =
  let lp =
    build
      [ cont "x" 0.0 3.0 (-1.0); cont "y" 0.0 3.0 (-2.0); cont "z" 0.0 3.0 1.0 ]
      [
        ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 4.0);
        ("mix", [ (0, 1.0); (1, -1.0) ], Lp.Ge, -2.0);
      ]
  in
  let inst = Simplex.Instance.create lp in
  let r1 = Simplex.Instance.solve inst in
  let r2 =
    Simplex.Instance.solve
      ~params:(Simplex.make_params ~basis:r1.basis ())
      inst
  in
  Alcotest.(check bool) "optimal again" true (r2.status = Simplex.Optimal);
  check_float "same objective" r1.objective r2.objective;
  Alcotest.(check bool)
    "warm start converges fast" true
    (r2.iterations <= r1.iterations);
  Alcotest.(check bool)
    "warm start reported" true
    (match r2.warm with `Reused | `Repaired -> true | `Cold -> false)

let test_simplex_warm_start_changed_bounds () =
  let lp =
    build
      [ cont "x" 0.0 1.0 (-1.0); cont "y" 0.0 1.0 (-1.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 2.0) ]
  in
  let inst = Simplex.Instance.create lp in
  let r1 = Simplex.Instance.solve inst in
  check_float "both at 1" (-2.0) r1.objective;
  (* Fix x to 0 and restart from the old basis. *)
  let r2 =
    Simplex.Instance.solve
      ~params:
        (Simplex.make_params ~basis:r1.basis ~lower:[| 0.0; 0.0 |]
           ~upper:[| 0.0; 1.0 |] ())
      inst
  in
  Alcotest.(check bool) "optimal" true (r2.status = Simplex.Optimal);
  check_float "objective" (-1.0) r2.objective;
  check_float "x fixed" 0.0 r2.x.(0)

let test_simplex_ge_rows () =
  (* Classic diet-style LP. min 2x + 3y s.t. x + y >= 4, x + 3y >= 6. *)
  let lp =
    build
      [ cont "x" 0.0 100.0 2.0; cont "y" 0.0 100.0 3.0 ]
      [
        ("r1", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 4.0);
        ("r2", [ (0, 1.0); (1, 3.0) ], Lp.Ge, 6.0);
      ]
  in
  let res = solve_optimal lp in
  (* Optimum at the intersection (3, 1): obj 9. *)
  check_float "objective" 9.0 res.objective

let test_simplex_fixed_variable () =
  let lp =
    build
      [ cont "x" 2.0 2.0 5.0; cont "y" 0.0 10.0 1.0 ]
      [ ("r", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 5.0) ]
  in
  let res = solve_optimal lp in
  check_float "x pinned" 2.0 res.x.(0);
  check_float "objective" 13.0 res.objective

(* ------------------------------------------------------------------ *)
(* Property-based: random LPs vs the dense oracle                      *)
(* ------------------------------------------------------------------ *)

let lp_of_ints objs uppers rows =
  let b = Lp.Builder.create () in
  Array.iteri
    (fun j obj ->
      ignore
        (Lp.Builder.add_var b
           ~name:(Printf.sprintf "x%d" j)
           ~lower:0.0
           ~upper:(float_of_int uppers.(j))
           ~obj:(float_of_int obj) Lp.Continuous))
    objs;
  List.iteri
    (fun i (cs, sense, rhs) ->
      let coeffs =
        Array.to_list (Array.mapi (fun j c -> (j, float_of_int c)) cs)
        |> List.filter (fun (_, c) -> c <> 0.0)
      in
      Lp.Builder.add_row b ~name:(Printf.sprintf "r%d" i) coeffs sense
        (float_of_int rhs))
    rows;
  Lp.Builder.finish b

let random_lp_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 6 in
  let* nr = int_range 0 6 in
  let* objs = array_size (return nv) (int_range (-5) 5) in
  let* uppers = array_size (return nv) (int_range 0 5) in
  let coeff = int_range (-4) 4 in
  let* rows =
    list_size (return nr)
      (let* cs = array_size (return nv) coeff in
       let* sense = oneofl [ Lp.Le; Lp.Ge; Lp.Eq ] in
       let* rhs = int_range (-6) 10 in
       return (cs, sense, rhs))
  in
  return (lp_of_ints objs uppers rows)

let arbitrary_lp = QCheck.make ~print:(Format.asprintf "%a" Lp.pp) random_lp_gen

let prop_simplex_matches_dense =
  QCheck.Test.make ~name:"simplex agrees with dense oracle" ~count:500
    arbitrary_lp (fun lp ->
      let sparse = Simplex.solve lp in
      let dense = Dense.solve lp in
      match (sparse.status, dense) with
      | Simplex.Optimal, Dense.Optimal (obj, _) ->
        Float.abs (sparse.objective -. obj) <= 1e-5
      | Simplex.Infeasible, Dense.Infeasible -> true
      | _, _ -> false)

let prop_simplex_certificate =
  QCheck.Test.make ~name:"optimal solutions carry a valid KKT certificate"
    ~count:500 arbitrary_lp (fun lp ->
      let res = Simplex.solve lp in
      match res.status with
      | Simplex.Optimal -> Result.is_ok (Simplex.verify_optimal lp res)
      | Simplex.Infeasible | Simplex.Unbounded -> true)

(* Constructed-feasible LPs: plant a feasible point, so Infeasible is
   never a correct answer. *)
let feasible_lp_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 6 in
  let* nr = int_range 1 6 in
  let* x0 = array_size (return nv) (int_range 0 4) in
  let* objs = array_size (return nv) (int_range (-5) 5) in
  let coeff = int_range (-3) 3 in
  let* specs =
    list_size (return nr)
      (let* cs = array_size (return nv) coeff in
       let* sense = oneofl [ Lp.Le; Lp.Ge; Lp.Eq ] in
       let* slackness = int_range 0 3 in
       return (cs, sense, slackness))
  in
  let rows =
    List.map
      (fun (cs, sense, slackness) ->
        let activity =
          Array.to_list (Array.mapi (fun j c -> c * x0.(j)) cs)
          |> List.fold_left ( + ) 0
        in
        let rhs =
          match sense with
          | Lp.Le -> activity + slackness
          | Lp.Ge -> activity - slackness
          | Lp.Eq -> activity
        in
        (cs, sense, rhs))
      specs
  in
  return (lp_of_ints objs (Array.make nv 6) rows)

let prop_feasible_lp_solved =
  QCheck.Test.make ~name:"constructed-feasible LPs are solved to optimality"
    ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Lp.pp) feasible_lp_gen)
    (fun lp ->
      let res = Simplex.solve lp in
      res.status = Simplex.Optimal
      && Result.is_ok (Simplex.verify_optimal lp res))

(* ------------------------------------------------------------------ *)
(* MILP                                                                *)
(* ------------------------------------------------------------------ *)

let test_milp_knapsack () =
  (* max 10a + 6b + 4c s.t. a + b + c <= 2 (binary): best {a, b} = 16. *)
  let lp =
    build
      [ bin "a" (-10.0); bin "b" (-6.0); bin "c" (-4.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 2.0) ]
  in
  let res = Milp.solve lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-16.0) res.objective;
  check_float "a" 1.0 res.x.(0);
  check_float "b" 1.0 res.x.(1);
  check_float "c" 0.0 res.x.(2)

let test_milp_forces_branching () =
  (* min -x1 - x2 s.t. 2x1 + 2x2 <= 3 (binary): LP gives -1.5, ILP -1. *)
  let lp =
    build
      [ bin "x1" (-1.0); bin "x2" (-1.0) ]
      [ ("r", [ (0, 2.0); (1, 2.0) ], Lp.Le, 3.0) ]
  in
  let relax = Simplex.solve lp in
  check_float "relaxation" (-1.5) relax.objective;
  let res = Milp.solve lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-1.0) res.objective;
  Alcotest.(check bool) "integral" true (Lp.is_integral lp res.x)

let test_milp_infeasible () =
  let lp =
    build
      [ bin "x1" 1.0; bin "x2" 1.0 ]
      [ ("r", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 3.0) ]
  in
  let res = Milp.solve lp in
  Alcotest.(check bool) "infeasible" true (res.outcome = Milp.Infeasible)

let test_milp_integrality_gap_only_in_lp () =
  (* 2x = 1 has no integer solution, so the MILP is infeasible while the
     relaxation is not. *)
  let lp = build [ bin "x" 1.0 ] [ ("eq", [ (0, 2.0) ], Lp.Eq, 1.0) ] in
  let relax = Simplex.solve lp in
  Alcotest.(check bool) "LP feasible" true (relax.status = Simplex.Optimal);
  let res = Milp.solve lp in
  Alcotest.(check bool) "MILP infeasible" true (res.outcome = Milp.Infeasible)

let test_milp_mixed () =
  (* Integer count + continuous remainder. min 5n + r s.t. 3n + r = 7,
     r in [0, 2.5]: n must be >= 1.5 -> n = 2, r = 1: obj 11. *)
  let lp =
    build
      [
        ("n", 0.0, 10.0, 5.0, Lp.Integer);
        ("r", 0.0, 2.5, 1.0, Lp.Continuous);
      ]
      [ ("eq", [ (0, 3.0); (1, 1.0) ], Lp.Eq, 7.0) ]
  in
  let res = Milp.solve lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" 11.0 res.objective;
  check_float "n" 2.0 res.x.(0);
  check_float "r" 1.0 res.x.(1)

(* ------------------------------------------------------------------ *)
(* Branching variable selection                                        *)
(* ------------------------------------------------------------------ *)

let branch_tol = 1e-6

let test_most_fractional_basic () =
  let lp =
    build
      [ bin "x" 1.0; bin "y" 1.0; cont "z" 0.0 1.0 1.0 ]
      []
  in
  Alcotest.(check (option int))
    "fractional binary picked" (Some 1)
    (Milp.most_fractional branch_tol lp [| 1.0; 0.5; 0.0 |]);
  Alcotest.(check (option int))
    "continuous fraction ignored" None
    (Milp.most_fractional branch_tol lp [| 1.0; 0.0; 0.5 |]);
  Alcotest.(check (option int))
    "integral point" None
    (Milp.most_fractional branch_tol lp [| 0.0; 1.0; 0.3 |])

let test_most_fractional_objective_weighting () =
  (* Equal fractionality: the variable with the larger |obj| wins. *)
  let lp = build [ bin "cheap" 1.0; bin "dear" (-10.0) ] [] in
  Alcotest.(check (option int))
    "expensive decision fixed first" (Some 1)
    (Milp.most_fractional branch_tol lp [| 0.5; 0.5 |])

let test_most_fractional_huge_values () =
  (* Regression: the fractional part used to be computed through
     [int_of_float], which is undefined for doubles beyond the native
     int range and could report a huge integral value as fractional.
     Doubles >= 2^53 are integral by construction. *)
  let lp =
    build
      [ ("big", 0.0, 1e30, 1.0, Lp.Integer); bin "x" 1.0 ]
      []
  in
  Alcotest.(check (option int))
    "1e19 is integral" None
    (Milp.most_fractional branch_tol lp [| 1e19; 1.0 |]);
  Alcotest.(check (option int))
    "huge integral does not shadow a real fraction" (Some 1)
    (Milp.most_fractional branch_tol lp [| 1e19; 0.5 |])

let test_milp_node_limit () =
  let lp =
    build
      [ bin "x1" (-1.0); bin "x2" (-1.0); bin "x3" (-1.0) ]
      [ ("r", [ (0, 2.0); (1, 2.0); (2, 2.0) ], Lp.Le, 5.0) ]
  in
  let params = Milp.make_params ~max_nodes:1 () in
  let res = Milp.solve ~params lp in
  Alcotest.(check bool)
    "limit reported" true
    (match res.outcome with
    | Milp.Feasible | Milp.Unknown -> true
    | Milp.Proved_optimal | Milp.Infeasible | Milp.Unbounded -> false)

(* Exhaustive oracle for pure-binary MILPs. *)
let enumerate_binary_optimum (lp : Lp.t) =
  let n = Lp.nvars lp in
  assert (n <= 12);
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x =
      Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0)
    in
    if Lp.is_feasible lp x then begin
      let obj = Lp.objective_value lp x in
      match !best with
      | Some b when b <= obj -> ()
      | Some _ | None -> best := Some obj
    end
  done;
  !best

let random_binary_milp_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 8 in
  let* nr = int_range 0 5 in
  let* objs = array_size (return nv) (int_range (-6) 6) in
  let coeff = int_range (-3) 3 in
  let* rows =
    list_size (return nr)
      (let* cs = array_size (return nv) coeff in
       let* sense = oneofl [ Lp.Le; Lp.Ge ] in
       let* rhs = int_range (-4) 6 in
       return (cs, sense, rhs))
  in
  let b = Lp.Builder.create () in
  Array.iteri
    (fun j obj ->
      ignore
        (Lp.Builder.add_binary b
           ~name:(Printf.sprintf "x%d" j)
           ~obj:(float_of_int obj)))
    objs;
  List.iteri
    (fun i (cs, sense, rhs) ->
      let coeffs =
        Array.to_list (Array.mapi (fun j c -> (j, float_of_int c)) cs)
        |> List.filter (fun (_, c) -> c <> 0.0)
      in
      Lp.Builder.add_row b ~name:(Printf.sprintf "r%d" i) coeffs sense
        (float_of_int rhs))
    rows;
  return (Lp.Builder.finish b)

let prop_milp_matches_enumeration =
  QCheck.Test.make ~name:"milp agrees with exhaustive binary enumeration"
    ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Lp.pp) random_binary_milp_gen)
    (fun lp ->
      let res = Milp.solve lp in
      match (res.outcome, enumerate_binary_optimum lp) with
      | Milp.Proved_optimal, Some best ->
        Float.abs (res.objective -. best) <= 1e-6
        && Lp.is_integral lp res.x
        && Lp.is_feasible lp res.x
      | Milp.Infeasible, None -> true
      | _, _ -> false)

let test_milp_initial_incumbent () =
  (* A valid initial point prunes immediately when the bound matches. *)
  let lp =
    build
      [ bin "a" (-10.0); bin "b" (-6.0); bin "c" (-4.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 2.0) ]
  in
  let res = Milp.solve ~initial:[| 1.0; 1.0; 0.0 |] lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-16.0) res.objective

let test_milp_initial_invalid_ignored () =
  (* An infeasible initial point must not corrupt the search. *)
  let lp =
    build
      [ bin "a" (-10.0); bin "b" (-6.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 1.0) ]
  in
  let res = Milp.solve ~initial:[| 1.0; 1.0 |] lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-10.0) res.objective

let test_milp_cutoff_confirms_external_optimum () =
  (* cutoff equal to the true optimum: search proves nothing better exists
     and reports the external objective with an empty point. *)
  let lp =
    build
      [ bin "a" (-3.0); bin "b" (-2.0) ]
      [ ("cap", [ (0, 2.0); (1, 2.0) ], Lp.Le, 3.0) ]
  in
  let res = Milp.solve ~cutoff:(-3.0) lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-3.0) res.objective;
  Alcotest.(check int) "empty point" 0 (Array.length res.x)

let test_milp_cutoff_improved () =
  (* a loose cutoff is beaten by the search *)
  let lp =
    build
      [ bin "a" (-3.0); bin "b" (-2.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 2.0) ]
  in
  let res = Milp.solve ~cutoff:(-1.0) lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-5.0) res.objective;
  Alcotest.(check bool) "real point" true (Array.length res.x = 2)

(* ------------------------------------------------------------------ *)
(* Parallel branch and bound                                           *)
(* ------------------------------------------------------------------ *)

let solve_jobs ?initial ?cutoff jobs lp =
  let params = Milp.make_params ~solver_jobs:jobs () in
  Milp.solve ~params ?initial ?cutoff lp

(* The solver's determinism contract: any width returns the same
   objective and outcome as the serial search (node counts and, between
   alternative optima, the witness may differ). Cross-checked against
   the exhaustive oracle so a shared bug cannot hide in the comparison. *)
let prop_parallel_matches_serial =
  QCheck.Test.make
    ~name:"parallel solve matches serial and enumeration (2 and 4 workers)"
    ~count:120
    (QCheck.make ~print:(Format.asprintf "%a" Lp.pp) random_binary_milp_gen)
    (fun lp ->
      let serial = Milp.solve lp in
      let oracle = enumerate_binary_optimum lp in
      List.for_all
        (fun jobs ->
          let res = solve_jobs jobs lp in
          match (serial.outcome, res.outcome, oracle) with
          | Milp.Proved_optimal, Milp.Proved_optimal, Some best ->
            Float.abs (res.objective -. serial.objective) <= 1e-6
            && Float.abs (res.objective -. best) <= 1e-6
            && Lp.is_integral lp res.x
            && Lp.is_feasible lp res.x
          | Milp.Infeasible, Milp.Infeasible, None -> true
          | _, _, _ -> false)
        [ 2; 4 ])

let test_milp_parallel_cutoff_fast_path () =
  (* the cutoff-only Proved_optimal contract (external optimum confirmed,
     empty witness) holds under a parallel search *)
  let lp =
    build
      [ bin "a" (-3.0); bin "b" (-2.0) ]
      [ ("cap", [ (0, 2.0); (1, 2.0) ], Lp.Le, 3.0) ]
  in
  let res = solve_jobs ~cutoff:(-3.0) 2 lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-3.0) res.objective;
  Alcotest.(check int) "empty point" 0 (Array.length res.x);
  Alcotest.(check int) "width recorded" 2 res.workers

let test_milp_parallel_initial_incumbent () =
  (* the seeded-incumbent fast path holds under a parallel search *)
  let lp =
    build
      [ bin "a" (-10.0); bin "b" (-6.0); bin "c" (-4.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 2.0) ]
  in
  let res = solve_jobs ~initial:[| 1.0; 1.0; 0.0 |] 2 lp in
  Alcotest.(check bool) "optimal" true (res.outcome = Milp.Proved_optimal);
  check_float "objective" (-16.0) res.objective

let test_milp_parallel_stats () =
  (* a forced-branching instance: serial and 4-wide runs agree on the
     optimum and report sane effort statistics *)
  let lp =
    build
      [ bin "x1" (-1.0); bin "x2" (-1.0); bin "x3" (-1.0) ]
      [ ("cap", [ (0, 2.0); (1, 2.0); (2, 2.0) ], Lp.Le, 3.0) ]
  in
  let serial = Milp.solve lp in
  Alcotest.(check int) "serial width" 1 serial.workers;
  Alcotest.(check int) "serial never steals" 0 serial.steals;
  Alcotest.(check bool) "busy time measured" true (serial.solver_busy_s >= 0.0);
  let par = solve_jobs 4 lp in
  Alcotest.(check int) "parallel width" 4 par.workers;
  Alcotest.(check bool) "both optimal" true
    (serial.outcome = Milp.Proved_optimal && par.outcome = Milp.Proved_optimal);
  check_float "same objective" serial.objective par.objective;
  check_float "known optimum" (-1.0) par.objective

(* ------------------------------------------------------------------ *)
(* LP-file regression corpus                                           *)
(* ------------------------------------------------------------------ *)

(* dune runs the suite from the workspace root or from test/; the
   fixture deps are declared relative to test/ *)
let fixture path =
  if Sys.file_exists path then path else Filename.concat "test" path

let corpus =
  [
    ("fixtures/knapsack.lp", Some (-16.0));
    ("fixtures/cover.lp", Some 2.0);
    ("fixtures/assign.lp", Some 10.0);
    ("fixtures/mixed.lp", Some (-10.0));
    ("fixtures/branchy.lp", Some (-1.0));
    ("fixtures/infeasible.lp", None);
  ]

let test_corpus_known_optima () =
  List.iter
    (fun (path, expected) ->
      match Lp_file.read_file (fixture path) with
      | Error m -> Alcotest.fail (path ^ ": " ^ m)
      | Ok lp ->
        List.iter
          (fun jobs ->
            let res = solve_jobs jobs lp in
            let label = Printf.sprintf "%s at %d worker(s)" path jobs in
            match expected with
            | Some opt ->
              Alcotest.(check bool)
                (label ^ " proved") true
                (res.outcome = Milp.Proved_optimal);
              check_float (label ^ " objective") opt res.objective;
              Alcotest.(check bool)
                (label ^ " integral feasible point") true
                (Lp.is_integral lp res.x && Lp.is_feasible lp res.x)
            | None ->
              Alcotest.(check bool)
                (label ^ " infeasible") true
                (res.outcome = Milp.Infeasible))
          [ 1; 2; 4 ])
    corpus

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let test_presolve_fixed_variable () =
  let lp =
    build
      [ cont "fixed" 2.0 2.0 3.0; cont "x" 0.0 10.0 1.0 ]
      [ ("r", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 5.0) ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible m -> Alcotest.fail m
  | Presolve.Reduced (lp', m) ->
    Alcotest.(check int) "one variable left" 1 (Lp.nvars lp');
    check_float "offset is fixed cost" 6.0 (Presolve.objective_offset m);
    (* row rhs absorbed the fixed value: x >= 3 became a bound, so the
       singleton row is gone too *)
    Alcotest.(check int) "rows removed" 1 (snd (Presolve.removed m));
    let res = Simplex.solve lp' in
    let x = Presolve.restore m res.x in
    check_float "fixed value restored" 2.0 x.(0);
    check_float "same optimum as unreduced" (Simplex.solve lp).objective
      (res.objective +. Presolve.objective_offset m)

let test_presolve_singleton_rows () =
  let lp =
    build
      [ cont "x" 0.0 10.0 (-1.0) ]
      [
        ("ub", [ (0, 2.0) ], Lp.Le, 8.0);
        (* 2x <= 8 -> x <= 4 *)
        ("lb", [ (0, -1.0) ], Lp.Le, -1.0);
        (* -x <= -1 -> x >= 1 *)
      ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible m -> Alcotest.fail m
  | Presolve.Reduced (lp', _) ->
    Alcotest.(check int) "rows gone" 0 (Lp.nrows lp');
    let v = lp'.Lp.vars.(0) in
    check_float "upper tightened" 4.0 v.Lp.upper;
    check_float "lower tightened" 1.0 v.Lp.lower

let test_presolve_integer_rounding () =
  let lp =
    build
      [ ("n", 0.0, 10.0, 1.0, Lp.Integer) ]
      [ ("r", [ (0, 2.0) ], Lp.Le, 7.0) ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible m -> Alcotest.fail m
  | Presolve.Reduced (lp', _) ->
    (* 2n <= 7 -> n <= 3.5 -> n <= 3 *)
    check_float "rounded inward" 3.0 lp'.Lp.vars.(0).Lp.upper

let test_presolve_detects_infeasible () =
  let empty_domain =
    build [ cont "x" 0.0 1.0 0.0 ] [ ("r", [ (0, 1.0) ], Lp.Ge, 2.0) ]
  in
  (match Presolve.presolve empty_domain with
  | Presolve.Infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible (bounds)");
  let empty_row =
    build [ cont "x" 1.0 1.0 0.0 ] [ ("r", [ (0, 1.0) ], Lp.Ge, 2.0) ]
  in
  match Presolve.presolve empty_row with
  | Presolve.Infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible (row)"

let test_presolve_singleton_column () =
  (* y is free, continuous and appears only in the equality row: presolve
     substitutes y = 3 - x, folding its cost into x and a constant. *)
  let lp =
    build
      [ cont "y" neg_infinity infinity 2.0; cont "x" 0.0 10.0 (-1.0) ]
      [ ("eq", [ (0, 1.0); (1, 1.0) ], Lp.Eq, 3.0) ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible m -> Alcotest.fail m
  | Presolve.Reduced (lp', m) ->
    let s = Presolve.stats m in
    Alcotest.(check int) "cols before" 2 s.Presolve.cols_before;
    Alcotest.(check int) "cols after" 1 s.Presolve.cols_after;
    Alcotest.(check int) "one substitution" 1 s.Presolve.singleton_cols;
    Alcotest.(check int) "rows before" 1 s.Presolve.rows_before;
    Alcotest.(check int) "rows after" 0 s.Presolve.rows_after;
    (* objective folded: 2y - x = 2(3 - x) - x = 6 - 3x *)
    check_float "folded objective" (-3.0) lp'.Lp.vars.(0).Lp.obj;
    check_float "constant part" 6.0 (Presolve.objective_offset m);
    let res = Simplex.solve lp' in
    let x = Presolve.restore m res.x in
    check_float "x at its bound" 10.0 x.(1);
    check_float "y recomputed from the row" (-7.0) x.(0);
    check_float "same optimum as unreduced" (Simplex.solve lp).objective
      (res.objective +. Presolve.objective_offset m)

let test_presolve_dominated_rows () =
  let lp =
    build
      [ cont "x" 0.0 1.0 1.0; cont "y" 0.0 1.0 1.0 ]
      [
        (* max activity 2 <= 3: can never bind *)
        ("slack", [ (0, 1.0); (1, 1.0) ], Lp.Le, 3.0);
        ("bind", [ (0, 1.0); (1, 1.0) ], Lp.Ge, 1.0);
        (* same normalised lhs and rhs as [bind]: a duplicate *)
        ("dup", [ (0, 2.0); (1, 2.0) ], Lp.Ge, 2.0);
      ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible m -> Alcotest.fail m
  | Presolve.Reduced (lp', m) ->
    let s = Presolve.stats m in
    Alcotest.(check int) "rows before" 3 s.Presolve.rows_before;
    Alcotest.(check int) "rows after" 1 s.Presolve.rows_after;
    Alcotest.(check int) "two dominated rows" 2 s.Presolve.dominated_rows;
    Alcotest.(check int) "binding row survives" 1 (Lp.nrows lp');
    check_float "same optimum as unreduced" (Simplex.solve lp).objective
      ((Simplex.solve lp').objective +. Presolve.objective_offset m)

let test_presolve_duplicate_eq_infeasible () =
  (* Two equalities with the same normalised lhs forcing different
     values have no solution. *)
  let lp =
    build
      [ cont "x" 0.0 10.0 1.0; cont "y" 0.0 10.0 1.0 ]
      [
        ("eq1", [ (0, 1.0); (1, 1.0) ], Lp.Eq, 1.0);
        ("eq2", [ (0, 2.0); (1, 2.0) ], Lp.Eq, 4.0);
      ]
  in
  match Presolve.presolve lp with
  | Presolve.Infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible (duplicate eq)"

let test_milp_with_presolve () =
  (* A fixed variable plus a singleton row: presolve shrinks the problem,
     and the MILP answer (including the lifted point) is unchanged. *)
  let lp =
    build
      [
        ("fixed", 1.0, 1.0, 2.0, Lp.Integer);
        bin "a" (-10.0);
        bin "b" (-6.0);
      ]
      [
        ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 2.0);
        ("single", [ (1, 1.0) ], Lp.Le, 1.0);
      ]
  in
  let plain = Milp.solve lp in
  let reduced = Milp.solve ~presolve:true lp in
  Alcotest.(check bool) "both optimal" true
    (plain.outcome = Milp.Proved_optimal && reduced.outcome = Milp.Proved_optimal);
  check_float "same objective" plain.objective reduced.objective;
  check_float "fixed variable restored" 1.0 reduced.x.(0);
  Alcotest.(check bool) "lifted point feasible" true (Lp.is_feasible lp reduced.x)

let prop_milp_presolve_agrees =
  QCheck.Test.make ~name:"milp with presolve matches milp without" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" Lp.pp) random_binary_milp_gen)
    (fun lp ->
      let plain = Milp.solve lp in
      let reduced = Milp.solve ~presolve:true lp in
      match (plain.outcome, reduced.outcome) with
      | Milp.Proved_optimal, Milp.Proved_optimal ->
        Float.abs (plain.objective -. reduced.objective) <= 1e-6
        && Lp.is_feasible lp reduced.x
      | Milp.Infeasible, Milp.Infeasible -> true
      | _, _ -> false)

let prop_presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves the LP optimum" ~count:300
    arbitrary_lp (fun lp ->
      let direct = Simplex.solve lp in
      match Presolve.presolve lp with
      | Presolve.Infeasible _ -> direct.status = Simplex.Infeasible
      | Presolve.Reduced (lp', m) -> (
        let reduced = Simplex.solve lp' in
        match (direct.status, reduced.status) with
        | Simplex.Optimal, Simplex.Optimal ->
          Float.abs
            (direct.objective
            -. (reduced.objective +. Presolve.objective_offset m))
          <= 1e-5
          && Lp.is_feasible lp (Presolve.restore m reduced.x)
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        | _, _ -> false))

(* ------------------------------------------------------------------ *)
(* LP file writer                                                      *)
(* ------------------------------------------------------------------ *)

let test_lp_file_roundtrip () =
  let lp =
    build
      [
        bin "e1" 4.0;
        cont "f1" 0.0 2.0 0.0;
        ("z", neg_infinity, infinity, 1.0, Lp.Continuous);
        ("w", -3.0, 7.5, -2.0, Lp.Continuous);
      ]
      [
        ("link", [ (0, 2.0); (1, -1.0) ], Lp.Ge, 0.0);
        ("cap", [ (0, 1.0); (2, 1.0) ], Lp.Le, 5.0);
        ("fix", [ (3, 1.0) ], Lp.Eq, 2.0);
      ]
  in
  match Lp_file.of_string (Lp_file.to_string lp) with
  | Error m -> Alcotest.fail m
  | Ok lp' ->
    Alcotest.(check int) "vars" (Lp.nvars lp) (Lp.nvars lp');
    Alcotest.(check int) "rows" (Lp.nrows lp) (Lp.nrows lp');
    (* variable order may differ (the parser orders by first appearance),
       but a second round trip must be a fixed point *)
    (match Lp_file.of_string (Lp_file.to_string lp') with
    | Error m -> Alcotest.fail m
    | Ok lp'' ->
      Alcotest.(check string) "idempotent after normalisation"
        (Lp_file.to_string lp') (Lp_file.to_string lp''));
    (* and the parsed problem solves to the same optimum *)
    let r = Simplex.solve lp and r' = Simplex.solve lp' in
    Alcotest.(check bool) "same status" true (r.status = r'.status);
    if r.status = Simplex.Optimal then
      check_float "same objective" r.objective r'.objective

let test_lp_file_preserves_names () =
  let lp =
    build
      [ bin "e_0_12_0" 4.0; cont "f_0_12_0" 0.0 2.0 0.0; bin "u_1_7" 0.0 ]
      [
        ("lk2_0_12_0", [ (0, 2.0); (1, -1.0) ], Lp.Ge, 0.0);
        ("cap_12", [ (0, 1.0); (2, 1.0) ], Lp.Le, 1.0);
        ("flow_0_3", [ (1, 1.0) ], Lp.Eq, 1.0);
      ]
  in
  match Lp_file.of_string (Lp_file.to_string lp) with
  | Error m -> Alcotest.fail m
  | Ok lp' ->
    let names_of extract arr =
      List.sort compare (Array.to_list (Array.map extract arr))
    in
    Alcotest.(check (list string))
      "variable names survive"
      (names_of (fun (v : Lp.var) -> v.Lp.v_name) lp.Lp.vars)
      (names_of (fun (v : Lp.var) -> v.Lp.v_name) lp'.Lp.vars);
    Alcotest.(check (list string))
      "row names survive"
      (names_of (fun (r : Lp.row) -> r.Lp.r_name) lp.Lp.rows)
      (names_of (fun (r : Lp.row) -> r.Lp.r_name) lp'.Lp.rows)

let test_lp_file_parse_maximize () =
  let text =
    "Maximize\n obj: 3 x + 2 y\nSubject To\n c1: x + y <= 4\nBounds\n      0 <= x <= 3\n 0 <= y <= 3\nEnd\n"
  in
  match Lp_file.of_string text with
  | Error m -> Alcotest.fail m
  | Ok lp ->
    let r = Simplex.solve lp in
    (* max 3x + 2y == -min(-3x - 2y) = 11 at (3, 1) *)
    check_float "objective (negated)" (-11.0) r.objective

let test_lp_file_parse_errors () =
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) label true
        (Result.is_error (Lp_file.of_string text)))
    [
      ("garbage outside sections", "hello world\n");
      ("row without relation", "Minimize\n obj: x\nSubject To\n r: x 4\nEnd\n");
      ("bad bounds", "Minimize\n obj: x\nBounds\n x banana 3\nEnd\n");
    ]

(* float_of_string would happily accept all of these; the parser must
   not, and must say which line is at fault. *)
let test_lp_file_rejects_non_finite () =
  let expect_error_with label ~substring text =
    match Lp_file.of_string text with
    | Ok _ -> Alcotest.failf "%s: parsed a non-finite literal" label
    | Error msg ->
      let has sub =
        let ls = String.length msg and l = String.length sub in
        let rec go i = i + l <= ls && (String.sub msg i l = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: error %S mentions %S" label msg substring)
        true (has substring)
  in
  expect_error_with "nan objective coefficient" ~substring:"line 2"
    "Minimize\n obj: nan x\nSubject To\n c: x >= 1\nEnd\n";
  expect_error_with "nan rhs" ~substring:"line 4"
    "Minimize\n obj: x\nSubject To\n c: x >= nan\nEnd\n";
  expect_error_with "inf rhs" ~substring:"line 4"
    "Minimize\n obj: x\nSubject To\n c: x >= inf\nEnd\n";
  expect_error_with "hex float coefficient" ~substring:"hex"
    "Minimize\n obj: 0x1p4 x\nSubject To\n c: x >= 1\nEnd\n";
  expect_error_with "nan bound" ~substring:"line 6"
    "Minimize\n obj: x + y\nSubject To\n c1: x + y >= 1\nBounds\n 0 <= x <= nan\nEnd\n"

let test_lp_file_nan_bound_fixture () =
  match Lp_file.read_file (fixture "fixtures/nan_bound.lp") with
  | Ok _ -> Alcotest.fail "nan_bound.lp must be rejected"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 6" msg)
      true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 6")

let test_lp_file_output () =
  let lp =
    build
      [ bin "e_1" 1.0; cont "f_1" 0.0 2.0 0.0 ]
      [ ("link", [ (0, 2.0); (1, -1.0) ], Lp.Ge, 0.0) ]
  in
  let s = Lp_file.to_string lp in
  let has sub =
    let len_s = String.length s and len = String.length sub in
    let rec go i = i + len <= len_s && (String.sub s i len = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "Minimize" true (has "Minimize");
  Alcotest.(check bool) "Subject To" true (has "Subject To");
  Alcotest.(check bool) "Bounds" true (has "Bounds");
  Alcotest.(check bool) "General section" true (has "General");
  Alcotest.(check bool) "row" true (has "link:")

let test_simplex_deadline () =
  (* an already-expired deadline aborts before any pivoting *)
  let lp =
    build
      [ cont "x" 0.0 100.0 (-1.0); cont "y" 0.0 100.0 (-2.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 50.0) ]
  in
  let inst = Simplex.Instance.create lp in
  match
    Simplex.Instance.solve
      ~params:(Simplex.make_params ~deadline_s:(Sys.time () -. 1.0) ())
      inst
  with
  | _ -> Alcotest.fail "expected Numerical_failure"
  | exception Simplex.Numerical_failure _ -> ()

let test_verify_optimal_rejects_bogus () =
  let lp =
    build [ cont "x" 0.0 3.0 (-1.0) ] [ ("cap", [ (0, 1.0) ], Lp.Le, 2.0) ]
  in
  let res = Simplex.solve lp in
  Alcotest.(check bool) "genuine result verifies" true
    (Result.is_ok (Simplex.verify_optimal lp res));
  (* tamper with the primal point: x below its optimal value *)
  let tampered = { res with Simplex.x = [| 0.5 |] } in
  Alcotest.(check bool) "tampered result rejected" true
    (Result.is_error (Simplex.verify_optimal lp tampered));
  (* tamper with feasibility *)
  let infeasible = { res with Simplex.x = [| 9.0 |] } in
  Alcotest.(check bool) "infeasible point rejected" true
    (Result.is_error (Simplex.verify_optimal lp infeasible))

(* A transportation-style LP: 3 sources (supply 10/20/30), 3 sinks
   (demand 15/25/20), unit costs i*j+1. Big enough to pivot repeatedly,
   so it also exercises the refactorisation policy. *)
let transportation_lp () =
  let b = Lp.Builder.create () in
  let x = Array.make_matrix 3 3 0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      x.(i).(j) <-
        Lp.Builder.add_var b
          ~name:(Printf.sprintf "x%d%d" i j)
          ~lower:0.0 ~upper:60.0
          ~obj:(float_of_int ((i * j) + 1))
          Lp.Continuous
    done
  done;
  let supply = [| 10.0; 20.0; 30.0 |] and demand = [| 15.0; 25.0; 20.0 |] in
  for i = 0 to 2 do
    Lp.Builder.add_row b
      ~name:(Printf.sprintf "s%d" i)
      (List.init 3 (fun j -> (x.(i).(j), 1.0)))
      Lp.Le supply.(i)
  done;
  for j = 0 to 2 do
    Lp.Builder.add_row b
      ~name:(Printf.sprintf "d%d" j)
      (List.init 3 (fun i -> (x.(i).(j), 1.0)))
      Lp.Ge demand.(j)
  done;
  Lp.Builder.finish b

let test_simplex_bigger_structured () =
  let lp = transportation_lp () in
  let res = solve_optimal lp in
  (* row 0 costs 1 everywhere; rows 1/2 prefer low-j columns. A known
     optimal assignment costs 10*1 + (5+15)*1|2... verify against the
     dense oracle instead of hand-arithmetic. *)
  match Dense.solve lp with
  | Dense.Optimal (obj, _) -> check_float "matches oracle" obj res.objective
  | Dense.Infeasible | Dense.Unbounded -> Alcotest.fail "oracle disagrees"

let test_simplex_refactor_policies () =
  (* Aggressive refactorisation policies (every pivot; on any eta fill;
     on any FTRAN residual) must not change the optimum — they only
     trade pivot speed for numerical freshness. *)
  let lp = transportation_lp () in
  let reference = Simplex.solve lp in
  List.iter
    (fun (label, refactor) ->
      let r = Simplex.solve ~params:(Simplex.make_params ~refactor ()) lp in
      Alcotest.(check bool) (label ^ " optimal") true (r.status = Simplex.Optimal);
      check_float (label ^ " objective") reference.objective r.objective)
    [
      ("every pivot", { Simplex.default_refactor with Simplex.interval = 1 });
      ("fill trigger", { Simplex.default_refactor with Simplex.fill_factor = 0.0 });
      ( "residual trigger",
        { Simplex.default_refactor with Simplex.residual_tol = 0.0 } )
    ]

let test_simplex_warm_dual_btran_saved () =
  (* Tightening a basic variable's bound makes the warm re-solve run the
     dual simplex; every dual pivot reuses the ratio-test BTRAN instead
     of recomputing the duals, and reports the saving. *)
  let lp =
    build
      [ cont "x" 0.0 3.0 (-1.0); cont "y" 0.0 3.0 (-2.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 4.0) ]
  in
  let inst = Simplex.Instance.create lp in
  let r1 = Simplex.Instance.solve inst in
  check_float "cold optimum" (-7.0) r1.objective;
  (* x is basic at 1; capping it at 0.5 forces a dual pivot *)
  let r2 =
    Simplex.Instance.solve
      ~params:
        (Simplex.make_params ~basis:r1.basis ~lower:[| 0.0; 0.0 |]
           ~upper:[| 0.5; 3.0 |] ())
      inst
  in
  Alcotest.(check bool) "optimal" true (r2.status = Simplex.Optimal);
  check_float "warm optimum" (-6.5) r2.objective;
  Alcotest.(check bool)
    "dual pivots saved a BTRAN each" true (r2.btran_saved >= 1)

(* ------------------------------------------------------------------ *)
(* Pricing modes, bound flips and name-keyed basis warm starts         *)
(* ------------------------------------------------------------------ *)

let solve_pricing pricing lp =
  Simplex.solve ~params:(Simplex.make_params ~pricing ()) lp

(* Devex/partial pricing changes the pivot order, never the answer: both
   modes must agree on status, prove the same objective, and devex optima
   must pass the independent certificate check. *)
let check_pricing_identity label lp =
  let full = solve_pricing Simplex.Dantzig lp in
  let devex = solve_pricing Simplex.Devex lp in
  Alcotest.(check bool)
    (label ^ " same status") true (full.Simplex.status = devex.Simplex.status);
  match full.Simplex.status with
  | Simplex.Optimal ->
    check_float (label ^ " same objective") full.Simplex.objective
      devex.Simplex.objective;
    Alcotest.(check bool)
      (label ^ " devex certificate") true
      (Result.is_ok (Simplex.verify_optimal lp devex))
  | Simplex.Infeasible | Simplex.Unbounded -> ()

let test_pricing_identity_corpus () =
  List.iter
    (fun (path, _) ->
      match Lp_file.read_file (fixture path) with
      | Error m -> Alcotest.fail (path ^ ": " ^ m)
      | Ok lp -> check_pricing_identity path lp)
    corpus

let prop_pricing_identity =
  QCheck.Test.make ~name:"devex pricing proves the dantzig objective"
    ~count:500 arbitrary_lp (fun lp ->
      let full = solve_pricing Simplex.Dantzig lp in
      let devex = solve_pricing Simplex.Devex lp in
      full.Simplex.status = devex.Simplex.status
      && (full.Simplex.status <> Simplex.Optimal
          || Float.abs (full.Simplex.objective -. devex.Simplex.objective)
             <= 1e-5
             && Result.is_ok (Simplex.verify_optimal lp devex)))

let prop_pricing_identity_feasible =
  QCheck.Test.make
    ~name:"devex solves constructed-feasible LPs to the dantzig optimum"
    ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Lp.pp) feasible_lp_gen)
    (fun lp ->
      let full = solve_pricing Simplex.Dantzig lp in
      let devex = solve_pricing Simplex.Devex lp in
      devex.Simplex.status = Simplex.Optimal
      && Float.abs (full.Simplex.objective -. devex.Simplex.objective) <= 1e-5
      && Result.is_ok (Simplex.verify_optimal lp devex))

let test_simplex_bound_flip () =
  (* min -x1 - x2 s.t. x1 + x2 <= 10, x in [0,1]^2: the ratio test is
     bound-limited on every entering variable, so each step flips it to
     its opposite bound without touching the basis (no eta, no FTRAN). *)
  let lp =
    build
      [ cont "x1" 0.0 1.0 (-1.0); cont "x2" 0.0 1.0 (-1.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 10.0) ]
  in
  let r = Simplex.solve lp in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_float "objective" (-2.0) r.Simplex.objective;
  Alcotest.(check bool) "bound flips taken" true (r.Simplex.bound_flips >= 1);
  Alcotest.(check bool)
    "certificate" true
    (Result.is_ok (Simplex.verify_optimal lp r))

let test_basis_assoc_roundtrip () =
  let lp = transportation_lp () in
  let r = Simplex.solve lp in
  let assoc = Simplex.Basis.to_assoc lp r.Simplex.basis in
  let b, fixup = Simplex.Basis.of_assoc lp assoc in
  Alcotest.(check bool) "exact remap" true (fixup = `Exact);
  let r2 =
    Simplex.Instance.solve
      ~params:(Simplex.make_params ~basis:b ())
      (Simplex.Instance.create lp)
  in
  check_float "same objective" r.Simplex.objective r2.Simplex.objective;
  Alcotest.(check bool)
    "warm start reported" true
    (match r2.Simplex.warm with `Reused | `Repaired -> true | `Cold -> false)

let test_basis_text_roundtrip () =
  let lp = transportation_lp () in
  let r = Simplex.solve lp in
  let text = Simplex.Basis.to_string lp r.Simplex.basis in
  match Simplex.Basis.of_string lp text with
  | Error m -> Alcotest.fail m
  | Ok (b, fixup) ->
    Alcotest.(check bool) "exact round trip" true (fixup = `Exact);
    Alcotest.(check bool)
      "statuses preserved" true
      (Simplex.Basis.to_assoc lp r.Simplex.basis = Simplex.Basis.to_assoc lp b)

let test_basis_of_string_rejects_garbage () =
  let lp = transportation_lp () in
  match Simplex.Basis.of_string lp "# optrouter basis v1\nv nope\n" with
  | Ok _ -> Alcotest.fail "accepted malformed basis line"
  | Error _ -> ()

let test_basis_cross_lp_remap () =
  (* The RULE1-to-RULEk scenario in miniature: warm-start a structurally
     different LP that shares names with the solved one but adds a
     variable and a row. The remap must report Patched, and the warm
     solve must still land on the new LP's own certified optimum. *)
  let lp1 =
    build
      [ cont "x" 0.0 3.0 (-1.0); cont "y" 0.0 3.0 (-2.0) ]
      [ ("cap", [ (0, 1.0); (1, 1.0) ], Lp.Le, 4.0) ]
  in
  let r1 = Simplex.solve lp1 in
  let assoc = Simplex.Basis.to_assoc lp1 r1.Simplex.basis in
  let lp2 =
    build
      [
        cont "x" 0.0 3.0 (-1.0);
        cont "y" 0.0 3.0 (-2.0);
        cont "z" 0.0 2.0 (-4.0);
      ]
      [
        ("cap", [ (0, 1.0); (1, 1.0); (2, 1.0) ], Lp.Le, 4.0);
        ("zcap", [ (2, 1.0) ], Lp.Le, 1.0);
      ]
  in
  let b, fixup = Simplex.Basis.of_assoc lp2 assoc in
  Alcotest.(check bool) "patched remap" true (fixup = `Patched);
  let warm =
    Simplex.Instance.solve
      ~params:(Simplex.make_params ~basis:b ())
      (Simplex.Instance.create lp2)
  in
  let cold = Simplex.solve lp2 in
  Alcotest.(check bool) "optimal" true (warm.Simplex.status = Simplex.Optimal);
  check_float "matches cold solve" cold.Simplex.objective
    warm.Simplex.objective;
  Alcotest.(check bool)
    "certificate" true
    (Result.is_ok (Simplex.verify_optimal lp2 warm))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ilp"
    [
      ( "builder",
        [
          Alcotest.test_case "merges duplicate coefficients" `Quick
            test_builder_merges_duplicates;
          Alcotest.test_case "drops cancelled coefficients" `Quick
            test_builder_drops_zero;
          Alcotest.test_case "full cancellation keeps an empty row" `Quick
            test_builder_cancels_to_empty;
          Alcotest.test_case "rejects inverted bounds" `Quick
            test_builder_rejects_bad_bounds;
          Alcotest.test_case "rejects bad variable index" `Quick
            test_builder_rejects_bad_index;
          Alcotest.test_case "feasibility helpers" `Quick test_feasibility_helpers;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "two-variable LP" `Quick test_simplex_2var;
          Alcotest.test_case "equality row" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible bounds" `Quick test_simplex_infeasible;
          Alcotest.test_case "infeasible equalities" `Quick
            test_simplex_infeasible_eq_pair;
          Alcotest.test_case "unbounded ray" `Quick test_simplex_unbounded;
          Alcotest.test_case "bounds only" `Quick test_simplex_bounds_only;
          Alcotest.test_case "negative lower bounds" `Quick
            test_simplex_negative_lower;
          Alcotest.test_case "free variable" `Quick test_simplex_free_variable;
          Alcotest.test_case "degenerate constraints" `Quick
            test_simplex_degenerate;
          Alcotest.test_case "warm start" `Quick test_simplex_warm_start;
          Alcotest.test_case "warm start with changed bounds" `Quick
            test_simplex_warm_start_changed_bounds;
          Alcotest.test_case ">= rows" `Quick test_simplex_ge_rows;
          Alcotest.test_case "fixed variable" `Quick test_simplex_fixed_variable;
        ] );
      ( "simplex-extra",
        [
          Alcotest.test_case "deadline aborts" `Quick test_simplex_deadline;
          Alcotest.test_case "verify_optimal rejects tampering" `Quick
            test_verify_optimal_rejects_bogus;
          Alcotest.test_case "transportation LP" `Quick
            test_simplex_bigger_structured;
          Alcotest.test_case "aggressive refactor policies" `Quick
            test_simplex_refactor_policies;
          Alcotest.test_case "warm dual re-solve saves BTRANs" `Quick
            test_simplex_warm_dual_btran_saved;
        ] );
      ( "simplex-properties",
        [
          qtest prop_simplex_matches_dense;
          qtest prop_simplex_certificate;
          qtest prop_feasible_lp_solved;
          qtest prop_pricing_identity;
          qtest prop_pricing_identity_feasible;
        ] );
      ( "simplex-pricing",
        [
          Alcotest.test_case "pricing identity on the fixture corpus" `Quick
            test_pricing_identity_corpus;
          Alcotest.test_case "bound-flip ratio test" `Quick
            test_simplex_bound_flip;
          Alcotest.test_case "basis assoc round trip" `Quick
            test_basis_assoc_roundtrip;
          Alcotest.test_case "basis textual round trip" `Quick
            test_basis_text_roundtrip;
          Alcotest.test_case "basis parser rejects garbage" `Quick
            test_basis_of_string_rejects_garbage;
          Alcotest.test_case "cross-LP basis remap warm start" `Quick
            test_basis_cross_lp_remap;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "branching required" `Quick
            test_milp_forces_branching;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "fractional equality" `Quick
            test_milp_integrality_gap_only_in_lp;
          Alcotest.test_case "mixed integer/continuous" `Quick test_milp_mixed;
          Alcotest.test_case "most_fractional basics" `Quick
            test_most_fractional_basic;
          Alcotest.test_case "most_fractional objective weighting" `Quick
            test_most_fractional_objective_weighting;
          Alcotest.test_case "most_fractional huge values" `Quick
            test_most_fractional_huge_values;
          Alcotest.test_case "node limit" `Quick test_milp_node_limit;
          Alcotest.test_case "initial incumbent" `Quick test_milp_initial_incumbent;
          Alcotest.test_case "invalid initial ignored" `Quick
            test_milp_initial_invalid_ignored;
          Alcotest.test_case "cutoff confirms external optimum" `Quick
            test_milp_cutoff_confirms_external_optimum;
          Alcotest.test_case "cutoff improved by search" `Quick
            test_milp_cutoff_improved;
        ] );
      ("milp-properties", [ qtest prop_milp_matches_enumeration ]);
      ( "milp-parallel",
        [
          Alcotest.test_case "cutoff fast path at width 2" `Quick
            test_milp_parallel_cutoff_fast_path;
          Alcotest.test_case "initial incumbent at width 2" `Quick
            test_milp_parallel_initial_incumbent;
          Alcotest.test_case "stats and identity at width 4" `Quick
            test_milp_parallel_stats;
          qtest prop_parallel_matches_serial;
        ] );
      ( "lp-corpus",
        [
          Alcotest.test_case "fixture MILPs prove known optima at widths 1/2/4"
            `Quick test_corpus_known_optima;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "fixed variables eliminated" `Quick
            test_presolve_fixed_variable;
          Alcotest.test_case "singleton rows become bounds" `Quick
            test_presolve_singleton_rows;
          Alcotest.test_case "integer bound rounding" `Quick
            test_presolve_integer_rounding;
          Alcotest.test_case "detects infeasibility" `Quick
            test_presolve_detects_infeasible;
          Alcotest.test_case "singleton columns substituted" `Quick
            test_presolve_singleton_column;
          Alcotest.test_case "dominated and duplicate rows dropped" `Quick
            test_presolve_dominated_rows;
          Alcotest.test_case "conflicting duplicate equalities" `Quick
            test_presolve_duplicate_eq_infeasible;
          qtest prop_presolve_preserves_optimum;
          Alcotest.test_case "milp with presolve" `Quick test_milp_with_presolve;
          qtest prop_milp_presolve_agrees;
        ] );
      ( "lp-file",
        [
          Alcotest.test_case "sections present" `Quick test_lp_file_output;
          Alcotest.test_case "round trip" `Quick test_lp_file_roundtrip;
          Alcotest.test_case "round trip preserves names" `Quick
            test_lp_file_preserves_names;
          Alcotest.test_case "maximize parsed" `Quick test_lp_file_parse_maximize;
          Alcotest.test_case "parse errors" `Quick test_lp_file_parse_errors;
          Alcotest.test_case "rejects nan/inf/hex literals with line numbers"
            `Quick test_lp_file_rejects_non_finite;
          Alcotest.test_case "nan-bound fixture rejected" `Quick
            test_lp_file_nan_bound_fixture;
        ] );
    ]
