(* Tests for the serve subsystem: the content-addressed result cache
   (memory LRU + on-disk tier with corruption recovery), the engine's
   cache-hit byte-identity contract, deadline semantics, the wire
   protocol, and the daemon loop end to end over a Unix socket. *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Clip = Optrouter_grid.Clip
module Clipfile = Optrouter_clipfile.Clipfile
module Optrouter = Optrouter_core.Optrouter
module Milp = Optrouter_ilp.Milp
module Serve = Optrouter_serve.Serve
module Cache = Optrouter_serve.Cache

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }

let eol_clip =
  Clip.make ~name:"eol" ~cols:4 ~rows:1 ~layers:2
    [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]

let fast_config =
  Optrouter.make_config
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ())
    ()

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let spit path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let entry_path dir key = Filename.concat dir (key ^ ".cache")

(* ------------------------------------------------------------------ *)
(* Cache: memory tier                                                  *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c "k1" "p1";
  Cache.store c "k2" "p2";
  Alcotest.(check int) "two entries" 2 (Cache.mem_size c);
  (match Cache.find c "k1" with
  | Some ("p1", Cache.Memory) -> ()
  | Some _ | None -> Alcotest.fail "k1 should hit in memory");
  (* k2 is now least recently used; storing k3 evicts it *)
  Cache.store c "k3" "p3";
  Alcotest.(check int) "still two entries" 2 (Cache.mem_size c);
  Alcotest.(check bool) "k2 evicted" true (Cache.find c "k2" = None);
  (match Cache.find c "k1" with
  | Some ("p1", Cache.Memory) -> ()
  | Some _ | None -> Alcotest.fail "k1 survives the eviction");
  let s = Cache.stats c in
  Alcotest.(check int) "stores" 3 s.Cache.stores;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "mem hits" 2 s.Cache.mem_hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses

let test_cache_restore_refreshes () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c "k1" "p1";
  Cache.store c "k2" "p2";
  (* re-storing k1 refreshes its slot instead of evicting anything *)
  Cache.store c "k1" "p1";
  Cache.store c "k3" "p3";
  Alcotest.(check bool) "k1 refreshed, k2 evicted" true
    (Cache.find c "k1" <> None && Cache.find c "k2" = None)

(* ------------------------------------------------------------------ *)
(* Cache: disk tier                                                    *)
(* ------------------------------------------------------------------ *)

let test_cache_disk_roundtrip () =
  let dir = fresh_dir "optrouter-cache" in
  let payload = "verdict routed\ncost 3 wirelength 3 vias 0\nnet 0 1 2\n" in
  let c1 = Cache.create ~dir ~capacity:4 () in
  Cache.store c1 "aaaa" payload;
  Alcotest.(check bool) "entry file exists" true
    (Sys.file_exists (entry_path dir "aaaa"));
  (* a fresh cache over the same dir answers from disk, then memory *)
  let c2 = Cache.create ~dir ~capacity:4 () in
  (match Cache.find c2 "aaaa" with
  | Some (p, Cache.Disk) -> Alcotest.(check string) "disk payload" payload p
  | Some (_, Cache.Memory) -> Alcotest.fail "first lookup cannot be a memory hit"
  | None -> Alcotest.fail "disk entry not found");
  (match Cache.find c2 "aaaa" with
  | Some (_, Cache.Memory) -> ()
  | Some (_, Cache.Disk) | None -> Alcotest.fail "disk hit was not promoted")

let test_cache_disk_corruption_recovery () =
  let dir = fresh_dir "optrouter-cache" in
  let writer = Cache.create ~dir ~capacity:8 () in
  let payload = "verdict routed\nnet 0 5 6 7\n" in
  List.iter (fun k -> Cache.store writer k payload) [ "t1"; "t2"; "t3" ];
  (* truncate t1's payload *)
  let p1 = entry_path dir "t1" in
  let raw = slurp p1 in
  spit p1 (String.sub raw 0 (String.length raw - 3));
  (* append trailing garbage to t2 (a torn rewrite) *)
  let p2 = entry_path dir "t2" in
  spit p2 (slurp p2 ^ "garbage");
  (* t4: stale file under the wrong key (copied from t3) *)
  let p4 = entry_path dir "t4" in
  spit p4 (slurp (entry_path dir "t3"));
  (* t5: wrong header version *)
  let p5 = entry_path dir "t5" in
  spit p5 "# optrouter cache v99\nkey t5\nbytes 2\nhi";
  let c = Cache.create ~dir ~capacity:8 () in
  List.iter
    (fun (key, path, why) ->
      Alcotest.(check bool) (why ^ " is a miss") true (Cache.find c key = None);
      Alcotest.(check bool) (why ^ " removed") false (Sys.file_exists path))
    [
      ("t1", p1, "truncated entry");
      ("t2", p2, "torn entry");
      ("t4", p4, "key-mismatched entry");
      ("t5", p5, "wrong-version entry");
    ];
  Alcotest.(check int) "disk errors counted" 4 (Cache.stats c).Cache.disk_errors;
  (* the intact entry still loads *)
  (match Cache.find c "t3" with
  | Some (p, Cache.Disk) -> Alcotest.(check string) "t3 payload intact" payload p
  | Some (_, Cache.Memory) | None -> Alcotest.fail "t3 should load from disk")

let test_cache_hammer () =
  (* 4 domains hammer an 8-entry cache with overlapping keys: the mutex
     must keep the LRU table, clock and counters coherent under real
     contention, with the disk tier adding promotion traffic. Payloads
     are derived from the key, so any cross-key corruption shows up as a
     wrong payload, not just a crash. *)
  let dir = fresh_dir "optrouter-cache" in
  let c = Cache.create ~dir ~capacity:8 () in
  let keys = Array.init 24 (fun i -> Printf.sprintf "h%02d" i) in
  let payload key = "payload-of-" ^ key in
  let rounds = 200 in
  let finds_per_domain = ref 0 in
  (* precompute one domain's schedule length so the partition check
     below can count total [find] calls exactly *)
  let worker seed () =
    let finds = ref 0 in
    for round = 0 to rounds - 1 do
      let key = keys.((seed + (round * 7)) mod Array.length keys) in
      (match Cache.find c key with
      | Some (p, _) ->
        if p <> payload key then failwith ("corrupt payload for " ^ key)
      | None -> Cache.store c key (payload key));
      incr finds;
      (* second, always-resident key keeps the hit path hot *)
      let hot = keys.(seed mod 4) in
      (match Cache.find c hot with
      | Some (p, _) ->
        if p <> payload hot then failwith ("corrupt payload for " ^ hot)
      | None -> Cache.store c hot (payload hot));
      incr finds
    done;
    !finds
  in
  finds_per_domain := 2 * rounds;
  let domains = List.init 4 (fun seed -> Domain.spawn (worker seed)) in
  let find_calls = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
  Alcotest.(check int) "every find call ran" (4 * !finds_per_domain) find_calls;
  let s = Cache.stats c in
  Alcotest.(check int)
    "hits + misses partition the find calls" find_calls
    (s.Cache.mem_hits + s.Cache.disk_hits + s.Cache.misses);
  Alcotest.(check int) "every miss was answered by a store" s.Cache.misses
    s.Cache.stores;
  Alcotest.(check int) "no disk errors" 0 s.Cache.disk_errors;
  Alcotest.(check bool)
    (Printf.sprintf "memory tier within capacity (%d)" (Cache.mem_size c))
    true
    (Cache.mem_size c <= 8);
  (* quiescent: every key answers with its own payload *)
  Array.iter
    (fun key ->
      match Cache.find c key with
      | Some (p, _) -> Alcotest.(check string) ("payload " ^ key) (payload key) p
      | None -> Alcotest.fail ("key lost after hammer: " ^ key))
    keys

(* ------------------------------------------------------------------ *)
(* Cache key                                                           *)
(* ------------------------------------------------------------------ *)

let test_cache_key_effort_independent () =
  let key config =
    Serve.cache_key ~config ~tech:Tech.n28_12t ~rules:(Rules.rule 4) eol_clip
  in
  let slow =
    Optrouter.make_config
      ~milp:(Milp.make_params ~max_nodes:50 ~time_limit_s:0.5 ~solver_jobs:4 ())
      ()
  in
  Alcotest.(check string)
    "effort knobs (nodes/time/width) do not change the key" (key fast_config)
    (key slow);
  let other_rule =
    Serve.cache_key ~config:fast_config ~tech:Tech.n28_12t
      ~rules:(Rules.rule 6) eol_clip
  in
  Alcotest.(check bool) "rule changes the key" true (key fast_config <> other_rule);
  let other_tech =
    Serve.cache_key ~config:fast_config ~tech:Tech.n28_8t
      ~rules:(Rules.rule 4) eol_clip
  in
  Alcotest.(check bool) "tech changes the key" true (key fast_config <> other_tech)

let test_cache_key_v3_new_dimensions () =
  (* The canonical rule string grew objective/dsa suffixes in this format
     generation; the version tag must have been bumped exactly once. *)
  Alcotest.(check string) "key version" "optrouter serve key v3"
    Serve.key_version;
  let key rules =
    Serve.cache_key ~config:fast_config ~tech:Tech.n28_12t ~rules eol_clip
  in
  let base = Rules.rule 4 in
  Alcotest.(check bool) "objective changes the key" true
    (key base <> key (Rules.with_objective Rules.Via_count base));
  Alcotest.(check bool) "via weight changes the key" true
    (key (Rules.with_objective (Rules.Via_weighted 2.0) base)
    <> key (Rules.with_objective (Rules.Via_weighted 3.0) base));
  Alcotest.(check bool) "DSA rule changes the key" true
    (key base <> key (Rules.rule 12))

(* ------------------------------------------------------------------ *)
(* Engine: hits, bypass, deadlines                                     *)
(* ------------------------------------------------------------------ *)

let with_engine ?(jobs = 1) ?cache_dir ?(time_limit_s = 20.0) ?(config = fast_config) f =
  let t =
    Serve.create
      (Serve.make_params ?cache_dir ~jobs ~time_limit_s ~config ())
  in
  Fun.protect ~finally:(fun () -> Serve.destroy t) (fun () -> f t)

let request ?deadline_s ?(no_cache = false) ?(rules = Rules.rule 4) clip =
  { Serve.tech = Tech.n28_12t; rules; clip; deadline_s; no_cache }

let reply_exn label = function
  | Ok (r : Serve.reply) -> r
  | Error e -> Alcotest.failf "%s: %s" label e

let test_hit_byte_identity () =
  with_engine (fun t ->
      let r1 = reply_exn "first" (Serve.handle t (request eol_clip)) in
      Alcotest.(check bool) "first is a miss" true (r1.Serve.status = Serve.Miss);
      let r2 = reply_exn "second" (Serve.handle t (request eol_clip)) in
      Alcotest.(check bool) "second hits memory" true
        (r2.Serve.status = Serve.Hit_memory);
      Alcotest.(check string) "hit payload byte-identical" r1.Serve.payload
        r2.Serve.payload;
      (* and both equal a fresh direct solve under the same result-relevant
         configuration *)
      let fresh =
        Serve.payload_of_result
          (Optrouter.route ~config:fast_config ~tech:Tech.n28_12t
             ~rules:(Rules.rule 4) eol_clip)
      in
      Alcotest.(check string) "equals a direct solve" fresh r1.Serve.payload)

let test_bypass_solves_but_stores () =
  with_engine (fun t ->
      let r1 = reply_exn "bypass" (Serve.handle t (request ~no_cache:true eol_clip)) in
      Alcotest.(check bool) "bypass status" true (r1.Serve.status = Serve.Bypass);
      (* the bypass solve still refreshed the cache for later callers *)
      let r2 = reply_exn "after" (Serve.handle t (request eol_clip)) in
      Alcotest.(check bool) "subsequent request hits" true
        (r2.Serve.status = Serve.Hit_memory);
      Alcotest.(check string) "same payload" r1.Serve.payload r2.Serve.payload)

let test_batch_dedup_single_solve () =
  with_engine (fun t ->
      let reqs = [ request eol_clip; request eol_clip; request eol_clip ] in
      let replies = List.map (reply_exn "batch") (Serve.handle_batch t reqs) in
      (match replies with
      | a :: rest ->
        List.iter
          (fun (r : Serve.reply) ->
            Alcotest.(check string) "same payload across batch" a.Serve.payload
              r.Serve.payload)
          rest
      | [] -> Alcotest.fail "empty batch result");
      (* duplicates within the batch were answered by one solve/store *)
      Alcotest.(check int) "one store" 1 (Cache.stats (Serve.cache t)).Cache.stores)

let test_deadline_hits_cached_proof () =
  with_engine (fun t ->
      let r1 = reply_exn "no deadline" (Serve.handle t (request eol_clip)) in
      (* a proven result is valid under any later deadline: the deadline is
         not part of the key, so this hits *)
      let r2 =
        reply_exn "deadline 5s" (Serve.handle t (request ~deadline_s:5.0 eol_clip))
      in
      Alcotest.(check bool) "deadline request hits" true
        (r2.Serve.status = Serve.Hit_memory);
      Alcotest.(check string) "same proven payload" r1.Serve.payload
        r2.Serve.payload)

let test_limit_never_cached () =
  (* An engine whose cap is an already-expired deadline can only produce
     Limit verdicts; those must never enter the cache. *)
  with_engine ~time_limit_s:1e-9 (fun t ->
      let r1 = reply_exn "limited" (Serve.handle t (request eol_clip)) in
      Alcotest.(check bool) "limit verdict" true
        (String.length r1.Serve.payload >= 13
        && String.sub r1.Serve.payload 0 13 = "verdict limit");
      let r2 = reply_exn "again" (Serve.handle t (request eol_clip)) in
      Alcotest.(check bool) "still a miss (nothing was cached)" true
        (r2.Serve.status = Serve.Miss);
      Alcotest.(check int) "no stores" 0
        (Cache.stats (Serve.cache t)).Cache.stores)

let lag_config =
  Optrouter.make_config ~solve_mode:Optrouter.Lagrangian
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ())
    ()

let test_solve_mode_changes_key () =
  (* Same clip, same everything — except the solve mode. The two modes
     answer with different result semantics, so they must never share a
     cache slot. *)
  let key config =
    Serve.cache_key ~config ~tech:Tech.n28_12t ~rules:(Rules.rule 4) eol_clip
  in
  Alcotest.(check bool) "exact and lagrangian keys differ" true
    (key fast_config <> key lag_config)

let test_lagrangian_never_cached () =
  (* Near-optimal results carry no proof: caching one would freeze a
     heuristic answer forever. Every request must re-solve. *)
  with_engine ~config:lag_config (fun t ->
      let r1 = reply_exn "first" (Serve.handle t (request ~rules:(Rules.rule 1) eol_clip)) in
      Alcotest.(check bool) "near-optimal payload" true
        (String.length r1.Serve.payload >= 20
        && String.sub r1.Serve.payload 0 20 = "verdict near-optimal");
      let r2 = reply_exn "second" (Serve.handle t (request ~rules:(Rules.rule 1) eol_clip)) in
      Alcotest.(check bool) "still a miss (nothing was cached)" true
        (r2.Serve.status = Serve.Miss);
      Alcotest.(check int) "no stores" 0
        (Cache.stats (Serve.cache t)).Cache.stores;
      Alcotest.(check string) "re-solves are byte-identical anyway"
        r1.Serve.payload r2.Serve.payload)

(* ------------------------------------------------------------------ *)
(* qcheck: cache hits are byte-identical to fresh solves at -j 2       *)
(* ------------------------------------------------------------------ *)

(* Same generator shape as test_exec's reuse-identity property: shuffled
   grid positions paired into two-pin nets. *)
let random_clip (cols, rows, seed) =
  let rng = Random.State.make [| seed; cols; rows |] in
  let positions = Array.init (cols * rows) (fun i -> (i mod cols, i / cols)) in
  for i = Array.length positions - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = positions.(i) in
    positions.(i) <- positions.(j);
    positions.(j) <- t
  done;
  let nets = 1 + Random.State.int rng 2 in
  let net i =
    two_pin (Printf.sprintf "n%d" i) positions.(2 * i) positions.((2 * i) + 1)
  in
  Clip.make
    ~name:(Printf.sprintf "rand-%dx%d-%d" cols rows seed)
    ~cols ~rows ~layers:2 (List.init nets net)

let qcheck_hit_identity_j2 =
  QCheck.Test.make ~count:6
    ~name:"serve cache hits byte-identical to fresh solves (-j 2)"
    QCheck.(triple (int_range 3 4) (int_range 2 3) (int_range 0 10_000))
    (fun spec ->
      let clip = random_clip spec in
      with_engine ~jobs:2 (fun t ->
          (* duplicate keys inside one batch: one solve feeds both *)
          match Serve.handle_batch t [ request clip; request clip ] with
          | [ Ok a; Ok b ] ->
            let hit = reply_exn "hit" (Serve.handle t (request clip)) in
            let fresh =
              Serve.payload_of_result
                (Optrouter.route ~config:fast_config ~tech:Tech.n28_12t
                   ~rules:(Rules.rule 4) clip)
            in
            a.Serve.payload = b.Serve.payload
            && hit.Serve.status = Serve.Hit_memory
            && hit.Serve.payload = a.Serve.payload
            && fresh = a.Serve.payload
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let test_text_request_roundtrip () =
  let msg =
    Serve.text_request ~deadline_s:2.5 ~no_cache:true ~rule:4
      (Clipfile.to_string eol_clip)
  in
  match Serve.parse_request msg with
  | Error e -> Alcotest.fail e
  | Ok req ->
    Alcotest.(check string) "rule" "RULE4" req.Serve.rules.Rules.name;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 2.5)
      req.Serve.deadline_s;
    Alcotest.(check bool) "no_cache" true req.Serve.no_cache;
    Alcotest.(check string) "clip round-trips" (Clipfile.to_string eol_clip)
      (Clipfile.to_string req.Serve.clip)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let test_json_request () =
  let msg =
    Printf.sprintf
      "{\"rule\": 6, \"clip\": \"%s\", \"deadline_s\": 1.5, \"no_cache\": true}"
      (json_escape (Clipfile.to_string eol_clip))
  in
  match Serve.parse_request msg with
  | Error e -> Alcotest.fail e
  | Ok req ->
    Alcotest.(check string) "rule" "RULE6" req.Serve.rules.Rules.name;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 1.5)
      req.Serve.deadline_s;
    Alcotest.(check bool) "no_cache" true req.Serve.no_cache;
    Alcotest.(check string) "clip round-trips" (Clipfile.to_string eol_clip)
      (Clipfile.to_string req.Serve.clip)

let test_request_parse_errors () =
  let clip_text = Clipfile.to_string eol_clip in
  List.iter
    (fun (label, msg) ->
      Alcotest.(check bool) label true
        (Result.is_error (Serve.parse_request msg)))
    [
      ("unknown frame", "hello\n");
      ("missing rule", "optrouter-request v1\n" ^ clip_text ^ "endrequest\n");
      ("out-of-range rule", Serve.text_request ~rule:99 clip_text);
      ( "unknown tech",
        Serve.text_request ~tech:"N3-XYZ" ~rule:4 clip_text );
      ("bad deadline", Serve.text_request ~deadline_s:(-1.0) ~rule:4 clip_text);
      ("empty body", Serve.text_request ~rule:4 "");
      ("bad json", "{\"rule\": 4}\n");
    ]

(* [float_of_string_opt] parses "nan"/"inf", so the deadline header needs
   its own finite-positive gate — a NaN deadline sails past ordered
   comparisons (NaN <= 0.0 is false) and would poison the solver budget. *)
let test_deadline_token_validation () =
  let clip_text = Clipfile.to_string eol_clip in
  let raw token =
    Printf.sprintf "optrouter-request v1\nrule 4\ndeadline %s\n%sendrequest\n"
      token clip_text
  in
  List.iter
    (fun token ->
      match Serve.parse_request (raw token) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "deadline %S must be a protocol error" token)
    [ "nan"; "-nan"; "inf"; "infinity"; "-inf"; "0"; "0.0"; "-3.5"; "later" ];
  (* JSON requests share the same gate via [finish_request]. *)
  List.iter
    (fun js ->
      let msg =
        Printf.sprintf "{\"rule\": 4, \"clip\": \"%s\", \"deadline_s\": %s}"
          (json_escape clip_text) js
      in
      match Serve.parse_request msg with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "JSON deadline %s must be a protocol error" js)
    [ "-1.5"; "0" ];
  (* The boundary stays permissive: any finite positive value is fine. *)
  match Serve.parse_request (raw "1e-9") with
  | Ok req ->
    Alcotest.(check (option (float 1e-18))) "tiny but valid" (Some 1e-9)
      req.Serve.deadline_s
  | Error e -> Alcotest.fail e

let test_parse_response_frames () =
  (match
     Serve.parse_response
       "optrouter-response v1\ncache hit-memory\nelapsed 0.000123\nverdict \
        routed\nendresponse\n"
   with
  | Ok (Some Serve.Hit_memory, payload) ->
    Alcotest.(check string) "payload" "verdict routed\n" payload
  | Ok _ -> Alcotest.fail "wrong status/payload"
  | Error e -> Alcotest.fail e);
  (match Serve.parse_response "optrouter-error v1\nerror boom\nendresponse\n" with
  | Error e -> Alcotest.(check string) "error text" "boom" e
  | Ok _ -> Alcotest.fail "error frame must parse as Error");
  match Serve.parse_response "optrouter-bye\n" with
  | Ok (None, _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bye frame"

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                   *)
(* ------------------------------------------------------------------ *)

let test_daemon_end_to_end () =
  let dir = fresh_dir "optrouter-serve" in
  let sock = Filename.concat dir "d.sock" in
  let params =
    Serve.make_params ~cache_dir:(Filename.concat dir "cache") ~time_limit_s:20.0
      ~config:fast_config ()
  in
  let t = Serve.create params in
  let daemon = Domain.spawn (fun () -> Serve.run t [ Serve.Unix_socket sock ]) in
  let fd = Serve.connect (Serve.Unix_socket sock) in
  let msg = Serve.text_request ~rule:4 (Clipfile.to_string eol_clip) in
  let first = Serve.parse_response (Serve.roundtrip fd msg) in
  let second = Serve.parse_response (Serve.roundtrip fd msg) in
  (match (first, second) with
  | Ok (Some Serve.Miss, p1), Ok (Some Serve.Hit_memory, p2) ->
    Alcotest.(check string) "identical payloads over the wire" p1 p2
  | Ok (s1, _), Ok (s2, _) ->
    Alcotest.failf "expected miss then memory hit, got %s then %s"
      (match s1 with Some s -> Serve.status_line s | None -> "none")
      (match s2 with Some s -> Serve.status_line s | None -> "none")
  | Error e, _ | _, Error e -> Alcotest.fail e);
  let stats = Serve.roundtrip fd (Serve.stats_line ^ "\n") in
  Alcotest.(check bool) "stats frame mentions telemetry" true
    (let has sub =
       let ls = String.length stats and l = String.length sub in
       let rec go i = i + l <= ls && (String.sub stats i l = sub || go (i + 1)) in
       go 0
     in
     has "serve telemetry");
  let bye = Serve.roundtrip fd (Serve.shutdown_line ^ "\n") in
  Alcotest.(check bool) "daemon says bye" true
    (String.length bye >= 13 && String.sub bye 0 13 = "optrouter-bye");
  Domain.join daemon;
  Serve.destroy t;
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "LRU hit/miss/eviction" `Quick test_cache_lru;
          Alcotest.test_case "re-store refreshes recency" `Quick
            test_cache_restore_refreshes;
          Alcotest.test_case "disk round trip + promotion" `Quick
            test_cache_disk_roundtrip;
          Alcotest.test_case "corrupted entries recover as misses" `Quick
            test_cache_disk_corruption_recovery;
          Alcotest.test_case "4-domain hammer" `Slow test_cache_hammer;
        ] );
      ( "key",
        [
          Alcotest.test_case "effort-independent, input-sensitive" `Quick
            test_cache_key_effort_independent;
          Alcotest.test_case "v3: objective/DSA dimensions keyed" `Quick
            test_cache_key_v3_new_dimensions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_hit_byte_identity;
          Alcotest.test_case "no-cache bypass still stores" `Quick
            test_bypass_solves_but_stores;
          Alcotest.test_case "batch dedup solves once" `Quick
            test_batch_dedup_single_solve;
          Alcotest.test_case "proven result valid under any deadline" `Quick
            test_deadline_hits_cached_proof;
          Alcotest.test_case "limit verdicts never cached" `Quick
            test_limit_never_cached;
          Alcotest.test_case "solve mode changes the key" `Quick
            test_solve_mode_changes_key;
          Alcotest.test_case "lagrangian results never cached" `Quick
            test_lagrangian_never_cached;
          qtest qcheck_hit_identity_j2;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "text request round trip" `Quick
            test_text_request_roundtrip;
          Alcotest.test_case "json request" `Quick test_json_request;
          Alcotest.test_case "request parse errors" `Quick
            test_request_parse_errors;
          Alcotest.test_case "deadline token validation" `Quick
            test_deadline_token_validation;
          Alcotest.test_case "response frames" `Quick test_parse_response_frames;
        ] );
      ( "daemon",
        [ Alcotest.test_case "end to end over a socket" `Quick test_daemon_end_to_end ] );
    ]
