(* Known-bad fixture for Par_lint: every P-rule must keep firing here.
   The exact line numbers below are asserted by test_analysis.ml, so new
   seeds go at the END of the file.

   Seeded findings:
     P001 line 15 (incr under Domain.spawn, counter also read outside)
     P002 line 22 (Hashtbl.replace of a captured table, no lock)
     P003 line 27 (Atomic.get -> test -> Atomic.set on the same atomic)
     P004 line 31 (Condition.wait with no predicate loop)
     P005 line 38 (input_line while holding a mutex)
     P006 line 56 (unguarded parallel read of a field others lock) *)
let counter = ref 0

let race_counter () =
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d;
  !counter

let lose_updates keys =
  let tbl = Hashtbl.create 16 in
  let ds =
    List.map (fun k -> Domain.spawn (fun () -> Hashtbl.replace tbl k ())) keys
  in
  List.iter Domain.join ds

let flag = Atomic.make 0
let set_once () = if Atomic.get flag = 0 then Atomic.set flag 1

let wait_no_loop q mutex cond =
  Mutex.lock mutex;
  (if Queue.is_empty q then Condition.wait cond mutex);
  let job = Queue.pop q in
  Mutex.unlock mutex;
  job

let read_under_lock mutex ic =
  Mutex.lock mutex;
  let line = input_line ic in
  Mutex.unlock mutex;
  line

type progress = { lock : Mutex.t; mutable done_count : int }

let mixed_discipline jobs run =
  let p = { lock = Mutex.create (); done_count = 0 } in
  let ds =
    List.map
      (fun j ->
        Domain.spawn (fun () ->
            run j;
            Mutex.lock p.lock;
            p.done_count <- p.done_count + 1;
            Mutex.unlock p.lock))
      jobs
  in
  let watcher = Domain.spawn (fun () -> p.done_count = List.length jobs) in
  let finished = Domain.join watcher in
  List.iter Domain.join ds;
  ignore finished;
  p.done_count
