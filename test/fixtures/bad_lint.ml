(* Known-bad fixture for the source lint. NOT built by dune (no stanza
   covers this directory); it exists so the test suite and CI can assert
   that every lint rule still fires. One seeded violation per line is
   annotated with the code it must trigger. *)

(* L004: toplevel mutable state, shared across domains *)
let call_count = ref 0

(* L004: toplevel hash table *)
let cache : (string, int) Hashtbl.t = Hashtbl.create 16

(* L001: raw truncation of an unbounded float *)
let bad_round x = int_of_float (x *. 100.0)

(* L001: same primitive through the Float module *)
let bad_round2 x = Float.to_int x

(* L002: equality against a nonzero float literal *)
let is_unit_cost c = c = 1.0

(* L002: disequality against a nonzero float literal *)
let not_half c = c <> 0.5

(* NOT flagged: literal-zero comparison is the sanctioned sparse-drop
   idiom (and Float.equal (-0.) 0. = false makes "fixing" it unsound) *)
let is_zero c = c = 0.0

(* L003: catch-all try handler *)
let swallow f = try f () with _ -> ()

(* L003: catch-all [exception _] match case *)
let swallow2 f x = match f x with v -> Some v | exception _ -> None

(* NOT flagged: named binder keeps the swallow greppable *)
let deliberate f = try f () with _exn -> ()

let () =
  incr call_count;
  Hashtbl.replace cache "calls" !call_count;
  ignore (bad_round 1.5, bad_round2 2.5, is_unit_cost 1.0, not_half 0.25);
  ignore (is_zero 0.0, swallow ignore, swallow2 (fun x -> x) 3, deliberate ignore)

(* L005: polymorphic hash is unstable across runs and architectures *)
let unstable_seed shape = Hashtbl.hash shape land 0xFFFF

(* L005: wall-clock seeding makes every run different *)
let scramble () = Random.self_init ()

(* NOT flagged: a fixed seed is deterministic *)
let fixed () = Random.init 42
