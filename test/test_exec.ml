(* Tests for the domain pool and its wiring into the sweep: parallel maps
   must be drop-in replacements for serial ones (same results, same
   order), exceptions must stay confined to their task, and a parallel
   rule sweep must reproduce the serial entry list exactly. *)

module Pool = Optrouter_exec.Pool
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Clip = Optrouter_grid.Clip
module Sweep = Optrouter_eval.Sweep
module Optrouter = Optrouter_core.Optrouter
module Milp = Optrouter_ilp.Milp

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_empty () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []))

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "task-index order" (List.map succ xs)
        (Pool.map pool succ xs))

let test_map_serial_pool () =
  (* domains:1 spawns no workers; map runs in the calling domain. *)
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "serial pool reports 1 domain" 1 (Pool.domains pool);
      let xs = [ 5; 3; 1 ] in
      Alcotest.(check (list int))
        "same as List.map" (List.map (fun x -> x * 2) xs)
        (Pool.map pool (fun x -> x * 2) xs))

let test_map_reusable () =
  (* One pool, several maps: workers survive between batches. *)
  Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 5 do
        let xs = List.init (10 * i) Fun.id in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" i)
          (List.map (fun x -> x + i) xs)
          (Pool.map pool (fun x -> x + i) xs)
      done)

exception Boom of int

let test_exception_isolation () =
  Pool.with_pool ~domains:3 (fun pool ->
      let f x = if x mod 3 = 0 then raise (Boom x) else x * 10 in
      let results = Pool.map_result pool f (List.init 10 Fun.id) in
      List.iteri
        (fun i r ->
          match r with
          | Ok v when i mod 3 <> 0 ->
            Alcotest.(check int) "ok slot" (i * 10) v
          | Error (Boom v) when i mod 3 = 0 ->
            Alcotest.(check int) "error slot" i v
          | Ok _ -> Alcotest.fail "expected Error for multiple of 3"
          | Error e -> Alcotest.fail ("unexpected " ^ Printexc.to_string e))
        results;
      (* the pool survives failed tasks *)
      Alcotest.(check (list int)) "pool still works" [ 2; 4 ]
        (Pool.map pool (fun x -> x * 2) [ 1; 2 ]))

let test_map_reraises_first_error () =
  Pool.with_pool ~domains:2 (fun pool ->
      match Pool.map pool (fun x -> if x >= 2 then raise (Boom x) else x) [ 0; 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom v ->
        (* first failure in task order, regardless of completion order *)
        Alcotest.(check int) "first by index" 2 v)

let test_on_done_collector () =
  Pool.with_pool ~domains:3 (fun pool ->
      let seen = ref [] in
      let xs = List.init 20 Fun.id in
      let _ =
        Pool.map_result pool
          ~on_done:(fun i r ->
            match r with
            | Ok v -> seen := (i, v) :: !seen
            | Error _ -> Alcotest.fail "no errors expected")
          (fun x -> x * x)
          xs
      in
      Alcotest.(check int) "one callback per task" 20 (List.length !seen);
      List.iter
        (fun (i, v) -> Alcotest.(check int) "callback sees task's result" (i * i) v)
        !seen)

let test_env_jobs () =
  Unix.putenv "OPTROUTER_JOBS" "7";
  Alcotest.(check int) "parses" 7 (Pool.env_jobs ());
  Unix.putenv "OPTROUTER_JOBS" "bogus";
  Alcotest.(check int) "unparsable means serial" 1 (Pool.env_jobs ());
  Unix.putenv "OPTROUTER_JOBS" "0";
  Alcotest.(check int) "clamped to 1" 1 (Pool.env_jobs ())

let test_env_solver_jobs () =
  Unix.putenv "OPTROUTER_SOLVER_JOBS" "4";
  Alcotest.(check int) "parses" 4 (Pool.env_solver_jobs ());
  Unix.putenv "OPTROUTER_SOLVER_JOBS" "nope";
  Alcotest.(check int) "unparsable means serial" 1 (Pool.env_solver_jobs ());
  Unix.putenv "OPTROUTER_SOLVER_JOBS" "1"

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_basics () =
  let b = Pool.Budget.create ~slots:3 in
  Alcotest.(check int) "total" 3 (Pool.Budget.total b);
  Alcotest.(check int) "all free" 3 (Pool.Budget.available b);
  Alcotest.(check int) "grants what it has" 2 (Pool.Budget.acquire b 2);
  Alcotest.(check int) "one left" 1 (Pool.Budget.available b);
  Alcotest.(check int) "partial grant" 1 (Pool.Budget.acquire b 5);
  Alcotest.(check int) "exhausted grants zero" 0 (Pool.Budget.acquire b 1);
  Alcotest.(check int) "zero want is free" 0 (Pool.Budget.acquire b 0);
  Pool.Budget.release b 3;
  Alcotest.(check int) "released" 3 (Pool.Budget.available b);
  Pool.Budget.release b 0;
  Alcotest.(check int) "zero release is a no-op" 3 (Pool.Budget.available b);
  let empty = Pool.Budget.create ~slots:(-2) in
  Alcotest.(check int) "negative slots behave as 0" 0 (Pool.Budget.total empty);
  Alcotest.(check int) "nothing to grant" 0 (Pool.Budget.acquire empty 1)

let test_budget_concurrent_never_overgrants () =
  (* Hammer one budget from several domains; the sum of outstanding
     grants must never exceed the budget, and everything acquired must
     come back. *)
  let slots = 4 in
  let b = Pool.Budget.create ~slots in
  let overgrant = Atomic.make false in
  let worker () =
    for _ = 1 to 500 do
      let got = Pool.Budget.acquire b 2 in
      if got > 2 || Pool.Budget.available b > slots then
        Atomic.set overgrant true;
      Pool.Budget.release b got
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check bool) "never over-grants" false (Atomic.get overgrant);
  Alcotest.(check int) "all slots returned" slots (Pool.Budget.available b)

(* A reporter that only counts warnings; messages are formatted into a
   scratch formatter so the [over]/[k] protocol stays honoured. *)
let counting_reporter count =
  {
    Logs.report =
      (fun _src level ~over k msgf ->
        if level = Logs.Warning then incr count;
        msgf (fun ?header:_ ?tags:_ fmt ->
            Format.ikfprintf
              (fun _ ->
                over ();
                k ())
              Format.str_formatter fmt));
  }

let test_env_jobs_warns_on_rejects () =
  (* Regression: invalid or non-positive OPTROUTER_JOBS values were
     silently coerced to 1; they must now warn, naming the value. *)
  let count = ref 0 in
  let prev_reporter = Logs.reporter () in
  let prev_level = Logs.level () in
  Logs.set_reporter (counting_reporter count);
  Logs.set_level (Some Logs.Warning);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter prev_reporter;
      Logs.set_level prev_level;
      Unix.putenv "OPTROUTER_JOBS" "1")
    (fun () ->
      Unix.putenv "OPTROUTER_JOBS" "0";
      Alcotest.(check int) "zero rejected" 1 (Pool.env_jobs ());
      Unix.putenv "OPTROUTER_JOBS" "-3";
      Alcotest.(check int) "negative rejected" 1 (Pool.env_jobs ());
      Unix.putenv "OPTROUTER_JOBS" "bogus";
      Alcotest.(check int) "garbage rejected" 1 (Pool.env_jobs ());
      Alcotest.(check int) "one warning per rejected value" 3 !count;
      Unix.putenv "OPTROUTER_JOBS" "4";
      Alcotest.(check int) "valid value accepted" 4 (Pool.env_jobs ());
      Alcotest.(check int) "no warning for valid values" 3 !count)

(* ------------------------------------------------------------------ *)
(* qcheck: Pool.map f == List.map f                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_map_equals_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map f = List.map f"
    QCheck.(list small_int)
    (fun xs ->
      let f x = (x * 31) + 7 in
      Pool.with_pool ~domains:3 (fun pool -> Pool.map pool f xs) = List.map f xs)

(* ------------------------------------------------------------------ *)
(* Sweep determinism                                                   *)
(* ------------------------------------------------------------------ *)

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }

(* Small deterministic clips covering routable, rule-impacted and
   rule-infeasible cases. *)
let seed_clips =
  [
    Clip.make ~name:"eol" ~cols:4 ~rows:1 ~layers:2
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ];
    Clip.make ~name:"hop" ~cols:3 ~rows:2 ~layers:2 [ two_pin "a" (0, 0) (0, 1) ];
    Clip.make ~name:"cross" ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (2, 2); two_pin "b" (2, 0) (0, 2) ];
  ]

let sweep_rules = [ Rules.rule 4; Rules.rule 6; Rules.rule 8 ]

let fast_config =
  Optrouter.make_config
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ())
    ()

(* fast_config with every ILP solve requesting a 2-wide branch-and-bound
   search (the two-level scheduler's inner level). *)
let wide_config =
  Optrouter.make_config
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ~solver_jobs:2 ())
    ()

let entry_t =
  let pp ppf (e : Sweep.entry) =
    Format.fprintf ppf "%s/%s d=%.0f cost=%s base=%d" e.Sweep.clip_name
      e.Sweep.rule_name
      (Sweep.delta_value e.Sweep.delta)
      (match e.Sweep.cost with Some c -> string_of_int c | None -> "-")
      e.Sweep.base_cost
  in
  Alcotest.testable pp ( = )

let serial_entries () =
  List.concat_map
    (fun clip ->
      Sweep.clip_deltas ~config:fast_config ~tech:Tech.n28_12t
        ~rules:sweep_rules clip)
    seed_clips

let test_parallel_sweep_deterministic () =
  let serial = serial_entries () in
  Alcotest.(check bool) "serial sweep nonempty" true (serial <> []);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let parallel =
            Sweep.sweep ~config:fast_config ~pool ~tech:Tech.n28_12t
              ~rules:sweep_rules seed_clips
          in
          Alcotest.(check (list entry_t))
            (Printf.sprintf "identical at %d domains" domains)
            serial parallel))
    [ 2; 4 ]

let test_parallel_clip_deltas_deterministic () =
  Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun clip ->
          let serial =
            Sweep.clip_deltas ~config:fast_config ~tech:Tech.n28_12t
              ~rules:sweep_rules clip
          in
          let parallel =
            Sweep.clip_deltas ~config:fast_config ~pool ~tech:Tech.n28_12t
              ~rules:sweep_rules clip
          in
          Alcotest.(check (list entry_t)) clip.Clip.c_name serial parallel)
        seed_clips)

let test_sweep_solver_jobs_identity () =
  (* Two-level scheduling must not change entries: a sweep whose solves
     request 2-wide branch and bound — serial, and under a pool where
     the budget throttles the widening — reproduces the 1-wide list. *)
  let serial = serial_entries () in
  let wide_serial =
    List.concat_map
      (fun clip ->
        Sweep.clip_deltas ~config:wide_config ~tech:Tech.n28_12t
          ~rules:sweep_rules clip)
      seed_clips
  in
  Alcotest.(check (list entry_t)) "2-wide solves, no pool" serial wide_serial;
  Pool.with_pool ~domains:2 (fun pool ->
      let wide_pooled =
        Sweep.sweep ~config:wide_config ~pool ~tech:Tech.n28_12t
          ~rules:sweep_rules seed_clips
      in
      Alcotest.(check (list entry_t)) "2-wide solves under a 2-domain pool"
        serial wide_pooled)

let test_sweep_telemetry_and_on_entry () =
  Pool.with_pool ~domains:2 (fun pool ->
      let telemetry = ref Sweep.empty_telemetry in
      let seen = ref 0 in
      let entries =
        Sweep.sweep ~config:fast_config ~pool ~telemetry
          ~on_entry:(fun _ -> incr seen)
          ~tech:Tech.n28_12t ~rules:sweep_rules seed_clips
      in
      Alcotest.(check int) "on_entry fires once per entry" (List.length entries)
        !seen;
      let t = !telemetry in
      Alcotest.(check int) "solves = baselines + rule solves"
        (List.length seed_clips + List.length entries)
        t.Sweep.solves;
      Alcotest.(check bool) "nodes counted" true (t.Sweep.nodes > 0);
      Alcotest.(check bool) "wall time counted" true (t.Sweep.wall_s > 0.0);
      Alcotest.(check int) "no failures" 0 t.Sweep.failures;
      Alcotest.(check bool) "renders" true
        (String.length (Sweep.render_telemetry t) > 0))

(* ------------------------------------------------------------------ *)
(* Baseline reuse: entries must not depend on the seed_reuse knob      *)
(* ------------------------------------------------------------------ *)

let no_reuse_config =
  Optrouter.make_config
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ())
    ~seed_reuse:false ()

let test_sweep_reuse_identity () =
  let run config pool =
    Sweep.sweep ~config ?pool ~tech:Tech.n28_12t ~rules:sweep_rules seed_clips
  in
  let reference = run fast_config None in
  Alcotest.(check bool) "reference sweep nonempty" true (reference <> []);
  Alcotest.(check (list entry_t))
    "serial, reuse off" reference (run no_reuse_config None);
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list entry_t))
        "-j 2, reuse on" reference
        (run fast_config (Some pool));
      Alcotest.(check (list entry_t))
        "-j 2, reuse off" reference
        (run no_reuse_config (Some pool)))

(* Random small clips for the reuse-identity property: shuffle the grid
   positions with a seeded RNG and pair them up into two-pin nets. *)
let random_clip (cols, rows, seed) =
  let rng = Random.State.make [| seed; cols; rows |] in
  let positions =
    Array.init (cols * rows) (fun i -> (i mod cols, i / cols))
  in
  for i = Array.length positions - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = positions.(i) in
    positions.(i) <- positions.(j);
    positions.(j) <- t
  done;
  let nets = 1 + Random.State.int rng 2 in
  let net i = two_pin (Printf.sprintf "n%d" i) positions.(2 * i) positions.((2 * i) + 1) in
  Clip.make
    ~name:(Printf.sprintf "rand-%dx%d-%d" cols rows seed)
    ~cols ~rows ~layers:2
    (List.init nets net)

(* ------------------------------------------------------------------ *)
(* Stress: width-4 solves + shared budget + cache traffic              *)
(* ------------------------------------------------------------------ *)

module Serve = Optrouter_serve.Serve
module Cache = Optrouter_serve.Cache

(* Four domains race width-governed [Milp] solves through one shared
   [Pool.Budget] while finding/storing the payloads in one shared
   [Cache] (capacity 2 over 3 keys, so evictions and disk promotions
   happen under contention). The determinism contract makes this
   checkable: whatever width the budget grants and whichever tier
   answers, every payload must be byte-identical to a serial solve. *)
let qcheck_width4_cache_stress =
  QCheck.Test.make ~count:2
    ~name:"width-4 solves under a shared budget keep cache byte-identity"
    QCheck.(pair (int_range 3 4) (int_range 0 10_000))
    (fun (cols, seed) ->
      let clip = random_clip (cols, 2, seed) in
      let reference rules =
        Serve.payload_of_result
          (Optrouter.route ~config:fast_config ~tech:Tech.n28_12t ~rules clip)
      in
      let references = List.map reference sweep_rules in
      let dir = Filename.temp_file "optrouter-stress" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let cache = Cache.create ~dir ~capacity:2 () in
      let budget = Pool.Budget.create ~slots:4 in
      let key rules =
        Serve.cache_key ~config:fast_config ~tech:Tech.n28_12t ~rules clip
      in
      let solve_widened rules =
        Pool.Budget.with_width budget ~want:4 (fun width ->
            let config =
              Optrouter.make_config
                ~milp:
                  (Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0
                     ~solver_jobs:width ())
                ()
            in
            Serve.payload_of_result
              (Optrouter.route ~config ~tech:Tech.n28_12t ~rules clip))
      in
      let worker () =
        List.concat_map
          (fun _ ->
            List.map
              (fun rules ->
                match Cache.find cache (key rules) with
                | Some (payload, _) -> payload
                | None ->
                  let payload = solve_widened rules in
                  Cache.store cache (key rules) payload;
                  payload)
              sweep_rules)
          [ 1; 2 ]
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      let rounds = List.map Domain.join domains in
      let expected = references @ references in
      Pool.Budget.available budget = Pool.Budget.total budget
      && (Cache.stats cache).Cache.disk_errors = 0
      && List.for_all (fun payloads -> payloads = expected) rounds)

let qcheck_reuse_identity =
  QCheck.Test.make ~count:6
    ~name:"sweep entries identical with reuse on/off (serial and -j 2)"
    QCheck.(triple (int_range 3 4) (int_range 2 3) (int_range 0 10_000))
    (fun spec ->
      let clip = random_clip spec in
      let run config pool =
        Sweep.clip_deltas ~config ?pool ~tech:Tech.n28_12t ~rules:sweep_rules
          clip
      in
      let reference = run fast_config None in
      let off = run no_reuse_config None in
      Pool.with_pool ~domains:2 (fun pool ->
          reference = off
          && reference = run fast_config (Some pool)
          && reference = run no_reuse_config (Some pool)))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "empty map" `Quick test_map_empty;
          Alcotest.test_case "result order" `Quick test_map_order;
          Alcotest.test_case "serial pool" `Quick test_map_serial_pool;
          Alcotest.test_case "reusable across batches" `Quick test_map_reusable;
          Alcotest.test_case "exception isolation" `Quick
            test_exception_isolation;
          Alcotest.test_case "map re-raises first error" `Quick
            test_map_reraises_first_error;
          Alcotest.test_case "on_done collector" `Quick test_on_done_collector;
          Alcotest.test_case "OPTROUTER_JOBS parsing" `Quick test_env_jobs;
          Alcotest.test_case "OPTROUTER_JOBS warns on rejects" `Quick
            test_env_jobs_warns_on_rejects;
          Alcotest.test_case "OPTROUTER_SOLVER_JOBS parsing" `Quick
            test_env_solver_jobs;
          QCheck_alcotest.to_alcotest qcheck_map_equals_list_map;
        ] );
      ( "budget",
        [
          Alcotest.test_case "acquire/release accounting" `Quick
            test_budget_basics;
          Alcotest.test_case "concurrent acquire never over-grants" `Quick
            test_budget_concurrent_never_overgrants;
        ] );
      ( "parallel sweep",
        [
          Alcotest.test_case "sweep matches serial" `Quick
            test_parallel_sweep_deterministic;
          Alcotest.test_case "clip_deltas matches serial" `Quick
            test_parallel_clip_deltas_deterministic;
          Alcotest.test_case "solver-jobs sweep matches serial" `Quick
            test_sweep_solver_jobs_identity;
          Alcotest.test_case "telemetry and on_entry" `Quick
            test_sweep_telemetry_and_on_entry;
          Alcotest.test_case "reuse on/off identical entries" `Quick
            test_sweep_reuse_identity;
          QCheck_alcotest.to_alcotest qcheck_reuse_identity;
          QCheck_alcotest.to_alcotest qcheck_width4_cache_stress;
        ] );
    ]
