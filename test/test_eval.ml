(* Tests for the evaluation flow (sweep + experiment drivers) and the
   reporting helpers. Routing-heavy drivers run on tiny inputs. *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Clip = Optrouter_grid.Clip
module Sweep = Optrouter_eval.Sweep
module Experiments = Optrouter_eval.Experiments
module Report = Optrouter_report.Report
module Scoreboard = Optrouter_eval.Scoreboard
module Render = Optrouter_core.Render
module Graph = Optrouter_grid.Graph
module Optrouter = Optrouter_core.Optrouter
module Milp = Optrouter_ilp.Milp

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }

let fast_config =
  Optrouter.make_config
    ~milp:(Milp.make_params ~max_nodes:5_000 ~time_limit_s:20.0 ())
    ()

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_deltas () =
  (* Facing EOLs on one track: RULE1 baseline 2, RULE4 unaffected. *)
  let clip =
    Clip.make ~cols:4 ~rows:1 ~layers:2
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]
  in
  let entries =
    Sweep.clip_deltas ~config:fast_config ~tech:Tech.n28_12t
      ~rules:[ Rules.rule 4 ] clip
  in
  match entries with
  | [ e ] ->
    Alcotest.(check string) "rule name" "RULE4" e.Sweep.rule_name;
    Alcotest.(check int) "base cost" 2 e.Sweep.base_cost;
    Alcotest.(check bool) "no impact" true (e.Sweep.delta = Sweep.Delta 0)
  | _ -> Alcotest.fail "expected one entry"

let test_sweep_unroutable_entry () =
  (* One vertical hop with only M2/M3: RULE6 makes it unroutable. *)
  let clip =
    Clip.make ~cols:3 ~rows:2 ~layers:2 [ two_pin "a" (0, 0) (0, 1) ]
  in
  let entries =
    Sweep.clip_deltas ~config:fast_config ~tech:Tech.n28_12t
      ~rules:[ Rules.rule 6 ] clip
  in
  match entries with
  | [ e ] ->
    Alcotest.(check bool) "infeasible" true (e.Sweep.delta = Sweep.Infeasible);
    Alcotest.(check (float 0.01)) "plots as 500" 500.0
      (Sweep.delta_value e.Sweep.delta)
  | _ -> Alcotest.fail "expected one entry"

(* ------------------------------------------------------------------ *)
(* Baseline reuse                                                      *)
(* ------------------------------------------------------------------ *)

(* Facing EOLs on one track: the RULE1 optimum stays DRC-clean under
   RULE4 (SADP only from M4, which the 2-layer clip never reaches), so a
   seeded solve must take the zero-Δ fast path: no ILP, zero nodes. *)
let eol_clip =
  Clip.make ~cols:4 ~rows:1 ~layers:2
    [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]

let test_fast_path_zero_nodes () =
  let r1 =
    Optrouter.route ~config:fast_config ~tech:Tech.n28_12t
      ~rules:(Rules.rule 1) eol_clip
  in
  match r1.Optrouter.verdict with
  | Optrouter.Routed base -> (
    let r4 =
      Optrouter.route ~config:fast_config ~seed:base ~tech:Tech.n28_12t
        ~rules:(Rules.rule 4) eol_clip
    in
    let s = r4.Optrouter.stats in
    Alcotest.(check bool) "fast path taken" true
      (s.Optrouter.seed_use = Optrouter.Seed_fast_path);
    Alcotest.(check int) "zero B&B nodes" 0 s.Optrouter.nodes;
    Alcotest.(check int) "zero simplex iterations" 0 s.Optrouter.simplex_iterations;
    match r4.Optrouter.verdict with
    | Optrouter.Routed sol ->
      Alcotest.(check int) "same optimal cost"
        base.Optrouter_grid.Route.metrics.cost
        sol.Optrouter_grid.Route.metrics.cost
    | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
      Alcotest.fail "fast path must report Routed")
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    Alcotest.fail "baseline solve failed"

let test_seed_reuse_knob_disables_fast_path () =
  let r1 =
    Optrouter.route ~config:fast_config ~tech:Tech.n28_12t
      ~rules:(Rules.rule 1) eol_clip
  in
  match r1.Optrouter.verdict with
  | Optrouter.Routed base ->
    let config =
      Optrouter.make_config ~milp:fast_config.Optrouter.milp ~seed_reuse:false
        ()
    in
    let r4 =
      Optrouter.route ~config ~seed:base ~tech:Tech.n28_12t
        ~rules:(Rules.rule 4) eol_clip
    in
    let s = r4.Optrouter.stats in
    Alcotest.(check bool) "seed ignored" true
      (s.Optrouter.seed_use = Optrouter.Seed_unused);
    Alcotest.(check bool) "solved the ILP" true (s.Optrouter.nodes > 0)
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    Alcotest.fail "baseline solve failed"

let test_clip_deltas_fast_path_telemetry () =
  let telemetry = ref Sweep.empty_telemetry in
  let entries =
    Sweep.clip_deltas ~config:fast_config ~telemetry ~tech:Tech.n28_12t
      ~rules:[ Rules.rule 4 ] eol_clip
  in
  let t = !telemetry in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  Alcotest.(check int) "RULE4 answered by the fast path" 1 t.Sweep.fast_path_hits;
  (* the only rule solve was free, so all nodes belong to the baseline *)
  let baseline =
    Optrouter.route
      ~config:(Sweep.baseline_config (Some fast_config))
      ~tech:Tech.n28_12t ~rules:(Rules.rule 1) eol_clip
  in
  Alcotest.(check int) "rule solve contributed zero nodes"
    baseline.Optrouter.stats.Optrouter.nodes t.Sweep.nodes

let test_baseline_config_default_budget () =
  (* Regression: with no explicit config the baseline must still triple
     the default 60 s budget (an Option.map once dropped it entirely). *)
  let time c = c.Optrouter.milp.Optrouter_ilp.Milp.time_limit_s in
  Alcotest.(check (option (float 1e-9)))
    "None triples the default config" (Some 180.0)
    (time (Sweep.baseline_config None));
  Alcotest.(check (option (float 1e-9)))
    "explicit config tripled" (Some 60.0)
    (time (Sweep.baseline_config (Some fast_config)))

let test_telemetry_busy_vs_wall () =
  let telemetry = ref Sweep.empty_telemetry in
  let _ =
    Sweep.clip_deltas ~config:fast_config ~telemetry ~tech:Tech.n28_12t
      ~rules:[ Rules.rule 4; Rules.rule 6 ] eol_clip
  in
  let t = !telemetry in
  Alcotest.(check bool) "busy time counted" true (t.Sweep.busy_s > 0.0);
  Alcotest.(check bool) "wall time counted" true (t.Sweep.wall_s > 0.0);
  (* serially, the sweep's wall clock covers every solve plus overhead *)
  Alcotest.(check bool) "wall >= busy in a serial sweep" true
    (t.Sweep.wall_s +. 1e-6 >= t.Sweep.busy_s)

(* Regression: merging per-worker telemetry must treat the span fields
   (wall_s, solver_wall_s) as overlapping intervals — max, not sum — while
   the work fields (busy_s, counts) still add. Summing spans once inflated
   a 2-worker sweep's "wall" far past the time that actually passed. *)
let test_merge_telemetry_spans_max () =
  let a =
    {
      Sweep.empty_telemetry with
      Sweep.solves = 3;
      busy_s = 2.0;
      wall_s = 2.5;
      solver_busy_s = 1.5;
      solver_wall_s = 2.0;
    }
  and b =
    {
      Sweep.empty_telemetry with
      Sweep.solves = 2;
      busy_s = 1.0;
      wall_s = 1.5;
      solver_busy_s = 0.5;
      solver_wall_s = 1.0;
    }
  in
  let m = Sweep.merge_telemetry a b in
  Alcotest.(check int) "solves summed" 5 m.Sweep.solves;
  Alcotest.(check (float 1e-9)) "busy summed" 3.0 m.Sweep.busy_s;
  Alcotest.(check (float 1e-9)) "solver busy summed" 2.0 m.Sweep.solver_busy_s;
  Alcotest.(check (float 1e-9)) "wall is max of spans" 2.5 m.Sweep.wall_s;
  Alcotest.(check (float 1e-9)) "solver wall is max of spans" 2.0
    m.Sweep.solver_wall_s;
  (* merge is commutative on these fields *)
  let m' = Sweep.merge_telemetry b a in
  Alcotest.(check (float 1e-9)) "commutative wall" m.Sweep.wall_s m'.Sweep.wall_s;
  Alcotest.(check int) "commutative solves" m.Sweep.solves m'.Sweep.solves

(* The decomposition counters follow the same discipline: iteration and
   pricing-work fields sum, the per-shard solve wall is a span (max),
   and the worst gap survives the merge. *)
let test_merge_telemetry_lagrangian () =
  let a =
    {
      Sweep.empty_telemetry with
      Sweep.lagrangian_solves = 2;
      lag_iterations = 40;
      lag_busy_s = 3.0;
      lag_wall_s = 2.0;
      lag_gap_max = 0.01;
      lag_unrounded = 1;
    }
  and b =
    {
      Sweep.empty_telemetry with
      Sweep.lagrangian_solves = 1;
      lag_iterations = 10;
      lag_busy_s = 1.0;
      lag_wall_s = 1.5;
      lag_gap_max = 0.04;
      lag_unrounded = 0;
    }
  in
  let m = Sweep.merge_telemetry a b in
  Alcotest.(check int) "lagrangian solves summed" 3 m.Sweep.lagrangian_solves;
  Alcotest.(check int) "iterations summed" 50 m.Sweep.lag_iterations;
  Alcotest.(check (float 1e-9)) "pricing busy summed" 4.0 m.Sweep.lag_busy_s;
  Alcotest.(check (float 1e-9)) "lag wall is max of spans" 2.0
    m.Sweep.lag_wall_s;
  Alcotest.(check (float 1e-9)) "worst gap survives" 0.04 m.Sweep.lag_gap_max;
  Alcotest.(check int) "unrounded summed" 1 m.Sweep.lag_unrounded;
  let m' = Sweep.merge_telemetry b a in
  Alcotest.(check (float 1e-9)) "commutative lag wall" m.Sweep.lag_wall_s
    m'.Sweep.lag_wall_s;
  Alcotest.(check (float 1e-9)) "commutative gap" m.Sweep.lag_gap_max
    m'.Sweep.lag_gap_max

(* Warm-starting a RULEk root LP from the RULE1 optimal basis (remapped
   by name) is a speed device only: verdicts and proved-optimal costs
   must match the cold solves across the Figure-10 rule variants. No
   [?seed] is passed, so every solve runs the full ILP — the warm basis
   is exercised rather than bypassed by the DRC fast path. *)
let test_warm_basis_matches_cold () =
  let r1 =
    Optrouter.route ~config:fast_config ~tech:Tech.n28_12t
      ~rules:(Rules.rule 1) eol_clip
  in
  match r1.Optrouter.verdict with
  | Optrouter.Routed _ -> (
    Alcotest.(check bool) "baseline reports root-LP iterations" true
      (r1.Optrouter.stats.Optrouter.root_lp_iters > 0);
    match r1.Optrouter.stats.Optrouter.root_basis with
    | None -> Alcotest.fail "baseline solve exposes no root basis"
    | Some _ as basis ->
      List.iter
        (fun n ->
          let rules = Rules.rule n in
          let label = rules.Rules.name in
          let cold =
            Optrouter.route ~config:fast_config ~tech:Tech.n28_12t ~rules
              eol_clip
          in
          let warm =
            Optrouter.route ~config:fast_config ?warm_basis:basis
              ~tech:Tech.n28_12t ~rules eol_clip
          in
          (match (cold.Optrouter.verdict, warm.Optrouter.verdict) with
          | Optrouter.Routed c, Optrouter.Routed w ->
            Alcotest.(check int)
              (label ^ " same optimal cost")
              c.Optrouter_grid.Route.metrics.cost
              w.Optrouter_grid.Route.metrics.cost
          | Optrouter.Unroutable, Optrouter.Unroutable -> ()
          | _, _ -> Alcotest.fail (label ^ " warm/cold verdicts differ"));
          Alcotest.(check bool)
            (label ^ " warm basis used") true
            (match warm.Optrouter.stats.Optrouter.warm_start with
            | `Reused | `Repaired -> true
            | `Cold -> false);
          Alcotest.(check bool)
            (label ^ " cold solve stays cold") true
            (cold.Optrouter.stats.Optrouter.warm_start = `Cold))
        [ 3; 4; 5 ])
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    Alcotest.fail "baseline solve failed"

let test_sweep_drops_unroutable_baseline () =
  (* Unroutable even under RULE1: the clip must be dropped entirely. *)
  let clip = Clip.make ~cols:3 ~rows:2 ~layers:1 [ two_pin "a" (0, 0) (2, 1) ] in
  let entries =
    Sweep.clip_deltas ~config:fast_config ~tech:Tech.n28_12t
      ~rules:[ Rules.rule 4 ] clip
  in
  Alcotest.(check int) "dropped" 0 (List.length entries)

let test_sweep_series_sorted () =
  let entries =
    [
      { Sweep.clip_name = "c1"; rule_name = "R"; delta = Sweep.Delta 5; cost = Some 10; base_cost = 5 };
      { Sweep.clip_name = "c2"; rule_name = "R"; delta = Sweep.Infeasible; cost = None; base_cost = 5 };
      { Sweep.clip_name = "c3"; rule_name = "R"; delta = Sweep.Delta 0; cost = Some 5; base_cost = 5 };
    ]
  in
  match Sweep.series entries with
  | [ ("R", values) ] ->
    Alcotest.(check bool) "ascending with 500 last" true
      (values = [| 0.0; 5.0; 500.0 |])
  | _ -> Alcotest.fail "expected one series"

let test_sweep_infeasible_counts () =
  let entries =
    [
      { Sweep.clip_name = "c1"; rule_name = "A"; delta = Sweep.Infeasible; cost = None; base_cost = 1 };
      { Sweep.clip_name = "c2"; rule_name = "A"; delta = Sweep.Delta 1; cost = Some 2; base_cost = 1 };
      { Sweep.clip_name = "c1"; rule_name = "B"; delta = Sweep.Limit; cost = None; base_cost = 1 };
    ]
  in
  let counts = Sweep.infeasible_counts entries in
  Alcotest.(check (list (pair string int))) "counts" [ ("A", 1); ("B", 0) ] counts

(* ------------------------------------------------------------------ *)
(* Experiment drivers (cheap ones)                                     *)
(* ------------------------------------------------------------------ *)

let test_table3_golden () =
  (* Table 3 locked verbatim: any drift in the rule definitions shows up
     here before it silently skews an experiment. *)
  let expected =
    [
      [ "RULE1"; "No SADP"; "0 neighbors blocked"; "-" ];
      [ "RULE2"; "SADP >= M2"; "0 neighbors blocked"; "-" ];
      [ "RULE3"; "SADP >= M3"; "0 neighbors blocked"; "-" ];
      [ "RULE4"; "SADP >= M4"; "0 neighbors blocked"; "-" ];
      [ "RULE5"; "SADP >= M5"; "0 neighbors blocked"; "-" ];
      [ "RULE6"; "No SADP"; "4 neighbors blocked"; "-" ];
      [ "RULE7"; "SADP >= M2"; "4 neighbors blocked"; "-" ];
      [ "RULE8"; "SADP >= M3"; "4 neighbors blocked"; "-" ];
      [ "RULE9"; "No SADP"; "8 neighbors blocked"; "-" ];
      [ "RULE10"; "SADP >= M2"; "8 neighbors blocked"; "-" ];
      [ "RULE11"; "SADP >= M3"; "8 neighbors blocked"; "-" ];
      [ "RULE12"; "No SADP"; "0 neighbors blocked"; "k-colorable" ];
      [ "RULE13"; "SADP >= M3"; "0 neighbors blocked"; "k-colorable" ];
      [ "RULE14"; "No SADP"; "4 neighbors blocked"; "k-colorable" ];
    ]
  in
  Alcotest.(check (list (list string))) "verbatim" expected
    (Experiments.table3_rows ())

let test_table3_matches_rules () =
  let rows = Experiments.table3_rows () in
  Alcotest.(check int) "14 rules" 14 (List.length rows);
  match rows with
  | [ "RULE1"; "No SADP"; "0 neighbors blocked"; "-" ] :: _ -> ()
  | _ -> Alcotest.fail "RULE1 row malformed"

let test_table2_covers_all_techs () =
  let rows = Experiments.table2_rows () in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  List.iter
    (fun tech ->
      Alcotest.(check bool) (tech.Tech.name ^ " present") true
        (List.exists (fun row -> List.hd row = tech.Tech.name) rows))
    Tech.all

let test_rules_for_skips_n7_inapplicable () =
  let n7 = Experiments.rules_for Tech.n7_9t in
  let names = List.map (fun (r : Rules.t) -> r.Rules.name) n7 in
  Alcotest.(check bool) "RULE2 skipped" false (List.mem "RULE2" names);
  Alcotest.(check bool) "RULE9 skipped" false (List.mem "RULE9" names);
  Alcotest.(check bool) "RULE3 present" true (List.mem "RULE3" names);
  Alcotest.(check bool) "RULE12 present on N7" true (List.mem "RULE12" names);
  let n28 = Experiments.rules_for Tech.n28_12t in
  Alcotest.(check int) "N28 evaluates all but RULE1" 13 (List.length n28)

let test_ilp_size_rows () =
  let rows = Experiments.ilp_size_rows () in
  Alcotest.(check int) "5 variants" 5 (List.length rows);
  (* SADP variants must be larger than the unrestricted one. *)
  let vars_of row = int_of_string (List.nth row 4) in
  let rows_of row = int_of_string (List.nth row 6) in
  match rows with
  | base :: via :: sadp :: sadp_aux :: shapes :: [] ->
    Alcotest.(check bool) "via restriction adds rows" true
      (rows_of via > rows_of base);
    Alcotest.(check bool) "SADP adds vars" true (vars_of sadp > vars_of base);
    Alcotest.(check bool) "aux linearisation adds more vars" true
      (vars_of sadp_aux > vars_of sadp);
    Alcotest.(check bool) "via shapes add vars" true (vars_of shapes > vars_of base)
  | _ -> Alcotest.fail "unexpected row count"

let test_difficult_clips_valid () =
  let params =
    {
      Experiments.default_fig10_params with
      Experiments.instance_scale = 0.015;
      top_clips = 3;
    }
  in
  let clips = Experiments.difficult_clips ~params Tech.n28_8t in
  Alcotest.(check bool) "clips found" true (clips <> []);
  List.iter
    (fun c ->
      match Clip.validate c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    clips

(* ------------------------------------------------------------------ *)
(* Scoreboard                                                          *)
(* ------------------------------------------------------------------ *)

let entry rule delta =
  {
    Sweep.clip_name = "c";
    rule_name = rule;
    delta;
    cost = None;
    base_cost = 10;
  }

let test_scoreboard_reproduced_shape () =
  (* RULE4/5 flat, RULE6 infeasible, RULE2 severe: every paper claim
     reproduces. *)
  let entries =
    [
      entry "RULE2" (Sweep.Delta 40);
      entry "RULE2" Sweep.Infeasible;
      entry "RULE3" (Sweep.Delta 5);
      entry "RULE3" (Sweep.Delta 0);
      entry "RULE4" (Sweep.Delta 0);
      entry "RULE4" (Sweep.Delta 0);
      entry "RULE5" (Sweep.Delta 0);
      entry "RULE5" (Sweep.Delta 0);
      entry "RULE6" Sweep.Infeasible;
      entry "RULE6" (Sweep.Delta 2);
    ]
  in
  let findings = Scoreboard.fig10_findings entries in
  Alcotest.(check int) "four claims" 4 (List.length findings);
  List.iter
    (fun (f : Scoreboard.finding) ->
      match f.Scoreboard.verdict with
      | Scoreboard.Reproduced -> ()
      | Scoreboard.Diverged why | Scoreboard.Inconclusive why ->
        Alcotest.fail (f.Scoreboard.claim ^ ": " ^ why))
    findings

let test_scoreboard_detects_divergence () =
  (* Upper-layer rules with big deltas must flag the first claim. *)
  let entries =
    [
      entry "RULE4" (Sweep.Delta 50);
      entry "RULE5" (Sweep.Delta 60);
    ]
  in
  match Scoreboard.fig10_findings entries with
  | { Scoreboard.claim = _; verdict = Scoreboard.Diverged _ } :: _ -> ()
  | _ -> Alcotest.fail "expected Diverged on the first claim"

let test_scoreboard_inconclusive_on_limits () =
  let entries = [ entry "RULE2" Sweep.Limit; entry "RULE3" Sweep.Limit ] in
  let findings = Scoreboard.fig10_findings entries in
  Alcotest.(check bool) "has inconclusive entries" true
    (List.exists
       (fun (f : Scoreboard.finding) ->
         match f.Scoreboard.verdict with
         | Scoreboard.Inconclusive _ -> true
         | Scoreboard.Reproduced | Scoreboard.Diverged _ -> false)
       findings)

let test_scoreboard_fig8 () =
  let series lo hi =
    {
      Experiments.label = "x";
      top_costs = Array.init 10 (fun i -> hi -. (float_of_int i *. (hi -. lo) /. 9.0));
    }
  in
  let good = [ series 30.0 42.0; series 31.0 41.0 ] in
  List.iter
    (fun (f : Scoreboard.finding) ->
      Alcotest.(check bool) f.Scoreboard.claim true
        (f.Scoreboard.verdict = Scoreboard.Reproduced))
    (Scoreboard.fig8_findings good);
  let disjoint = [ series 1.0 5.0; series 50.0 60.0 ] in
  Alcotest.(check bool) "disjoint ranges diverge" true
    (List.exists
       (fun (f : Scoreboard.finding) ->
         match f.Scoreboard.verdict with
         | Scoreboard.Diverged _ -> true
         | Scoreboard.Reproduced | Scoreboard.Inconclusive _ -> false)
       (Scoreboard.fig8_findings disjoint))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let s =
    Report.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "separator" true
    (String.for_all (fun c -> c = '-') (List.nth lines 1))

let test_series_plot () =
  let s =
    Report.Series.plot ~width:20 ~height:5
      [ ("up", [| 0.0; 1.0; 2.0 |]); ("down", [| 2.0; 1.0; 0.0 |]) ]
  in
  Alcotest.(check bool) "mentions legend" true
    (String.length s > 0
    && List.exists
         (fun line -> String.length line > 3 && String.sub line 4 2 = "up")
         (String.split_on_char '\n' s));
  Alcotest.(check bool) "empty data handled" true
    (Report.Series.plot [] = "(no data)\n")

let test_csv () =
  let s = Report.Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "x,y" ] ] in
  Alcotest.(check string) "escaped" "a,b\n1,\"x,y\"\n" s

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_telemetry_root_lp_line () =
  let render ?root_lp_iters ?warm_reused () =
    Report.Telemetry.render ?root_lp_iters ~bound_flips:3 ?warm_reused
      ~warm_repaired:1 ~solves:4 ~fast_path_hits:0 ~seeded_incumbents:0
      ~nodes:4 ~simplex_iterations:20 ~busy_s:0.1 ~wall_s:0.1 ~limits:0
      ~infeasible:0 ~failures:0 ()
  in
  let s = render ~root_lp_iters:12 ~warm_reused:2 () in
  Alcotest.(check bool) "root-LP line present" true
    (contains_substring s
       "root LP: 12 iterations, 3 bound flips, warm basis 2 reused / 1 \
        repaired");
  (* warm_repaired alone still earns the line; zero root activity does not
     (bound_flips defaulted to 3 above is only reported alongside). *)
  Alcotest.(check bool) "repaired-only earns the line" true
    (contains_substring (render ()) "repaired");
  let quiet =
    Report.Telemetry.render ~solves:1 ~fast_path_hits:1 ~seeded_incumbents:0
      ~nodes:0 ~simplex_iterations:0 ~busy_s:0.0 ~wall_s:0.0 ~limits:0
      ~infeasible:0 ~failures:0 ()
  in
  Alcotest.(check bool) "fast-path-only run keeps the historical form" false
    (contains_substring quiet "root LP")

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let test_render_solution () =
  let clip = Clip.make ~cols:3 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let rules = Rules.rule 1 in
  let g = Graph.build ~tech:Tech.n28_12t ~rules clip in
  match (Optrouter.route_graph ~config:fast_config ~rules g).Optrouter.verdict with
  | Optrouter.Routed sol ->
    let s = Render.solution g sol in
    Alcotest.(check bool) "names the layer" true
      (String.length s >= 2 && String.sub s 0 2 = "M2");
    Alcotest.(check bool) "shows wire" true (String.contains s '-');
    Alcotest.(check bool) "shows terminals" true (String.contains s 'A');
    Alcotest.(check bool) "reports cost" true (String.contains s '=')
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "route failed"

let () =
  Alcotest.run "eval"
    [
      ( "sweep",
        [
          Alcotest.test_case "delta entries" `Quick test_sweep_deltas;
          Alcotest.test_case "unroutable entry" `Quick test_sweep_unroutable_entry;
          Alcotest.test_case "unroutable baseline dropped" `Quick
            test_sweep_drops_unroutable_baseline;
          Alcotest.test_case "fast path: zero nodes" `Quick
            test_fast_path_zero_nodes;
          Alcotest.test_case "seed_reuse=false ignores seeds" `Quick
            test_seed_reuse_knob_disables_fast_path;
          Alcotest.test_case "fast-path telemetry" `Quick
            test_clip_deltas_fast_path_telemetry;
          Alcotest.test_case "baseline config default budget" `Quick
            test_baseline_config_default_budget;
          Alcotest.test_case "busy vs wall telemetry" `Quick
            test_telemetry_busy_vs_wall;
          Alcotest.test_case "merge maxes lagrangian spans and gap" `Quick
            test_merge_telemetry_lagrangian;
          Alcotest.test_case "merge sums work, maxes spans" `Quick
            test_merge_telemetry_spans_max;
          Alcotest.test_case "warm basis matches cold across rules" `Quick
            test_warm_basis_matches_cold;
          Alcotest.test_case "series sorted" `Quick test_sweep_series_sorted;
          Alcotest.test_case "infeasible counts" `Quick test_sweep_infeasible_counts;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table 3" `Quick test_table3_matches_rules;
          Alcotest.test_case "table 3 golden" `Quick test_table3_golden;
          Alcotest.test_case "table 2" `Quick test_table2_covers_all_techs;
          Alcotest.test_case "N7 rule applicability" `Quick
            test_rules_for_skips_n7_inapplicable;
          Alcotest.test_case "ILP size variants" `Quick test_ilp_size_rows;
          Alcotest.test_case "difficult clips are valid" `Slow
            test_difficult_clips_valid;
        ] );
      ( "scoreboard",
        [
          Alcotest.test_case "reproduced shape" `Quick
            test_scoreboard_reproduced_shape;
          Alcotest.test_case "detects divergence" `Quick
            test_scoreboard_detects_divergence;
          Alcotest.test_case "inconclusive on limits" `Quick
            test_scoreboard_inconclusive_on_limits;
          Alcotest.test_case "fig8 claims" `Quick test_scoreboard_fig8;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "series plot" `Quick test_series_plot;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "telemetry root-LP line" `Quick
            test_telemetry_root_lp_line;
        ] );
      ("render", [ Alcotest.test_case "solution ascii" `Quick test_render_solution ]);
    ]
