(* Tests for the routing graph, ILP formulation, OptRouter and DRC. *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Layer = Optrouter_tech.Layer
module Via_shape = Optrouter_tech.Via_shape
module Formulate = Optrouter_core.Formulate
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc
module Milp = Optrouter_ilp.Milp

let tech = Tech.n28_12t
let rule = Rules.rule

let pin name access = { Clip.p_name = name; access; shape = None }

let net name pins = { Clip.n_name = name; pins }

let two_pin name (x1, y1) (x2, y2) =
  net name [ pin (name ^ ".s") [ (x1, y1) ]; pin (name ^ ".t") [ (x2, y2) ] ]

let clip ?obstructions ~cols ~rows ~layers nets =
  Clip.make ?obstructions ~cols ~rows ~layers nets

let route ?config ?(rules = rule 1) c = Optrouter.route ?config ~tech ~rules c

let routed_cost result =
  match result.Optrouter.verdict with
  | Optrouter.Routed sol -> sol.Route.metrics.cost
  | Optrouter.Unroutable -> Alcotest.fail "unexpectedly unroutable"
  | Optrouter.Limit _ -> Alcotest.fail "unexpected limit"
  | Optrouter.Near_optimal _ -> Alcotest.fail "unexpected near-optimal"

(* ------------------------------------------------------------------ *)
(* Clip validation                                                     *)
(* ------------------------------------------------------------------ *)

let test_clip_validate_ok () =
  let c = clip ~cols:3 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (2, 2) ] in
  Alcotest.(check bool) "valid" true (Result.is_ok (Clip.validate c))

let test_clip_validate_errors () =
  let bad_range = clip ~cols:3 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (5, 2) ] in
  Alcotest.(check bool) "out of range" true (Result.is_error (Clip.validate bad_range));
  let one_pin =
    clip ~cols:3 ~rows:3 ~layers:2 [ net "a" [ pin "p" [ (0, 0) ] ] ]
  in
  Alcotest.(check bool) "single pin" true (Result.is_error (Clip.validate one_pin));
  let shared =
    clip ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (1, 1); two_pin "b" (1, 1) (2, 2) ]
  in
  Alcotest.(check bool) "shared access point" true
    (Result.is_error (Clip.validate shared));
  let no_access =
    clip ~cols:3 ~rows:3 ~layers:2
      [ net "a" [ pin "p" []; pin "q" [ (0, 0) ] ] ]
  in
  Alcotest.(check bool) "empty access" true (Result.is_error (Clip.validate no_access))

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_graph_counts () =
  let c = clip ~cols:3 ~rows:2 ~layers:2 [ two_pin "a" (0, 0) (2, 1) ] in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  (* grid 3*2*2 = 12 vertices + 2 supers *)
  Alcotest.(check int) "vertices" 14 g.Graph.nverts;
  (* M2 horizontal: 2 rows * 2 steps = 4 wires; M3 vertical: 3 cols * 1 = 3;
     vias: 3*2 = 6; access: 2 *)
  Alcotest.(check int) "edges" 15 (Graph.num_edges g);
  let wire_m2 = ref 0 and wire_m3 = ref 0 and vias = ref 0 and access = ref 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      match e.Graph.kind with
      | Graph.Wire 0 -> incr wire_m2
      | Graph.Wire _ -> incr wire_m3
      | Graph.Via _ -> incr vias
      | Graph.Access -> incr access
      | Graph.Shape_lower _ | Graph.Shape_upper _ -> Alcotest.fail "no shapes")
    g.Graph.edges;
  Alcotest.(check int) "M2 wires" 4 !wire_m2;
  Alcotest.(check int) "M3 wires" 3 !wire_m3;
  Alcotest.(check int) "vias" 6 !vias;
  Alcotest.(check int) "access edges" 2 !access

let test_graph_unidirectional () =
  let c = clip ~cols:3 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (2, 2) ] in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  Array.iter
    (fun (e : Graph.edge) ->
      match e.Graph.kind with
      | Graph.Wire z -> begin
        match (g.Graph.vertex.(e.Graph.u), g.Graph.vertex.(e.Graph.v)) with
        | Graph.Grid a, Graph.Grid b ->
          let dx = abs (a.x - b.x) and dy = abs (a.y - b.y) in
          if g.Graph.layers.(z).Layer.dir = Layer.Horizontal then begin
            Alcotest.(check int) "horizontal step" 1 dx;
            Alcotest.(check int) "no vertical step" 0 dy
          end
          else begin
            Alcotest.(check int) "vertical step" 1 dy;
            Alcotest.(check int) "no horizontal step" 0 dx
          end
        | _, _ -> Alcotest.fail "wire between non-grid vertices"
      end
      | Graph.Via _ | Graph.Access | Graph.Shape_lower _ | Graph.Shape_upper _
        -> ())
    g.Graph.edges

let test_graph_bidirectional_option () =
  let c = clip ~cols:3 ~rows:3 ~layers:1 [ two_pin "a" (0, 0) (2, 2) ] in
  let uni = Graph.build ~tech ~rules:(rule 1) c in
  let bi = Graph.build ~bidirectional:true ~tech ~rules:(rule 1) c in
  Alcotest.(check bool) "more edges when bidirectional" true
    (Graph.num_edges bi > Graph.num_edges uni)

let test_graph_obstruction () =
  let c = clip ~cols:3 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let c_blocked =
    clip
      ~obstructions:[ (1, 0, 0) ]
      ~cols:3 ~rows:1 ~layers:1
      [ two_pin "a" (0, 0) (2, 0) ]
  in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  let gb = Graph.build ~tech ~rules:(rule 1) c_blocked in
  (* blocking the middle vertex removes both wire edges *)
  Alcotest.(check int) "edges drop" (Graph.num_edges g - 2) (Graph.num_edges gb)

let test_graph_via_shapes () =
  let c = clip ~cols:3 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (2, 2) ] in
  let g =
    Graph.build ~via_shapes:[ Via_shape.square_2x2 ~cost:4 ] ~tech
      ~rules:(rule 1) c
  in
  (* 2x2 placements on a 3x3 grid: 2*2 = 4 anchors, one via layer *)
  Alcotest.(check int) "via reps" 4 (Array.length g.Graph.via_reps);
  Array.iter
    (fun (r : Graph.via_rep) ->
      Alcotest.(check int) "lower members" 4 (Array.length r.Graph.lower_members);
      Alcotest.(check int) "upper members" 4 (Array.length r.Graph.upper_members))
    g.Graph.via_reps

let test_graph_net_only_access () =
  let c =
    clip ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (2, 0); two_pin "b" (0, 2) (2, 2) ]
  in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  Array.iter
    (fun (e : Graph.edge) ->
      match e.Graph.kind with
      | Graph.Access -> Alcotest.(check bool) "access restricted" true (e.Graph.net_only <> None)
      | Graph.Wire _ | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _
        -> Alcotest.(check bool) "others open" true (e.Graph.net_only = None))
    g.Graph.edges

let test_graph_bidirectional_with_shapes () =
  (* the two graph extensions compose: both wire directions everywhere
     plus multi-site via representatives *)
  let c = clip ~cols:4 ~rows:4 ~layers:2 [ two_pin "a" (0, 0) (3, 3) ] in
  let g =
    Graph.build ~bidirectional:true
      ~via_shapes:[ Via_shape.square_2x2 ~cost:4 ]
      ~tech ~rules:(rule 1) c
  in
  Alcotest.(check int) "reps placed" 9 (Array.length g.Graph.via_reps);
  (* wires: both directions on both layers: 2 * (4*3 + 4*3) *)
  let wires =
    Array.fold_left
      (fun acc (e : Graph.edge) ->
        match e.Graph.kind with
        | Graph.Wire _ -> acc + 1
        | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
          -> acc)
      0 g.Graph.edges
  in
  Alcotest.(check int) "bidirectional wires" 48 wires

(* ------------------------------------------------------------------ *)
(* OptRouter on hand-checked instances                                 *)
(* ------------------------------------------------------------------ *)

let test_route_straight_wire () =
  let c = clip ~cols:3 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let r = route c in
  Alcotest.(check int) "cost = 2 wire segments" 2 (routed_cost r)

let test_route_needs_layer_change () =
  (* Pins in the same column: M2 is horizontal, so the route must hop to
     the vertical M3: via + wire + via = 4 + 2 + 4. *)
  let c = clip ~cols:1 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (0, 2) ] in
  let r = route c in
  Alcotest.(check int) "cost" 10 (routed_cost r);
  match r.Optrouter.verdict with
  | Optrouter.Routed sol ->
    Alcotest.(check int) "vias" 2 sol.Route.metrics.vias;
    Alcotest.(check int) "wirelength" 2 sol.Route.metrics.wirelength
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "not routed"

let test_route_steiner_sharing () =
  (* Three pins on one track: a Steiner route shares the middle segment,
     so the cost equals the two-segment path, not two disjoint paths. *)
  let c =
    clip ~cols:3 ~rows:1 ~layers:1
      [
        net "a"
          [ pin "s" [ (0, 0) ]; pin "t1" [ (1, 0) ]; pin "t2" [ (2, 0) ] ];
      ]
  in
  let r = route c in
  Alcotest.(check int) "shared cost" 2 (routed_cost r)

let test_route_multi_access_pin () =
  (* The sink offers two access points; the nearer one must be used. *)
  let c =
    clip ~cols:4 ~rows:1 ~layers:1
      [
        net "a"
          [ pin "s" [ (0, 0) ]; pin "t" [ (1, 0); (3, 0) ] ];
      ]
  in
  let r = route c in
  Alcotest.(check int) "nearest access point" 1 (routed_cost r)

let test_route_two_nets_cross () =
  let c =
    clip ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 1) (2, 1); two_pin "b" (1, 0) (1, 2) ]
  in
  let r = route c in
  (* a: 2 wire on M2; b: via 4 + 2 wire on M3 + via 4 = 10 *)
  Alcotest.(check int) "crossing cost" 12 (routed_cost r)

let test_route_unroutable () =
  (* Only a horizontal layer but the net needs to change rows. *)
  let c =
    clip ~cols:3 ~rows:2 ~layers:1
      [ two_pin "a" (0, 0) (2, 1) ]
  in
  let r = route c in
  Alcotest.(check bool) "unroutable" true (r.Optrouter.verdict = Optrouter.Unroutable)

let test_route_via_restriction_cost () =
  (* A one-row hop needs two V23 vias in the same column at adjacent
     rows, which RULE6's orthogonal blocking forbids — the route must
     ladder over M4 instead. The pins sit in different columns so their
     access (V12) vias are legal under the rule. *)
  let c = clip ~cols:6 ~rows:3 ~layers:3 [ two_pin "a" (0, 0) (2, 1) ] in
  let free = routed_cost (route ~rules:(rule 1) c) in
  let blocked = routed_cost (route ~rules:(rule 6) c) in
  Alcotest.(check int) "RULE1 cost" 11 free;
  Alcotest.(check bool) "RULE6 is costlier" true (blocked > free)

let test_route_access_via_adjacency () =
  (* Pin access points are V12 vias, so via-adjacency restrictions apply
     between them — the paper's reason for excluding RULE9-class rules on
     N7-9T pin geometries (Section 4.1). Two pins whose only access
     points sit on adjacent tracks cannot both connect under RULE6. *)
  let c =
    clip ~cols:4 ~rows:3 ~layers:3
      [ two_pin "a" (0, 0) (3, 0); two_pin "b" (0, 1) (3, 2) ]
  in
  let free = route ~rules:(rule 1) c in
  Alcotest.(check bool) "routable without restrictions" true
    (match free.Optrouter.verdict with
    | Optrouter.Routed _ -> true
    | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> false);
  let blocked = route ~rules:(rule 6) c in
  (* access vias at (0,0) and (0,1) are orthogonally adjacent *)
  Alcotest.(check bool) "unroutable under RULE6" true
    (blocked.Optrouter.verdict = Optrouter.Unroutable);
  (* and the DRC agrees: the RULE1 routing violates RULE6 *)
  let g = Graph.build ~tech ~rules:(rule 1) c in
  match (Optrouter.route_graph ~rules:(rule 1) g).Optrouter.verdict with
  | Optrouter.Routed sol ->
    Alcotest.(check bool) "DRC flags access-via adjacency" true
      (List.exists
         (function Drc.Via_adjacency _ -> true | _ -> false)
         (Drc.check ~rules:(rule 6) g sol))
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "route failed"

let test_route_sadp_eol_cost () =
  (* Two abutting wire segments on one SADP track create facing line ends;
     RULE2 must push one net off the layer. *)
  let c =
    clip ~cols:4 ~rows:1 ~layers:3
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]
  in
  let free = routed_cost (route ~rules:(rule 1) c) in
  let sadp = routed_cost (route ~rules:(rule 2) c) in
  Alcotest.(check int) "RULE1 cost" 2 free;
  Alcotest.(check bool) "RULE2 is costlier" true (sadp > free)

let test_route_sadp_upper_layer_untouched () =
  (* The same clip under SADP >= M4 only: the M2 conflict is out of SADP
     scope, so the cost matches RULE1. *)
  let c =
    clip ~cols:4 ~rows:1 ~layers:2
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]
  in
  let free = routed_cost (route ~rules:(rule 1) c) in
  let sadp_m4 = routed_cost (route ~rules:(rule 4) c) in
  Alcotest.(check int) "no impact" free sadp_m4

let test_route_sadp_aux_linearization_agrees () =
  let c =
    clip ~cols:4 ~rows:2 ~layers:3
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]
  in
  let collapsed = routed_cost (route ~rules:(rule 2) c) in
  let config =
    Optrouter.make_config
      ~options:{ Formulate.default_options with sadp_aux_vars = true }
      ()
  in
  let aux = routed_cost (route ~config ~rules:(rule 2) c) in
  Alcotest.(check int) "same optimum" collapsed aux

let test_route_via_shape_preferred () =
  (* With a cheaper 2x1 bar via available and free space, the optimum
     uses it instead of two single vias. *)
  let c = clip ~cols:2 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (0, 2) ] in
  let config =
    Optrouter.make_config ~via_shapes:[ Via_shape.bar_2x1 ~cost:4 ] ()
  in
  let r = route ~config c in
  match r.Optrouter.verdict with
  | Optrouter.Routed sol ->
    (* single vias would cost 4 each; bars cost 3: 3+2+3 = 8 *)
    Alcotest.(check int) "cost with bars" 8 sol.Route.metrics.cost;
    Alcotest.(check int) "two via instances" 2 sol.Route.metrics.vias
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "not routed"

let test_formulation_e_var_accessor () =
  let c =
    clip ~cols:3 ~rows:2 ~layers:2
      [ two_pin "a" (0, 0) (2, 0); two_pin "b" (0, 1) (2, 1) ]
  in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  let form = Formulate.build ~rules:(rule 1) g in
  let lp = Formulate.lp form in
  Array.iteri
    (fun gid (e : Graph.edge) ->
      for net = 0 to 1 do
        for dir = 0 to 1 do
          let col = Formulate.e_var form ~net ~edge:gid ~dir in
          match e.Graph.net_only with
          | Some owner when owner <> net ->
            Alcotest.(check int) "foreign access edge has no column" (-1) col
          | Some _ | None ->
            Alcotest.(check bool) "column in range" true
              (col >= 0 && col < Optrouter_ilp.Lp.nvars lp);
            (* and it is a binary with the edge's cost as objective *)
            let v = lp.Optrouter_ilp.Lp.vars.(col) in
            Alcotest.(check bool) "is binary" true
              (v.Optrouter_ilp.Lp.kind = Optrouter_ilp.Lp.Integer);
            Alcotest.(check (float 1e-9)) "cost as objective"
              (float_of_int e.Graph.cost) v.Optrouter_ilp.Lp.obj
        done
      done)
    g.Graph.edges

let test_formulation_sizes () =
  let c = clip ~cols:3 ~rows:3 ~layers:2 [ two_pin "a" (0, 0) (2, 2) ] in
  let g = Graph.build ~tech ~rules:(rule 2) c in
  let collapsed = Formulate.build ~rules:(rule 2) g in
  let aux =
    Formulate.build
      ~options:{ Formulate.default_options with sadp_aux_vars = true }
      ~rules:(rule 2) g
  in
  let sc = Formulate.sizes collapsed and sa = Formulate.sizes aux in
  Alcotest.(check bool) "aux mode has more variables" true (sa.vars > sc.vars);
  Alcotest.(check bool) "aux mode has more rows" true (sa.rows > sc.rows);
  Alcotest.(check int) "same binaries (p and q are continuous)" sc.binaries
    sa.binaries;
  Alcotest.(check bool) "vars positive" true (sc.vars > 0);
  Alcotest.(check bool) "nonzeros positive" true (sc.nonzeros > 0)

let test_route_with_obstruction_detours () =
  (* Blocking the straight path forces a detour over M3/M4. *)
  let free = clip ~cols:3 ~rows:1 ~layers:3 [ two_pin "a" (0, 0) (2, 0) ] in
  let blocked =
    clip
      ~obstructions:[ (1, 0, 0) ]
      ~cols:3 ~rows:1 ~layers:3
      [ two_pin "a" (0, 0) (2, 0) ]
  in
  let base = routed_cost (route free) in
  let detour = routed_cost (route blocked) in
  Alcotest.(check int) "straight" 2 base;
  Alcotest.(check bool) "detour is costlier" true (detour > base)

let test_route_graph_reuse () =
  (* route_graph on a prebuilt graph gives the same answer as route. *)
  let c = clip ~cols:4 ~rows:2 ~layers:2 [ two_pin "a" (0, 0) (3, 1) ] in
  let rules = rule 1 in
  let g = Graph.build ~tech ~rules c in
  let via_clip = routed_cost (route ~rules c) in
  match (Optrouter.route_graph ~rules g).Optrouter.verdict with
  | Optrouter.Routed sol ->
    Alcotest.(check int) "same cost" via_clip sol.Route.metrics.cost
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "route_graph failed"

let test_route_without_heuristic_incumbent () =
  (* Disabling the maze warm start must not change the optimum. *)
  let c =
    clip ~cols:4 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (3, 2); two_pin "b" (3, 0) (0, 2) ]
  in
  let cold_config = Optrouter.make_config ~heuristic_incumbent:false () in
  Alcotest.(check int) "same optimum"
    (routed_cost (route c))
    (routed_cost (route ~config:cold_config c))

let test_route_solution_helpers () =
  (* two rows: the row-1 edges are guaranteed unused by the optimum *)
  let c = clip ~cols:3 ~rows:2 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let rules = rule 1 in
  let g = Graph.build ~tech ~rules c in
  match (Optrouter.route_graph ~rules g).Optrouter.verdict with
  | Optrouter.Routed sol ->
    let owned = Route.edge_set sol ~net:0 in
    List.iter
      (fun gid ->
        Alcotest.(check bool) "edge_set contains route edges" true (owned gid);
        Alcotest.(check (option int)) "uses_edge agrees" (Some 0)
          (Route.uses_edge sol gid))
      sol.Route.routes.(0).Route.edges;
    Alcotest.(check bool) "unused edge not owned" true
      (not
         (List.for_all owned
            (List.init (Graph.num_edges g) Fun.id)))
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "route failed"

let test_route_limit_verdict () =
  (* An unreachable node budget forces the Limit verdict. *)
  let c =
    clip ~cols:5 ~rows:4 ~layers:3
      [ two_pin "a" (0, 0) (4, 3); two_pin "b" (4, 0) (0, 3) ]
  in
  let config =
    Optrouter.make_config ~heuristic_incumbent:false
      ~milp:(Optrouter_ilp.Milp.make_params ~max_nodes:0 ())
      ()
  in
  match (route ~config c).Optrouter.verdict with
  | Optrouter.Limit _ -> ()
  | Optrouter.Routed _ -> Alcotest.fail "cannot be solved in zero nodes"
  | Optrouter.Unroutable -> Alcotest.fail "the clip is routable"
  | Optrouter.Near_optimal _ -> Alcotest.fail "unexpected near-optimal"

let test_graph_site_index () =
  let c = clip ~cols:3 ~rows:2 ~layers:3 [ two_pin "a" (0, 0) (2, 1) ] in
  let g = Graph.build ~tech ~rules:(rule 1) c in
  (* every grid position on a via layer carries a via edge whose lower
     endpoint is the matching grid vertex *)
  for z = 0 to 1 do
    for y = 0 to 1 do
      for x = 0 to 2 do
        match g.Graph.via_site.(Graph.site_index g ~x ~y ~z) with
        | None -> Alcotest.fail "missing via site"
        | Some gid ->
          let e = g.Graph.edges.(gid) in
          Alcotest.(check int) "lower endpoint"
            (Graph.grid_vertex g ~x ~y ~z)
            e.Graph.u
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* DRC                                                                 *)
(* ------------------------------------------------------------------ *)

let solution_of c rules =
  let g = Graph.build ~tech ~rules c in
  let r = Optrouter.route_graph ~rules g in
  match r.Optrouter.verdict with
  | Optrouter.Routed sol -> (g, sol)
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "not routed"

let test_drc_accepts_optimal () =
  let c =
    clip ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 1) (2, 1); two_pin "b" (1, 0) (1, 2) ]
  in
  let g, sol = solution_of c (rule 1) in
  Alcotest.(check int) "no violations" 0 (List.length (Drc.check ~rules:(rule 1) g sol))

let test_drc_detects_edge_conflict () =
  (* Reassign net a's route to net b: every edge is now claimed twice. *)
  let c =
    clip ~cols:3 ~rows:2 ~layers:1
      [ two_pin "a" (0, 0) (2, 0); two_pin "b" (0, 1) (2, 1) ]
  in
  let g, sol = solution_of c (rule 1) in
  let stolen =
    {
      Route.routes =
        [|
          sol.Route.routes.(0);
          { Route.net = 1; edges = sol.Route.routes.(0).Route.edges };
        |];
      metrics = sol.Route.metrics;
    }
  in
  let viols = Drc.check ~rules:(rule 1) g stolen in
  Alcotest.(check bool) "edge conflicts found" true
    (List.exists (function Drc.Edge_conflict _ -> true | _ -> false) viols)

let test_drc_detects_disconnection () =
  let c = clip ~cols:3 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let g, sol = solution_of c (rule 1) in
  let broken =
    {
      Route.routes =
        [| { Route.net = 0; edges = List.tl sol.Route.routes.(0).Route.edges } |];
      metrics = sol.Route.metrics;
    }
  in
  let viols = Drc.check ~rules:(rule 1) g broken in
  Alcotest.(check bool) "disconnected" true
    (List.exists (function Drc.Disconnected _ -> true | _ -> false) viols)

let test_drc_detects_via_adjacency () =
  (* Route under RULE1 (vias end up adjacent), then check against RULE6. *)
  let c =
    clip ~cols:3 ~rows:2 ~layers:2
      [ two_pin "a" (0, 0) (0, 1); two_pin "b" (1, 0) (1, 1) ]
  in
  let g, sol = solution_of c (rule 1) in
  let viols = Drc.check ~rules:(rule 6) g sol in
  Alcotest.(check bool) "via adjacency flagged" true
    (List.exists (function Drc.Via_adjacency _ -> true | _ -> false) viols)

let test_drc_detects_shape_blocking () =
  (* Route a via-shape clip, then plant a second net's wire inside the
     footprint: the checker must flag it. *)
  let c =
    clip ~cols:3 ~rows:3 ~layers:2
      [ two_pin "a" (0, 0) (0, 2); two_pin "b" (2, 0) (2, 2) ]
  in
  let rules = rule 1 in
  let g =
    Graph.build ~via_shapes:[ Via_shape.square_2x2 ~cost:4 ]
      ~single_vias:false ~tech ~rules c
  in
  match (Optrouter.route_graph ~rules g).Optrouter.verdict with
  | Optrouter.Routed sol ->
    Alcotest.(check int) "clean as routed" 0
      (List.length (Drc.check ~rules g sol));
    (* move net b's route onto net a's (overlapping a's via footprint) *)
    let tampered =
      {
        Route.routes =
          [|
            sol.Route.routes.(0);
            { Route.net = 1; edges = sol.Route.routes.(0).Route.edges };
          |];
        metrics = sol.Route.metrics;
      }
    in
    let viols = Drc.check ~rules g tampered in
    Alcotest.(check bool) "footprint/ownership violations found" true
      (viols <> [])
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> Alcotest.fail "route failed"

let test_drc_detects_dangling () =
  let c = clip ~cols:4 ~rows:1 ~layers:1 [ two_pin "a" (0, 0) (2, 0) ] in
  let g, sol = solution_of c (rule 1) in
  (* graft an unused wire edge onto the route: creates a stub *)
  let spare =
    let rec find gid =
      if gid >= Graph.num_edges g then Alcotest.fail "no spare edge"
      else
        let e = g.Graph.edges.(gid) in
        match e.Graph.kind with
        | Graph.Wire _ when not (List.mem gid sol.Route.routes.(0).Route.edges)
          -> gid
        | Graph.Wire _ | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _
        | Graph.Access ->
          find (gid + 1)
    in
    find 0
  in
  let padded =
    {
      Route.routes =
        [| { (sol.Route.routes.(0)) with Route.edges = spare :: sol.Route.routes.(0).Route.edges } |];
      metrics = sol.Route.metrics;
    }
  in
  let viols = Drc.check ~rules:(rule 1) g padded in
  Alcotest.(check bool) "dangling stub flagged" true
    (List.exists (function Drc.Dangling _ -> true | _ -> false) viols)

let test_drc_detects_sadp_conflict () =
  let c =
    clip ~cols:4 ~rows:1 ~layers:1
      [ two_pin "a" (0, 0) (1, 0); two_pin "b" (2, 0) (3, 0) ]
  in
  let g, sol = solution_of c (rule 1) in
  let viols = Drc.check ~rules:(rule 2) g sol in
  Alcotest.(check bool) "SADP EOL conflict flagged" true
    (List.exists (function Drc.Sadp_conflict _ -> true | _ -> false) viols)

(* Two vertical nets in adjacent columns: the RULE1 optimum drops both
   via pairs at the pin columns, a K4 in the DSA conflict graph (N28 has
   2 colors, pitch 1 track) — uncolorable. The checker must flag it
   under RULE12 and stay silent under RULE1. *)
let test_drc_detects_dsa_conflict () =
  let c =
    clip ~cols:4 ~rows:2 ~layers:2
      [ two_pin "a" (0, 0) (0, 1); two_pin "b" (1, 0) (1, 1) ]
  in
  let g, sol = solution_of c (rule 1) in
  let viols12 = Drc.check ~rules:(rule 12) g sol in
  Alcotest.(check bool) "DSA conflict flagged under RULE12" true
    (List.exists (function Drc.Dsa_conflict _ -> true | _ -> false) viols12);
  Alcotest.(check int) "clean under RULE1" 0
    (List.length (Drc.check ~rules:(rule 1) g sol))

(* The same clip routed under RULE12: the ILP must spread the via pairs
   past the DSA pitch (a paid detour) and deliver a DRC-clean routing —
   strictly costlier than the RULE1 optimum it had to abandon. *)
let test_route_dsa_forces_detour () =
  let c =
    clip ~cols:4 ~rows:2 ~layers:2
      [ two_pin "a" (0, 0) (0, 1); two_pin "b" (1, 0) (1, 1) ]
  in
  let base = routed_cost (route ~rules:(rule 1) c) in
  let g12, sol12 = solution_of c (rule 12) in
  Alcotest.(check int) "RULE12 routing is DRC-clean" 0
    (List.length (Drc.check ~rules:(rule 12) g12 sol12));
  Alcotest.(check bool) "detour costs strictly more than RULE1" true
    (sol12.Route.metrics.cost > base)

(* A lone via pair is 2-colorable: RULE12 must not tax colorable
   layouts — same optimum as RULE1. *)
let test_route_dsa_colorable_free () =
  let c = clip ~cols:4 ~rows:2 ~layers:2 [ two_pin "a" (0, 0) (0, 1) ] in
  let base = routed_cost (route ~rules:(rule 1) c) in
  let g12, sol12 = solution_of c (rule 12) in
  Alcotest.(check int) "DRC-clean" 0
    (List.length (Drc.check ~rules:(rule 12) g12 sol12));
  Alcotest.(check int) "no cost penalty when colorable" base
    sol12.Route.metrics.cost

(* ------------------------------------------------------------------ *)
(* Paper-size construction (no solving)                                *)
(* ------------------------------------------------------------------ *)

let test_paper_size_construction () =
  (* The full 7x10-track, 8-layer clip of the paper: the graph and the
     ILP must elaborate with the expected magnitudes even though solving
     it is out of test budget. *)
  let nets =
    [
      two_pin "n0" (0, 0) (6, 9);
      two_pin "n1" (1, 1) (5, 8);
      two_pin "n2" (2, 0) (2, 7);
      two_pin "n3" (6, 0) (0, 6);
      two_pin "n4" (0, 9) (6, 9 - 1);
      two_pin "n5" (1, 5) (5, 2);
    ]
  in
  let c = clip ~cols:7 ~rows:10 ~layers:8 nets in
  let rules = rule 8 in
  let g = Graph.build ~tech ~rules c in
  (* 7*10*8 grid vertices + 12 supers *)
  Alcotest.(check int) "vertices" ((7 * 10 * 8) + 12) g.Graph.nverts;
  (* wires: 4 horizontal layers of 10*6 + 4 vertical of 7*9; vias 7*10*7;
     access 12 *)
  Alcotest.(check int) "edges"
    ((4 * 60) + (4 * 63) + (7 * 10 * 7) + 12)
    (Graph.num_edges g);
  let form = Formulate.build ~rules g in
  let s = Formulate.sizes form in
  Alcotest.(check bool) "vars in the tens of thousands" true
    (s.Formulate.vars > 10_000 && s.Formulate.vars < 100_000);
  Alcotest.(check bool) "rows in the tens of thousands" true
    (s.Formulate.rows > 10_000 && s.Formulate.rows < 200_000)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random clips with a planted non-overlapping pin layout. *)
let random_clip_gen =
  let open QCheck.Gen in
  let* cols = int_range 3 4 in
  let* rows = int_range 2 3 in
  let* layers = int_range 2 3 in
  let* nnets = int_range 1 2 in
  let* shuffled =
    let all =
      List.concat_map (fun x -> List.init rows (fun y -> (x, y))) (List.init cols Fun.id)
    in
    shuffle_l all
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | p :: rest -> p :: take (n - 1) rest
  in
  let positions = take (2 * nnets) shuffled in
  let nets =
    List.init nnets (fun k ->
        match (List.nth_opt positions (2 * k), List.nth_opt positions ((2 * k) + 1)) with
        | Some p1, Some p2 -> two_pin (Printf.sprintf "n%d" k) p1 p2
        | _, _ -> two_pin (Printf.sprintf "n%d" k) (0, 0) (cols - 1, rows - 1))
  in
  return (clip ~cols ~rows ~layers nets)

let arbitrary_clip =
  QCheck.make ~print:(Format.asprintf "%a" Clip.pp) random_clip_gen

(* OptRouter solutions pass the independent DRC under the rule they were
   routed with (drc_check in the driver would raise; we re-check RULE6 and
   RULE3 solutions explicitly to exercise the rule-specific paths). *)
let prop_optimal_is_drc_clean =
  QCheck.Test.make ~name:"optimal routes are DRC-clean under their rules"
    ~count:15 arbitrary_clip (fun c ->
      List.for_all
        (fun rules ->
          let g = Graph.build ~tech ~rules c in
          match (Optrouter.route_graph ~rules g).Optrouter.verdict with
          | Optrouter.Routed sol -> Drc.check ~rules g sol = []
          | Optrouter.Unroutable -> true
          | Optrouter.Limit _ | Optrouter.Near_optimal _ -> true)
        [ rule 1; rule 3; rule 6 ])

(* Tightening rules can never reduce the optimal cost. *)
let prop_rule_monotonicity =
  QCheck.Test.make ~name:"rule cost is monotone vs RULE1" ~count:15
    arbitrary_clip (fun c ->
      let cost rules =
        match (route ~rules c).Optrouter.verdict with
        | Optrouter.Routed sol -> Some sol.Route.metrics.cost
        | Optrouter.Unroutable -> None
        | Optrouter.Limit _ | Optrouter.Near_optimal _ -> None
      in
      match cost (rule 1) with
      | None -> true
      | Some base ->
        List.for_all
          (fun r ->
            match cost (rule r) with
            | None -> true (* became unroutable: consistent with tightening *)
            | Some k -> k >= base)
          [ 2; 6; 9 ])

(* The paper's aggregated-flow formulation and the default disaggregated
   one must agree on optimal cost (they share integer feasible sets). *)
let prop_flow_formulations_agree =
  QCheck.Test.make ~name:"aggregated and disaggregated flows agree" ~count:10
    arbitrary_clip (fun c ->
      let cost options =
        let config = Optrouter.make_config ~options () in
        match (route ~config c).Optrouter.verdict with
        | Optrouter.Routed sol -> Some sol.Route.metrics.cost
        | Optrouter.Unroutable -> None
        | Optrouter.Limit _ | Optrouter.Near_optimal _ -> None
      in
      match
        ( cost Formulate.default_options,
          cost { Formulate.default_options with Formulate.aggregated_flows = true } )
      with
      | Some a, Some b -> a = b
      | None, None -> true
      | Some _, None | None, Some _ -> false)

(* OptRouter is never beaten by the heuristic baseline (footnote 6). *)
let prop_optimal_beats_heuristic =
  QCheck.Test.make ~name:"optimal cost <= heuristic cost" ~count:10
    arbitrary_clip (fun c ->
      let rules = rule 1 in
      let g = Graph.build ~tech ~rules c in
      match (Optrouter.route_graph ~rules g).Optrouter.verdict with
      | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> true
      | Optrouter.Routed opt -> (
        match (Optrouter_maze.Maze.route ~rules g).Optrouter_maze.Maze.solution with
        | None -> true
        | Some heur ->
          opt.Route.metrics.cost <= heur.Route.metrics.cost))

(* Optimal solutions round-trip through the encoder: the decoded routing,
   lifted back to an LP point, is feasible and costs exactly the decoded
   metrics. This pins down Formulate.encode, which seeds branch and bound
   with heuristic incumbents. *)
let prop_encode_roundtrip =
  QCheck.Test.make ~name:"decoded solutions re-encode feasibly" ~count:12
    arbitrary_clip (fun c ->
      let rules = rule 1 in
      let g = Graph.build ~tech ~rules c in
      match (Optrouter.route_graph ~rules g).Optrouter.verdict with
      | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> true
      | Optrouter.Routed sol -> (
        let form = Formulate.build ~rules g in
        match Formulate.encode form sol with
        | None -> false
        | Some x ->
          let lp = Formulate.lp form in
          Optrouter_ilp.Lp.is_feasible lp x
          && Float.abs
               (Optrouter_ilp.Lp.objective_value lp x
               -. float_of_int sol.Route.metrics.cost)
             <= 1e-6))

(* Reported metrics equal the recomputed ones. *)
let prop_metrics_consistent =
  QCheck.Test.make ~name:"decoded metrics equal recomputed metrics" ~count:15
    arbitrary_clip (fun c ->
      let g = Graph.build ~tech ~rules:(rule 1) c in
      match (Optrouter.route_graph ~rules:(rule 1) g).Optrouter.verdict with
      | Optrouter.Routed sol ->
        let m = Route.metrics_of g sol.Route.routes in
        m = sol.Route.metrics
      | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ -> true)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "router"
    [
      ( "clip",
        [
          Alcotest.test_case "validate ok" `Quick test_clip_validate_ok;
          Alcotest.test_case "validate errors" `Quick test_clip_validate_errors;
        ] );
      ( "graph",
        [
          Alcotest.test_case "vertex and edge counts" `Quick test_graph_counts;
          Alcotest.test_case "unidirectional layers" `Quick
            test_graph_unidirectional;
          Alcotest.test_case "bidirectional option" `Quick
            test_graph_bidirectional_option;
          Alcotest.test_case "obstructions remove edges" `Quick
            test_graph_obstruction;
          Alcotest.test_case "via shapes create reps" `Quick
            test_graph_via_shapes;
          Alcotest.test_case "access edges are net-restricted" `Quick
            test_graph_net_only_access;
          Alcotest.test_case "bidirectional + via shapes compose" `Quick
            test_graph_bidirectional_with_shapes;
        ] );
      ( "optrouter",
        [
          Alcotest.test_case "straight wire" `Quick test_route_straight_wire;
          Alcotest.test_case "layer change" `Quick test_route_needs_layer_change;
          Alcotest.test_case "steiner sharing" `Quick test_route_steiner_sharing;
          Alcotest.test_case "multiple access points" `Quick
            test_route_multi_access_pin;
          Alcotest.test_case "two nets crossing" `Quick test_route_two_nets_cross;
          Alcotest.test_case "unroutable clip" `Quick test_route_unroutable;
          Alcotest.test_case "via restriction cost" `Quick
            test_route_via_restriction_cost;
          Alcotest.test_case "access-via adjacency" `Quick
            test_route_access_via_adjacency;
          Alcotest.test_case "SADP EOL cost" `Quick test_route_sadp_eol_cost;
          Alcotest.test_case "SADP above M4 has no impact" `Quick
            test_route_sadp_upper_layer_untouched;
          Alcotest.test_case "SADP aux linearization agrees" `Slow
            test_route_sadp_aux_linearization_agrees;
          Alcotest.test_case "via shapes preferred" `Quick
            test_route_via_shape_preferred;
          Alcotest.test_case "formulation sizes" `Quick test_formulation_sizes;
          Alcotest.test_case "e_var accessor" `Quick
            test_formulation_e_var_accessor;
          Alcotest.test_case "obstruction detour" `Quick
            test_route_with_obstruction_detours;
          Alcotest.test_case "route_graph reuse" `Quick test_route_graph_reuse;
          Alcotest.test_case "no heuristic incumbent" `Quick
            test_route_without_heuristic_incumbent;
          Alcotest.test_case "solution helpers" `Quick
            test_route_solution_helpers;
          Alcotest.test_case "limit verdict" `Quick test_route_limit_verdict;
          Alcotest.test_case "via site index" `Quick test_graph_site_index;
        ] );
      ( "drc",
        [
          Alcotest.test_case "accepts optimal routes" `Quick
            test_drc_accepts_optimal;
          Alcotest.test_case "detects edge conflicts" `Quick
            test_drc_detects_edge_conflict;
          Alcotest.test_case "detects disconnection" `Quick
            test_drc_detects_disconnection;
          Alcotest.test_case "detects via adjacency" `Quick
            test_drc_detects_via_adjacency;
          Alcotest.test_case "detects SADP conflicts" `Quick
            test_drc_detects_sadp_conflict;
          Alcotest.test_case "detects via-shape footprint abuse" `Quick
            test_drc_detects_shape_blocking;
          Alcotest.test_case "detects dangling stubs" `Quick
            test_drc_detects_dangling;
          Alcotest.test_case "detects DSA uncolorable vias" `Quick
            test_drc_detects_dsa_conflict;
          Alcotest.test_case "RULE12 forces a paid detour" `Quick
            test_route_dsa_forces_detour;
          Alcotest.test_case "RULE12 is free when colorable" `Quick
            test_route_dsa_colorable_free;
        ] );
      ( "paper-size",
        [
          Alcotest.test_case "construction magnitudes" `Quick
            test_paper_size_construction;
        ] );
      ( "properties",
        [
          qtest prop_optimal_is_drc_clean;
          qtest prop_rule_monotonicity;
          qtest prop_metrics_consistent;
          qtest prop_flow_formulations_agree;
          qtest prop_optimal_beats_heuristic;
          qtest prop_encode_roundtrip;
        ] );
    ]
