(* Tests for the static-analysis subsystem: the model auditor (Lp_audit)
   and the source lint (Source_lint). *)

module Lp = Optrouter_ilp.Lp
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Formulate = Optrouter_core.Formulate
module Optrouter = Optrouter_core.Optrouter
module Report = Optrouter_report.Report
module Lp_audit = Optrouter_analysis.Lp_audit
module Source_lint = Optrouter_analysis.Source_lint

let tech = Tech.n28_12t
let rule = Rules.rule

let pin name access = { Clip.p_name = name; access; shape = None }
let net name pins = { Clip.n_name = name; pins }

let two_pin name (x1, y1) (x2, y2) =
  net name [ pin (name ^ ".s") [ (x1, y1) ]; pin (name ^ ".t") [ (x2, y2) ] ]

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Lp_audit.code) ds)

let has_code c ds = List.mem c (codes ds)

let check_code ?(expect = true) c ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s %s" c (if expect then "present" else "absent"))
    expect (has_code c ds)

(* ------------------------------------------------------------------ *)
(* Structure (A0xx)                                                    *)
(* ------------------------------------------------------------------ *)

let test_structure_clean () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_binary b ~name:"x_1" ~obj:1.0 in
  let y = Lp.Builder.add_binary b ~name:"y_1" ~obj:1.0 in
  Lp.Builder.add_row b ~name:"r_1" [ (x, 1.0); (y, 1.0) ] Lp.Ge 1.0;
  let ds = Lp_audit.audit_lp (Lp.Builder.finish b) in
  Alcotest.(check (list string)) "no diagnostics" [] (codes ds)

let test_structure_duplicate_names () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_binary b ~name:"x_1" ~obj:1.0 in
  let _ = Lp.Builder.add_binary b ~name:"x_1" ~obj:1.0 in
  Lp.Builder.add_row b ~name:"r_1" [ (x, 1.0) ] Lp.Le 1.0;
  Lp.Builder.add_row b ~name:"r_1" [ (x, -1.0) ] Lp.Le 0.0;
  let ds = Lp_audit.structure (Lp.Builder.finish b) in
  check_code "A001" ds;
  check_code "A003" ds

let test_structure_empty_and_infeasible_rows () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_binary b ~name:"x_1" ~obj:1.0 in
  let y = Lp.Builder.add_binary b ~name:"y_1" ~obj:0.0 in
  (* coefficients sum to zero: vacuously true empty row *)
  Lp.Builder.add_row b ~name:"vac_1" [ (x, 1.0); (x, -1.0) ] Lp.Le 1.0;
  (* coefficients sum to zero but 0 <= -1 never holds *)
  Lp.Builder.add_row b ~name:"gone_1" [ (x, 2.0); (x, -2.0) ] Lp.Le (-1.0);
  (* binary activity range is [0, 2]: can never reach 3 *)
  Lp.Builder.add_row b ~name:"high_1" [ (x, 1.0); (y, 1.0) ] Lp.Ge 3.0;
  let ds = Lp_audit.structure (Lp.Builder.finish b) in
  check_code "A005" ds;
  check_code "A007" ds;
  let infeasible =
    List.filter (fun d -> d.Lp_audit.code = "A007") ds
    |> List.map (fun d -> d.Lp_audit.subject)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "both impossible rows flagged" [ "gone_1"; "high_1" ] infeasible

let test_structure_variable_kinds () =
  let b = Lp.Builder.create () in
  let _ =
    Lp.Builder.add_var b ~name:"i_1" ~lower:0.5 ~upper:2.5 ~obj:0.0 Lp.Integer
  in
  let _ =
    Lp.Builder.add_var b ~name:"fix_1" ~lower:3.0 ~upper:3.0 ~obj:0.0
      Lp.Continuous
  in
  let _ =
    Lp.Builder.add_var b ~name:"free_1" ~lower:neg_infinity ~upper:infinity
      ~obj:0.0 Lp.Continuous
  in
  (* NaN bounds sneak past the Builder's lower > upper test: every
     comparison with NaN is false. The auditor must catch them. *)
  let _ =
    Lp.Builder.add_var b ~name:"nan_1" ~lower:Float.nan ~upper:1.0 ~obj:0.0
      Lp.Continuous
  in
  let ds = Lp_audit.structure (Lp.Builder.finish b) in
  check_code "A006" ds;
  check_code "A010" ds;
  check_code "A011" ds;
  check_code "A009" ds

(* ------------------------------------------------------------------ *)
(* Numerics (A1xx)                                                     *)
(* ------------------------------------------------------------------ *)

let test_numerics () =
  let b = Lp.Builder.create () in
  let x =
    Lp.Builder.add_var b ~name:"x_1" ~lower:0.0 ~upper:1.0 ~obj:1.0
      Lp.Continuous
  in
  let y =
    Lp.Builder.add_var b ~name:"y_1" ~lower:0.0 ~upper:1.0 ~obj:1.0
      Lp.Continuous
  in
  Lp.Builder.add_row b ~name:"spread_1" [ (x, 1e-5); (y, 1e5) ] Lp.Le 1.0;
  Lp.Builder.add_row b ~name:"huge_1" [ (x, 1e11) ] Lp.Le 1e11;
  Lp.Builder.add_row b ~name:"tiny_1" [ (x, 1e-11) ] Lp.Le 1.0;
  let ds = Lp_audit.numerics (Lp.Builder.finish b) in
  check_code "A101" ds;
  check_code "A102" ds;
  check_code "A103" ds;
  (* a clean row produces nothing *)
  let b2 = Lp.Builder.create () in
  let x2 = Lp.Builder.add_binary b2 ~name:"x_1" ~obj:1.0 in
  Lp.Builder.add_row b2 ~name:"ok_1" [ (x2, 4.0) ] Lp.Le 4.0;
  Alcotest.(check (list string))
    "clean" []
    (codes (Lp_audit.numerics (Lp.Builder.finish b2)))

(* ------------------------------------------------------------------ *)
(* Redundancy (A2xx)                                                   *)
(* ------------------------------------------------------------------ *)

let test_redundancy () =
  let b = Lp.Builder.create () in
  let x = Lp.Builder.add_binary b ~name:"x_1" ~obj:1.0 in
  let y = Lp.Builder.add_binary b ~name:"y_1" ~obj:1.0 in
  Lp.Builder.add_row b ~name:"a_1" [ (x, 1.0); (y, 1.0) ] Lp.Le 1.0;
  Lp.Builder.add_row b ~name:"a_2" [ (x, 1.0); (y, 1.0) ] Lp.Le 1.0;
  Lp.Builder.add_row b ~name:"a_3" [ (x, 1.0); (y, 1.0) ] Lp.Le 2.0;
  Lp.Builder.add_row b ~name:"e_1" [ (x, 1.0) ] Lp.Eq 1.0;
  Lp.Builder.add_row b ~name:"e_2" [ (x, 1.0) ] Lp.Eq 0.0;
  let ds = Lp_audit.redundancy (Lp.Builder.finish b) in
  check_code "A201" ds;
  check_code "A202" ds;
  check_code "A203" ds;
  let dominated = List.find (fun d -> d.Lp_audit.code = "A202") ds in
  Alcotest.(check string)
    "the weaker row is the dominated one" "a_3" dominated.Lp_audit.subject

(* ------------------------------------------------------------------ *)
(* Coverage (A3xx)                                                     *)
(* ------------------------------------------------------------------ *)

let build_form rules_ clip =
  let g = Graph.build ~tech ~rules:rules_ clip in
  (g, Formulate.build ~rules:rules_ g)

let test_clip =
  Clip.make ~cols:4 ~rows:4 ~layers:2
    [ two_pin "a" (0, 0) (3, 3); two_pin "b" (0, 3) (3, 0) ]

(* Rebuild the formulation's problem through the Builder, dropping every
   row whose name-family is in [drop] and adding [extra] rows. *)
let doctor ?(drop = []) ?(extra = []) (lp : Lp.t) =
  let family name =
    match String.index_opt name '_' with
    | Some i when i > 0 -> String.sub name 0 i
    | Some _ | None -> name
  in
  let b = Lp.Builder.create () in
  Array.iter
    (fun (v : Lp.var) ->
      ignore
        (Lp.Builder.add_var b ~name:v.Lp.v_name ~lower:v.Lp.lower
           ~upper:v.Lp.upper ~obj:v.Lp.obj v.Lp.kind))
    lp.Lp.vars;
  Array.iter
    (fun (r : Lp.row) ->
      if not (List.mem (family r.Lp.r_name) drop) then
        Lp.Builder.add_row b ~name:r.Lp.r_name
          (Array.to_list r.Lp.coeffs)
          r.Lp.sense r.Lp.rhs)
    lp.Lp.rows;
  List.iter
    (fun (name, coeffs, sense, rhs) ->
      Lp.Builder.add_row b ~name coeffs sense rhs)
    extra;
  Lp.Builder.finish b

let coverage_of rules_ g form lp =
  Lp_audit.coverage ~rules:rules_ ~options:(Formulate.options form) g lp

let test_coverage_clean () =
  List.iter
    (fun n ->
      let r = rule n in
      let g, form = build_form r test_clip in
      let ds = coverage_of r g form (Formulate.lp form) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s clean" r.Rules.name)
        [] (codes ds))
    [ 1; 2; 3; 6; 9 ]

(* The acceptance test of the coverage layer: artificially suppressing a
   constraint family that the rules demand must be reported as A301 —
   even though the doctored problem is still a perfectly well-formed LP. *)
let test_coverage_suppressed_family () =
  (* RULE2: SADP from M2, so the EOL packing rows must exist *)
  let g, form = build_form (rule 2) test_clip in
  let lp = Formulate.lp form in
  let families =
    Array.to_list lp.Lp.rows
    |> List.map (fun (r : Lp.row) -> r.Lp.r_name)
    |> List.filter (fun n -> String.length n > 4 && String.sub n 0 5 = "sadp_")
  in
  Alcotest.(check bool)
    "precondition: the honest model has sadp rows" true (families <> []);
  let doctored = doctor ~drop:[ "sadp" ] lp in
  let ds = coverage_of (rule 2) g form doctored in
  check_code "A301" ds;
  let missing = List.find (fun d -> d.Lp_audit.code = "A301") ds in
  Alcotest.(check string) "the sadp family" "sadp" missing.Lp_audit.subject;
  (* same game with the via-adjacency rows of RULE6 *)
  let g6, form6 = build_form (rule 6) test_clip in
  let ds6 =
    coverage_of (rule 6) g6 form6 (doctor ~drop:[ "viadj" ] (Formulate.lp form6))
  in
  check_code "A301" ds6

let test_coverage_forbidden_and_unknown () =
  (* RULE1 has no SADP anywhere: a sadp row is a leak, not coverage *)
  let g, form = build_form (rule 1) test_clip in
  let lp = Formulate.lp form in
  let with_leak =
    doctor ~extra:[ ("sadp_leak", [ (0, 1.0) ], Lp.Le, 1.0) ] lp
  in
  check_code "A302" (coverage_of (rule 1) g form with_leak);
  let with_unknown =
    doctor ~extra:[ ("zzz_1", [ (0, 1.0) ], Lp.Le, 1.0) ] lp
  in
  check_code "A303" (coverage_of (rule 1) g form with_unknown)

(* The DSA family obeys the same toggling contract as every other rule
   knob: suppressing the coloring rows under RULE12 is an A301, leaking
   them under a non-DSA rule is an A302. The expected set is re-derived
   from the raw via-site lattice, never from Formulate's own pair list. *)
let test_coverage_dsa_family () =
  let g, form = build_form (rule 12) test_clip in
  let lp = Formulate.lp form in
  let dsa_rows =
    Array.to_list lp.Lp.rows
    |> List.filter (fun (r : Lp.row) ->
           String.length r.Lp.r_name > 4 && String.sub r.Lp.r_name 0 4 = "dsa_")
  in
  Alcotest.(check bool)
    "precondition: the honest RULE12 model has dsa rows" true (dsa_rows <> []);
  Alcotest.(check (list string))
    "honest RULE12 model is clean" []
    (codes (coverage_of (rule 12) g form lp));
  let ds = coverage_of (rule 12) g form (doctor ~drop:[ "dsa" ] lp) in
  check_code "A301" ds;
  let missing =
    List.filter (fun d -> d.Lp_audit.code = "A301") ds
    |> List.map (fun d -> d.Lp_audit.subject)
  in
  Alcotest.(check (list string))
    "exactly the dsa row family is reported missing" [ "dsa" ] missing;
  (* leak direction: a dsa row under plain RULE1 is forbidden *)
  let g1, form1 = build_form (rule 1) test_clip in
  let with_leak =
    doctor
      ~extra:[ ("dsa_col_g0", [ (0, 1.0) ], Lp.Eq, 0.0) ]
      (Formulate.lp form1)
  in
  check_code "A302" (coverage_of (rule 1) g1 form1 with_leak)

(* A305: the objective vector must match the rules' objective exactly.
   An honest via-count formulation is clean; a wirelength-objective LP
   audited against via-count rules (the "silent drop" of the objective
   dimension) is an A305 error. *)
let test_coverage_objective_vector () =
  let via_rules = Rules.with_objective Rules.Via_count (rule 1) in
  let gv, formv = build_form via_rules test_clip in
  Alcotest.(check (list string))
    "honest via-count model is clean" []
    (codes (coverage_of via_rules gv formv (Formulate.lp formv)));
  let gw, formw = build_form (rule 1) test_clip in
  let ds = coverage_of via_rules gw formw (Formulate.lp formw) in
  check_code "A305" ds;
  Alcotest.(check bool)
    "A305 diagnostics are errors" true
    (List.for_all
       (fun d -> d.Lp_audit.severity = Lp_audit.Error)
       (List.filter (fun d -> d.Lp_audit.code = "A305") ds));
  (* the weight itself is pinned, not just the via/wire split *)
  let w2 = Rules.with_objective (Rules.Via_weighted 2.0) (rule 1) in
  let w3 = Rules.with_objective (Rules.Via_weighted 3.0) (rule 1) in
  let g2, form2 = build_form w2 test_clip in
  Alcotest.(check (list string))
    "honest via-weighted model is clean" []
    (codes (coverage_of w2 g2 form2 (Formulate.lp form2)));
  check_code "A305" (coverage_of w3 g2 form2 (Formulate.lp form2))

let test_audit_formulations_all_rules () =
  (* every applicable rule on every tech, on a nontrivial clip: the full
     audit must be error-free (mirrors `optrouter audit` in CI) *)
  List.iter
    (fun t ->
      List.iter
        (fun (r : Rules.t) ->
          if Rules.applicable ~tech_name:t.Tech.name r then begin
            let g = Graph.build ~tech:t ~rules:r test_clip in
            let form = Formulate.build ~rules:r g in
            let ds = Lp_audit.audit ~rules:r form in
            Alcotest.(check int)
              (Printf.sprintf "%s/%s error-free" t.Tech.name r.Rules.name)
              0
              (Lp_audit.error_count ds)
          end)
        Rules.all)
    Tech.all

let test_hook () =
  let _, form = build_form (rule 2) test_clip in
  (* clean model: the strict hook must not raise *)
  Lp_audit.hook () ~rules:(rule 2) form;
  (* and it must be pluggable into the router config *)
  let config =
    Optrouter.make_config
      ~milp:(Optrouter_ilp.Milp.make_params ~time_limit_s:10.0 ())
      ~audit:(Lp_audit.hook ()) ()
  in
  let result = Optrouter.route ~config ~tech ~rules:(rule 1) test_clip in
  Alcotest.(check bool)
    "routed with auditing on" true
    (match result.Optrouter.verdict with
    | Optrouter.Routed _ -> true
    | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
      false)

let test_render_and_json () =
  let ds =
    [
      {
        Lp_audit.code = "A001";
        severity = Lp_audit.Error;
        subject = "r_1";
        message = "duplicate row name";
      };
    ]
  in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  let text = Lp_audit.render ds in
  Alcotest.(check bool) "text mentions code" true (contains ~affix:"A001" text);
  let json = Report.Json.to_string (Lp_audit.to_json ds) in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" affix)
        true (contains ~affix json))
    [ {|"errors": 1|}; {|"code": "A001"|}; {|"severity": "error"|} ]

(* ------------------------------------------------------------------ *)
(* Report.Json float round-trip                                        *)
(* ------------------------------------------------------------------ *)

(* Every float the reports emit must come back bit-identical through our
   own parser (and still tagged [Float], not [Int] — hence the forced
   [.0] suffix on integral values). Bit equality distinguishes -0.0 from
   0.0, which [Float.equal] would conflate. *)
let qcheck_json_float_roundtrip =
  let gen =
    (* [ldexp m e] sweeps ~18 decimal orders of magnitude in both signs
       without ever generating nan/inf *)
    QCheck.Gen.(
      map2
        (fun m e -> ldexp (float_of_int m) e)
        (int_range (-1_000_000_000) 1_000_000_000)
        (int_range (-60) 60))
  in
  QCheck.Test.make ~count:500 ~name:"Json float emit/parse is the identity"
    (QCheck.make ~print:string_of_float gen) (fun f ->
      let doc = Report.Json.Obj [ ("x", Report.Json.Float f) ] in
      match Report.Json.of_string (Report.Json.to_string doc) with
      | Ok parsed -> (
        match Report.Json.member "x" parsed with
        | Some (Report.Json.Float f') ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
        | Some _ | None -> false)
      | Error _ -> false)

let test_json_rejects_non_finite () =
  List.iter
    (fun f ->
      match Report.Json.to_string (Report.Json.Float f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "non-finite %h must not emit (got %S)" f s)
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* nested occurrences are rejected too, not just top-level scalars *)
  match
    Report.Json.to_string
      (Report.Json.Obj
         [ ("xs", Report.Json.List [ Report.Json.Float Float.nan ]) ])
  with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "nested nan must not emit (got %S)" s

(* ------------------------------------------------------------------ *)
(* Source lint                                                         *)
(* ------------------------------------------------------------------ *)

let lint_codes src =
  List.sort_uniq compare
    (List.map
       (fun f -> f.Source_lint.code)
       (Source_lint.lint_string ~filename:"test.ml" src))

let test_lint_conversions () =
  Alcotest.(check (list string))
    "int_of_float" [ "L001" ]
    (lint_codes "let f x = int_of_float x");
  Alcotest.(check (list string))
    "Float.to_int" [ "L001" ]
    (lint_codes "let f x = Float.to_int (x *. 2.0)");
  Alcotest.(check (list string))
    "Round is clean" []
    (lint_codes "let f x = Optrouter_geom.Round.floor x")

let test_lint_float_equality () =
  Alcotest.(check (list string))
    "nonzero literal" [ "L002" ]
    (lint_codes "let f x = x = 1.5");
  Alcotest.(check (list string))
    "either side, <> too" [ "L002" ]
    (lint_codes "let f x = 2.0 <> x");
  Alcotest.(check (list string))
    "zero literal is the sanctioned sparse-drop idiom" []
    (lint_codes "let f x = x = 0.0");
  Alcotest.(check (list string))
    "int literals are fine" []
    (lint_codes "let f x = x = 1")

let test_lint_catch_all () =
  Alcotest.(check (list string))
    "with _" [ "L003" ]
    (lint_codes "let f g = try g () with _ -> ()");
  Alcotest.(check (list string))
    "exception _ case" [ "L003" ]
    (lint_codes "let f g x = match g x with v -> v | exception _ -> 0");
  Alcotest.(check (list string))
    "named binder is deliberate" []
    (lint_codes "let f g = try g () with _exn -> ()");
  Alcotest.(check (list string))
    "specific exception is fine" []
    (lint_codes "let f g = try g () with Not_found -> ()")

let test_lint_toplevel_state () =
  Alcotest.(check (list string))
    "toplevel ref" [ "L004" ]
    (lint_codes "let count = ref 0");
  Alcotest.(check (list string))
    "toplevel table" [ "L004" ]
    (lint_codes "let t = Hashtbl.create 16");
  Alcotest.(check (list string))
    "nested module too" [ "L004" ]
    (lint_codes "module M = struct let b = Buffer.create 7 end");
  Alcotest.(check (list string))
    "Atomic.make is the sanctioned primitive" []
    (lint_codes "let count = Atomic.make 0");
  Alcotest.(check (list string))
    "local mutable state is fine" []
    (lint_codes "let f () = let c = ref 0 in incr c; !c")

let test_lint_determinism () =
  Alcotest.(check (list string))
    "Hashtbl.hash" [ "L005" ]
    (lint_codes "let f x = Hashtbl.hash x");
  Alcotest.(check (list string))
    "Random.self_init" [ "L005" ]
    (lint_codes "let f () = Random.self_init ()");
  Alcotest.(check (list string))
    "fixed seed is deterministic" []
    (lint_codes "let f () = Random.init 42");
  Alcotest.(check (list string))
    "Hashtbl.create is not Hashtbl.hash" []
    (lint_codes "let f () = let t = Hashtbl.create 4 in Hashtbl.length t")

let test_lint_parse_failure () =
  Alcotest.(check (list string))
    "unparseable source reports L000" [ "L000" ]
    (lint_codes "let = =")

let test_lint_fixture () =
  (* the known-bad fixture must trip every lint, at its annotated lines;
     [dune runtest] runs from test/, [dune exec] from the project root *)
  let fixture =
    List.find Sys.file_exists
      [ "fixtures/bad_lint.ml"; "test/fixtures/bad_lint.ml" ]
  in
  let fs = Source_lint.lint_file fixture in
  let hits code =
    List.filter (fun f -> f.Source_lint.code = code) fs
    |> List.map (fun f -> f.Source_lint.line)
  in
  Alcotest.(check (list int)) "L001 lines" [ 13; 16 ] (hits "L001");
  Alcotest.(check (list int)) "L002 lines" [ 19; 22 ] (hits "L002");
  Alcotest.(check (list int)) "L003 lines" [ 29; 32 ] (hits "L003");
  Alcotest.(check (list int)) "L004 lines" [ 7; 10 ] (hits "L004");
  Alcotest.(check (list int)) "L005 lines" [ 44; 47 ] (hits "L005")

let test_ml_files_under () =
  let root = Filename.temp_file "lintwalk" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let mk dir name =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc "let x = 1\n";
    close_out oc;
    path
  in
  let kept = mk root "keep.ml" in
  let _skipped_build = mk (Filename.concat root "_build") "gen.ml" in
  let _skipped_opam = mk (Filename.concat root "_opam") "pkg.ml" in
  let _skipped_dot = mk (Filename.concat root ".git") "hook.ml" in
  let _not_ml = mk root "notes.mli" in
  Alcotest.(check (list string))
    "only the real source file survives the walk" [ kept ]
    (Source_lint.ml_files_under [ root ]);
  (* explicitly named paths are always entered, even under a skip dir *)
  Alcotest.(check (list string))
    "explicit path wins over skip rules"
    [ Filename.concat (Filename.concat root "_build") "gen.ml" ]
    (Source_lint.ml_files_under [ Filename.concat root "_build" ])

(* ------------------------------------------------------------------ *)
(* Par lint                                                            *)
(* ------------------------------------------------------------------ *)

module Par_lint = Optrouter_analysis.Par_lint

let par_codes src =
  List.sort_uniq compare
    (List.map
       (fun f -> f.Par_lint.code)
       (Par_lint.lint_string ~filename:"test.ml" src))

let test_par_unguarded_mutation () =
  Alcotest.(check (list string))
    "incr in a spawned closure, read outside" [ "P001" ]
    (par_codes
       {|let c = ref 0
         let f () =
           let d = Domain.spawn (fun () -> incr c) in
           Domain.join d; !c|});
  Alcotest.(check (list string))
    "mutation under the lock is clean" []
    (par_codes
       {|let c = ref 0
         let m = Mutex.create ()
         let f () =
           let d =
             Domain.spawn (fun () ->
                 Mutex.lock m; incr c; Mutex.unlock m)
           in
           Domain.join d;
           Mutex.lock m; let v = !c in Mutex.unlock m; v|});
  Alcotest.(check (list string))
    "Mutex.protect body is guarded" []
    (par_codes
       {|let c = ref 0
         let m = Mutex.create ()
         let f () =
           let d =
             Domain.spawn (fun () -> Mutex.protect m (fun () -> incr c))
           in
           Domain.join d;
           Mutex.protect m (fun () -> !c)|});
  Alcotest.(check (list string))
    "single-owner driver mutation is not flagged" []
    (par_codes
       {|let f () =
           let c = ref 0 in
           incr c;
           let d = Domain.spawn (fun () -> ()) in
           Domain.join d; !c|})

let test_par_captured_mutation () =
  Alcotest.(check (list string))
    "captured table mutated in Pool.map closure" [ "P002" ]
    (par_codes
       {|let f pool keys =
           let t = Hashtbl.create 8 in
           Pool.map pool (fun k -> Hashtbl.replace t k ()) keys|});
  Alcotest.(check (list string))
    "atomics are the sanctioned primitive" []
    (par_codes
       {|let n = Atomic.make 0
         let f () =
           let d = Domain.spawn (fun () -> Atomic.incr n) in
           Domain.join d; Atomic.get n|})

let test_par_atomic_window () =
  Alcotest.(check (list string))
    "get -> test -> set window" [ "P003" ]
    (par_codes
       {|let a = Atomic.make 0
         let f () = if Atomic.get a = 0 then Atomic.set a 1|});
  Alcotest.(check (list string))
    "compare_and_set in the same conditional exempts" []
    (par_codes
       {|let a = Atomic.make 0
         let f () =
           if Atomic.get a = 0 then ignore (Atomic.compare_and_set a 0 1)|})

let test_par_wait_loop () =
  Alcotest.(check (list string))
    "wait outside any loop" [ "P004" ]
    (par_codes
       {|let f m c p =
           Mutex.lock m;
           (if not (p ()) then Condition.wait c m);
           Mutex.unlock m|});
  Alcotest.(check (list string))
    "while loop re-tests the predicate" []
    (par_codes
       {|let f m c p =
           Mutex.lock m;
           while not (p ()) do Condition.wait c m done;
           Mutex.unlock m|});
  Alcotest.(check (list string))
    "let rec wait loop is the codebase idiom" []
    (par_codes
       {|let f m c p =
           Mutex.lock m;
           let rec wait () = if not (p ()) then begin Condition.wait c m; wait () end in
           wait ();
           Mutex.unlock m|})

let test_par_blocking_under_lock () =
  Alcotest.(check (list string))
    "channel read while holding a mutex" [ "P005" ]
    (par_codes
       {|let f m ic =
           Mutex.lock m;
           let l = input_line ic in
           Mutex.unlock m; l|});
  Alcotest.(check (list string))
    "Condition.wait releases the mutex: exempt" []
    (par_codes
       {|let f m c p =
           Mutex.lock m;
           while not (p ()) do Condition.wait c m done;
           Mutex.unlock m|})

let test_par_mixed_discipline () =
  Alcotest.(check (list string))
    "parallel read without the lock writers hold" [ "P006" ]
    (par_codes
       {|type s = { lock : Mutex.t; mutable n : int }
         let f jobs =
           let s = { lock = Mutex.create (); n = 0 } in
           let ds =
             List.map
               (fun _ ->
                 Domain.spawn (fun () ->
                     Mutex.lock s.lock;
                     s.n <- s.n + 1;
                     Mutex.unlock s.lock))
               jobs
           in
           let w = Domain.spawn (fun () -> s.n) in
           ignore (Domain.join w);
           List.iter Domain.join ds|})

let test_par_inlined_lock_inheritance () =
  (* a same-file helper called only under the lock inherits protection
     through call-site inlining *)
  Alcotest.(check (list string))
    "helper called under the lock is guarded" []
    (par_codes
       {|let c = ref 0
         let m = Mutex.create ()
         let bump () = incr c
         let f () =
           let d =
             Domain.spawn (fun () ->
                 Mutex.lock m; bump (); Mutex.unlock m)
           in
           Domain.join d;
           Mutex.protect m (fun () -> !c)|})

let test_par_labelled_callback_not_parallel () =
  (* only positional Func arguments to parallel entry points run in
     another domain; labelled callbacks like ~on_done stay synchronous *)
  Alcotest.(check (list string))
    "labelled on_done is synchronous" []
    (par_codes
       {|let f run x =
           let c = ref 0 in
           run ~on_done:(fun () -> incr c) x;
           !c|})

let test_par_parse_failure () =
  Alcotest.(check (list string))
    "unparseable source reports P000" [ "P000" ]
    (par_codes "let = =")

let test_par_inventory () =
  let inv =
    Par_lint.inventory ~filename:"test.ml"
      {|let a = ref 0
let t = Hashtbl.create 16
let n = Atomic.make 0|}
  in
  Alcotest.(check (list string))
    "kinds inventoried"
    [ "Atomic.make"; "Hashtbl.create"; "ref" ]
    (List.sort_uniq compare (List.map (fun (_, _, k) -> k) inv));
  Alcotest.(check (list string))
    "names inventoried" [ "a"; "n"; "t" ]
    (List.sort_uniq compare (List.map (fun (_, n, _) -> n) inv))

let test_par_json () =
  let findings =
    Par_lint.lint_string ~filename:"test.ml"
      {|let c = ref 0
        let f () =
          let d = Domain.spawn (fun () -> incr c) in
          Domain.join d; !c|}
  in
  let json = Par_lint.to_json findings in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" affix)
        true (contains ~affix json))
    [ {|"findings": 1|}; {|"code": "P001"|}; {|"file": "test.ml"|} ]

let test_par_fixture () =
  let fixture =
    List.find Sys.file_exists
      [ "fixtures/bad_par.ml"; "test/fixtures/bad_par.ml" ]
  in
  let fs = Par_lint.lint_file fixture in
  let hits code =
    List.filter (fun f -> f.Par_lint.code = code) fs
    |> List.map (fun f -> f.Par_lint.line)
  in
  Alcotest.(check (list int)) "P001 lines" [ 15 ] (hits "P001");
  Alcotest.(check (list int)) "P002 lines" [ 22 ] (hits "P002");
  Alcotest.(check (list int)) "P003 lines" [ 27 ] (hits "P003");
  Alcotest.(check (list int)) "P004 lines" [ 31 ] (hits "P004");
  Alcotest.(check (list int)) "P005 lines" [ 38 ] (hits "P005");
  Alcotest.(check (list int)) "P006 lines" [ 56 ] (hits "P006")

let () =
  Alcotest.run "analysis"
    [
      ( "lp_audit-structure",
        [
          Alcotest.test_case "clean model" `Quick test_structure_clean;
          Alcotest.test_case "duplicate names" `Quick
            test_structure_duplicate_names;
          Alcotest.test_case "empty and infeasible rows" `Quick
            test_structure_empty_and_infeasible_rows;
          Alcotest.test_case "variable kinds" `Quick
            test_structure_variable_kinds;
        ] );
      ( "lp_audit-numerics",
        [ Alcotest.test_case "conditioning" `Quick test_numerics ] );
      ( "lp_audit-redundancy",
        [ Alcotest.test_case "duplicate/dominated/conflicting" `Quick
            test_redundancy ] );
      ( "lp_audit-coverage",
        [
          Alcotest.test_case "honest formulations are clean" `Quick
            test_coverage_clean;
          Alcotest.test_case "suppressed family is caught" `Quick
            test_coverage_suppressed_family;
          Alcotest.test_case "leaked and unknown families" `Quick
            test_coverage_forbidden_and_unknown;
          Alcotest.test_case "dsa family toggling (A301/A302)" `Quick
            test_coverage_dsa_family;
          Alcotest.test_case "objective vector pinned (A305)" `Quick
            test_coverage_objective_vector;
          Alcotest.test_case "all rules x all techs error-free" `Slow
            test_audit_formulations_all_rules;
        ] );
      ( "lp_audit-integration",
        [
          Alcotest.test_case "hook and router config" `Slow test_hook;
          Alcotest.test_case "render and json" `Quick test_render_and_json;
        ] );
      ( "report-json",
        [
          QCheck_alcotest.to_alcotest qcheck_json_float_roundtrip;
          Alcotest.test_case "non-finite floats rejected at emit" `Quick
            test_json_rejects_non_finite;
        ] );
      ( "source_lint",
        [
          Alcotest.test_case "unsafe conversions" `Quick test_lint_conversions;
          Alcotest.test_case "float literal equality" `Quick
            test_lint_float_equality;
          Alcotest.test_case "catch-all handlers" `Quick test_lint_catch_all;
          Alcotest.test_case "toplevel mutable state" `Quick
            test_lint_toplevel_state;
          Alcotest.test_case "determinism hazards" `Quick
            test_lint_determinism;
          Alcotest.test_case "parse failure" `Quick test_lint_parse_failure;
          Alcotest.test_case "bad fixture detected" `Quick test_lint_fixture;
          Alcotest.test_case "file walk skips build dirs" `Quick
            test_ml_files_under;
        ] );
      ( "par_lint",
        [
          Alcotest.test_case "unguarded mutation (P001)" `Quick
            test_par_unguarded_mutation;
          Alcotest.test_case "captured mutation (P002)" `Quick
            test_par_captured_mutation;
          Alcotest.test_case "atomic window (P003)" `Quick
            test_par_atomic_window;
          Alcotest.test_case "wait loop (P004)" `Quick test_par_wait_loop;
          Alcotest.test_case "blocking under lock (P005)" `Quick
            test_par_blocking_under_lock;
          Alcotest.test_case "mixed discipline (P006)" `Quick
            test_par_mixed_discipline;
          Alcotest.test_case "inlined lock inheritance" `Quick
            test_par_inlined_lock_inheritance;
          Alcotest.test_case "labelled callbacks stay synchronous" `Quick
            test_par_labelled_callback_not_parallel;
          Alcotest.test_case "parse failure" `Quick test_par_parse_failure;
          Alcotest.test_case "inventory" `Quick test_par_inventory;
          Alcotest.test_case "json report" `Quick test_par_json;
          Alcotest.test_case "bad fixture detected" `Quick test_par_fixture;
        ] );
    ]
