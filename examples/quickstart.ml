(* Quickstart: define a small switchbox clip, route it optimally under two
   rule configurations, and print the solutions.

   Run with: dune exec examples/quickstart.exe *)

module Clip = Optrouter_grid.Clip
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Optrouter = Optrouter_core.Optrouter
module Render = Optrouter_core.Render
module Route = Optrouter_grid.Route
module Graph = Optrouter_grid.Graph

let pin name access = { Clip.p_name = name; access; shape = None }

(* A 6x4-track clip with three layers (M2 horizontal, M3 vertical, M4
   horizontal) and three nets; net "a" has three pins, so its optimal
   route is a Steiner tree. *)
let clip =
  Clip.make ~name:"quickstart" ~cols:6 ~rows:4 ~layers:3
    [
      {
        Clip.n_name = "a";
        pins =
          [
            pin "a.out" [ (0, 0) ];
            pin "a.in1" [ (5, 0) ];
            pin "a.in2" [ (3, 3) ];
          ];
      };
      { Clip.n_name = "b"; pins = [ pin "b.out" [ (1, 1) ]; pin "b.in" [ (1, 3) ] ] };
      { Clip.n_name = "c"; pins = [ pin "c.out" [ (4, 1) ]; pin "c.in" [ (4, 2) ] ] };
    ]

let route_and_show rules =
  Printf.printf "--- %s ---\n" (Format.asprintf "%a" Rules.pp rules);
  let result = Optrouter.route ~tech:Tech.n28_12t ~rules clip in
  match result.Optrouter.verdict with
  | Optrouter.Routed sol ->
    let g = Graph.build ~tech:Tech.n28_12t ~rules clip in
    print_string (Render.solution g sol);
    Printf.printf "solved in %.2fs, %d branch-and-bound nodes\n\n"
      result.Optrouter.stats.Optrouter.elapsed_s
      result.Optrouter.stats.Optrouter.nodes
  | Optrouter.Unroutable -> print_endline "unroutable under these rules\n"
  | Optrouter.Limit _ -> print_endline "solver limit reached\n"
  | Optrouter.Near_optimal _ ->
    (* only the Lagrangian solve mode emits this; the default is exact *)
    print_endline "unexpected near-optimal verdict\n"

let () =
  print_endline "OptRouter quickstart: optimal switchbox routing";
  Printf.printf "clip: %s\n\n" (Format.asprintf "%a" Clip.pp clip);
  (* RULE1: all layers LELE, no via restrictions - the baseline. *)
  route_and_show (Rules.rule 1);
  (* RULE3: SADP patterning on M3 and above. *)
  route_and_show (Rules.rule 3)
