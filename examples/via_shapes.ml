(* Via shapes (Section 3.2).

   The ILP can instantiate square and bar vias alongside the single-cut
   via; larger shapes are given a lower cost, so the optimum prefers them
   for manufacturability when there is room — and falls back to single
   cuts when a neighbouring net needs the space (constraint (5) blocks the
   whole footprint).

   Run with: dune exec examples/via_shapes.exe *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Via_shape = Optrouter_tech.Via_shape
module Optrouter = Optrouter_core.Optrouter
module Render = Optrouter_core.Render
module Route = Optrouter_grid.Route

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ ".s") [ p1 ]; pin (name ^ ".t") [ p2 ] ] }

(* One net that must change layers, alone in a roomy clip... *)
let roomy = Clip.make ~name:"roomy" ~cols:4 ~rows:4 ~layers:2 [ two_pin "a" (0, 0) (0, 3) ]

(* ...and the same net with a competing neighbour crowding the footprint. *)
let crowded =
  Clip.make ~name:"crowded" ~cols:4 ~rows:4 ~layers:2
    [ two_pin "a" (0, 0) (0, 3); two_pin "b" (1, 0) (3, 0) ]

let solve ~via_shapes clip =
  let config = Optrouter.make_config ~via_shapes () in
  let rules = Rules.rule 1 in
  let result = Optrouter.route ~config ~tech:Tech.n28_12t ~rules clip in
  match result.Optrouter.verdict with
  | Optrouter.Routed sol -> sol
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    failwith "expected a proven routing"

let describe label clip via_shapes =
  let sol = solve ~via_shapes clip in
  Printf.printf "%-34s cost=%d wirelength=%d vias=%d\n" label
    sol.Route.metrics.cost sol.Route.metrics.wirelength sol.Route.metrics.vias;
  sol

let () =
  print_endline "Via shape study: single-cut vias cost 4, 2x1 bar vias cost 3.";
  print_newline ();
  ignore (describe "roomy clip, single vias only:" roomy []);
  let sol = describe "roomy clip, bar vias offered:" roomy [ Via_shape.bar_2x1 ~cost:4 ] in
  let g =
    Graph.build ~via_shapes:[ Via_shape.bar_2x1 ~cost:4 ] ~tech:Tech.n28_12t
      ~rules:(Rules.rule 1) roomy
  in
  print_newline ();
  print_string (Render.solution g sol);
  print_newline ();
  ignore (describe "crowded clip, single vias only:" crowded []);
  ignore (describe "crowded clip, bar vias offered:" crowded [ Via_shape.bar_2x1 ~cost:4 ]);
  print_newline ();
  print_endline
    "In the roomy clip the optimum switches to the cheaper bar vias; in the\n\
     crowded clip the footprint-blocking constraint (5) decides per via\n\
     whether a bar still fits next to net b."
