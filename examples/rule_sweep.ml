(* Rule sweep: the paper's evaluation flow (Figure 6) in miniature.

   Generates a synthetic placed design, extracts the most difficult clips
   by pin cost, routes each under every applicable rule configuration and
   prints the Δcost table relative to RULE1.

   Run with: dune exec examples/rule_sweep.exe *)

module Tech = Optrouter_tech.Tech
module Clip = Optrouter_grid.Clip
module Design = Optrouter_design.Design
module Extract = Optrouter_clips.Extract
module Pin_cost = Optrouter_clips.Pin_cost
module Sweep = Optrouter_eval.Sweep
module Experiments = Optrouter_eval.Experiments
module Report = Optrouter_report.Report

let () =
  let tech = Tech.n28_8t in
  Printf.printf "technology: %s\n" (Format.asprintf "%a" Tech.pp tech);
  (* A small AES-profile design: 3%% of the paper's instance count keeps
     the ILP instances solvable by the bundled MILP solver. *)
  let profile =
    { Design.aes with Design.instance_count = 400 }
  in
  let design = Design.generate ~seed:1 profile ~util:0.92 tech in
  Printf.printf "design: %s\n" (Format.asprintf "%a" Design.pp design);
  let clips = Extract.windows Extract.reduced_params design in
  Printf.printf "extracted %d clips; selecting the 3 hardest by pin cost\n\n"
    (List.length clips);
  let hardest = Extract.top_k 2 clips in
  List.iter
    (fun (clip, cost) ->
      Printf.printf "  %s: pin cost %.1f (%d pins)\n" clip.Clip.c_name cost
        (Clip.num_pins clip))
    hardest;
  print_newline ();
  let rules = Experiments.rules_for tech in
  (* a short per-solve budget keeps the example interactive; unproved
     solves show up as "limit" *)
  let config =
    Optrouter_core.Optrouter.make_config
      ~milp:(Optrouter_ilp.Milp.make_params ~time_limit_s:15.0 ())
      ()
  in
  let entries =
    List.concat_map
      (fun (clip, _) -> Sweep.clip_deltas ~config ~tech ~rules clip)
      hardest
  in
  let rows =
    List.map
      (fun (e : Sweep.entry) ->
        [
          e.Sweep.clip_name;
          e.Sweep.rule_name;
          string_of_int e.Sweep.base_cost;
          (match e.Sweep.delta with
          | Sweep.Delta d -> Printf.sprintf "%+d" d
          | Sweep.Infeasible -> "unroutable"
          | Sweep.Limit -> "limit");
        ])
      entries
  in
  print_string
    (Report.Table.render ~header:[ "clip"; "rule"; "cost(RULE1)"; "dcost" ] rows);
  print_newline ();
  print_string
    (Report.Series.plot ~y_label:"sorted dcost per rule (500 = unroutable)"
       (Sweep.series entries))
