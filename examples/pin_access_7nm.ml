(* Pin access in 7nm (Figure 9 and Section 4.1).

   Renders the NAND2X1 pin shapes of each technology, then builds a clip
   from two abutting NAND2 cells and compares routability: the N7-9T pins
   expose only two adjacent access points, so via restrictions that block
   8 neighbours (RULE9) leave no legal way to connect both input pins -
   exactly why the paper does not evaluate RULE2/7/9/10/11 in N7.

   Run with: dune exec examples/pin_access_7nm.exe *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Cells = Optrouter_cells.Cells
module Clip = Optrouter_grid.Clip
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route

(* A clip holding the input pins of two side-by-side NAND2 cells: net "x"
   drives A pins of both gates, net "y" connects the B pins. *)
let nand_pair_clip tech =
  let cell = Cells.nand2 tech in
  let inputs = Cells.inputs cell in
  let find name =
    List.find (fun (p : Cells.pin) -> p.Cells.p_name = name) inputs
  in
  let a = find "A" and bpin = find "B" in
  let shift dx (p : Cells.pin) = List.map (fun (x, y) -> (x + dx, y)) p.Cells.offsets in
  let rows = tech.Tech.cell_height_tracks in
  let width = cell.Cells.width_cols in
  let pin name access = { Clip.p_name = name; access; shape = None } in
  Clip.make
    ~name:(Printf.sprintf "nand-pair-%s" tech.Tech.name)
    ~tech_name:tech.Tech.name ~cols:(2 * width) ~rows ~layers:4
    [
      { Clip.n_name = "x"; pins = [ pin "g1.A" (shift 0 a); pin "g2.A" (shift width a) ] };
      { Clip.n_name = "y"; pins = [ pin "g1.B" (shift 0 bpin); pin "g2.B" (shift width bpin) ] };
    ]

let try_rules tech =
  let clip = nand_pair_clip tech in
  Printf.printf "%s: %d access points per input pin\n" tech.Tech.name
    tech.Tech.access_points_per_pin;
  List.iter
    (fun n ->
      let rules = Rules.rule n in
      let applicable = Rules.applicable ~tech_name:tech.Tech.name rules in
      let verdict =
        match (Optrouter.route ~tech ~rules clip).Optrouter.verdict with
        | Optrouter.Routed sol ->
          Printf.sprintf "cost %d" sol.Route.metrics.cost
        | Optrouter.Unroutable -> "UNROUTABLE"
        | Optrouter.Limit _ -> "limit"
        | Optrouter.Near_optimal sol ->
          Printf.sprintf "cost %d (near-optimal)" sol.Route.metrics.cost
      in
      Printf.printf "  %-7s %-12s %s\n" rules.Rules.name verdict
        (if applicable then "" else "(paper skips this rule for N7)"))
    [ 1; 6; 9 ];
  print_newline ()

let () =
  print_endline "NAND2X1 pin shapes (Figure 9): '=' are power rails,";
  print_endline "letters are pin access points.";
  print_newline ();
  List.iter
    (fun tech -> print_endline (Cells.render tech (Cells.nand2 tech)))
    Tech.all;
  print_endline "Routing two abutting NAND2 gates' input nets:";
  print_newline ();
  List.iter try_rules Tech.all
