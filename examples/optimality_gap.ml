(* Optimality gap of heuristic routing (the paper's footnote 6).

   The paper validates OptRouter by observing that its routing cost never
   exceeds a commercial router's, with an average improvement of -10..-15
   on costs around 380 (3-4%). This example measures the same quantity
   against the bundled heuristic baseline over a batch of generated
   clips, at two baseline strengths: a single-pass sequential router
   (one net order, no repair — greedy routers of this kind lose real
   wirelength to ordering, or fail outright) and the full baseline with
   randomised restarts and rip-up, which on clips this small usually
   finds the optimum. The optimal column can never be worse than
   either.

   Run with: dune exec examples/optimality_gap.exe *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Route = Optrouter_grid.Route
module Optrouter = Optrouter_core.Optrouter
module Maze = Optrouter_maze.Maze
module Milp = Optrouter_ilp.Milp

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }

(* Deterministic batch of small clips: even indices hold two crossing
   nets (routable greedily, often at extra cost), odd indices add a third
   net through the middle (where one greedy pass usually paints itself
   into a corner). *)
let batch =
  let mk i =
    let cols = 4 + (i mod 2) and rows = 3 + (i mod 3) in
    let nets =
      [
        two_pin "a" (0, 0) (cols - 1, rows - 1);
        two_pin "b" (cols - 1, 0) (0, rows - 1);
      ]
      @ (if i mod 2 = 1 then [ two_pin "c" (1, 0) (1, rows - 1) ] else [])
    in
    Clip.make ~name:(Printf.sprintf "gap%d" i) ~cols ~rows ~layers:3 nets
  in
  (* plus two tight channel-crossing clips where greedy ordering costs
     wirelength without failing *)
  let channel i =
    Clip.make ~name:(Printf.sprintf "chan%d" i) ~cols:(5 + i) ~rows:2 ~layers:3
      [
        two_pin "a" (0, 0) (4 + i, 1);
        two_pin "b" (0, 1) (4 + i, 0);
      ]
  in
  List.init 6 mk @ [ channel 0; channel 1 ]

let () =
  let tech = Tech.n28_12t in
  let rules = Rules.rule 1 in
  let config =
    Optrouter.make_config
      ~milp:(Milp.make_params ~max_nodes:20_000 ~time_limit_s:30.0 ())
      ()
  in
  Printf.printf "%-8s %12s %10s %10s\n" "clip" "single-pass" "restarts" "optimal";
  let total_1 = ref 0 and total_r = ref 0 and total_o = ref 0 and complete = ref true in
  List.iter
    (fun clip ->
      let g = Graph.build ~tech ~rules clip in
      let maze params =
        match (Maze.route ~params ~rules g).Maze.solution with
        | Some sol -> Some sol.Route.metrics.cost
        | None -> None
      in
      let single =
        maze { Maze.default_params with Maze.restarts = 1; rip_up_rounds = 0 }
      in
      let restarts = maze Maze.default_params in
      let optimal =
        match (Optrouter.route_graph ~config ~rules g).Optrouter.verdict with
        | Optrouter.Routed sol -> Some sol.Route.metrics.cost
        | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _
          ->
          None
      in
      let cell = function Some c -> string_of_int c | None -> "fail" in
      Printf.printf "%-8s %12s %10s %10s\n" clip.Clip.c_name (cell single)
        (cell restarts) (cell optimal);
      match (single, restarts, optimal) with
      | Some s, Some r, Some o ->
        assert (o <= r && r <= s);
        total_1 := !total_1 + s;
        total_r := !total_r + r;
        total_o := !total_o + o
      | _, _, _ -> complete := false)
    batch;
  if !total_o > 0 then
    Printf.printf
      "\ntotals over clips all three solved: single-pass %d, restarts %d, \
       optimal %d (single-pass pays %.1f%%; the paper reports ~3-4%% \
       against a commercial router)\n"
      !total_1 !total_r !total_o
      (100.0 *. float_of_int (!total_1 - !total_o) /. float_of_int !total_1);
  if not !complete then
    print_endline
      "(single-pass failures: ordering alone can strand a sequential \
       router where an optimal routing exists)"
