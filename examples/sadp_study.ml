(* SADP end-of-line rules (Section 3.2, Figures 3-5).

   Two short wire segments on the same SADP track create facing line ends
   one pitch apart - forbidden by the EOL rules. Under RULE1 (all LELE)
   the direct routing is optimal; under RULE2 (SADP from M2 up) the
   optimum must move one net out of the way, and the Δcost is exactly the
   price of that rule. The example also shows the independent DRC checker
   flagging the LELE routing when audited against SADP rules.

   Run with: dune exec examples/sadp_study.exe *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Optrouter = Optrouter_core.Optrouter
module Render = Optrouter_core.Render
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc

let pin name access = { Clip.p_name = name; access; shape = None }

let two_pin name p1 p2 =
  { Clip.n_name = name; pins = [ pin (name ^ ".s") [ p1 ]; pin (name ^ ".t") [ p2 ] ] }

(* Two 1-segment nets abutting on row 1 of M2, with spare tracks above. *)
let clip =
  Clip.make ~name:"eol-conflict" ~cols:4 ~rows:3 ~layers:3
    [ two_pin "a" (0, 1) (1, 1); two_pin "b" (2, 1) (3, 1) ]

let solve rules =
  match (Optrouter.route ~tech:Tech.n28_12t ~rules clip).Optrouter.verdict with
  | Optrouter.Routed sol -> sol
  | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
    failwith "expected a proven routing"

let () =
  let lele = Rules.rule 1 and sadp = Rules.rule 2 in
  Printf.printf "clip: two abutting wire segments on one M2 track\n\n";
  let base = solve lele in
  Printf.printf "--- RULE1 (all LELE) ---\n";
  let g1 = Graph.build ~tech:Tech.n28_12t ~rules:lele clip in
  print_string (Render.solution g1 base);
  (* Audit the LELE routing against the SADP rules: the facing line ends
     at one-pitch spacing are exactly the Figure 5(b) configuration. *)
  let violations = Drc.check ~rules:sadp g1 base in
  Printf.printf "\nauditing the RULE1 routing against SADP rules: %d violation(s)\n"
    (List.length violations);
  List.iter
    (fun v -> Format.printf "  %a@." (Drc.pp_violation g1) v)
    violations;
  let fixed = solve sadp in
  Printf.printf "\n--- RULE2 (SADP >= M2) ---\n";
  let g2 = Graph.build ~tech:Tech.n28_12t ~rules:sadp clip in
  print_string (Render.solution g2 fixed);
  Printf.printf "\ndcost of RULE2 on this clip: %+d\n"
    (fixed.Route.metrics.cost - base.Route.metrics.cost);
  assert (Drc.check ~rules:sadp g2 fixed = [])
