(** Domain-safety lint for the parallel solver stack.

    A compiler-libs based, per-file, context-sensitive analysis of how
    mutable state interacts with OCaml 5 domains. It (1) inventories the
    mutable values a file creates (refs, [Hashtbl], [Buffer], arrays,
    records with [mutable] fields), (2) tracks which of them are
    captured by closures handed to the parallel entry points used in
    this codebase ([Domain.spawn], [Pool.map]/[Pool.map_result]/
    [Pool.run], [Pool.Budget.with_width]), and (3) checks every access
    against the locking discipline it can see: lexical
    [Mutex.lock]/[Mutex.unlock] regions, [Mutex.protect] bodies, and —
    via call-site inlining of same-file functions — lock protection
    inherited from the caller (so a heap helper called only under the
    frontier mutex counts as guarded, while the same helper called from
    single-owner driver code is not flagged at all).

    Deliberate scope limits, chosen so shipped code audits clean without
    annotations:

    - Mutations outside any parallel closure are never flagged: driver
      init before [Domain.spawn] and quiescent reads after [Domain.join]
      are the codebase's single-owner idiom, not races.
    - Guardedness is per-access; the analysis does not prove that the
      {e same} mutex guards every access ([P006] catches the observable
      mixed case).
    - Closures that escape through data structures (e.g. jobs queued
      into a pool's own work queue) are not tracked.
    - Calls into other compilation units are assumed non-blocking and
      non-mutating; this is a lint, not a verifier — the TSan CI job is
      the dynamic cross-check.

    Stable codes:

    - [P000] — file does not parse.
    - [P001] — unsynchronized cross-domain mutation: a parallel closure
      mutates captured mutable state without a held lock while the same
      state is also accessed outside that closure.
    - [P002] — a parallel closure mutates captured mutable state with
      neither a held [Mutex] nor [Atomic] discipline (no second access
      observed; still a race with the owner the analysis cannot see).
    - [P003] — [Atomic.get] → test → [Atomic.set] on the same atomic
      within one conditional: a lost-update window; use
      [Atomic.compare_and_set] (whose presence on that atomic in the
      same conditional exempts the pattern).
    - [P004] — [Condition.wait] that is neither inside a [while] loop
      nor inside a self-recursive [let rec] body: spurious wakeups and
      missed signals require re-testing the predicate.
    - [P005] — a blocking call ([Unix] syscalls, [Domain.join],
      [Pool.map], channel I/O, ...) while holding a mutex; lock
      hold times must stay bounded ([Condition.wait] is exempt — it
      releases the mutex).
    - [P006] — mixed discipline: a parallel closure reads a mutable
      field without the lock that other parallel accesses of the same
      field hold. *)

type finding = {
  code : string;  (** stable, e.g. "P001" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  message : string;
}

(** [(code, one-line description)] for every diagnostic, in code order. *)
val codes : (string * string) list

(** The mutable values a file creates: [(line, name, kind)] where [kind]
    is the creating construct ([ref], [Hashtbl.create], [Atomic.make],
    [record with mutable field(s)], ...). [Atomic.make] is inventoried
    but its values are exempt from every P-check — atomics are the
    sanctioned cross-domain primitive. *)
val inventory : filename:string -> string -> (int * string * string) list

(** Analyze source text as parsed from [filename] (used verbatim in the
    findings). Parse failures surface as a single [P000] finding. *)
val lint_string : filename:string -> string -> finding list

(** Analyze one [.ml] file. Raises [Sys_error] if unreadable. *)
val lint_file : string -> finding list

(** All [.ml] files under the given files/directories (recursively,
    skipping [_build]/[_opam] and dot-directories), sorted by path. *)
val lint_paths : string list -> finding list

(** One [file:line:col: code message] line per finding. *)
val render : finding list -> string

(** JSON report: finding count plus one object per finding — same shape
    family as {!Lp_audit.to_json}. *)
val to_json : finding list -> string
