(** Static verification of frozen ILP models.

    Every Δcost in the rule sweep is only as trustworthy as the constraint
    generator: a rule knob that silently stops emitting its constraint
    family still "solves" — it just answers the wrong question. This
    module analyses an {!Optrouter_ilp.Lp.t} (and, for formulations, its
    originating rule configuration and routing graph) {e without solving}
    and reports diagnostics with stable codes:

    - [A0xx] structural well-formedness: duplicate or empty row/variable
      names, empty rows, fixed/free columns, integer variables with
      non-integral bounds, trivially infeasible rows;
    - [A1xx] numerical conditioning: per-row coefficient magnitude spread,
      extreme coefficients and right-hand sides;
    - [A2xx] redundancy: duplicate, dominated and conflicting rows;
    - [A3xx] rule coverage: the set of emitted row/variable name families
      must match {e exactly} the constraint classes implied by the active
      {!Optrouter_tech.Rules.t} and formulation options — e.g. disabling
      SADP must remove the [p_]/EOL rows and nothing else, and toggling a
      DSA rule (RULE12+) must add/remove exactly the [dsa_] rows and
      color columns. The expected families are re-derived independently
      from the rules and the graph structure, so a silent drop (or leak)
      in [Formulate] is caught even though [Formulate] itself "works".
      A305 additionally pins the objective vector to the rules'
      {!Optrouter_tech.Rules.objective}: a via objective must change
      exactly the objective coefficients and nothing else.

    The full catalogue with worked examples lives in the README
    ("Diagnostic codes"). *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;  (** stable, e.g. "A001" *)
  severity : severity;
  subject : string;  (** offending row / variable / family name *)
  message : string;
}

val severity_name : severity -> string

(** Diagnostics of the given severity. *)
val by_severity : severity -> diagnostic list -> diagnostic list

val error_count : diagnostic list -> int

(** {1 Audit layers} *)

(** [A0xx] checks on any frozen problem. *)
val structure : Optrouter_ilp.Lp.t -> diagnostic list

(** [A1xx] checks on any frozen problem. *)
val numerics : Optrouter_ilp.Lp.t -> diagnostic list

(** [A2xx] checks on any frozen problem. *)
val redundancy : Optrouter_ilp.Lp.t -> diagnostic list

(** [A3xx] rule-coverage cross-check of a formulation's problem against
    the configuration that allegedly produced it. Exposed at this
    granularity so tests can audit a doctored problem (rebuilt through
    {!Optrouter_ilp.Lp.Builder} with a family suppressed) against the
    honest rules/graph. *)
val coverage :
  rules:Optrouter_tech.Rules.t ->
  options:Optrouter_core.Formulate.options ->
  Optrouter_grid.Graph.t ->
  Optrouter_ilp.Lp.t ->
  diagnostic list

(** Structure, numerics and redundancy on a bare problem. *)
val audit_lp : Optrouter_ilp.Lp.t -> diagnostic list

(** All four layers on a formulation. *)
val audit :
  rules:Optrouter_tech.Rules.t ->
  Optrouter_core.Formulate.t ->
  diagnostic list

(** {1 Rendering} *)

(** One line per diagnostic; empty string when the list is empty. *)
val render : diagnostic list -> string

(** JSON object with severity totals and the diagnostics; [meta] fields
    (e.g. clip and rule names) are prepended. *)
val to_json :
  ?meta:(string * Optrouter_report.Report.Json.t) list ->
  diagnostic list ->
  Optrouter_report.Report.Json.t

(** {1 Router integration} *)

exception Audit_failure of diagnostic list

(** A callback for {!Optrouter_core.Optrouter.config}[.audit]. [strict]
    (default [true]) raises {!Audit_failure} when any [Error] diagnostic
    is found; warnings and infos go through
    {!Optrouter_report.Report.Log} (source ["audit"]) either way. *)
val hook :
  ?strict:bool ->
  unit ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_core.Formulate.t ->
  unit
