open Parsetree

type finding = {
  code : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let codes =
  [
    ("L000", "file does not parse");
    ("L001", "int_of_float / Float.to_int: use Optrouter_geom.Round");
    ("L002", "= / <> against a nonzero float literal");
    ("L003", "catch-all exception handler; bind a name instead");
    ("L004", "mutable state at module toplevel (Atomic.make is allowed)");
    ("L005", "Hashtbl.hash / Random.self_init: nondeterministic across runs");
  ]

let rec longident = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> longident l ^ "." ^ s
  | Longident.Lapply _ -> "<apply>"

let strip_stdlib s =
  match String.index_opt s '.' with
  | Some 6 when String.sub s 0 6 = "Stdlib" ->
    String.sub s 7 (String.length s - 7)
  | _ -> s

let unsafe_conversions = [ "int_of_float"; "Float.to_int" ]

(* Results depend on the runtime (hash seed, word size) or the wall
   clock, so any output derived from them breaks the byte-identity
   contracts the sweeps and the serve cache rely on. *)
let determinism_hazards = [ "Hashtbl.hash"; "Random.self_init" ]

let mutable_creators =
  [
    "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Array.make"; "Array.create_float"; "Array.make_matrix"; "Bytes.create";
    "Bytes.make";
  ]

let lint_structure ~filename str =
  let out = ref [] in
  let add (loc : Location.t) code message =
    let p = loc.Location.loc_start in
    out :=
      {
        code;
        file = filename;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        message;
      }
      :: !out
  in
  let nonzero_float_literal e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_float (s, _)) -> begin
      (* unparseable literals are reported rather than ignored *)
      match float_of_string_opt s with
      | Some v when v = 0.0 -> None
      | Some _ | None -> Some s
    end
    | _ -> None
  in
  let check_expr e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ }
      when List.mem (strip_stdlib (longident txt)) unsafe_conversions ->
      add e.pexp_loc "L001"
        (Printf.sprintf
           "%s truncates unbounded floats (undefined beyond 2^62); use \
            Optrouter_geom.Round.floor/ceil/nearest/trunc"
           (longident txt))
    | Pexp_ident { txt; _ }
      when List.mem (strip_stdlib (longident txt)) determinism_hazards ->
      add e.pexp_loc "L005"
        (Printf.sprintf
           "%s is nondeterministic across runs/architectures and breaks \
            the byte-identity contract; use Optrouter_hash.Stable (or a \
            fixed Random seed)"
           (longident txt))
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
          args ) ->
      List.iter
        (fun (_, a) ->
          match nonzero_float_literal a with
          | Some lit ->
            add a.pexp_loc "L002"
              (Printf.sprintf
                 "(%s) against float literal %s: computed floats rarely hit a \
                  literal exactly; compare with a tolerance"
                 op lit)
          | None -> ())
        args
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_any ->
            add c.pc_lhs.ppat_loc "L003"
              "catch-all handler [with _ ->] swallows every exception \
               (including Out_of_memory); bind a name like [_exn] to make \
               the swallow deliberate and greppable"
          | _ -> ())
        cases
    | Pexp_match (_, cases) ->
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception { ppat_desc = Ppat_any; ppat_loc; _ } ->
            add ppat_loc "L003"
              "catch-all [exception _] case swallows every exception; bind \
               a name like [_exn] to make the swallow deliberate and \
               greppable"
          | _ -> ())
        cases
    | _ -> ()
  in
  let check_structure_item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match vb.pvb_expr.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when List.mem (strip_stdlib (longident txt)) mutable_creators ->
            add vb.pvb_loc "L004"
              (Printf.sprintf
                 "toplevel %s is shared mutable state under domain \
                  parallelism; use Atomic, or allocate inside the function \
                  that uses it"
                 (longident txt))
          | _ -> ())
        vbs
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          check_expr e;
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          check_structure_item si;
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.Ast_iterator.structure it str;
  (* findings were pushed depth-first; present them in source order *)
  List.sort
    (fun a b ->
      match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
    !out

let lint_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | str -> lint_structure ~filename str
  | exception _parse_exn ->
    [ { code = "L000"; file = filename; line = 1; col = 0; message = "file does not parse" } ]

(* [Round] is the sanctioned home of the one raw [int_of_float]. *)
let exempt file (f : finding) =
  f.code = "L001" && Filename.basename file = "round.ml"

let lint_file file =
  let ic = open_in_bin file in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.filter (fun f -> not (exempt file f)) (lint_string ~filename:file src)

(* Build trees ([_build]), opam switches ([_opam]) and dot-directories
   ([.git], editor state) contain generated or vendored .ml files that
   are not ours to lint. Paths given explicitly are always taken. *)
let skip_dir name =
  name = "_build" || name = "_opam"
  || (String.length name > 0 && name.[0] = '.')

let ml_files_under paths =
  let files = ref [] in
  let rec walk ~explicit p =
    if Sys.is_directory p then begin
      if explicit || not (skip_dir (Filename.basename p)) then
        Array.iter
          (fun entry -> walk ~explicit:false (Filename.concat p entry))
          (Sys.readdir p)
    end
    else if Filename.check_suffix p ".ml" then files := p :: !files
  in
  List.iter (walk ~explicit:true) paths;
  List.sort compare !files

let lint_paths paths = List.concat_map lint_file (ml_files_under paths)

let render fs =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.code
           f.message))
    fs;
  Buffer.contents buf
