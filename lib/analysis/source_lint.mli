(** Source lint for the solver stack.

    A small, project-specific complement to the compiler's warnings, built
    on [compiler-libs]: it parses [.ml] files (no typing) and flags the
    handful of idioms that have actually produced bugs in this codebase.
    Stable codes:

    - [L001] — [int_of_float] / [Float.to_int]: truncation of an unbounded
      float is undefined beyond [2^62] and silently drops the sign of
      NaN-free garbage. Use {!Optrouter_geom.Round} ([floor]/[ceil]/
      [nearest]/[trunc]), which clamps and rejects NaN. The one sanctioned
      raw conversion lives in [lib/geom/round.ml] itself, which
      {!lint_file} exempts from [L001].
    - [L002] — [=] or [<>] against a {e nonzero} float literal: equality
      of computed floats is almost always a rounding bug. Comparison
      against literal zero is exempt — dropping exact-zero coefficients
      is a legitimate sparse-matrix idiom, and [Float.equal (-0.) 0.] is
      [false] so "fixing" it would change behaviour.
    - [L003] — catch-all exception handlers ([with _ ->] or an
      [exception _] match case): swallowing [Out_of_memory] or a typo'd
      constructor alike. Bind a name ([with _exn ->]) so the swallow is
      deliberate and greppable.
    - [L004] — mutable state created at module toplevel ([ref],
      [Hashtbl.create], [Buffer.create], [Array.make], ...): shared
      freely across domains by {!Optrouter_exec.Pool}, this is a data
      race waiting to happen. [Atomic.make] is allowed — it is the
      domain-safe primitive the rest should be built on.
    - [L005] — [Hashtbl.hash] or [Random.self_init]: both are
      nondeterministic across runs and architectures (polymorphic-hash
      implementation details, the wall clock), the exact bug class
      [Design.generate] shipped once. Derive seeds and digests from
      [Optrouter_hash.Stable] instead.

    Parse failures surface as code [L000] rather than an exception, so a
    lint run over a tree never dies half way. *)

type finding = {
  code : string;  (** stable, e.g. "L001" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  message : string;
}

(** [(code, one-line description)] for every lint, in code order. *)
val codes : (string * string) list

(** Lint source text as parsed from [filename] (used verbatim in the
    findings; no exemptions applied). *)
val lint_string : filename:string -> string -> finding list

(** Lint one [.ml] file. Applies the [round.ml]/[L001] exemption. Raises
    [Sys_error] if the file cannot be read. *)
val lint_file : string -> finding list

(** All [.ml] files under the given files/directories, recursively,
    sorted by path. Directories named [_build] or [_opam] and
    dot-directories are skipped during traversal (explicitly given
    paths are always entered), so linting a built tree never touches
    generated or vendored code. *)
val ml_files_under : string list -> string list

(** {!ml_files_under}, each file linted with {!lint_file}. *)
val lint_paths : string list -> finding list

(** One [file:line:col: code message] line per finding. *)
val render : finding list -> string
