(* Domain-safety lint (see par_lint.mli for the model and its limits).

   The analysis is a context-sensitive abstract walk of one file's AST:
   values are tracked as mutable roots / atomics / known functions /
   opaque, same-file calls are inlined at the call site (so lock
   protection flows from caller to callee), and every access to a
   mutable root is recorded with the lexically held lock set and the
   parallel-closure id it happens under. A post-pass classifies the
   recorded accesses into P001/P002/P006; P003/P004 are purely
   syntactic and run as separate passes; P005 fires during the walk
   whenever a known-blocking call happens under a held lock. *)

open Parsetree
open Asttypes

module Report = Optrouter_report.Report

type finding = {
  code : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let codes =
  [
    ("P000", "file does not parse");
    ( "P001",
      "parallel closure mutates captured mutable state without a lock while \
       it is also accessed outside the closure" );
    ( "P002",
      "parallel closure mutates captured mutable state with neither Mutex \
       nor Atomic discipline" );
    ( "P003",
      "Atomic.get -> test -> Atomic.set on the same atomic: lost-update \
       window; use Atomic.compare_and_set" );
    ( "P004",
      "Condition.wait outside any while loop or self-recursive let rec \
       body: re-test the predicate after wakeup" );
    ("P005", "blocking call while holding a mutex");
    ( "P006",
      "unguarded parallel read of a field other parallel accesses guard \
       with a lock" );
  ]

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                   *)

let rec longident = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> longident l ^ "." ^ s
  | Longident.Lapply _ -> "<apply>"

let strip_stdlib s =
  match String.index_opt s '.' with
  | Some 6 when String.sub s 0 6 = "Stdlib" ->
    String.sub s 7 (String.length s - 7)
  | _ -> s

(* [name] is exactly [suf], or ends with [.suf]: module aliases keep the
   meaningful tail (Optrouter_exec.Pool.map still ends in "Pool.map"). *)
let has_suffix ~suf name =
  let ln = String.length name and ls = String.length suf in
  (ln = ls && name = suf)
  || ln > ls + 1
     && String.sub name (ln - ls) ls = suf
     && name.[ln - ls - 1] = '.'

let any_suffix names name = List.exists (fun suf -> has_suffix ~suf name) names

let head_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (longident txt))
  | _ -> None

(* Best-effort stable rendering of an access path (lock and atomic
   identity): idents and field chains render naturally, anything else
   degrades to a location-tagged placeholder so two distinct complex
   expressions never alias. *)
let rec render_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> longident txt
  | Pexp_field (b, { txt; _ }) ->
    render_path b ^ "." ^ Longident.last txt
  | Pexp_constraint (inner, _) -> render_path inner
  | _ ->
    let p = e.pexp_loc.Location.loc_start in
    Printf.sprintf "<expr:%d:%d>" p.Lexing.pos_lnum
      (p.Lexing.pos_cnum - p.Lexing.pos_bol)

let path_head path =
  match String.index_opt path '.' with
  | Some i -> String.sub path 0 i
  | None -> path

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (q, { txt; _ }) -> txt :: pat_vars q
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_constraint (q, _) | Ppat_lazy q | Ppat_exception q -> pat_vars q
  | Ppat_open (_, q) -> pat_vars q
  | Ppat_construct (_, Some (_, q)) -> pat_vars q
  | Ppat_variant (_, Some q) -> pat_vars q
  | Ppat_record (fields, _) -> List.concat_map (fun (_, q) -> pat_vars q) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Name tables                                                         *)

let mutable_creators =
  [
    "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Array.make"; "Array.create_float"; "Array.make_matrix"; "Array.init";
    "Array.copy"; "Array.of_list"; "Array.sub"; "Array.append";
    "Bytes.create"; "Bytes.make"; "Bytes.of_string";
  ]

let par_entry_names =
  [ "Domain.spawn"; "Pool.map"; "Pool.map_result"; "Pool.run";
    "Budget.with_width" ]

let blocking_names =
  [
    "Unix.read"; "Unix.write"; "Unix.select"; "Unix.accept"; "Unix.connect";
    "Unix.recv"; "Unix.recvfrom"; "Unix.send"; "Unix.sendto"; "Unix.sleep";
    "Unix.sleepf"; "Unix.waitpid"; "Unix.system"; "Unix.openfile";
    "Domain.join"; "Pool.map"; "Pool.map_result"; "Pool.run";
    "Budget.with_width"; "Thread.delay"; "Thread.join"; "input_line";
    "really_input"; "really_input_string"; "input_char"; "input_byte";
    "input_value"; "open_in"; "open_in_bin"; "open_out"; "open_out_bin";
    "output_string"; "output_bytes"; "output_value"; "flush"; "close_in";
    "close_out"; "read_line";
  ]

(* [(name, index of the mutated/read container among the positional
   args)]. [Array.length]/[Bytes.length] read only the immutable header
   and are deliberately absent. *)
let write_ops =
  [
    ("Hashtbl.replace", 0); ("Hashtbl.add", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0);
    ("Hashtbl.filter_map_inplace", 1);
    ("Queue.push", 1); ("Queue.add", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0);
    ("Stack.push", 1); ("Stack.pop", 0); ("Stack.clear", 0);
    ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_buffer", 0); ("Buffer.clear", 0); ("Buffer.reset", 0);
    ("Buffer.truncate", 0);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Bytes.blit", 2);
  ]

let read_ops =
  [
    ("Hashtbl.find", 0); ("Hashtbl.find_opt", 0); ("Hashtbl.find_all", 0);
    ("Hashtbl.mem", 0); ("Hashtbl.length", 0); ("Hashtbl.iter", 1);
    ("Hashtbl.fold", 1); ("Hashtbl.copy", 0);
    ("Queue.is_empty", 0); ("Queue.length", 0); ("Queue.peek", 0);
    ("Queue.peek_opt", 0); ("Queue.top", 0); ("Queue.iter", 1);
    ("Queue.fold", 2);
    ("Stack.is_empty", 0); ("Stack.length", 0); ("Stack.top", 0);
    ("Buffer.contents", 0); ("Buffer.length", 0); ("Buffer.to_bytes", 0);
    ("Buffer.sub", 0); ("Buffer.nth", 0);
    ("Array.get", 0); ("Array.unsafe_get", 0); ("Array.iter", 1);
    ("Array.iteri", 1); ("Array.map", 1); ("Array.mapi", 1);
    ("Array.to_list", 0); ("Array.fold_left", 2);
    ("Bytes.get", 0); ("Bytes.unsafe_get", 0);
  ]

let op_index name ops =
  List.fold_left
    (fun acc (n, i) -> if has_suffix ~suf:n name then Some i else acc)
    None ops

(* ------------------------------------------------------------------ *)
(* Abstract values and analysis state                                  *)

type root = {
  rid : int;
  mutable rname : string;  (** creator name until a let binds it *)
  rkind : string;
  rline : int;
  rpar : int option;  (** parallel closure the value was allocated in *)
}

type value =
  | Mut of root * string  (** mutable root + field path inside it *)
  | Atom
  | Func of func
  | Opaque

and func = {
  fparams : (arg_label * pattern) list;
  fbodies : expression list;
  fkey : expression;  (** cycle check is physical equality on this *)
  mutable fenv : (string * binding) list;
}

and binding = { bval : value; bscope : int option }


type ctx = { par : int option; stack : expression list; depth : int }

type access = {
  a_pid : int option;
  a_write : bool;
  a_locks : string list;
  a_loc : Location.t;
}

type st = {
  filename : string;
  mutable findings : finding list;
  accesses : (int * string, root * access list ref) Hashtbl.t;
  pseudo : (string, root) Hashtbl.t;
  mfields : (string, unit) Hashtbl.t;
  mutable next_rid : int;
  mutable next_pid : int;
  mutable fuel : int;
}

let max_depth = 50

let add_finding st (loc : Location.t) code message =
  let p = loc.Location.loc_start in
  st.findings <-
    {
      code;
      file = st.filename;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      message;
    }
    :: st.findings

let new_root st ctx ~name ~kind (loc : Location.t) =
  let rid = st.next_rid in
  st.next_rid <- rid + 1;
  {
    rid;
    rname = name;
    rkind = kind;
    rline = loc.Location.loc_start.Lexing.pos_lnum;
    rpar = ctx.par;
  }

let describe root path =
  let target = if path = "" then root.rname else root.rname ^ "." ^ path in
  Printf.sprintf "%s (%s, line %d)" target root.rkind root.rline

let record_access st ctx held root path ~write loc =
  let owned =
    match (root.rpar, ctx.par) with Some a, Some b -> a = b | _ -> false
  in
  if not owned then begin
    let key = (root.rid, path) in
    let accs =
      match Hashtbl.find_opt st.accesses key with
      | Some (_, accs) -> accs
      | None ->
        let accs = ref [] in
        Hashtbl.add st.accesses key (root, accs);
        accs
    in
    accs :=
      { a_pid = ctx.par; a_write = write; a_locks = held; a_loc = loc }
      :: !accs
  end

(* A mutation through an opaque head inside a parallel closure: if the
   head identifier was not bound inside this closure, the target is
   captured shared state the analysis cannot resolve — track it under a
   pseudo-root so the post-pass reports it (P002 by default). *)
let pseudo_write st env ctx held e loc =
  match ctx.par with
  | None -> ()
  | Some _ ->
    let path = render_path e in
    let head = path_head path in
    let captured =
      match List.assoc_opt head env with
      | Some b -> b.bscope <> ctx.par
      | None -> true
    in
    if captured then begin
      let root =
        match Hashtbl.find_opt st.pseudo path with
        | Some r -> r
        | None ->
          let r =
            { (new_root st ctx ~name:path ~kind:"captured value" loc) with
              rpar = None }
          in
          Hashtbl.replace st.pseudo path r;
          r
      in
      record_access st ctx held root "" ~write:true loc
    end

let remove_one x xs =
  let rec go = function
    | [] -> []
    | y :: tl -> if y = x then tl else y :: go tl
  in
  go xs

let bind_var name v scope env = (name, { bval = v; bscope = scope }) :: env

let rec bind_pat env scope p v =
  match p.ppat_desc with
  | Ppat_var { txt; _ } ->
    (match v with
    | Mut (r, "") when r.rname = r.rkind || r.rname.[0] = '<' ->
      r.rname <- txt
    | _ -> ());
    bind_var txt v scope env
  | Ppat_constraint (q, _) -> bind_pat env scope q v
  | Ppat_alias (q, { txt; _ }) -> bind_pat (bind_var txt v scope env) scope q v
  | _ ->
    List.fold_left (fun env n -> bind_var n Opaque scope env) env (pat_vars p)

(* Collapse a [fun]/[function] chain into parameters and bodies. *)
let rec as_func e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
    let rec chain acc b =
      match b.pexp_desc with
      | Pexp_fun (lbl', _, pat', body') -> chain ((lbl', pat') :: acc) body'
      | Pexp_newtype (_, body') -> chain acc body'
      | _ -> (List.rev acc, b)
    in
    let params, fbody = chain [ (lbl, pat) ] body in
    Some { fparams = params; fbodies = [ fbody ]; fkey = e; fenv = [] }
  | Pexp_newtype (_, body) -> as_func body
  | Pexp_function cases ->
    let bodies =
      List.concat_map
        (fun c ->
          match c.pc_guard with
          | Some g -> [ g; c.pc_rhs ]
          | None -> [ c.pc_rhs ])
        cases
    in
    Some
      {
        fparams = [ (Nolabel, Ast_helper.Pat.any ()) ];
        fbodies = bodies;
        fkey = e;
        fenv = [];
      }
  | Pexp_constraint (inner, _) -> as_func inner
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let rec walk st env ctx held e : string list * value =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    let name = longident txt in
    let v =
      match List.assoc_opt name env with Some b -> b.bval | None -> Opaque
    in
    (held, v)
  | Pexp_constant _ -> (held, Opaque)
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> begin
    match as_func e with
    | Some f ->
      f.fenv <- env;
      (held, Func f)
    | None -> (held, Opaque)
  end
  | Pexp_let (rf, vbs, body) ->
    let env', held' = process_bindings st env ctx held rf vbs in
    walk st env' ctx held' body
  | Pexp_apply (head, args) -> walk_apply st env ctx held e head args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let held', sv = walk st env ctx held scrut in
    List.iter
      (fun c ->
        let env' = bind_pat env ctx.par c.pc_lhs sv in
        (match c.pc_guard with
        | Some g -> ignore (walk st env' ctx held' g)
        | None -> ());
        ignore (walk st env' ctx held' c.pc_rhs))
      cases;
    (held', Opaque)
  | Pexp_ifthenelse (c, t, eo) ->
    let held', _ = walk st env ctx held c in
    ignore (walk st env ctx held' t);
    (match eo with
    | Some els -> ignore (walk st env ctx held' els)
    | None -> ());
    (held', Opaque)
  | Pexp_sequence (a, b) ->
    let held', _ = walk st env ctx held a in
    walk st env ctx held' b
  | Pexp_while (c, body) ->
    ignore (walk st env ctx held c);
    ignore (walk st env ctx held body);
    (held, Opaque)
  | Pexp_for (pat, lo, hi, _, body) ->
    ignore (walk st env ctx held lo);
    ignore (walk st env ctx held hi);
    let env' = bind_pat env ctx.par pat Opaque in
    ignore (walk st env' ctx held body);
    (held, Opaque)
  | Pexp_tuple es ->
    List.iter (fun x -> ignore (walk st env ctx held x)) es;
    (held, Opaque)
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    ignore (walk st env ctx held arg);
    (held, Opaque)
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> (held, Opaque)
  | Pexp_array es ->
    List.iter (fun x -> ignore (walk st env ctx held x)) es;
    (held, Mut (new_root st ctx ~name:"<array>" ~kind:"array literal" e.pexp_loc, ""))
  | Pexp_record (fields, base) ->
    (match base with
    | Some b -> ignore (walk st env ctx held b)
    | None -> ());
    List.iter (fun (_, fe) -> ignore (walk st env ctx held fe)) fields;
    let has_mutable =
      List.exists
        (fun (({ txt; _ } : Longident.t loc), _) ->
          Hashtbl.mem st.mfields (Longident.last txt))
        fields
    in
    if has_mutable then
      ( held,
        Mut
          ( new_root st ctx ~name:"<record>"
              ~kind:"record with mutable field(s)" e.pexp_loc,
            "" ) )
    else (held, Opaque)
  | Pexp_field (base, { txt; _ }) ->
    let held', bv = walk st env ctx held base in
    let field = Longident.last txt in
    let v =
      match bv with
      | Mut (root, p) ->
        let path = if p = "" then field else p ^ "." ^ field in
        if Hashtbl.mem st.mfields field then
          record_access st ctx held' root path ~write:false e.pexp_loc;
        Mut (root, path)
      | _ -> Opaque
    in
    (held', v)
  | Pexp_setfield (base, { txt; _ }, rhs) ->
    let held', _ = walk st env ctx held rhs in
    let held'', bv = walk st env ctx held' base in
    let field = Longident.last txt in
    (match bv with
    | Mut (root, p) ->
      let path = if p = "" then field else p ^ "." ^ field in
      record_access st ctx held'' root path ~write:true e.pexp_loc
    | _ -> pseudo_write st env ctx held'' base e.pexp_loc);
    (held'', Opaque)
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
    walk st env ctx held inner
  | Pexp_assert inner | Pexp_lazy inner ->
    ignore (walk st env ctx held inner);
    (held, Opaque)
  | Pexp_open (_, inner) -> walk st env ctx held inner
  | Pexp_letmodule (_, _, inner) | Pexp_letexception (_, inner) ->
    walk st env ctx held inner
  | _ -> (held, Opaque)

(* Evaluate all arguments left to right, threading the lock set. *)
and walk_args st env ctx held args =
  List.fold_left
    (fun (held, acc) (lbl, a) ->
      let held', v = walk st env ctx held a in
      (held', (lbl, v, a) :: acc))
    (held, []) args
  |> fun (held, acc) -> (held, List.rev acc)

and walk_apply st env ctx held e head args =
  let loc = e.pexp_loc in
  match head_name head with
  | Some name when any_suffix [ "Mutex.lock" ] name ->
    let path = match args with (_, m) :: _ -> render_path m | [] -> "?" in
    (path :: held, Opaque)
  | Some name when any_suffix [ "Mutex.unlock" ] name ->
    let path = match args with (_, m) :: _ -> render_path m | [] -> "?" in
    (remove_one path held, Opaque)
  | Some name when any_suffix [ "Mutex.protect" ] name -> begin
    match args with
    | [ (_, m); (_, f) ] ->
      let path = render_path m in
      let _, fv = walk st env ctx held f in
      (match fv with
      | Func fn -> inline_func st ctx (path :: held) fn []
      | _ -> ());
      (held, Opaque)
    | _ -> (held, Opaque)
  end
  | Some name
    when any_suffix [ "Mutex.try_lock"; "Condition.wait"; "Condition.signal";
                      "Condition.broadcast" ] name ->
    (* P004 for Condition.wait runs as a separate syntactic pass; the
       mutex/condition operands are identity paths, not accesses. *)
    (held, Opaque)
  | Some name when any_suffix [ "Atomic.make" ] name ->
    List.iter (fun (_, a) -> ignore (walk st env ctx held a)) args;
    (held, Atom)
  | Some name
    when any_suffix [ "Atomic.get"; "Atomic.set"; "Atomic.exchange";
                      "Atomic.compare_and_set"; "Atomic.fetch_and_add";
                      "Atomic.incr"; "Atomic.decr" ] name ->
    (* first operand is the atomic itself (sanctioned; never an access);
       remaining operands are ordinary expressions *)
    (match args with
    | _ :: rest ->
      List.iter (fun (_, a) -> ignore (walk st env ctx held a)) rest
    | [] -> ());
    (held, Opaque)
  | Some name when blocking_here st name held loc ->
    (* P005 reported inside [blocking_here]; still analyze the call *)
    walk_apply_general st env ctx held e head args
  | Some name -> begin
    if any_suffix par_entry_names name then begin
      let held', argvals = walk_args st env ctx held args in
      List.iter
        (fun (lbl, v, _) ->
          match (lbl, v) with
          | Nolabel, Func f -> par_walk st ctx f
          | _, Func f -> walk_func_opaque st ctx held' f
          | _ -> ())
        argvals;
      (held', Opaque)
    end
    else
      match (List.mem (strip_stdlib name) [ ":="; "incr"; "decr" ],
             strip_stdlib name = "!")
      with
      | true, _ -> begin
        match args with
        | (_, lhs) :: rest ->
          List.iter (fun (_, a) -> ignore (walk st env ctx held a)) rest;
          let held', lv = walk st env ctx held lhs in
          (match lv with
          | Mut (root, p) -> record_access st ctx held' root p ~write:true loc
          | Atom -> ()
          | _ -> pseudo_write st env ctx held' lhs loc);
          (held', Opaque)
        | [] -> (held, Opaque)
      end
      | _, true -> begin
        match args with
        | [ (_, lhs) ] ->
          let held', lv = walk st env ctx held lhs in
          (match lv with
          | Mut (root, p) -> record_access st ctx held' root p ~write:false loc
          | _ -> ());
          (held', Opaque)
        | _ -> (held, Opaque)
      end
      | _ ->
        if List.mem (strip_stdlib name) mutable_creators then begin
          List.iter (fun (_, a) -> ignore (walk st env ctx held a)) args;
          ( held,
            Mut
              ( new_root st ctx ~name:(strip_stdlib name)
                  ~kind:(strip_stdlib name) loc,
                "" ) )
        end
        else begin
          match (op_index name write_ops, op_index name read_ops) with
          | Some idx, _ | None, Some idx ->
            let write = op_index name write_ops <> None in
            let held', argvals = walk_args st env ctx held args in
            let arr = Array.of_list argvals in
            (if idx < Array.length arr then
               let _, v, a = arr.(idx) in
               match v with
               | Mut (root, p) -> record_access st ctx held' root p ~write loc
               | Atom | Func _ -> ()
               | Opaque -> if write then pseudo_write st env ctx held' a loc);
            (* callback arguments to read combinators (iter/fold/map)
               run synchronously: walk them under the current locks *)
            if not write then
              Array.iter
                (fun (_, v, _) ->
                  match v with
                  | Func f -> walk_func_opaque st ctx held' f
                  | _ -> ())
                arr;
            (held', Opaque)
          | None, None -> walk_apply_general st env ctx held e head args
        end
  end
  | None -> walk_apply_general st env ctx held e head args

and walk_apply_general st env ctx held _e head args =
  let held', hv = walk st env ctx held head in
  let held'', argvals = walk_args st env ctx held' args in
  match hv with
  | Func f ->
    let v = apply_func st ctx held'' f (List.map (fun (l, v, _) -> (l, v)) argvals) in
    (held'', v)
  | _ ->
    (* unknown callee: closure arguments are assumed to run
       synchronously under the current locks (List.iter & friends) *)
    List.iter
      (fun (_, v, _) ->
        match v with Func f -> walk_func_opaque st ctx held'' f | _ -> ())
      argvals;
    (held'', Opaque)

and blocking_here st name held (loc : Location.t) =
  if held <> [] && any_suffix blocking_names name then begin
    add_finding st loc "P005"
      (Printf.sprintf
         "blocking call %s while holding %s; lock hold times must stay \
          bounded — move the call outside the critical section"
         name
         (String.concat " and " held));
    true
  end
  else false

(* Apply a known same-file function to evaluated arguments: positional
   arguments fill positional parameters in order, labelled arguments
   their labels. Unfilled parameters make the result a partial
   application (a closure value); otherwise the body is walked in place
   with the caller's lock set — the whole point of the inlining. *)
and apply_func st ctx held f argvals =
  let params = Array.of_list f.fparams in
  let n = Array.length params in
  let bound = Array.make n None in
  let label_of i = fst params.(i) in
  let try_bind pos v =
    match pos with
    | Some i -> bound.(i) <- Some v
    | None -> ()
  in
  List.iter
    (fun (lbl, v) ->
      let pos = ref None in
      (try
         for i = 0 to n - 1 do
           if bound.(i) = None && !pos = None then begin
             match (lbl, label_of i) with
             | Nolabel, Nolabel -> pos := Some i; raise Exit
             | (Labelled l | Optional l), (Labelled l' | Optional l')
               when l = l' ->
               pos := Some i;
               raise Exit
             | _ -> ()
           end
         done
       with Exit -> ());
      try_bind !pos v)
    argvals;
  let missing_positional = ref false in
  Array.iteri
    (fun i b ->
      match (b, label_of i) with
      | None, Nolabel -> missing_positional := true
      | _ -> ())
    bound;
  if !missing_positional then begin
    (* partial application: close over the bound prefix *)
    let rem = ref [] and benv = ref f.fenv in
    Array.iteri
      (fun i b ->
        match b with
        | Some v -> benv := bind_pat !benv ctx.par (snd params.(i)) v
        | None -> rem := params.(i) :: !rem)
      bound;
    Func
      { fparams = List.rev !rem; fbodies = f.fbodies; fkey = f.fkey;
        fenv = !benv }
  end
  else begin
    let bindings =
      Array.to_list (Array.mapi (fun i b -> (snd params.(i), b)) bound)
    in
    inline_func st ctx held f bindings;
    Opaque
  end

and inline_func st ctx held f bindings =
  if st.fuel > 0 && ctx.depth < max_depth
     && not (List.memq f.fkey ctx.stack)
  then begin
    st.fuel <- st.fuel - 1;
    let env =
      List.fold_left
        (fun env (pat, b) ->
          bind_pat env ctx.par pat (Option.value b ~default:Opaque))
        f.fenv bindings
    in
    let ctx' = { ctx with stack = f.fkey :: ctx.stack; depth = ctx.depth + 1 } in
    List.iter (fun b -> ignore (walk st env ctx' held b)) f.fbodies
  end

(* Walk a closure handed to a parallel entry point: a fresh closure id,
   an empty lock set, parameters opaque and owned by the closure. *)
and par_walk st ctx f =
  if st.fuel > 0 && ctx.depth < max_depth
     && not (List.memq f.fkey ctx.stack)
  then begin
    st.fuel <- st.fuel - 1;
    let pid = st.next_pid in
    st.next_pid <- pid + 1;
    let env =
      List.fold_left
        (fun env (_, pat) -> bind_pat env (Some pid) pat Opaque)
        f.fenv f.fparams
    in
    let ctx' =
      { par = Some pid; stack = f.fkey :: ctx.stack; depth = ctx.depth + 1 }
    in
    List.iter (fun b -> ignore (walk st env ctx' [] b)) f.fbodies
  end

(* Walk a closure whose call site is unknown but same-domain (callback
   to an external combinator, labelled argument of a parallel entry):
   current closure id and lock set, opaque parameters. *)
and walk_func_opaque st ctx held f =
  inline_func st ctx held f (List.map (fun (_, p) -> (p, None)) f.fparams)

(* Local and toplevel let-bindings share this path. Bound functions get
   a definition-site walk (so their P-checks run even if no same-file
   call reaches them); at an actual call site they are walked again
   with the caller's locks, and duplicate findings are deduplicated at
   the end. *)
and process_bindings st env ctx held rf vbs =
  match rf with
  | Nonrecursive ->
    let held', env' =
      List.fold_left
        (fun (held, env') vb ->
          let held', v = walk st env ctx held vb.pvb_expr in
          (held', bind_pat env' ctx.par vb.pvb_pat v))
        (held, env) vbs
    in
    def_walk_bound st ctx held' env' vbs;
    (env', held')
  | Recursive ->
    let shells =
      List.map
        (fun vb ->
          match as_func vb.pvb_expr with
          | Some f -> (vb, Some f)
          | None -> (vb, None))
        vbs
    in
    let env' =
      List.fold_left
        (fun env' (vb, sh) ->
          match sh with
          | Some f -> bind_pat env' ctx.par vb.pvb_pat (Func f)
          | None -> bind_pat env' ctx.par vb.pvb_pat Opaque)
        env shells
    in
    List.iter
      (fun (_, sh) -> match sh with Some f -> f.fenv <- env' | None -> ())
      shells;
    List.iter
      (fun (vb, sh) ->
        match sh with
        | Some f -> walk_func_opaque st ctx held f
        | None -> ignore (walk st env' ctx held vb.pvb_expr))
      shells;
    (env', held)

and def_walk_bound st ctx held env vbs =
  List.iter
    (fun vb ->
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> begin
        match List.assoc_opt txt env with
        | Some { bval = Func f; _ } -> walk_func_opaque st ctx held f
        | _ -> ()
      end
      | _ -> ())
    vbs

(* ------------------------------------------------------------------ *)
(* Structure traversal                                                 *)

let rec process_items st env ctx items =
  List.fold_left
    (fun env item ->
      match item.pstr_desc with
      | Pstr_value (rf, vbs) ->
        let env', _ = process_bindings st env ctx [] rf vbs in
        env'
      | Pstr_eval (e, _) ->
        ignore (walk st env ctx [] e);
        env
      | Pstr_module mb -> begin
        match mb.pmb_expr.pmod_desc with
        | Pmod_structure inner ->
          let before = List.length env in
          let env' = process_items st env ctx inner in
          let added = List.length env' - before in
          let rec take k l =
            if k <= 0 then []
            else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
          in
          let news = take added env' in
          begin
            match mb.pmb_name.txt with
            | Some m ->
              List.fold_left
                (fun env (n, b) -> (m ^ "." ^ n, b) :: env)
                env (List.rev news)
            | None -> env
          end
        | _ -> env
      end
      | _ -> env)
    env items

(* ------------------------------------------------------------------ *)
(* Post-pass classification (P001 / P002 / P006)                       *)

let classify st =
  Hashtbl.iter
    (fun (_, path) (root, accs) ->
      let accs = !accs in
      let par_accs = List.filter (fun a -> a.a_pid <> None) accs in
      List.iter
        (fun a ->
          if a.a_write && a.a_locks = [] then begin
            let other = List.exists (fun b -> b.a_pid <> a.a_pid) accs in
            let what = describe root path in
            if other then
              add_finding st a.a_loc "P001"
                (Printf.sprintf
                   "parallel closure mutates %s without a lock while it is \
                    also accessed outside the closure; guard both sides \
                    with one mutex or switch to Atomic"
                   what)
            else
              add_finding st a.a_loc "P002"
                (Printf.sprintf
                   "parallel closure mutates captured %s with neither Mutex \
                    nor Atomic discipline"
                   what)
          end)
        par_accs;
      let locked = List.filter (fun a -> a.a_locks <> []) par_accs in
      let has_par_write = List.exists (fun a -> a.a_write) par_accs in
      if locked <> [] && has_par_write then
        List.iter
          (fun a ->
            if (not a.a_write) && a.a_locks = [] then
              add_finding st a.a_loc "P006"
                (Printf.sprintf
                   "unguarded parallel read of %s while other parallel \
                    accesses hold %s"
                   (describe root path)
                   (String.concat " and " (List.hd locked).a_locks)))
          par_accs)
    st.accesses

(* ------------------------------------------------------------------ *)
(* Syntactic passes: P003 and P004                                     *)

let atomic_ops e =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          (match x.pexp_desc with
          | Pexp_apply (head, (_, arg0) :: _) -> begin
            match head_name head with
            | Some n
              when any_suffix
                     [ "Atomic.get"; "Atomic.set"; "Atomic.compare_and_set";
                       "Atomic.exchange"; "Atomic.fetch_and_add";
                       "Atomic.incr"; "Atomic.decr" ] n ->
              let op =
                match String.rindex_opt n '.' with
                | Some i -> String.sub n (i + 1) (String.length n - i - 1)
                | None -> n
              in
              out := (op, render_path arg0, x.pexp_loc) :: !out
            | _ -> ()
          end
          | _ -> ());
          Ast_iterator.default_iterator.expr it x);
    }
  in
  it.Ast_iterator.expr it e;
  !out

let cas_family = [ "compare_and_set"; "exchange"; "fetch_and_add"; "incr"; "decr" ]

let p003_check st e =
  let report path (loc : Location.t) =
    add_finding st loc "P003"
      (Printf.sprintf
         "Atomic.get -> test -> Atomic.set on %s is a lost-update window \
          under domains; use Atomic.compare_and_set in a retry loop"
         path)
  in
  match e.pexp_desc with
  | Pexp_ifthenelse (c, t, eo) ->
    let gets =
      List.filter_map
        (fun (op, p, _) -> if op = "get" then Some p else None)
        (atomic_ops c)
    in
    let branch_ops =
      atomic_ops t @ (match eo with Some x -> atomic_ops x | None -> [])
    in
    let cas =
      List.filter_map
        (fun (op, p, _) -> if List.mem op cas_family then Some p else None)
        (atomic_ops e)
    in
    List.iter
      (fun (op, p, loc) ->
        if op = "set" && List.mem p gets && not (List.mem p cas) then
          report p loc)
      branch_ops
  | Pexp_let (_, [ vb ], body) -> begin
    match vb.pvb_expr.pexp_desc with
    | Pexp_apply (head, (_, arg0) :: _) -> begin
      match head_name head with
      | Some n when any_suffix [ "Atomic.get" ] n ->
        let p = render_path arg0 in
        let ops = atomic_ops body in
        let exempt =
          List.exists (fun (op, q, _) -> q = p && List.mem op cas_family) ops
        in
        if not exempt then begin
          (* only a [set] sitting inside a conditional branch of the
             body is the read-test-write shape *)
          let in_branch = ref [] in
          let it =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun it x ->
                  (match x.pexp_desc with
                  | Pexp_ifthenelse (_, bt, beo) ->
                    in_branch := atomic_ops bt @ !in_branch;
                    (match beo with
                    | Some be -> in_branch := atomic_ops be @ !in_branch
                    | None -> ())
                  | _ -> ());
                  Ast_iterator.default_iterator.expr it x);
            }
          in
          it.Ast_iterator.expr it body;
          List.iter
            (fun (op, q, loc) -> if op = "set" && q = p then report p loc)
            !in_branch
        end
      | _ -> ()
    end
    | _ -> ()
  end
  | _ -> ()

let p003_pass st str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          p003_check st e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it str

let p004_pass st str =
  let looped = ref false in
  let with_loop v f =
    let saved = !looped in
    looped := v;
    f ();
    looped := saved
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_while (c, body) ->
            it.Ast_iterator.expr it c;
            with_loop true (fun () -> it.Ast_iterator.expr it body)
          | Pexp_for (_, lo, hi, _, body) ->
            it.Ast_iterator.expr it lo;
            it.Ast_iterator.expr it hi;
            with_loop true (fun () -> it.Ast_iterator.expr it body)
          | Pexp_let (Recursive, vbs, body) ->
            with_loop true (fun () ->
                List.iter (fun vb -> it.Ast_iterator.expr it vb.pvb_expr) vbs);
            it.Ast_iterator.expr it body
          | Pexp_apply (head, args) -> begin
            (match head_name head with
            | Some n when any_suffix [ "Condition.wait" ] n && not !looped ->
              add_finding st e.pexp_loc "P004"
                "Condition.wait outside any while loop or self-recursive \
                 let rec body: spurious wakeups and missed signals require \
                 re-testing the predicate around the wait"
            | _ -> ());
            it.Ast_iterator.expr it head;
            List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
          end
          | _ -> Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_value (Recursive, vbs) ->
            with_loop true (fun () ->
                List.iter (fun vb -> it.Ast_iterator.expr it vb.pvb_expr) vbs)
          | _ -> Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.Ast_iterator.structure it str

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let collect_mutable_fields str =
  let tbl = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
            List.iter
              (fun ld ->
                if ld.pld_mutable = Mutable then
                  Hashtbl.replace tbl ld.pld_name.txt ())
              lds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.Ast_iterator.structure it str;
  tbl

let compare_findings a b =
  match compare a.line b.line with
  | 0 -> begin
    match compare a.col b.col with 0 -> compare a.code b.code | c -> c
  end
  | c -> c

let dedupe fs =
  let rec go = function
    | a :: (b :: _ as tl) when a.code = b.code && a.line = b.line && a.col = b.col
      ->
      go tl
    | a :: tl -> a :: go tl
    | [] -> []
  in
  go fs

let lint_structure ~filename str =
  let st =
    {
      filename;
      findings = [];
      accesses = Hashtbl.create 64;
      pseudo = Hashtbl.create 16;
      mfields = collect_mutable_fields str;
      next_rid = 0;
      next_pid = 0;
      fuel = 50_000;
    }
  in
  let ctx0 = { par = None; stack = []; depth = 0 } in
  ignore (process_items st [] ctx0 str);
  classify st;
  p003_pass st str;
  p004_pass st str;
  dedupe (List.sort compare_findings st.findings)

let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  Parse.implementation lexbuf

let lint_string ~filename src =
  match parse_string ~filename src with
  | str -> lint_structure ~filename str
  | exception _parse_exn ->
    [
      {
        code = "P000";
        file = filename;
        line = 1;
        col = 0;
        message = "file does not parse";
      };
    ]

let inventory ~filename src =
  match parse_string ~filename src with
  | exception _parse_exn -> []
  | str ->
    let mfields = collect_mutable_fields str in
    let out = ref [] in
    let kind_of e =
      match e.pexp_desc with
      | Pexp_apply (head, _) -> begin
        match head_name head with
        | Some n when List.mem (strip_stdlib n) ("Atomic.make" :: mutable_creators)
          ->
          Some (strip_stdlib n)
        | _ -> None
      end
      | Pexp_array _ -> Some "array literal"
      | Pexp_record (fields, _)
        when List.exists
               (fun (({ txt; _ } : Longident.t loc), _) ->
                 Hashtbl.mem mfields (Longident.last txt))
               fields ->
        Some "record with mutable field(s)"
      | _ -> None
    in
    let note vb =
      match kind_of vb.pvb_expr with
      | Some kind ->
        let name =
          match pat_vars vb.pvb_pat with n :: _ -> n | [] -> "_"
        in
        let line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum in
        out := (line, name, kind) :: !out
      | None -> ()
    in
    let it =
      {
        Ast_iterator.default_iterator with
        value_binding =
          (fun it vb ->
            note vb;
            Ast_iterator.default_iterator.value_binding it vb);
      }
    in
    it.Ast_iterator.structure it str;
    List.sort compare !out

let lint_file file =
  let ic = open_in_bin file in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string ~filename:file src

let lint_paths paths =
  List.concat_map lint_file (Source_lint.ml_files_under paths)

let render fs =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.code
           f.message))
    fs;
  Buffer.contents buf

let to_json fs =
  Report.Json.to_string
    (Report.Json.Obj
       [
         ("findings", Report.Json.Int (List.length fs));
         ( "diagnostics",
           Report.Json.List
             (List.map
                (fun f ->
                  Report.Json.Obj
                    [
                      ("code", Report.Json.String f.code);
                      ("file", Report.Json.String f.file);
                      ("line", Report.Json.Int f.line);
                      ("col", Report.Json.Int f.col);
                      ("message", Report.Json.String f.message);
                    ])
                fs) );
       ])
