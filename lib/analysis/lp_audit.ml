module Lp = Optrouter_ilp.Lp
module Graph = Optrouter_grid.Graph
module Clip = Optrouter_grid.Clip
module Layer = Optrouter_tech.Layer
module Rules = Optrouter_tech.Rules
module Formulate = Optrouter_core.Formulate
module Report = Optrouter_report.Report

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let by_severity s ds = List.filter (fun d -> d.severity = s) ds
let error_count ds = List.length (by_severity Error ds)

let diag code severity subject fmt =
  Printf.ksprintf (fun message -> { code; severity; subject; message }) fmt

(* ------------------------------------------------------------------ *)
(* A0xx: structural well-formedness                                    *)
(* ------------------------------------------------------------------ *)

let tol = 1e-9

let is_integral_value f = Float.is_finite f && Float.equal (Float.round f) f

(* Minimum/maximum possible activity of a row under the variable bounds.
   Infinite bounds propagate through IEEE arithmetic (coefficients are
   nonzero by the Builder invariant, so no 0 * inf NaNs can appear). *)
let activity_range (lp : Lp.t) (row : Lp.row) =
  Array.fold_left
    (fun (lo, hi) (j, a) ->
      let v = lp.Lp.vars.(j) in
      if a > 0.0 then (lo +. (a *. v.Lp.lower), hi +. (a *. v.Lp.upper))
      else (lo +. (a *. v.Lp.upper), hi +. (a *. v.Lp.lower)))
    (0.0, 0.0) row.Lp.coeffs

let duplicate_names ~code ~what names =
  let seen = Hashtbl.create (Array.length names) in
  let out = ref [] in
  Array.iter
    (fun name ->
      match Hashtbl.find_opt seen name with
      | Some `Fresh ->
        Hashtbl.replace seen name `Reported;
        out := diag code Error name "duplicate %s name" what :: !out
      | Some `Reported -> ()
      | None -> Hashtbl.add seen name `Fresh)
    names;
  List.rev !out

let structure (lp : Lp.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  List.iter add
    (duplicate_names ~code:"A001" ~what:"row"
       (Array.map (fun (r : Lp.row) -> r.Lp.r_name) lp.Lp.rows));
  List.iter add
    (duplicate_names ~code:"A003" ~what:"variable"
       (Array.map (fun (v : Lp.var) -> v.Lp.v_name) lp.Lp.vars));
  Array.iter
    (fun (r : Lp.row) ->
      if r.Lp.r_name = "" then add (diag "A002" Error "<row>" "empty row name"))
    lp.Lp.rows;
  Array.iter
    (fun (v : Lp.var) ->
      let name = v.Lp.v_name in
      if name = "" then add (diag "A004" Error "<var>" "empty variable name");
      if Float.is_nan v.Lp.lower || Float.is_nan v.Lp.upper
         || not (Float.is_finite v.Lp.obj)
      then
        add
          (diag "A009" Error name
             "non-finite variable data (bounds %g..%g, obj %g)" v.Lp.lower
             v.Lp.upper v.Lp.obj)
      else if v.Lp.lower > v.Lp.upper then
        add
          (diag "A008" Error name "contradictory bounds: lower %g > upper %g"
             v.Lp.lower v.Lp.upper)
      else begin
        if
          v.Lp.kind = Lp.Integer
          && ((Float.is_finite v.Lp.lower && not (is_integral_value v.Lp.lower))
             || (Float.is_finite v.Lp.upper && not (is_integral_value v.Lp.upper))
             )
        then
          add
            (diag "A006" Warning name
               "integer variable with non-integral bounds %g..%g" v.Lp.lower
               v.Lp.upper);
        if Float.equal v.Lp.lower v.Lp.upper then
          add (diag "A010" Info name "fixed variable (both bounds %g)" v.Lp.lower)
        else if v.Lp.lower = neg_infinity && v.Lp.upper = infinity then
          add (diag "A011" Warning name "free variable (no finite bound)")
      end)
    lp.Lp.vars;
  Array.iter
    (fun (r : Lp.row) ->
      let name = r.Lp.r_name in
      let bad_coeff =
        Array.exists (fun (_, a) -> not (Float.is_finite a)) r.Lp.coeffs
      in
      if bad_coeff || not (Float.is_finite r.Lp.rhs) then
        add (diag "A009" Error name "non-finite coefficient or right-hand side")
      else if Array.length r.Lp.coeffs = 0 then begin
        let sat =
          match r.Lp.sense with
          | Lp.Le -> 0.0 <= r.Lp.rhs +. tol
          | Lp.Ge -> 0.0 >= r.Lp.rhs -. tol
          | Lp.Eq -> Float.abs r.Lp.rhs <= tol
        in
        if sat then
          add
            (diag "A005" Warning name
               "empty row (all coefficients cancelled); vacuously true")
        else
          add
            (diag "A007" Error name
               "empty row is unsatisfiable: 0 %s %g never holds"
               (Format.asprintf "%a" Lp.pp_sense r.Lp.sense)
               r.Lp.rhs)
      end
      else begin
        let lo, hi = activity_range lp r in
        let infeasible =
          match r.Lp.sense with
          | Lp.Le -> lo > r.Lp.rhs +. tol
          | Lp.Ge -> hi < r.Lp.rhs -. tol
          | Lp.Eq -> lo > r.Lp.rhs +. tol || hi < r.Lp.rhs -. tol
        in
        if infeasible then
          add
            (diag "A007" Error name
               "trivially infeasible: activity range [%g, %g] cannot meet %s %g"
               lo hi
               (Format.asprintf "%a" Lp.pp_sense r.Lp.sense)
               r.Lp.rhs)
      end)
    lp.Lp.rows;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* A1xx: numerical conditioning                                        *)
(* ------------------------------------------------------------------ *)

let spread_limit = 1e8
let magnitude_hi = 1e10
let magnitude_lo = 1e-10
let rhs_limit = 1e10

let numerics (lp : Lp.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  Array.iter
    (fun (r : Lp.row) ->
      let name = r.Lp.r_name in
      if Array.length r.Lp.coeffs > 0 then begin
        let amin = ref infinity and amax = ref 0.0 in
        Array.iter
          (fun (_, a) ->
            let m = Float.abs a in
            if Float.is_finite m then begin
              if m < !amin then amin := m;
              if m > !amax then amax := m
            end)
          r.Lp.coeffs;
        if !amax > 0.0 && !amax /. !amin > spread_limit then
          add
            (diag "A101" Warning name
               "coefficient magnitudes span %.1e .. %.1e (ratio %.1e)" !amin
               !amax (!amax /. !amin));
        if !amax > magnitude_hi then
          add (diag "A103" Warning name "huge coefficient magnitude %.1e" !amax);
        if !amin < magnitude_lo then
          add
            (diag "A103" Warning name "tiny nonzero coefficient magnitude %.1e"
               !amin)
      end;
      if Float.is_finite r.Lp.rhs && Float.abs r.Lp.rhs > rhs_limit then
        add (diag "A102" Warning name "huge right-hand side %.1e" r.Lp.rhs))
    lp.Lp.rows;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* A2xx: redundancy                                                    *)
(* ------------------------------------------------------------------ *)

(* Rows are compared by exact (sense, sparse pattern) identity. Builder
   rows keep indices sorted and zeros dropped, so a serialized key is a
   faithful fingerprint. *)
let row_key (r : Lp.row) =
  let buf = Buffer.create (16 * Array.length r.Lp.coeffs) in
  Buffer.add_string buf
    (match r.Lp.sense with Lp.Le -> "L" | Lp.Ge -> "G" | Lp.Eq -> "E");
  Array.iter
    (fun (j, a) -> Buffer.add_string buf (Printf.sprintf "|%d:%h" j a))
    r.Lp.coeffs;
  Buffer.contents buf

let redundancy (lp : Lp.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let seen : (string, Lp.row) Hashtbl.t = Hashtbl.create (Lp.nrows lp) in
  Array.iter
    (fun (r : Lp.row) ->
      if Array.length r.Lp.coeffs > 0 then begin
        let key = row_key r in
        match Hashtbl.find_opt seen key with
        | None -> Hashtbl.add seen key r
        | Some first ->
          if Float.equal first.Lp.rhs r.Lp.rhs then
            add
              (diag "A201" Warning r.Lp.r_name
                 "duplicate of row %s (same coefficients, sense and rhs)"
                 first.Lp.r_name)
          else begin
            match r.Lp.sense with
            | Lp.Eq ->
              add
                (diag "A203" Error r.Lp.r_name
                   "conflicts with row %s: equal coefficients but rhs %g vs %g"
                   first.Lp.r_name r.Lp.rhs first.Lp.rhs)
            | Lp.Le | Lp.Ge ->
              let weaker, stronger =
                let r_weaker =
                  match r.Lp.sense with
                  | Lp.Le -> r.Lp.rhs > first.Lp.rhs
                  | _ -> r.Lp.rhs < first.Lp.rhs
                in
                if r_weaker then (r, first) else (first, r)
              in
              add
                (diag "A202" Info weaker.Lp.r_name
                   "dominated by row %s (same coefficients, stronger rhs %g)"
                   stronger.Lp.r_name stronger.Lp.rhs);
              (* keep the stronger row as the representative *)
              Hashtbl.replace seen key stronger
          end
      end)
    lp.Lp.rows;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* A3xx: rule coverage                                                 *)
(* ------------------------------------------------------------------ *)

(* The name families the formulation may emit. A row or column whose name
   prefix (up to the first '_') is not listed here fails A303 — a new
   constraint family must be registered together with its expectation
   logic, which is the point. *)
let row_families =
  [
    "lk2"; "lk3"; "cap"; "flow"; "vx"; "vcap"; "viadj"; "v12adj"; "vslo";
    "vsup"; "vsblk"; "qa"; "qb"; "qc"; "qp"; "pl"; "pub"; "sadp"; "dsa";
  ]

let var_families = [ "e"; "f"; "u"; "p"; "q"; "c" ]

let family_of name =
  match String.index_opt name '_' with
  | Some i when i > 0 -> String.sub name 0 i
  | Some _ | None -> name

type expectation = Required | Forbidden

(* Re-derive, from the rule configuration and the raw graph structure
   only, which families the model must (and must not) contain. This
   deliberately re-walks the graph instead of asking Formulate: the whole
   point is to catch Formulate silently dropping (or leaking) a family. *)
let expected_families ~(rules : Rules.t) ~(options : Formulate.options)
    (g : Graph.t) =
  let cols = g.clip.Clip.cols
  and rows = g.clip.Clip.rows
  and nz = g.clip.Clip.layers in
  let ngrid = cols * rows * nz in
  let nnets = Array.length g.nets in
  let allowed k gid =
    match g.edges.(gid).Graph.net_only with None -> true | Some k' -> k = k'
  in
  let edge_allowed_by_any gid =
    let ok = ref false in
    for k = 0 to nnets - 1 do
      if allowed k gid then ok := true
    done;
    !ok
  in
  let has_arc =
    let found = ref false in
    Array.iteri (fun gid _ -> if edge_allowed_by_any gid then found := true) g.edges;
    !found
  in
  (* nets with at least one allowed edge incident to a given grid vertex *)
  let nets_at v =
    let ks = ref [] in
    for k = 0 to nnets - 1 do
      if Array.exists (fun (gid, _) -> allowed k gid) g.adj.(v) then
        ks := k :: !ks
    done;
    !ks
  in
  let vx_gate = options.Formulate.vertex_exclusivity && nnets > 1 in
  let vx_witness = ref false and vcap_witness = ref false in
  if vx_gate then
    for v = 0 to ngrid - 1 do
      if not g.blocked.(v) then begin
        match nets_at v with
        | [] -> ()
        | [ _ ] -> vx_witness := true
        | _ :: _ :: _ ->
          vx_witness := true;
          vcap_witness := true
      end
    done;
  (* via adjacency: derive the canonical neighbour offsets from the rule
     alone (forward offsets; the reverse pairs are the same rows) *)
  let offsets =
    match rules.Rules.via_restriction with
    | Rules.No_blocking -> []
    | Rules.Orthogonal -> [ (1, 0); (0, 1) ]
    | Rules.Orthogonal_diagonal -> [ (1, 0); (0, 1); (1, 1); (1, -1) ]
  in
  let viadj_witness = ref false in
  if offsets <> [] then
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          if g.via_site.(((z * rows) + y) * cols + x) <> None then
            List.iter
              (fun (dx, dy) ->
                let x' = x + dx and y' = y + dy in
                if
                  x' >= 0 && x' < cols && y' >= 0 && y' < rows
                  && g.via_site.(((z * rows) + y') * cols + x') <> None
                then viadj_witness := true)
              offsets
        done
      done
    done;
  let v12_witness = ref false in
  if offsets <> [] && nnets > 0 then begin
    let occupied x y = g.access_sites.((y * cols) + x) <> [] in
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        if occupied x y then
          List.iter
            (fun (dx, dy) ->
              let x' = x + dx and y' = y + dy in
              if x' >= 0 && x' < cols && y' >= 0 && y' < rows && occupied x' y'
              then v12_witness := true)
            offsets
      done
    done
  end;
  (* via shapes *)
  let nreps = Array.length g.via_reps in
  let vshape_witness = nreps > 0 && nnets > 0 in
  let vsblk_witness = ref false in
  Array.iter
    (fun (rep : Graph.via_rep) ->
      let rep_edges =
        Array.to_list rep.Graph.lower_edges @ Array.to_list rep.Graph.upper_edges
      in
      let members =
        Array.to_list rep.Graph.lower_members
        @ Array.to_list rep.Graph.upper_members
      in
      for k = 0 to nnets - 1 do
        List.iter
          (fun mv ->
            Array.iter
              (fun (gid2, _) ->
                if not (List.mem gid2 rep_edges) then
                  for k' = 0 to nnets - 1 do
                    if k' <> k && allowed k' gid2 then vsblk_witness := true
                  done)
              g.adj.(mv))
          members
      done)
    g.via_reps;
  (* SADP end-of-line: eligibility of a (net, vertex, side) indicator *)
  let sadp_layer z = g.layers.(z).Layer.patterning = Layer.Sadp in
  let wire_low = Array.make (max 1 ngrid) (-1)
  and wire_high = Array.make (max 1 ngrid) (-1) in
  Array.iteri
    (fun gid (ed : Graph.edge) ->
      match ed.Graph.kind with
      | Graph.Wire _ ->
        if ed.Graph.u < ngrid then wire_high.(ed.Graph.u) <- gid;
        if ed.Graph.v < ngrid then wire_low.(ed.Graph.v) <- gid
      | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
        -> ())
    g.edges;
  let vialike_allowed v k =
    Array.exists
      (fun (gid, _) ->
        (match g.edges.(gid).Graph.kind with
        | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
          -> true
        | Graph.Wire _ -> false)
        && allowed k gid)
      g.adj.(v)
  in
  (* side 0 = from the low-coordinate neighbour, 1 = from the high one *)
  let p_eligible k v side =
    let wire = if side = 0 then wire_low.(v) else wire_high.(v) in
    wire >= 0 && allowed k wire && vialike_allowed v k
  in
  let p_side_hot v side =
    let hot = ref false in
    for k = 0 to nnets - 1 do
      if p_eligible k v side then hot := true
    done;
    !hot
  in
  let p_witness = ref false in
  for z = 0 to nz - 1 do
    if sadp_layer z then
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          let v = ((z * rows) + y) * cols + x in
          if not g.blocked.(v) then
            if p_side_hot v 0 || p_side_hot v 1 then p_witness := true
        done
      done
  done;
  (* forbidden tip configurations: any conflict pair with live indicators
     on both sides yields a packing row *)
  let sadp_witness = ref false in
  for z = 0 to nz - 1 do
    if sadp_layer z then begin
      let horizontal = g.layers.(z).Layer.dir = Layer.Horizontal in
      let vat a c =
        let x, y = if horizontal then (a, c) else (c, a) in
        if x < 0 || x >= cols || y < 0 || y >= rows then None
        else Some (((z * rows) + y) * cols + x)
      in
      let amax = (if horizontal then cols else rows) - 1 in
      let cmax = (if horizontal then rows else cols) - 1 in
      for a = 0 to amax do
        for c = 0 to cmax do
          match vat a c with
          | None -> ()
          | Some v ->
            let pair side offs other_side =
              if (not g.blocked.(v)) && p_side_hot v side then
                List.iter
                  (fun (da, dc) ->
                    match vat (a + da) (c + dc) with
                    | Some j when (not g.blocked.(j)) && p_side_hot j other_side
                      ->
                      sadp_witness := true
                    | Some _ | None -> ())
                  offs
            in
            pair 1 [ (-1, 0); (-1, -1); (-1, 1); (0, -1); (0, 1) ] 0;
            pair 1 [ (-1, 0); (-1, -1); (-1, 1); (1, -1); (1, 1) ] 1;
            pair 0 [ (1, 0); (1, -1); (1, 1); (-1, -1); (-1, 1) ] 0
        done
      done
    end
  done;
  (* DSA via coloring (RULE12+): the color family is required exactly
     when the rule is on and some unordered pair of single-via sites on
     one cut layer sits within the DSA pitch (Chebyshev) — re-derived
     from the raw via-site lattice, never from Formulate's own pair
     list. *)
  let dsa_witness = ref false in
  if rules.Rules.dsa then begin
    let pitch = g.dsa_pitch in
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          if g.via_site.(((z * rows) + y) * cols + x) <> None then
            for dy = 0 to pitch do
              for dx = -pitch to pitch do
                if dy > 0 || dx > 0 then begin
                  let x' = x + dx and y' = y + dy in
                  if
                    x' >= 0 && x' < cols && y' >= 0 && y' < rows
                    && g.via_site.(((z * rows) + y') * cols + x') <> None
                  then dsa_witness := true
                end
              done
            done
        done
      done
    done
  end;
  let expect witness = if witness then Required else Forbidden in
  let aux = options.Formulate.sadp_aux_vars in
  let sadp_on = !p_witness in
  [
    ("e", expect has_arc);
    ("f", expect has_arc);
    ("lk2", expect has_arc);
    ("lk3", expect has_arc);
    ("cap", expect has_arc);
    ("flow", expect has_arc);
    ("u", expect !vx_witness);
    ("vx", expect !vx_witness);
    ("vcap", expect !vcap_witness);
    ("viadj", expect !viadj_witness);
    ("v12adj", expect !v12_witness);
    ("vslo", expect vshape_witness);
    ("vsup", expect vshape_witness);
    ("vsblk", expect !vsblk_witness);
    ("p", expect sadp_on);
    ("q", expect (sadp_on && aux));
    ("qa", expect (sadp_on && aux));
    ("qb", expect (sadp_on && aux));
    ("qc", expect (sadp_on && aux));
    ("qp", expect (sadp_on && aux));
    ("pub", expect (sadp_on && aux));
    ("pl", expect (sadp_on && not aux));
    ("sadp", expect !sadp_witness);
    ("c", expect !dsa_witness);
    ("dsa", expect !dsa_witness);
  ]

let coverage ~(rules : Rules.t) ~options (g : Graph.t) (lp : Lp.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  (* the graph's layer patterning must itself agree with the rules *)
  Array.iter
    (fun (l : Layer.t) ->
      let expected = Rules.patterning_of rules ~metal:l.Layer.metal in
      if l.Layer.patterning <> expected then
        add
          (diag "A304" Error (Printf.sprintf "M%d" l.Layer.metal)
             "graph layer patterning %s contradicts %s (expects %s)"
             (Format.asprintf "%a" Layer.pp_patterning l.Layer.patterning)
             rules.Rules.name
             (Format.asprintf "%a" Layer.pp_patterning expected)))
    g.layers;
  (* A305: the objective vector must be exactly the rules' objective —
     each e-binary carries [Rules.objective_coeff] of its edge, every
     other column zero. Switching to a via objective must change the
     objective and nothing else; a weight leaking into auxiliary columns
     (or a stale wirelength coefficient surviving the switch) is caught
     here, independent of how Formulate computed it. *)
  Array.iter
    (fun (v : Lp.var) ->
      let name = v.Lp.v_name in
      (* e-binaries are named [e_n<k>_g<gid>_d<dir>]. Not Scanf: its %d
         accepts '_' as a digit separator and eats the field breaks. *)
      let parsed =
        match String.split_on_char '_' name with
        | [ "e"; _; gtok; _ ] when String.length gtok > 1 && gtok.[0] = 'g' ->
          int_of_string_opt (String.sub gtok 1 (String.length gtok - 1))
        | _ -> None
      in
      let expected =
        match parsed with
        | Some gid when gid >= 0 && gid < Array.length g.edges ->
          let ed = g.edges.(gid) in
          let via =
            match ed.Graph.kind with
            | Graph.Via _ | Graph.Shape_lower _ -> true
            | Graph.Wire _ | Graph.Shape_upper _ | Graph.Access -> false
          in
          Rules.objective_coeff rules.Rules.objective ~via ~cost:ed.Graph.cost
        | Some _ | None -> 0.0
      in
      if not (Float.equal v.Lp.obj expected) then
        add
          (diag "A305" Error name
             "objective coefficient %g contradicts the %s objective \
              (expects %g)"
             v.Lp.obj
             (Rules.objective_name rules.Rules.objective)
             expected))
    lp.Lp.vars;
  let present = Hashtbl.create 32 in
  let note_presence ~what known name =
    let fam = family_of name in
    if List.mem fam known then begin
      if not (Hashtbl.mem present fam) then Hashtbl.add present fam ()
    end
    else
      add
        (diag "A303" Error name "unrecognized %s name family %S" what fam)
  in
  Array.iter
    (fun (r : Lp.row) -> note_presence ~what:"row" row_families r.Lp.r_name)
    lp.Lp.rows;
  Array.iter
    (fun (v : Lp.var) ->
      note_presence ~what:"variable" var_families v.Lp.v_name)
    lp.Lp.vars;
  let is_var f = List.mem f var_families in
  List.iter
    (fun (fam, expectation) ->
      let what = if is_var fam then "variable" else "constraint" in
      match (expectation, Hashtbl.mem present fam) with
      | Required, false ->
        add
          (diag "A301" Error fam
             "%s family %S required by %s is missing from the model" what fam
             rules.Rules.name)
      | Forbidden, true ->
        add
          (diag "A302" Error fam
             "%s family %S is present but not implied by %s with these options"
             what fam rules.Rules.name)
      | Required, true | Forbidden, false -> ())
    (expected_families ~rules ~options g);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let audit_lp lp = structure lp @ numerics lp @ redundancy lp

let audit ~rules form =
  let lp = Formulate.lp form in
  audit_lp lp
  @ coverage ~rules ~options:(Formulate.options form) (Formulate.graph form) lp

let render ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-7s %s: %s\n" d.code (severity_name d.severity)
           d.subject d.message))
    ds;
  Buffer.contents buf

let to_json ?(meta = []) ds =
  let count s = List.length (by_severity s ds) in
  Report.Json.Obj
    (meta
    @ [
        ("errors", Report.Json.Int (count Error));
        ("warnings", Report.Json.Int (count Warning));
        ("infos", Report.Json.Int (count Info));
        ( "diagnostics",
          Report.Json.List
            (List.map
               (fun d ->
                 Report.Json.Obj
                   [
                     ("code", Report.Json.String d.code);
                     ("severity", Report.Json.String (severity_name d.severity));
                     ("subject", Report.Json.String d.subject);
                     ("message", Report.Json.String d.message);
                   ])
               ds) );
      ])

exception Audit_failure of diagnostic list

let () =
  Printexc.register_printer (function
    | Audit_failure ds ->
      Some
        (Printf.sprintf "Lp_audit.Audit_failure with %d error(s):\n%s"
           (error_count ds) (render (by_severity Error ds)))
    | _ -> None)

let hook ?(strict = true) () ~rules form =
  let ds = audit ~rules form in
  List.iter
    (fun d ->
      let level =
        match d.severity with
        | Error -> Report.Log.Error
        | Warning -> Report.Log.Warn
        | Info -> Report.Log.Info
      in
      Report.Log.event level ~src:"audit" (fun () ->
          Printf.sprintf "%s %s: %s" d.code d.subject d.message))
    ds;
  if strict && error_count ds > 0 then raise (Audit_failure ds)
