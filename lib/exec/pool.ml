let src = Logs.Src.create "optrouter.exec" ~doc:"domain pool"

module Log = (val Logs.src_log src : Logs.LOG)

(* The pool is two queues guarded by one mutex each: [queue] carries
   pending jobs to the workers, and each [map_result] call carries its own
   completion queue back to the collector. Jobs are plain closures that
   know their batch, so a single generation of workers serves any number
   of map calls. *)

type t = {
  n_domains : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = max 1 t.n_domains

let worker t () =
  let rec next () =
    if t.stop then None
    else
      match Queue.take_opt t.queue with
      | Some job -> Some job
      | None ->
        Condition.wait t.work t.mutex;
        next ()
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      (* Jobs capture their own exceptions; a raise here is a pool bug. *)
      job ();
      loop ()
  in
  loop ()

(* Deliberately NOT clamped to [Domain.recommended_domain_count]: on a
   small host that would silently disable the parallel path (and its
   tests), whereas oversubscribed domains merely time-slice. The cap only
   guards against absurd requests. *)
let max_domains = 128

let create ~domains =
  let requested = max 0 domains in
  let n = if requested < 2 then requested else min requested max_domains in
  let t =
    {
      n_domains = n;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if n >= 2 then begin
    t.workers <- List.init n (fun _ -> Domain.spawn (worker t));
    Log.debug (fun m -> m "pool: %d worker domains" n)
  end;
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_task f x = try Ok (f x) with e -> Error e

let map_serial ?on_done f tasks =
  Array.to_list
    (Array.mapi
       (fun i x ->
         let r = run_task f x in
         (match on_done with Some g -> g i r | None -> ());
         r)
       tasks)

let map_parallel ?on_done t f tasks =
  let n = Array.length tasks in
  let slots = Array.make n None in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let completed = Queue.create () in
  let job i x () =
    let r = run_task f x in
    Mutex.lock done_mutex;
    slots.(i) <- Some r;
    Queue.push i completed;
    Condition.signal done_cond;
    Mutex.unlock done_mutex
  in
  Mutex.lock t.mutex;
  Array.iteri (fun i x -> Queue.push (job i x) t.queue) tasks;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  (* Collect in the calling domain so [on_done] needs no locking on the
     caller's side. Completion order is whatever the workers produce;
     the returned list is always in task order via [slots]. *)
  let processed = ref 0 in
  while !processed < n do
    Mutex.lock done_mutex;
    while Queue.is_empty completed do
      Condition.wait done_cond done_mutex
    done;
    let batch = List.of_seq (Queue.to_seq completed) in
    Queue.clear completed;
    Mutex.unlock done_mutex;
    List.iter
      (fun i ->
        incr processed;
        match on_done with Some g -> g i (Option.get slots.(i)) | None -> ())
      batch
  done;
  Array.to_list (Array.map Option.get slots)

let map_result ?on_done t f xs =
  let tasks = Array.of_list xs in
  if Array.length tasks = 0 then []
  else if t.workers = [] then map_serial ?on_done f tasks
  else map_parallel ?on_done t f tasks

let map ?on_done t f xs =
  List.map
    (function Ok v -> v | Error e -> raise e)
    (map_result ?on_done t f xs)

let env_int_jobs name =
  match Sys.getenv_opt name with
  | None -> 1
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | Some n ->
      Log.warn (fun m ->
          m "%s=%d is not a positive job count; running serially" name n);
      1
    | None ->
      Log.warn (fun m -> m "%s=%S is not an integer; running serially" name v);
      1)

let env_jobs () = env_int_jobs "OPTROUTER_JOBS"
let env_solver_jobs () = env_int_jobs "OPTROUTER_SOLVER_JOBS"

module Budget = struct
  (* A lock-free counter of spare domain slots. Tasks running on pool
     workers implicitly own their domain; what the budget tracks is the
     *extra* width a task may claim for its inner solver. [acquire] is
     all-or-part-or-nothing on what is available — it never blocks and
     never over-grants, so the sum of outstanding grants can never exceed
     [slots]. *)
  type b = { slots : int Atomic.t; total : int }

  let create ~slots =
    let slots = max 0 slots in
    { slots = Atomic.make slots; total = slots }

  let total b = b.total
  let available b = Atomic.get b.slots

  let rec acquire b want =
    if want <= 0 then 0
    else
      let cur = Atomic.get b.slots in
      if cur <= 0 then 0
      else
        let take = min cur want in
        if Atomic.compare_and_set b.slots cur (cur - take) then take
        else acquire b want

  let release b k =
    if k > 0 then ignore (Atomic.fetch_and_add b.slots k)

  (* The two-level scheduling idiom shared by the sweep engine and the
     serve daemon: claim one base slot for the task's own worker, widen
     by up to [want - 1] extra slots only if the base slot was granted
     (a task that could not even claim its own slot must not fan out),
     and release everything when [f] returns or raises. [f] receives the
     granted width (>= 1): the task always runs, at worst single-wide. *)
  let with_width b ~want f =
    let base = acquire b 1 in
    let extra = if base = 1 && want > 1 then acquire b (want - 1) else 0 in
    Fun.protect
      ~finally:(fun () -> release b (base + extra))
      (fun () -> f (1 + extra))
end
