(** A reusable pool of worker domains for embarrassingly parallel sweeps.

    The evaluation workload — one independent ILP solve per (clip, rule)
    pair — fans out over a fixed set of worker domains through a shared
    work queue. Results always come back in task-index order, so a
    parallel map is a drop-in replacement for [List.map]: callers see
    byte-identical output regardless of the number of domains.

    A pool with fewer than two domains never spawns workers; every [map]
    then runs serially in the calling domain. This keeps [?pool] plumbing
    uniform: passing [create ~domains:1] is exactly the serial path.

    The pool is not reentrant: task functions must not call [map] /
    [map_result] on the pool executing them (they would deadlock waiting
    for workers that are all busy running their parents). *)

type t

(** [create ~domains] spawns [domains] worker domains when [domains >= 2]
    and none otherwise (the calling domain only collects results, it does
    not run tasks). [domains] is the requested solve concurrency, capped
    at 128. It is intentionally not clamped to
    {!Domain.recommended_domain_count}: oversubscribed domains time-slice
    gracefully, while clamping would silently disable the parallel path
    on small hosts. *)
val create : domains:int -> t

(** Effective concurrency of the pool: the number of worker domains, or 1
    for a serial pool. *)
val domains : t -> int

(** [map_result pool f tasks] runs [f] on every task (across the worker
    domains when the pool is parallel) and returns the outcomes in task
    order. Each task's exception is captured in its own [Error] slot, so
    one failed solve never kills the sweep.

    [on_done] is invoked in the {e calling} domain — the pool's
    collector — once per completed task, in completion order (which is
    nondeterministic under parallelism). It needs no synchronisation of
    its own; use it for progress reporting. *)
val map_result :
  ?on_done:(int -> ('b, exn) result -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) result list

(** [map pool f tasks] is [map_result] with failures re-raised: the first
    captured exception in task order propagates after every task has
    finished. Equivalent to [List.map f tasks] up to evaluation order. *)
val map : ?on_done:(int -> ('b, exn) result -> unit) -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Stop the workers and join them. The pool must not be used afterwards;
    [shutdown] is idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts it
    down, including on exception. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** Solve concurrency requested by the environment: the [OPTROUTER_JOBS]
    variable, clamped to at least 1; unset means 1. An unparsable or
    non-positive value also means 1, with a warning naming the rejected
    value on the [optrouter.exec] log source. *)
val env_jobs : unit -> int

(** Per-solve (inner, branch-and-bound) concurrency requested by the
    environment: the [OPTROUTER_SOLVER_JOBS] variable, with exactly the
    parsing and fallback rules of {!env_jobs}. *)
val env_solver_jobs : unit -> int

(** A lock-free budget of spare domain slots, the glue of the two-level
    scheduler: the sweep gives each pool a budget of [domains] slots, a
    task holds one slot while it runs and may claim up to
    [solver_jobs - 1] extra slots for its inner branch-and-bound workers.
    While the pool is saturated every slot is held and solves run
    single-worker; at the sweep tail the freed slots flow to the solves
    that start while domains idle — exactly when widening helps. *)
module Budget : sig
  type b

  (** [create ~slots] (negative values behave as 0). *)
  val create : slots:int -> b

  (** The slot count the budget was created with. *)
  val total : b -> int

  (** Currently unclaimed slots; advisory under concurrency. *)
  val available : b -> int

  (** [acquire b want] claims up to [want] slots and returns how many it
      got (0 when none are free or [want <= 0]). Never blocks, never
      over-grants: the sum of outstanding grants never exceeds the
      budget. *)
  val acquire : b -> int -> int

  (** [release b k] returns [k] slots ([k <= 0] is a no-op). Callers must
      release exactly what they acquired. *)
  val release : b -> int -> unit

  (** [with_width b ~want f] runs [f width] where [width >= 1] is the
      solver width granted by the budget: one base slot plus up to
      [want - 1] extra slots, widened only when the base slot itself was
      granted. All grants are released when [f] returns or raises. This
      is the two-level scheduling step shared by the sweep engine and the
      serve daemon: while every slot is held tasks run single-wide; idle
      slots turn into extra solver workers. *)
  val with_width : b -> want:int -> (int -> 'a) -> 'a
end
