let digest_hex s = Digest.to_hex (Digest.string s)

let seed s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
