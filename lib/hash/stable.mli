(** Stable, cross-platform content digests.

    [Hashtbl.hash] is documented to be neither stable across OCaml
    versions nor across platforms, so anything persisted or compared
    between hosts must not be keyed on it.  This module wraps the
    stdlib [Digest] (MD5) — whose output is defined by the algorithm,
    not the runtime — into the two shapes the rest of the codebase
    needs: a printable key and a small RNG seed. *)

val digest_hex : string -> string
(** [digest_hex s] is the 32-character lowercase hex MD5 digest of
    [s].  Stable across OCaml versions, platforms and word sizes. *)

val seed : string -> int
(** [seed s] is a non-negative int derived from the first four bytes
    of [digest_hex s].  Stable wherever [digest_hex] is; suitable for
    [Random.State.make]. *)
