module Clip = Optrouter_grid.Clip
module Route = Optrouter_grid.Route
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Clipfile = Optrouter_clipfile.Clipfile
module Optrouter = Optrouter_core.Optrouter
module Milp = Optrouter_ilp.Milp
module Pool = Optrouter_exec.Pool
module Report = Optrouter_report.Report
module Stable = Optrouter_hash.Stable

let log_src = "serve"

type listener = Unix_socket of string | Tcp of int

type params = {
  cache_dir : string option;
  cache_capacity : int;
  jobs : int;
  solver_jobs : int;
  batch_size : int;
  queue_capacity : int;
  time_limit_s : float;
  config : Optrouter.config;
}

let default_params =
  {
    cache_dir = None;
    cache_capacity = 512;
    jobs = 1;
    solver_jobs = 1;
    batch_size = 8;
    queue_capacity = 64;
    time_limit_s = 60.0;
    config = Optrouter.default_config;
  }

let make_params ?cache_dir ?(cache_capacity = default_params.cache_capacity)
    ?(jobs = default_params.jobs) ?(solver_jobs = default_params.solver_jobs)
    ?(batch_size = default_params.batch_size)
    ?(queue_capacity = default_params.queue_capacity)
    ?(time_limit_s = default_params.time_limit_s)
    ?(config = default_params.config) () =
  {
    cache_dir;
    cache_capacity;
    jobs = max 1 jobs;
    solver_jobs = max 1 solver_jobs;
    batch_size = max 1 batch_size;
    queue_capacity = max 1 queue_capacity;
    time_limit_s;
    config;
  }

type request = {
  tech : Tech.t;
  rules : Rules.t;
  clip : Clip.t;
  deadline_s : float option;
  no_cache : bool;
}

type cache_status = Hit_memory | Hit_disk | Miss | Bypass

type reply = { status : cache_status; payload : string; elapsed_s : float }

(* ------------------------------------------------------------------ *)
(* Cache key                                                           *)
(* ------------------------------------------------------------------ *)

(* v1 -> v2: the config fingerprint grew a solve_mode line, so every
   pre-existing entry was keyed under a format that can no longer be
   reproduced — bumping the version retires them wholesale.
   v2 -> v3: Rules.canonical grew conditional [;dsa=...] / [;objective=...]
   suffixes (the DSA via-coloring family and via-weighted objectives).
   Legacy configurations still canonicalise byte-identically, but the key
   space now distinguishes entries the v2 server could never have produced
   — the bump keeps the version honest about the format generation. *)
let key_version = "optrouter serve key v3"

let cache_key ~config ~tech ~rules clip =
  Stable.digest_hex
    (String.concat "\n"
       [
         key_version;
         Tech.canonical tech;
         Rules.canonical rules;
         Optrouter.config_fingerprint config;
         Clipfile.to_string clip;
       ])

(* ------------------------------------------------------------------ *)
(* Result payload                                                      *)
(* ------------------------------------------------------------------ *)

(* The payload is the byte-identity unit of the cache contract: the
   verdict and the routing itself (metrics + per-net edge sets, edge ids
   sorted so list order inside a net is canonical). Solver-effort stats
   (nodes, iterations, elapsed) are deliberately outside the payload —
   they describe the solve, not the answer, and legitimately vary with
   width and load. *)
let payload_of_solution (sol : Route.solution) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "cost %d wirelength %d vias %d\n" sol.Route.metrics.cost
       sol.Route.metrics.wirelength sol.Route.metrics.vias);
  Array.iter
    (fun (r : Route.net_route) ->
      let edges = List.sort_uniq Int.compare r.Route.edges in
      Buffer.add_string buf
        (Printf.sprintf "net %d%s\n" r.Route.net
           (String.concat ""
              (List.map (fun e -> " " ^ string_of_int e) edges))))
    sol.Route.routes;
  Buffer.contents buf

let payload_of_result (r : Optrouter.result) =
  match r.Optrouter.verdict with
  | Optrouter.Routed sol -> "verdict routed\n" ^ payload_of_solution sol
  | Optrouter.Unroutable -> "verdict unroutable\n"
  | Optrouter.Limit (Some sol) ->
    "verdict limit-incumbent\n" ^ payload_of_solution sol
  | Optrouter.Limit None -> "verdict limit\n"
  | Optrouter.Near_optimal sol ->
    "verdict near-optimal\n" ^ payload_of_solution sol

(* Only proven results enter the cache: an optimum or an infeasibility
   proof holds under any deadline, while a Limit verdict is an artefact
   of this request's budget — caching it would let a short deadline
   poison the answers of later, patient callers. Near_optimal routings
   are likewise never cached: they are feasible but unproven, and a
   longer-running decomposition may legitimately return a better one.
   An extra belt-and-braces guard refuses to cache ANY verdict from a
   Lagrangian-mode solve — even its Unroutable proof rides on the mode's
   reachability check rather than the ILP, and keeping the mode fully
   cache-inert makes the contract easy to audit. *)
let cacheable ~(config : Optrouter.config) (r : Optrouter.result) =
  match config.Optrouter.solve_mode with
  | Optrouter.Lagrangian -> false
  | Optrouter.Exact -> (
    match r.Optrouter.verdict with
    | Optrouter.Routed _ | Optrouter.Unroutable -> true
    | Optrouter.Limit _ | Optrouter.Near_optimal _ -> false)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  params : params;
  cache : Cache.t;
  pool : Pool.t option;
  budget : Pool.Budget.b option;
  mutable served : int;
}

let create params =
  let cache =
    Cache.create ?dir:params.cache_dir ~capacity:params.cache_capacity ()
  in
  let pool =
    if params.jobs >= 2 then Some (Pool.create ~domains:params.jobs) else None
  in
  let budget =
    Option.map (fun p -> Pool.Budget.create ~slots:(Pool.domains p)) pool
  in
  { params; cache; pool; budget; served = 0 }

let destroy t = Option.iter Pool.shutdown t.pool
let cache t = t.cache
let requests_served t = t.served

let config_for t req ~width =
  let c = t.params.config in
  let deadline =
    match req.deadline_s with
    | None -> t.params.time_limit_s
    | Some d -> Float.min d t.params.time_limit_s
  in
  let milp =
    {
      c.Optrouter.milp with
      Milp.time_limit_s = Some deadline;
      solver_jobs = width;
    }
  in
  { c with Optrouter.milp }

(* One budgeted solve, runnable on a pool worker: hold a base slot, widen
   the branch and bound only into idle slots (two-level scheduling, same
   contract as the sweep — results are width-independent, so budget
   grants never change an answer). *)
let solve t req =
  let run width =
    Optrouter.route
      ~config:(config_for t req ~width)
      ~tech:req.tech ~rules:req.rules req.clip
  in
  match t.budget with
  | None -> run t.params.solver_jobs
  | Some b -> Pool.Budget.with_width b ~want:t.params.solver_jobs run

let timed_solve t req =
  let t0 = Unix.gettimeofday () in
  let result = solve t req in
  (result, Unix.gettimeofday () -. t0)

(* Answer a batch. Cache lookups and stores stay in the calling domain
   (the cache itself is mutex-guarded, but keeping them here preserves
   the batch's dedup window); only the miss solves fan out over the
   pool. Duplicate keys within a batch are solved once and the payload
   shared — with the bounded queue in front, this is what turns a
   thundering herd on one clip into a single solve. *)
let handle_batch t reqs =
  t.served <- t.served + List.length reqs;
  let lookup req =
    let key =
      cache_key ~config:t.params.config ~tech:req.tech ~rules:req.rules
        req.clip
    in
    if req.no_cache then `Solve (req, key, Bypass)
    else
      let t0 = Unix.gettimeofday () in
      match Cache.find t.cache key with
      | Some (payload, Cache.Memory) ->
        `Hit (payload, Hit_memory, Unix.gettimeofday () -. t0)
      | Some (payload, Cache.Disk) ->
        `Hit (payload, Hit_disk, Unix.gettimeofday () -. t0)
      | None -> `Solve (req, key, Miss)
  in
  let looked = List.map lookup reqs in
  (* Dedup the solves by key; the representative request of each key is
     solved once. *)
  let index = Hashtbl.create 8 in
  let jobs = ref [] in
  let njobs = ref 0 in
  let job_for key req =
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      let i = !njobs in
      Hashtbl.replace index key i;
      jobs := (key, req) :: !jobs;
      incr njobs;
      i
  in
  let plan =
    List.map
      (function
        | `Hit _ as h -> h
        | `Solve (req, key, status) -> `Job (job_for key req, status))
      looked
  in
  let job_list = List.rev !jobs in
  let outcomes =
    let task (key, req) =
      let result, wall = timed_solve t req in
      (key, result, wall)
    in
    match t.pool with
    | Some pool when List.length job_list > 1 ->
      Pool.map_result pool task job_list
    | _ ->
      List.map
        (fun job -> try Ok (task job) with exn -> Error exn)
        job_list
  in
  (* Store proven results — in this (collector) domain. *)
  let outcomes =
    Array.of_list
      (List.map
         (function
           | Ok (key, result, wall) ->
             let payload = payload_of_result result in
             if cacheable ~config:t.params.config result then
               Cache.store t.cache key payload;
             Ok (payload, wall)
           | Error exn -> Error (Printexc.to_string exn))
         outcomes)
  in
  List.map
    (function
      | `Hit (payload, status, elapsed_s) -> Ok { status; payload; elapsed_s }
      | `Job (i, status) -> (
        match outcomes.(i) with
        | Ok (payload, elapsed_s) -> Ok { status; payload; elapsed_s }
        | Error msg -> Error msg))
    plan

let handle t req =
  match handle_batch t [ req ] with
  | [ r ] -> r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let request_header = "optrouter-request v1"
let shutdown_line = "optrouter-shutdown"
let stats_line = "optrouter-stats"

let finish_request ?tech_name ?deadline_s ~no_cache ~rule body =
  let ( let* ) = Result.bind in
  let* clip = Clipfile.one_of_string body in
  let* () = Clip.validate clip in
  let* rules =
    match Rules.rule rule with
    | r -> Ok r
    | exception Invalid_argument msg -> Error msg
  in
  let name = Option.value tech_name ~default:clip.Clip.tech_name in
  let* tech =
    match Tech.by_name name with
    | tech -> Ok tech
    | exception Not_found -> Error (Printf.sprintf "unknown tech %S" name)
  in
  let* () =
    if Rules.applicable ~tech_name:tech.Tech.name rules then Ok ()
    else
      Error
        (Printf.sprintf "%s is not evaluable on %s" rules.Rules.name
           tech.Tech.name)
  in
  let* () =
    match deadline_s with
    | Some d when (not (Float.is_finite d)) || d <= 0.0 ->
      Error (Printf.sprintf "bad deadline %g" d)
    | Some _ | None -> Ok ()
  in
  Ok { tech; rules; clip; deadline_s; no_cache }

let parse_text_request msg =
  let lines = String.split_on_char '\n' msg in
  match lines with
  | header :: rest when String.trim header = request_header ->
    let rec headers ~tech_name ~rule ~deadline_s ~no_cache = function
      | [] -> Error "missing clip body"
      | line :: more as remaining -> (
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun tok -> tok <> "")
        in
        match tokens with
        | [] -> headers ~tech_name ~rule ~deadline_s ~no_cache more
        | "clip" :: _ -> (
          (* body: everything from here on, minus the frame trailer *)
          let body_lines =
            List.filter
              (fun l -> String.trim l <> "endrequest")
              remaining
          in
          match rule with
          | None -> Error "missing rule header"
          | Some rule ->
            finish_request ?tech_name ?deadline_s ~no_cache ~rule
              (String.concat "\n" body_lines))
        | [ "tech"; name ] ->
          headers ~tech_name:(Some name) ~rule ~deadline_s ~no_cache more
        | [ "rule"; n ] -> (
          match int_of_string_opt n with
          | Some n -> headers ~tech_name ~rule:(Some n) ~deadline_s ~no_cache more
          | None -> Error (Printf.sprintf "bad rule %S" n))
        | [ "deadline"; d ] -> (
          (* Reject nan/inf/non-positive here, not just in
             [finish_request]: [float_of_string_opt] happily parses
             "nan" and "inf", and a NaN deadline would otherwise slip
             through comparisons (NaN <= 0.0 is false). *)
          match float_of_string_opt d with
          | Some f when Float.is_finite f && f > 0.0 ->
            headers ~tech_name ~rule ~deadline_s:(Some f) ~no_cache more
          | Some _ | None -> Error (Printf.sprintf "bad deadline %S" d))
        | [ "nocache" ] ->
          headers ~tech_name ~rule ~deadline_s ~no_cache:true more
        | tok :: _ -> Error (Printf.sprintf "unknown request header %S" tok))
    in
    headers ~tech_name:None ~rule:None ~deadline_s:None ~no_cache:false rest
  | first :: _ ->
    Error (Printf.sprintf "bad request header %S" (String.trim first))
  | [] -> Error "empty request"

let parse_json_request msg =
  match Report.Json.of_string msg with
  | Error e -> Error ("bad JSON request: " ^ e)
  | Ok doc -> (
    let str key =
      match Report.Json.member key doc with
      | Some (Report.Json.String s) -> Some s
      | Some _ | None -> None
    in
    let num key =
      match Report.Json.member key doc with
      | Some (Report.Json.Float f) -> Some f
      | Some (Report.Json.Int i) -> Some (float_of_int i)
      | Some _ | None -> None
    in
    match (Report.Json.member "rule" doc, str "clip") with
    | Some (Report.Json.Int rule), Some body ->
      let no_cache =
        match Report.Json.member "no_cache" doc with
        | Some (Report.Json.Bool b) -> b
        | Some _ | None -> false
      in
      finish_request ?tech_name:(str "tech") ?deadline_s:(num "deadline_s")
        ~no_cache ~rule body
    | None, _ | Some _, _ when str "clip" = None ->
      Error "JSON request needs a \"clip\" string field"
    | _ -> Error "JSON request needs an integer \"rule\" field")

let parse_request msg =
  let trimmed = String.trim msg in
  if trimmed <> "" && trimmed.[0] = '{' then parse_json_request trimmed
  else parse_text_request msg

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let response_header = "optrouter-response v1"
let error_header = "optrouter-error v1"
let bye_line = "optrouter-bye"
let end_line = "endresponse"

let status_line = function
  | Hit_memory -> "cache hit-memory"
  | Hit_disk -> "cache hit-disk"
  | Miss -> "cache miss"
  | Bypass -> "cache bypass"

let frame_reply r =
  Printf.sprintf "%s\n%s\nelapsed %.6f\n%s%s\n" response_header
    (status_line r.status) r.elapsed_s r.payload end_line

let one_line msg = String.map (fun c -> if c = '\n' then ' ' else c) msg

let frame_error msg =
  Printf.sprintf "%s\nerror %s\n%s\n" error_header (one_line msg) end_line

let frame_stats t =
  let s = Cache.stats t.cache in
  Printf.sprintf "%s\ncache stats\nelapsed 0.000000\n%s%s\n" response_header
    (Report.Telemetry.render_serve ~requests:t.served
       ~mem_hits:s.Cache.mem_hits ~disk_hits:s.Cache.disk_hits
       ~misses:s.Cache.misses ~evictions:s.Cache.evictions
       ~stores:s.Cache.stores ~disk_errors:s.Cache.disk_errors ())
    end_line

let parse_response frame =
  let lines = String.split_on_char '\n' frame in
  let rec payload_of acc = function
    | [] -> String.concat "\n" (List.rev acc)
    | l :: _ when String.trim l = end_line ->
      String.concat "" (List.rev_map (fun l -> l ^ "\n") acc)
    | l :: rest -> payload_of (l :: acc) rest
  in
  match lines with
  | first :: rest when String.trim first = response_header -> (
    match rest with
    | status :: more ->
      let status =
        match String.trim status with
        | "cache hit-memory" -> Some Hit_memory
        | "cache hit-disk" -> Some Hit_disk
        | "cache miss" -> Some Miss
        | "cache bypass" -> Some Bypass
        | _ -> None
      in
      let body =
        match more with
        | elapsed :: payload
          when String.length (String.trim elapsed) >= 7
               && String.sub (String.trim elapsed) 0 7 = "elapsed" ->
          payload
        | payload -> payload
      in
      Ok (status, payload_of [] body)
    | [] -> Error "truncated response")
  | first :: rest when String.trim first = error_header -> (
    match rest with
    | e :: _ when String.length (String.trim e) > 6 ->
      Error (String.sub (String.trim e) 6 (String.length (String.trim e) - 6))
    | _ -> Error "unknown server error")
  | first :: _ when String.trim first = bye_line -> Ok (None, bye_line)
  | _ -> Error "unrecognised response frame"

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  mutable residue : string;  (** bytes after the last newline *)
  mutable req_lines : string list option;
      (** reversed lines of an in-progress text request frame *)
}

(* Split freshly read bytes into complete wire messages. Text request
   frames span [optrouter-request v1] .. [endrequest]; JSON requests and
   control messages are single lines. Unrecognised single lines become
   messages too — [parse_request] turns them into error replies, keeping
   protocol errors on the same response channel as everything else. *)
let feed conn data =
  let data = conn.residue ^ data in
  let msgs = ref [] in
  let rec go = function
    | [] -> conn.residue <- ""
    | [ tail ] -> conn.residue <- tail
    | line :: rest ->
      (match conn.req_lines with
      | Some acc ->
        if String.trim line = "endrequest" then begin
          msgs := String.concat "\n" (List.rev (line :: acc)) :: !msgs;
          conn.req_lines <- None
        end
        else conn.req_lines <- Some (line :: acc)
      | None ->
        let tl = String.trim line in
        if tl = "" then ()
        else if tl = request_header then conn.req_lines <- Some [ line ]
        else msgs := line :: !msgs);
      go rest
  in
  go (String.split_on_char '\n' data);
  List.rev !msgs

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  (* A peer that hung up mid-reply is its own problem; the daemon must
     not die on EPIPE. *)
  try go 0
  with Unix.Unix_error (_, _, _) -> ()

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Some path)
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    (fd, None)

let run t listeners =
  let listening = List.map bind_listener listeners in
  let listen_fds = List.map fst listening in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let queue : (conn * string) Queue.t = Queue.create () in
  let stopping = ref false in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()
  in
  let on_message c msg =
    let tl = String.trim msg in
    if tl = shutdown_line then begin
      (* Acknowledge immediately; pending work drains before exit. *)
      write_all c.fd (bye_line ^ "\n");
      stopping := true
    end
    else if tl = stats_line then write_all c.fd (frame_stats t)
    else Queue.add (c, msg) queue
  in
  let process_batch () =
    let items = ref [] in
    while List.length !items < t.params.batch_size && not (Queue.is_empty queue) do
      items := Queue.pop queue :: !items
    done;
    let items = List.rev !items in
    let parsed = List.map (fun (c, raw) -> (c, parse_request raw)) items in
    let batch =
      List.filter_map (function _, Ok req -> Some req | _, Error _ -> None) parsed
    in
    let replies = ref (handle_batch t batch) in
    List.iter
      (fun (c, p) ->
        match p with
        | Error e -> write_all c.fd (frame_error e)
        | Ok _ -> (
          match !replies with
          | reply :: rest ->
            replies := rest;
            (match reply with
            | Ok r -> write_all c.fd (frame_reply r)
            | Error e -> write_all c.fd (frame_error e))
          | [] -> (* handle_batch is length-preserving *) assert false))
      parsed
  in
  let step () =
    if not (Queue.is_empty queue) then process_batch ()
    else begin
      (* Backpressure: with the pending queue at capacity nothing is
         read — new bytes sit in the kernel buffers (and eventually stall
         the clients) until solves drain. *)
      let room = Queue.length queue < t.params.queue_capacity in
      let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      let rd =
        (if room && not !stopping then listen_fds else [])
        @ (if room then conn_fds else [])
      in
      match Unix.select rd [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if List.mem fd listen_fds then begin
              match Unix.accept fd with
              | cfd, _ ->
                Hashtbl.replace conns cfd
                  { fd = cfd; residue = ""; req_lines = None }
              | exception Unix.Unix_error (_, _, _) -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some c -> (
                let buf = Bytes.create 65536 in
                match Unix.read fd buf 0 65536 with
                | 0 -> close_conn c
                | n ->
                  List.iter (on_message c) (feed c (Bytes.sub_string buf 0 n))
                | exception Unix.Unix_error (_, _, _) -> close_conn c))
          readable
    end
  in
  Report.Log.info ~src:log_src (fun () ->
      Printf.sprintf "serving on %s"
        (String.concat ", "
           (List.map
              (function
                | Unix_socket p -> "unix:" ^ p
                | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p)
              listeners)));
  while (not !stopping) || not (Queue.is_empty queue) do
    step ()
  done;
  Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter close_conn;
  List.iter
    (fun (fd, path) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      match path with
      | Some p -> ( try Sys.remove p with Sys_error _ -> ())
      | None -> ())
    listening

(* ------------------------------------------------------------------ *)
(* Client helpers                                                      *)
(* ------------------------------------------------------------------ *)

let text_request ?tech ?deadline_s ?(no_cache = false) ~rule clip_text =
  let b = Buffer.create (String.length clip_text + 64) in
  Buffer.add_string b (request_header ^ "\n");
  Option.iter (fun t -> Buffer.add_string b (Printf.sprintf "tech %s\n" t)) tech;
  Buffer.add_string b (Printf.sprintf "rule %d\n" rule);
  Option.iter
    (fun d -> Buffer.add_string b (Printf.sprintf "deadline %g\n" d))
    deadline_s;
  if no_cache then Buffer.add_string b "nocache\n";
  Buffer.add_string b clip_text;
  if clip_text = "" || clip_text.[String.length clip_text - 1] <> '\n' then
    Buffer.add_char b '\n';
  Buffer.add_string b "endrequest\n";
  Buffer.contents b

let connect ?(retries = 50) listener =
  let domain, addr =
    match listener with
    | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Unix.sleepf 0.1;
      go (n - 1)
  in
  go retries

let roundtrip fd msg =
  write_all fd msg;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let complete () =
    let s = Buffer.contents buf in
    String.ends_with ~suffix:(end_line ^ "\n") s
    || String.ends_with ~suffix:(bye_line ^ "\n") s
  in
  let rec go () =
    if complete () then Buffer.contents buf
    else
      match Unix.read fd chunk 0 4096 with
      | 0 -> Buffer.contents buf
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()
