(** Routing as a service: the engine behind [optrouter serve].

    A daemon accepts clip-route requests over a Unix-domain socket (or
    TCP), schedules them on the two-level
    {!Optrouter_exec.Pool}/{!Optrouter_exec.Pool.Budget} engine with
    request batching and bounded-queue backpressure, enforces
    per-request deadlines through the solver's wall-clock
    [time_limit_s], and answers repeated traffic from a
    content-addressed {!Cache}.

    {2 Wire protocol}

    Line-oriented, one request at a time per connection. Text form:
    {v
    optrouter-request v1
    tech N28-12T        (optional; defaults to the clip's tech line)
    rule 3              (required; RULEn index 1..14)
    deadline 5.0        (optional; seconds, capped by the server)
    nocache             (optional; solve even on a cached key)
    clip <name>
    ...clipfile body...
    endclip
    endrequest
    v}

    JSON form — a single line starting with [{]:
    {v
    {"rule": 3, "clip": "clip q\n...endclip\n", "tech": "N28-12T",
     "deadline_s": 5.0, "no_cache": false}
    v}

    Control lines: [optrouter-stats] (returns cache/serve counters) and
    [optrouter-shutdown] (drains, replies [optrouter-bye], exits).

    Every reply is framed as
    {v
    optrouter-response v1
    cache hit-memory|hit-disk|miss|bypass
    elapsed <seconds>
    <payload>
    endresponse
    v}
    (or [optrouter-error v1] / [error <msg>] / [endresponse]). The
    {e payload} — verdict, routing metrics and per-net edge lists — is
    the cached unit: for the same clip x rules x result-relevant params
    it is byte-identical whether answered from cache or by a fresh
    solve. Only {e proven} results (optimal or infeasible) are cached;
    deadline-limited verdicts are never stored, so a cached answer is
    valid under any later deadline. *)

type listener = Unix_socket of string | Tcp of int

type params = {
  cache_dir : string option;  (** on-disk cache tier; [None] = memory only *)
  cache_capacity : int;  (** memory-tier LRU capacity, default 512 *)
  jobs : int;  (** pool worker domains, default 1 (serial) *)
  solver_jobs : int;  (** max per-solve branch-and-bound width, default 1 *)
  batch_size : int;  (** max requests handed to the pool at once *)
  queue_capacity : int;
      (** pending-request bound: when full, the daemon stops reading
          from connections until solves drain (backpressure) *)
  time_limit_s : float;
      (** server-side cap (and default) for per-request deadlines *)
  config : Optrouter_core.Optrouter.config;
      (** base routing configuration; per-request deadline and budgeted
          solver width override its [milp] effort fields *)
}

val default_params : params

val make_params :
  ?cache_dir:string ->
  ?cache_capacity:int ->
  ?jobs:int ->
  ?solver_jobs:int ->
  ?batch_size:int ->
  ?queue_capacity:int ->
  ?time_limit_s:float ->
  ?config:Optrouter_core.Optrouter.config ->
  unit ->
  params

type request = {
  tech : Optrouter_tech.Tech.t;
  rules : Optrouter_tech.Rules.t;
  clip : Optrouter_grid.Clip.t;
  deadline_s : float option;
  no_cache : bool;
}

type cache_status = Hit_memory | Hit_disk | Miss | Bypass

type reply = { status : cache_status; payload : string; elapsed_s : float }

(** {2 Cache key} *)

(** Version tag folded into every key; bump when any canonical component
    ([Tech.canonical], [Rules.canonical],
    [Optrouter.config_fingerprint], {!Optrouter_clipfile.Clipfile.to_string}
    or the payload format) changes shape. *)
val key_version : string

(** [cache_key ~config ~tech ~rules clip] is the stable hex digest of
    the canonical serializations of everything a routing result depends
    on. Configs differing only in effort knobs map to the same key (see
    {!Optrouter_core.Optrouter.config_fingerprint}). *)
val cache_key :
  config:Optrouter_core.Optrouter.config ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Clip.t ->
  string

(** Canonical payload text for a routing result: verdict line, then for
    solutions a metrics line and one sorted [net <i> <edge ids>] line
    per net. This is the byte-identity unit of the cache contract. *)
val payload_of_result : Optrouter_core.Optrouter.result -> string

(** {2 Engine} *)

type t

(** [create params] builds the engine: cache (+ disk tier), worker pool
    (when [jobs >= 2]) and solver-width budget. *)
val create : params -> t

(** Release the engine's pool. The engine must not be used afterwards. *)
val destroy : t -> unit

val cache : t -> Cache.t
val requests_served : t -> int

(** [handle t req] answers one request: cache lookup (unless
    [req.no_cache]), else a budgeted solve; proven results are stored.
    Runs in the calling domain. [Error] carries a solve failure
    message. *)
val handle : t -> request -> (reply, string) result

(** [handle_batch t reqs] answers a batch, fanning cache misses over the
    pool. Duplicate keys within the batch are solved once. Results come
    back in request order. *)
val handle_batch : t -> request list -> (reply, string) result list

(** [parse_request t s] parses one wire message (text or JSON form). *)
val parse_request : string -> (request, string) result

(** {2 Daemon} *)

(** [run t listeners] binds the listeners and serves until an
    [optrouter-shutdown] message arrives (drains pending requests
    first). Unix-socket paths are unlinked on exit. *)
val run : t -> listener list -> unit

(** {2 Client helpers} (used by the CLI, tests and the bench) *)

(** Render the text-form request frame from raw clipfile text. *)
val text_request :
  ?tech:string ->
  ?deadline_s:float ->
  ?no_cache:bool ->
  rule:int ->
  string ->
  string

val shutdown_line : string
val stats_line : string

(** [connect ?retries listener] connects, retrying [retries] times
    (default 50) at 100 ms intervals while the endpoint does not accept
    yet — covers the daemon's startup window. *)
val connect : ?retries:int -> listener -> Unix.file_descr

(** [roundtrip fd msg] writes [msg] and reads until a complete response
    frame ([endresponse] or [optrouter-bye]) arrives; returns the frame
    text. *)
val roundtrip : Unix.file_descr -> string -> string

(** The wire status line for a cache status, e.g. ["cache hit-memory"]. *)
val status_line : cache_status -> string

(** Split a response frame into its cache-status line and payload; the
    payload of an error frame is the error message. *)
val parse_response :
  string -> (cache_status option * string, string) result
