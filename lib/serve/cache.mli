(** Content-addressed result cache for the serve daemon.

    Maps hex digest keys (see [Serve.cache_key]) to opaque payload
    strings through two tiers: an in-memory LRU of bounded capacity and
    an optional on-disk store, one file per key. Disk entries are
    written atomically (temp file + rename, {!Optrouter_report.Report.write_atomic})
    under a versioned header and validated on load — a torn, truncated
    or stale entry is treated as a miss (and removed best-effort), never
    returned as an answer.

    Thread-safe: the in-memory tier (LRU table, clock, counters) is
    guarded by an internal mutex, so [find]/[store]/[stats]/[mem_size]
    may be called from any domain concurrently. Disk I/O happens
    outside the lock — per-key atomic writes and validated reads make
    concurrent disk access safe without serializing solves behind a
    file read — so two domains missing on the same key may both read
    (or both write) that key's file; both outcomes are idempotent. *)

type t

(** Counters since [create]. [mem_hits]/[disk_hits]/[misses] partition
    the [find] calls; [stores] counts successful inserts, [evictions]
    LRU evictions, and [disk_errors] on-disk entries that failed
    validation (each also counted as a miss) or failed to write. *)
type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_errors : int;
}

(** [create ?dir ~capacity ()] — [capacity] (>= 1) bounds the in-memory
    tier; [dir] enables the on-disk tier (created if missing). *)
val create : ?dir:string -> capacity:int -> unit -> t

type tier = Memory | Disk

(** [find t key] is the cached payload and the tier that answered:
    memory first, then disk (a disk hit is promoted into memory). *)
val find : t -> string -> (string * tier) option

(** [store t key payload] inserts into memory (evicting the least
    recently used entry when full) and, when a [dir] was given, writes
    the disk entry atomically. Disk write failures are counted and
    logged, not raised — the cache is an accelerator, never a reason to
    fail a request. *)
val store : t -> string -> string -> unit

val stats : t -> stats

(** Number of entries currently in the memory tier. *)
val mem_size : t -> int

(** The versioned first line of every disk entry. *)
val disk_header : string
