module Report = Optrouter_report.Report

let log_src = "serve.cache"

(* Disk entry layout (all line-terminated, then raw payload bytes):

     # optrouter cache v1
     key <32 hex chars>
     bytes <payload length>
     <payload>

   The header mirrors Simplex.Basis's versioned format. [key] is
   repeated inside the file so a misplaced or stale file (e.g. after a
   key-format change that kept the same digest names) self-invalidates;
   [bytes] makes truncation detectable without trusting the filesystem
   length alone. *)
let disk_header = "# optrouter cache v1"

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_errors : int;
}

type slot = { payload : string; mutable tick : int }

type t = {
  capacity : int;
  dir : string option;
  lock : Mutex.t;  (* guards table, slot ticks, clock and the counters *)
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_errors : int;
}

let create ?dir ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | Some _ | None -> ());
  {
    capacity;
    dir;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    disk_errors = 0;
  }

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        mem_hits = t.mem_hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        disk_errors = t.disk_errors;
      })

let mem_size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

(* The helpers below touch the in-memory tier directly: callers hold
   [t.lock]. *)

let touch t slot =
  t.clock <- t.clock + 1;
  slot.tick <- t.clock

(* Exact LRU by minimum-tick scan: capacities are small (hundreds), so
   the O(n) eviction scan is noise next to even a cache-hit request. *)
let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, best) when best <= slot.tick -> ()
        | _ -> victim := Some (key, slot.tick))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
    | None -> ()
  end

let insert_mem t key payload =
  match Hashtbl.find_opt t.table key with
  | Some slot -> touch t slot
  | None ->
    evict_if_full t;
    let slot = { payload; tick = 0 } in
    touch t slot;
    Hashtbl.replace t.table key slot

let path_of dir key = Filename.concat dir (key ^ ".cache")

(* Read and validate one disk entry. Any deviation — missing file, bad
   header, key mismatch, short read — yields [None]; corrupt files are
   additionally removed (best-effort) so they are not re-parsed on every
   miss. *)
(* Runs outside [t.lock]; reports validation failures in the returned
   error count so the caller can bump the counter under the lock. *)
let disk_find dir key =
  let path = path_of dir key in
  if not (Sys.file_exists path) then (None, 0)
  else begin
    let invalid why =
      Report.Log.warn ~src:log_src (fun () ->
          Printf.sprintf "dropping invalid cache entry %s: %s" path why);
      (try Sys.remove path with Sys_error _ -> ());
      (None, 1)
    in
    match open_in_bin path with
    | exception Sys_error why -> invalid why
    | ic -> (
      let line () = try Some (input_line ic) with End_of_file -> None in
      let result =
        match line () with
        | Some h when h = disk_header -> (
          match line () with
          | Some k when k = "key " ^ key -> (
            match line () with
            | Some b -> (
              match
                if String.length b > 6 && String.sub b 0 6 = "bytes " then
                  int_of_string_opt (String.sub b 6 (String.length b - 6))
                else None
              with
              | Some n when n >= 0 -> (
                match really_input_string ic n with
                | exception End_of_file -> Error "truncated payload"
                | payload ->
                  (* exact length: trailing bytes mean a torn rewrite *)
                  if pos_in ic <> in_channel_length ic then
                    Error "trailing bytes after payload"
                  else Ok payload)
              | Some _ | None -> Error (Printf.sprintf "bad bytes line %S" b))
            | None -> Error "missing bytes line")
          | Some k -> Error (Printf.sprintf "key mismatch %S" k)
          | None -> Error "missing key line")
        | Some h -> Error (Printf.sprintf "bad header %S" h)
        | None -> Error "empty file"
      in
      close_in_noerr ic;
      match result with
      | Ok payload -> (Some payload, 0)
      | Error why -> invalid why)
  end

let disk_store dir key payload =
  let contents =
    Printf.sprintf "%s\nkey %s\nbytes %d\n%s" disk_header key
      (String.length payload) payload
  in
  match Report.write_atomic (path_of dir key) contents with
  | () -> 0
  | exception Sys_error why ->
    Report.Log.warn ~src:log_src (fun () ->
        Printf.sprintf "cache store of %s failed: %s" key why);
    1

type tier = Memory | Disk

let find t key =
  let mem =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some slot ->
          touch t slot;
          t.mem_hits <- t.mem_hits + 1;
          Some slot.payload
        | None -> None)
  in
  match mem with
  | Some payload -> Some (payload, Memory)
  | None -> (
    match t.dir with
    | None ->
      Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
      None
    | Some dir -> (
      (* disk I/O stays outside the lock: per-key atomic writes and
         validated reads make concurrent access to one key idempotent,
         and a slow read must not serialize unrelated lookups *)
      match disk_find dir key with
      | Some payload, errors ->
        Mutex.protect t.lock (fun () ->
            t.disk_errors <- t.disk_errors + errors;
            t.disk_hits <- t.disk_hits + 1;
            insert_mem t key payload);
        Some (payload, Disk)
      | None, errors ->
        Mutex.protect t.lock (fun () ->
            t.disk_errors <- t.disk_errors + errors;
            t.misses <- t.misses + 1);
        None))

let store t key payload =
  Mutex.protect t.lock (fun () ->
      insert_mem t key payload;
      t.stores <- t.stores + 1);
  match t.dir with
  | None -> ()
  | Some dir ->
    let errors = disk_store dir key payload in
    if errors > 0 then
      Mutex.protect t.lock (fun () ->
          t.disk_errors <- t.disk_errors + errors)
