

module Layer = Optrouter_tech.Layer
module Rules = Optrouter_tech.Rules

type violation =
  | Edge_conflict of { edge : int; net1 : int; net2 : int }
  | Vertex_conflict of { vertex : int; net1 : int; net2 : int }
  | Disconnected of { net : int; sink : int }
  | Dangling of { net : int; vertex : int }
  | Via_adjacency of { site1 : int; site2 : int }
  | Shape_side of { rep : int; net : int }
  | Shape_blocking of { rep : int; net : int; other : int; vertex : int }
  | Sadp_conflict of { v1 : int; side1 : int; v2 : int; side2 : int }
  | Dsa_conflict of { sites : int list }

(* DSA via coloring (RULE12+): used single-via sites within the
   technology's DSA pitch on the same cut layer conflict; each connected
   component of the conflict graph must be colorable with the
   technology's color count. Exact per component via backtracking —
   components are tiny (bounded by the pitch neighbourhood), and any
   component whose maximum degree is below the color count is greedily
   colorable, so the search only ever runs on genuinely tight clusters. *)
let dsa_uncolorable_components (g : Graph.t) ~colors ~pitch ~used =
  let cols = g.Graph.clip.Clip.cols
  and rows = g.Graph.clip.Clip.rows
  and nz = g.Graph.clip.Clip.layers in
  (* used single-via edge ids with their (x, y, z) site coordinates *)
  let sites = ref [] in
  for z = 0 to nz - 2 do
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        match g.Graph.via_site.(((z * rows) + y) * cols + x) with
        | Some gid when used gid -> sites := (gid, x, y, z) :: !sites
        | Some _ | None -> ()
      done
    done
  done;
  let sites = Array.of_list (List.rev !sites) in
  let n = Array.length sites in
  let conflict i j =
    let _, xi, yi, zi = sites.(i) and _, xj, yj, zj = sites.(j) in
    zi = zj && i <> j && max (abs (xi - xj)) (abs (yi - yj)) <= pitch
  in
  let adj = Array.init n (fun i -> List.filter (conflict i) (List.init n Fun.id)) in
  (* connected components of the conflict graph *)
  let comp = Array.make n (-1) in
  let rec mark c i =
    if comp.(i) < 0 then begin
      comp.(i) <- c;
      List.iter (mark c) adj.(i)
    end
  in
  let ncomp = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) < 0 then begin
      mark !ncomp i;
      incr ncomp
    end
  done;
  let bad = ref [] in
  for c = 0 to !ncomp - 1 do
    let members = List.filter (fun i -> comp.(i) = c) (List.init n Fun.id) in
    let maxdeg =
      List.fold_left (fun acc i -> max acc (List.length adj.(i))) 0 members
    in
    if List.length members > 1 && maxdeg >= colors then begin
      (* exact k-colorability by backtracking over the component *)
      let color = Array.make n (-1) in
      let rec assign = function
        | [] -> true
        | i :: rest ->
          let ok_j j = List.for_all (fun nb -> color.(nb) <> j) adj.(i) in
          let rec try_j j =
            if j >= colors then false
            else if ok_j j then begin
              color.(i) <- j;
              if assign rest then true
              else begin
                color.(i) <- -1;
                try_j (j + 1)
              end
            end
            else try_j (j + 1)
          in
          try_j 0
      in
      if not (assign members) then
        bad :=
          List.map (fun i -> let gid, _, _, _ = sites.(i) in gid) members
          :: !bad
    end
  done;
  List.rev !bad

let check ~(rules : Rules.t) (g : Graph.t) (sol : Route.solution) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let nedges = Array.length g.edges in
  let nnets = Array.length g.nets in
  let cols = g.clip.Clip.cols
  and rows = g.clip.Clip.rows
  and nz = g.clip.Clip.layers in
  let ngrid = cols * rows * nz in
  (* Edge ownership. *)
  let owner = Array.make nedges (-1) in
  Array.iter
    (fun (r : Route.net_route) ->
      List.iter
        (fun gid ->
          if owner.(gid) >= 0 && owner.(gid) <> r.net then
            add (Edge_conflict { edge = gid; net1 = owner.(gid); net2 = r.net })
          else owner.(gid) <- r.net)
        r.edges)
    sol.routes;
  (* Per-net connectivity and stub detection. *)
  Array.iter
    (fun (r : Route.net_route) ->
      let net = g.nets.(r.net) in
      let used = Hashtbl.create 32 in
      List.iter (fun gid -> Hashtbl.replace used gid ()) r.edges;
      let reached = Hashtbl.create 32 in
      let rec bfs v =
        if not (Hashtbl.mem reached v) then begin
          Hashtbl.add reached v ();
          Array.iter
            (fun (gid, other) -> if Hashtbl.mem used gid then bfs other)
            g.adj.(v)
        end
      in
      bfs net.Graph.source;
      Array.iter
        (fun s ->
          if not (Hashtbl.mem reached s) then
            add (Disconnected { net = r.net; sink = s }))
        net.Graph.sinks;
      (* Degree-1 vertices of the used subgraph must be terminals. *)
      let deg = Hashtbl.create 32 in
      List.iter
        (fun gid ->
          let e = g.edges.(gid) in
          let bump v = Hashtbl.replace deg v (1 + Option.value ~default:0 (Hashtbl.find_opt deg v)) in
          bump e.Graph.u;
          bump e.Graph.v)
        r.edges;
      let is_terminal v =
        v = net.Graph.source || Array.exists (fun s -> s = v) net.Graph.sinks
      in
      Hashtbl.iter
        (fun v d ->
          if d = 1 && not (is_terminal v) then
            add (Dangling { net = r.net; vertex = v }))
        deg)
    sol.routes;
  (* Vertex exclusivity over grid vertices. *)
  let vertex_owner = Array.make ngrid (-1) in
  Array.iter
    (fun (r : Route.net_route) ->
      List.iter
        (fun gid ->
          let e = g.edges.(gid) in
          let claim v =
            if v < ngrid then
              if vertex_owner.(v) >= 0 && vertex_owner.(v) <> r.net then
                add
                  (Vertex_conflict
                     { vertex = v; net1 = vertex_owner.(v); net2 = r.net })
              else vertex_owner.(v) <- r.net
          in
          claim e.Graph.u;
          claim e.Graph.v)
        r.edges)
    sol.routes;
  (* Via adjacency restriction. *)
  let offsets =
    match rules.Rules.via_restriction with
    | Rules.No_blocking -> []
    | Rules.Orthogonal -> [ (1, 0); (0, 1) ]
    | Rules.Orthogonal_diagonal -> [ (1, 0); (0, 1); (1, 1); (1, -1) ]
  in
  if offsets <> [] then
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          match g.via_site.(((z * rows) + y) * cols + x) with
          | None -> ()
          | Some s1 when owner.(s1) < 0 -> ()
          | Some s1 ->
            List.iter
              (fun (dx, dy) ->
                let x' = x + dx and y' = y + dy in
                if x' >= 0 && x' < cols && y' >= 0 && y' < rows then
                  match g.via_site.(((z * rows) + y') * cols + x') with
                  | Some s2 when owner.(s2) >= 0 ->
                    add (Via_adjacency { site1 = s1; site2 = s2 })
                  | Some _ | None -> ())
              offsets
        done
      done
    done;
  (* Access points are V12 vias: the adjacency restriction applies to
     them as well. *)
  if offsets <> [] then begin
    let access_used x y =
      List.exists (fun gid -> owner.(gid) >= 0) g.access_sites.((y * cols) + x)
    in
    let some_used x y =
      List.find_opt (fun gid -> owner.(gid) >= 0) g.access_sites.((y * cols) + x)
    in
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        if access_used x y then
          List.iter
            (fun (dx, dy) ->
              let x' = x + dx and y' = y + dy in
              if x' >= 0 && x' < cols && y' >= 0 && y' < rows && access_used x' y'
              then
                match (some_used x y, some_used x' y') with
                | Some s1, Some s2 -> add (Via_adjacency { site1 = s1; site2 = s2 })
                | _, _ -> ())
            offsets
      done
    done
  end;
  (* Via shapes: one member edge per side per net; footprint blocking. *)
  Array.iter
    (fun (rep : Graph.via_rep) ->
      let rep_edges =
        Array.to_list rep.Graph.lower_edges @ Array.to_list rep.Graph.upper_edges
      in
      for k = 0 to nnets - 1 do
        let side_count edges =
          Array.fold_left
            (fun acc gid -> if owner.(gid) = k then acc + 1 else acc)
            0 edges
        in
        if side_count rep.Graph.lower_edges > 1 || side_count rep.Graph.upper_edges > 1
        then add (Shape_side { rep = rep.Graph.rep; net = k });
        let uses = List.exists (fun gid -> owner.(gid) = k) rep_edges in
        if uses then begin
          let members =
            Array.to_list rep.Graph.lower_members
            @ Array.to_list rep.Graph.upper_members
          in
          List.iter
            (fun mv ->
              Array.iter
                (fun (gid2, _) ->
                  if
                    (not (List.mem gid2 rep_edges))
                    && owner.(gid2) >= 0
                    && owner.(gid2) <> k
                  then
                    add
                      (Shape_blocking
                         {
                           rep = rep.Graph.rep;
                           net = k;
                           other = owner.(gid2);
                           vertex = mv;
                         }))
                g.adj.(mv))
            members
        end
      done)
    g.via_reps;
  (* DSA via coloring (RULE12+): resolved from the rules being checked,
     with the color count and pitch riding on the graph. Only single-site
     vias participate: access (V12) cuts sit on the pin mask, outside the
     DSA assembly flow, and multi-site shapes are a manufacturing
     alternative with their own grouping — both excluded by the
     formulation for the same reason. *)
  if rules.Rules.dsa then
    List.iter
      (fun sites -> add (Dsa_conflict { sites }))
      (dsa_uncolorable_components g ~colors:g.Graph.dsa_colors
         ~pitch:g.Graph.dsa_pitch
         ~used:(fun gid -> owner.(gid) >= 0));
  (* SADP end-of-line conflicts: geometric line ends. *)
  let wire_low = Array.make ngrid (-1) and wire_high = Array.make ngrid (-1) in
  Array.iteri
    (fun gid (ed : Graph.edge) ->
      match ed.Graph.kind with
      | Graph.Wire _ ->
        wire_high.(ed.Graph.u) <- gid;
        wire_low.(ed.Graph.v) <- gid
      | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
        -> ())
    g.edges;
  (* Patterning is resolved from the rule configuration being checked, not
     from the rules the graph happened to be built with — the checker is
     routinely pointed at a solution routed under a different rule. *)
  let sadp z = Rules.patterning_of rules ~metal:(z + 2) = Layer.Sadp in
  let vialike_used v =
    Array.exists
      (fun (gid, _) ->
        owner.(gid) >= 0
        &&
        match g.edges.(gid).Graph.kind with
        | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
          -> true
        | Graph.Wire _ -> false)
      g.adj.(v)
  in
  let used gid = gid >= 0 && owner.(gid) >= 0 in
  (* eol.(v).(side): side 0 = wire from low, 1 = wire from high. *)
  let eol = Array.make_matrix ngrid 2 false in
  for v = 0 to ngrid - 1 do
    let z = v / (cols * rows) in
    if sadp z then begin
      if used wire_low.(v) && (not (used wire_high.(v))) && vialike_used v then
        eol.(v).(0) <- true;
      if used wire_high.(v) && (not (used wire_low.(v))) && vialike_used v then
        eol.(v).(1) <- true
    end
  done;
  for z = 0 to nz - 1 do
    if sadp z then begin
      let horizontal = g.layers.(z).Layer.dir = Layer.Horizontal in
      let vat a c =
        let x, y = if horizontal then (a, c) else (c, a) in
        if x < 0 || x >= cols || y < 0 || y >= rows then None
        else Some (((z * rows) + y) * cols + x)
      in
      let amax = (if horizontal then cols else rows) - 1 in
      let cmax = (if horizontal then rows else cols) - 1 in
      for a = 0 to amax do
        for c = 0 to cmax do
          match vat a c with
          | None -> ()
          | Some v ->
            let clash side offs other_side =
              if eol.(v).(side) then
                List.iter
                  (fun (da, dc) ->
                    match vat (a + da) (c + dc) with
                    | Some j when eol.(j).(other_side) ->
                      add
                        (Sadp_conflict { v1 = v; side1 = side; v2 = j; side2 = other_side })
                    | Some _ | None -> ())
                  offs
            in
            (* side 1 = From_high = paper's p_r. Same sets as Formulate. *)
            clash 1 [ (-1, 0); (-1, -1); (-1, 1); (0, -1); (0, 1) ] 0;
            clash 1 [ (-1, 0); (-1, -1); (-1, 1); (1, -1); (1, 1) ] 1;
            clash 0 [ (1, 0); (1, -1); (1, 1); (-1, -1); (-1, 1) ] 0
        done
      done
    end
  done;
  List.rev !violations

let pp_violation (g : Graph.t) ppf = function
  | Edge_conflict { edge; net1; net2 } ->
    Format.fprintf ppf "edge %d shared by nets %d and %d (%a-%a)" edge net1 net2
      (Graph.pp_vertex g) g.edges.(edge).Graph.u (Graph.pp_vertex g)
      g.edges.(edge).Graph.v
  | Vertex_conflict { vertex; net1; net2 } ->
    Format.fprintf ppf "vertex %a touched by nets %d and %d" (Graph.pp_vertex g)
      vertex net1 net2
  | Disconnected { net; sink } ->
    Format.fprintf ppf "net %d does not reach sink %a" net (Graph.pp_vertex g)
      sink
  | Dangling { net; vertex } ->
    Format.fprintf ppf "net %d has a dangling stub at %a" net (Graph.pp_vertex g)
      vertex
  | Via_adjacency { site1; site2 } ->
    Format.fprintf ppf "adjacent vias in use (edges %d, %d)" site1 site2
  | Shape_side { rep; net } ->
    Format.fprintf ppf "via shape at vertex %d used twice on one side by net %d"
      rep net
  | Shape_blocking { rep; net; other; vertex } ->
    Format.fprintf ppf
      "via shape %d of net %d has net %d inside its footprint at %a" rep net
      other (Graph.pp_vertex g) vertex
  | Sadp_conflict { v1; side1; v2; side2 } ->
    Format.fprintf ppf "SADP EOL conflict: %a(side %d) vs %a(side %d)"
      (Graph.pp_vertex g) v1 side1 (Graph.pp_vertex g) v2 side2
  | Dsa_conflict { sites } ->
    Format.fprintf ppf "DSA conflict: via edges [%s] not %d-colorable"
      (String.concat "; " (List.map string_of_int sites))
      g.Graph.dsa_colors
