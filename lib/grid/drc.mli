(** Independent design-rule checker for decoded routing solutions.

    This module re-derives rule compliance {e geometrically} from the edge
    sets of a solution, without looking at the ILP: it is the test oracle
    showing that the formulation's constraints actually encode the rules.
    It is also used to audit the heuristic baseline router.

    Checked: arc exclusivity, per-net source-to-sink connectivity, no
    dangling stubs, vertex exclusivity (no two nets touching the same grid
    vertex), via adjacency restrictions, via-shape footprint blocking,
    SADP end-of-line conflicts, and (under DSA rules) k-colorability of
    the placed-via conflict graph. The SADP check uses the geometric
    notion of a line end (wire present on exactly one side, leaving
    through a via), which is implied by the formulation's conservative
    indicator. The DSA check is exact per conflict component
    (backtracking), so a clean verdict certifies a valid color
    assignment exists — which keeps the sweep's zero-Δ fast path sound
    under RULE12+. *)

type violation =
  | Edge_conflict of { edge : int; net1 : int; net2 : int }
  | Vertex_conflict of { vertex : int; net1 : int; net2 : int }
  | Disconnected of { net : int; sink : int }
  | Dangling of { net : int; vertex : int }
  | Via_adjacency of { site1 : int; site2 : int }
      (** edge ids of two conflicting vias *)
  | Shape_side of { rep : int; net : int }
      (** a via shape entered through two members on one side *)
  | Shape_blocking of { rep : int; net : int; other : int; vertex : int }
  | Sadp_conflict of { v1 : int; side1 : int; v2 : int; side2 : int }
  | Dsa_conflict of { sites : int list }
      (** via edge ids of a conflict component that is not colorable
          with the technology's DSA color count *)

val check :
  rules:Optrouter_tech.Rules.t ->
  Graph.t ->
  Route.solution ->
  violation list

val pp_violation :
  Graph.t -> Format.formatter -> violation -> unit
