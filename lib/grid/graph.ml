module Layer = Optrouter_tech.Layer
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Via_shape = Optrouter_tech.Via_shape

type vertex =
  | Grid of { x : int; y : int; z : int }
  | Via_node of { shape : Via_shape.t; x : int; y : int; z : int }
  | Super of { net : int; is_source : bool; pin_name : string }

type edge_kind =
  | Wire of int
  | Via of int
  | Shape_lower of int
  | Shape_upper of int
  | Access

type edge = {
  u : int;
  v : int;
  kind : edge_kind;
  cost : int;
  net_only : int option;
}

type net_ctx = { n_name : string; source : int; sinks : int array }

type via_rep = {
  rep : int;
  shape : Via_shape.t;
  anchor : int * int * int;
  lower_members : int array;
  upper_members : int array;
  lower_edges : int array;
  upper_edges : int array;
}

type t = {
  clip : Clip.t;
  layers : Layer.t array;
  nverts : int;
  vertex : vertex array;
  edges : edge array;
  adj : (int * int) array array;
  nets : net_ctx array;
  via_site : int option array;
  via_reps : via_rep array;
  access_sites : int list array;
      (** per z=0 grid vertex: access (V12) edges landing there *)
  blocked : bool array;
  dsa_colors : int;
  dsa_pitch : int;
}

let grid_vertex g ~x ~y ~z = ((z * g.clip.Clip.rows) + y) * g.clip.Clip.cols + x

let site_index g ~x ~y ~z = ((z * g.clip.Clip.rows) + y) * g.clip.Clip.cols + x

let num_edges g = Array.length g.edges
let num_nets g = Array.length g.nets

let other_end _g e v =
  if e.u = v then e.v
  else begin
    assert (e.v = v);
    e.u
  end

let pp_vertex g ppf i =
  match g.vertex.(i) with
  | Grid { x; y; z } -> Format.fprintf ppf "v(%d,%d,M%d)" x y (z + 2)
  | Via_node { shape; x; y; z } ->
    Format.fprintf ppf "%s(%d,%d,M%d)" shape.Via_shape.name x y (z + 2)
  | Super { net; is_source; pin_name } ->
    Format.fprintf ppf "%s[%s,net%d]" (if is_source then "src" else "snk")
      pin_name net

let pp_stats ppf g =
  Format.fprintf ppf "|V|=%d |E|=%d nets=%d via_reps=%d" g.nverts
    (Array.length g.edges) (Array.length g.nets) (Array.length g.via_reps)

let build ?(via_shapes = []) ?(single_vias = true) ?(bidirectional = false)
    ~tech ~rules (clip : Clip.t) =
  (match Clip.validate clip with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Graph.build: " ^ msg));
  let layers =
    Tech.stack tech rules |> Array.of_list
    |> (fun a -> Array.sub a 0 (min clip.layers (Array.length a)))
  in
  if Array.length layers < clip.layers then
    invalid_arg "Graph.build: clip uses more layers than the technology has";
  let cols = clip.cols and rows = clip.rows and nz = clip.layers in
  let ngrid = cols * rows * nz in
  let blocked = Array.make ngrid false in
  List.iter
    (fun (x, y, z) -> blocked.(((z * rows) + y) * cols + x) <- true)
    clip.obstructions;
  let gid x y z = ((z * rows) + y) * cols + x in
  (* Vertices beyond the grid are allocated on the fly. *)
  let extra = ref [] in
  let nverts = ref ngrid in
  let add_vertex v =
    let id = !nverts in
    extra := v :: !extra;
    incr nverts;
    id
  in
  let edges = ref [] in
  let nedges = ref 0 in
  let add_edge ?net_only u v kind cost =
    let id = !nedges in
    edges := { u; v; kind; cost; net_only } :: !edges;
    incr nedges;
    id
  in
  let usable x y z = not blocked.(gid x y z) in
  (* Wire edges along each layer's preferred direction (plus the other
     direction when the bidirectional ablation is on). *)
  for z = 0 to nz - 1 do
    let dir = layers.(z).Layer.dir in
    let horizontal = dir = Layer.Horizontal in
    if horizontal || bidirectional then
      for y = 0 to rows - 1 do
        for x = 0 to cols - 2 do
          if usable x y z && usable (x + 1) y z then
            ignore (add_edge (gid x y z) (gid (x + 1) y z) (Wire z) 1)
        done
      done;
    if (not horizontal) || bidirectional then
      for x = 0 to cols - 1 do
        for y = 0 to rows - 2 do
          if usable x y z && usable x (y + 1) z then
            ignore (add_edge (gid x y z) (gid x (y + 1) z) (Wire z) 1)
        done
      done
  done;
  (* Single-site vias at every stacked pair of usable vertices. *)
  let via_site = Array.make (cols * rows * max 1 (nz - 1)) None in
  if single_vias then
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          if usable x y z && usable x y (z + 1) then begin
            let id =
              add_edge (gid x y z) (gid x y (z + 1)) (Via z) tech.Tech.via_weight
            in
            via_site.(((z * rows) + y) * cols + x) <- Some id
          end
        done
      done
    done;
  (* Multi-site via shapes: a representative vertex tied to all member
     vertices on both layers. The full shape cost sits on the lower edges,
     so any route through the representative pays it exactly once. *)
  let via_reps = ref [] in
  List.iter
    (fun (shape : Via_shape.t) ->
      for z = 0 to nz - 2 do
        for y = 0 to rows - shape.height do
          for x = 0 to cols - shape.width do
            let sites = Via_shape.sites shape in
            let ok =
              List.for_all
                (fun (dx, dy) ->
                  usable (x + dx) (y + dy) z && usable (x + dx) (y + dy) (z + 1))
                sites
            in
            if ok then begin
              let rep = add_vertex (Via_node { shape; x; y; z }) in
              let lower_members =
                List.map (fun (dx, dy) -> gid (x + dx) (y + dy) z) sites
              in
              let upper_members =
                List.map (fun (dx, dy) -> gid (x + dx) (y + dy) (z + 1)) sites
              in
              let lower_edges =
                List.map
                  (fun m -> add_edge m rep (Shape_lower z) shape.cost)
                  lower_members
              in
              let upper_edges =
                List.map (fun m -> add_edge rep m (Shape_upper z) 0) upper_members
              in
              via_reps :=
                {
                  rep;
                  shape;
                  anchor = (x, y, z);
                  lower_members = Array.of_list lower_members;
                  upper_members = Array.of_list upper_members;
                  lower_edges = Array.of_list lower_edges;
                  upper_edges = Array.of_list upper_edges;
                }
                :: !via_reps
            end
          done
        done
      done)
    via_shapes;
  (* Virtual pin terminals: a supersource for each net's first pin and one
     supersink per remaining pin, attached to every access point. *)
  let nets =
    List.mapi
      (fun k (net : Clip.net) ->
        match net.pins with
        | [] | [ _ ] -> assert false (* validate rejects these *)
        | src :: sink_pins ->
          let attach pin is_source =
            let s = add_vertex (Super { net = k; is_source; pin_name = pin.Clip.p_name }) in
            List.iter
              (fun (x, y) ->
                if usable x y 0 then
                  ignore (add_edge ~net_only:k s (gid x y 0) Access 0))
              pin.Clip.access;
            s
          in
          let source = attach src true in
          let sinks = List.map (fun pin -> attach pin false) sink_pins in
          { n_name = net.n_name; source; sinks = Array.of_list sinks })
      clip.nets
  in
  let vertex = Array.make !nverts (Grid { x = 0; y = 0; z = 0 }) in
  for z = 0 to nz - 1 do
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        vertex.(gid x y z) <- Grid { x; y; z }
      done
    done
  done;
  List.iteri
    (fun i v -> vertex.(!nverts - 1 - i) <- v)
    !extra;
  let edges = Array.of_list (List.rev !edges) in
  let adj_lists = Array.make !nverts [] in
  Array.iteri
    (fun id e ->
      adj_lists.(e.u) <- (id, e.v) :: adj_lists.(e.u);
      adj_lists.(e.v) <- (id, e.u) :: adj_lists.(e.v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) adj_lists in
  let access_sites = Array.make (cols * rows) [] in
  Array.iteri
    (fun id e ->
      match e.kind with
      | Access ->
        let grid_end = if e.u < ngrid then e.u else e.v in
        if grid_end < cols * rows then
          access_sites.(grid_end) <- id :: access_sites.(grid_end)
      | Wire _ | Via _ | Shape_lower _ | Shape_upper _ -> ())
    edges;
  let blocked_full = Array.make !nverts false in
  Array.blit blocked 0 blocked_full 0 ngrid;
  {
    clip;
    layers;
    nverts = !nverts;
    vertex;
    edges;
    adj;
    nets = Array.of_list nets;
    via_site;
    via_reps = Array.of_list (List.rev !via_reps);
    access_sites;
    blocked = blocked_full;
    dsa_colors = Tech.dsa_colors tech;
    dsa_pitch = Tech.dsa_pitch_tracks tech;
  }
