(** The routing graph G = (V, A) of Section 3.

    Vertices are grid points (column, row, layer), via-shape representative
    vertices (Section 3.2, "Via shape"), and one virtual supersource /
    supersink per pin (Section 3.2, "Pin shape"). Edges are stored
    undirected; the ILP formulation introduces one arc variable per
    direction. Costs are integers: wire edges cost 1 per track step, via
    edges carry the via weight, pin access edges are free (they stand for
    the V12 cut below the routing stack, which every correct routing pays
    identically). *)

type vertex =
  | Grid of { x : int; y : int; z : int }
  | Via_node of { shape : Optrouter_tech.Via_shape.t; x : int; y : int; z : int }
      (** representative vertex of a multi-site via whose lower layer is [z],
          anchored at its minimum corner (x, y) *)
  | Super of { net : int; is_source : bool; pin_name : string }

type edge_kind =
  | Wire of int  (** in-layer segment on layer index [z] *)
  | Via of int  (** single-site via between layers [z] and [z+1] *)
  | Shape_lower of int  (** via-shape edge to a lower-layer member; [z] *)
  | Shape_upper of int  (** via-shape edge to an upper-layer member; [z+1] *)
  | Access  (** supersource/supersink attachment *)

type edge = {
  u : int;
  v : int;
  kind : edge_kind;
  cost : int;
  net_only : int option;  (** [Some k]: only net [k] may route through *)
}

(** Context of one multi-pin net: its virtual terminals in the graph. *)
type net_ctx = {
  n_name : string;
  source : int;  (** supersource vertex *)
  sinks : int array;  (** supersink vertices, one per sink pin *)
}

(** A via-shape instance: the representative vertex plus its member edges,
    needed by the via-shape constraints (5). *)
type via_rep = {
  rep : int;
  shape : Optrouter_tech.Via_shape.t;
  anchor : int * int * int;
  lower_members : int array;
  upper_members : int array;
  lower_edges : int array;  (** edge ids rep<->lower member *)
  upper_edges : int array;
}

type t = {
  clip : Clip.t;
  layers : Optrouter_tech.Layer.t array;
  nverts : int;
  vertex : vertex array;
  edges : edge array;
  adj : (int * int) array array;  (** vertex -> [(edge id, other endpoint)] *)
  nets : net_ctx array;
  via_site : int option array;
      (** single-via edge id at grid position (x, y, z), or [None];
          indexed by {!site_index} *)
  via_reps : via_rep array;
  access_sites : int list array;
      (** access (V12) edge ids landing on each z=0 grid vertex, indexed
          by [y * cols + x]. Pin access consumes a real V12 via, so via
          adjacency restrictions apply between access points too — the
          mechanism behind the paper's N7-9T rule exclusions. *)
  blocked : bool array;  (** grid vertices removed by obstructions *)
  dsa_colors : int;
      (** technology's DSA assembly colors, always populated; only
          consulted when the rules being formulated/checked have
          [Rules.dsa] set *)
  dsa_pitch : int;
      (** Chebyshev conflict distance (tracks) for DSA via coloring *)
}

(** Grid vertex id of (x, y, z); ids of grid vertices precede all others. *)
val grid_vertex : t -> x:int -> y:int -> z:int -> int

(** Index into [via_site] for the via between layers [z] and [z+1] at
    (x, y). *)
val site_index : t -> x:int -> y:int -> z:int -> int

val num_edges : t -> int
val num_nets : t -> int

(** [other_end g e v] is the endpoint of edge [e] that is not [v]. *)
val other_end : t -> edge -> int -> int

(** Build the routing graph for a clip under a rule configuration.

    [via_shapes] lists additional multi-site via shapes to instantiate on
    every via layer (the single-site via is always present unless
    [single_vias] is [false]). [bidirectional] adds the non-preferred
    wire direction on every layer (the paper's layers are always
    unidirectional; this exists for ablation). *)
val build :
  ?via_shapes:Optrouter_tech.Via_shape.t list ->
  ?single_vias:bool ->
  ?bidirectional:bool ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t ->
  Clip.t ->
  t

val pp_vertex : t -> Format.formatter -> int -> unit
val pp_stats : Format.formatter -> t -> unit
