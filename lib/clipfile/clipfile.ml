module Clip = Optrouter_grid.Clip
module Rect = Optrouter_geom.Rect

let pp ppf (c : Clip.t) =
  Format.fprintf ppf "clip %s@." c.Clip.c_name;
  Format.fprintf ppf "tech %s@." c.Clip.tech_name;
  Format.fprintf ppf "size %d %d %d@." c.Clip.cols c.Clip.rows c.Clip.layers;
  List.iter
    (fun (x, y, z) -> Format.fprintf ppf "obs %d %d %d@." x y z)
    c.Clip.obstructions;
  List.iter
    (fun (net : Clip.net) ->
      Format.fprintf ppf "net %s@." net.Clip.n_name;
      List.iter
        (fun (pin : Clip.pin) ->
          Format.fprintf ppf "pin %s" pin.Clip.p_name;
          (match pin.Clip.shape with
          | Some r ->
            Format.fprintf ppf " shape %d %d %d %d" r.Rect.xlo r.Rect.ylo
              r.Rect.xhi r.Rect.yhi
          | None -> ());
          Format.fprintf ppf " access";
          List.iter (fun (x, y) -> Format.fprintf ppf " %d,%d" x y) pin.Clip.access;
          Format.fprintf ppf "@.")
        net.Clip.pins;
      Format.fprintf ppf "endnet@.")
    c.Clip.nets;
  Format.fprintf ppf "endclip@."

let to_string c = Format.asprintf "%a" pp c

type parse_state = {
  mutable name : string;
  mutable tech : string;
  mutable dims : (int * int * int) option;
  mutable obs : (int * int * int) list;
  mutable nets : Clip.net list;
  mutable cur_net : string option;
  mutable cur_pins : Clip.pin list;
}

let fresh () =
  {
    name = "clip";
    tech = "N28-12T";
    dims = None;
    obs = [];
    nets = [];
    cur_net = None;
    cur_pins = [];
  }

let of_string s =
  let ( let* ) = Result.bind in
  let err line fmt = Format.kasprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt in
  let lines = String.split_on_char '\n' s in
  let clips = ref [] in
  let st = ref (fresh ()) in
  let parse_int line tok =
    match int_of_string_opt tok with
    | Some v -> Ok v
    | None -> err line "expected integer, got %S" tok
  in
  let parse_access line tok =
    match String.split_on_char ',' tok with
    | [ xs; ys ] ->
      let* x = parse_int line xs in
      let* y = parse_int line ys in
      Ok (x, y)
    | _ -> err line "expected x,y access point, got %S" tok
  in
  let finish_clip line =
    let st' = !st in
    match st'.dims with
    | None -> err line "endclip before size"
    | Some (cols, rows, layers) ->
      let clip =
        Clip.make ~name:st'.name ~tech_name:st'.tech
          ~obstructions:(List.rev st'.obs) ~cols ~rows ~layers
          (List.rev st'.nets)
      in
      clips := clip :: !clips;
      st := fresh ();
      Ok ()
  in
  let rec go line_no = function
    | [] ->
      if !st.cur_net <> None then err line_no "unterminated net"
      else Ok (List.rev !clips)
    | line :: rest -> (
      let line_no = line_no + 1 in
      let trimmed = String.trim line in
      let tokens =
        String.split_on_char ' ' trimmed |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | [] -> go line_no rest
      | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> go line_no rest
      | [ "clip"; name ] ->
        !st.name <- name;
        go line_no rest
      | [ "tech"; tech ] ->
        !st.tech <- tech;
        go line_no rest
      | [ "size"; c; r; l ] ->
        let* cols = parse_int line_no c in
        let* rows = parse_int line_no r in
        let* layers = parse_int line_no l in
        !st.dims <- Some (cols, rows, layers);
        go line_no rest
      | [ "obs"; x; y; z ] ->
        let* x = parse_int line_no x in
        let* y = parse_int line_no y in
        let* z = parse_int line_no z in
        !st.obs <- (x, y, z) :: !st.obs;
        go line_no rest
      | [ "net"; name ] ->
        if !st.cur_net <> None then err line_no "nested net"
        else begin
          !st.cur_net <- Some name;
          !st.cur_pins <- [];
          go line_no rest
        end
      | "pin" :: name :: args ->
        if !st.cur_net = None then err line_no "pin outside net"
        else begin
          let* shape, access_toks =
            match args with
            | "shape" :: xlo :: ylo :: xhi :: yhi :: "access" :: aps ->
              let* xlo = parse_int line_no xlo in
              let* ylo = parse_int line_no ylo in
              let* xhi = parse_int line_no xhi in
              let* yhi = parse_int line_no yhi in
              Ok (Some (Rect.make ~xlo ~ylo ~xhi ~yhi), aps)
            | "access" :: aps -> Ok (None, aps)
            | _ -> err line_no "malformed pin line"
          in
          let* access =
            List.fold_left
              (fun acc tok ->
                let* acc = acc in
                let* p = parse_access line_no tok in
                Ok (p :: acc))
              (Ok []) access_toks
          in
          !st.cur_pins <-
            { Clip.p_name = name; access = List.rev access; shape }
            :: !st.cur_pins;
          go line_no rest
        end
      | [ "endnet" ] -> (
        match !st.cur_net with
        | None -> err line_no "endnet outside net"
        | Some name ->
          !st.nets <-
            { Clip.n_name = name; pins = List.rev !st.cur_pins } :: !st.nets;
          !st.cur_net <- None;
          go line_no rest)
      | [ "endclip" ] ->
        if !st.cur_net <> None then err line_no "endclip inside net"
        else
          let* () = finish_clip line_no in
          go line_no rest
      | tok :: _ -> err line_no "unknown directive %S" tok)
  in
  go 0 lines

let one_of_string s =
  match of_string s with
  | Error _ as e -> e
  | Ok [ clip ] -> Ok clip
  | Ok [] -> Error "no clip in input"
  | Ok clips ->
    Error (Printf.sprintf "expected exactly one clip, got %d" (List.length clips))

let write_file path clips =
  Optrouter_report.Report.write_atomic path
    (String.concat "" (List.map to_string clips))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
