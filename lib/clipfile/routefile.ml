module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Route = Optrouter_grid.Route
module Via_shape = Optrouter_tech.Via_shape

let coords (g : Graph.t) v =
  match g.Graph.vertex.(v) with
  | Graph.Grid { x; y; z } -> Some (x, y, z)
  | Graph.Via_node _ | Graph.Super _ -> None

let pp (g : Graph.t) ppf (sol : Route.solution) =
  Format.fprintf ppf "route %s tech %s cost %d wirelength %d vias %d@."
    g.Graph.clip.Clip.c_name g.Graph.clip.Clip.tech_name sol.Route.metrics.cost
    sol.Route.metrics.wirelength sol.Route.metrics.vias;
  Array.iter
    (fun (r : Route.net_route) ->
      Format.fprintf ppf "net %s@." g.Graph.nets.(r.Route.net).Graph.n_name;
      List.iter
        (fun gid ->
          let e = g.Graph.edges.(gid) in
          match e.Graph.kind with
          | Graph.Wire z -> (
            match (coords g e.Graph.u, coords g e.Graph.v) with
            | Some (x1, y1, _), Some (x2, y2, _) ->
              Format.fprintf ppf "  wire M%d %d %d -> %d %d@." (z + 2) x1 y1 x2
                y2
            | _, _ -> ())
          | Graph.Via z -> (
            match coords g e.Graph.u with
            | Some (x, y, _) ->
              Format.fprintf ppf "  via V%d%d %d %d@." (z + 2) (z + 3) x y
            | None -> ())
          | Graph.Shape_lower z -> (
            (* the lower member edge carries the instance; report the
               anchor and the shape's footprint *)
            match g.Graph.vertex.(e.Graph.v) with
            | Graph.Via_node { shape; x; y; _ } ->
              Format.fprintf ppf "  via V%d%d %dx%d %d %d@." (z + 2) (z + 3)
                shape.Via_shape.width shape.Via_shape.height x y
            | Graph.Grid _ | Graph.Super _ -> ())
          | Graph.Shape_upper _ -> ()
          | Graph.Access -> (
            let pt =
              match (coords g e.Graph.u, coords g e.Graph.v) with
              | Some p, _ | _, Some p -> Some p
              | None, None -> None
            in
            match pt with
            | Some (x, y, _) -> Format.fprintf ppf "  access %d %d@." x y
            | None -> ()))
        r.Route.edges;
      Format.fprintf ppf "endnet@.")
    sol.Route.routes;
  Format.fprintf ppf "endroute@."

let to_string g sol = Format.asprintf "%a" (pp g) sol

let write_file path g sol =
  Optrouter_report.Report.write_atomic path (to_string g sol)
