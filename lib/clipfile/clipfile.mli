(** Textual clip interchange format.

    The paper moves clips between its OpenAccess/LEF/DEF environment and
    the router; this project uses a small self-describing text format
    instead, so clips can be saved, hand-edited and replayed from the CLI:

    {v
    # comment
    clip <name>
    tech <tech-name>
    size <cols> <rows> <layers>
    obs <x> <y> <z>
    net <name>
    pin <name> [shape <xlo> <ylo> <xhi> <yhi>] access <x>,<y> ...
    endnet
    endclip
    v}

    Multiple clips may appear in one file. [to_string]/[of_string] round-
    trip exactly. *)

val pp : Format.formatter -> Optrouter_grid.Clip.t -> unit
val to_string : Optrouter_grid.Clip.t -> string

(** [of_string s] parses every clip in [s]. *)
val of_string : string -> (Optrouter_grid.Clip.t list, string) Result.t

(** [one_of_string s] parses [s] and requires exactly one clip — the
    shape of a serve request body. *)
val one_of_string : string -> (Optrouter_grid.Clip.t, string) Result.t

(** Atomic (see {!Optrouter_report.Report.write_atomic}). *)
val write_file : string -> Optrouter_grid.Clip.t list -> unit
val read_file : string -> (Optrouter_grid.Clip.t list, string) Result.t
