(* [float_of_int max_int] rounds up to 2^62, which is the first value
   strictly above every representable [int]; everything below it converts
   exactly. [min_int] = -2^62 is itself exact. So the comparisons below
   are conservative in exactly the right direction. *)
let convert ~who f =
  if Float.is_nan f then invalid_arg (who ^ ": NaN");
  if f >= float_of_int max_int then max_int
  else if f <= float_of_int min_int then min_int
  else int_of_float f

let floor f = convert ~who:"Round.floor" (Float.floor f)
let ceil f = convert ~who:"Round.ceil" (Float.ceil f)
let nearest f = convert ~who:"Round.nearest" (Float.round f)
let trunc f = convert ~who:"Round.trunc" (Float.trunc f)
