(** Safe float-to-int conversions.

    [int_of_float] is undefined behaviour for NaN and for values outside
    the native [int] range, and it silently truncates toward zero — three
    traps that have each produced real bugs in geometry and solver code
    (see the [Milp.most_fractional] fix). These helpers make the rounding
    direction explicit, clamp overflowing values to [min_int]/[max_int]
    and raise [Invalid_argument] on NaN. *)

(** Largest integer <= [f]. *)
val floor : float -> int

(** Smallest integer >= [f]. *)
val ceil : float -> int

(** Nearest integer, half away from zero (the [Float.round] convention). *)
val nearest : float -> int

(** Truncation toward zero — an explicit, checked [int_of_float]. *)
val trunc : float -> int
