module Graph = Optrouter_grid.Graph
module Clip = Optrouter_grid.Clip
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc
module Rules = Optrouter_tech.Rules
module Pool = Optrouter_exec.Pool
module Pqueue = Optrouter_maze.Pqueue
module Maze = Optrouter_maze.Maze
module Log = Optrouter_report.Report.Log

type params = {
  max_iters : int;
  time_limit_s : float option;
  jobs : int;
  round_every : int;
  rip_up_rounds : int;
  gap_target : float;
  dp_sink_cap : int;
  vertex_multipliers : bool;
}

let default_params =
  {
    max_iters = 150;
    time_limit_s = Some 60.0;
    jobs = 1;
    round_every = 20;
    rip_up_rounds = 6;
    gap_target = 0.0;
    dp_sink_cap = 8;
    vertex_multipliers = true;
  }

let make_params ?(max_iters = default_params.max_iters)
    ?(time_limit_s = default_params.time_limit_s) ?(jobs = default_params.jobs)
    ?(round_every = default_params.round_every)
    ?(rip_up_rounds = default_params.rip_up_rounds)
    ?(gap_target = default_params.gap_target)
    ?(dp_sink_cap = default_params.dp_sink_cap)
    ?(vertex_multipliers = default_params.vertex_multipliers) () =
  {
    max_iters;
    time_limit_s;
    jobs;
    round_every;
    rip_up_rounds;
    gap_target;
    dp_sink_cap;
    vertex_multipliers;
  }

type iter_stat = {
  it : int;
  dual : float;
  best_dual : float;
  primal : int option;
  step : float;
  mult_norm : float;
  busy_s : float;
}

type t = {
  solution : Route.solution option;
  dual_bound : float;
  unreachable : bool;
  exact_pricing : bool;
  iterations : int;
  gap : float option;
  multiplier_norm : float;
  busy_s : float;
  wall_s : float;
  rounding_attempts : int;
  rip_ups : int;
  workers : int;
  trace : iter_stat list;
}

let allowed_for (g : Graph.t) k gid =
  match g.Graph.edges.(gid).Graph.net_only with
  | None -> true
  | Some k' -> k = k'

(* ------------------------------------------------------------------ *)
(* Reachability: the one infeasibility this mode can prove             *)
(* ------------------------------------------------------------------ *)

let reachable (g : Graph.t) =
  let ok = ref true in
  Array.iteri
    (fun k (net : Graph.net_ctx) ->
      if !ok then begin
        let seen = Array.make g.Graph.nverts false in
        seen.(net.Graph.source) <- true;
        let stack = ref [ net.Graph.source ] in
        let rec drain () =
          match !stack with
          | [] -> ()
          | v :: rest ->
            stack := rest;
            Array.iter
              (fun (gid, other) ->
                if allowed_for g k gid && not seen.(other) then begin
                  seen.(other) <- true;
                  stack := other :: !stack
                end)
              g.Graph.adj.(v);
            drain ()
        in
        drain ();
        if Array.exists (fun sv -> not seen.(sv)) net.Graph.sinks then ok := false
      end)
    g.Graph.nets;
  !ok

(* ------------------------------------------------------------------ *)
(* Multiplier-priced per-net subproblems                               *)
(* ------------------------------------------------------------------ *)

(* Node-and-edge-weighted Dijkstra relaxation of [dist] in place: [dist]
   holds the initial labels (infinity elsewhere), [pred] records the
   arrival edge of every improved vertex. The vertex price of a label's
   own vertex is already included in the label; relaxing u -> v pays
   [eprice] of the edge plus [vprice.(v)]. *)
let dijkstra (g : Graph.t) ~allowed ~eprice ~(vprice : float array) dist pred =
  let q = Pqueue.create () in
  Array.iteri (fun v d -> if d < infinity then Pqueue.push q d v) dist;
  while not (Pqueue.is_empty q) do
    let d, v = Pqueue.pop q in
    if d <= dist.(v) then
      Array.iter
        (fun (gid, other) ->
          if allowed gid then begin
            let nd = d +. eprice.(gid) +. vprice.(other) in
            if nd < dist.(other) then begin
              dist.(other) <- nd;
              pred.(other) <- gid;
              Pqueue.push q nd other
            end
          end)
        g.Graph.adj.(v)
  done

(* Exact node-weighted Steiner tree over the net's allowed edges:
   Dreyfus-Wagner dynamic program over sink subsets. [dp.(mask).(v)] is
   the cheapest tree spanning the sinks in [mask] plus [v], vertex
   prices counted once per tree vertex. Arrival bookkeeping: [via] >= 0
   means "came over that edge within the same mask", otherwise
   [sub_of] > 0 names the merged submask (0 = a singleton root). *)
let steiner_exact (g : Graph.t) ~allowed ~eprice ~vprice
    (net : Graph.net_ctx) =
  let n = g.Graph.nverts in
  let s = Array.length net.Graph.sinks in
  let full = (1 lsl s) - 1 in
  let dp = Array.init (full + 1) (fun _ -> Array.make n infinity) in
  let via = Array.init (full + 1) (fun _ -> Array.make n (-1)) in
  let sub_of = Array.init (full + 1) (fun _ -> Array.make n 0) in
  for i = 0 to s - 1 do
    let m = 1 lsl i in
    let dm = dp.(m) in
    dm.(net.Graph.sinks.(i)) <- vprice.(net.Graph.sinks.(i));
    dijkstra g ~allowed ~eprice ~vprice dm via.(m)
  done;
  for mask = 1 to full do
    if mask land (mask - 1) <> 0 then begin
      let d = dp.(mask) in
      let vm = via.(mask) in
      let sm = sub_of.(mask) in
      (* merge each unordered pair of complementary submasks once *)
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let other = mask lxor !sub in
        if !sub <= other then
          for v = 0 to n - 1 do
            if dp.(!sub).(v) < infinity && dp.(other).(v) < infinity then begin
              let cand = dp.(!sub).(v) +. dp.(other).(v) -. vprice.(v) in
              if cand < d.(v) then begin
                d.(v) <- cand;
                vm.(v) <- -1;
                sm.(v) <- !sub
              end
            end
          done;
        sub := (!sub - 1) land mask
      done;
      dijkstra g ~allowed ~eprice ~vprice d vm
    end
  done;
  let cost = dp.(full).(net.Graph.source) in
  if cost >= infinity then None
  else begin
    let edges = Hashtbl.create 32 in
    let rec collect mask v =
      let gid = via.(mask).(v) in
      if gid >= 0 then begin
        Hashtbl.replace edges gid ();
        collect mask (Graph.other_end g g.Graph.edges.(gid) v)
      end
      else begin
        let sub = sub_of.(mask).(v) in
        if sub > 0 then begin
          collect sub v;
          collect (mask lxor sub) v
        end
      end
    in
    collect full net.Graph.source;
    let tree =
      List.sort Int.compare (Hashtbl.fold (fun gid () acc -> gid :: acc) edges [])
    in
    Some (cost, tree, true)
  end

(* Beyond the DP cap: a valid per-net lower bound (the costliest of the
   source-to-sink shortest paths — every tree contains each such path)
   plus a greedy nearest-sink tree that only steers the sub-gradient. *)
let steiner_heuristic (g : Graph.t) ~allowed ~eprice ~vprice
    (net : Graph.net_ctx) =
  let n = g.Graph.nverts in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  dist.(net.Graph.source) <- vprice.(net.Graph.source);
  dijkstra g ~allowed ~eprice ~vprice dist pred;
  let lb =
    Array.fold_left
      (fun acc sv -> Float.max acc dist.(sv))
      0.0 net.Graph.sinks
  in
  if lb >= infinity then None
  else begin
    let in_tree = Array.make n false in
    in_tree.(net.Graph.source) <- true;
    let edges = Hashtbl.create 32 in
    let remaining = ref (Array.to_list net.Graph.sinks) in
    let failed = ref false in
    while (not !failed) && !remaining <> [] do
      let d2 = Array.make n infinity in
      let p2 = Array.make n (-1) in
      Array.iteri (fun v t -> if t then d2.(v) <- 0.0) in_tree;
      dijkstra g ~allowed ~eprice ~vprice d2 p2;
      let bestv = ref (-1) in
      let bestd = ref infinity in
      List.iter
        (fun sv ->
          if d2.(sv) < !bestd then begin
            bestd := d2.(sv);
            bestv := sv
          end)
        !remaining;
      if !bestv < 0 then failed := true
      else begin
        let rec back v =
          if not in_tree.(v) then begin
            in_tree.(v) <- true;
            let gid = p2.(v) in
            if gid >= 0 then begin
              Hashtbl.replace edges gid ();
              back (Graph.other_end g g.Graph.edges.(gid) v)
            end
          end
        in
        back !bestv;
        remaining := List.filter (fun t -> t <> !bestv) !remaining
      end
    done;
    let tree =
      List.sort Int.compare (Hashtbl.fold (fun gid () acc -> gid :: acc) edges [])
    in
    Some (lb, tree, false)
  end

let price_net (g : Graph.t) ~dp_sink_cap ~eprice ~vprice k =
  let net = g.Graph.nets.(k) in
  let allowed = allowed_for g k in
  if Array.length net.Graph.sinks = 0 then Some (0.0, [], true)
  else if Array.length net.Graph.sinks <= dp_sink_cap then
    steiner_exact g ~allowed ~eprice ~vprice net
  else steiner_heuristic g ~allowed ~eprice ~vprice net

(* ------------------------------------------------------------------ *)
(* Primal rounding: deterministic sequential routing with rip-up       *)
(* ------------------------------------------------------------------ *)

type rstate = {
  rg : Graph.t;
  rrules : Rules.t;
  edge_owner : int array;
  vertex_owner : int array;  (* grid vertices only *)
  pin_owner : int array;  (* per z=0 grid vertex: net owning an access point *)
  penalty : float array;  (* per edge, from violation-repair rounds *)
  bias_e : float array;  (* edge multipliers: congestion prices *)
  bias_v : float array;  (* grid-vertex multipliers *)
  rngrid : int;
}

let grid_coords st v =
  let cols = st.rg.Graph.clip.Clip.cols in
  let rows = st.rg.Graph.clip.Clip.rows in
  let z = v / (cols * rows) in
  let rem = v mod (cols * rows) in
  (rem mod cols, rem / cols, z)

(* A via may not land next to any already-placed via (own or foreign)
   under an adjacency restriction — same policy as the maze router. *)
let via_placement_ok st gid =
  let offsets () =
    Rules.blocked_neighbour_offsets st.rrules.Rules.via_restriction
  in
  let cols = st.rg.Graph.clip.Clip.cols in
  let rows = st.rg.Graph.clip.Clip.rows in
  match st.rg.Graph.edges.(gid).Graph.kind with
  | Graph.Wire _ | Graph.Shape_lower _ | Graph.Shape_upper _ -> true
  | Graph.Access -> (
    let offsets = offsets () in
    offsets = []
    ||
    let e = st.rg.Graph.edges.(gid) in
    let grid_end = if e.Graph.u < st.rngrid then e.Graph.u else e.Graph.v in
    if grid_end >= cols * rows then true
    else
      let x, y, _ = grid_coords st grid_end in
      List.for_all
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' < 0 || x' >= cols || y' < 0 || y' >= rows then true
          else
            List.for_all
              (fun other -> st.edge_owner.(other) < 0)
              st.rg.Graph.access_sites.((y' * cols) + x'))
        offsets)
  | Graph.Via _ ->
    let offsets = offsets () in
    offsets = []
    ||
    let x, y, z = grid_coords st st.rg.Graph.edges.(gid).Graph.u in
    List.for_all
      (fun (dx, dy) ->
        let x' = x + dx and y' = y + dy in
        if x' < 0 || x' >= cols || y' < 0 || y' >= rows then true
        else
          match st.rg.Graph.via_site.(((z * rows) + y') * cols + x') with
          | None -> true
          | Some other -> st.edge_owner.(other) < 0)
      offsets

let edge_usable st k gid dst =
  allowed_for st.rg k gid
  && st.edge_owner.(gid) < 0
  && (dst >= st.rngrid
     || st.vertex_owner.(dst) < 0
     || st.vertex_owner.(dst) = k)
  && (dst >= Array.length st.pin_owner
     || st.pin_owner.(dst) < 0
     || st.pin_owner.(dst) = k)
  && via_placement_ok st gid

(* Multi-source Dijkstra from the net's committed tree to the nearest
   unreached sink, priced by base cost + repair penalty + multipliers. *)
let rsearch st k sources targets =
  let n = st.rg.Graph.nverts in
  let dist = Array.make n infinity in
  let prev_edge = Array.make n (-1) in
  let q = Pqueue.create () in
  List.iter
    (fun v ->
      dist.(v) <- 0.0;
      Pqueue.push q 0.0 v)
    sources;
  let target_set = Hashtbl.create 4 in
  List.iter (fun t -> Hashtbl.replace target_set t ()) targets;
  let found = ref None in
  (try
     while not (Pqueue.is_empty q) do
       let d, v = Pqueue.pop q in
       if d <= dist.(v) then begin
         if Hashtbl.mem target_set v then begin
           found := Some v;
           raise Exit
         end;
         Array.iter
           (fun (gid, other) ->
             if edge_usable st k gid other then begin
               let node_bias =
                 if other < st.rngrid then st.bias_v.(other) else 0.0
               in
               let nd =
                 d
                 +. float_of_int st.rg.Graph.edges.(gid).Graph.cost
                 +. st.penalty.(gid) +. st.bias_e.(gid) +. node_bias
               in
               if nd < dist.(other) then begin
                 dist.(other) <- nd;
                 prev_edge.(other) <- gid;
                 Pqueue.push q nd other
               end
             end)
           st.rg.Graph.adj.(v)
       end
     done
   with Exit -> ());
  match !found with
  | None -> None
  | Some t ->
    let rec backtrack v acc =
      let gid = prev_edge.(v) in
      if gid < 0 then acc
      else backtrack (Graph.other_end st.rg st.rg.Graph.edges.(gid) v) (gid :: acc)
    in
    Some (t, backtrack t [])

let rcommit st k edges =
  List.iter
    (fun gid ->
      st.edge_owner.(gid) <- k;
      let e = st.rg.Graph.edges.(gid) in
      if e.Graph.u < st.rngrid then st.vertex_owner.(e.Graph.u) <- k;
      if e.Graph.v < st.rngrid then st.vertex_owner.(e.Graph.v) <- k)
    edges

let rrip st k =
  Array.iteri
    (fun gid owner -> if owner = k then st.edge_owner.(gid) <- -1)
    st.edge_owner;
  Array.iteri
    (fun v owner -> if owner = k then st.vertex_owner.(v) <- -1)
    st.vertex_owner

let rroute_net st k =
  let net = st.rg.Graph.nets.(k) in
  let tree_vertices = ref [ net.Graph.source ] in
  let tree_edges = ref [] in
  let remaining = ref (Array.to_list net.Graph.sinks) in
  let ok = ref true in
  while !ok && !remaining <> [] do
    match rsearch st k !tree_vertices !remaining with
    | None -> ok := false
    | Some (reached, path) ->
      rcommit st k path;
      tree_edges := path @ !tree_edges;
      List.iter
        (fun gid ->
          let e = st.rg.Graph.edges.(gid) in
          tree_vertices := e.Graph.u :: e.Graph.v :: !tree_vertices)
        path;
      remaining := List.filter (fun t -> t <> reached) !remaining
  done;
  if !ok then Some !tree_edges
  else begin
    rrip st k;
    None
  end

(* Edges to penalise so a reroute avoids re-creating a violation, and
   the nets to hold responsible — the maze router's repair policy. *)
let involved_edges st viol =
  let wire_edges_at v =
    Array.to_list st.rg.Graph.adj.(v)
    |> List.filter_map (fun (gid, _) ->
           match st.rg.Graph.edges.(gid).Graph.kind with
           | Graph.Wire _ -> Some gid
           | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _
           | Graph.Access ->
             None)
  in
  let all_edges_at v = Array.to_list st.rg.Graph.adj.(v) |> List.map fst in
  match viol with
  | Drc.Sadp_conflict { v1; v2; _ } -> wire_edges_at v1 @ wire_edges_at v2
  | Drc.Via_adjacency { site1; site2 } -> [ site1; site2 ]
  | Drc.Dsa_conflict { sites } -> sites
  | Drc.Vertex_conflict { vertex; _ } -> all_edges_at vertex
  | Drc.Shape_side { rep; _ } | Drc.Shape_blocking { rep; _ } -> all_edges_at rep
  | Drc.Edge_conflict _ | Drc.Disconnected _ | Drc.Dangling _ -> []

let nets_of_violation (sol : Route.solution) st viol =
  let owner_of_edge gid =
    match Route.uses_edge sol gid with Some k -> [ k ] | None -> []
  in
  match viol with
  | Drc.Edge_conflict { net1; net2; _ } | Drc.Vertex_conflict { net1; net2; _ }
    ->
    [ net1; net2 ]
  | Drc.Disconnected { net; _ } | Drc.Dangling { net; _ } -> [ net ]
  | Drc.Via_adjacency { site1; site2 } ->
    owner_of_edge site1 @ owner_of_edge site2
  | Drc.Dsa_conflict { sites } -> List.concat_map owner_of_edge sites
  | Drc.Shape_side { net; _ } -> [ net ]
  | Drc.Shape_blocking { net; other; _ } -> [ net; other ]
  | Drc.Sadp_conflict { v1; v2; _ } ->
    let owner v = if v < st.rngrid then st.vertex_owner.(v) else -1 in
    List.filter (fun k -> k >= 0) [ owner v1; owner v2 ]

(* One deterministic rounding attempt: route every net in [order] under
   multiplier pricing, then penalise-rip-up-reroute until the DRC is
   clean or the round budget runs out. Returns a certified solution. *)
let try_round (g : Graph.t) ~rules ~order ~bias_e ~bias_v ~rip_up_rounds
    rip_ups =
  let nnets = Array.length g.Graph.nets in
  let ngrid =
    g.Graph.clip.Clip.cols * g.Graph.clip.Clip.rows * g.Graph.clip.Clip.layers
  in
  let st =
    {
      rg = g;
      rrules = rules;
      edge_owner = Array.make (Graph.num_edges g) (-1);
      vertex_owner = Array.make ngrid (-1);
      pin_owner =
        (let owners =
           Array.make (g.Graph.clip.Clip.cols * g.Graph.clip.Clip.rows) (-1)
         in
         Array.iteri
           (fun v edges ->
             List.iter
               (fun gid ->
                 match g.Graph.edges.(gid).Graph.net_only with
                 | Some k -> owners.(v) <- k
                 | None -> ())
               edges)
           g.Graph.access_sites;
         owners);
      penalty = Array.make (Graph.num_edges g) 0.0;
      bias_e;
      bias_v;
      rngrid = ngrid;
    }
  in
  let routes = Array.make nnets None in
  let route_all () =
    let all_ok = ref true in
    Array.iter
      (fun k ->
        match rroute_net st k with
        | Some edges -> routes.(k) <- Some { Route.net = k; edges }
        | None -> all_ok := false)
      order;
    !all_ok
  in
  let solution_of () =
    let rs =
      Array.map
        (function Some r -> r | None -> { Route.net = 0; edges = [] })
        routes
    in
    { Route.routes = rs; metrics = Route.metrics_of g rs }
  in
  let all_ok = ref (route_all ()) in
  let clean = ref None in
  let round = ref 0 in
  let continue_repair = ref !all_ok in
  while !continue_repair && !round <= rip_up_rounds do
    incr round;
    let sol = solution_of () in
    match Drc.check ~rules g sol with
    | [] ->
      clean := Some sol;
      continue_repair := false
    | viols ->
      let guilty = ref [] in
      List.iter
        (fun viol ->
          List.iter
            (fun gid -> st.penalty.(gid) <- st.penalty.(gid) +. 8.0)
            (involved_edges st viol);
          guilty := nets_of_violation sol st viol @ !guilty)
        viols;
      let guilty = List.sort_uniq Int.compare !guilty in
      if guilty = [] || !round > rip_up_rounds then continue_repair := false
      else begin
        (* Rip everything: innocent nets' claims usually pin the guilty
           ones into the conflict; the penalties steer the reroute. *)
        rip_ups := !rip_ups + List.length guilty;
        Array.iter (fun k -> rrip st k) order;
        if not (route_all ()) then continue_repair := false
      end
  done;
  !clean

(* ------------------------------------------------------------------ *)
(* Sub-gradient loop                                                   *)
(* ------------------------------------------------------------------ *)

let empty_result ~unreachable ~wall_s =
  {
    solution = None;
    dual_bound = 0.0;
    unreachable;
    exact_pricing = true;
    iterations = 0;
    gap = None;
    multiplier_norm = 0.0;
    busy_s = 0.0;
    wall_s;
    rounding_attempts = 0;
    rip_ups = 0;
    workers = 1;
    trace = [];
  }

let norm2 a = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a

let solve ?(params = default_params) ?seed ~rules (g : Graph.t) =
  let t0 = Unix.gettimeofday () in
  if not (reachable g) then
    empty_result ~unreachable:true ~wall_s:(Unix.gettimeofday () -. t0)
  else begin
    let nnets = Array.length g.Graph.nets in
    let nedges = Graph.num_edges g in
    let ngrid =
      g.Graph.clip.Clip.cols * g.Graph.clip.Clip.rows
      * g.Graph.clip.Clip.layers
    in
    let jobs = max 1 params.jobs in
    let pool = Pool.create ~domains:jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    (* Price edges in the objective the caller asked for — the same
       coefficients Formulate puts on the e-binaries — so the dual bound
       and the ILP optimum live in the same units under via objectives. *)
    let cost_f =
      Array.map
        (fun (e : Graph.edge) ->
          let via =
            match e.Graph.kind with
            | Graph.Via _ | Graph.Shape_lower _ -> true
            | Graph.Wire _ | Graph.Shape_upper _ | Graph.Access -> false
          in
          Rules.objective_coeff rules.Rules.objective ~via ~cost:e.Graph.cost)
        g.Graph.edges
    in
    let obj_of (m : Route.metrics) =
      Rules.objective_value rules.Rules.objective ~wirelength:m.Route.wirelength
        ~vias:m.Route.vias ~cost:m.Route.cost
    in
    let lambda = Array.make nedges 0.0 in
    let mu = Array.make ngrid 0.0 in
    let exact_all = ref true in
    let have_dual = ref false in
    let best_raw = ref 0.0 in
    let best_sol = ref None in
    (match seed with
    | None -> ()
    | Some s -> (
      (* A clean seed is an incumbent (upper bound), never a proof. *)
      match Drc.check ~rules g s with
      | [] ->
        best_sol :=
          Some { Route.routes = s.Route.routes;
                 metrics = Route.metrics_of g s.Route.routes }
      | _ :: _ -> ()
      | exception _foreign_seed_exn -> ()));
    (* A maze-router incumbent seeds the upper bound: its solutions are
       DRC-clean or absent, and the Polyak step wants a finite UB. *)
    (match (Maze.route ~rules g).Maze.solution with
    | None -> ()
    | Some sol -> (
      match !best_sol with
      | Some (b : Route.solution)
        when obj_of b.Route.metrics <= obj_of sol.Route.metrics ->
        ()
      | Some _ | None -> best_sol := Some sol));
    let alpha = ref 2.0 in
    let no_improve = ref 0 in
    let busy_total = ref 0.0 in
    let rip_ups = ref 0 in
    let attempts = ref 0 in
    let trace = ref [] in
    let iters = ref 0 in
    let last_costs = Array.make (max nnets 1) 0.0 in
    let deadline = Option.map (fun s -> t0 +. s) params.time_limit_s in
    let over_deadline () =
      match deadline with
      | None -> false
      | Some d -> Unix.gettimeofday () > d
    in
    (* The integral ceil-lift is only valid when every objective
       coefficient is an integer (wirelength, via-count, integral via
       weights); a fractional [Via_weighted] keeps the raw dual. *)
    let lifted () =
      if not !have_dual then 0.0
      else if Rules.objective_integral rules.Rules.objective then
        Float.max 0.0 (Float.ceil (!best_raw -. 1e-6))
      else Float.max 0.0 !best_raw
    in
    let primal_cost () =
      Option.map (fun (s : Route.solution) -> s.Route.metrics.cost) !best_sol
    in
    let primal_obj () =
      Option.map (fun (s : Route.solution) -> obj_of s.Route.metrics) !best_sol
    in
    let closed () =
      match primal_obj () with
      | None -> false
      | Some p -> lifted () >= p -. (params.gap_target *. p) -. 1e-9
    in
    let attempt_round () =
      attempts := !attempts + 1;
      let order = Array.init nnets Fun.id in
      Array.sort
        (fun a b ->
          match Float.compare last_costs.(b) last_costs.(a) with
          | 0 -> Int.compare a b
          | c -> c)
        order;
      match
        try_round g ~rules ~order ~bias_e:lambda ~bias_v:mu
          ~rip_up_rounds:params.rip_up_rounds rip_ups
      with
      | None -> ()
      | Some sol -> (
        match !best_sol with
        | Some (b : Route.solution)
          when obj_of b.Route.metrics <= obj_of sol.Route.metrics ->
          ()
        | Some _ | None ->
          Log.debug ~src:"lagrangian" (fun () ->
              Printf.sprintf "rounded primal: cost=%d" sol.Route.metrics.cost);
          best_sol := Some sol)
    in
    let stop = ref false in
    while (not !stop) && !iters < params.max_iters do
      let it = !iters in
      let eprice =
        Array.init nedges (fun gid -> cost_f.(gid) +. lambda.(gid))
      in
      let vprice = Array.make g.Graph.nverts 0.0 in
      if params.vertex_multipliers then Array.blit mu 0 vprice 0 ngrid;
      let dp_sink_cap = params.dp_sink_cap in
      let price k =
        let s0 = Unix.gettimeofday () in
        let r = price_net g ~dp_sink_cap ~eprice ~vprice k in
        (r, Unix.gettimeofday () -. s0)
      in
      let results = Pool.map pool price (List.init nnets Fun.id) in
      let iter_busy = List.fold_left (fun acc (_, b) -> acc +. b) 0.0 results in
      busy_total := !busy_total +. iter_busy;
      (* Deterministic reduction in net order: identical at any width. *)
      let edge_use = Array.make nedges 0 in
      let vert_use = Array.make ngrid 0 in
      let vert_mark = Array.make g.Graph.nverts (-1) in
      let sum_costs = ref 0.0 in
      List.iteri
        (fun k (r, _) ->
          match r with
          | None -> () (* impossible after the reachability pre-check *)
          | Some (c, tree, exact) ->
            if not exact then exact_all := false;
            last_costs.(k) <- c;
            sum_costs := !sum_costs +. c;
            List.iter
              (fun gid ->
                edge_use.(gid) <- edge_use.(gid) + 1;
                let e = g.Graph.edges.(gid) in
                let touch v =
                  if v < ngrid && vert_mark.(v) <> k then begin
                    vert_mark.(v) <- k;
                    vert_use.(v) <- vert_use.(v) + 1
                  end
                in
                touch e.Graph.u;
                touch e.Graph.v)
              tree)
        results;
      let sum_l = Array.fold_left ( +. ) 0.0 lambda in
      let sum_m =
        if params.vertex_multipliers then Array.fold_left ( +. ) 0.0 mu
        else 0.0
      in
      let l = !sum_costs -. sum_l -. sum_m in
      if (not !have_dual) || l > !best_raw +. 1e-9 then begin
        best_raw := (if !have_dual then Float.max l !best_raw else l);
        have_dual := true;
        no_improve := 0
      end
      else begin
        incr no_improve;
        if !no_improve >= 8 then begin
          alpha := Float.max 1e-4 (!alpha *. 0.5);
          no_improve := 0
        end
      end;
      (* Projected sub-gradient step (Polyak): only active components —
         violated rows or positive multipliers — enter the norm. *)
      let gnorm2 = ref 0.0 in
      for gid = 0 to nedges - 1 do
        match g.Graph.edges.(gid).Graph.net_only with
        | Some _ -> ()
        | None ->
          if edge_use.(gid) > 1 || lambda.(gid) > 0.0 then begin
            let gv = float_of_int (edge_use.(gid) - 1) in
            gnorm2 := !gnorm2 +. (gv *. gv)
          end
      done;
      if params.vertex_multipliers then
        for v = 0 to ngrid - 1 do
          if vert_use.(v) > 1 || mu.(v) > 0.0 then begin
            let gv = float_of_int (vert_use.(v) - 1) in
            gnorm2 := !gnorm2 +. (gv *. gv)
          end
        done;
      let ub_est =
        match primal_obj () with
        | Some p -> p
        | None -> l +. Float.max 1.0 (0.1 *. Float.abs l)
      in
      let step =
        if !gnorm2 <= 0.0 then 0.0
        else Float.max 0.0 (!alpha *. (ub_est -. l) /. !gnorm2)
      in
      if step > 0.0 then begin
        for gid = 0 to nedges - 1 do
          match g.Graph.edges.(gid).Graph.net_only with
          | Some _ -> ()
          | None ->
            lambda.(gid) <-
              Float.max 0.0
                (lambda.(gid) +. (step *. float_of_int (edge_use.(gid) - 1)))
        done;
        if params.vertex_multipliers then
          for v = 0 to ngrid - 1 do
            mu.(v) <-
              Float.max 0.0
                (mu.(v) +. (step *. float_of_int (vert_use.(v) - 1)))
          done
      end;
      let mult_norm = sqrt (norm2 lambda +. norm2 mu) in
      iters := !iters + 1;
      if it = 0 || (it + 1) mod params.round_every = 0 then attempt_round ();
      trace :=
        {
          it;
          dual = l;
          best_dual = !best_raw;
          primal = primal_cost ();
          step;
          mult_norm;
          busy_s = iter_busy;
        }
        :: !trace;
      if closed () || over_deadline () then stop := true
    done;
    if not (closed ()) then attempt_round ();
    let dual_bound = lifted () in
    let gap =
      match primal_obj () with
      | None -> None
      | Some p when p <= 0.0 -> Some 0.0
      | Some p -> Some ((p -. dual_bound) /. p)
    in
    {
      solution = !best_sol;
      dual_bound;
      unreachable = false;
      exact_pricing = !exact_all;
      iterations = !iters;
      gap;
      multiplier_norm = sqrt (norm2 lambda +. norm2 mu);
      busy_s = !busy_total;
      wall_s = Unix.gettimeofday () -. t0;
      rounding_attempts = !attempts;
      rip_ups = !rip_ups;
      workers = Pool.domains pool;
      trace = List.rev !trace;
    }
  end
