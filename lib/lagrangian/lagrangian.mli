(** Lagrangian decomposition of the switchbox routing ILP (the
    sub-gradient parallel router of Agrawal et al., arXiv:1803.03885,
    adapted to the paper's rule-aware routing graph).

    The exact formulation couples nets only through shared capacity rows:
    arc exclusivity (one net per undirected edge) and vertex exclusivity
    (one net per grid vertex). Dualising those rows with multipliers
    [lambda >= 0] (edges) and [mu >= 0] (grid vertices) makes the
    relaxation separate into one independent minimum Steiner tree problem
    per net over the multiplier-priced graph:

    L(lambda, mu) = sum_k min_tree_k(cost + lambda + mu)
                    - sum lambda - sum mu  <=  ILP optimum.

    Every remaining coupling family (via adjacency, via-shape sides, SADP
    end-of-line, DSA coloring under RULE12+) is simply dropped from the
    relaxation, which keeps L(lambda, mu) a valid lower bound — dropping
    rows can only enlarge the feasible set. Rounded primal candidates are
    still certified by the full rule-aware [Drc.check], so the dropped
    families re-enter on the primal side.

    Per-net subproblems are solved {e exactly} (node-weighted
    Dreyfus-Wagner dynamic program over terminal subsets; plain Dijkstra
    for two-terminal nets) whenever the sink count is within
    [dp_sink_cap]; beyond the cap a valid per-net lower bound (longest
    source-to-sink shortest path) substitutes, so the dual bound stays
    valid at any fan-out. Edges are priced in the rules' objective
    ({!Optrouter_tech.Rules.objective_coeff}), matching the exact
    formulation. When every coefficient is integral (the default
    wirelength objective, via-count, integral via weights) the ILP
    optimum is integral too and the reported {!t.dual_bound} is lifted
    to [ceil] of the best raw dual value; fractional via weights keep
    the raw dual.

    The per-net pricing fans out over an {!Optrouter_exec.Pool} of
    [jobs] worker domains; results are reduced in net order, so the
    outcome is byte-identical for any [jobs] (the sweep's determinism
    contract). Primal feasibility comes from deterministic sequential
    rounding: nets are routed one at a time in the multiplier-priced
    graph with committed-net blocking, repaired by penalise-rip-up
    rounds, and certified by {!Optrouter_grid.Drc.check}; a final
    {!Optrouter_maze.Maze} attempt backstops the rounding. Solutions are
    feasible and DRC-certified but {e not} proven optimal — the gap
    against {!t.dual_bound} quantifies how far off they can be. *)

type params = {
  max_iters : int;  (** sub-gradient iterations (default 150) *)
  time_limit_s : float option;  (** wall deadline for the whole solve *)
  jobs : int;  (** per-net pricing worker domains (default 1) *)
  round_every : int;  (** rounding-attempt cadence in iterations *)
  rip_up_rounds : int;  (** repair rounds per rounding attempt *)
  gap_target : float;
      (** stop once (primal - dual) / primal <= target (default 0: stop
          only when the lifted dual bound meets the primal cost) *)
  dp_sink_cap : int;
      (** largest sink count priced exactly by the Steiner DP; larger
          nets fall back to a valid single-path lower bound (default 8) *)
  vertex_multipliers : bool;
      (** dualise the vertex-exclusivity rows too (default [true]; turn
          off when the exact model is built without them, or the bound
          is no longer comparable) *)
}

val default_params : params

val make_params :
  ?max_iters:int ->
  ?time_limit_s:float option ->
  ?jobs:int ->
  ?round_every:int ->
  ?rip_up_rounds:int ->
  ?gap_target:float ->
  ?dp_sink_cap:int ->
  ?vertex_multipliers:bool ->
  unit ->
  params

(** One sub-gradient iteration, for per-iteration telemetry. *)
type iter_stat = {
  it : int;
  dual : float;  (** raw L(lambda, mu) of this iteration *)
  best_dual : float;  (** best raw dual value so far *)
  primal : int option;
      (** best feasible routing's standard cost metric so far, if any
          (always the cost metric, even under via objectives) *)
  step : float;  (** sub-gradient step size used *)
  mult_norm : float;  (** multiplier 2-norm after the update *)
  busy_s : float;  (** summed per-net pricing time of the iteration *)
}

type t = {
  solution : Optrouter_grid.Route.solution option;
      (** best feasible routing, certified by [Drc.check]; [None] when
          every rounding attempt (and the maze backstop) failed *)
  dual_bound : float;
      (** lower bound on the ILP optimum in objective units, never
          negative: [ceil(max_it L - eps)] for integral objectives, the
          raw [max_it L] otherwise. 0 when no iteration completed. *)
  unreachable : bool;
      (** some net cannot reach a sink through its allowed edges at all:
          the ILP is infeasible by plain graph reachability (the only
          case this mode can prove) *)
  exact_pricing : bool;
      (** every net stayed within [dp_sink_cap], so each subproblem was
          priced exactly *)
  iterations : int;
  gap : float option;
      (** (primal - dual_bound) / primal in objective units, when a
          feasible routing was found (0 for a zero-objective primal) *)
  multiplier_norm : float;  (** final multiplier 2-norm *)
  busy_s : float;  (** summed per-net pricing work across iterations *)
  wall_s : float;
  rounding_attempts : int;
  rip_ups : int;  (** nets ripped up across all repair rounds *)
  workers : int;  (** pricing pool width actually used *)
  trace : iter_stat list;  (** per-iteration telemetry, oldest first *)
}

(** [solve ?params ?seed ~rules g] runs the sub-gradient loop on a built
    routing graph. [seed], when given and DRC-clean under [rules], is an
    initial feasible incumbent (an upper bound for the Polyak step and
    the starting [solution]); unlike the exact solver's fast path it
    carries {e no} optimality claim. Deterministic for fixed [params]
    modulo the wall deadline: identical results for any [jobs] width. *)
val solve :
  ?params:params ->
  ?seed:Optrouter_grid.Route.solution ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Graph.t ->
  t
