module Rect = Optrouter_geom.Rect
module Round = Optrouter_geom.Round
module Tech = Optrouter_tech.Tech
module Cells = Optrouter_cells.Cells

type profile = {
  pr_name : string;
  instance_count : int;
  period_ns : float;
  flop_share : float;
}

let aes =
  { pr_name = "AES"; instance_count = 13_500; period_ns = 1.2; flop_share = 0.12 }

let m0 =
  { pr_name = "M0"; instance_count = 9_200; period_ns = 2.2; flop_share = 0.22 }

type instance = {
  i_name : string;
  cell : Cells.t;
  col : int;
  band : int;
  flipped : bool;
}

type conn = { inst : int; pin : string }
type dnet = { dn_name : string; driver : conn; loads : conn list }

type t = {
  d_name : string;
  tech : Tech.t;
  profile : profile;
  target_util : float;
  width_cols : int;
  bands : int;
  instances : instance array;
  nets : dnet array;
  achieved_util : float;
}

(* Combinational mix: inverters and 2-input gates dominate, with a tail of
   complex gates, roughly matching a mapped netlist's histogram. *)
let comb_weights =
  [
    ("INVX1", 14);
    ("INVX2", 7);
    ("INVX4", 3);
    ("BUFX2", 7);
    ("BUFX4", 3);
    ("CLKBUFX3", 2);
    ("NAND2X1", 16);
    ("NOR2X1", 11);
    ("AND2X1", 5);
    ("OR2X1", 4);
    ("XOR2X1", 5);
    ("XNOR2X1", 3);
    ("NAND3X1", 4);
    ("NOR3X1", 3);
    ("AOI21X1", 7);
    ("OAI21X1", 6);
    ("AOI22X1", 3);
    ("OAI22X1", 3);
    ("MUX2X1", 4);
    ("ADDHX1", 2);
    ("ADDFX1", 2);
  ]

let seq_weights = [ ("DFFX1", 6); ("DFFRX1", 2); ("SDFFX1", 1); ("LATX1", 1) ]

let pick_weighted rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let r = Random.State.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (name, w) :: rest -> if r < acc + w then name else go (acc + w) rest
  in
  go 0 weights

let generate ?(seed = 42) profile ~util tech =
  if util <= 0.0 || util > 1.0 then invalid_arg "Design.generate: bad utilisation";
  (* The profile-name component must be a stable digest: Hashtbl.hash is
     not reproducible across OCaml versions or platforms, and generated
     designs feed content-addressed caches keyed on their clips. *)
  let rng =
    Random.State.make [| seed; Optrouter_hash.Stable.seed profile.pr_name |]
  in
  let lib = Cells.library tech in
  (* Draw the instance population. *)
  let instances_spec =
    Array.init profile.instance_count (fun i ->
        let kind =
          if Random.State.float rng 1.0 < profile.flop_share then
            pick_weighted rng seq_weights
          else pick_weighted rng comb_weights
        in
        (Printf.sprintf "u%d" i, Cells.find lib kind))
  in
  let total_width =
    Array.fold_left (fun acc (_, c) -> acc + c.Cells.width_cols) 0 instances_spec
  in
  (* Square-ish floorplan: band height is cell_height * hpitch nm, column
     pitch is vpitch nm; aim for equal physical extent in x and y. *)
  let row_h_nm = Tech.row_height tech in
  let area_cols = float_of_int total_width /. util in
  let bands =
    Round.ceil
      (Float.sqrt
         (area_cols *. float_of_int tech.Tech.vpitch /. float_of_int row_h_nm))
  in
  let bands = max 1 bands in
  let width_cols = Round.ceil (area_cols /. float_of_int bands) in
  (* Deal instances into bands, then pack each band left to right with the
     leftover space spread as random gaps. *)
  let order = Array.init profile.instance_count Fun.id in
  for i = profile.instance_count - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let band_members = Array.make bands [] in
  let band_width = Array.make bands 0 in
  let cursor = ref 0 in
  Array.iter
    (fun idx ->
      let _, c = instances_spec.(idx) in
      (* first-fit from a rotating cursor keeps bands balanced *)
      let rec place tries b =
        if tries >= bands then
          (* overflow: put it in the widest-remaining band anyway *)
          let best = ref 0 in
          for k = 1 to bands - 1 do
            if band_width.(k) < band_width.(!best) then best := k
          done;
          !best
        else if band_width.(b) + c.Cells.width_cols <= width_cols then b
        else place (tries + 1) ((b + 1) mod bands)
      in
      let b = place 0 !cursor in
      cursor := (b + 1) mod bands;
      band_members.(b) <- idx :: band_members.(b);
      band_width.(b) <- band_width.(b) + c.Cells.width_cols)
    order;
  let placed = Array.make profile.instance_count None in
  Array.iteri
    (fun b members ->
      let members = Array.of_list (List.rev members) in
      let used = band_width.(b) in
      let free = max 0 (width_cols - used) in
      let n = Array.length members in
      let x = ref 0 and remaining_free = ref free in
      Array.iteri
        (fun i idx ->
          (* spread the free space as random gaps before cells *)
          let slots_left = n - i in
          let gap =
            if !remaining_free = 0 then 0
            else Random.State.int rng (1 + (2 * !remaining_free / slots_left))
          in
          let gap = min gap !remaining_free in
          remaining_free := !remaining_free - gap;
          x := !x + gap;
          let name, c = instances_spec.(idx) in
          placed.(idx) <-
            Some { i_name = name; cell = c; col = !x; band = b; flipped = b land 1 = 1 };
          x := !x + c.Cells.width_cols)
        members)
    band_members;
  let instances =
    Array.map (function Some i -> i | None -> assert false) placed
  in
  (* Locality-biased netlist: each driver connects to 1..4 unused input
     pins of instances within a window around it. *)
  let input_used = Hashtbl.create (profile.instance_count * 2) in
  let nets = ref [] in
  let nnets = ref 0 in
  let window_cols = max 8 (width_cols / 10) and window_bands = 3 in
  Array.iteri
    (fun i inst ->
      match Cells.outputs inst.cell with
      | [] -> ()
      | out :: _ ->
        let fanout = 1 + Random.State.int rng 4 in
        let loads = ref [] in
        let attempts = fanout * 8 in
        let found = ref 0 in
        let try_one () =
          (* sample a nearby instance by rejection *)
          let j = Random.State.int rng profile.instance_count in
          let cand = instances.(j) in
          let near =
            abs (cand.band - inst.band) <= window_bands
            && abs (cand.col - inst.col) <= window_cols
          in
          if near && j <> i then begin
            let free_inputs =
              List.filter
                (fun (p : Cells.pin) ->
                  not (Hashtbl.mem input_used (j, p.Cells.p_name)))
                (Cells.inputs cand.cell)
            in
            match free_inputs with
            | [] -> ()
            | p :: _ ->
              Hashtbl.replace input_used (j, p.Cells.p_name) ();
              loads := { inst = j; pin = p.Cells.p_name } :: !loads;
              incr found
          end
        in
        let k = ref 0 in
        while !found < fanout && !k < attempts do
          try_one ();
          incr k
        done;
        if !loads <> [] then begin
          nets :=
            {
              dn_name = Printf.sprintf "n%d" !nnets;
              driver = { inst = i; pin = out.Cells.p_name };
              loads = !loads;
            }
            :: !nets;
          incr nnets
        end)
    instances;
  let achieved_util =
    float_of_int total_width /. float_of_int (width_cols * bands)
  in
  {
    d_name = Printf.sprintf "%s-%s-u%02.0f" profile.pr_name tech.Tech.name (util *. 100.0);
    tech;
    profile;
    target_util = util;
    width_cols;
    bands;
    instances;
    nets = Array.of_list (List.rev !nets);
    achieved_util;
  }

let find_pin (inst : instance) name =
  match
    List.find_opt (fun (p : Cells.pin) -> String.equal p.Cells.p_name name)
      inst.cell.Cells.pins
  with
  | Some p -> p
  | None -> raise Not_found

let access_positions t conn =
  let inst = t.instances.(conn.inst) in
  let p = find_pin inst conn.pin in
  let h = t.tech.Tech.cell_height_tracks in
  List.map
    (fun (dx, dy) ->
      let dy = if inst.flipped then h - 1 - dy else dy in
      (inst.col + dx, (inst.band * h) + dy))
    p.Cells.offsets

let pin_shape t conn =
  let inst = t.instances.(conn.inst) in
  let p = find_pin inst conn.pin in
  let h_nm = Tech.row_height t.tech in
  let base_x = inst.col * t.tech.Tech.vpitch in
  let base_y = inst.band * h_nm in
  let shape = p.Cells.shape in
  let shape =
    if inst.flipped then
      Rect.make ~xlo:shape.Rect.xlo ~ylo:(h_nm - shape.Rect.yhi)
        ~xhi:shape.Rect.xhi ~yhi:(h_nm - shape.Rect.ylo)
    else shape
  in
  Rect.translate shape (Optrouter_geom.Point.make base_x base_y)

let extent t = (t.width_cols, t.bands * t.tech.Tech.cell_height_tracks)

let summary_row t =
  (t.d_name, t.profile.period_ns, Array.length t.instances, t.achieved_util)

let pp ppf t =
  Format.fprintf ppf "%s: %d instances, %d nets, %dx%d cols/bands, util %.1f%%"
    t.d_name (Array.length t.instances) (Array.length t.nets) t.width_cols
    t.bands (t.achieved_util *. 100.0)
