module Table = struct
  let render ~header rows =
    let all = header :: rows in
    let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
          row)
      all;
    let buf = Buffer.create 256 in
    let emit row =
      List.iteri
        (fun i cell ->
          Buffer.add_string buf cell;
          if i < ncols - 1 then
            Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    emit header;
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n';
    List.iter emit rows;
    Buffer.contents buf
end

module Series = struct
  let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '~'; '$'; '^' |]

  let plot ?(width = 64) ?(height = 16) ?(y_label = "") series =
    let ymin, ymax, xmax =
      List.fold_left
        (fun (lo, hi, n) (_, ys) ->
          Array.fold_left
            (fun (lo, hi, n) y -> (Float.min lo y, Float.max hi y, n))
            (lo, hi, max n (Array.length ys))
            ys)
        (infinity, neg_infinity, 0)
        series
    in
    if xmax = 0 || ymin = infinity then "(no data)\n"
    else begin
      let ymin = Float.min ymin 0.0 in
      let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
      let canvas = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, ys) ->
          let marker = markers.(si mod Array.length markers) in
          Array.iteri
            (fun i y ->
              let x =
                if xmax <= 1 then 0
                else i * (width - 1) / (xmax - 1)
              in
              let row =
                int_of_float
                  (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
              in
              let row = max 0 (min (height - 1) row) in
              canvas.(height - 1 - row).(x) <- marker)
            ys)
        series;
      let buf = Buffer.create (height * (width + 12)) in
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      for r = 0 to height - 1 do
        let yval = ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "%8.1f |" yval);
        for c = 0 to width - 1 do
          Buffer.add_char buf canvas.(r).(c)
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 10 ' ');
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%10s0%s%d (clip index, sorted)\n" ""
           (String.make (max 1 (width - 8)) ' ')
           (xmax - 1));
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c %s\n" markers.(si mod Array.length markers) name))
        series;
      Buffer.contents buf
    end
end

module Telemetry = struct
  let render ~solves ~fast_path_hits ~seeded_incumbents ~nodes
      ~simplex_iterations ~busy_s ~wall_s ~limits ~infeasible ~failures =
    let buf = Buffer.create 192 in
    Buffer.add_string buf
      (Printf.sprintf
         "solver telemetry: %d solves in %.1f s wall, %.1f s busy (%d B&B \
          nodes, %d simplex iterations)\n"
         solves wall_s busy_s nodes simplex_iterations);
    Buffer.add_string buf
      (Printf.sprintf
         "                  %d fast-path hit%s, %d seeded incumbent%s\n"
         fast_path_hits
         (if fast_path_hits = 1 then "" else "s")
         seeded_incumbents
         (if seeded_incumbents = 1 then "" else "s"));
    Buffer.add_string buf
      (Printf.sprintf "                  %d limit, %d infeasible%s\n" limits
         infeasible
         (if failures > 0 then Printf.sprintf ", %d failed" failures else ""));
    Buffer.contents buf
end

module Csv = struct
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell

  let to_string ~header rows =
    let line row = String.concat "," (List.map escape row) in
    String.concat "\n" (line header :: List.map line rows) ^ "\n"

  let write_file path ~header rows =
    let oc = open_out path in
    output_string oc (to_string ~header rows);
    close_out oc
end
