(* Atomic output files: write the full contents under a temporary name in
   the destination directory (same filesystem, so the rename is atomic on
   POSIX), then rename into place. A crash mid-write leaves a stray
   [.tmp] file, never a torn half-document that downstream parsers — the
   basis loader, the serve cache store, CI's JSON invariant checks —
   would then choke on. *)
let write_atomic path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
  in
  match
    let oc = open_out_bin tmp in
    (try output_string oc contents
     with exn ->
       close_out_noerr oc;
       raise exn);
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception exn ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn

module Table = struct
  let render ~header rows =
    let all = header :: rows in
    let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
          row)
      all;
    let buf = Buffer.create 256 in
    let emit row =
      List.iteri
        (fun i cell ->
          Buffer.add_string buf cell;
          if i < ncols - 1 then
            Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    emit header;
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n';
    List.iter emit rows;
    Buffer.contents buf
end

module Series = struct
  let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '~'; '$'; '^' |]

  let plot ?(width = 64) ?(height = 16) ?(y_label = "") series =
    let ymin, ymax, xmax =
      List.fold_left
        (fun (lo, hi, n) (_, ys) ->
          Array.fold_left
            (fun (lo, hi, n) y -> (Float.min lo y, Float.max hi y, n))
            (lo, hi, max n (Array.length ys))
            ys)
        (infinity, neg_infinity, 0)
        series
    in
    if xmax = 0 || ymin = infinity then "(no data)\n"
    else begin
      let ymin = Float.min ymin 0.0 in
      let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
      let canvas = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, ys) ->
          let marker = markers.(si mod Array.length markers) in
          Array.iteri
            (fun i y ->
              let x =
                if xmax <= 1 then 0
                else i * (width - 1) / (xmax - 1)
              in
              let row =
                Optrouter_geom.Round.nearest
                  ((y -. ymin) /. yspan *. float_of_int (height - 1))
              in
              let row = max 0 (min (height - 1) row) in
              canvas.(height - 1 - row).(x) <- marker)
            ys)
        series;
      let buf = Buffer.create (height * (width + 12)) in
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      for r = 0 to height - 1 do
        let yval = ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "%8.1f |" yval);
        for c = 0 to width - 1 do
          Buffer.add_char buf canvas.(r).(c)
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 10 ' ');
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%10s0%s%d (clip index, sorted)\n" ""
           (String.make (max 1 (width - 8)) ' ')
           (xmax - 1));
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "  %c %s\n" markers.(si mod Array.length markers) name))
        series;
      Buffer.contents buf
    end
end

module Telemetry = struct
  let render ?(steals = 0) ?(solver_busy_s = 0.0) ?(solver_wall_s = 0.0)
      ?(peak_workers = 1) ?(root_lp_iters = 0) ?(bound_flips = 0)
      ?(warm_reused = 0) ?(warm_repaired = 0) ?(lagrangian_solves = 0)
      ?(lag_iterations = 0) ?(lag_busy_s = 0.0) ?(lag_gap_max = 0.0)
      ?(lag_unrounded = 0) ~solves ~fast_path_hits ~seeded_incumbents ~nodes
      ~simplex_iterations ~busy_s ~wall_s ~limits ~infeasible ~failures () =
    let buf = Buffer.create 192 in
    Buffer.add_string buf
      (Printf.sprintf
         "solver telemetry: %d solves in %.1f s wall, %.1f s busy (%d B&B \
          nodes, %d simplex iterations)\n"
         solves wall_s busy_s nodes simplex_iterations);
    Buffer.add_string buf
      (Printf.sprintf
         "                  %d fast-path hit%s, %d seeded incumbent%s\n"
         fast_path_hits
         (if fast_path_hits = 1 then "" else "s")
         seeded_incumbents
         (if seeded_incumbents = 1 then "" else "s"));
    Buffer.add_string buf
      (Printf.sprintf "                  %d limit, %d infeasible%s\n" limits
         infeasible
         (if failures > 0 then Printf.sprintf ", %d failed" failures else ""));
    (* Root-LP line only when the solver actually reported root activity:
       historical three-line output is preserved for fast-path-only runs. *)
    if root_lp_iters > 0 || warm_reused > 0 || warm_repaired > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "                  root LP: %d iterations, %d bound flip%s, warm \
            basis %d reused / %d repaired\n"
           root_lp_iters bound_flips
           (if bound_flips = 1 then "" else "s")
           warm_reused warm_repaired);
    (* Only solves that actually ran a parallel search earn the extra
       line; a purely serial sweep keeps its historical three-line form. *)
    if peak_workers > 1 || steals > 0 then begin
      let nodes_per_s =
        if solver_busy_s > 0.0 then float_of_int nodes /. solver_busy_s
        else 0.0
      in
      let efficiency =
        (* summed worker busy over (wall x width): 1.0 means every solver
           worker was busy for the whole of every solve *)
        if solver_wall_s > 0.0 && peak_workers > 0 then
          solver_busy_s /. (solver_wall_s *. float_of_int peak_workers)
        else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "                  solver parallelism: peak %d workers, %d \
            steal%s, %.0f nodes/s, %.2f efficiency\n"
           peak_workers steals
           (if steals = 1 then "" else "s")
           nodes_per_s efficiency)
    end;
    (* Decomposition line only when some solve ran the Lagrangian path:
       exact-mode runs keep their historical output byte-for-byte. *)
    if lagrangian_solves > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "                  lagrangian: %d solve%s, %d iteration%s, %.1f s \
            pricing, max gap %.2f%%%s\n"
           lagrangian_solves
           (if lagrangian_solves = 1 then "" else "s")
           lag_iterations
           (if lag_iterations = 1 then "" else "s")
           lag_busy_s (100.0 *. lag_gap_max)
           (if lag_unrounded > 0 then
              Printf.sprintf ", %d unrounded" lag_unrounded
            else ""));
    Buffer.contents buf

  let render_serve ~requests ~mem_hits ~disk_hits ~misses ~evictions ~stores
      ~disk_errors () =
    let hits = mem_hits + disk_hits in
    let looked = hits + misses in
    let rate =
      if looked > 0 then float_of_int hits /. float_of_int looked else 0.0
    in
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf
         "serve telemetry: %d request%s, cache %d hit%s (%d memory, %d disk) \
          / %d miss%s (%.0f%% hit rate)\n"
         requests
         (if requests = 1 then "" else "s")
         hits
         (if hits = 1 then "" else "s")
         mem_hits disk_hits misses
         (if misses = 1 then "" else "es")
         (100.0 *. rate));
    Buffer.add_string buf
      (Printf.sprintf "                 %d store%s, %d eviction%s%s\n" stores
         (if stores = 1 then "" else "s")
         evictions
         (if evictions = 1 then "" else "s")
         (if disk_errors > 0 then
            Printf.sprintf ", %d disk error%s recovered" disk_errors
              (if disk_errors = 1 then "" else "s")
          else ""));
    Buffer.contents buf
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent v =
    let pad n = String.make (2 * n) ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* JSON has no NaN/infinity, and our own parser (below) rejects
         such literals — refusing to emit them keeps emit/parse a
         round-trip instead of producing a document we cannot re-read. *)
      if not (Float.is_finite f) then
        invalid_arg (Printf.sprintf "Report.Json: non-finite float %h" f);
      (* Shortest representation that parses back to the same float:
         [%.17g] is always exact but noisy; [%.15g] usually suffices. *)
      let token =
        let short = Printf.sprintf "%.15g" f in
        if float_of_string short = f then short else Printf.sprintf "%.17g" f
      in
      (* Keep the token recognisably a float: without [./e/E] the parser
         would hand it back as [Int]. *)
      let is_float_token =
        String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token
      in
      Buffer.add_string buf token;
      if not is_float_token then Buffer.add_string buf ".0"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let write_file path v = write_atomic path (to_string v)

  (* A small strict parser, the inverse of [to_string] — enough for the
     serve daemon's JSON request envelope and for re-reading our own
     reports. Integers without [./e/E] parse as [Int]; anything else
     numeric as [Float]; non-finite literals are rejected (JSON has
     none). *)
  let of_string s =
    let n = String.length s in
    let exception Bad of string in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if peek () = Some c then incr pos
      else fail "expected '%c' at offset %d" c !pos
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some code ->
              (* Non-ASCII escapes: UTF-8 encode the code point (no
                 surrogate-pair handling; our own writer only escapes
                 control characters, which are ASCII). *)
              if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
            | None -> fail "bad \\u escape %S" hex)
          | c -> fail "bad escape '\\%c'" c);
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      let is_int =
        not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
      in
      if is_int then
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> fail "bad number %S at offset %d" tok start
      else
        match float_of_string_opt tok with
        | Some f when Float.is_finite f -> Float f
        | Some _ | None -> fail "bad number %S at offset %d" tok start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail "unexpected '%c' at offset %d" c !pos
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage at offset %d" !pos;
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Log = struct
  type level = Debug | Info | Warn | Error

  let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  (* All state is held in Atomics: messages and counters flow from pool
     worker domains, so plain refs or a Hashtbl would race (and would trip
     the source lint's L004). *)
  let threshold : int Atomic.t =
    (* -1 = silent. Initialised once from OPTROUTER_LOG. *)
    Atomic.make
      (match Option.map String.lowercase_ascii (Sys.getenv_opt "OPTROUTER_LOG") with
      | Some "debug" -> 0
      | Some "info" -> 1
      | Some "warn" -> 2
      | Some "error" -> 3
      | Some _ | None -> -1)

  let set_level lvl =
    Atomic.set threshold (match lvl with None -> -1 | Some l -> level_rank l)

  let enabled lvl =
    let t = Atomic.get threshold in
    t >= 0 && level_rank lvl >= t

  let default_sink lvl ~src line =
    (* One write of one preformatted line: concurrent domains may reorder
       whole lines but never interleave within one. *)
    output_string stderr
      (Printf.sprintf "[%s] %s: %s\n" src (level_name lvl) line);
    flush stderr

  let sink : (level -> src:string -> string -> unit) Atomic.t =
    Atomic.make default_sink

  let set_sink = function
    | None -> Atomic.set sink default_sink
    | Some f -> Atomic.set sink f

  (* Per-source event counters, lock-free: the bucket list only ever grows
     and each bucket's count is itself atomic. *)
  let counters : (string * int Atomic.t) list Atomic.t = Atomic.make []

  let rec bucket src =
    match List.assoc_opt src (Atomic.get counters) with
    | Some c -> c
    | None ->
      let seen = Atomic.get counters in
      let c = Atomic.make 0 in
      if Atomic.compare_and_set counters seen ((src, c) :: seen) then c
      else bucket src

  let counts () =
    Atomic.get counters
    |> List.map (fun (src, c) -> (src, Atomic.get c))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.filter (fun (_, n) -> n > 0)

  let reset_counts () =
    List.iter (fun (_, c) -> Atomic.set c 0) (Atomic.get counters)

  (* [emit] bypasses the level filter (for legacy per-module debug env
     vars); [event] is the normal counted-and-filtered entry point. Both
     count, so quiet runs still surface how much was suppressed. *)
  let emit lvl ~src msg =
    Atomic.incr (bucket src);
    (Atomic.get sink) lvl ~src (msg ())

  let event lvl ~src msg =
    if enabled lvl then emit lvl ~src msg else Atomic.incr (bucket src)

  let debug ~src msg = event Debug ~src msg
  let info ~src msg = event Info ~src msg
  let warn ~src msg = event Warn ~src msg
  let error ~src msg = event Error ~src msg
end

module Csv = struct
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell

  let to_string ~header rows =
    let line row = String.concat "," (List.map escape row) in
    String.concat "\n" (line header :: List.map line rows) ^ "\n"

  let write_file path ~header rows = write_atomic path (to_string ~header rows)
end

module Stats = struct
  let percentile p values =
    if Array.length values = 0 then
      invalid_arg "Report.Stats.percentile: empty sample";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Report.Stats.percentile: p outside [0,100]";
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    (* Nearest-rank: the smallest value with at least p% of the sample at
       or below it. *)
    let rank = Optrouter_geom.Round.ceil (p /. 100.0 *. float_of_int n) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
end
