(** Plain-text reporting: aligned tables, ASCII series plots and CSV.

    Every table and figure of the paper is re-emitted through this module
    by the benchmark harness, so results are readable in a terminal and
    machine-readable from the CSV mirror. *)

module Table : sig
  (** [render ~header rows] renders an aligned table with a separator under
      the header. Cells are padded to the widest entry per column. *)
  val render : header:string list -> string list list -> string
end

module Series : sig
  (** [plot ?width ?height ?y_label series] draws the paper's Figure-10
      style chart: each named series is a list of y-values plotted against
      its index (x). Values are clamped into the data range; each series
      uses its own marker character, listed in the legend. *)
  val plot :
    ?width:int ->
    ?height:int ->
    ?y_label:string ->
    (string * float array) list ->
    string
end

module Telemetry : sig
  (** Renders the per-sweep solver telemetry summary the evaluation layer
      aggregates across (clip, rule) solves. [busy_s] is summed per-solve
      wall time (aggregate solver work — under domain parallelism it
      exceeds the elapsed time, which is the point of reporting it);
      [wall_s] is the sweep's true elapsed wall clock. [fast_path_hits]
      and [seeded_incumbents] count the solves answered or warm-started by
      the baseline-reuse layer.

      The optional arguments describe solver-level (inner, branch-and-
      bound) parallelism and add a fourth line when any solve ran with
      more than one worker or stole a node: [steals] is the cross-worker
      frontier steal count, [solver_busy_s]/[solver_wall_s] the summed
      per-worker busy time and summed solve wall time, [peak_workers] the
      widest solve. The line reports nodes per busy second and parallel
      efficiency ([solver_busy_s / (solver_wall_s * peak_workers)]).

      [root_lp_iters]/[bound_flips]/[warm_reused]/[warm_repaired]
      (defaults 0) describe the root-relaxation solves: when any root
      activity was reported, an extra line shows the root-LP iteration
      total, bound-flip count, and how many solves reused or repaired a
      warm-start basis. *)
  val render :
    ?steals:int ->
    ?solver_busy_s:float ->
    ?solver_wall_s:float ->
    ?peak_workers:int ->
    ?root_lp_iters:int ->
    ?bound_flips:int ->
    ?warm_reused:int ->
    ?warm_repaired:int ->
    solves:int ->
    fast_path_hits:int ->
    seeded_incumbents:int ->
    nodes:int ->
    simplex_iterations:int ->
    busy_s:float ->
    wall_s:float ->
    limits:int ->
    infeasible:int ->
    failures:int ->
    unit ->
    string
end

module Json : sig
  (** A minimal JSON document builder — enough for the benchmark and audit
      reports (objects, arrays, scalars; pretty-printed, trailing
      newline). Non-finite floats are encoded as hex-float strings so the
      output is always parseable. *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val write_file : string -> t -> unit
end

module Log : sig
  (** Leveled diagnostics for solver internals, safe under domain
      parallelism.

      Quiet by default: every event is {e counted} per source (see
      {!counts}, surfaced in the sweep telemetry) but only rendered when
      the level is enabled — so a parallel sweep never interleaves debug
      garbage on stderr, yet a serial debugging run can see everything via
      [OPTROUTER_LOG=debug] (or {!set_level}). The default sink writes one
      preformatted line per event with a single [output_string], which
      concurrent domains can reorder but not interleave. All internal
      state is atomic. *)

  type level = Debug | Info | Warn | Error

  (** Enable rendering of events at [lvl] and above; [None] (the initial
      state unless the [OPTROUTER_LOG] environment variable is set to
      [debug]/[info]/[warn]/[error]) renders nothing. *)
  val set_level : level option -> unit

  val enabled : level -> bool

  (** Replace ([Some]) or restore ([None]) the stderr sink. *)
  val set_sink : (level -> src:string -> string -> unit) option -> unit

  (** [event lvl ~src msg] counts one event against [src] and, when [lvl]
      is enabled, formats and emits it. [msg] is only forced when
      rendering. *)
  val event : level -> src:string -> (unit -> string) -> unit

  val debug : src:string -> (unit -> string) -> unit
  val info : src:string -> (unit -> string) -> unit
  val warn : src:string -> (unit -> string) -> unit
  val error : src:string -> (unit -> string) -> unit

  (** [emit] renders unconditionally (still counted) — the escape hatch
      behind legacy per-module debug environment variables. *)
  val emit : level -> src:string -> (unit -> string) -> unit

  (** Per-source event counts since the last {!reset_counts}, sorted by
      source, zero entries omitted. *)
  val counts : unit -> (string * int) list

  val reset_counts : unit -> unit
end

module Csv : sig
  val to_string : header:string list -> string list list -> string
  val write_file : string -> header:string list -> string list list -> unit
end
