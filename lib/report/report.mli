(** Plain-text reporting: aligned tables, ASCII series plots and CSV.

    Every table and figure of the paper is re-emitted through this module
    by the benchmark harness, so results are readable in a terminal and
    machine-readable from the CSV mirror. *)

(** [write_atomic path contents] writes [contents] to [path] atomically:
    the bytes land in a temporary file in [path]'s directory, which is
    then renamed into place. Readers never observe a torn or partial
    file — they see either the previous contents or the new ones. The
    temporary is removed on failure and the exception re-raised. Every
    output file the tools produce (JSON reports, CSVs, bases, cache
    entries) goes through this helper. *)
val write_atomic : string -> string -> unit

module Table : sig
  (** [render ~header rows] renders an aligned table with a separator under
      the header. Cells are padded to the widest entry per column. *)
  val render : header:string list -> string list list -> string
end

module Series : sig
  (** [plot ?width ?height ?y_label series] draws the paper's Figure-10
      style chart: each named series is a list of y-values plotted against
      its index (x). Values are clamped into the data range; each series
      uses its own marker character, listed in the legend. *)
  val plot :
    ?width:int ->
    ?height:int ->
    ?y_label:string ->
    (string * float array) list ->
    string
end

module Telemetry : sig
  (** Renders the per-sweep solver telemetry summary the evaluation layer
      aggregates across (clip, rule) solves. [busy_s] is summed per-solve
      wall time (aggregate solver work — under domain parallelism it
      exceeds the elapsed time, which is the point of reporting it);
      [wall_s] is the sweep's true elapsed wall clock. [fast_path_hits]
      and [seeded_incumbents] count the solves answered or warm-started by
      the baseline-reuse layer.

      The optional arguments describe solver-level (inner, branch-and-
      bound) parallelism and add a fourth line when any solve ran with
      more than one worker or stole a node: [steals] is the cross-worker
      frontier steal count, [solver_busy_s]/[solver_wall_s] the summed
      per-worker busy time and summed solve wall time, [peak_workers] the
      widest solve. The line reports nodes per busy second and parallel
      efficiency ([solver_busy_s / (solver_wall_s * peak_workers)]).

      [root_lp_iters]/[bound_flips]/[warm_reused]/[warm_repaired]
      (defaults 0) describe the root-relaxation solves: when any root
      activity was reported, an extra line shows the root-LP iteration
      total, bound-flip count, and how many solves reused or repaired a
      warm-start basis.

      [lagrangian_solves]/[lag_iterations]/[lag_busy_s]/[lag_gap_max]/
      [lag_unrounded] (defaults 0) describe decomposition-mode solves:
      when any ran, an extra line shows the solve and sub-gradient
      iteration counts, summed per-net pricing time, the worst reported
      optimality gap (percent) and how many solves failed to round to a
      feasible routing. *)
  val render :
    ?steals:int ->
    ?solver_busy_s:float ->
    ?solver_wall_s:float ->
    ?peak_workers:int ->
    ?root_lp_iters:int ->
    ?bound_flips:int ->
    ?warm_reused:int ->
    ?warm_repaired:int ->
    ?lagrangian_solves:int ->
    ?lag_iterations:int ->
    ?lag_busy_s:float ->
    ?lag_gap_max:float ->
    ?lag_unrounded:int ->
    solves:int ->
    fast_path_hits:int ->
    seeded_incumbents:int ->
    nodes:int ->
    simplex_iterations:int ->
    busy_s:float ->
    wall_s:float ->
    limits:int ->
    infeasible:int ->
    failures:int ->
    unit ->
    string

  (** Renders the serve daemon's cache counters: requests handled, cache
      hits split memory/disk, misses, the derived hit rate, and the
      store/eviction/recovered-disk-error churn. *)
  val render_serve :
    requests:int ->
    mem_hits:int ->
    disk_hits:int ->
    misses:int ->
    evictions:int ->
    stores:int ->
    disk_errors:int ->
    unit ->
    string
end

module Stats : sig
  (** [percentile p values] is the nearest-rank [p]th percentile (the
      smallest sample value with at least [p]% of the sample at or below
      it) of the unsorted array [values]. [p] is in [0, 100]. Raises
      [Invalid_argument] on an empty sample or out-of-range [p]. *)
  val percentile : float -> float array -> float
end

module Json : sig
  (** A minimal JSON document builder — enough for the benchmark and audit
      reports (objects, arrays, scalars; pretty-printed, trailing
      newline). Floats are emitted with the shortest decimal
      representation that re-parses to the same [float], always carrying
      a [./e] so {!of_string} hands them back as [Float] — emit followed
      by parse is the identity on finite documents. {!to_string} raises
      [Invalid_argument] on NaN/infinity: JSON has no such literals and
      the parser rejects them, so emitting one would break the
      round-trip contract silently. *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Atomic (see {!Report.write_atomic}). *)
  val write_file : string -> t -> unit

  (** Strict parser for the subset {!to_string} emits (all of JSON minus
      surrogate-pair [\u] escapes). Integer tokens parse as [Int], other
      numbers as [Float]; non-finite numbers do not exist in JSON and are
      rejected. Errors carry a byte offset. *)
  val of_string : string -> (t, string) result

  (** [member key json] is the value of field [key] when [json] is an
      [Obj] containing one, else [None]. *)
  val member : string -> t -> t option
end

module Log : sig
  (** Leveled diagnostics for solver internals, safe under domain
      parallelism.

      Quiet by default: every event is {e counted} per source (see
      {!counts}, surfaced in the sweep telemetry) but only rendered when
      the level is enabled — so a parallel sweep never interleaves debug
      garbage on stderr, yet a serial debugging run can see everything via
      [OPTROUTER_LOG=debug] (or {!set_level}). The default sink writes one
      preformatted line per event with a single [output_string], which
      concurrent domains can reorder but not interleave. All internal
      state is atomic. *)

  type level = Debug | Info | Warn | Error

  (** Enable rendering of events at [lvl] and above; [None] (the initial
      state unless the [OPTROUTER_LOG] environment variable is set to
      [debug]/[info]/[warn]/[error]) renders nothing. *)
  val set_level : level option -> unit

  val enabled : level -> bool

  (** Replace ([Some]) or restore ([None]) the stderr sink. *)
  val set_sink : (level -> src:string -> string -> unit) option -> unit

  (** [event lvl ~src msg] counts one event against [src] and, when [lvl]
      is enabled, formats and emits it. [msg] is only forced when
      rendering. *)
  val event : level -> src:string -> (unit -> string) -> unit

  val debug : src:string -> (unit -> string) -> unit
  val info : src:string -> (unit -> string) -> unit
  val warn : src:string -> (unit -> string) -> unit
  val error : src:string -> (unit -> string) -> unit

  (** [emit] renders unconditionally (still counted) — the escape hatch
      behind legacy per-module debug environment variables. *)
  val emit : level -> src:string -> (unit -> string) -> unit

  (** Per-source event counts since the last {!reset_counts}, sorted by
      source, zero entries omitted. *)
  val counts : unit -> (string * int) list

  val reset_counts : unit -> unit
end

module Csv : sig
  val to_string : header:string list -> string list list -> string

  (** Atomic (see {!Report.write_atomic}). *)
  val write_file : string -> header:string list -> string list list -> unit
end
