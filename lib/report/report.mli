(** Plain-text reporting: aligned tables, ASCII series plots and CSV.

    Every table and figure of the paper is re-emitted through this module
    by the benchmark harness, so results are readable in a terminal and
    machine-readable from the CSV mirror. *)

module Table : sig
  (** [render ~header rows] renders an aligned table with a separator under
      the header. Cells are padded to the widest entry per column. *)
  val render : header:string list -> string list list -> string
end

module Series : sig
  (** [plot ?width ?height ?y_label series] draws the paper's Figure-10
      style chart: each named series is a list of y-values plotted against
      its index (x). Values are clamped into the data range; each series
      uses its own marker character, listed in the legend. *)
  val plot :
    ?width:int ->
    ?height:int ->
    ?y_label:string ->
    (string * float array) list ->
    string
end

module Telemetry : sig
  (** Renders the per-sweep solver telemetry summary the evaluation layer
      aggregates across (clip, rule) solves. [busy_s] is summed per-solve
      wall time (aggregate solver work — under domain parallelism it
      exceeds the elapsed time, which is the point of reporting it);
      [wall_s] is the sweep's true elapsed wall clock. [fast_path_hits]
      and [seeded_incumbents] count the solves answered or warm-started by
      the baseline-reuse layer. *)
  val render :
    solves:int ->
    fast_path_hits:int ->
    seeded_incumbents:int ->
    nodes:int ->
    simplex_iterations:int ->
    busy_s:float ->
    wall_s:float ->
    limits:int ->
    infeasible:int ->
    failures:int ->
    string
end

module Csv : sig
  val to_string : header:string list -> string list list -> string
  val write_file : string -> header:string list -> string list list -> unit
end
