module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Via_shape = Optrouter_tech.Via_shape
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Design = Optrouter_design.Design
module Cells = Optrouter_cells.Cells
module Extract = Optrouter_clips.Extract
module Pin_cost = Optrouter_clips.Pin_cost
module Formulate = Optrouter_core.Formulate
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route
module Maze = Optrouter_maze.Maze
module Milp = Optrouter_ilp.Milp
module Pool = Optrouter_exec.Pool

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2_header = [ "Tech."; "Design"; "Period (ns)"; "#inst."; "Util. (%)" ]

(* The paper's per-technology clock periods, instance-count ranges and
   utilisation ranges (Table 2). Mapped netlists differ per technology
   and per target utilisation, which the paper's instance ranges reflect;
   the generator is seeded per implementation version to land inside each
   range. *)
let table2_plan =
  [
    (Tech.n28_12t, Design.aes, 1.2, (13_500, 14_000), [ 0.89; 0.94 ]);
    (Tech.n28_12t, Design.m0, 2.2, (9_200, 9_200), [ 0.90; 0.96 ]);
    (Tech.n28_8t, Design.aes, 2.0, (12_000, 12_700), [ 0.89; 0.95 ]);
    (Tech.n28_8t, Design.m0, 2.5, (9_300, 9_500), [ 0.90; 0.95 ]);
    (Tech.n7_9t, Design.aes, 0.6, (13_000, 15_000), [ 0.93; 0.97 ]);
    (Tech.n7_9t, Design.m0, 1.2, (9_700, 11_400), [ 0.92; 0.95 ]);
  ]

let table2_rows ?(seed = 42) () =
  List.map
    (fun (tech, profile, period, (lo_count, hi_count), utils) ->
      let versions = List.length utils in
      let counts =
        List.mapi
          (fun i util ->
            let instance_count =
              if versions <= 1 then lo_count
              else lo_count + ((hi_count - lo_count) * i / (versions - 1))
            in
            let profile = { profile with Design.instance_count } in
            let d = Design.generate ~seed:(seed + i) profile ~util tech in
            (Array.length d.Design.instances, d.Design.achieved_util))
          utils
      in
      let insts = List.map fst counts in
      let lo_i = List.fold_left min max_int insts
      and hi_i = List.fold_left max 0 insts in
      let us = List.map snd counts in
      let lo_u = List.fold_left Float.min 1.0 us
      and hi_u = List.fold_left Float.max 0.0 us in
      [
        tech.Tech.name;
        profile.Design.pr_name;
        Printf.sprintf "%.1f" period;
        (if lo_i = hi_i then Printf.sprintf "%d" lo_i
         else Printf.sprintf "%d-%d" lo_i hi_i);
        Printf.sprintf "%.0f-%.0f" (lo_u *. 100.0) (hi_u *. 100.0);
      ])
    table2_plan

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3_header = [ "Name"; "SADP rules"; "Blocked via sites"; "DSA vias" ]

let table3_rows () =
  List.map
    (fun (r : Rules.t) ->
      let sadp =
        match r.Rules.sadp_from with
        | None -> "No SADP"
        | Some m -> Printf.sprintf "SADP >= M%d" m
      in
      let blocked =
        match r.Rules.via_restriction with
        | Rules.No_blocking -> "0 neighbors blocked"
        | Rules.Orthogonal -> "4 neighbors blocked"
        | Rules.Orthogonal_diagonal -> "8 neighbors blocked"
      in
      let dsa = if r.Rules.dsa then "k-colorable" else "-" in
      [ r.Rules.name; sadp; blocked; dsa ])
    Rules.all

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

type fig8_series = { label : string; top_costs : float array }

let fig8 ?(seed = 42) ?(top = 100) () =
  let tech = Tech.n7_9t in
  let versions =
    [
      (Design.aes, [ 0.93; 0.95; 0.97 ]);
      (Design.m0, [ 0.92; 0.94; 0.95 ]);
    ]
  in
  List.concat_map
    (fun (profile, utils) ->
      List.mapi
        (fun i util ->
          let d = Design.generate ~seed:(seed + i) profile ~util tech in
          let params = Extract.paper_params tech in
          let clips = Extract.windows params d in
          let ranked = Extract.top_k top clips in
          let costs = Array.of_list (List.map snd ranked) in
          {
            label =
              Printf.sprintf "%s_v%d (util %.0f%%)" profile.Design.pr_name
                (i + 1) (util *. 100.0);
            top_costs = costs;
          })
        utils)
    versions

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

type fig10_params = {
  seed : int;
  instance_scale : float;
  utils : float list;
  extract : Extract.params;
  top_clips : int;
  time_limit_s : float;
  reuse : bool;
  solver_jobs : int;
  solve_mode : Optrouter.solve_mode;
  objective : Rules.objective;
}

let default_fig10_params =
  {
    seed = 42;
    instance_scale = 0.03;
    utils = [ 0.90; 0.95 ];
    extract = Extract.reduced_params;
    top_clips = 8;
    time_limit_s = 20.0;
    reuse = true;
    solver_jobs = 1;
    solve_mode = Optrouter.Exact;
    objective = Rules.Wirelength;
  }

let scaled_profile scale (p : Design.profile) =
  {
    p with
    Design.instance_count =
      max 60
        (Optrouter_geom.Round.floor
           (float_of_int p.Design.instance_count *. scale));
  }

let difficult_clips ?(params = default_fig10_params) tech =
  let designs =
    List.concat_map
      (fun profile ->
        List.mapi
          (fun i util ->
            Design.generate ~seed:(params.seed + i)
              (scaled_profile params.instance_scale profile)
              ~util tech)
          params.utils)
      [ Design.aes; Design.m0 ]
  in
  let clips = List.concat_map (Extract.windows params.extract) designs in
  List.map fst (Extract.top_k params.top_clips clips)

let rules_for tech =
  List.filter
    (fun (r : Rules.t) ->
      r.Rules.name <> "RULE1" && Rules.applicable ~tech_name:tech.Tech.name r)
    Rules.all

let solver_config params =
  Optrouter.make_config
    ~milp:
      (Milp.make_params ~max_nodes:50_000 ~time_limit_s:params.time_limit_s
         ~solver_jobs:params.solver_jobs ())
    ~solve_mode:params.solve_mode ~seed_reuse:params.reuse ()

let fig10 ?(params = default_fig10_params) ?pool ?telemetry ?on_entry tech =
  let clips = difficult_clips ~params tech in
  (* The whole sweep — baseline included — runs under the requested
     objective: the zero-Δ fast path is only sound when the baseline and
     the rule solve optimise the same thing. *)
  let rules =
    List.map (Rules.with_objective params.objective) (rules_for tech)
  in
  let baseline = Rules.with_objective params.objective (Rules.rule 1) in
  let config = solver_config params in
  Sweep.sweep ~config ?pool ?telemetry ?on_entry ~baseline ~tech ~rules clips

(* ------------------------------------------------------------------ *)
(* ILP size analysis                                                   *)
(* ------------------------------------------------------------------ *)

let ilp_size_header =
  [ "Variant"; "|V|"; "|A|"; "|N|"; "vars"; "binaries"; "rows"; "nonzeros" ]

(* A deterministic representative clip: 5x5 tracks, 4 layers, 4 nets. *)
let representative_clip =
  let pin name access = { Clip.p_name = name; access; shape = None } in
  let two name p1 p2 =
    { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] }
  in
  let three name p1 p2 p3 =
    {
      Clip.n_name = name;
      pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t1") [ p2 ]; pin (name ^ "t2") [ p3 ] ];
    }
  in
  Clip.make ~name:"representative" ~cols:5 ~rows:5 ~layers:4
    [
      three "n0" (0, 0) (4, 0) (2, 3);
      two "n1" (0, 2) (4, 2);
      two "n2" (1, 4) (3, 1);
      two "n3" (0, 4) (4, 4);
    ]

let ilp_size_rows () =
  let tech = Tech.n28_12t in
  let variants =
    [
      ("no restriction (RULE1)", Rules.rule 1, Formulate.default_options, []);
      ("via restriction (RULE6)", Rules.rule 6, Formulate.default_options, []);
      ("SADP, collapsed p (RULE2)", Rules.rule 2, Formulate.default_options, []);
      ( "SADP, paper aux vars (RULE2)",
        Rules.rule 2,
        { Formulate.default_options with sadp_aux_vars = true },
        [] );
      ( "via shapes (2x1 bar)",
        Rules.rule 1,
        Formulate.default_options,
        [ Via_shape.bar_2x1 ~cost:4 ] );
    ]
  in
  List.map
    (fun (label, rules, options, via_shapes) ->
      let g = Graph.build ~via_shapes ~tech ~rules representative_clip in
      let form = Formulate.build ~options ~rules g in
      let s = Formulate.sizes form in
      [
        label;
        string_of_int g.Graph.nverts;
        string_of_int (2 * Graph.num_edges g);
        string_of_int (Graph.num_nets g);
        string_of_int s.Formulate.vars;
        string_of_int s.Formulate.binaries;
        string_of_int s.Formulate.rows;
        string_of_int s.Formulate.nonzeros;
      ])
    variants

(* ------------------------------------------------------------------ *)
(* Footnote 6: validation against the heuristic baseline               *)
(* ------------------------------------------------------------------ *)

type validation = {
  v_clip : string;
  opt_cost : int option;
  baseline_cost : int option;
}

let validate ?(params = default_fig10_params) ?pool tech =
  let clips = difficult_clips ~params tech in
  let rules = Rules.rule 1 in
  let config = solver_config params in
  let check clip =
    let g = Graph.build ~tech ~rules clip in
    let opt = Optrouter.route_graph ~config ~rules g in
    let baseline = Maze.route ~rules g in
    {
      v_clip = clip.Clip.c_name;
      opt_cost = Optrouter.cost_of opt;
      baseline_cost =
        Option.map
          (fun (s : Route.solution) -> s.Route.metrics.cost)
          baseline.Maze.solution;
    }
  in
  match pool with
  | None -> List.map check clips
  | Some pool -> Pool.map pool check clips

(* ------------------------------------------------------------------ *)
(* Section 5 runtime study                                             *)
(* ------------------------------------------------------------------ *)

let runtime ?(params = default_fig10_params) () =
  let tech = Tech.n28_12t in
  let sizes =
    [
      ("5x5 tracks, 4 layers", Extract.reduced_params);
      ( "7x7 tracks, 4 layers",
        { Extract.reduced_params with Extract.window_cols = 7; window_rows = 7 } );
    ]
  in
  List.map
    (fun (label, extract) ->
      let params = { params with extract; top_clips = 3 } in
      let clips = difficult_clips ~params tech in
      let config = solver_config params in
      let mean rules =
        let times =
          List.map
            (fun clip ->
              (Optrouter.route ~config ~tech ~rules clip).Optrouter.stats
                .Optrouter.elapsed_s)
            clips
        in
        match times with
        | [] -> 0.0
        | _ ->
          List.fold_left ( +. ) 0.0 times /. float_of_int (List.length times)
      in
      (* "with rules" = SADP >= M3 plus 4-neighbour via blocking (RULE8),
         "without" = RULE1, as in the paper's Section 5 comparison. *)
      (label, mean (Rules.rule 1), mean (Rules.rule 8)))
    sizes
