module Clip = Optrouter_grid.Clip
module Rules = Optrouter_tech.Rules
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route
module Pool = Optrouter_exec.Pool
module Report = Optrouter_report.Report

let src = Logs.Src.create "optrouter.sweep" ~doc:"rule sweep"

module Log = (val Logs.src_log src : Logs.LOG)

type delta = Delta of int | Infeasible | Limit

let infeasible_delta = 500

let delta_value = function
  | Delta d -> float_of_int d
  | Infeasible | Limit -> float_of_int infeasible_delta

type entry = {
  clip_name : string;
  rule_name : string;
  delta : delta;
  cost : int option;
  base_cost : int;
}

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

type telemetry = {
  solves : int;
  fast_path_hits : int;
  seeded_incumbents : int;
  nodes : int;
  simplex_iterations : int;
  root_lp_iters : int;
  bound_flips : int;
  warm_reused : int;
  warm_repaired : int;
  busy_s : float;
  wall_s : float;
  limits : int;
  infeasible : int;
  failures : int;
  steals : int;
  solver_busy_s : float;
  solver_wall_s : float;
  peak_workers : int;
  lagrangian_solves : int;
  lag_iterations : int;
  lag_busy_s : float;
  lag_wall_s : float;
  lag_gap_max : float;
  lag_unrounded : int;
}

let empty_telemetry =
  {
    solves = 0;
    fast_path_hits = 0;
    seeded_incumbents = 0;
    nodes = 0;
    simplex_iterations = 0;
    root_lp_iters = 0;
    bound_flips = 0;
    warm_reused = 0;
    warm_repaired = 0;
    busy_s = 0.0;
    wall_s = 0.0;
    limits = 0;
    infeasible = 0;
    failures = 0;
    steals = 0;
    solver_busy_s = 0.0;
    solver_wall_s = 0.0;
    peak_workers = 0;
    lagrangian_solves = 0;
    lag_iterations = 0;
    lag_busy_s = 0.0;
    lag_wall_s = 0.0;
    lag_gap_max = 0.0;
    lag_unrounded = 0;
  }

let merge_telemetry a b =
  {
    solves = a.solves + b.solves;
    fast_path_hits = a.fast_path_hits + b.fast_path_hits;
    seeded_incumbents = a.seeded_incumbents + b.seeded_incumbents;
    nodes = a.nodes + b.nodes;
    simplex_iterations = a.simplex_iterations + b.simplex_iterations;
    root_lp_iters = a.root_lp_iters + b.root_lp_iters;
    bound_flips = a.bound_flips + b.bound_flips;
    warm_reused = a.warm_reused + b.warm_reused;
    warm_repaired = a.warm_repaired + b.warm_repaired;
    busy_s = a.busy_s +. b.busy_s;
    (* Wall fields are spans, not work: shards merged here ran
       concurrently (or the caller wants an elapsed bound, not a total),
       so summing them over-reports elapsed time under -j N. Busy fields
       stay summed — aggregate work is additive; elapsed time is not. *)
    wall_s = Float.max a.wall_s b.wall_s;
    limits = a.limits + b.limits;
    infeasible = a.infeasible + b.infeasible;
    failures = a.failures + b.failures;
    steals = a.steals + b.steals;
    solver_busy_s = a.solver_busy_s +. b.solver_busy_s;
    solver_wall_s = Float.max a.solver_wall_s b.solver_wall_s;
    peak_workers = max a.peak_workers b.peak_workers;
    lagrangian_solves = a.lagrangian_solves + b.lagrangian_solves;
    lag_iterations = a.lag_iterations + b.lag_iterations;
    lag_busy_s = a.lag_busy_s +. b.lag_busy_s;
    (* Like [solver_wall_s]: a span, so max over shards, never a sum. *)
    lag_wall_s = Float.max a.lag_wall_s b.lag_wall_s;
    lag_gap_max = Float.max a.lag_gap_max b.lag_gap_max;
    lag_unrounded = a.lag_unrounded + b.lag_unrounded;
  }

let add_result t (result : Optrouter.result) =
  let s = result.Optrouter.stats in
  let limit, infeasible =
    match result.Optrouter.verdict with
    | Optrouter.Limit _ -> (1, 0)
    | Optrouter.Unroutable -> (0, 1)
    | Optrouter.Routed _ | Optrouter.Near_optimal _ -> (0, 0)
  in
  let fast, seeded =
    match s.Optrouter.seed_use with
    | Optrouter.Seed_fast_path -> (1, 0)
    | Optrouter.Seed_incumbent -> (0, 1)
    | Optrouter.Seed_unused | Optrouter.Seed_rejected -> (0, 0)
  in
  let reused, repaired =
    match s.Optrouter.warm_start with
    | `Reused -> (1, 0)
    | `Repaired -> (0, 1)
    | `Cold -> (0, 0)
  in
  {
    t with
    solves = t.solves + 1;
    fast_path_hits = t.fast_path_hits + fast;
    seeded_incumbents = t.seeded_incumbents + seeded;
    nodes = t.nodes + s.Optrouter.nodes;
    simplex_iterations = t.simplex_iterations + s.Optrouter.simplex_iterations;
    root_lp_iters = t.root_lp_iters + s.Optrouter.root_lp_iters;
    bound_flips = t.bound_flips + s.Optrouter.bound_flips;
    warm_reused = t.warm_reused + reused;
    warm_repaired = t.warm_repaired + repaired;
    busy_s = t.busy_s +. s.Optrouter.elapsed_s;
    limits = t.limits + limit;
    infeasible = t.infeasible + infeasible;
    steals = t.steals + s.Optrouter.solver_steals;
    solver_busy_s = t.solver_busy_s +. s.Optrouter.solver_busy_s;
    solver_wall_s = t.solver_wall_s +. s.Optrouter.solver_wall_s;
    peak_workers = max t.peak_workers s.Optrouter.solver_workers;
    lagrangian_solves =
      (t.lagrangian_solves
      + match s.Optrouter.lagrangian with Some _ -> 1 | None -> 0);
    lag_iterations =
      (t.lag_iterations
      + match s.Optrouter.lagrangian with
        | Some ls -> ls.Optrouter.lag_iterations
        | None -> 0);
    lag_busy_s =
      (t.lag_busy_s
      +. match s.Optrouter.lagrangian with
         | Some ls -> ls.Optrouter.lag_busy_s
         | None -> 0.0);
    lag_wall_s =
      (t.lag_wall_s
      +. match s.Optrouter.lagrangian with
         | Some ls -> ls.Optrouter.lag_wall_s
         | None -> 0.0);
    lag_gap_max =
      (match s.Optrouter.lagrangian with
      | Some { Optrouter.lag_gap = Some g; _ } -> Float.max t.lag_gap_max g
      | Some { Optrouter.lag_gap = None; _ } | None -> t.lag_gap_max);
    lag_unrounded =
      (t.lag_unrounded
      + match s.Optrouter.lagrangian with
        | Some { Optrouter.primal_cost = None; _ } -> 1
        | Some { Optrouter.primal_cost = Some _; _ } | None -> 0);
  }

let add_outcome t = function
  | Ok result -> add_result t result
  | Error _ -> { t with solves = t.solves + 1; failures = t.failures + 1 }

let render_telemetry t =
  let base =
    Report.Telemetry.render ~steals:t.steals ~solver_busy_s:t.solver_busy_s
      ~solver_wall_s:t.solver_wall_s ~peak_workers:t.peak_workers
      ~root_lp_iters:t.root_lp_iters ~bound_flips:t.bound_flips
      ~warm_reused:t.warm_reused ~warm_repaired:t.warm_repaired
      ~solves:t.solves ~fast_path_hits:t.fast_path_hits
      ~seeded_incumbents:t.seeded_incumbents ~nodes:t.nodes
      ~simplex_iterations:t.simplex_iterations ~busy_s:t.busy_s ~wall_s:t.wall_s
      ~limits:t.limits ~infeasible:t.infeasible ~failures:t.failures
      ~lagrangian_solves:t.lagrangian_solves ~lag_iterations:t.lag_iterations
      ~lag_busy_s:t.lag_busy_s ~lag_gap_max:t.lag_gap_max
      ~lag_unrounded:t.lag_unrounded ()
  in
  (* Diagnostics the quiet-by-default Report.Log swallowed during the
     sweep (maze reroute chatter, simplex progress): surface the counts so
     a silent run still shows how much went unreported. *)
  match Report.Log.counts () with
  | [] -> base
  | counts ->
    base
    ^ Printf.sprintf "                  suppressed diagnostics: %s\n"
        (String.concat ", "
           (List.map (fun (src, n) -> Printf.sprintf "%s=%d" src n) counts))

(* True sweep wall clock, accumulated separately from the per-solve busy
   sum: under [-j N] the two diverge, and each tells a different story. *)
let timed telemetry f =
  match telemetry with
  | None -> f ()
  | Some t ->
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        t := { !t with wall_s = !t.wall_s +. (Unix.gettimeofday () -. t0) })
      f

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* Fan tasks over the pool when one is given; otherwise run them in the
   calling domain. Either way results come back in task order and
   [on_done] fires once per completed task in the calling domain. Task
   functions here never raise (solve exceptions are captured as part of
   the task's value), so the pool's own error slots stay unused. *)
let fan ?pool ~on_done f xs =
  match pool with
  | None ->
    List.mapi
      (fun i x ->
        let y = f x in
        on_done i y;
        y)
      xs
  | Some pool ->
    Pool.map pool f xs ~on_done:(fun i r ->
        match r with Ok y -> on_done i y | Error _ -> ())

let solve_outcome ?config ?seed ?warm_basis ~tech ~rules clip =
  try Ok (Optrouter.route ?config ?seed ?warm_basis ~tech ~rules clip)
  with e -> Error e

(* ------------------------------------------------------------------ *)
(* Two-level scheduling                                                *)
(* ------------------------------------------------------------------ *)

(* The sweep's domain budget: one slot per pool domain. A task holds one
   slot while it runs (its own worker) and may widen its inner branch-and-
   bound by whatever extra slots are free at solve start. While the pool
   is saturated every slot is held and solves run single-worker — exactly
   the serial-solver behaviour; at the sweep tail (and during the serial
   baseline of [clip_deltas]) idle domains turn into solver workers for
   the hard solves that remain. Grants happen at solve start only: a
   running solve is never widened mid-flight. *)
let budget_for pool =
  Option.map (fun p -> Pool.Budget.create ~slots:(Pool.domains p)) pool

let with_budget budget config f =
  match budget with
  | None -> f config
  | Some b ->
    let c = Option.value config ~default:Optrouter.default_config in
    let want = c.Optrouter.milp.Optrouter_ilp.Milp.solver_jobs in
    Pool.Budget.with_width b ~want (fun width ->
        let milp =
          { c.Optrouter.milp with Optrouter_ilp.Milp.solver_jobs = width }
        in
        f (Some { c with Optrouter.milp }))

(* A solve that dies (DRC audit failure, numerical trouble escaping the
   solver, ...) is folded into the [Limit] bucket: the sweep survives and
   the telemetry counts the failure; the collector logs it. Deltas are
   measured in the rules' objective ([Rules.objective_value]) so a
   via-objective sweep profiles via impact, not total cost; under the
   default wirelength objective this is exactly [cost - base_cost]. The
   nearest-integer rounding is exact for integral objectives. *)
let entry_for ~clip_name ~base_metrics (r : Rules.t) outcome =
  let obj (m : Route.metrics) =
    Rules.objective_value r.Rules.objective ~wirelength:m.Route.wirelength
      ~vias:m.Route.vias ~cost:m.Route.cost
  in
  let base_cost = base_metrics.Route.cost in
  let delta, cost =
    match outcome with
    | Ok result -> (
      match result.Optrouter.verdict with
      | Optrouter.Routed sol | Optrouter.Near_optimal sol ->
        ( Delta
            (Optrouter_geom.Round.nearest
               (obj sol.Route.metrics -. obj base_metrics)),
          Some sol.Route.metrics.cost )
      | Optrouter.Unroutable -> (Infeasible, None)
      | Optrouter.Limit (Some sol) -> (Limit, Some sol.Route.metrics.cost)
      | Optrouter.Limit None -> (Limit, None))
    | Error _ -> (Limit, None)
  in
  { clip_name; rule_name = r.Rules.name; delta; cost; base_cost }

let warn_failure clip_name rule_name = function
  | Ok _ -> ()
  | Error e ->
    Log.warn (fun m ->
        m "%s under %s: solve failed: %s" clip_name rule_name
          (Printexc.to_string e))

let record telemetry outcome =
  match telemetry with Some t -> t := add_outcome !t outcome | None -> ()

(* The RULE1 baseline gets a triple budget: if it cannot be proved the
   whole clip is dropped, wasting every other solve. With no explicit
   config the tripling applies to [Optrouter.default_config] — an
   [Option.map] here once silently dropped the default 60 s budget's
   tripling on the [None] path. *)
let baseline_config config =
  let c = Option.value config ~default:Optrouter.default_config in
  {
    c with
    Optrouter.milp =
      {
        c.Optrouter.milp with
        Optrouter_ilp.Milp.time_limit_s =
          Option.map (fun t -> 3.0 *. t)
            c.Optrouter.milp.Optrouter_ilp.Milp.time_limit_s;
      };
  }

(* The proved-optimal baseline routing — and the name-keyed basis of its
   root relaxation — reused to seed and warm-start every rule solve of
   the clip. Unproved ([Limit]) baselines would poison every delta, so
   the clip is dropped either way. *)
let baseline_of ~baseline_name clip_name = function
  | Error e ->
    warn_failure clip_name baseline_name (Error e);
    None
  | Ok baseline -> (
    match baseline.Optrouter.verdict with
    | Optrouter.Unroutable | Optrouter.Limit None -> None
    | Optrouter.Limit (Some _) -> None
    (* A near-optimal baseline only ever occurs in Lagrangian-mode
       sweeps, where the seed is an incumbent, never a fast-path proof —
       so deltas are measured against the mode's own baseline and the
       unsound exact fast path can never see it. *)
    | Optrouter.Routed base | Optrouter.Near_optimal base ->
      Some (base, baseline.Optrouter.stats.Optrouter.root_basis))

let rule_entries ?config ?pool ?budget ?telemetry ?on_entry ~tech jobs =
  let solve (clip, (base : Route.solution), warm_basis, r) =
    let outcome =
      with_budget budget config (fun config ->
          solve_outcome ?config ~seed:base ?warm_basis ~tech ~rules:r clip)
    in
    ( entry_for ~clip_name:clip.Clip.c_name ~base_metrics:base.Route.metrics r
        outcome,
      outcome )
  in
  let handle _i (entry, outcome) =
    warn_failure entry.clip_name entry.rule_name outcome;
    match on_entry with Some g -> g entry | None -> ()
  in
  let results = fan ?pool ~on_done:handle solve jobs in
  (* Telemetry is folded in task order, after collection, so the floats
     sum deterministically no matter how the pool schedules. *)
  List.iter (fun (_, outcome) -> record telemetry outcome) results;
  List.map fst results

let clip_deltas ?config ?pool ?telemetry ?on_entry
    ?(baseline = Rules.rule 1) ~tech ~rules clip =
  timed telemetry (fun () ->
      let budget = budget_for pool in
      (* The baseline runs serially in the calling domain while every
         pool worker idles — so it may claim the whole budget as inner
         solver width. *)
      let outcome =
        with_budget budget
          (Some (baseline_config config))
          (fun config -> solve_outcome ?config ~tech ~rules:baseline clip)
      in
      record telemetry outcome;
      match
        baseline_of ~baseline_name:baseline.Rules.name clip.Clip.c_name
          outcome
      with
      | None -> []
      | Some (base, warm) ->
        rule_entries ?config ?pool ?budget ?telemetry ?on_entry ~tech
          (List.map (fun r -> (clip, base, warm, r)) rules))

let sweep ?config ?pool ?telemetry ?on_entry ?(baseline = Rules.rule 1)
    ~tech ~rules clips =
  timed telemetry (fun () ->
      (* Two parallel phases instead of per-clip fan-out: first every
         clip's baseline (RULE1 unless overridden), then the full
         (clip x rule) cross product of the surviving clips — so even a
         handful of clips saturates the pool. Each rule job carries its
         clip's baseline routing as the solver seed. *)
      let budget = budget_for pool in
      let bconfig = baseline_config config in
      let baselines =
        fan ?pool
          ~on_done:(fun _ _ -> ())
          (fun clip ->
            with_budget budget (Some bconfig) (fun config ->
                solve_outcome ?config ~tech ~rules:baseline clip))
          clips
      in
      List.iter (record telemetry) baselines;
      let jobs =
        List.concat
          (List.map2
             (fun clip outcome ->
               match
                 baseline_of ~baseline_name:baseline.Rules.name
                   clip.Clip.c_name outcome
               with
               | None -> []
               | Some (base, warm) ->
                 List.map (fun r -> (clip, base, warm, r)) rules)
             clips baselines)
      in
      rule_entries ?config ?pool ?budget ?telemetry ?on_entry ~tech jobs)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let series entries =
  let by_rule = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      if not (Hashtbl.mem by_rule e.rule_name) then order := e.rule_name :: !order;
      let old = Option.value ~default:[] (Hashtbl.find_opt by_rule e.rule_name) in
      Hashtbl.replace by_rule e.rule_name (delta_value e.delta :: old))
    entries;
  List.rev_map
    (fun name ->
      let values = Array.of_list (Hashtbl.find by_rule name) in
      Array.sort Float.compare values;
      (name, values))
    !order

let infeasible_counts entries =
  let by_rule = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      if not (Hashtbl.mem by_rule e.rule_name) then order := e.rule_name :: !order;
      let old = Option.value ~default:0 (Hashtbl.find_opt by_rule e.rule_name) in
      let bump = match e.delta with Infeasible -> 1 | Delta _ | Limit -> 0 in
      Hashtbl.replace by_rule e.rule_name (old + bump))
    entries;
  List.rev_map (fun name -> (name, Hashtbl.find by_rule name)) !order
