(** BEOL rule sweep over clips (the inner loop of Figure 6).

    Each clip is routed optimally under RULE1 to establish the baseline
    cost, then under every requested rule configuration; the result is the
    Δcost profile the paper plots in Figure 10. Following the paper's
    plotting convention, unroutable clips are reported with Δcost = 500
    ({!infeasible_delta}); solver limits are folded into the same bucket
    (and counted separately).

    Every (clip, rule) solve is independent, so the sweep optionally fans
    out over an {!Optrouter_exec.Pool}: pass [?pool] and the solves run on
    its worker domains while the entry list stays byte-identical to the
    serial path. A solve that raises (a DRC audit failure, numerical
    trouble escaping the solver) is captured per task: the sweep carries
    on, the entry lands in the [Limit] bucket and the telemetry counts it
    under [failures].

    Scheduling is two-level: the pool fans (clip, rule) tasks across
    domains, and a per-sweep {!Optrouter_exec.Pool.Budget} of one slot
    per domain lets solves widen their inner branch-and-bound search
    ([config.milp.solver_jobs], capped by what is free at solve start).
    A saturated pool leaves no spare slots, so mid-sweep solves run
    single-worker exactly as before; the serial RULE1 baseline and the
    sweep tail — where domains idle — hand their slots to the hard solves
    that remain. Without a pool, [solver_jobs] is honoured as given.
    Entries are identical either way: solver parallelism changes node
    counts and (between alternative optima) the witness routing, never
    the proved-optimal cost. *)

type delta =
  | Delta of int
      (** objective - objective(baseline), in the rule's objective
          ({!Optrouter_tech.Rules.objective_value}); under the default
          wirelength objective exactly [cost - cost(RULE1)]. Rounded to
          nearest — exact whenever the objective is integral. *)
  | Infeasible
  | Limit  (** solver gave up (or the solve failed) before proving either way *)

(** The paper's plotting constant for unroutable clips. *)
val infeasible_delta : int

val delta_value : delta -> float

type entry = {
  clip_name : string;
  rule_name : string;
  delta : delta;
  cost : int option;
  base_cost : int;
}

(** Aggregate solver effort across the solves of one sweep. [busy_s] is
    the sum of per-solve wall times — under domain parallelism it exceeds
    the sweep's elapsed time by design (it measures total solver work).
    [wall_s] is the true elapsed wall clock of the sweep call itself; the
    ratio of the two is the achieved parallel speedup. (Before the split a
    single [wall_s] field held the busy sum, mislabelled as wall time.) *)
type telemetry = {
  solves : int;
  fast_path_hits : int;
      (** rule solves answered by re-checking the RULE1 baseline routing —
          no ILP built, zero branch-and-bound nodes *)
  seeded_incumbents : int;
      (** rule solves that started branch and bound from the re-encoded
          baseline routing instead of the maze heuristic *)
  nodes : int;  (** branch-and-bound nodes *)
  simplex_iterations : int;
  root_lp_iters : int;
      (** simplex iterations spent in root-relaxation solves alone *)
  bound_flips : int;
      (** bound-flip ratio-test steps across the root solves *)
  warm_reused : int;
      (** rule solves whose root LP reused the baseline's remapped basis
          as-is *)
  warm_repaired : int;
      (** rule solves whose remapped basis needed structural or
          factorisation repair before reuse *)
  busy_s : float;  (** summed per-solve wall time (aggregate solver work) *)
  wall_s : float;  (** true elapsed wall clock of the sweep *)
  limits : int;  (** solves that hit the node/time limit *)
  infeasible : int;
  failures : int;  (** solves that raised; reported as [Limit] entries *)
  steals : int;
      (** cross-worker frontier steals inside parallel solver searches *)
  solver_busy_s : float;
      (** summed per-worker branch-and-bound busy time across solves *)
  solver_wall_s : float;
      (** summed MILP-solve wall time across the solves of one sweep
          (spans merge by [max] across merged records — see
          {!merge_telemetry}) *)
  peak_workers : int;
      (** widest branch-and-bound search of the sweep; 0 when every solve
          was answered by the fast path *)
  lagrangian_solves : int;
      (** solves that ran the decomposition path
          ([solve_mode = Lagrangian]) *)
  lag_iterations : int;  (** summed sub-gradient iterations *)
  lag_busy_s : float;
      (** summed per-net pricing work across decomposition solves *)
  lag_wall_s : float;
      (** summed decomposition-solve wall time (a span: merges by [max]
          across merged records, like [solver_wall_s]) *)
  lag_gap_max : float;
      (** worst reported optimality gap of any decomposition solve (0
          when none reported one) *)
  lag_unrounded : int;
      (** decomposition solves whose rounding found no feasible routing *)
}

val empty_telemetry : telemetry

(** Merge two telemetry records. Work fields (solves, nodes, iterations,
    [busy_s], [solver_busy_s], ...) are additive and sum; wall fields
    ([wall_s], [solver_wall_s]) are elapsed spans and merge by [max] —
    shards merged here are assumed concurrent, so summing spans would
    report more wall-clock time than actually elapsed under [-j N] (the
    merged value is an elapsed bound, and [busy_s >= wall_s] no longer
    holds by construction for a merged record). [peak_workers] merges by
    [max]. Callers totalling {e sequential} runs should accumulate their
    own span sum alongside (the bench keeps [sections_wall_s]). *)
val merge_telemetry : telemetry -> telemetry -> telemetry

(** Render with {!Optrouter_report.Report.Telemetry}. *)
val render_telemetry : telemetry -> string

(** The solver configuration used for baseline solves: [config]
    (or {!Optrouter_core.Optrouter.default_config} when [None]) with the
    MILP time budget tripled — an unproved baseline drops the whole clip,
    wasting every other solve. Exposed for tests. *)
val baseline_config :
  Optrouter_core.Optrouter.config option -> Optrouter_core.Optrouter.config

(** [clip_deltas ?config ?pool ?telemetry ?on_entry ?baseline ~tech
    ~rules clip] routes [clip] under [baseline] (default [Rules.rule 1])
    and each configuration in [rules]. Clips that are unroutable even
    under the baseline are dropped (returns []).

    For via-objective sweeps pass a baseline carrying the same objective
    as the rules ([Rules.with_objective obj (Rules.rule 1)]): the zero-Δ
    fast path re-checks the baseline routing under each rule, which is
    only a proof of Δ = 0 when both solves optimise the same objective.

    The baseline routing seeds every rule solve
    ({!Optrouter_core.Optrouter.route}'s [?seed]): rules whose DRC accepts
    the baseline are answered without any ILP (the paper's dominant
    zero-Δ case), the rest start branch and bound from a re-encoded
    incumbent when possible. Entries are byte-identical with reuse
    disabled ([config] with [seed_reuse = false]) as long as no solver
    limit is hit; only the solve effort differs.

    The baseline solve is serial (everything depends on it); the rule
    solves fan out over [pool] when given. [on_entry] is invoked from the
    pool's collector — always the calling domain — once per completed
    (clip, rule) solve, in completion order; use it for progress lines.
    [telemetry], when given, is updated in place (deterministically, in
    task order) with every solve including the baseline. *)
val clip_deltas :
  ?config:Optrouter_core.Optrouter.config ->
  ?pool:Optrouter_exec.Pool.t ->
  ?telemetry:telemetry ref ->
  ?on_entry:(entry -> unit) ->
  ?baseline:Optrouter_tech.Rules.t ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t list ->
  Optrouter_grid.Clip.t ->
  entry list

(** [sweep ?config ?pool ?telemetry ?on_entry ?baseline ~tech ~rules
    clips] is [List.concat_map (clip_deltas ...) clips] with better
    parallel scaling: all baselines solve as one batch, then the whole
    (clip x rule) cross product of the surviving clips as a second batch,
    so the pool stays saturated even when each clip has few rules. Each
    cross-product job carries its clip's baseline routing as the solver
    seed, exactly as in {!clip_deltas}. The entry list is identical to
    the serial per-clip path. *)
val sweep :
  ?config:Optrouter_core.Optrouter.config ->
  ?pool:Optrouter_exec.Pool.t ->
  ?telemetry:telemetry ref ->
  ?on_entry:(entry -> unit) ->
  ?baseline:Optrouter_tech.Rules.t ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t list ->
  Optrouter_grid.Clip.t list ->
  entry list

(** [series entries] groups by rule and sorts each rule's Δcost values
    ascending (infeasible / limit = 500 landing last), ready for a
    Figure-10 style plot. *)
val series : entry list -> (string * float array) list

(** Count of infeasible clips per rule, as discussed in Section 4.2. *)
val infeasible_counts : entry list -> (string * int) list
