(** Drivers for every table and figure in the paper's evaluation.

    Each function returns printable data; the benchmark harness
    ([bench/main.exe]) renders them with {!Optrouter_report.Report} and the
    CLI exposes them individually. Experiments that need ILP solves run at
    a reduced default scale (see DESIGN.md, "Substitutions"); the scale is
    a parameter so paper-size runs remain possible. *)

(** Table 2: benchmark designs — technology, design, clock period,
    instance count, utilisation range. *)
val table2_rows : ?seed:int -> unit -> string list list

val table2_header : string list

(** Table 3: the RULE1..RULE11 configuration matrix, extended with the
    DSA via-coloring family RULE12..RULE14 (marked in the added "DSA
    vias" column). *)
val table3_rows : unit -> string list list

val table3_header : string list

type fig8_series = { label : string; top_costs : float array }

(** Figure 8: sorted top-[top] pin costs of AES and M0 implementations in
    N7-9T at three utilisations each. Runs at full design scale —
    extraction involves no ILP. *)
val fig8 : ?seed:int -> ?top:int -> unit -> fig8_series list

type fig10_params = {
  seed : int;
  instance_scale : float;  (** scales Table-2 instance counts down *)
  utils : float list;
  extract : Optrouter_clips.Extract.params;
  top_clips : int;  (** paper: 100; reduced default: 8 *)
  time_limit_s : float;  (** per ILP solve *)
  reuse : bool;
      (** exploit the RULE1 baseline routing in every rule solve (DRC
          fast path + seeded incumbents); default [true]. Entries are
          identical either way — only solver effort changes. *)
  solver_jobs : int;
      (** branch-and-bound worker domains per ILP solve (default 1).
          Under a sweep pool this is a {e request}: solves widen only
          when pool domains are idle (see {!Sweep}). Entries are
          identical either way — proved optima do not depend on it. *)
  solve_mode : Optrouter_core.Optrouter.solve_mode;
      (** [Exact] (default) proves optima with the ILP; [Lagrangian]
          trades the proof for sub-gradient decomposition — entries then
          carry near-optimal costs with a reported gap, which unlocks
          paper-size clips the exact solver cannot finish. *)
  objective : Optrouter_tech.Rules.objective;
      (** applied to the baseline and every swept rule (default
          [Wirelength], the paper's combined cost). [Via_count] /
          [Via_weighted] profile Δvia instead of Δcost — the Figure-10
          axis changes meaning with the objective. *)
}

val default_fig10_params : fig10_params

(** [scaled_profile scale profile] shrinks a Table-2 design profile's
    instance count by [scale] (floored, never below 60 instances) — the
    scale mapping every reduced-size experiment and the CLI share. *)
val scaled_profile :
  float -> Optrouter_design.Design.profile -> Optrouter_design.Design.profile

(** The difficult clips used by Figure 10 for one technology: harvested
    from AES and M0 designs at the given utilisations and ranked by pin
    cost. *)
val difficult_clips :
  ?params:fig10_params -> Optrouter_tech.Tech.t -> Optrouter_grid.Clip.t list

(** Rules evaluated for a technology (Section 4.1: N7-9T skips the rules
    its pin shapes cannot satisfy), excluding the RULE1 baseline. *)
val rules_for : Optrouter_tech.Tech.t -> Optrouter_tech.Rules.t list

(** Figure 10 (a/b/c by technology): Δcost entries for every (clip, rule)
    pair. Feed to {!Sweep.series} for the sorted profiles.

    [pool], [telemetry] and [on_entry] are forwarded to {!Sweep.sweep}:
    with a pool the (clip, rule) solves fan out over its worker domains
    and the entries remain byte-identical to the serial run. *)
val fig10 :
  ?params:fig10_params ->
  ?pool:Optrouter_exec.Pool.t ->
  ?telemetry:Sweep.telemetry ref ->
  ?on_entry:(Sweep.entry -> unit) ->
  Optrouter_tech.Tech.t ->
  Sweep.entry list

(** A deterministic 5x5-track, 4-layer, 4-net clip used by the size
    analysis and the microbenchmarks. *)
val representative_clip : Optrouter_grid.Clip.t

(** Section 4.2 "Analysis of the number of variables and constraints":
    measured ILP sizes of one representative clip under the formulation
    variants, next to the graph quantities the paper's O(.) bounds use. *)
val ilp_size_rows : unit -> string list list

val ilp_size_header : string list

type validation = {
  v_clip : string;
  opt_cost : int option;
  baseline_cost : int option;
}

(** Footnote 6: OptRouter vs the heuristic baseline on difficult clips
    under RULE1. OptRouter's Δcost must be <= 0 wherever both route.
    With [pool], clips are validated on its worker domains. *)
val validate :
  ?params:fig10_params ->
  ?pool:Optrouter_exec.Pool.t ->
  Optrouter_tech.Tech.t ->
  validation list

(** Section 5 runtime study: mean OptRouter CPU seconds on clips of two
    switchbox sizes, with and without SADP + via-restriction rules.
    Returns (size label, without rules, with rules) triples. *)
val runtime : ?params:fig10_params -> unit -> (string * float * float) list
