module Drc = Optrouter_grid.Drc
module Route = Optrouter_grid.Route
module Graph = Optrouter_grid.Graph
module Clip = Optrouter_grid.Clip
module Rules = Optrouter_tech.Rules
module Tech = Optrouter_tech.Tech
module Via_shape = Optrouter_tech.Via_shape
module Milp = Optrouter_ilp.Milp

type stats = {
  sizes : Formulate.sizes;
  nodes : int;
  simplex_iterations : int;
  elapsed_s : float;
}

type verdict =
  | Routed of Route.solution
  | Unroutable
  | Limit of Route.solution option

type result = { verdict : verdict; stats : stats }

type config = {
  options : Formulate.options;
  via_shapes : Via_shape.t list;
  single_vias : bool;
  bidirectional : bool;
  milp : Milp.params;
  drc_check : bool;
  heuristic_incumbent : bool;
}

let default_config =
  {
    options = Formulate.default_options;
    via_shapes = [];
    single_vias = true;
    bidirectional = false;
    milp = Milp.make_params ~max_nodes:20_000 ~time_limit_s:60.0 ();
    drc_check = true;
    heuristic_incumbent = true;
  }

let make_config ?(options = default_config.options)
    ?(via_shapes = default_config.via_shapes)
    ?(single_vias = default_config.single_vias)
    ?(bidirectional = default_config.bidirectional)
    ?(milp = default_config.milp) ?(drc_check = default_config.drc_check)
    ?(heuristic_incumbent = default_config.heuristic_incumbent) () =
  {
    options;
    via_shapes;
    single_vias;
    bidirectional;
    milp;
    drc_check;
    heuristic_incumbent;
  }

exception Drc_failure of string

let src = Logs.Src.create "optrouter.core" ~doc:"optimal router"

module Log = (val Logs.src_log src : Logs.LOG)

let audit ~rules g sol =
  match Drc.check ~rules g sol with
  | [] -> ()
  | v :: _ as all ->
    let msg =
      Format.asprintf "%d violation(s), first: %a" (List.length all)
        (Drc.pp_violation g) v
    in
    raise (Drc_failure msg)

let route_graph ?(config = default_config) ~rules (g : Graph.t) =
  let start = Unix.gettimeofday () in
  let form = Formulate.build ~options:config.options ~rules g in
  (* A quick heuristic routing, lifted to an LP point, seeds branch and
     bound with an incumbent; on these instances the LP bound then prunes
     most of the tree immediately. [Formulate.encode] re-validates the
     point, so an unlucky heuristic result can never corrupt the search. *)
  let initial =
    if not config.heuristic_incumbent then None
    else begin
      let params =
        {
          Optrouter_maze.Maze.default_params with
          Optrouter_maze.Maze.restarts = 10;
          rip_up_rounds = 8;
        }
      in
      match
        (Optrouter_maze.Maze.route ~params ~rules g).Optrouter_maze.Maze.solution
      with
      | Some sol -> Formulate.encode form sol
      | None -> None
    end
  in
  let milp_result = Milp.solve ?initial ~params:config.milp (Formulate.lp form) in
  let elapsed_s = Unix.gettimeofday () -. start in
  let stats =
    {
      sizes = Formulate.sizes form;
      nodes = milp_result.Milp.nodes;
      simplex_iterations = milp_result.Milp.simplex_iterations;
      elapsed_s;
    }
  in
  let decode () =
    let sol = Formulate.decode form milp_result.Milp.x in
    if config.drc_check then audit ~rules g sol;
    sol
  in
  let verdict =
    match milp_result.Milp.outcome with
    | Milp.Proved_optimal ->
      let sol = decode () in
      Log.debug (fun m ->
          m "routed: cost=%d nodes=%d" sol.Route.metrics.cost
            milp_result.Milp.nodes);
      Routed sol
    | Milp.Infeasible -> Unroutable
    | Milp.Feasible -> Limit (Some (decode ()))
    | Milp.Unknown -> Limit None
    | Milp.Unbounded ->
      (* all variables are bounded, so this cannot happen *)
      assert false
  in
  { verdict; stats }

let route ?(config = default_config) ~tech ~rules clip =
  let g =
    Graph.build ~via_shapes:config.via_shapes ~single_vias:config.single_vias
      ~bidirectional:config.bidirectional ~tech ~rules clip
  in
  route_graph ~config ~rules g

let cost_of result =
  match result.verdict with
  | Routed sol | Limit (Some sol) -> Some sol.Route.metrics.cost
  | Unroutable | Limit None -> None
