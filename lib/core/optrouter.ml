module Drc = Optrouter_grid.Drc
module Route = Optrouter_grid.Route
module Graph = Optrouter_grid.Graph
module Clip = Optrouter_grid.Clip
module Rules = Optrouter_tech.Rules
module Tech = Optrouter_tech.Tech
module Via_shape = Optrouter_tech.Via_shape
module Milp = Optrouter_ilp.Milp
module Simplex = Optrouter_ilp.Simplex
module Lagrangian = Optrouter_lagrangian.Lagrangian

type seed_use =
  | Seed_unused
  | Seed_fast_path
  | Seed_incumbent
  | Seed_rejected

type solve_mode = Exact | Lagrangian

type lagrangian_stats = {
  lag_iterations : int;
  dual_bound : float;
  primal_cost : int option;
  lag_gap : float option;
  multiplier_norm : float;
  lag_busy_s : float;
  lag_wall_s : float;
  lag_rounds : int;
  lag_rip_ups : int;
  lag_exact_pricing : bool;
}

type stats = {
  sizes : Formulate.sizes;
  nodes : int;
  simplex_iterations : int;
  root_lp_iters : int;
  bound_flips : int;
  warm_start : Simplex.warm;
  root_basis : (string * Simplex.vstat) list option;
  elapsed_s : float;
  seed_use : seed_use;
  solver_workers : int;
  solver_steals : int;
  solver_busy_s : float;
  solver_wall_s : float;
  dual_btran_saved : int;
  lagrangian : lagrangian_stats option;
}

type verdict =
  | Routed of Route.solution
  | Unroutable
  | Limit of Route.solution option
  | Near_optimal of Route.solution

type result = { verdict : verdict; stats : stats }

type config = {
  options : Formulate.options;
  via_shapes : Via_shape.t list;
  single_vias : bool;
  bidirectional : bool;
  milp : Milp.params;
  solve_mode : solve_mode;
  lagrangian_params : Lagrangian.params;
  drc_check : bool;
  heuristic_incumbent : bool;
  seed_reuse : bool;
  audit : (rules:Rules.t -> Formulate.t -> unit) option;
}

let default_config =
  {
    options = Formulate.default_options;
    via_shapes = [];
    single_vias = true;
    bidirectional = false;
    milp = Milp.make_params ~max_nodes:20_000 ~time_limit_s:60.0 ();
    solve_mode = Exact;
    lagrangian_params = Lagrangian.default_params;
    drc_check = true;
    heuristic_incumbent = true;
    seed_reuse = true;
    audit = None;
  }

let make_config ?(options = default_config.options)
    ?(via_shapes = default_config.via_shapes)
    ?(single_vias = default_config.single_vias)
    ?(bidirectional = default_config.bidirectional)
    ?(milp = default_config.milp) ?(solve_mode = default_config.solve_mode)
    ?(lagrangian_params = default_config.lagrangian_params)
    ?(drc_check = default_config.drc_check)
    ?(heuristic_incumbent = default_config.heuristic_incumbent)
    ?(seed_reuse = default_config.seed_reuse) ?audit () =
  {
    options;
    via_shapes;
    single_vias;
    bidirectional;
    milp;
    solve_mode;
    lagrangian_params;
    drc_check;
    heuristic_incumbent;
    seed_reuse;
    audit;
  }

(* Canonical text of the result-relevant configuration subset, for
   content-addressed cache keys. Includes exactly the fields that change
   which routings are feasible or what they cost: formulation options,
   the via-shape menu, single_vias, bidirectional, and the MILP
   integrality tolerance. Deliberately excludes effort-only knobs —
   time/node limits, solver_jobs, pricing/refactorisation, drc_check,
   heuristic_incumbent, seed_reuse, audit — which change how fast a
   proven answer arrives, never the answer itself (only *proven* results
   may be cached under a key built from this). [solve_mode] IS included:
   Lagrangian results are near-optimal rather than proven, so the two
   modes must never share a cache entry. Fixed order and spelling:
   part of the serve cache's key format, versioned there. *)
let config_fingerprint c =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "options:vertex_exclusivity=%b;sadp_aux_vars=%b;aggregated_flows=%b\n"
       c.options.Formulate.vertex_exclusivity
       c.options.Formulate.sadp_aux_vars c.options.Formulate.aggregated_flows);
  List.iter
    (fun (v : Via_shape.t) ->
      Buffer.add_string b
        (Printf.sprintf "via_shape:name=%s;width=%d;height=%d;cost=%d\n"
           v.Via_shape.name v.Via_shape.width v.Via_shape.height
           v.Via_shape.cost))
    c.via_shapes;
  Buffer.add_string b
    (Printf.sprintf "single_vias=%b;bidirectional=%b\n" c.single_vias
       c.bidirectional);
  Buffer.add_string b
    (Printf.sprintf "milp:integrality_tol=%.17g\n"
       c.milp.Milp.integrality_tol);
  Buffer.add_string b
    (Printf.sprintf "solve_mode=%s\n"
       (match c.solve_mode with Exact -> "exact" | Lagrangian -> "lagrangian"));
  Buffer.contents b

exception Drc_failure of string

let src = Logs.Src.create "optrouter.core" ~doc:"optimal router"

module Log = (val Logs.src_log src : Logs.LOG)

let audit ~rules g sol =
  match Drc.check ~rules g sol with
  | [] -> ()
  | v :: _ as all ->
    let msg =
      Format.asprintf "%d violation(s), first: %a" (List.length all)
        (Drc.pp_violation g) v
    in
    raise (Drc_failure msg)

(* Fast-path solves never build a formulation; their sizes are all zero. *)
let no_sizes = { Formulate.vars = 0; binaries = 0; rows = 0; nonzeros = 0 }

(* Soundness of the zero-Δ fast path: [seed] must be an optimal routing
   under a rule configuration whose feasible set CONTAINS this one (in the
   sweep, the RULE1 baseline — every RULEk only adds constraints). A clean
   DRC check then proves the seed is RULEk-feasible, so
   cost(RULEk) <= cost(seed) = cost(relaxation) <= cost(RULEk): the seed is
   optimal here too and no ILP is needed. A solution from a foreign graph
   can only pass the check by actually being a clean routing of this graph's
   nets, so a raised or failed check simply falls through to the ILP. *)
let fast_path ~rules g (sol : Route.solution) =
  match Drc.check ~rules g sol with
  | [] ->
    let metrics = Route.metrics_of g sol.Route.routes in
    Some { Route.routes = sol.Route.routes; metrics }
  | _ :: _ -> None
  (* Named binder, not [_]: the swallow is deliberate (a seed from a
     foreign graph may make Drc.check raise anything) and the source lint
     (L003) insists it stays greppable. *)
  | exception _foreign_seed_exn -> None

(* The decomposition path. The exact fast path is unsound here: a seed
   is a baseline that may itself be near-optimal rather than optimal, so
   it only ever serves as the initial incumbent (upper bound). The only
   proven verdict this mode emits is [Unroutable] by plain graph
   reachability; a feasible routing comes back as [Near_optimal] with
   the dual bound and gap in [stats.lagrangian]. *)
let route_lagrangian ~config ?seed ~rules (g : Graph.t) ~start =
  let params =
    {
      config.lagrangian_params with
      Lagrangian.jobs = config.milp.Milp.solver_jobs;
      time_limit_s = config.milp.Milp.time_limit_s;
    }
  in
  let r = Lagrangian.solve ~params ?seed ~rules g in
  let verdict =
    if r.Lagrangian.unreachable then Unroutable
    else
      match r.Lagrangian.solution with
      | Some sol -> Near_optimal sol
      | None -> Limit None
  in
  let seed_use =
    match seed with None -> Seed_unused | Some _ -> Seed_incumbent
  in
  let stats =
    {
      sizes = no_sizes;
      nodes = 0;
      simplex_iterations = 0;
      root_lp_iters = 0;
      bound_flips = 0;
      warm_start = `Cold;
      root_basis = None;
      elapsed_s = Unix.gettimeofday () -. start;
      seed_use;
      solver_workers = r.Lagrangian.workers;
      solver_steals = 0;
      solver_busy_s = r.Lagrangian.busy_s;
      solver_wall_s = r.Lagrangian.wall_s;
      dual_btran_saved = 0;
      lagrangian =
        Some
          {
            lag_iterations = r.Lagrangian.iterations;
            dual_bound = r.Lagrangian.dual_bound;
            primal_cost =
              Option.map
                (fun (s : Route.solution) -> s.Route.metrics.cost)
                r.Lagrangian.solution;
            lag_gap = r.Lagrangian.gap;
            multiplier_norm = r.Lagrangian.multiplier_norm;
            lag_busy_s = r.Lagrangian.busy_s;
            lag_wall_s = r.Lagrangian.wall_s;
            lag_rounds = r.Lagrangian.rounding_attempts;
            lag_rip_ups = r.Lagrangian.rip_ups;
            lag_exact_pricing = r.Lagrangian.exact_pricing;
          };
    }
  in
  { verdict; stats }

let route_graph ?(config = default_config) ?seed ?warm_basis ~rules
    (g : Graph.t) =
  let start = Unix.gettimeofday () in
  let seed = if config.seed_reuse then seed else None in
  let warm_basis = if config.seed_reuse then warm_basis else None in
  match config.solve_mode with
  | Lagrangian -> route_lagrangian ~config ?seed ~rules g ~start
  | Exact -> (
  match Option.bind seed (fast_path ~rules g) with
  | Some sol ->
    Log.debug (fun m ->
        m "seed clean under %s: fast path, cost=%d" rules.Rules.name
          sol.Route.metrics.cost);
    let stats =
      {
        sizes = no_sizes;
        nodes = 0;
        simplex_iterations = 0;
        root_lp_iters = 0;
        bound_flips = 0;
        warm_start = `Cold;
        root_basis = None;
        elapsed_s = Unix.gettimeofday () -. start;
        seed_use = Seed_fast_path;
        solver_workers = 0;
        solver_steals = 0;
        solver_busy_s = 0.0;
        solver_wall_s = 0.0;
        dual_btran_saved = 0;
        lagrangian = None;
      }
    in
    { verdict = Routed sol; stats }
  | None ->
  let form = Formulate.build ~options:config.options ~rules g in
  Option.iter (fun f -> f ~rules form) config.audit;
  (* A known-good routing lifted to an LP point seeds branch and bound with
     an incumbent; the LP bound then prunes most of the tree immediately.
     Preference order: the caller's seed (a baseline routing that just
     failed the fast-path check rarely encodes, but when it does it is
     free), then a quick heuristic routing. [Formulate.encode] re-validates
     the point, so an unlucky candidate can never corrupt the search. *)
  let seeded = Option.bind seed (Formulate.encode form) in
  let seed_use =
    match (seed, seeded) with
    | None, _ -> Seed_unused
    | Some _, Some _ -> Seed_incumbent
    | Some _, None -> Seed_rejected
  in
  let initial =
    match seeded with
    | Some _ -> seeded
    | None when not config.heuristic_incumbent -> None
    | None -> begin
      let params =
        {
          Optrouter_maze.Maze.default_params with
          Optrouter_maze.Maze.restarts = 10;
          rip_up_rounds = 8;
        }
      in
      match
        (Optrouter_maze.Maze.route ~params ~rules g).Optrouter_maze.Maze.solution
      with
      | Some sol -> Formulate.encode form sol
      | None -> None
    end
  in
  let lp = Formulate.lp form in
  (* A name-keyed basis from a related solve (the sweep's RULE1 baseline)
     is remapped onto this LP's columns; the simplex reports whether it
     actually reused it, and a remap that had to patch structural
     differences downgrades [`Reused] to [`Repaired]. *)
  let root_basis, remap_patched =
    match warm_basis with
    | None -> (None, false)
    | Some assoc ->
      let b, fixup = Simplex.Basis.of_assoc lp assoc in
      (Some b, fixup = `Patched)
  in
  let milp_result = Milp.solve ?initial ?root_basis ~params:config.milp lp in
  let elapsed_s = Unix.gettimeofday () -. start in
  let warm_start =
    match milp_result.Milp.root_warm with
    | `Reused when remap_patched -> `Repaired
    | w -> w
  in
  let stats =
    {
      sizes = Formulate.sizes form;
      nodes = milp_result.Milp.nodes;
      simplex_iterations = milp_result.Milp.simplex_iterations;
      root_lp_iters = milp_result.Milp.root_lp_iters;
      bound_flips = milp_result.Milp.root_bound_flips;
      warm_start;
      root_basis =
        Option.map (Simplex.Basis.to_assoc lp) milp_result.Milp.root_basis;
      elapsed_s;
      seed_use;
      solver_workers = milp_result.Milp.workers;
      solver_steals = milp_result.Milp.steals;
      solver_busy_s = milp_result.Milp.solver_busy_s;
      solver_wall_s = milp_result.Milp.solver_wall_s;
      dual_btran_saved = milp_result.Milp.dual_btran_saved;
      lagrangian = None;
    }
  in
  let decode () =
    let sol = Formulate.decode form milp_result.Milp.x in
    if config.drc_check then audit ~rules g sol;
    sol
  in
  let verdict =
    match milp_result.Milp.outcome with
    | Milp.Proved_optimal ->
      let sol = decode () in
      Log.debug (fun m ->
          m "routed: cost=%d nodes=%d" sol.Route.metrics.cost
            milp_result.Milp.nodes);
      Routed sol
    | Milp.Infeasible -> Unroutable
    | Milp.Feasible -> Limit (Some (decode ()))
    | Milp.Unknown -> Limit None
    | Milp.Unbounded ->
      (* all variables are bounded, so this cannot happen *)
      assert false
  in
  { verdict; stats })

let route ?(config = default_config) ?seed ?warm_basis ~tech ~rules clip =
  let g =
    Graph.build ~via_shapes:config.via_shapes ~single_vias:config.single_vias
      ~bidirectional:config.bidirectional ~tech ~rules clip
  in
  route_graph ~config ?seed ?warm_basis ~rules g

let cost_of result =
  match result.verdict with
  | Routed sol | Limit (Some sol) | Near_optimal sol ->
    Some sol.Route.metrics.cost
  | Unroutable | Limit None -> None
