(** OptRouter: cost-optimal, design-rule-correct switchbox routing.

    The end-to-end driver of the paper's Figure 6 inner loop: elaborate a
    clip into a routing graph under a rule configuration, build the ILP,
    solve it with branch and bound, decode the optimal routing and verify
    it with the independent DRC checker.

    Routing cost is [wirelength + via_weight * #vias] (the paper uses
    via_weight = 4, carried by the technology preset). *)

(** Which solve engine {!route} / {!route_graph} runs.

    [Exact] is the paper's path: build the full ILP and prove the optimum
    with branch and bound. [Lagrangian] dualises the shared capacity rows
    and runs the sub-gradient decomposition of
    {!Optrouter_lagrangian.Lagrangian}: per-net subproblems priced in
    parallel, a valid dual (lower) bound, and a DRC-certified feasible
    routing obtained by rounding — {e near-optimal}, never proven, with
    the bound and gap reported in [stats.lagrangian]. Use it for clips
    beyond the exact solver's reach (the paper-size 7×10×8 regime). *)
type solve_mode = Exact | Lagrangian

(** Decomposition-mode counters, present iff the solve ran with
    [solve_mode = Lagrangian]. *)
type lagrangian_stats = {
  lag_iterations : int;  (** sub-gradient iterations run *)
  dual_bound : float;
      (** integral-lifted lower bound on the ILP optimum (0 when no
          iteration completed) *)
  primal_cost : int option;  (** cost of the returned routing, if any *)
  lag_gap : float option;
      (** (primal - dual_bound) / primal; [None] without a feasible
          routing *)
  multiplier_norm : float;  (** final multiplier 2-norm *)
  lag_busy_s : float;  (** summed per-net pricing work across domains *)
  lag_wall_s : float;  (** wall clock of the decomposition solve alone *)
  lag_rounds : int;  (** rounding attempts *)
  lag_rip_ups : int;  (** nets ripped up across repair rounds *)
  lag_exact_pricing : bool;
      (** every per-net subproblem was priced exactly (sink counts within
          the Steiner-DP cap) *)
}

(** How a [?seed] routing was exploited by a solve. *)
type seed_use =
  | Seed_unused  (** no seed given, or [seed_reuse] disabled *)
  | Seed_fast_path
      (** seed passed the DRC check under these rules: returned as the
          proven optimum without building or solving any ILP *)
  | Seed_incumbent
      (** seed encoded onto this formulation and handed to branch and
          bound as the starting incumbent *)
  | Seed_rejected
      (** seed violates these rules and could not be encoded; the solve
          fell back to the heuristic incumbent *)

type stats = {
  sizes : Formulate.sizes;
      (** all zero for a {!Seed_fast_path} solve — no ILP was built *)
  nodes : int;  (** branch-and-bound nodes *)
  simplex_iterations : int;
  root_lp_iters : int;
      (** simplex iterations of the root-relaxation solve alone *)
  bound_flips : int;  (** bound-flip ratio-test steps of the root solve *)
  warm_start : Optrouter_ilp.Simplex.warm;
      (** whether the [?warm_basis] was reused by the root solve:
          [`Cold] (none given, or abandoned), [`Reused] (applied as-is)
          or [`Repaired] (name remap or factorisation had to patch it) *)
  root_basis : (string * Optrouter_ilp.Simplex.vstat) list option;
      (** name-keyed optimal basis of the root relaxation, for reuse as
          [?warm_basis] on a related solve; [None] when the root LP did
          not finish, or on fast-path solves *)
  elapsed_s : float;  (** wall-clock seconds (valid under domain parallelism) *)
  seed_use : seed_use;
  solver_workers : int;
      (** parallel width of the branch-and-bound search; 0 for fast-path
          solves (no search ran at all) *)
  solver_steals : int;  (** cross-worker frontier steals inside the solve *)
  solver_busy_s : float;
      (** summed per-worker node-processing time of the solve *)
  solver_wall_s : float;  (** wall clock of the MILP solve alone *)
  dual_btran_saved : int;
      (** BTRAN passes saved by the incremental dual update, summed over
          the solve's LP re-optimisations *)
  lagrangian : lagrangian_stats option;
      (** decomposition counters; [Some] iff [solve_mode = Lagrangian] *)
}

type verdict =
  | Routed of Optrouter_grid.Route.solution  (** proved optimal *)
  | Unroutable  (** the ILP is infeasible under this rule configuration *)
  | Limit of Optrouter_grid.Route.solution option
      (** node/time limit hit; holds the incumbent if one was found *)
  | Near_optimal of Optrouter_grid.Route.solution
      (** Lagrangian mode: DRC-certified feasible routing with a valid
          dual bound ([stats.lagrangian]), but {e no} optimality proof *)

type result = { verdict : verdict; stats : stats }

type config = {
  options : Formulate.options;
  via_shapes : Optrouter_tech.Via_shape.t list;
  single_vias : bool;
  bidirectional : bool;
  milp : Optrouter_ilp.Milp.params;
  solve_mode : solve_mode;
  lagrangian_params : Optrouter_lagrangian.Lagrangian.params;
      (** decomposition knobs; [jobs] and [time_limit_s] are overridden
          at solve time by [milp.solver_jobs] / [milp.time_limit_s] so
          both modes share one effort budget (and the sweep's
          [Pool.Budget] width grants apply unchanged) *)
  drc_check : bool;
      (** audit optimal solutions with {!Optrouter_grid.Drc} and raise on
          violation; default [true] — a violation means a formulation bug *)
  heuristic_incumbent : bool;
      (** seed branch and bound with a quick {!Optrouter_maze.Maze} routing
          lifted through {!Formulate.encode}; default [true]. Optimality is
          unaffected (the point is re-validated), only solve time. *)
  seed_reuse : bool;
      (** honour the [?seed] argument of {!route} / {!route_graph};
          default [true]. When [false], seeds are ignored entirely — the
          escape hatch behind the sweep's [--no-reuse] flag, useful to
          verify that reuse changes solve effort but never results. *)
  audit : (rules:Optrouter_tech.Rules.t -> Formulate.t -> unit) option;
      (** invoked on every formulation right after {!Formulate.build},
          before any solving; default [None]. The model auditor
          ([Optrouter_analysis.Lp_audit.hook]) plugs in here — as a
          callback so the core stays free of a dependency on the analysis
          subsystem. Raise from the callback to abort the solve. Fast-path
          solves build no formulation and are not audited. *)
}

val default_config : config

(** [make_config ()] is {!default_config}; each argument overrides one
    field. Prefer this over record literals at call sites so future
    configuration fields are non-breaking. *)
val make_config :
  ?options:Formulate.options ->
  ?via_shapes:Optrouter_tech.Via_shape.t list ->
  ?single_vias:bool ->
  ?bidirectional:bool ->
  ?milp:Optrouter_ilp.Milp.params ->
  ?solve_mode:solve_mode ->
  ?lagrangian_params:Optrouter_lagrangian.Lagrangian.params ->
  ?drc_check:bool ->
  ?heuristic_incumbent:bool ->
  ?seed_reuse:bool ->
  ?audit:(rules:Optrouter_tech.Rules.t -> Formulate.t -> unit) ->
  unit ->
  config

(** Canonical text of the configuration subset that determines routing
    {e results} (formulation options, via-shape menu, [single_vias],
    [bidirectional], the MILP integrality tolerance) — the params
    component of content-addressed cache keys. Effort-only knobs
    (limits, parallel widths, pricing, [drc_check],
    [heuristic_incumbent], [seed_reuse], [audit]) are deliberately
    excluded: they change how fast a proven answer arrives, never the
    answer, so configs differing only in effort share cache entries.
    [solve_mode] {e is} included — Lagrangian answers are near-optimal,
    not proven, so the modes must never share an entry. Stable by
    contract; format changes require a cache-key version bump
    (see [Optrouter_serve.Cache]). *)
val config_fingerprint : config -> string

exception Drc_failure of string

(** Route a clip under a rule configuration.

    [seed], when given, MUST be an optimal routing of the same clip (under
    the same [config] graph options) for a rule configuration whose
    feasible set contains this one — in the rule sweep, the RULE1 baseline:
    every RULEk only adds constraints. Because rules are monotone, a seed
    that passes the independent DRC check under [rules] is immediately a
    proven optimum ({!Seed_fast_path}: zero B&B nodes, no ILP built);
    otherwise the solve re-encodes it as the starting incumbent when
    possible ({!Seed_incumbent}) and falls back to the heuristic incumbent
    when not ({!Seed_rejected}). Results are identical with or without a
    seed (and with [seed_reuse] off) up to solver limits — only the effort
    changes. Passing a merely-feasible (non-optimal) seed is unsound: the
    fast path would report it as optimal.

    [warm_basis], when given, is a name-keyed LP basis from a related
    solve (typically [stats.root_basis] of the RULE1 baseline), remapped
    onto this formulation via {!Optrouter_ilp.Simplex.Basis.of_assoc} and
    used to warm-start the root relaxation. Unlike [?seed] it carries no
    optimality claim, so any basis is safe — the simplex re-optimises
    dually and falls back to a cold start when it does not help. Gated by
    [seed_reuse], like seeds. *)
val route :
  ?config:config ->
  ?seed:Optrouter_grid.Route.solution ->
  ?warm_basis:(string * Optrouter_ilp.Simplex.vstat) list ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Clip.t ->
  result

(** Route over an already-built graph (the graph must have been built with
    the same rules). [seed] and [warm_basis] as in {!route}; the seed's
    edge ids must refer to [g] (graph construction is deterministic and
    rule-independent, so a solution decoded from any rule configuration of
    the same clip, tech and graph options is valid). *)
val route_graph :
  ?config:config ->
  ?seed:Optrouter_grid.Route.solution ->
  ?warm_basis:(string * Optrouter_ilp.Simplex.vstat) list ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Graph.t ->
  result

(** [cost_of result] is the routing cost, or [None] when unroutable /
    no incumbent. *)
val cost_of : result -> int option
