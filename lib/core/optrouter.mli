(** OptRouter: cost-optimal, design-rule-correct switchbox routing.

    The end-to-end driver of the paper's Figure 6 inner loop: elaborate a
    clip into a routing graph under a rule configuration, build the ILP,
    solve it with branch and bound, decode the optimal routing and verify
    it with the independent DRC checker.

    Routing cost is [wirelength + via_weight * #vias] (the paper uses
    via_weight = 4, carried by the technology preset). *)

type stats = {
  sizes : Formulate.sizes;
  nodes : int;  (** branch-and-bound nodes *)
  simplex_iterations : int;
  elapsed_s : float;  (** wall-clock seconds (valid under domain parallelism) *)
}

type verdict =
  | Routed of Optrouter_grid.Route.solution  (** proved optimal *)
  | Unroutable  (** the ILP is infeasible under this rule configuration *)
  | Limit of Optrouter_grid.Route.solution option
      (** node/time limit hit; holds the incumbent if one was found *)

type result = { verdict : verdict; stats : stats }

type config = {
  options : Formulate.options;
  via_shapes : Optrouter_tech.Via_shape.t list;
  single_vias : bool;
  bidirectional : bool;
  milp : Optrouter_ilp.Milp.params;
  drc_check : bool;
      (** audit optimal solutions with {!Optrouter_grid.Drc} and raise on
          violation; default [true] — a violation means a formulation bug *)
  heuristic_incumbent : bool;
      (** seed branch and bound with a quick {!Optrouter_maze.Maze} routing
          lifted through {!Formulate.encode}; default [true]. Optimality is
          unaffected (the point is re-validated), only solve time. *)
}

val default_config : config

(** [make_config ()] is {!default_config}; each argument overrides one
    field. Prefer this over record literals at call sites so future
    configuration fields are non-breaking. *)
val make_config :
  ?options:Formulate.options ->
  ?via_shapes:Optrouter_tech.Via_shape.t list ->
  ?single_vias:bool ->
  ?bidirectional:bool ->
  ?milp:Optrouter_ilp.Milp.params ->
  ?drc_check:bool ->
  ?heuristic_incumbent:bool ->
  unit ->
  config

exception Drc_failure of string

(** Route a clip under a rule configuration. *)
val route :
  ?config:config ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Clip.t ->
  result

(** Route over an already-built graph (the graph must have been built with
    the same rules). *)
val route_graph :
  ?config:config ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Graph.t ->
  result

(** [cost_of result] is the routing cost, or [None] when unroutable /
    no incumbent. *)
val cost_of : result -> int option
