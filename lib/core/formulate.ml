module Drc = Optrouter_grid.Drc
module Route = Optrouter_grid.Route
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Layer = Optrouter_tech.Layer
module Rules = Optrouter_tech.Rules
module Lp = Optrouter_ilp.Lp

type options = {
  vertex_exclusivity : bool;
  sadp_aux_vars : bool;
  aggregated_flows : bool;
}

let default_options =
  { vertex_exclusivity = true; sadp_aux_vars = false; aggregated_flows = false }

type sizes = { vars : int; binaries : int; rows : int; nonzeros : int }

type t = {
  lp : Lp.t;
  graph : Graph.t;
  options : options;
  e : int array;
  f : int array;
      (** (((net * |E| + edge) * 2 + dir) * max_sinks) + sink -> column;
          aggregated mode uses sink slot 0 only *)
  max_sinks : int;
  u : int array;  (** (net * ngrid + vertex) -> column or -1 *)
  p : int array;  (** ((net * ngrid) + vertex) * 2 + side -> column or -1 *)
  products : (int, (int option * int * int) list) Hashtbl.t;
      (** p column -> [(q column, a, b)] product pairs defining it *)
  dsa_cols : (int, int array) Hashtbl.t;
      (** via edge id -> color columns (only conflicted sites, only
          under DSA rules; empty otherwise) *)
  dsa_pairs : (int * int) list;
      (** conflicting via-edge pairs, mirroring the dsa_cf_ rows *)
}

let lp t = t.lp
let graph t = t.graph
let options t = t.options

let sizes t =
  let binaries =
    Array.fold_left
      (fun acc (v : Lp.var) -> if v.kind = Lp.Integer then acc + 1 else acc)
      0 t.lp.vars
  in
  {
    vars = Lp.nvars t.lp;
    binaries;
    rows = Lp.nrows t.lp;
    nonzeros = Lp.nnz t.lp;
  }

let e_var t ~net ~edge ~dir =
  t.e.(((net * Array.length t.graph.edges) + edge) * 2 + dir)

(* Directions: dir 0 carries flow u -> v, dir 1 carries v -> u. *)
let arc_out g edge_id dir v =
  let e = g.Graph.edges.(edge_id) in
  if dir = 0 then e.Graph.u = v else e.Graph.v = v

let allowed (g : Graph.t) k edge_id =
  match g.edges.(edge_id).Graph.net_only with
  | None -> true
  | Some k' -> k = k'

(* SADP side convention: From_low is the paper's p_l (the wire arrives from
   the low-coordinate side along the preferred direction, so the line end
   at this vertex points high); From_high is p_r. *)
type sadp_side = From_low | From_high

let side_index = function From_low -> 0 | From_high -> 1

let build ?(options = default_options) ~(rules : Rules.t) (g : Graph.t) =
  let b = Lp.Builder.create () in
  let cols = g.clip.Clip.cols
  and rows = g.clip.Clip.rows
  and nz = g.clip.Clip.layers in
  let ngrid = cols * rows * nz in
  let nedges = Array.length g.edges in
  let nnets = Array.length g.nets in
  let sinks k = Array.length g.nets.(k).Graph.sinks in
  let max_sinks =
    let m = ref 1 in
    for k = 0 to nnets - 1 do
      m := max !m (sinks k)
    done;
    !m
  in
  let e = Array.make (nnets * nedges * 2) (-1) in
  let f = Array.make (nnets * nedges * 2 * max_sinks) (-1) in
  let idx k gid dir = ((k * nedges) + gid) * 2 + dir in
  let fidx k gid dir t = (idx k gid dir * max_sinks) + t in

  (* ---- arc variables with linking rows (2)-(3) ----
     The paper's formulation carries one aggregated flow per arc, with the
     source emitting |T_k| units and e >= f / |T_k|. By default we use the
     disaggregated per-sink unit flows instead: e >= f_t for each sink t
     and e <= sum_t f_t. Integer optima coincide, but the disaggregated LP
     relaxation is strictly tighter (shared Steiner arcs cannot be paid
     fractionally), which is what makes the bundled branch-and-bound
     practical. [aggregated_flows = true] restores the paper's exact
     formulation. *)
  (* Objective coefficients per the rule configuration's objective mode:
     the default reproduces the standard edge costs; the via-objective
     modes re-weight (or isolate) the cost-carrying via edges. *)
  let obj_coeff gid =
    let ed = g.edges.(gid) in
    let via =
      match ed.Graph.kind with
      | Graph.Via _ | Graph.Shape_lower _ -> true
      | Graph.Wire _ | Graph.Shape_upper _ | Graph.Access -> false
    in
    Rules.objective_coeff rules.Rules.objective ~via ~cost:ed.Graph.cost
  in
  for k = 0 to nnets - 1 do
    let nt = sinks k in
    for gid = 0 to nedges - 1 do
      if allowed g k gid then begin
        let cost = obj_coeff gid in
        for dir = 0 to 1 do
          let suffix = Printf.sprintf "n%d_g%d_d%d" k gid dir in
          let ev = Lp.Builder.add_binary b ~name:("e_" ^ suffix) ~obj:cost in
          e.(idx k gid dir) <- ev;
          if options.aggregated_flows then begin
            let fv =
              Lp.Builder.add_var b ~name:("f_" ^ suffix) ~lower:0.0
                ~upper:(float_of_int nt) ~obj:0.0 Lp.Continuous
            in
            f.(fidx k gid dir 0) <- fv;
            Lp.Builder.add_row b ~name:("lk2_" ^ suffix)
              [ (ev, float_of_int nt); (fv, -1.0) ]
              Lp.Ge 0.0;
            Lp.Builder.add_row b ~name:("lk3_" ^ suffix)
              [ (ev, 1.0); (fv, -1.0) ]
              Lp.Le 0.0
          end
          else begin
            let fvs =
              List.init nt (fun t ->
                  let fv =
                    Lp.Builder.add_var b
                      ~name:(Printf.sprintf "f_%s_t%d" suffix t)
                      ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous
                  in
                  f.(fidx k gid dir t) <- fv;
                  Lp.Builder.add_row b
                    ~name:(Printf.sprintf "lk2_%s_t%d" suffix t)
                    [ (ev, 1.0); (fv, -1.0) ]
                    Lp.Ge 0.0;
                  fv)
            in
            Lp.Builder.add_row b ~name:("lk3_" ^ suffix)
              ((ev, 1.0) :: List.map (fun fv -> (fv, -1.0)) fvs)
              Lp.Le 0.0
          end
        done
      end
    done
  done;

  (* Summed e-usage (both directions, all permitted nets) of an edge. *)
  let edge_usage_terms ?except gid =
    let terms = ref [] in
    for k = 0 to nnets - 1 do
      let skip = match except with Some k' -> k = k' | None -> false in
      if (not skip) && allowed g k gid then
        terms := (e.(idx k gid 0), 1.0) :: (e.(idx k gid 1), 1.0) :: !terms
    done;
    !terms
  in

  (* ---- arc exclusivity (1) ---- *)
  for gid = 0 to nedges - 1 do
    match edge_usage_terms gid with
    | [] -> ()
    | terms ->
      Lp.Builder.add_row b ~name:(Printf.sprintf "cap_g%d" gid) terms Lp.Le 1.0
  done;

  (* ---- flow conservation (4) ---- *)
  for k = 0 to nnets - 1 do
    let net = g.nets.(k) in
    let commodities =
      (* aggregated: one commodity of |T_k| units absorbed 1 per sink;
         disaggregated: one unit commodity per sink *)
      if options.aggregated_flows then [ None ]
      else List.init (sinks k) (fun t -> Some t)
    in
    List.iter
      (fun commodity ->
        let slot = Option.value commodity ~default:0 in
        for v = 0 to g.nverts - 1 do
          let terms = ref [] in
          Array.iter
            (fun (gid, _other) ->
              if allowed g k gid then
                for dir = 0 to 1 do
                  let sign = if arc_out g gid dir v then 1.0 else -1.0 in
                  terms := (f.(fidx k gid dir slot), sign) :: !terms
                done)
            g.adj.(v);
          if !terms <> [] then begin
            let rhs =
              match commodity with
              | None ->
                if v = net.Graph.source then float_of_int (sinks k)
                else if Array.exists (fun s -> s = v) net.Graph.sinks then -1.0
                else 0.0
              | Some t ->
                if v = net.Graph.source then 1.0
                else if net.Graph.sinks.(t) = v then -1.0
                else 0.0
            in
            Lp.Builder.add_row b
              ~name:(Printf.sprintf "flow_n%d_t%d_v%d" k slot v)
              !terms Lp.Eq rhs
          end
        done)
      commodities
  done;

  (* ---- vertex exclusivity (see interface) ---- *)
  let u_arr = Array.make (nnets * ngrid) (-1) in
  if options.vertex_exclusivity && nnets > 1 then
    for v = 0 to ngrid - 1 do
      if not g.blocked.(v) then begin
        let us = ref [] in
        for k = 0 to nnets - 1 do
          let incident =
            Array.to_list g.adj.(v)
            |> List.filter (fun (gid, _) -> allowed g k gid)
          in
          if incident <> [] then begin
            let u =
              Lp.Builder.add_var b
                ~name:(Printf.sprintf "u_n%d_v%d" k v)
                ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous
            in
            u_arr.((k * ngrid) + v) <- u;
            List.iter
              (fun (gid, _) ->
                Lp.Builder.add_row b
                  ~name:(Printf.sprintf "vx_n%d_v%d_g%d" k v gid)
                  [ (e.(idx k gid 0), 1.0); (e.(idx k gid 1), 1.0); (u, -1.0) ]
                  Lp.Le 0.0)
              incident;
            us := (u, 1.0) :: !us
          end
        done;
        match !us with
        | [] | [ _ ] -> ()
        | us ->
          Lp.Builder.add_row b ~name:(Printf.sprintf "vcap_v%d" v) us Lp.Le 1.0
      end
    done;

  (* ---- via adjacency restrictions ---- *)
  let canonical_offsets =
    match rules.Rules.via_restriction with
    | Rules.No_blocking -> []
    | Rules.Orthogonal -> [ (1, 0); (0, 1) ]
    | Rules.Orthogonal_diagonal -> [ (1, 0); (0, 1); (1, 1); (1, -1) ]
  in
  if canonical_offsets <> [] then
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          match g.via_site.(((z * rows) + y) * cols + x) with
          | None -> ()
          | Some site1 ->
            List.iter
              (fun (dx, dy) ->
                let x' = x + dx and y' = y + dy in
                if x' >= 0 && x' < cols && y' >= 0 && y' < rows then
                  match g.via_site.(((z * rows) + y') * cols + x') with
                  | None -> ()
                  | Some site2 ->
                    let terms =
                      edge_usage_terms site1 @ edge_usage_terms site2
                    in
                    Lp.Builder.add_row b
                      ~name:
                        (Printf.sprintf "viadj_z%d_%d_%d_%d_%d" z x y x' y')
                      terms Lp.Le 1.0)
              canonical_offsets
        done
      done
    done;

  (* Pin access points are V12 vias: the same adjacency restriction
     applies between them (and it is what disqualifies several rules on
     N7-9T pin geometries, Section 4.1). *)
  if canonical_offsets <> [] then begin
    let access_usage x y =
      List.concat_map
        (fun gid ->
          let terms = ref [] in
          for k = 0 to nnets - 1 do
            if allowed g k gid then
              terms := (e.(idx k gid 0), 1.0) :: (e.(idx k gid 1), 1.0) :: !terms
          done;
          !terms)
        g.access_sites.((y * cols) + x)
    in
    for y = 0 to rows - 1 do
      for x = 0 to cols - 1 do
        if g.access_sites.((y * cols) + x) <> [] then
          List.iter
            (fun (dx, dy) ->
              let x' = x + dx and y' = y + dy in
              if
                x' >= 0 && x' < cols && y' >= 0 && y' < rows
                && g.access_sites.((y' * cols) + x') <> []
              then begin
                match (access_usage x y, access_usage x' y') with
                | [], _ | _, [] -> ()
                | t1, t2 ->
                  Lp.Builder.add_row b
                    ~name:(Printf.sprintf "v12adj_%d_%d_%d_%d" x y x' y')
                    (t1 @ t2) Lp.Le 1.0
              end)
            canonical_offsets
      done
    done
  end;

  (* ---- DSA via coloring (RULE12+, Ait-Ferhat et al.) ----
     Per conflicted single-via site, one binary per assembly color with
     an assignment row tying the color sum to the via's usage
     (dsa_col_*: sum_j c_j - usage = 0, so a placed via takes exactly
     one color and an unplaced one takes none), and per conflicting pair
     and color a packing row (dsa_cf_*: the two vias cannot share it).
     Together these make the placed-via conflict graph k-colorable.
     The color binaries MUST be integral: fractionally, 1/2-1/2 splits
     would 2-color any odd cycle and the relaxation would stop cutting.
     Access (V12) cuts are excluded — they sit on the pin mask, outside
     the assembly flow — as are multi-site shapes (their grouping is the
     manufacturing alternative to DSA). [Drc] mirrors all three choices. *)
  let dsa_cols = Hashtbl.create 16 in
  let dsa_pairs = ref [] in
  if rules.Rules.dsa then begin
    let k_colors = g.Graph.dsa_colors and pitch = g.Graph.dsa_pitch in
    let conflicts = ref [] in
    for z = 0 to nz - 2 do
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          match g.via_site.(((z * rows) + y) * cols + x) with
          | None -> ()
          | Some site1 ->
            (* canonical half-neighbourhood: each unordered pair once *)
            for dy = 0 to pitch do
              for dx = -pitch to pitch do
                if dy > 0 || dx > 0 then begin
                  let x' = x + dx and y' = y + dy in
                  if x' >= 0 && x' < cols && y' >= 0 && y' < rows then
                    match g.via_site.(((z * rows) + y') * cols + x') with
                    | None -> ()
                    | Some site2 -> conflicts := (site1, site2) :: !conflicts
                end
              done
            done
        done
      done
    done;
    let col_vars gid =
      match Hashtbl.find_opt dsa_cols gid with
      | Some arr -> arr
      | None ->
        let arr =
          Array.init k_colors (fun j ->
              Lp.Builder.add_binary b
                ~name:(Printf.sprintf "c_g%d_j%d" gid j)
                ~obj:0.0)
        in
        Lp.Builder.add_row b
          ~name:(Printf.sprintf "dsa_col_g%d" gid)
          (Array.to_list (Array.map (fun cv -> (cv, 1.0)) arr)
          @ List.map (fun (ev, _) -> (ev, -1.0)) (edge_usage_terms gid))
          Lp.Eq 0.0;
        Hashtbl.replace dsa_cols gid arr;
        arr
    in
    List.iter
      (fun (s1, s2) ->
        let a1 = col_vars s1 and a2 = col_vars s2 in
        for j = 0 to k_colors - 1 do
          Lp.Builder.add_row b
            ~name:(Printf.sprintf "dsa_cf_g%d_g%d_j%d" s1 s2 j)
            [ (a1.(j), 1.0); (a2.(j), 1.0) ]
            Lp.Le 1.0
        done)
      (List.rev !conflicts);
    dsa_pairs := List.rev !conflicts
  end;

  (* ---- via shapes (5) ---- *)
  Array.iter
    (fun (rep : Graph.via_rep) ->
      let side_rows k edges label =
        let terms =
          Array.to_list edges
          |> List.concat_map (fun gid ->
                 [ (e.(idx k gid 0), 1.0); (e.(idx k gid 1), 1.0) ])
        in
        Lp.Builder.add_row b
          ~name:(Printf.sprintf "vs%s_r%d_n%d" label rep.Graph.rep k)
          terms Lp.Le 1.0
      in
      let rep_edges =
        Array.to_list rep.Graph.lower_edges @ Array.to_list rep.Graph.upper_edges
      in
      for k = 0 to nnets - 1 do
        side_rows k rep.Graph.lower_edges "lo";
        side_rows k rep.Graph.upper_edges "up";
        (* Blocking: if net k drives this via shape (usage U^k = 2), no
           other net may touch any footprint vertex. *)
        let usage_terms =
          List.concat_map
            (fun gid -> [ (e.(idx k gid 0), 1.0); (e.(idx k gid 1), 1.0) ])
            rep_edges
        in
        let members =
          Array.to_list rep.Graph.lower_members
          @ Array.to_list rep.Graph.upper_members
        in
        List.iter
          (fun mv ->
            Array.iter
              (fun (gid2, _) ->
                if not (List.mem gid2 rep_edges) then begin
                  match edge_usage_terms ~except:k gid2 with
                  | [] -> ()
                  | others ->
                    let others = List.map (fun (v, _) -> (v, 2.0)) others in
                    Lp.Builder.add_row b
                      ~name:
                        (Printf.sprintf "vsblk_r%d_n%d_m%d_g%d" rep.Graph.rep k
                           mv gid2)
                      (usage_terms @ others) Lp.Le 2.0
                end)
              g.adj.(mv))
          members
      done)
    g.via_reps;

  (* ---- SADP end-of-line rules (6)-(12) ---- *)
  (* Wire edge towards the low/high along-axis neighbour of each grid
     vertex, for O(1) lookup during p-variable creation. *)
  let wire_low = Array.make ngrid (-1) and wire_high = Array.make ngrid (-1) in
  Array.iteri
    (fun gid (ed : Graph.edge) ->
      match ed.Graph.kind with
      | Graph.Wire _ ->
        (* u precedes v along the axis by construction *)
        wire_high.(ed.Graph.u) <- gid;
        wire_low.(ed.Graph.v) <- gid
      | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _ | Graph.Access
        -> ())
    g.edges;
  let vialike v k =
    Array.to_list g.adj.(v)
    |> List.filter_map (fun (gid, _) ->
           match g.edges.(gid).Graph.kind with
           | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _
           | Graph.Access ->
             if allowed g k gid then Some gid else None
           | Graph.Wire _ -> None)
  in
  (* p variable per (net, grid vertex, side), created on demand. *)
  let p = Array.make (nnets * ngrid * 2) (-1) in
  let pidx k v side = ((k * ngrid) + v) * 2 + side_index side in
  let sadp_layer z = g.layers.(z).Layer.patterning = Layer.Sadp in
  let arc_into gid v = if g.edges.(gid).Graph.v = v then 0 else 1 in
  let arc_outof gid v = 1 - arc_into gid v in
  let products = Hashtbl.create 256 in
  let record_product pv q a bvar =
    let old = Option.value ~default:[] (Hashtbl.find_opt products pv) in
    Hashtbl.replace products pv ((q, a, bvar) :: old)
  in
  let make_p k v side =
    let wire = match side with From_low -> wire_low.(v) | From_high -> wire_high.(v) in
    if wire < 0 || not (allowed g k wire) then -1
    else begin
      match vialike v k with
      | [] -> -1
      | vias ->
        (* p (and the aux q below) need no integrality: with integral arc
           variables the linearisation rows pin them to {0, 1}, and they
           carry no objective — declaring them continuous keeps them out
           of branch and bound entirely. *)
        let pv =
          Lp.Builder.add_var b
            ~name:(Printf.sprintf "p_n%d_v%d_s%d" k v (side_index side))
            ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous
        in
        let e_wire_in = e.(idx k wire (arc_into wire v)) in
        let e_wire_out = e.(idx k wire (arc_outof wire v)) in
        let add_product label a bvar =
          if options.sadp_aux_vars then begin
            (* Paper linearisation (8)-(9): auxiliary product binary. *)
            let q =
              Lp.Builder.add_var b
                ~name:(Printf.sprintf "q_%s" label)
                ~lower:0.0 ~upper:1.0 ~obj:0.0 Lp.Continuous
            in
            Lp.Builder.add_row b ~name:("qa_" ^ label)
              [ (q, 1.0); (a, -1.0) ]
              Lp.Le 0.0;
            Lp.Builder.add_row b ~name:("qb_" ^ label)
              [ (q, 1.0); (bvar, -1.0) ]
              Lp.Le 0.0;
            Lp.Builder.add_row b ~name:("qc_" ^ label)
              [ (q, 1.0); (a, -1.0); (bvar, -1.0) ]
              Lp.Ge (-1.0);
            Lp.Builder.add_row b ~name:("qp_" ^ label)
              [ (pv, 1.0); (q, -1.0) ]
              Lp.Ge 0.0;
            record_product pv (Some q) a bvar;
            Some q
          end
          else begin
            (* Collapsed: p >= a + b - 1 directly. Sufficient because p
               only appears in <=-1 packing rows. *)
            Lp.Builder.add_row b ~name:("pl_" ^ label)
              [ (pv, 1.0); (a, -1.0); (bvar, -1.0) ]
              Lp.Ge (-1.0);
            record_product pv None a bvar;
            None
          end
        in
        let qs = ref [] in
        List.iteri
          (fun i w ->
            let lbl suffix =
              Printf.sprintf "n%d_v%d_s%d_w%d_%s" k v (side_index side) i suffix
            in
            let e_w_out = e.(idx k w (arc_outof w v)) in
            let e_w_in = e.(idx k w (arc_into w v)) in
            (match add_product (lbl "a") e_wire_in e_w_out with
            | Some q -> qs := (q, 1.0) :: !qs
            | None -> ());
            match add_product (lbl "b") e_wire_out e_w_in with
            | Some q -> qs := (q, 1.0) :: !qs
            | None -> ())
          vias;
        if options.sadp_aux_vars && !qs <> [] then
          Lp.Builder.add_row b
            ~name:(Printf.sprintf "pub_n%d_v%d_s%d" k v (side_index side))
            ((pv, 1.0) :: List.map (fun (q, _) -> (q, -1.0)) !qs)
            Lp.Le 0.0;
        pv
    end
  in
  for z = 0 to nz - 1 do
    if sadp_layer z then
      for y = 0 to rows - 1 do
        for x = 0 to cols - 1 do
          let v = ((z * rows) + y) * cols + x in
          if not g.blocked.(v) then
            for k = 0 to nnets - 1 do
              p.(pidx k v From_low) <- make_p k v From_low;
              p.(pidx k v From_high) <- make_p k v From_high
            done
        done
      done
  done;
  (* Global EOL indicators are the per-net sums (10); the forbidden
     configurations (11)-(12) become packing rows over those sums. *)
  let p_terms v side =
    let terms = ref [] in
    for k = 0 to nnets - 1 do
      let col = p.(pidx k v side) in
      if col >= 0 then terms := (col, 1.0) :: !terms
    done;
    !terms
  in
  let seen_conflicts = Hashtbl.create 256 in
  let add_conflict (v1, s1) (v2, s2) =
    let key =
      let a = (v1, side_index s1) and bkey = (v2, side_index s2) in
      if a <= bkey then (a, bkey) else (bkey, a)
    in
    if not (Hashtbl.mem seen_conflicts key) then begin
      Hashtbl.add seen_conflicts key ();
      match (p_terms v1 s1, p_terms v2 s2) with
      | [], _ | _, [] -> ()
      | t1, t2 ->
        Lp.Builder.add_row b
          ~name:
            (Printf.sprintf "sadp_v%d_s%d_v%d_s%d" v1 (side_index s1) v2
               (side_index s2))
          (t1 @ t2) Lp.Le 1.0
    end
  in
  for z = 0 to nz - 1 do
    if sadp_layer z then begin
      let horizontal = g.layers.(z).Layer.dir = Layer.Horizontal in
      (* Local coordinates: a = along the preferred direction, c = across. *)
      let vat a c =
        let x, y = if horizontal then (a, c) else (c, a) in
        if x < 0 || x >= cols || y < 0 || y >= rows then None
        else Some (((z * rows) + y) * cols + x)
      in
      let amax = (if horizontal then cols else rows) - 1 in
      let cmax = (if horizontal then rows else cols) - 1 in
      for a = 0 to amax do
        for c = 0 to cmax do
          match vat a c with
          | None -> ()
          | Some v ->
            let conflict side offs other_side =
              List.iter
                (fun (da, dc) ->
                  match vat (a + da) (c + dc) with
                  | Some j -> add_conflict (v, side) (j, other_side)
                  | None -> ())
                offs
            in
            (* Facing tips: p_r(v) vs p_l at the five low-side sites
               (Figure 5(b)). *)
            conflict From_high
              [ (-1, 0); (-1, -1); (-1, 1); (0, -1); (0, 1) ]
              From_low;
            (* Same-direction tips (Figure 5(c)) and its mirror. *)
            conflict From_high
              [ (-1, 0); (-1, -1); (-1, 1); (1, -1); (1, 1) ]
              From_high;
            conflict From_low
              [ (1, 0); (1, -1); (1, 1); (-1, -1); (-1, 1) ]
              From_low
        done
      done
    end
  done;
  {
    lp = Lp.Builder.finish b;
    graph = g;
    options;
    e;
    f;
    max_sinks;
    u = u_arr;
    p;
    products;
    dsa_cols;
    dsa_pairs = !dsa_pairs;
  }

let decode t x =
  let g = t.graph in
  let nedges = Array.length g.edges in
  let routes =
    Array.init (Array.length g.nets) (fun k ->
        let edges = ref [] in
        for gid = nedges - 1 downto 0 do
          if allowed g k gid then begin
            let used dir =
              let col = t.e.(((k * nedges) + gid) * 2 + dir) in
              col >= 0 && x.(col) > 0.5
            in
            if used 0 || used 1 then edges := gid :: !edges
          end
        done;
        { Route.net = k; edges = !edges })
  in
  { Route.routes; metrics = Route.metrics_of g routes }

(* Lift a geometric routing solution to a full LP point: orient each net's
   edge set as a tree from its supersource to assign flows, then derive
   the u and p auxiliaries. Returns None when the edge set is not a clean
   Steiner tree (cycle, stub, disconnection) or when the resulting point
   violates the formulation — e.g. the heuristic router's geometric SADP
   semantics is slightly weaker than the ILP's conservative indicator, so
   a DRC-clean solution is not always ILP-feasible. *)
let encode t (sol : Route.solution) =
  let g = t.graph in
  let clip = g.Graph.clip in
  let ngrid = clip.Clip.cols * clip.Clip.rows * clip.Clip.layers in
  let nedges = Array.length g.edges in
  let nnets = Array.length g.nets in
  let x = Array.make (Lp.nvars t.lp) 0.0 in
  let ok = ref true in
  Array.iter
    (fun (r : Route.net_route) ->
      let k = r.Route.net in
      let net = g.nets.(k) in
      let used = Hashtbl.create 32 in
      List.iter (fun gid -> Hashtbl.replace used gid ()) r.Route.edges;
      let visited = Hashtbl.create 32 in
      let parent = Hashtbl.create 32 in
      let visited_edges = ref 0 in
      let is_sink v = Array.exists (fun s -> s = v) net.Graph.sinks in
      let arc_pos gid from_v =
        let dir = if g.edges.(gid).Graph.u = from_v then 0 else 1 in
        ((k * nedges) + gid) * 2 + dir
      in
      (* Returns the number of sinks in the subtree rooted at [v]. *)
      let rec dfs v parent_edge =
        Hashtbl.replace visited v ();
        let count = ref (if is_sink v then 1 else 0) in
        Array.iter
          (fun (gid, other) ->
            if gid <> parent_edge && Hashtbl.mem used gid then begin
              if Hashtbl.mem visited other then ok := false (* cycle *)
              else begin
                incr visited_edges;
                Hashtbl.replace parent other (gid, v);
                let below = dfs other gid in
                if below = 0 then ok := false (* dangling stub *)
                else begin
                  let pos = arc_pos gid v in
                  x.(t.e.(pos)) <- 1.0;
                  if t.options.aggregated_flows then
                    x.(t.f.(pos * t.max_sinks)) <- float_of_int below
                end;
                count := !count + below
              end
            end)
          g.adj.(v);
        !count
      in
      let total = dfs net.Graph.source (-1) in
      if total <> Array.length net.Graph.sinks then ok := false;
      if !visited_edges <> List.length r.Route.edges then ok := false;
      (* Disaggregated flows: one unit along each source-to-sink path. *)
      if (not t.options.aggregated_flows) && !ok then
        Array.iteri
          (fun tix sink ->
            let rec walk v =
              if v <> net.Graph.source then
                match Hashtbl.find_opt parent v with
                | None -> ok := false
                | Some (gid, pv) ->
                  x.(t.f.((arc_pos gid pv * t.max_sinks) + tix)) <- 1.0;
                  walk pv
            in
            walk sink)
          net.Graph.sinks;
      (* vertex-usage auxiliaries *)
      List.iter
        (fun gid ->
          let e = g.edges.(gid) in
          let claim v =
            if v < ngrid then begin
              let col = t.u.((k * ngrid) + v) in
              if col >= 0 then x.(col) <- 1.0
            end
          in
          claim e.Graph.u;
          claim e.Graph.v)
        r.Route.edges)
    sol.Route.routes;
  ignore nnets;
  (* DSA colors: the assignment rows force exactly one color per used
     conflicted via; pick one per via by backtracking against the
     conflict pairs. An uncolorable seed cannot be lifted (it is not
     DSA-feasible), so it is rejected like any other infeasible point. *)
  let encode_dsa () =
    if Hashtbl.length t.dsa_cols = 0 then true
    else begin
      let used = Hashtbl.create 16 in
      Array.iter
        (fun (r : Route.net_route) ->
          List.iter
            (fun gid ->
              if Hashtbl.mem t.dsa_cols gid then Hashtbl.replace used gid ())
            r.Route.edges)
        sol.Route.routes;
      let neighbours gid =
        List.filter_map
          (fun (a, bgid) ->
            if a = gid && Hashtbl.mem used bgid then Some bgid
            else if bgid = gid && Hashtbl.mem used a then Some a
            else None)
          t.dsa_pairs
      in
      let color = Hashtbl.create 16 in
      let rec assign = function
        | [] -> true
        | gid :: rest ->
          let taken =
            List.filter_map (fun nb -> Hashtbl.find_opt color nb)
              (neighbours gid)
          in
          let k_colors = Array.length (Hashtbl.find t.dsa_cols gid) in
          let rec try_j j =
            if j >= k_colors then false
            else if List.mem j taken then try_j (j + 1)
            else begin
              Hashtbl.replace color gid j;
              if assign rest then true
              else begin
                Hashtbl.remove color gid;
                try_j (j + 1)
              end
            end
          in
          try_j 0
      in
      let order = Hashtbl.fold (fun gid () acc -> gid :: acc) used [] in
      let order = List.sort Int.compare order in
      if assign order then begin
        Hashtbl.iter
          (fun gid j -> x.((Hashtbl.find t.dsa_cols gid).(j)) <- 1.0)
          color;
        true
      end
      else false
    end
  in
  if not !ok then None
  else if not (encode_dsa ()) then None
  else begin
    (* SADP indicators follow from the arc values. *)
    Hashtbl.iter
      (fun pv pairs ->
        let hot = ref false in
        List.iter
          (fun (q, a, bvar) ->
            let v = x.(a) *. x.(bvar) in
            (match q with Some qcol -> x.(qcol) <- v | None -> ());
            if v > 0.5 then hot := true)
          pairs;
        x.(pv) <- (if !hot then 1.0 else 0.0))
      t.products;
    if Lp.is_feasible t.lp x then Some x else None
  end
