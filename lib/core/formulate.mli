(** ILP formulation of the minimum-cost switchbox routing problem
    (Section 3 of the paper).

    From a routing graph this module instantiates:

    - arc usage binaries [e] and flow variables [f] per net and direction,
      with the linking constraints (2)-(3);
    - the arc exclusivity constraint (1) per undirected edge;
    - multi-commodity flow conservation (4), with [|T_k|] units leaving
      each supersource;
    - via adjacency restrictions (Section 3.2, "Via restrictions") between
      neighbouring single-via sites;
    - via-shape constraints (5): one member edge per side per net, plus
      blocking of all footprint vertices against other nets;
    - SADP end-of-line variables [p] (6)-(10) on SADP-patterned layers and
      the forbidden-configuration rows (11)-(12);
    - under DSA rules (RULE12+, Ait-Ferhat et al.), per-via assembly
      color binaries [c] with assignment rows [dsa_col_*] (a placed via
      takes exactly one color) and per-conflict-pair packing rows
      [dsa_cf_*] (vias within the DSA pitch on the same cut layer cannot
      share one) — the placed-via conflict graph must be k-colorable;
    - optionally, vertex exclusivity: no two nets may touch the same grid
      vertex. The paper's constraint set is arc-based; without this
      addition a via of one net may land on a wire of another, which the
      independent DRC checker (rightly) rejects. Kept as an option so the
      exact paper formulation can be studied too.

    Two linearisations of the SADP [p] definitions are provided: the
    paper's, with four auxiliary product binaries per (net, vertex, side)
    as in constraint (9), and a collapsed one that lower-bounds [p]
    directly by [a + b - 1] for each product pair — equivalent at integral
    points because [p] only ever appears in "at most one" rows, but with
    40% fewer binaries. The collapsed form is the default; the paper form
    is used by the ILP-size study.

    Objective coefficients follow [rules.objective]
    ({!Optrouter_tech.Rules.objective_coeff}): the default reproduces the
    standard edge costs, the via-objective modes re-weight or isolate
    the cost-carrying via edges. *)

type options = {
  vertex_exclusivity : bool;  (** default [true] *)
  sadp_aux_vars : bool;  (** paper-style linearisation (9); default [false] *)
  aggregated_flows : bool;
      (** the paper's single aggregated flow per arc with [e >= f/|T_k|]
          (constraint (2)) instead of the default disaggregated per-sink
          unit flows. Integer optima are identical; the disaggregated LP
          relaxation is strictly tighter and solves far faster under the
          bundled branch and bound. Default [false]. *)
}

val default_options : options

type sizes = {
  vars : int;
  binaries : int;
  rows : int;
  nonzeros : int;
}

type t

val build :
  ?options:options -> rules:Optrouter_tech.Rules.t -> Optrouter_grid.Graph.t -> t
val lp : t -> Optrouter_ilp.Lp.t
val graph : t -> Optrouter_grid.Graph.t

(** The options the formulation was built with — the model auditor needs
    them to predict which constraint families must be present. *)
val options : t -> options

val sizes : t -> sizes

(** [e_var t ~net ~edge ~dir] is the LP column of the arc-usage binary, or
    -1 when the net may not use the edge. [dir] 0 is u->v, 1 is v->u. *)
val e_var : t -> net:int -> edge:int -> dir:int -> int

(** [decode t x] reads a routing solution out of an (integral) LP point. *)
val decode : t -> float array -> Optrouter_grid.Route.solution

(** [encode t solution] lifts a decoded (geometric) routing solution back
    to a full LP point — arcs, flows and auxiliaries — suitable as a
    branch-and-bound incumbent. Returns [None] if the solution is not a
    clean Steiner forest or does not satisfy the formulation (the ILP's
    SADP indicator is deliberately conservative, so rare DRC-clean
    solutions are rejected). *)
val encode : t -> Optrouter_grid.Route.solution -> float array option
