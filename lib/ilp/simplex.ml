module Log = Optrouter_report.Report.Log

type vstat = Basic | At_lower | At_upper | Nb_free
type basis = { vstat : vstat array; basic : int array }
type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : float;
  x : float array;
  duals : float array;
  reduced_costs : float array;
  basis : basis;
  iterations : int;
  btran_saved : int;
      (** full BTRAN passes avoided by the incremental dual update in
          [dual_reoptimize] *)
}

exception Numerical_failure of string

let dual_tol = 1e-9
let feas_tol = 1e-7
let zero_tol = 1e-12
let pivot_tol = 1e-8

(* Refactorisation policy. The pivot interval is the classic hard cap; the
   two adaptive triggers refactor *early* when the eta file degrades before
   the interval is up: [fill_factor] bounds eta-file fill (nonzeros per
   row) relative to a fresh factorisation, and [residual_tol] bounds the
   drift of the factorised representation, measured as the relative
   infinity-norm residual of [B x_B + N x_N = rhs]. Routing bases are
   extremely sparse, so a dense eta file or a drifting residual is always
   accumulated round-off, never genuine structure. *)
type refactor_params = {
  interval : int;
  fill_factor : float;
  residual_tol : float;
}

let default_refactor = { interval = 128; fill_factor = 16.0; residual_tol = 1e-7 }

(* Eta matrix of the product-form inverse: identity with column [e_row]
   replaced. [e_piv] is the diagonal entry; [e_idx]/[e_val] hold the
   off-pivot entries of that column. *)
type eta = {
  e_row : int;
  e_piv : float;
  e_idx : int array;
  e_val : float array;
}

module Instance = struct
  type t = {
    lp : Lp.t;
    n : int;
    m : int;
    ncols : int;
    cidx : int array array;
    cval : float array array;
    base_lo : float array;
    base_up : float array;
    cost : float array;
    rhs : float array;
  }

  let nvars t = t.n
  let nrows t = t.m

  (* Rows become equalities [a.x + s = rhs] with a bounded logical slack:
     Le gives s in [0, inf), Ge gives s in (-inf, 0], Eq pins s to 0. *)
  let create (lp : Lp.t) =
    let n = Lp.nvars lp and m = Lp.nrows lp in
    let ncols = n + m in
    let counts = Array.make ncols 0 in
    Array.iter
      (fun (r : Lp.row) ->
        Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) r.coeffs)
      lp.rows;
    for r = 0 to m - 1 do
      counts.(n + r) <- 1
    done;
    let cidx = Array.map (fun c -> Array.make c 0) counts in
    let cval = Array.map (fun c -> Array.make c 0.0) counts in
    let fill = Array.make ncols 0 in
    Array.iteri
      (fun r (row : Lp.row) ->
        Array.iter
          (fun (j, a) ->
            cidx.(j).(fill.(j)) <- r;
            cval.(j).(fill.(j)) <- a;
            fill.(j) <- fill.(j) + 1)
          row.coeffs)
      lp.rows;
    for r = 0 to m - 1 do
      cidx.(n + r).(0) <- r;
      cval.(n + r).(0) <- 1.0
    done;
    let base_lo = Array.make ncols 0.0 and base_up = Array.make ncols 0.0 in
    let cost = Array.make ncols 0.0 in
    Array.iteri
      (fun j (v : Lp.var) ->
        base_lo.(j) <- v.lower;
        base_up.(j) <- v.upper;
        cost.(j) <- v.obj)
      lp.vars;
    Array.iteri
      (fun r (row : Lp.row) ->
        let lo, up =
          match row.sense with
          | Lp.Le -> (0.0, infinity)
          | Lp.Ge -> (neg_infinity, 0.0)
          | Lp.Eq -> (0.0, 0.0)
        in
        base_lo.(n + r) <- lo;
        base_up.(n + r) <- up)
      lp.rows;
    let rhs = Array.map (fun (r : Lp.row) -> r.rhs) lp.rows in
    { lp; n; m; ncols; cidx; cval; base_lo; base_up; cost; rhs }

  type st = {
    inst : t;
    refp : refactor_params;
    lo : float array;
    up : float array;
    vstat : vstat array;
    basic : int array;
    vpos : int array;
    xb : float array;
    w : float array;
    y : float array;
    mutable etas : eta array;
    mutable neta : int;
    mutable eta_nnz_count : int;  (** running nonzero count of the eta file *)
    mutable nnz_at_refactor : int;  (** eta nonzeros of the fresh factorisation *)
    mutable btran_saved : int;
    mutable niter : int;
    mutable pivots_since_refactor : int;
    mutable bland : bool;
    mutable degen_count : int;
    mutable perturbed : bool;
    mutable perturb_rounds : int;
    perturb : float array;
    mutable bounds_shifted : bool;
    mutable orig_lo : float array;  (** saved when bounds are shifted *)
    mutable orig_up : float array;
  }

  let push_eta st e =
    if st.neta = Array.length st.etas then begin
      let cap = max 64 (2 * st.neta) in
      let bigger = Array.make cap e in
      Array.blit st.etas 0 bigger 0 st.neta;
      st.etas <- bigger
    end;
    st.etas.(st.neta) <- e;
    st.neta <- st.neta + 1;
    st.eta_nnz_count <- st.eta_nnz_count + 1 + Array.length e.e_idx

  let ftran st v =
    for k = 0 to st.neta - 1 do
      let e = st.etas.(k) in
      let t = v.(e.e_row) in
      if t <> 0.0 then begin
        v.(e.e_row) <- e.e_piv *. t;
        let idx = e.e_idx and vl = e.e_val in
        for p = 0 to Array.length idx - 1 do
          v.(idx.(p)) <- v.(idx.(p)) +. (vl.(p) *. t)
        done
      end
    done

  let btran st v =
    for k = st.neta - 1 downto 0 do
      let e = st.etas.(k) in
      let s = ref (e.e_piv *. v.(e.e_row)) in
      let idx = e.e_idx and vl = e.e_val in
      for p = 0 to Array.length idx - 1 do
        s := !s +. (vl.(p) *. v.(idx.(p)))
      done;
      v.(e.e_row) <- !s
    done

  let nb_value st j =
    match st.vstat.(j) with
    | At_lower -> st.lo.(j)
    | At_upper -> st.up.(j)
    | Nb_free -> 0.0
    | Basic -> assert false

  (* Snap a nonbasic variable onto a representable bound; used when warm
     starting with changed bounds. *)
  let normalize_nonbasic st j =
    match st.vstat.(j) with
    | Basic -> ()
    | At_lower when st.lo.(j) > neg_infinity -> ()
    | At_upper when st.up.(j) < infinity -> ()
    | At_lower | At_upper | Nb_free ->
      if st.lo.(j) > neg_infinity then st.vstat.(j) <- At_lower
      else if st.up.(j) < infinity then st.vstat.(j) <- At_upper
      else st.vstat.(j) <- Nb_free

  let scatter_column st j v =
    Array.fill v 0 st.inst.m 0.0;
    let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
    for p = 0 to Array.length idx - 1 do
      v.(idx.(p)) <- vl.(p)
    done

  let compute_xb st =
    let m = st.inst.m in
    let r = Array.make m 0.0 in
    Array.blit st.inst.rhs 0 r 0 m;
    for j = 0 to st.inst.ncols - 1 do
      if st.vstat.(j) <> Basic then begin
        let v = nb_value st j in
        if v <> 0.0 then begin
          let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
          for p = 0 to Array.length idx - 1 do
            r.(idx.(p)) <- r.(idx.(p)) -. (vl.(p) *. v)
          done
        end
      end
    done;
    ftran st r;
    Array.blit r 0 st.xb 0 m

  (* Rebuild the eta file from the current basis columns, repairing a
     singular basis by substituting logical slacks. Columns are processed
     sparsest-first (a poor man's Markowitz ordering), and unit slack
     columns that land on an unassigned row produce no eta at all. *)
  let refactor st =
    let m = st.inst.m in
    st.neta <- 0;
    st.eta_nnz_count <- 0;
    let assigned = Array.make m false in
    let old_cols = Array.copy st.basic in
    Array.sort
      (fun j1 j2 ->
        Int.compare (Array.length st.inst.cidx.(j1)) (Array.length st.inst.cidx.(j2)))
      old_cols;
    let dropped = ref [] in
    let place j =
      scatter_column st j st.w;
      ftran st st.w;
      let best = ref (-1) and best_mag = ref 0.0 in
      for r = 0 to m - 1 do
        if not assigned.(r) then begin
          let mag = Float.abs st.w.(r) in
          if mag > !best_mag then begin
            best := r;
            best_mag := mag
          end
        end
      done;
      if !best < 0 || !best_mag < pivot_tol then dropped := j :: !dropped
      else begin
        let r = !best in
        assigned.(r) <- true;
        st.basic.(r) <- j;
        st.vpos.(j) <- r;
        st.vstat.(j) <- Basic;
        let piv = st.w.(r) in
        (* Identity pivot on an otherwise-empty column needs no eta. *)
        let nontrivial = ref (Float.abs (piv -. 1.0) > zero_tol) in
        let cnt = ref 0 in
        for i = 0 to m - 1 do
          if i <> r && Float.abs st.w.(i) > zero_tol then begin
            incr cnt;
            nontrivial := true
          end
        done;
        if !nontrivial then begin
          let idx = Array.make !cnt 0 and vl = Array.make !cnt 0.0 in
          let p = ref 0 in
          for i = 0 to m - 1 do
            if i <> r && Float.abs st.w.(i) > zero_tol then begin
              idx.(!p) <- i;
              vl.(!p) <- -.st.w.(i) /. piv;
              incr p
            end
          done;
          push_eta st { e_row = r; e_piv = 1.0 /. piv; e_idx = idx; e_val = vl }
        end
      end
    in
    Array.iter (fun j -> st.vpos.(j) <- -1) old_cols;
    Array.iter place old_cols;
    (* Kick singular columns out of the basis... *)
    List.iter
      (fun j ->
        st.vstat.(j) <- At_lower;
        normalize_nonbasic st j)
      !dropped;
    (* ...and let slacks of unassigned rows take their place. *)
    for r = 0 to m - 1 do
      if not assigned.(r) then begin
        let s = st.inst.n + r in
        if st.vstat.(s) = Basic then
          raise (Numerical_failure "refactor: slack already basic on unassigned row");
        place s;
        if st.vpos.(s) < 0 then
          raise (Numerical_failure "refactor: singular basis not repairable")
      end
    done;
    st.pivots_since_refactor <- 0;
    st.nnz_at_refactor <- st.eta_nnz_count;
    compute_xb st

  let eta_nnz st =
    let total = ref 0 in
    for k = 0 to st.neta - 1 do
      total := !total + 1 + Array.length st.etas.(k).e_idx
    done;
    !total

  (* Throw a basis away and restart from the all-slack basis; the composite
     phase 1 then restores feasibility. Used when a warm-start basis
     factorises with catastrophic fill-in — iterating on a dense eta file
     costs more than re-solving. *)
  let cold_reset st =
    let n = st.inst.n and m = st.inst.m in
    st.neta <- 0;
    st.eta_nnz_count <- 0;
    st.nnz_at_refactor <- 0;
    for j = 0 to st.inst.ncols - 1 do
      st.vpos.(j) <- -1;
      st.vstat.(j) <- At_lower;
      normalize_nonbasic st j
    done;
    for r = 0 to m - 1 do
      st.basic.(r) <- n + r;
      st.vstat.(n + r) <- Basic;
      st.vpos.(n + r) <- r
    done;
    st.pivots_since_refactor <- 0;
    compute_xb st

  (* Drift of the factorised representation:
     ||B x_B + N x_N - rhs||_inf / (1 + ||rhs||_inf). A fresh
     factorisation satisfies the system to round-off; growth means the
     eta file has accumulated cancellation and the basis values are no
     longer trustworthy. One sparse matrix-vector pass, no FTRAN. *)
  let ftran_residual st =
    let m = st.inst.m in
    let r = Array.make m 0.0 in
    Array.blit st.inst.rhs 0 r 0 m;
    for j = 0 to st.inst.ncols - 1 do
      let v =
        if st.vstat.(j) = Basic then st.xb.(st.vpos.(j)) else nb_value st j
      in
      if v <> 0.0 && Float.is_finite v then begin
        let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
        for p = 0 to Array.length idx - 1 do
          r.(idx.(p)) <- r.(idx.(p)) -. (vl.(p) *. v)
        done
      end
    done;
    let mx = ref 0.0 and scale = ref 1.0 in
    for i = 0 to m - 1 do
      mx := Float.max !mx (Float.abs r.(i));
      scale := Float.max !scale (Float.abs st.inst.rhs.(i))
    done;
    !mx /. !scale

  (* Adaptive refactorisation: the pivot interval is the hard cap, but a
     degrading eta file triggers early. Fill requires both an absolute
     budget ([fill_factor] nonzeros per row) and genuine growth over the
     fresh factorisation, so an intrinsically dense basis cannot thrash;
     the residual probe runs every 32 pivots. Both triggers wait out the
     first few pivots — refactoring is itself O(eta file). *)
  let should_refactor st =
    st.pivots_since_refactor >= st.refp.interval
    || (st.pivots_since_refactor >= 8
       && float_of_int st.eta_nnz_count
          > st.refp.fill_factor *. float_of_int (st.inst.m + 1)
       && st.eta_nnz_count > 2 * st.nnz_at_refactor)
    || (st.pivots_since_refactor >= 8
       && st.pivots_since_refactor mod 32 = 0
       && ftran_residual st > st.refp.residual_tol)

  (* Primal degeneracy remedy (the EXPAND idea): shift every finite bound
     outward by a tiny column-specific epsilon so basic variables are never
     exactly at a bound and ratio tests make strictly positive steps. The
     shift is withdrawn before optimality is declared; the residual
     infeasibility is far below the feasibility tolerance of callers. *)
  let shift_bounds st =
    let ncols = st.inst.ncols in
    if not st.bounds_shifted then begin
      st.orig_lo <- Array.copy st.lo;
      st.orig_up <- Array.copy st.up
    end;
    for j = 0 to ncols - 1 do
      let h1 = float_of_int ((j + 1) * 40503 land 0xFFF) /. 4096.0 in
      let h2 = float_of_int ((j + 7) * 48271 land 0xFFF) /. 4096.0 in
      if st.lo.(j) > neg_infinity then
        st.lo.(j) <- st.lo.(j) -. (1e-8 *. (1.0 +. h1));
      if st.up.(j) < infinity then
        st.up.(j) <- st.up.(j) +. (1e-8 *. (1.0 +. h2))
    done;
    st.bounds_shifted <- true;
    compute_xb st

  let unshift_bounds st =
    if st.bounds_shifted then begin
      Array.blit st.orig_lo 0 st.lo 0 (Array.length st.orig_lo);
      Array.blit st.orig_up 0 st.up 0 (Array.length st.orig_up);
      st.bounds_shifted <- false;
      compute_xb st
    end

  type entering = { q : int; dir : float; dq : float }

  (* Phase-1 objective: sum of bound violations of basic variables. Its
     gradient with respect to basic variable values is -1 below the lower
     bound, +1 above the upper bound, 0 otherwise. *)
  (* Phase-2 cost with the anti-degeneracy perturbation applied. The
     perturbation is a deterministic, column-specific epsilon far below the
     cost scale; it breaks the massive ties routing LPs exhibit. It is
     removed again before optimality is declared. *)
  let cost_of st j =
    if st.perturbed then st.inst.cost.(j) +. st.perturb.(j)
    else st.inst.cost.(j)

  let basic_phase1_cost st pos =
    let j = st.basic.(pos) in
    let x = st.xb.(pos) in
    if x < st.lo.(j) -. feas_tol then -1.0
    else if x > st.up.(j) +. feas_tol then 1.0
    else 0.0

  let infeasibility st =
    let total = ref 0.0 in
    for pos = 0 to st.inst.m - 1 do
      let j = st.basic.(pos) in
      let x = st.xb.(pos) in
      if x < st.lo.(j) -. feas_tol then total := !total +. (st.lo.(j) -. x)
      else if x > st.up.(j) +. feas_tol then total := !total +. (x -. st.up.(j))
    done;
    !total

  let compute_duals st ~phase1 =
    let m = st.inst.m in
    for pos = 0 to m - 1 do
      st.y.(pos) <-
        (if phase1 then basic_phase1_cost st pos else cost_of st st.basic.(pos))
    done;
    btran st st.y

  let reduced_cost st ~phase1 j =
    let c = if phase1 then 0.0 else cost_of st j in
    let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
    let acc = ref c in
    for p = 0 to Array.length idx - 1 do
      acc := !acc -. (vl.(p) *. st.y.(idx.(p)))
    done;
    !acc

  (* Dantzig pricing (largest violation), falling back to Bland's rule when
     a long degenerate stall is detected. *)
  let price st ~phase1 =
    compute_duals st ~phase1;
    let best = ref None in
    let consider j dir dq =
      let score = Float.abs dq in
      match !best with
      | Some (_, s) when not st.bland && s >= score -> ()
      | Some _ when st.bland -> ()
      | Some _ | None -> best := Some ({ q = j; dir; dq }, score)
    in
    (try
       for j = 0 to st.inst.ncols - 1 do
         (match st.vstat.(j) with
         | Basic -> ()
         | At_lower | At_upper | Nb_free ->
           if st.up.(j) -. st.lo.(j) > zero_tol then begin
             let d = reduced_cost st ~phase1 j in
             match st.vstat.(j) with
             | At_lower -> if d < -.dual_tol then consider j 1.0 d
             | At_upper -> if d > dual_tol then consider j (-1.0) d
             | Nb_free ->
               if d < -.dual_tol then consider j 1.0 d
               else if d > dual_tol then consider j (-1.0) d
             | Basic -> ()
           end);
         if st.bland && !best <> None then raise Exit
       done
     with Exit -> ());
    Option.map fst !best

  type step_limit = Unlimited | Flip of float | Block of int * float * vstat

  (* Bounded-variable ratio test with the conservative phase-1 convention:
     an infeasible basic variable blocks as soon as it reaches the bound it
     violates (where the phase-1 gradient would change). Ties are broken by
     the largest pivot magnitude for stability — except under Bland's rule,
     which requires the least variable index in the leaving choice too, or
     its anti-cycling guarantee does not hold. *)
  let ratio_test st ~phase1 (e : entering) =
    scatter_column st e.q st.w;
    ftran st st.w;
    let range = st.up.(e.q) -. st.lo.(e.q) in
    let limit = ref (if range < infinity then Flip range else Unlimited) in
    let limit_t = ref (match !limit with Flip t -> t | Unlimited | Block _ -> infinity) in
    let limit_mag = ref 0.0 in
    let limit_var = ref max_int in
    (* Entries below the pivot tolerance cannot safely leave the basis;
       skipping them bounds the induced infeasibility by t * |w_i|, well
       inside the feasibility tolerance. *)
    for pos = 0 to st.inst.m - 1 do
      let wi = st.w.(pos) in
      if Float.abs wi > pivot_tol /. 10.0 then begin
        let rate = -.e.dir *. wi in
        let j = st.basic.(pos) in
        let x = st.xb.(pos) and lj = st.lo.(j) and uj = st.up.(j) in
        let candidate =
          if phase1 && x < lj -. feas_tol then
            if rate > 0.0 then Some ((lj -. x) /. rate, At_lower) else None
          else if phase1 && x > uj +. feas_tol then
            if rate < 0.0 then Some ((x -. uj) /. -.rate, At_upper) else None
          else if rate > 0.0 then
            if uj < infinity then Some (Float.max 0.0 ((uj -. x) /. rate), At_upper)
            else None
          else if lj > neg_infinity then
            Some (Float.max 0.0 ((x -. lj) /. -.rate), At_lower)
          else None
        in
        match candidate with
        | None -> ()
        | Some (t, bound) ->
          let mag = Float.abs wi in
          let better =
            if t < !limit_t -. 1e-10 then true
            else if t >= !limit_t +. 1e-10 then false
            else if st.bland then j < !limit_var
            else mag > !limit_mag
          in
          if better then begin
            limit := Block (pos, t, bound);
            limit_t := t;
            limit_mag := mag;
            limit_var := j
          end
      end
    done;
    !limit

  let apply_step st (e : entering) lim =
    match lim with
    | Unlimited -> assert false
    | Flip t ->
      let delta = e.dir *. t in
      for pos = 0 to st.inst.m - 1 do
        let wi = st.w.(pos) in
        if wi <> 0.0 then st.xb.(pos) <- st.xb.(pos) -. (wi *. delta)
      done;
      st.vstat.(e.q) <-
        (match st.vstat.(e.q) with
        | At_lower -> At_upper
        | At_upper -> At_lower
        | Nb_free | Basic ->
          raise (Numerical_failure "flip on free or basic variable"));
      t
    | Block (r, t, leave_bound) ->
      let delta = e.dir *. t in
      let entering_value = nb_value st e.q +. delta in
      for pos = 0 to st.inst.m - 1 do
        let wi = st.w.(pos) in
        if wi <> 0.0 && pos <> r then st.xb.(pos) <- st.xb.(pos) -. (wi *. delta)
      done;
      let leaving = st.basic.(r) in
      st.vstat.(leaving) <- leave_bound;
      st.vpos.(leaving) <- -1;
      (match leave_bound with
      | At_lower when st.lo.(leaving) = neg_infinity ->
        raise (Numerical_failure "leaving variable has no lower bound")
      | At_upper when st.up.(leaving) = infinity ->
        raise (Numerical_failure "leaving variable has no upper bound")
      | At_lower | At_upper -> ()
      | Basic | Nb_free -> assert false);
      let piv = st.w.(r) in
      if Float.abs piv < pivot_tol /. 10.0 then
        raise (Numerical_failure "pivot element too small");
      let cnt = ref 0 in
      for i = 0 to st.inst.m - 1 do
        if i <> r && Float.abs st.w.(i) > zero_tol then incr cnt
      done;
      let idx = Array.make !cnt 0 and vl = Array.make !cnt 0.0 in
      let p = ref 0 in
      for i = 0 to st.inst.m - 1 do
        if i <> r && Float.abs st.w.(i) > zero_tol then begin
          idx.(!p) <- i;
          vl.(!p) <- -.st.w.(i) /. piv;
          incr p
        end
      done;
      push_eta st { e_row = r; e_piv = 1.0 /. piv; e_idx = idx; e_val = vl };
      st.vstat.(e.q) <- Basic;
      st.vpos.(e.q) <- r;
      st.basic.(r) <- e.q;
      st.xb.(r) <- entering_value;
      st.pivots_since_refactor <- st.pivots_since_refactor + 1;
      t

  let value_of st j =
    if st.vpos.(j) >= 0 then st.xb.(st.vpos.(j)) else nb_value st j

  (* Bounded-variable dual simplex, used to re-optimise after a branch-and-
     bound bound change: the warm basis is still dual feasible but primal
     infeasible in a few basic variables, which the dual method repairs in
     a handful of pivots where the composite primal phase 1 takes
     thousands. Purely an accelerator: it returns [false] whenever the
     preconditions fail or it stalls, and the caller falls through to the
     always-correct primal loop. *)
  let dual_reoptimize st ~max_pivots =
    let m = st.inst.m and ncols = st.inst.ncols in
    (* One BTRAN computes the duals here; every subsequent pivot updates
       them incrementally (y += theta * rho, where rho = B^-T e_r is the
       pivot row the ratio test needs anyway), so each dual pivot costs a
       single BTRAN pass instead of two. Refactorisation recomputes them
       from scratch for hygiene. *)
    let dual_feasible () =
      compute_duals st ~phase1:false;
      try
        for j = 0 to ncols - 1 do
          if st.vstat.(j) <> Basic && st.up.(j) -. st.lo.(j) > zero_tol then begin
            let d = reduced_cost st ~phase1:false j in
            match st.vstat.(j) with
            | At_lower -> if d < -1e-6 then raise Exit
            | At_upper -> if d > 1e-6 then raise Exit
            | Nb_free -> if Float.abs d > 1e-6 then raise Exit
            | Basic -> ()
          end
        done;
        true
      with Exit -> false
    in
    if not (dual_feasible ()) then false
    else begin
      let rho = Array.make m 0.0 in
      let ok = ref true and finished = ref false in
      let pivots = ref 0 in
      while !ok && (not !finished) && !pivots < max_pivots do
        incr pivots;
        st.niter <- st.niter + 1;
        (* leaving variable: the most violated basic *)
        let r = ref (-1) and viol = ref feas_tol and below = ref false in
        for pos = 0 to m - 1 do
          let j = st.basic.(pos) in
          let x = st.xb.(pos) in
          if st.lo.(j) -. x > !viol then begin
            r := pos;
            viol := st.lo.(j) -. x;
            below := true
          end
          else if x -. st.up.(j) > !viol then begin
            r := pos;
            viol := x -. st.up.(j);
            below := false
          end
        done;
        if !r < 0 then finished := true
        else begin
          let r = !r in
          Array.fill rho 0 m 0.0;
          rho.(r) <- 1.0;
          btran st rho;
          (* st.y is already current (incremental update below), saving
             the from-scratch BTRAN the pivot loop used to do here *)
          st.btran_saved <- st.btran_saved + 1;
          (* dual ratio test: smallest |d|/|alpha| among columns whose
             admissible movement pushes the leaving value back in range *)
          let best_j = ref (-1) and best_ratio = ref infinity in
          let best_alpha = ref 0.0 and best_d = ref 0.0 in
          for j = 0 to ncols - 1 do
            if st.vstat.(j) <> Basic && st.up.(j) -. st.lo.(j) > zero_tol then begin
              let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
              let alpha = ref 0.0 in
              for p = 0 to Array.length idx - 1 do
                alpha := !alpha +. (vl.(p) *. rho.(idx.(p)))
              done;
              let alpha = !alpha in
              if Float.abs alpha > pivot_tol then begin
                let eligible =
                  (* x_B(r) changes by -alpha * dx_j *)
                  match st.vstat.(j) with
                  | At_lower -> if !below then alpha < 0.0 else alpha > 0.0
                  | At_upper -> if !below then alpha > 0.0 else alpha < 0.0
                  | Nb_free -> true
                  | Basic -> false
                in
                if eligible then begin
                  let d = reduced_cost st ~phase1:false j in
                  let ratio = Float.abs d /. Float.abs alpha in
                  if
                    ratio < !best_ratio -. 1e-12
                    || (ratio < !best_ratio +. 1e-12
                       && Float.abs alpha > Float.abs !best_alpha)
                  then begin
                    best_j := j;
                    best_ratio := ratio;
                    best_alpha := alpha;
                    best_d := d
                  end
                end
              end
            end
          done;
          if !best_j < 0 then ok := false
          else begin
            let q = !best_j in
            scatter_column st q st.w;
            ftran st st.w;
            let alpha = st.w.(r) in
            if Float.abs alpha < pivot_tol /. 10.0 then ok := false
            else begin
              let jl = st.basic.(r) in
              let target = if !below then st.lo.(jl) else st.up.(jl) in
              let tau = (st.xb.(r) -. target) /. alpha in
              let range = st.up.(q) -. st.lo.(q) in
              let tau, flip =
                match st.vstat.(q) with
                | At_lower when tau > range && range < infinity -> (range, true)
                | At_upper when tau < -.range && range < infinity ->
                  (-.range, true)
                | At_lower | At_upper | Nb_free | Basic -> (tau, false)
              in
              let dir_ok =
                match st.vstat.(q) with
                | At_lower -> tau >= -1e-9
                | At_upper -> tau <= 1e-9
                | Nb_free -> true
                | Basic -> false
              in
              if not dir_ok then ok := false
              else if flip then begin
                for pos = 0 to m - 1 do
                  if st.w.(pos) <> 0.0 then
                    st.xb.(pos) <- st.xb.(pos) -. (st.w.(pos) *. tau)
                done;
                st.vstat.(q) <-
                  (match st.vstat.(q) with
                  | At_lower -> At_upper
                  | At_upper -> At_lower
                  | s -> s)
              end
              else begin
                let entering_value = nb_value st q +. tau in
                for pos = 0 to m - 1 do
                  if pos <> r && st.w.(pos) <> 0.0 then
                    st.xb.(pos) <- st.xb.(pos) -. (st.w.(pos) *. tau)
                done;
                st.vstat.(jl) <- (if !below then At_lower else At_upper);
                st.vpos.(jl) <- -1;
                let cnt = ref 0 in
                for i = 0 to m - 1 do
                  if i <> r && Float.abs st.w.(i) > zero_tol then incr cnt
                done;
                let idx = Array.make !cnt 0 and vl = Array.make !cnt 0.0 in
                let p = ref 0 in
                for i = 0 to m - 1 do
                  if i <> r && Float.abs st.w.(i) > zero_tol then begin
                    idx.(!p) <- i;
                    vl.(!p) <- -.st.w.(i) /. alpha;
                    incr p
                  end
                done;
                push_eta st
                  { e_row = r; e_piv = 1.0 /. alpha; e_idx = idx; e_val = vl };
                st.vstat.(q) <- Basic;
                st.vpos.(q) <- r;
                st.basic.(r) <- q;
                st.xb.(r) <- entering_value;
                st.pivots_since_refactor <- st.pivots_since_refactor + 1;
                (* Incremental dual update: the new basis prices q to zero,
                   so y' = y + (d_q / alpha_rq) * rho. Bound flips leave
                   the basis (and hence y) untouched. *)
                let theta = !best_d /. alpha in
                for i = 0 to m - 1 do
                  if rho.(i) <> 0.0 then st.y.(i) <- st.y.(i) +. (theta *. rho.(i))
                done;
                if should_refactor st then begin
                  refactor st;
                  compute_duals st ~phase1:false
                end
              end
            end
          end
        end
      done;
      !finished
    end

  let extract st status =
    let n = st.inst.n in
    let x = Array.init n (fun j -> value_of st j) in
    compute_duals st ~phase1:false;
    let duals = Array.copy st.y in
    let reduced_costs = Array.init n (fun j -> reduced_cost st ~phase1:false j) in
    let objective =
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (st.inst.cost.(j) *. x.(j))
      done;
      !acc
    in
    {
      status;
      objective;
      x;
      duals;
      reduced_costs;
      basis =
        ({ vstat = Array.copy st.vstat; basic = Array.copy st.basic } : basis);
      iterations = st.niter;
      btran_saved = st.btran_saved;
    }

  let solve ?basis ?lower ?upper ?(max_iters = 200_000) ?deadline_s
      ?refactor:(refp = default_refactor) inst =
    let n = inst.n and m = inst.m and ncols = inst.ncols in
    let lo = Array.copy inst.base_lo and up = Array.copy inst.base_up in
    (match lower with
    | Some l ->
      assert (Array.length l = n);
      Array.blit l 0 lo 0 n
    | None -> ());
    (match upper with
    | Some u ->
      assert (Array.length u = n);
      Array.blit u 0 up 0 n
    | None -> ());
    for j = 0 to n - 1 do
      if lo.(j) > up.(j) then
        invalid_arg "Simplex.solve: lower bound exceeds upper bound"
    done;
    let st =
      {
        inst;
        refp;
        lo;
        up;
        vstat = Array.make ncols At_lower;
        basic = Array.make m 0;
        vpos = Array.make ncols (-1);
        xb = Array.make m 0.0;
        w = Array.make m 0.0;
        y = Array.make m 0.0;
        etas = [||];
        neta = 0;
        eta_nnz_count = 0;
        nnz_at_refactor = 0;
        btran_saved = 0;
        niter = 0;
        pivots_since_refactor = 0;
        bland = false;
        degen_count = 0;
        perturbed = false;
        perturb_rounds = 0;
        perturb =
          Array.init ncols (fun j ->
              let h = (j + 1) * 2654435761 land 0xFFFF in
              1e-7 +. (1e-6 *. float_of_int h /. 65536.0));
        bounds_shifted = false;
        orig_lo = [||];
        orig_up = [||];
      }
    in
    (match basis with
    | Some (b : basis) ->
      assert (Array.length b.vstat = ncols && Array.length b.basic = m);
      Array.blit b.vstat 0 st.vstat 0 ncols;
      Array.blit b.basic 0 st.basic 0 m;
      for j = 0 to ncols - 1 do
        normalize_nonbasic st j
      done;
      refactor st;
      (* Re-optimise with the dual simplex; when it stalls (or the basis
         factorised with pathological fill-in) a cold start beats grinding
         the primal through a half-repaired basis. *)
      if eta_nnz st > (30 * m) + 5000 then cold_reset st
      else if not (dual_reoptimize st ~max_pivots:((m / 2) + 200)) then
        cold_reset st
    | None ->
      for r = 0 to m - 1 do
        st.basic.(r) <- n + r;
        st.vstat.(n + r) <- Basic;
        st.vpos.(n + r) <- r
      done;
      for j = 0 to n - 1 do
        normalize_nonbasic st j
      done;
      compute_xb st);
    let debug = Sys.getenv_opt "OPTROUTER_SIMPLEX_DEBUG" <> None in
    let confirm = ref false in
    let rec loop () =
      if st.niter > max_iters then
        raise (Numerical_failure "simplex iteration limit reached");
      (match deadline_s with
      | Some deadline when st.niter land 63 = 0 && Unix.gettimeofday () > deadline ->
        raise (Numerical_failure "simplex deadline exceeded")
      | Some _ | None -> ());
      st.niter <- st.niter + 1;
      let phase1 = infeasibility st > feas_tol in
      if st.niter mod 1000 = 0 then begin
        let progress_line () =
          let obj = ref 0.0 in
          for pos = 0 to st.inst.m - 1 do
            obj := !obj +. (st.inst.cost.(st.basic.(pos)) *. st.xb.(pos))
          done;
          for j = 0 to st.inst.ncols - 1 do
            if st.vstat.(j) <> Basic then
              obj := !obj +. (st.inst.cost.(j) *. nb_value st j)
          done;
          Printf.sprintf
            "iter=%d phase=%d infeas=%.3g obj=%.6f neta=%d eta_nnz=%d bland=%b degen=%d"
            st.niter
            (if phase1 then 1 else 2)
            (infeasibility st) !obj st.neta (eta_nnz st) st.bland st.degen_count
        in
        (* The legacy OPTROUTER_SIMPLEX_DEBUG variable bypasses the level
           filter; either way the event goes through the Log sink, whose
           single-write lines cannot interleave across domains. *)
        if debug then Log.emit Log.Debug ~src:"simplex" progress_line
        else Log.debug ~src:"simplex" progress_line
      end;
      match price st ~phase1 with
      | None ->
        if (not phase1) && st.perturbed then begin
          (* optimal for the perturbed costs: withdraw the perturbation and
             re-optimise the genuine objective (usually a few pivots) *)
          st.perturbed <- false;
          st.bland <- false;
          st.degen_count <- 0;
          confirm := false;
          loop ()
        end
        else if (not phase1) && st.bounds_shifted then begin
          (* optimal for the relaxed bounds: restore them; phase 1 then
             walks the few slightly-out-of-bounds basics back in *)
          unshift_bounds st;
          st.bland <- false;
          st.degen_count <- 0;
          confirm := false;
          loop ()
        end
        else if not !confirm then begin
          (* Re-derive the claim from a fresh factorisation before trusting
             it: eta-file drift can fake both optimality and infeasibility. *)
          confirm := true;
          refactor st;
          loop ()
        end
        else if phase1 then extract st Infeasible
        else extract st Optimal
      | Some e -> (
        confirm := false;
        match ratio_test st ~phase1 e with
        | Unlimited ->
          if phase1 then begin
            refactor st;
            match ratio_test st ~phase1 e with
            | Unlimited ->
              raise (Numerical_failure "unblocked phase-1 direction")
            | lim -> step e lim
          end
          else extract st Unbounded
        | lim -> step e lim)
    and step e lim =
      let t = apply_step st e lim in
      if t <= 1e-10 then begin
        st.degen_count <- st.degen_count + 1;
        if st.degen_count > 200 then st.bland <- true;
        (* A long fully-degenerate Bland sequence means a plateau the
           pivoting rules cannot escape. Remedies, escalating: perturb the
           costs (gives Dantzig a strict direction across the plateau),
           then shift the bounds; give up after a few rounds and let the
           caller restart cold. *)
        if st.degen_count > 600 then begin
          if st.perturb_rounds < 3 then begin
            st.perturbed <- true;
            st.perturb_rounds <- st.perturb_rounds + 1;
            Array.iteri
              (fun j v ->
                st.perturb.(j) <-
                  v *. (1.0 +. float_of_int ((j + st.perturb_rounds) mod 7)))
              st.perturb
          end
          else if not st.bounds_shifted then shift_bounds st
          else raise (Numerical_failure "persistent degenerate cycling");
          st.bland <- false;
          st.degen_count <- 0
        end
      end
      else begin
        st.degen_count <- 0;
        st.bland <- false
      end;
      if should_refactor st then refactor st;
      loop ()
    in
    loop ()
end

let solve ?basis ?max_iters ?refactor lp =
  Instance.solve ?basis ?max_iters ?refactor (Instance.create lp)

let verify_optimal ?(tol = 1e-6) (lp : Lp.t) (res : result) =
  if res.status <> Optimal then Error "status is not Optimal"
  else if not (Lp.is_feasible ~tol lp res.x) then Error "solution is infeasible"
  else begin
    let n = Lp.nvars lp in
    let d = Array.map (fun (v : Lp.var) -> v.obj) lp.vars in
    Array.iteri
      (fun r (row : Lp.row) ->
        Array.iter
          (fun (j, a) -> d.(j) <- d.(j) -. (a *. res.duals.(r)))
          row.coeffs;
        ignore r)
      lp.rows;
    let problems = ref [] in
    for j = 0 to n - 1 do
      let v = lp.vars.(j) in
      let x = res.x.(j) in
      let at_lower = x <= v.lower +. tol in
      let at_upper = x >= v.upper -. tol in
      let ok =
        (at_lower && d.(j) >= -.tol)
        || (at_upper && d.(j) <= tol)
        || Float.abs d.(j) <= tol
      in
      if not ok then
        problems :=
          Printf.sprintf "var %s: x=%g d=%g bounds [%g, %g]" v.v_name x d.(j)
            v.lower v.upper
          :: !problems
    done;
    Array.iteri
      (fun r (row : Lp.row) ->
        let activity = Lp.row_activity lp row res.x in
        let y = res.duals.(r) in
        let ok =
          match row.sense with
          | Lp.Eq -> true
          | Lp.Le ->
            (* inactive rows need zero multipliers; active Le rows need
               y <= 0 in a minimisation problem with a.x + s = b, s >= 0 *)
            if activity < row.rhs -. tol then Float.abs y <= tol else y <= tol
          | Lp.Ge ->
            if activity > row.rhs +. tol then Float.abs y <= tol else y >= -.tol
        in
        if not ok then
          problems :=
            Printf.sprintf "row %s: activity=%g rhs=%g y=%g" row.r_name activity
              row.rhs y
            :: !problems)
      lp.rows;
    match !problems with
    | [] -> Ok ()
    | p :: _ -> Error p
  end
