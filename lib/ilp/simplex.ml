module Log = Optrouter_report.Report.Log

type vstat = Basic | At_lower | At_upper | Nb_free
type basis = { vstat : vstat array; basic : int array }
type status = Optimal | Infeasible | Unbounded

type pricing = Dantzig | Devex

type warm = [ `Cold | `Reused | `Repaired ]

type result = {
  status : status;
  objective : float;
  x : float array;
  duals : float array;
  reduced_costs : float array;
  basis : basis;
  iterations : int;
  bound_flips : int;
      (** ratio-test steps resolved by flipping the entering variable to
          its opposite bound — no basis change, no eta, no fresh BTRAN *)
  warm : warm;
      (** how the starting basis was used: [`Cold] (none supplied, or the
          supplied one was abandoned), [`Reused] (factorised as given) or
          [`Repaired] (factorised after substituting slacks for singular
          columns) *)
  btran_saved : int;
      (** full BTRAN passes avoided by the incremental dual update in
          [dual_reoptimize] *)
}

exception Numerical_failure of string

let dual_tol = 1e-9
let feas_tol = 1e-7
let zero_tol = 1e-12
let pivot_tol = 1e-8

(* Refactorisation policy. The pivot interval is the classic hard cap; the
   two adaptive triggers refactor *early* when the eta file degrades before
   the interval is up: [fill_factor] bounds eta-file fill (nonzeros per
   row) relative to a fresh factorisation, and [residual_tol] bounds the
   drift of the factorised representation, measured as the relative
   infinity-norm residual of [B x_B + N x_N = rhs]. Routing bases are
   extremely sparse, so a dense eta file or a drifting residual is always
   accumulated round-off, never genuine structure. *)
type refactor_params = {
  interval : int;
  fill_factor : float;
  residual_tol : float;
}

let default_refactor = { interval = 128; fill_factor = 16.0; residual_tol = 1e-7 }

let pricing_name = function Dantzig -> "dantzig" | Devex -> "devex"

let pricing_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dantzig" | "full" -> Ok Dantzig
  | "devex" | "partial" -> Ok Devex
  | other ->
    Error (Printf.sprintf "unknown pricing %S (expected dantzig|devex)" other)

(* Read once at module initialisation; an unparseable value silently keeps
   the default so a stray environment cannot break solves. *)
let env_pricing =
  match Sys.getenv_opt "OPTROUTER_PRICING" with
  | None -> Devex
  | Some s -> ( match pricing_of_string s with Ok p -> p | Error _ -> Devex)

module Params = struct
  type t = {
    basis : basis option;
    lower : float array option;
    upper : float array option;
    max_iters : int;
    deadline_s : float option;
    refactor : refactor_params;
    pricing : pricing;
  }

  let default =
    {
      basis = None;
      lower = None;
      upper = None;
      max_iters = 200_000;
      deadline_s = None;
      refactor = default_refactor;
      pricing = env_pricing;
    }
end

let make_params ?basis ?lower ?upper ?(max_iters = 200_000) ?deadline_s
    ?(refactor = default_refactor) ?(pricing = env_pricing) () =
  { Params.basis; lower; upper; max_iters; deadline_s; refactor; pricing }

module Instance = struct
  type t = {
    lp : Lp.t;
    n : int;
    m : int;
    ncols : int;
    cidx : int array array;
    cval : float array array;
    base_lo : float array;
    base_up : float array;
    cost : float array;
    rhs : float array;
  }

  let nvars t = t.n
  let nrows t = t.m

  (* Rows become equalities [a.x + s = rhs] with a bounded logical slack:
     Le gives s in [0, inf), Ge gives s in (-inf, 0], Eq pins s to 0. *)
  let create (lp : Lp.t) =
    let n = Lp.nvars lp and m = Lp.nrows lp in
    let ncols = n + m in
    let counts = Array.make ncols 0 in
    Array.iter
      (fun (r : Lp.row) ->
        Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) r.coeffs)
      lp.rows;
    for r = 0 to m - 1 do
      counts.(n + r) <- 1
    done;
    let cidx = Array.map (fun c -> Array.make c 0) counts in
    let cval = Array.map (fun c -> Array.make c 0.0) counts in
    let fill = Array.make ncols 0 in
    Array.iteri
      (fun r (row : Lp.row) ->
        Array.iter
          (fun (j, a) ->
            cidx.(j).(fill.(j)) <- r;
            cval.(j).(fill.(j)) <- a;
            fill.(j) <- fill.(j) + 1)
          row.coeffs)
      lp.rows;
    for r = 0 to m - 1 do
      cidx.(n + r).(0) <- r;
      cval.(n + r).(0) <- 1.0
    done;
    let base_lo = Array.make ncols 0.0 and base_up = Array.make ncols 0.0 in
    let cost = Array.make ncols 0.0 in
    Array.iteri
      (fun j (v : Lp.var) ->
        base_lo.(j) <- v.lower;
        base_up.(j) <- v.upper;
        cost.(j) <- v.obj)
      lp.vars;
    Array.iteri
      (fun r (row : Lp.row) ->
        let lo, up =
          match row.sense with
          | Lp.Le -> (0.0, infinity)
          | Lp.Ge -> (neg_infinity, 0.0)
          | Lp.Eq -> (0.0, 0.0)
        in
        base_lo.(n + r) <- lo;
        base_up.(n + r) <- up)
      lp.rows;
    let rhs = Array.map (fun (r : Lp.row) -> r.rhs) lp.rows in
    { lp; n; m; ncols; cidx; cval; base_lo; base_up; cost; rhs }

  type st = {
    inst : t;
    refp : refactor_params;
    pricing : pricing;
    lo : float array;
    up : float array;
    vstat : vstat array;
    basic : int array;
    vpos : int array;
    xb : float array;
    w : float array;
    y : float array;
    (* Eta file of the product-form inverse, stored as a flat pool of
       unboxed arrays rather than an array of per-eta records: eta [k]
       pivots on row [e_rows.(k)] with diagonal [e_pivs.(k)] (already
       inverted), and its off-pivot entries live at
       [e_start.(k) .. e_start.(k+1) - 1] of [e_idx]/[e_val]. The FTRAN/
       BTRAN kernels walk these contiguously with unsafe accesses — the
       routing LPs spend most of their time here. *)
    mutable e_rows : int array;
    mutable e_pivs : float array;
    mutable e_start : int array;  (** length [cap + 1]; [e_start.(neta)] = pool fill *)
    mutable e_idx : int array;
    mutable e_val : float array;
    mutable neta : int;
    mutable eta_nnz_count : int;  (** running nonzero count of the eta file *)
    mutable nnz_at_refactor : int;  (** eta nonzeros of the fresh factorisation *)
    dw : float array;  (** devex reference weights, one per column *)
    mutable cursor : int;  (** partial-pricing scan cursor *)
    mutable y_valid : bool;
        (** [y] holds current phase-2 duals: bound flips leave the basis
            (hence the duals) untouched, so pricing after a flip can skip
            the BTRAN entirely *)
    mutable nflips : int;
    mutable warm_outcome : warm;
    mutable repairs : int;  (** basis columns dropped by refactorisation *)
    mutable btran_saved : int;
    mutable niter : int;
    mutable pivots_since_refactor : int;
    mutable bland : bool;
    mutable degen_count : int;
    mutable perturbed : bool;
    mutable perturb_rounds : int;
    perturb : float array;
    mutable bounds_shifted : bool;
    mutable orig_lo : float array;  (** saved when bounds are shifted *)
    mutable orig_up : float array;
  }

  (* Build and push the eta for a pivot on row [r] of the FTRANned column
     held in [st.w]. Identity columns (pivot 1, no off-pivot entries)
     produce no eta at all. Any eta push is a basis change, so the cached
     phase-2 duals are invalidated here. *)
  let push_eta_from_w st r =
    let m = st.inst.m in
    let w = st.w in
    let piv = w.(r) in
    let cnt = ref 0 in
    for i = 0 to m - 1 do
      if i <> r && Float.abs (Array.unsafe_get w i) > zero_tol then incr cnt
    done;
    if !cnt > 0 || Float.abs (piv -. 1.0) > zero_tol then begin
      if st.neta = Array.length st.e_rows then begin
        let cap = max 64 (2 * st.neta) in
        let rows = Array.make cap 0 and pivs = Array.make cap 0.0 in
        let starts = Array.make (cap + 1) 0 in
        Array.blit st.e_rows 0 rows 0 st.neta;
        Array.blit st.e_pivs 0 pivs 0 st.neta;
        Array.blit st.e_start 0 starts 0 (st.neta + 1);
        st.e_rows <- rows;
        st.e_pivs <- pivs;
        st.e_start <- starts
      end;
      let off = st.e_start.(st.neta) in
      if off + !cnt > Array.length st.e_idx then begin
        let cap = max 256 (max (off + !cnt) (2 * Array.length st.e_idx)) in
        let idx = Array.make cap 0 and vl = Array.make cap 0.0 in
        Array.blit st.e_idx 0 idx 0 off;
        Array.blit st.e_val 0 vl 0 off;
        st.e_idx <- idx;
        st.e_val <- vl
      end;
      let p = ref off in
      for i = 0 to m - 1 do
        if i <> r then begin
          let wi = Array.unsafe_get w i in
          if Float.abs wi > zero_tol then begin
            Array.unsafe_set st.e_idx !p i;
            Array.unsafe_set st.e_val !p (-.wi /. piv);
            incr p
          end
        end
      done;
      st.e_rows.(st.neta) <- r;
      st.e_pivs.(st.neta) <- 1.0 /. piv;
      st.neta <- st.neta + 1;
      st.e_start.(st.neta) <- !p;
      st.eta_nnz_count <- st.eta_nnz_count + 1 + !cnt
    end;
    st.y_valid <- false

  let ftran st v =
    let e_rows = st.e_rows and e_pivs = st.e_pivs and e_start = st.e_start in
    let e_idx = st.e_idx and e_val = st.e_val in
    for k = 0 to st.neta - 1 do
      let r = Array.unsafe_get e_rows k in
      let t = Array.unsafe_get v r in
      if t <> 0.0 then begin
        Array.unsafe_set v r (Array.unsafe_get e_pivs k *. t);
        let stop = Array.unsafe_get e_start (k + 1) in
        for p = Array.unsafe_get e_start k to stop - 1 do
          let i = Array.unsafe_get e_idx p in
          Array.unsafe_set v i
            (Array.unsafe_get v i +. (Array.unsafe_get e_val p *. t))
        done
      end
    done

  let btran st v =
    let e_rows = st.e_rows and e_pivs = st.e_pivs and e_start = st.e_start in
    let e_idx = st.e_idx and e_val = st.e_val in
    for k = st.neta - 1 downto 0 do
      let r = Array.unsafe_get e_rows k in
      let s = ref (Array.unsafe_get e_pivs k *. Array.unsafe_get v r) in
      let stop = Array.unsafe_get e_start (k + 1) in
      for p = Array.unsafe_get e_start k to stop - 1 do
        s :=
          !s
          +. Array.unsafe_get e_val p
             *. Array.unsafe_get v (Array.unsafe_get e_idx p)
      done;
      Array.unsafe_set v r !s
    done

  let nb_value st j =
    match st.vstat.(j) with
    | At_lower -> st.lo.(j)
    | At_upper -> st.up.(j)
    | Nb_free -> 0.0
    | Basic -> assert false

  (* Snap a nonbasic variable onto a representable bound; used when warm
     starting with changed bounds. *)
  let normalize_nonbasic st j =
    match st.vstat.(j) with
    | Basic -> ()
    | At_lower when st.lo.(j) > neg_infinity -> ()
    | At_upper when st.up.(j) < infinity -> ()
    | At_lower | At_upper | Nb_free ->
      if st.lo.(j) > neg_infinity then st.vstat.(j) <- At_lower
      else if st.up.(j) < infinity then st.vstat.(j) <- At_upper
      else st.vstat.(j) <- Nb_free

  let scatter_column st j v =
    Array.fill v 0 st.inst.m 0.0;
    let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
    for p = 0 to Array.length idx - 1 do
      v.(idx.(p)) <- vl.(p)
    done

  let compute_xb st =
    let m = st.inst.m in
    let r = Array.make m 0.0 in
    Array.blit st.inst.rhs 0 r 0 m;
    for j = 0 to st.inst.ncols - 1 do
      if st.vstat.(j) <> Basic then begin
        let v = nb_value st j in
        if v <> 0.0 then begin
          let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
          for p = 0 to Array.length idx - 1 do
            r.(idx.(p)) <- r.(idx.(p)) -. (vl.(p) *. v)
          done
        end
      end
    done;
    ftran st r;
    Array.blit r 0 st.xb 0 m

  (* Rebuild the eta file from the current basis columns, repairing a
     singular basis by substituting logical slacks. Columns are processed
     sparsest-first (a poor man's Markowitz ordering), and unit slack
     columns that land on an unassigned row produce no eta at all. *)
  let refactor st =
    let m = st.inst.m in
    st.neta <- 0;
    st.eta_nnz_count <- 0;
    let assigned = Array.make m false in
    let old_cols = Array.copy st.basic in
    Array.sort
      (fun j1 j2 ->
        Int.compare (Array.length st.inst.cidx.(j1)) (Array.length st.inst.cidx.(j2)))
      old_cols;
    let dropped = ref [] in
    let place j =
      scatter_column st j st.w;
      ftran st st.w;
      let best = ref (-1) and best_mag = ref 0.0 in
      for r = 0 to m - 1 do
        if not assigned.(r) then begin
          let mag = Float.abs st.w.(r) in
          if mag > !best_mag then begin
            best := r;
            best_mag := mag
          end
        end
      done;
      if !best < 0 || !best_mag < pivot_tol then dropped := j :: !dropped
      else begin
        let r = !best in
        assigned.(r) <- true;
        st.basic.(r) <- j;
        st.vpos.(j) <- r;
        st.vstat.(j) <- Basic;
        push_eta_from_w st r
      end
    in
    Array.iter (fun j -> st.vpos.(j) <- -1) old_cols;
    Array.iter place old_cols;
    (* Kick singular columns out of the basis... *)
    st.repairs <- st.repairs + List.length !dropped;
    List.iter
      (fun j ->
        st.vstat.(j) <- At_lower;
        normalize_nonbasic st j)
      !dropped;
    (* ...and let slacks of unassigned rows take their place. *)
    for r = 0 to m - 1 do
      if not assigned.(r) then begin
        let s = st.inst.n + r in
        if st.vstat.(s) = Basic then
          raise (Numerical_failure "refactor: slack already basic on unassigned row");
        place s;
        if st.vpos.(s) < 0 then
          raise (Numerical_failure "refactor: singular basis not repairable")
      end
    done;
    st.pivots_since_refactor <- 0;
    st.nnz_at_refactor <- st.eta_nnz_count;
    st.y_valid <- false;
    compute_xb st

  let eta_nnz st = st.eta_nnz_count

  (* Throw a basis away and restart from the all-slack basis; the composite
     phase 1 then restores feasibility. Used when a warm-start basis
     factorises with catastrophic fill-in — iterating on a dense eta file
     costs more than re-solving. *)
  let cold_reset st =
    let n = st.inst.n and m = st.inst.m in
    st.neta <- 0;
    st.eta_nnz_count <- 0;
    st.nnz_at_refactor <- 0;
    st.y_valid <- false;
    st.cursor <- 0;
    Array.fill st.dw 0 (Array.length st.dw) 1.0;
    for j = 0 to st.inst.ncols - 1 do
      st.vpos.(j) <- -1;
      st.vstat.(j) <- At_lower;
      normalize_nonbasic st j
    done;
    for r = 0 to m - 1 do
      st.basic.(r) <- n + r;
      st.vstat.(n + r) <- Basic;
      st.vpos.(n + r) <- r
    done;
    st.pivots_since_refactor <- 0;
    compute_xb st

  (* Drift of the factorised representation:
     ||B x_B + N x_N - rhs||_inf / (1 + ||rhs||_inf). A fresh
     factorisation satisfies the system to round-off; growth means the
     eta file has accumulated cancellation and the basis values are no
     longer trustworthy. One sparse matrix-vector pass, no FTRAN. *)
  let ftran_residual st =
    let m = st.inst.m in
    let r = Array.make m 0.0 in
    Array.blit st.inst.rhs 0 r 0 m;
    for j = 0 to st.inst.ncols - 1 do
      let v =
        if st.vstat.(j) = Basic then st.xb.(st.vpos.(j)) else nb_value st j
      in
      if v <> 0.0 && Float.is_finite v then begin
        let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
        for p = 0 to Array.length idx - 1 do
          r.(idx.(p)) <- r.(idx.(p)) -. (vl.(p) *. v)
        done
      end
    done;
    let mx = ref 0.0 and scale = ref 1.0 in
    for i = 0 to m - 1 do
      mx := Float.max !mx (Float.abs r.(i));
      scale := Float.max !scale (Float.abs st.inst.rhs.(i))
    done;
    !mx /. !scale

  (* Adaptive refactorisation: the pivot interval is the hard cap, but a
     degrading eta file triggers early. Fill requires both an absolute
     budget ([fill_factor] nonzeros per row) and genuine growth over the
     fresh factorisation, so an intrinsically dense basis cannot thrash;
     the residual probe runs every 32 pivots. Both triggers wait out the
     first few pivots — refactoring is itself O(eta file). *)
  let should_refactor st =
    st.pivots_since_refactor >= st.refp.interval
    || (st.pivots_since_refactor >= 8
       && float_of_int st.eta_nnz_count
          > st.refp.fill_factor *. float_of_int (st.inst.m + 1)
       && st.eta_nnz_count > 2 * st.nnz_at_refactor)
    || (st.pivots_since_refactor >= 8
       && st.pivots_since_refactor mod 32 = 0
       && ftran_residual st > st.refp.residual_tol)

  (* Primal degeneracy remedy (the EXPAND idea): shift every finite bound
     outward by a tiny column-specific epsilon so basic variables are never
     exactly at a bound and ratio tests make strictly positive steps. The
     shift is withdrawn before optimality is declared; the residual
     infeasibility is far below the feasibility tolerance of callers. *)
  let shift_bounds st =
    let ncols = st.inst.ncols in
    if not st.bounds_shifted then begin
      st.orig_lo <- Array.copy st.lo;
      st.orig_up <- Array.copy st.up
    end;
    for j = 0 to ncols - 1 do
      let h1 = float_of_int ((j + 1) * 40503 land 0xFFF) /. 4096.0 in
      let h2 = float_of_int ((j + 7) * 48271 land 0xFFF) /. 4096.0 in
      if st.lo.(j) > neg_infinity then
        st.lo.(j) <- st.lo.(j) -. (1e-8 *. (1.0 +. h1));
      if st.up.(j) < infinity then
        st.up.(j) <- st.up.(j) +. (1e-8 *. (1.0 +. h2))
    done;
    st.bounds_shifted <- true;
    compute_xb st

  let unshift_bounds st =
    if st.bounds_shifted then begin
      Array.blit st.orig_lo 0 st.lo 0 (Array.length st.orig_lo);
      Array.blit st.orig_up 0 st.up 0 (Array.length st.orig_up);
      st.bounds_shifted <- false;
      compute_xb st
    end

  type entering = { q : int; dir : float; dq : float }

  (* Phase-1 objective: sum of bound violations of basic variables. Its
     gradient with respect to basic variable values is -1 below the lower
     bound, +1 above the upper bound, 0 otherwise. *)
  (* Phase-2 cost with the anti-degeneracy perturbation applied. The
     perturbation is a deterministic, column-specific epsilon far below the
     cost scale; it breaks the massive ties routing LPs exhibit. It is
     removed again before optimality is declared. *)
  let cost_of st j =
    if st.perturbed then st.inst.cost.(j) +. st.perturb.(j)
    else st.inst.cost.(j)

  let basic_phase1_cost st pos =
    let j = st.basic.(pos) in
    let x = st.xb.(pos) in
    if x < st.lo.(j) -. feas_tol then -1.0
    else if x > st.up.(j) +. feas_tol then 1.0
    else 0.0

  let infeasibility st =
    let total = ref 0.0 in
    for pos = 0 to st.inst.m - 1 do
      let j = st.basic.(pos) in
      let x = st.xb.(pos) in
      if x < st.lo.(j) -. feas_tol then total := !total +. (st.lo.(j) -. x)
      else if x > st.up.(j) +. feas_tol then total := !total +. (x -. st.up.(j))
    done;
    !total

  let compute_duals st ~phase1 =
    let m = st.inst.m in
    for pos = 0 to m - 1 do
      st.y.(pos) <-
        (if phase1 then basic_phase1_cost st pos else cost_of st st.basic.(pos))
    done;
    btran st st.y;
    (* Phase-1 duals depend on the basic values, which move every step, so
       they are never cached; phase-2 duals stay valid until the basis or
       the (perturbed) costs change. *)
    st.y_valid <- not phase1

  let ensure_duals st ~phase1 =
    if phase1 || not st.y_valid then compute_duals st ~phase1

  let reduced_cost st ~phase1 j =
    let c = if phase1 then 0.0 else cost_of st j in
    let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
    let acc = ref c in
    for p = 0 to Array.length idx - 1 do
      acc := !acc -. (vl.(p) *. st.y.(idx.(p)))
    done;
    !acc

  (* Dantzig pricing (largest violation), falling back to Bland's rule when
     a long degenerate stall is detected. *)
  let dantzig_price st ~phase1 =
    ensure_duals st ~phase1;
    let best = ref None in
    let consider j dir dq =
      let score = Float.abs dq in
      match !best with
      | Some (_, s) when not st.bland && s >= score -> ()
      | Some _ when st.bland -> ()
      | Some _ | None -> best := Some ({ q = j; dir; dq }, score)
    in
    (try
       for j = 0 to st.inst.ncols - 1 do
         (match st.vstat.(j) with
         | Basic -> ()
         | At_lower | At_upper | Nb_free ->
           if st.up.(j) -. st.lo.(j) > zero_tol then begin
             let d = reduced_cost st ~phase1 j in
             match st.vstat.(j) with
             | At_lower -> if d < -.dual_tol then consider j 1.0 d
             | At_upper -> if d > dual_tol then consider j (-1.0) d
             | Nb_free ->
               if d < -.dual_tol then consider j 1.0 d
               else if d > dual_tol then consider j (-1.0) d
             | Basic -> ()
           end);
         if st.bland && !best <> None then raise Exit
       done
     with Exit -> ());
    Option.map fst !best

  (* Devex pricing over a partial candidate scan. Scores are d^2 / w_j
     against the reference weights in [st.dw]; the scan starts at the
     persistent cursor and wraps, stopping one chunk after the first
     eligible candidate. Because the duals are fixed for the whole call, a
     full wrap that finds no candidate is exactly the full-pricing
     optimality claim — no separate refresh pass is needed (and the solve
     loop re-derives any terminal claim from a fresh factorisation
     anyway). *)
  let devex_price st ~phase1 =
    ensure_duals st ~phase1;
    let ncols = st.inst.ncols in
    let chunk = max 200 (ncols / 16) in
    let best = ref None and best_score = ref 0.0 in
    let scanned = ref 0 and found = ref 0 in
    let j = ref st.cursor in
    if !j >= ncols then j := 0;
    (* A presolve-emptied LP has no columns at all; the do-while scan below
       tests its exit condition only after touching a column. *)
    let scanning = ref (ncols > 0) in
    while !scanning do
      let jj = !j in
      (match st.vstat.(jj) with
      | Basic -> ()
      | At_lower | At_upper | Nb_free ->
        if st.up.(jj) -. st.lo.(jj) > zero_tol then begin
          let d = reduced_cost st ~phase1 jj in
          let dir =
            match st.vstat.(jj) with
            | At_lower -> if d < -.dual_tol then 1.0 else 0.0
            | At_upper -> if d > dual_tol then -1.0 else 0.0
            | Nb_free ->
              if d < -.dual_tol then 1.0
              else if d > dual_tol then -1.0
              else 0.0
            | Basic -> 0.0
          in
          if dir <> 0.0 then begin
            incr found;
            let score = d *. d /. Float.max 1e-12 st.dw.(jj) in
            if score > !best_score then begin
              best_score := score;
              best := Some { q = jj; dir; dq = d }
            end
          end
        end);
      incr scanned;
      j := jj + 1;
      if !j >= ncols then j := 0;
      if !scanned >= ncols then scanning := false
      else if !found > 0 && !scanned >= chunk then scanning := false
    done;
    st.cursor <- !j;
    !best

  let price st ~phase1 =
    (* Bland's rule needs the least-index eligible column, which only the
       full scan provides. *)
    if st.bland || st.pricing = Dantzig then dantzig_price st ~phase1
    else devex_price st ~phase1

  type step_limit = Unlimited | Flip of float | Block of int * float * vstat

  (* Bounded-variable ratio test with the conservative phase-1 convention:
     an infeasible basic variable blocks as soon as it reaches the bound it
     violates (where the phase-1 gradient would change). Ties are broken by
     the largest pivot magnitude for stability — except under Bland's rule,
     which requires the least variable index in the leaving choice too, or
     its anti-cycling guarantee does not hold. *)
  let ratio_test st ~phase1 (e : entering) =
    scatter_column st e.q st.w;
    ftran st st.w;
    let range = st.up.(e.q) -. st.lo.(e.q) in
    let limit = ref (if range < infinity then Flip range else Unlimited) in
    let limit_t = ref (match !limit with Flip t -> t | Unlimited | Block _ -> infinity) in
    let limit_mag = ref 0.0 in
    let limit_var = ref max_int in
    (* Entries below the pivot tolerance cannot safely leave the basis;
       skipping them bounds the induced infeasibility by t * |w_i|, well
       inside the feasibility tolerance. *)
    for pos = 0 to st.inst.m - 1 do
      let wi = st.w.(pos) in
      if Float.abs wi > pivot_tol /. 10.0 then begin
        let rate = -.e.dir *. wi in
        let j = st.basic.(pos) in
        let x = st.xb.(pos) and lj = st.lo.(j) and uj = st.up.(j) in
        let candidate =
          if phase1 && x < lj -. feas_tol then
            if rate > 0.0 then Some ((lj -. x) /. rate, At_lower) else None
          else if phase1 && x > uj +. feas_tol then
            if rate < 0.0 then Some ((x -. uj) /. -.rate, At_upper) else None
          else if rate > 0.0 then
            if uj < infinity then Some (Float.max 0.0 ((uj -. x) /. rate), At_upper)
            else None
          else if lj > neg_infinity then
            Some (Float.max 0.0 ((x -. lj) /. -.rate), At_lower)
          else None
        in
        match candidate with
        | None -> ()
        | Some (t, bound) ->
          let mag = Float.abs wi in
          let better =
            if t < !limit_t -. 1e-10 then true
            else if t >= !limit_t +. 1e-10 then false
            else if st.bland then j < !limit_var
            else mag > !limit_mag
          in
          if better then begin
            limit := Block (pos, t, bound);
            limit_t := t;
            limit_mag := mag;
            limit_var := j
          end
      end
    done;
    !limit

  let apply_step st (e : entering) lim =
    match lim with
    | Unlimited -> assert false
    | Flip t ->
      let delta = e.dir *. t in
      for pos = 0 to st.inst.m - 1 do
        let wi = st.w.(pos) in
        if wi <> 0.0 then st.xb.(pos) <- st.xb.(pos) -. (wi *. delta)
      done;
      st.vstat.(e.q) <-
        (match st.vstat.(e.q) with
        | At_lower -> At_upper
        | At_upper -> At_lower
        | Nb_free | Basic ->
          raise (Numerical_failure "flip on free or basic variable"));
      st.nflips <- st.nflips + 1;
      t
    | Block (r, t, leave_bound) ->
      let delta = e.dir *. t in
      let entering_value = nb_value st e.q +. delta in
      for pos = 0 to st.inst.m - 1 do
        let wi = st.w.(pos) in
        if wi <> 0.0 && pos <> r then st.xb.(pos) <- st.xb.(pos) -. (wi *. delta)
      done;
      let leaving = st.basic.(r) in
      st.vstat.(leaving) <- leave_bound;
      st.vpos.(leaving) <- -1;
      (match leave_bound with
      | At_lower when st.lo.(leaving) = neg_infinity ->
        raise (Numerical_failure "leaving variable has no lower bound")
      | At_upper when st.up.(leaving) = infinity ->
        raise (Numerical_failure "leaving variable has no upper bound")
      | At_lower | At_upper -> ()
      | Basic | Nb_free -> assert false);
      let piv = st.w.(r) in
      if Float.abs piv < pivot_tol /. 10.0 then
        raise (Numerical_failure "pivot element too small");
      (* Devex: only the leaving variable gets a fresh reference weight
         (the cheap update); an overflowing weight resets the framework. *)
      let wl = Float.max 1.0 (Float.max 1.0 st.dw.(e.q) /. (piv *. piv)) in
      if wl > 1e10 then Array.fill st.dw 0 (Array.length st.dw) 1.0
      else st.dw.(leaving) <- wl;
      push_eta_from_w st r;
      st.vstat.(e.q) <- Basic;
      st.vpos.(e.q) <- r;
      st.basic.(r) <- e.q;
      st.xb.(r) <- entering_value;
      st.pivots_since_refactor <- st.pivots_since_refactor + 1;
      t

  let value_of st j =
    if st.vpos.(j) >= 0 then st.xb.(st.vpos.(j)) else nb_value st j

  (* Bounded-variable dual simplex, used to re-optimise after a branch-and-
     bound bound change: the warm basis is still dual feasible but primal
     infeasible in a few basic variables, which the dual method repairs in
     a handful of pivots where the composite primal phase 1 takes
     thousands. Purely an accelerator: it returns [false] whenever the
     preconditions fail or it stalls, and the caller falls through to the
     always-correct primal loop. *)
  let dual_reoptimize st ~max_pivots =
    let m = st.inst.m and ncols = st.inst.ncols in
    (* One BTRAN computes the duals here; every subsequent pivot updates
       them incrementally (y += theta * rho, where rho = B^-T e_r is the
       pivot row the ratio test needs anyway), so each dual pivot costs a
       single BTRAN pass instead of two. Refactorisation recomputes them
       from scratch for hygiene. *)
    let dual_feasible () =
      compute_duals st ~phase1:false;
      try
        for j = 0 to ncols - 1 do
          if st.vstat.(j) <> Basic && st.up.(j) -. st.lo.(j) > zero_tol then begin
            let d = reduced_cost st ~phase1:false j in
            match st.vstat.(j) with
            | At_lower -> if d < -1e-6 then raise Exit
            | At_upper -> if d > 1e-6 then raise Exit
            | Nb_free -> if Float.abs d > 1e-6 then raise Exit
            | Basic -> ()
          end
        done;
        true
      with Exit -> false
    in
    if not (dual_feasible ()) then false
    else begin
      let rho = Array.make m 0.0 in
      let ok = ref true and finished = ref false in
      let pivots = ref 0 in
      while !ok && (not !finished) && !pivots < max_pivots do
        incr pivots;
        st.niter <- st.niter + 1;
        (* leaving variable: the most violated basic *)
        let r = ref (-1) and viol = ref feas_tol and below = ref false in
        for pos = 0 to m - 1 do
          let j = st.basic.(pos) in
          let x = st.xb.(pos) in
          if st.lo.(j) -. x > !viol then begin
            r := pos;
            viol := st.lo.(j) -. x;
            below := true
          end
          else if x -. st.up.(j) > !viol then begin
            r := pos;
            viol := x -. st.up.(j);
            below := false
          end
        done;
        if !r < 0 then finished := true
        else begin
          let r = !r in
          Array.fill rho 0 m 0.0;
          rho.(r) <- 1.0;
          btran st rho;
          (* st.y is already current (incremental update below), saving
             the from-scratch BTRAN the pivot loop used to do here *)
          st.btran_saved <- st.btran_saved + 1;
          (* dual ratio test: smallest |d|/|alpha| among columns whose
             admissible movement pushes the leaving value back in range *)
          let best_j = ref (-1) and best_ratio = ref infinity in
          let best_alpha = ref 0.0 and best_d = ref 0.0 in
          for j = 0 to ncols - 1 do
            if st.vstat.(j) <> Basic && st.up.(j) -. st.lo.(j) > zero_tol then begin
              let idx = st.inst.cidx.(j) and vl = st.inst.cval.(j) in
              let alpha = ref 0.0 in
              for p = 0 to Array.length idx - 1 do
                alpha := !alpha +. (vl.(p) *. rho.(idx.(p)))
              done;
              let alpha = !alpha in
              if Float.abs alpha > pivot_tol then begin
                let eligible =
                  (* x_B(r) changes by -alpha * dx_j *)
                  match st.vstat.(j) with
                  | At_lower -> if !below then alpha < 0.0 else alpha > 0.0
                  | At_upper -> if !below then alpha > 0.0 else alpha < 0.0
                  | Nb_free -> true
                  | Basic -> false
                in
                if eligible then begin
                  let d = reduced_cost st ~phase1:false j in
                  let ratio = Float.abs d /. Float.abs alpha in
                  if
                    ratio < !best_ratio -. 1e-12
                    || (ratio < !best_ratio +. 1e-12
                       && Float.abs alpha > Float.abs !best_alpha)
                  then begin
                    best_j := j;
                    best_ratio := ratio;
                    best_alpha := alpha;
                    best_d := d
                  end
                end
              end
            end
          done;
          if !best_j < 0 then ok := false
          else begin
            let q = !best_j in
            scatter_column st q st.w;
            ftran st st.w;
            let alpha = st.w.(r) in
            if Float.abs alpha < pivot_tol /. 10.0 then ok := false
            else begin
              let jl = st.basic.(r) in
              let target = if !below then st.lo.(jl) else st.up.(jl) in
              let tau = (st.xb.(r) -. target) /. alpha in
              let range = st.up.(q) -. st.lo.(q) in
              let tau, flip =
                match st.vstat.(q) with
                | At_lower when tau > range && range < infinity -> (range, true)
                | At_upper when tau < -.range && range < infinity ->
                  (-.range, true)
                | At_lower | At_upper | Nb_free | Basic -> (tau, false)
              in
              let dir_ok =
                match st.vstat.(q) with
                | At_lower -> tau >= -1e-9
                | At_upper -> tau <= 1e-9
                | Nb_free -> true
                | Basic -> false
              in
              if not dir_ok then ok := false
              else if flip then begin
                for pos = 0 to m - 1 do
                  if st.w.(pos) <> 0.0 then
                    st.xb.(pos) <- st.xb.(pos) -. (st.w.(pos) *. tau)
                done;
                st.vstat.(q) <-
                  (match st.vstat.(q) with
                  | At_lower -> At_upper
                  | At_upper -> At_lower
                  | s -> s);
                st.nflips <- st.nflips + 1
              end
              else begin
                let entering_value = nb_value st q +. tau in
                for pos = 0 to m - 1 do
                  if pos <> r && st.w.(pos) <> 0.0 then
                    st.xb.(pos) <- st.xb.(pos) -. (st.w.(pos) *. tau)
                done;
                st.vstat.(jl) <- (if !below then At_lower else At_upper);
                st.vpos.(jl) <- -1;
                let wl =
                  Float.max 1.0 (Float.max 1.0 st.dw.(q) /. (alpha *. alpha))
                in
                if wl > 1e10 then Array.fill st.dw 0 (Array.length st.dw) 1.0
                else st.dw.(jl) <- wl;
                push_eta_from_w st r;
                st.vstat.(q) <- Basic;
                st.vpos.(q) <- r;
                st.basic.(r) <- q;
                st.xb.(r) <- entering_value;
                st.pivots_since_refactor <- st.pivots_since_refactor + 1;
                (* Incremental dual update: the new basis prices q to zero,
                   so y' = y + (d_q / alpha_rq) * rho. Bound flips leave
                   the basis (and hence y) untouched. *)
                let theta = !best_d /. alpha in
                for i = 0 to m - 1 do
                  if rho.(i) <> 0.0 then st.y.(i) <- st.y.(i) +. (theta *. rho.(i))
                done;
                if should_refactor st then begin
                  refactor st;
                  compute_duals st ~phase1:false
                end
              end
            end
          end
        end
      done;
      !finished
    end

  let extract st status =
    let n = st.inst.n in
    let x = Array.init n (fun j -> value_of st j) in
    compute_duals st ~phase1:false;
    let duals = Array.copy st.y in
    let reduced_costs = Array.init n (fun j -> reduced_cost st ~phase1:false j) in
    let objective =
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (st.inst.cost.(j) *. x.(j))
      done;
      !acc
    in
    {
      status;
      objective;
      x;
      duals;
      reduced_costs;
      basis =
        ({ vstat = Array.copy st.vstat; basic = Array.copy st.basic } : basis);
      iterations = st.niter;
      bound_flips = st.nflips;
      warm = st.warm_outcome;
      btran_saved = st.btran_saved;
    }

  let solve ?(params = Params.default) inst =
    let {
      Params.basis;
      lower;
      upper;
      max_iters;
      deadline_s;
      refactor = refp;
      pricing;
    } =
      params
    in
    let n = inst.n and m = inst.m and ncols = inst.ncols in
    let lo = Array.copy inst.base_lo and up = Array.copy inst.base_up in
    (match lower with
    | Some l ->
      assert (Array.length l = n);
      Array.blit l 0 lo 0 n
    | None -> ());
    (match upper with
    | Some u ->
      assert (Array.length u = n);
      Array.blit u 0 up 0 n
    | None -> ());
    for j = 0 to n - 1 do
      if lo.(j) > up.(j) then
        invalid_arg "Simplex.solve: lower bound exceeds upper bound"
    done;
    let st =
      {
        inst;
        refp;
        pricing;
        lo;
        up;
        vstat = Array.make ncols At_lower;
        basic = Array.make m 0;
        vpos = Array.make ncols (-1);
        xb = Array.make m 0.0;
        w = Array.make m 0.0;
        y = Array.make m 0.0;
        e_rows = [||];
        e_pivs = [||];
        e_start = [| 0 |];
        e_idx = [||];
        e_val = [||];
        neta = 0;
        eta_nnz_count = 0;
        nnz_at_refactor = 0;
        dw = Array.make ncols 1.0;
        cursor = 0;
        y_valid = false;
        nflips = 0;
        warm_outcome = `Cold;
        repairs = 0;
        btran_saved = 0;
        niter = 0;
        pivots_since_refactor = 0;
        bland = false;
        degen_count = 0;
        perturbed = false;
        perturb_rounds = 0;
        perturb =
          Array.init ncols (fun j ->
              let h = (j + 1) * 2654435761 land 0xFFFF in
              1e-7 +. (1e-6 *. float_of_int h /. 65536.0));
        bounds_shifted = false;
        orig_lo = [||];
        orig_up = [||];
      }
    in
    (match basis with
    | Some (b : basis) ->
      assert (Array.length b.vstat = ncols && Array.length b.basic = m);
      Array.blit b.vstat 0 st.vstat 0 ncols;
      Array.blit b.basic 0 st.basic 0 m;
      for j = 0 to ncols - 1 do
        normalize_nonbasic st j
      done;
      st.warm_outcome <- `Reused;
      refactor st;
      (* Re-optimise with the dual simplex; when it stalls (or the basis
         factorised with pathological fill-in) a cold start beats grinding
         the primal through a half-repaired basis. *)
      if eta_nnz st > (30 * m) + 5000 then begin
        cold_reset st;
        st.warm_outcome <- `Cold
      end
      else if not (dual_reoptimize st ~max_pivots:((m / 2) + 200)) then begin
        cold_reset st;
        st.warm_outcome <- `Cold
      end
      else if st.repairs > 0 then st.warm_outcome <- `Repaired
    | None ->
      for r = 0 to m - 1 do
        st.basic.(r) <- n + r;
        st.vstat.(n + r) <- Basic;
        st.vpos.(n + r) <- r
      done;
      for j = 0 to n - 1 do
        normalize_nonbasic st j
      done;
      compute_xb st);
    let debug = Sys.getenv_opt "OPTROUTER_SIMPLEX_DEBUG" <> None in
    let confirm = ref false in
    let rec loop () =
      if st.niter > max_iters then
        raise (Numerical_failure "simplex iteration limit reached");
      (match deadline_s with
      | Some deadline when st.niter land 63 = 0 && Unix.gettimeofday () > deadline ->
        raise (Numerical_failure "simplex deadline exceeded")
      | Some _ | None -> ());
      st.niter <- st.niter + 1;
      let phase1 = infeasibility st > feas_tol in
      if st.niter mod 1000 = 0 then begin
        let progress_line () =
          let obj = ref 0.0 in
          for pos = 0 to st.inst.m - 1 do
            obj := !obj +. (st.inst.cost.(st.basic.(pos)) *. st.xb.(pos))
          done;
          for j = 0 to st.inst.ncols - 1 do
            if st.vstat.(j) <> Basic then
              obj := !obj +. (st.inst.cost.(j) *. nb_value st j)
          done;
          Printf.sprintf
            "iter=%d phase=%d infeas=%.3g obj=%.6f neta=%d eta_nnz=%d bland=%b degen=%d"
            st.niter
            (if phase1 then 1 else 2)
            (infeasibility st) !obj st.neta (eta_nnz st) st.bland st.degen_count
        in
        (* The legacy OPTROUTER_SIMPLEX_DEBUG variable bypasses the level
           filter; either way the event goes through the Log sink, whose
           single-write lines cannot interleave across domains. *)
        if debug then Log.emit Log.Debug ~src:"simplex" progress_line
        else Log.debug ~src:"simplex" progress_line
      end;
      match price st ~phase1 with
      | None ->
        if (not phase1) && st.perturbed then begin
          (* optimal for the perturbed costs: withdraw the perturbation and
             re-optimise the genuine objective (usually a few pivots) *)
          st.perturbed <- false;
          st.y_valid <- false;
          st.bland <- false;
          st.degen_count <- 0;
          confirm := false;
          loop ()
        end
        else if (not phase1) && st.bounds_shifted then begin
          (* optimal for the relaxed bounds: restore them; phase 1 then
             walks the few slightly-out-of-bounds basics back in *)
          unshift_bounds st;
          st.bland <- false;
          st.degen_count <- 0;
          confirm := false;
          loop ()
        end
        else if not !confirm then begin
          (* Re-derive the claim from a fresh factorisation before trusting
             it: eta-file drift can fake both optimality and infeasibility. *)
          confirm := true;
          refactor st;
          loop ()
        end
        else if phase1 then extract st Infeasible
        else extract st Optimal
      | Some e -> (
        confirm := false;
        match ratio_test st ~phase1 e with
        | Unlimited ->
          if phase1 then begin
            refactor st;
            match ratio_test st ~phase1 e with
            | Unlimited ->
              raise (Numerical_failure "unblocked phase-1 direction")
            | lim -> step e lim
          end
          else extract st Unbounded
        | lim -> step e lim)
    and step e lim =
      let t = apply_step st e lim in
      if t <= 1e-10 then begin
        st.degen_count <- st.degen_count + 1;
        if st.degen_count > 200 then st.bland <- true;
        (* A long fully-degenerate Bland sequence means a plateau the
           pivoting rules cannot escape. Remedies, escalating: perturb the
           costs (gives Dantzig a strict direction across the plateau),
           then shift the bounds; give up after a few rounds and let the
           caller restart cold. *)
        if st.degen_count > 600 then begin
          if st.perturb_rounds < 3 then begin
            st.perturbed <- true;
            st.y_valid <- false;
            st.perturb_rounds <- st.perturb_rounds + 1;
            Array.iteri
              (fun j v ->
                st.perturb.(j) <-
                  v *. (1.0 +. float_of_int ((j + st.perturb_rounds) mod 7)))
              st.perturb
          end
          else if not st.bounds_shifted then shift_bounds st
          else raise (Numerical_failure "persistent degenerate cycling");
          st.bland <- false;
          st.degen_count <- 0
        end
      end
      else begin
        st.degen_count <- 0;
        st.bland <- false
      end;
      if should_refactor st then refactor st;
      loop ()
    in
    loop ()
end

let solve ?params lp = Instance.solve ?params (Instance.create lp)

module Basis = struct
  type t = basis

  (* Name-keyed views of a basis, for warm starts across *different* LPs:
     rule deltas add or drop a few row families and columns between the
     RULE1 and RULEk encodings, so positional indices do not line up but
     names do. Only the per-column status is recorded — basis *positions*
     are an artefact of factorisation order and are rebuilt by [refactor]
     on intake. Variable and row namespaces share the flat assoc; a row
     entry carries the status of the row's logical slack. *)

  let status_code = function
    | Basic -> "B"
    | At_lower -> "L"
    | At_upper -> "U"
    | Nb_free -> "F"

  let status_of_code = function
    | "B" -> Some Basic
    | "L" -> Some At_lower
    | "U" -> Some At_upper
    | "F" -> Some Nb_free
    | _ -> None

  let to_assoc (lp : Lp.t) (b : basis) =
    let n = Lp.nvars lp and m = Lp.nrows lp in
    if Array.length b.vstat <> n + m then
      invalid_arg "Simplex.Basis.to_assoc: basis does not match the LP shape";
    let acc = ref [] in
    for r = m - 1 downto 0 do
      acc := (lp.rows.(r).Lp.r_name, b.vstat.(n + r)) :: !acc
    done;
    for j = n - 1 downto 0 do
      acc := (lp.vars.(j).Lp.v_name, b.vstat.(j)) :: !acc
    done;
    !acc

  let of_assoc (lp : Lp.t) assoc =
    let n = Lp.nvars lp and m = Lp.nrows lp in
    let ncols = n + m in
    let tbl = Hashtbl.create (max 16 (List.length assoc)) in
    List.iter (fun (name, s) -> Hashtbl.replace tbl name s) assoc;
    let vstat = Array.make ncols At_lower in
    let patched = ref false in
    Array.iteri
      (fun j (v : Lp.var) ->
        match Hashtbl.find_opt tbl v.Lp.v_name with
        | Some s -> vstat.(j) <- s
        | None ->
          (* new column: nonbasic at a bound (normalised on intake) *)
          patched := true)
      lp.vars;
    Array.iteri
      (fun r (row : Lp.row) ->
        match Hashtbl.find_opt tbl row.Lp.r_name with
        | Some s -> vstat.(n + r) <- s
        | None ->
          (* new row: its slack starts basic, absorbing the row *)
          vstat.(n + r) <- Basic;
          patched := true)
      lp.rows;
    (* The basic set must have exactly [m] members before factorisation.
       Demote surplus basics highest column index first (slacks before
       structurals); fill a deficit by promoting nonbasic slacks lowest
       row first — there is always one, since [m] slacks exist. *)
    let nbasic = ref 0 in
    Array.iter (fun s -> if s = Basic then incr nbasic) vstat;
    if !nbasic <> m then patched := true;
    let j = ref (ncols - 1) in
    while !nbasic > m && !j >= 0 do
      if vstat.(!j) = Basic then begin
        vstat.(!j) <- At_lower;
        decr nbasic
      end;
      decr j
    done;
    let r = ref 0 in
    while !nbasic < m && !r < m do
      if vstat.(n + !r) <> Basic then begin
        vstat.(n + !r) <- Basic;
        incr nbasic
      end;
      incr r
    done;
    let basic = Array.make m 0 in
    let pos = ref 0 in
    Array.iteri
      (fun j s ->
        if s = Basic then begin
          basic.(!pos) <- j;
          incr pos
        end)
      vstat;
    (({ vstat; basic } : basis), if !patched then `Patched else `Exact)

  let to_string (lp : Lp.t) (b : basis) =
    let n = Lp.nvars lp and m = Lp.nrows lp in
    if Array.length b.vstat <> n + m then
      invalid_arg "Simplex.Basis.to_string: basis does not match the LP shape";
    let buf = Buffer.create (16 * (n + m)) in
    Buffer.add_string buf "# optrouter basis v1\n";
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "v %s %s\n" lp.vars.(j).Lp.v_name
           (status_code b.vstat.(j)))
    done;
    for r = 0 to m - 1 do
      Buffer.add_string buf
        (Printf.sprintf "r %s %s\n" lp.rows.(r).Lp.r_name
           (status_code b.vstat.(n + r)))
    done;
    Buffer.contents buf

  let of_string (lp : Lp.t) text =
    let lines = String.split_on_char '\n' text in
    let parse (acc, lineno, err) line =
      let lineno = lineno + 1 in
      match err with
      | Some _ -> (acc, lineno, err)
      | None -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then (acc, lineno, None)
        else
          match String.split_on_char ' ' line with
          | [ ("v" | "r"); name; code ] -> (
            match status_of_code code with
            | Some s -> ((name, s) :: acc, lineno, None)
            | None ->
              ( acc,
                lineno,
                Some (Printf.sprintf "line %d: bad status %S" lineno code) ))
          | _ ->
            ( acc,
              lineno,
              Some (Printf.sprintf "line %d: expected 'v|r NAME B|L|U|F'" lineno)
            ))
    in
    let acc, _, err = List.fold_left parse ([], 0, None) lines in
    match err with
    | Some e -> Error e
    | None -> Ok (of_assoc lp (List.rev acc))
end

let verify_optimal ?(tol = 1e-6) (lp : Lp.t) (res : result) =
  if res.status <> Optimal then Error "status is not Optimal"
  else if not (Lp.is_feasible ~tol lp res.x) then Error "solution is infeasible"
  else begin
    let n = Lp.nvars lp in
    let d = Array.map (fun (v : Lp.var) -> v.obj) lp.vars in
    Array.iteri
      (fun r (row : Lp.row) ->
        Array.iter
          (fun (j, a) -> d.(j) <- d.(j) -. (a *. res.duals.(r)))
          row.coeffs;
        ignore r)
      lp.rows;
    let problems = ref [] in
    for j = 0 to n - 1 do
      let v = lp.vars.(j) in
      let x = res.x.(j) in
      let at_lower = x <= v.lower +. tol in
      let at_upper = x >= v.upper -. tol in
      let ok =
        (at_lower && d.(j) >= -.tol)
        || (at_upper && d.(j) <= tol)
        || Float.abs d.(j) <= tol
      in
      if not ok then
        problems :=
          Printf.sprintf "var %s: x=%g d=%g bounds [%g, %g]" v.v_name x d.(j)
            v.lower v.upper
          :: !problems
    done;
    Array.iteri
      (fun r (row : Lp.row) ->
        let activity = Lp.row_activity lp row res.x in
        let y = res.duals.(r) in
        let ok =
          match row.sense with
          | Lp.Eq -> true
          | Lp.Le ->
            (* inactive rows need zero multipliers; active Le rows need
               y <= 0 in a minimisation problem with a.x + s = b, s >= 0 *)
            if activity < row.rhs -. tol then Float.abs y <= tol else y <= tol
          | Lp.Ge ->
            if activity > row.rhs +. tol then Float.abs y <= tol else y >= -.tol
        in
        if not ok then
          problems :=
            Printf.sprintf "row %s: activity=%g rhs=%g y=%g" row.r_name activity
              row.rhs y
            :: !problems)
      lp.rows;
    match !problems with
    | [] -> Ok ()
    | p :: _ -> Error p
  end
