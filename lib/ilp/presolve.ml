(* A substituted singleton column: x_j = konst - sum_i (coeff_i * x_i),
   with [i] in original index space. Recorded in chronological order;
   restored in reverse, so every referenced variable is already known. *)
type subst = { s_var : int; konst : float; terms : (int * float) list }

type stats = {
  rows_before : int;
  rows_after : int;
  cols_before : int;
  cols_after : int;
  passes : int;
  singleton_cols : int;
  dominated_rows : int;
}

type mapping = {
  n_original : int;
  keep : int array;  (** reduced index -> original index *)
  fixed : (int * float) list;  (** original index -> pinned value *)
  substs : subst list;  (** chronological order *)
  offset : float;
  rows_removed : int;
  m_stats : stats;
}

type result = Reduced of Lp.t * mapping | Infeasible of string

let removed m =
  (List.length m.fixed + List.length m.substs, m.rows_removed)

let objective_offset m = m.offset
let stats m = m.m_stats

let project m x_original =
  Array.map (fun o -> x_original.(o)) m.keep

let restore m x_reduced =
  let x = Array.make m.n_original 0.0 in
  Array.iteri (fun r o -> x.(o) <- x_reduced.(r)) m.keep;
  List.iter (fun (o, v) -> x.(o) <- v) m.fixed;
  List.iter
    (fun s ->
      x.(s.s_var) <-
        List.fold_left (fun acc (i, a) -> acc -. (a *. x.(i))) s.konst s.terms)
    (List.rev m.substs);
  x

(* Working state: mutable bounds and objective plus an alive flag per
   variable/row. [obj] drifts away from [lp.vars] as singleton columns
   fold their cost into their row's other variables. *)
type work = {
  lp : Lp.t;
  lo : float array;
  up : float array;
  obj : float array;
  var_alive : bool array;
  row_alive : bool array;
  mutable substs : subst list;  (** reverse chronological *)
  mutable sub_offset : float;
  mutable n_singleton_cols : int;
  mutable n_dominated_rows : int;
  mutable changed : bool;
}

let feq a b = Float.abs (a -. b) <= 1e-12

let round_integer_bounds (w : work) j =
  match w.lp.vars.(j).Lp.kind with
  | Lp.Continuous -> ()
  | Lp.Integer ->
    if w.lo.(j) > neg_infinity then w.lo.(j) <- Float.ceil (w.lo.(j) -. 1e-9);
    if w.up.(j) < infinity then w.up.(j) <- Float.floor (w.up.(j) +. 1e-9)

(* Remaining activity of a row over alive variables, treating dead
   (fixed) variables as constants folded into [rhs]. Returns the live
   coefficients and the adjusted rhs. *)
let live_row (w : work) (row : Lp.row) =
  let rhs = ref row.Lp.rhs in
  let live = ref [] in
  Array.iter
    (fun (j, a) ->
      if w.var_alive.(j) then live := (j, a) :: !live
      else rhs := !rhs -. (a *. w.lo.(j) (* dead => lo = up = value *)))
    row.Lp.coeffs;
  (List.rev !live, !rhs)

let tighten (w : work) j lo' up' =
  if lo' > w.lo.(j) +. 1e-12 then begin
    w.lo.(j) <- lo';
    w.changed <- true
  end;
  if up' < w.up.(j) -. 1e-12 then begin
    w.up.(j) <- up';
    w.changed <- true
  end;
  round_integer_bounds w j

(* Smallest and largest possible activity of [live] under the current
   bounds; infinite as soon as any term is unbounded the wrong way. *)
let activity_range (w : work) live =
  List.fold_left
    (fun (lo, up) (j, a) ->
      if Float.abs a <= 1e-12 then (lo, up) (* 0 * inf would poison *)
      else if a > 0.0 then (lo +. (a *. w.lo.(j)), up +. (a *. w.up.(j)))
      else (lo +. (a *. w.up.(j)), up +. (a *. w.lo.(j))))
    (0.0, 0.0) live

(* Number of alive rows every alive variable appears in (with a nonzero
   coefficient) — the column counts behind singleton-column detection. *)
let column_counts (w : work) =
  let counts = Array.make (Lp.nvars w.lp) 0 in
  Array.iteri
    (fun r (row : Lp.row) ->
      if w.row_alive.(r) then
        Array.iter
          (fun (j, a) ->
            if w.var_alive.(j) && Float.abs a > 1e-12 then
              counts.(j) <- counts.(j) + 1)
          row.Lp.coeffs)
    w.lp.rows;
  counts

(* Substitute a free continuous variable that appears only in equality
   row [r]: x_j = (rhs - sum a_i x_i) / a_j. The row goes away, x_j's
   objective folds into the remaining variables (and a constant). *)
let substitute_singleton_columns (w : work) =
  let counts = column_counts w in
  Array.iteri
    (fun r (row : Lp.row) ->
      if w.row_alive.(r) && row.Lp.sense = Lp.Eq then begin
        let live, rhs = live_row w row in
        let candidate =
          List.find_opt
            (fun (j, a) ->
              w.lp.vars.(j).Lp.kind = Lp.Continuous
              && counts.(j) = 1
              && Float.abs a > 1e-12
              && (not (w.lo.(j) > neg_infinity))
              && not (w.up.(j) < infinity))
            live
        in
        match candidate with
        | None -> ()
        | Some (j, a) ->
          let others = List.filter (fun (i, _) -> i <> j) live in
          let terms = List.map (fun (i, ai) -> (i, ai /. a)) others in
          let konst = rhs /. a in
          (* fold c_j * x_j = c_j * (konst - sum terms) into the rest *)
          let cj = w.obj.(j) in
          if Float.abs cj > 0.0 then begin
            w.sub_offset <- w.sub_offset +. (cj *. konst);
            List.iter
              (fun (i, t) -> w.obj.(i) <- w.obj.(i) -. (cj *. t))
              terms
          end;
          w.substs <- { s_var = j; konst; terms } :: w.substs;
          w.var_alive.(j) <- false;
          w.row_alive.(r) <- false;
          counts.(j) <- 0;
          (* the row is gone: the other columns lost one occurrence *)
          List.iter (fun (i, _) -> counts.(i) <- counts.(i) - 1) others;
          w.n_singleton_cols <- w.n_singleton_cols + 1;
          w.changed <- true
      end)
    w.lp.rows

(* Rows that can never bind under the current bounds (their worst-case
   activity already satisfies the sense), and duplicate rows with the
   same normalised left-hand side where one right-hand side dominates
   the other. Returns an error message on proven infeasibility. *)
let drop_dominated_rows (w : work) =
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let drop r =
    w.row_alive.(r) <- false;
    w.n_dominated_rows <- w.n_dominated_rows + 1;
    w.changed <- true
  in
  (* redundancy by bound activity *)
  Array.iteri
    (fun r (row : Lp.row) ->
      if w.row_alive.(r) && !error = None then begin
        let live, rhs = live_row w row in
        if live <> [] then begin
          let min_act, max_act = activity_range w live in
          match row.Lp.sense with
          | Lp.Le ->
            if max_act <= rhs +. 1e-9 then drop r
            else if min_act > rhs +. 1e-9 then
              fail (Printf.sprintf "row %s is unsatisfiable" row.Lp.r_name)
          | Lp.Ge ->
            if min_act >= rhs -. 1e-9 then drop r
            else if max_act < rhs -. 1e-9 then
              fail (Printf.sprintf "row %s is unsatisfiable" row.Lp.r_name)
          | Lp.Eq ->
            if rhs > max_act +. 1e-9 || rhs < min_act -. 1e-9 then
              fail (Printf.sprintf "row %s is unsatisfiable" row.Lp.r_name)
            else if feq min_act max_act && feq min_act rhs then drop r
        end
      end)
    w.lp.rows;
  (* duplicates: normalise each live lhs so its first coefficient is 1;
     a negative scale flips Le/Ge. The printed key is stable across
     solves — coefficients are compared at 12 significant digits. *)
  if !error = None then begin
    let seen : (string, (Lp.sense * int * float) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iteri
      (fun r (row : Lp.row) ->
        if w.row_alive.(r) && !error = None then begin
          let live, rhs = live_row w row in
          match live with
          | [] | [ _ ] -> () (* empty/singleton rows belong to [pass] *)
          | (_, a0) :: _ when Float.abs a0 <= 1e-12 -> ()
          | (_, a0) :: _ ->
            let scale = 1.0 /. a0 in
            let sense =
              match row.Lp.sense with
              | Lp.Eq -> Lp.Eq
              | Lp.Le -> if scale > 0.0 then Lp.Le else Lp.Ge
              | Lp.Ge -> if scale > 0.0 then Lp.Ge else Lp.Le
            in
            let rhs = rhs *. scale in
            let key =
              String.concat ";"
                (List.map
                   (fun (j, a) -> Printf.sprintf "%d:%.12g" j (a *. scale))
                   live)
            in
            let entries =
              match Hashtbl.find_opt seen key with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.add seen key l;
                l
            in
            let dominated =
              List.exists
                (fun (s, r', rhs') ->
                  if s <> sense then false
                  else
                    match sense with
                    | Lp.Le ->
                      if rhs' <= rhs +. 1e-12 then true
                      else begin
                        (* the stored row is looser: drop it instead *)
                        drop r';
                        false
                      end
                    | Lp.Ge ->
                      if rhs' >= rhs -. 1e-12 then true
                      else begin
                        drop r';
                        false
                      end
                    | Lp.Eq ->
                      if feq rhs' rhs then true
                      else begin
                        fail
                          (Printf.sprintf
                             "rows %s and %s force different values"
                             w.lp.rows.(r').Lp.r_name row.Lp.r_name);
                        true
                      end)
                !entries
            in
            if dominated && !error = None then drop r
            else
              entries :=
                (sense, r, rhs)
                :: List.filter (fun (_, r', _) -> w.row_alive.(r')) !entries
        end)
      w.lp.rows
  end;
  !error

let pass (w : work) =
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  (* fix variables with equal bounds *)
  for j = 0 to Lp.nvars w.lp - 1 do
    if w.var_alive.(j) then begin
      if w.lo.(j) > w.up.(j) +. 1e-9 then
        fail
          (Printf.sprintf "variable %s has empty domain [%g, %g]"
             w.lp.vars.(j).Lp.v_name w.lo.(j) w.up.(j))
      else if
        w.lo.(j) > neg_infinity && w.up.(j) < infinity && feq w.lo.(j) w.up.(j)
      then begin
        (* normalise the pinned value exactly and retire the variable *)
        w.up.(j) <- w.lo.(j);
        w.var_alive.(j) <- false;
        w.changed <- true
      end
    end
  done;
  (* simplify rows *)
  Array.iteri
    (fun r (row : Lp.row) ->
      if w.row_alive.(r) && !error = None then begin
        let live, rhs = live_row w row in
        match live with
        | [] ->
          let ok =
            match row.Lp.sense with
            | Lp.Le -> 0.0 <= rhs +. 1e-9
            | Lp.Ge -> 0.0 >= rhs -. 1e-9
            | Lp.Eq -> Float.abs rhs <= 1e-9
          in
          if ok then begin
            w.row_alive.(r) <- false;
            w.changed <- true
          end
          else fail (Printf.sprintf "row %s is unsatisfiable" row.Lp.r_name)
        | [ (j, a) ] ->
          (* singleton: turn into a bound and drop the row *)
          let bound = rhs /. a in
          (match (row.Lp.sense, a > 0.0) with
          | Lp.Le, true | Lp.Ge, false -> tighten w j neg_infinity bound
          | Lp.Ge, true | Lp.Le, false -> tighten w j bound infinity
          | Lp.Eq, _ -> tighten w j bound bound);
          w.row_alive.(r) <- false;
          w.changed <- true
        | _ :: _ :: _ -> ()
      end)
    w.lp.rows;
  if !error = None then substitute_singleton_columns w;
  if !error = None then error := drop_dominated_rows w;
  !error

let presolve (lp : Lp.t) =
  let n = Lp.nvars lp in
  let w =
    {
      lp;
      lo = Array.map (fun (v : Lp.var) -> v.Lp.lower) lp.vars;
      up = Array.map (fun (v : Lp.var) -> v.Lp.upper) lp.vars;
      obj = Array.map (fun (v : Lp.var) -> v.Lp.obj) lp.vars;
      var_alive = Array.make n true;
      row_alive = Array.make (Lp.nrows lp) true;
      substs = [];
      sub_offset = 0.0;
      n_singleton_cols = 0;
      n_dominated_rows = 0;
      changed = true;
    }
  in
  let error = ref None in
  let guard = ref 0 in
  while w.changed && !error = None && !guard < 100 do
    w.changed <- false;
    incr guard;
    error := pass w
  done;
  match !error with
  | Some msg -> Infeasible msg
  | None ->
    let keep =
      Array.of_list
        (List.filter (fun j -> w.var_alive.(j)) (List.init n Fun.id))
    in
    let reduced_index = Array.make n (-1) in
    Array.iteri (fun r o -> reduced_index.(o) <- r) keep;
    let substituted = Array.make n false in
    List.iter (fun s -> substituted.(s.s_var) <- true) w.substs;
    let fixed =
      List.filter_map
        (fun j ->
          if w.var_alive.(j) || substituted.(j) then None
          else Some (j, w.lo.(j)))
        (List.init n Fun.id)
    in
    let offset =
      List.fold_left
        (fun acc (j, v) -> acc +. (w.obj.(j) *. v))
        w.sub_offset fixed
    in
    let b = Lp.Builder.create () in
    Array.iter
      (fun o ->
        let v = lp.vars.(o) in
        (* sub-tolerance bound crossings survive the infeasibility check;
           collapse them rather than trip the builder's validation *)
        let lower = Float.min w.lo.(o) w.up.(o) in
        ignore
          (Lp.Builder.add_var b ~name:v.Lp.v_name ~lower ~upper:w.up.(o)
             ~obj:w.obj.(o) v.Lp.kind))
      keep;
    let rows_removed = ref 0 in
    Array.iteri
      (fun r (row : Lp.row) ->
        if not w.row_alive.(r) then incr rows_removed
        else begin
          let live, rhs = live_row w row in
          let coeffs = List.map (fun (j, a) -> (reduced_index.(j), a)) live in
          Lp.Builder.add_row b ~name:row.Lp.r_name coeffs row.Lp.sense rhs
        end)
      lp.rows;
    let m_stats =
      {
        rows_before = Lp.nrows lp;
        rows_after = Lp.nrows lp - !rows_removed;
        cols_before = n;
        cols_after = Array.length keep;
        passes = !guard;
        singleton_cols = w.n_singleton_cols;
        dominated_rows = w.n_dominated_rows;
      }
    in
    Reduced
      ( Lp.Builder.finish b,
        {
          n_original = n;
          keep;
          fixed;
          substs = List.rev w.substs;
          offset;
          rows_removed = !rows_removed;
          m_stats;
        } )
