(** Branch-and-bound solver for mixed integer linear programs.

    Solves the LP relaxation with {!Simplex}, branches on the most
    fractional [Integer] variable, and explores depth-first (taking the
    rounding-preferred child first) with warm-started bases. When every
    variable carrying a nonzero objective coefficient is integral with an
    integral coefficient, LP bounds are rounded up, which prunes much
    earlier on routing instances whose costs are small integers. *)

type outcome =
  | Proved_optimal
  | Feasible  (** a limit was hit; [x] holds the best incumbent found *)
  | Infeasible
  | Unbounded
  | Unknown  (** a limit was hit before any incumbent was found *)

type result = {
  outcome : outcome;
  objective : float;  (** incumbent objective; meaningless for [Infeasible]/[Unknown] *)
  x : float array;
  nodes : int;
  best_bound : float;  (** global lower bound at termination *)
  simplex_iterations : int;
}

type params = {
  max_nodes : int;
  time_limit_s : float option;
      (** wall-clock seconds, measured with [Unix.gettimeofday]. Wall
          rather than CPU time: parallel sweeps run several solves in one
          process, where accumulated CPU seconds are meaningless as a
          per-solve deadline. *)
  integrality_tol : float;
  log : bool;
}

val default_params : params

(** [most_fractional tol lp x] is the branching variable the solver would
    pick at the LP point [x]: the [Integer] variable whose fractional part
    is furthest from integral (at least [tol] away), weighted by objective
    coefficient so expensive decisions are fixed first. [None] when [x] is
    integral. Total-function safe for values of any magnitude (doubles
    beyond 2{^53} are integral by construction). Exposed for tests. *)
val most_fractional : float -> Lp.t -> float array -> int option

(** [make_params ()] is {!default_params}; each argument overrides one
    field. Prefer this over record literals at call sites — future solver
    knobs (e.g. per-solve job counts) then arrive without breaking
    callers. [time_limit_s] left out means no time limit. *)
val make_params :
  ?max_nodes:int ->
  ?time_limit_s:float ->
  ?integrality_tol:float ->
  ?log:bool ->
  unit ->
  params

(** [solve ?params ?initial ?cutoff lp] minimizes.

    [initial], when given, is a known feasible integral point used as the
    starting incumbent (it is re-validated; an infeasible or fractional
    point is silently ignored). Providing a good initial solution — e.g.
    from a problem-specific heuristic — lets the very first bound
    comparisons prune, which on routing instances routinely collapses the
    tree to a handful of nodes.

    [cutoff] is a weaker form: only the objective of a known solution.
    Nodes that cannot beat it are pruned and only strictly better
    incumbents are recorded; if the search completes without finding one,
    the outcome is [Proved_optimal] with [objective = cutoff] and an empty
    [x] — the external solution was already optimal. *)
val solve :
  ?params:params ->
  ?presolve:bool ->
  ?initial:float array ->
  ?cutoff:float ->
  Lp.t ->
  result
(** [presolve] (default [false]) applies {!Presolve} first and lifts the
    solution back; initial points and cutoffs are translated into the
    reduced space automatically. *)
