(** Parallel branch-and-bound solver for mixed integer linear programs.

    Solves LP relaxations with {!Simplex} on [solver_jobs] workers (OCaml
    domains — the calling domain plus [solver_jobs - 1] spawned ones).
    Each worker owns a private {!Simplex.Instance} and pulls open subtree
    roots from a shared best-bound frontier; after branching it keeps the
    rounding-preferred child locally (plunging — a DFS dive over the hot
    warm basis) and publishes the sibling for any worker to steal.
    Branching uses pseudo-costs once both directions of a variable have
    been observed, falling back to {!most_fractional} until then. Nodes
    carry bound-delta chains instead of copied bound arrays, so node
    creation is O(changed bounds), not O(nvars).

    Determinism contract: for a given problem the returned [objective],
    [best_bound] and [outcome] (in particular [Proved_optimal]) are the
    same whatever [solver_jobs] is — pruning decisions only ever compare
    against proven incumbents, so racing workers can change the order of
    exploration, the [nodes]/[simplex_iterations] counts and (between
    alternative optima) the witness [x], never the optimum itself. When
    every variable carrying a nonzero objective coefficient is integral
    with an integral coefficient, LP bounds are rounded up, which prunes
    much earlier on routing instances whose costs are small integers. *)

type outcome =
  | Proved_optimal
  | Feasible  (** a limit was hit; [x] holds the best incumbent found *)
  | Infeasible
  | Unbounded
  | Unknown  (** a limit was hit before any incumbent was found *)

type result = {
  outcome : outcome;
  objective : float;  (** incumbent objective; meaningless for [Infeasible]/[Unknown] *)
  x : float array;
  nodes : int;
  best_bound : float;  (** global lower bound at termination *)
  simplex_iterations : int;
  root_lp_iters : int;
      (** simplex iterations of the root-relaxation solve alone; 0 when
          the search stopped before the root LP finished *)
  root_bound_flips : int;  (** bound-flip steps of the root solve *)
  root_warm : Simplex.warm;
      (** how the root solve used the [?root_basis] warm start *)
  root_basis : Simplex.basis option;
      (** optimal basis of the root relaxation, for reuse as a
          [?root_basis] on related LPs (remapped via {!Simplex.Basis});
          [None] when the root LP did not finish [Optimal] *)
  workers : int;  (** effective parallel width of the search *)
  steals : int;
      (** frontier nodes popped by a worker other than the one that
          pushed them; always 0 for serial solves *)
  solver_busy_s : float;
      (** summed per-worker node-processing time; [solver_busy_s /
          solver_wall_s] is the achieved parallel speedup of the solve *)
  solver_wall_s : float;  (** wall clock of the whole solve *)
  dual_btran_saved : int;
      (** BTRAN passes avoided by {!Simplex}'s incremental dual update,
          summed over all LP re-optimisations of the search *)
}

type params = {
  max_nodes : int;
  time_limit_s : float option;
      (** wall-clock seconds, measured with [Unix.gettimeofday]. Wall
          rather than CPU time: parallel sweeps run several solves in one
          process, where accumulated CPU seconds are meaningless as a
          per-solve deadline. *)
  integrality_tol : float;
  log : bool;
  solver_jobs : int;
      (** worker domains for the branch-and-bound search itself (1 =
          serial, the default). Independent of the sweep-level pool; see
          {!Optrouter_eval.Sweep} for how the two levels share a machine
          budget. Values below 1 behave as 1; capped at 128. *)
  simplex : Simplex.Params.t;
      (** LP solver parameters (pricing rule, refactorisation policy, …)
          handed to every LP solve; the per-node basis, bounds and
          deadline fields are overridden by the search itself *)
}

val default_params : params

(** [most_fractional tol lp x] is the fallback branching variable at the
    LP point [x]: the [Integer] variable whose fractional part is
    furthest from integral (at least [tol] away), weighted by objective
    coefficient so expensive decisions are fixed first. [None] when [x]
    is integral. The search proper prefers pseudo-cost scores once a
    variable has been branched both ways; until then it scores exactly
    like this function. Total-function safe for values of any magnitude
    (doubles beyond 2{^53} are integral by construction). Exposed for
    tests. *)
val most_fractional : float -> Lp.t -> float array -> int option

(** [make_params ()] is {!default_params}; each argument overrides one
    field. Prefer this over record literals at call sites — future solver
    knobs then arrive without breaking callers. [time_limit_s] left out
    means no time limit. *)
val make_params :
  ?max_nodes:int ->
  ?time_limit_s:float ->
  ?integrality_tol:float ->
  ?log:bool ->
  ?solver_jobs:int ->
  ?simplex:Simplex.Params.t ->
  unit ->
  params

(** [solve ?params ?initial ?cutoff lp] minimizes.

    [initial], when given, is a known feasible integral point used as the
    starting incumbent (it is re-validated; an infeasible or fractional
    point is silently ignored). Providing a good initial solution — e.g.
    from a problem-specific heuristic — lets the very first bound
    comparisons prune, which on routing instances routinely collapses the
    tree to a handful of nodes.

    [cutoff] is a weaker form: only the objective of a known solution.
    Nodes that cannot beat it are pruned and only strictly better
    incumbents are recorded; if the search completes without finding one,
    the outcome is [Proved_optimal] with [objective = cutoff] and an empty
    [x] — the external solution was already optimal. Both fast paths hold
    under any [solver_jobs].

    [root_basis] warm-starts the root-relaxation solve (typically the
    remapped optimal basis of a related LP, via {!Simplex.Basis});
    [result.root_warm] reports whether it was reused. It is dropped when
    [presolve] reduces the problem — the positional basis cannot survive
    the reduction. *)
val solve :
  ?params:params ->
  ?presolve:bool ->
  ?initial:float array ->
  ?cutoff:float ->
  ?root_basis:Simplex.basis ->
  Lp.t ->
  result
(** [presolve] (default [false]) applies {!Presolve} first and lifts the
    solution back; initial points and cutoffs are translated into the
    reduced space automatically. *)
