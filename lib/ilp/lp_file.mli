(** CPLEX LP-format export.

    Handy for eyeballing formulations and for replaying an instance in an
    external solver. Only the subset of the format we need is emitted:
    objective, constraints, bounds and a [General]/[Binary] section. *)

val pp : Format.formatter -> Lp.t -> unit
val to_string : Lp.t -> string

(** Atomic (see {!Optrouter_report.Report.write_atomic}). *)
val write_file : string -> Lp.t -> unit

(** [of_string s] parses the same LP-format subset the printer emits:
    [Minimize]/[Maximize] with one objective line, [Subject To], [Bounds],
    [General]/[Binary] and [End]. Maximisation is converted to
    minimisation by negating the objective. Unknown variables appearing
    only in the objective or rows get default bounds [0, +inf).

    Numeric literals must be finite decimals: [nan], [inf]/[infinity]
    outside the named-bound forms, and hex floats are rejected with a
    line-numbered error instead of flowing into the model as non-finite
    coefficients or bounds. *)
val of_string : string -> (Lp.t, string) Result.t

val read_file : string -> (Lp.t, string) Result.t
