(* LP-format identifiers may not contain a few reserved characters; our
   generated names are already clean, but sanitise defensively. *)
let clean name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '(' | ')' -> c
      | _ -> '_')
    name

let pp_terms ppf (lp : Lp.t) terms =
  let first = ref true in
  List.iter
    (fun (j, a) ->
      let name = clean lp.vars.(j).Lp.v_name in
      if !first then begin
        Format.fprintf ppf "%g %s" a name;
        first := false
      end
      else if a >= 0.0 then Format.fprintf ppf " + %g %s" a name
      else Format.fprintf ppf " - %g %s" (Float.abs a) name)
    terms;
  if !first then Format.pp_print_string ppf "0"

let pp ppf (lp : Lp.t) =
  Format.fprintf ppf "Minimize@.  obj: ";
  let obj_terms = ref [] in
  Array.iteri
    (fun j (v : Lp.var) -> if v.obj <> 0.0 then obj_terms := (j, v.obj) :: !obj_terms)
    lp.vars;
  pp_terms ppf lp (List.rev !obj_terms);
  Format.fprintf ppf "@.Subject To@.";
  Array.iter
    (fun (row : Lp.row) ->
      Format.fprintf ppf "  %s: " (clean row.r_name);
      pp_terms ppf lp (Array.to_list row.coeffs);
      let op =
        match row.sense with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "="
      in
      Format.fprintf ppf " %s %g@." op row.rhs)
    lp.rows;
  Format.fprintf ppf "Bounds@.";
  Array.iter
    (fun (v : Lp.var) ->
      let name = clean v.v_name in
      match (v.lower, v.upper) with
      | l, u when l = neg_infinity && u = infinity ->
        Format.fprintf ppf "  %s free@." name
      | l, u when u = infinity -> Format.fprintf ppf "  %s >= %g@." name l
      | l, u when l = neg_infinity -> Format.fprintf ppf "  %s <= %g@." name u
      | l, u -> Format.fprintf ppf "  %g <= %s <= %g@." l name u)
    lp.vars;
  let integers =
    Array.to_list lp.vars
    |> List.filter_map (fun (v : Lp.var) ->
           match v.kind with
           | Lp.Integer -> Some (clean v.v_name)
           | Lp.Continuous -> None)
  in
  if integers <> [] then begin
    Format.fprintf ppf "General@.";
    List.iter (fun name -> Format.fprintf ppf "  %s@." name) integers
  end;
  Format.fprintf ppf "End@."

let to_string lp = Format.asprintf "%a" pp lp

let write_file path lp = Optrouter_report.Report.write_atomic path (to_string lp)

(* ------------------------------------------------------------------ *)
(* Parser for the subset of the LP format the printer emits.            *)
(* ------------------------------------------------------------------ *)

type section = In_objective | In_constraints | In_bounds | In_general | Done

type pstate = {
  mutable section : section;
  mutable maximize : bool;
  vars : (string, int) Hashtbl.t;  (* name -> index *)
  mutable order : string list;  (* reverse order of first appearance *)
  mutable nvars : int;
  obj : (int, float) Hashtbl.t;
  mutable rows : (string * (int * float) list * Lp.sense * float) list;
  bounds : (int, float * float) Hashtbl.t;
  integers : (int, unit) Hashtbl.t;
}

let tokenize line =
  (* split on spaces, then further split glued +/- signs off numbers *)
  String.split_on_char ' ' line
  |> List.concat_map (fun t -> String.split_on_char '\t' t)
  |> List.filter (fun t -> t <> "")

(* Numeric tokens must be finite decimal literals. [float_of_string_opt]
   alone also accepts [nan], [inf] and hex floats ([0x1p3]) — values that
   would flow silently into bounds or coefficients and only surface much
   later as Lp_audit A0xx errors or a simplex [Numerical_failure]. Reject
   them at parse time instead. Tokens that are not numbers at all (no
   leading digit/sign/dot) classify as identifiers. *)
type token_class = Num of float | Ident | Bad_num of string

let classify tok =
  match float_of_string_opt tok with
  | None -> Ident
  | Some f ->
    if String.exists (fun c -> c = 'x' || c = 'X') tok then
      Bad_num "hex float literal"
    else if Float.is_nan f then Bad_num "nan is not a number literal"
    else if not (Float.is_finite f) then Bad_num "non-finite literal"
    else Num f

let finite_of_string tok =
  match classify tok with
  | Num f -> Ok f
  | Ident -> Error (Printf.sprintf "expected a number, got %S" tok)
  | Bad_num why -> Error (Printf.sprintf "bad number %S: %s" tok why)

let var_index st name =
  match Hashtbl.find_opt st.vars name with
  | Some i -> i
  | None ->
    let i = st.nvars in
    Hashtbl.replace st.vars name i;
    st.order <- name :: st.order;
    st.nvars <- i + 1;
    i

(* Parse a linear expression given as alternating [sign] coeff var tokens,
   e.g. ["3"; "x"; "+"; "2"; "y"; "-"; "z"]. Returns (terms, rest) where
   rest starts at the first token that is neither sign, number nor
   identifier-after-number. *)
let parse_linear st tokens =
  let terms = ref [] in
  let rec go sign = function
    | "+" :: rest -> go 1.0 rest
    | "-" :: rest -> go (-1.0) rest
    | tok :: rest -> (
      match classify tok with
      | Bad_num why -> Error (Printf.sprintf "bad number %S: %s" tok why)
      | Num c -> (
        match rest with
        | v :: rest' when classify v = Ident ->
          terms := (var_index st v, sign *. c) :: !terms;
          go 1.0 rest'
        | _ ->
          (* bare constant (e.g. the "0" an empty objective prints):
             a harmless offset, ignore it *)
          go 1.0 rest)
      | Ident ->
        (* implicit coefficient 1 *)
        terms := (var_index st tok, sign) :: !terms;
        go 1.0 rest)
    | [] -> Ok (List.rev !terms)
  and go_start = function
    | [] -> Ok []
    | toks -> go 1.0 toks
  in
  go_start tokens

let split_relation tokens =
  let rec go acc = function
    | ("<=" | "<") :: rest -> Some (List.rev acc, Lp.Le, rest)
    | (">=" | ">") :: rest -> Some (List.rev acc, Lp.Ge, rest)
    | "=" :: rest -> Some (List.rev acc, Lp.Eq, rest)
    | tok :: rest -> go (tok :: acc) rest
    | [] -> None
  in
  go [] tokens

let of_string text =
  let ( let* ) = Result.bind in
  let st =
    {
      section = Done;
      maximize = false;
      vars = Hashtbl.create 64;
      order = [];
      nvars = 0;
      obj = Hashtbl.create 64;
      rows = [];
      bounds = Hashtbl.create 64;
      integers = Hashtbl.create 16;
    }
  in
  let strip_label tokens =
    match tokens with
    | t :: rest when String.length t > 0 && t.[String.length t - 1] = ':' ->
      (String.sub t 0 (String.length t - 1), rest)
    | _ -> ("", tokens)
  in
  let parse_line line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '\\' then Ok ()
    else
      match String.lowercase_ascii trimmed with
      | "minimize" | "min" ->
        st.section <- In_objective;
        st.maximize <- false;
        Ok ()
      | "maximize" | "max" ->
        st.section <- In_objective;
        st.maximize <- true;
        Ok ()
      | "subject to" | "st" | "s.t." ->
        st.section <- In_constraints;
        Ok ()
      | "bounds" ->
        st.section <- In_bounds;
        Ok ()
      | "general" | "binary" | "binaries" | "integers" ->
        st.section <- In_general;
        Ok ()
      | "end" ->
        st.section <- Done;
        Ok ()
      | _ -> (
        let tokens = tokenize trimmed in
        match st.section with
        | In_objective ->
          let _, tokens = strip_label tokens in
          let* terms = parse_linear st tokens in
          List.iter
            (fun (j, c) ->
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt st.obj j) in
              Hashtbl.replace st.obj j (prev +. c))
            terms;
          Ok ()
        | In_constraints -> (
          let label, tokens = strip_label tokens in
          match split_relation tokens with
          | None -> Error (Printf.sprintf "row %S: no relation" trimmed)
          | Some (lhs, sense, rhs) -> (
            let* terms = parse_linear st lhs in
            match rhs with
            | [ r ] -> (
              match finite_of_string r with
              | Ok rhs ->
                let name =
                  if label = "" then Printf.sprintf "r%d" (List.length st.rows)
                  else label
                in
                st.rows <- (name, terms, sense, rhs) :: st.rows;
                Ok ()
              | Error why -> Error (Printf.sprintf "bad rhs: %s" why))
            | _ -> Error (Printf.sprintf "row %S: malformed rhs" trimmed)))
        | In_bounds -> (
          (* forms: "x free" | "l <= x <= u" | "x >= l" | "x <= u".
             The named infinity tokens are deliberate LP-format syntax for
             one-sided bounds; anything else must be a finite decimal —
             a [nan] bound (which float_of_string would happily accept)
             is rejected here rather than poisoning the model. *)
          let num tok =
            match String.lowercase_ascii tok with
            | "-inf" | "-infinity" -> Some neg_infinity
            | "+inf" | "inf" | "+infinity" | "infinity" -> Some infinity
            | _ -> (
              match classify tok with Num f -> Some f | Ident | Bad_num _ -> None)
          in
          match tokens with
          | [ v; f ] when String.lowercase_ascii f = "free" ->
            Hashtbl.replace st.bounds (var_index st v) (neg_infinity, infinity);
            Ok ()
          | [ l; "<="; v; "<="; u ] -> (
            match (num l, num u) with
            | Some l, Some u ->
              Hashtbl.replace st.bounds (var_index st v) (l, u);
              Ok ()
            | _ -> Error (Printf.sprintf "bad bounds %S" trimmed))
          | [ v; ">="; l ] -> (
            match num l with
            | Some l ->
              let _, u =
                Option.value ~default:(0.0, infinity)
                  (Hashtbl.find_opt st.bounds (var_index st v))
              in
              Hashtbl.replace st.bounds (var_index st v) (l, u);
              Ok ()
            | None -> Error (Printf.sprintf "bad bound %S" trimmed))
          | [ v; "<="; u ] -> (
            match num u with
            | Some u ->
              let l, _ =
                Option.value ~default:(0.0, infinity)
                  (Hashtbl.find_opt st.bounds (var_index st v))
              in
              Hashtbl.replace st.bounds (var_index st v) (l, u);
              Ok ()
            | None -> Error (Printf.sprintf "bad bound %S" trimmed))
          | _ -> Error (Printf.sprintf "bad bounds line %S" trimmed))
        | In_general ->
          List.iter
            (fun v -> Hashtbl.replace st.integers (var_index st v) ())
            tokens;
          Ok ()
        | Done -> Error (Printf.sprintf "content outside sections: %S" trimmed))
  in
  let* () =
    (* Errors are prefixed with the 1-based source line so a bad literal
       in a large generated file is findable. *)
    let lines = String.split_on_char '\n' text in
    List.fold_left
      (fun acc (lineno, line) ->
        let* () = acc in
        Result.map_error
          (fun msg -> Printf.sprintf "line %d: %s" lineno msg)
          (parse_line line))
      (Ok ())
      (List.mapi (fun i line -> (i + 1, line)) lines)
  in
  let b = Lp.Builder.create () in
  let names = Array.of_list (List.rev st.order) in
  Array.iteri
    (fun j name ->
      let lower, upper =
        Option.value ~default:(0.0, infinity) (Hashtbl.find_opt st.bounds j)
      in
      let obj =
        let c = Option.value ~default:0.0 (Hashtbl.find_opt st.obj j) in
        if st.maximize then -.c else c
      in
      let kind = if Hashtbl.mem st.integers j then Lp.Integer else Lp.Continuous in
      ignore (Lp.Builder.add_var b ~name ~lower ~upper ~obj kind))
    names;
  List.iter
    (fun (name, terms, sense, rhs) -> Lp.Builder.add_row b ~name terms sense rhs)
    (List.rev st.rows);
  Ok (Lp.Builder.finish b)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
