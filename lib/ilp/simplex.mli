(** Revised primal simplex for linear programs with bounded variables.

    The implementation follows the classic product-form-of-the-inverse
    design: the basis inverse is maintained as a sequence of eta matrices,
    refactorised periodically from the basis columns for numerical hygiene.
    Rows are turned into equalities with one (bounded) logical slack per
    row, so the initial all-slack basis always exists; primal infeasibility
    of a starting basis is driven out by a composite phase-1 objective
    (piecewise-linear sum of bound violations of basic variables), which
    also makes warm starts from an arbitrary basis possible — this is what
    {!Milp} relies on between branch-and-bound nodes.

    Integrality kinds on variables are ignored here; this module solves the
    continuous relaxation. *)

type vstat =
  | Basic
  | At_lower
  | At_upper
  | Nb_free  (** nonbasic free variable, held at value 0 *)

(** A resumable basis: [vstat] has one entry per column (structural
    variables first, then one logical slack per row); [basic] maps each of
    the [m] basis positions to a column index. *)
type basis = { vstat : vstat array; basic : int array }

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : float;  (** meaningful only when [status = Optimal] *)
  x : float array;  (** structural variable values *)
  duals : float array;  (** one multiplier per row *)
  reduced_costs : float array;  (** one per structural variable *)
  basis : basis;
  iterations : int;
  btran_saved : int;
      (** full BTRAN passes the dual re-optimisation avoided by updating
          the duals incrementally across pivots (one saved pass per dual
          pivot); 0 on cold starts that never enter the dual method *)
}

(** Refactorisation policy: [interval] is the hard cap on pivots between
    refactorisations of the eta file; the adaptive triggers refactor early
    when the eta file fills past [fill_factor] nonzeros per row (and has
    at least doubled since the last fresh factorisation, so dense bases
    cannot thrash) or when the relative residual of [B x = rhs] drifts
    past [residual_tol]. *)
type refactor_params = {
  interval : int;
  fill_factor : float;
  residual_tol : float;
}

(** [{ interval = 128; fill_factor = 16.0; residual_tol = 1e-7 }] *)
val default_refactor : refactor_params

exception Numerical_failure of string

(** A prepared instance caches the column-wise matrix so that repeated
    solves with different variable bounds (as branch and bound does) avoid
    re-elaborating the problem. *)
module Instance : sig
  type t

  val create : Lp.t -> t
  val nvars : t -> int
  val nrows : t -> int

  (** [solve ?basis ?lower ?upper ?max_iters ?deadline_s ?refactor inst]
      solves the instance. [lower]/[upper], when given, override the
      structural variable bounds (arrays of length [nvars]); [deadline_s]
      is an absolute [Unix.gettimeofday] value after which the solve
      aborts; [refactor] (default {!default_refactor}) tunes the adaptive
      refactorisation policy. Raises {!Numerical_failure} if the basis
      cannot be kept factorised, the iteration limit is hit, or the
      deadline passes. *)
  val solve :
    ?basis:basis ->
    ?lower:float array ->
    ?upper:float array ->
    ?max_iters:int ->
    ?deadline_s:float ->
    ?refactor:refactor_params ->
    t ->
    result
end

(** One-shot convenience wrapper around {!Instance}. *)
val solve :
  ?basis:basis -> ?max_iters:int -> ?refactor:refactor_params -> Lp.t -> result

(** [verify_optimal ?tol lp result] independently checks the optimality
    certificate: primal feasibility of [result.x] and sign conditions of the
    reduced costs against the variable bounds. Returns an error description
    on failure. Useful in tests: it certifies optimality without trusting
    the solver internals. *)
val verify_optimal : ?tol:float -> Lp.t -> result -> (unit, string) Result.t
