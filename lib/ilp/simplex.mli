(** Revised primal simplex for linear programs with bounded variables.

    The implementation follows the classic product-form-of-the-inverse
    design: the basis inverse is maintained as a sequence of eta matrices
    (stored as a flat pool of unboxed arrays so the FTRAN/BTRAN kernels
    stream contiguous memory), refactorised periodically from the basis
    columns for numerical hygiene. Rows are turned into equalities with one
    (bounded) logical slack per row, so the initial all-slack basis always
    exists; primal infeasibility of a starting basis is driven out by a
    composite phase-1 objective (piecewise-linear sum of bound violations
    of basic variables), which also makes warm starts from an arbitrary
    basis possible — this is what {!Milp} relies on between branch-and-
    bound nodes, and what {!Basis} extends across structurally different
    LPs via name-keyed remapping.

    Pricing is devex over a partial candidate scan by default (reference
    weights updated per pivot, wrap-around chunked scan); Dantzig full
    pricing remains available and both provably reach the same optimum —
    pricing only chooses the path, the optimality test is pricing-
    independent, and terminal claims are re-derived from a fresh
    factorisation. Ratio-test steps limited by the entering variable's own
    opposite bound are applied as bound flips: no basis change, no eta, and
    the cached duals stay valid so the next pricing pass skips its BTRAN.

    Integrality kinds on variables are ignored here; this module solves the
    continuous relaxation. *)

type vstat =
  | Basic
  | At_lower
  | At_upper
  | Nb_free  (** nonbasic free variable, held at value 0 *)

(** A resumable basis: [vstat] has one entry per column (structural
    variables first, then one logical slack per row); [basic] maps each of
    the [m] basis positions to a column index. *)
type basis = { vstat : vstat array; basic : int array }

type status = Optimal | Infeasible | Unbounded

(** Entering-variable selection rule. [Devex] (the default) prices a
    partial candidate list against devex reference weights; [Dantzig] is
    the classic full most-negative scan. Both certify the same optimum. *)
type pricing = Dantzig | Devex

(** How a supplied starting basis was used: [`Cold] — none supplied, or it
    was abandoned (pathological fill-in, dual re-optimisation stall);
    [`Reused] — factorised exactly as given; [`Repaired] — factorised
    after substituting logical slacks for singular columns. *)
type warm = [ `Cold | `Reused | `Repaired ]

type result = {
  status : status;
  objective : float;  (** meaningful only when [status = Optimal] *)
  x : float array;  (** structural variable values *)
  duals : float array;  (** one multiplier per row *)
  reduced_costs : float array;  (** one per structural variable *)
  basis : basis;
  iterations : int;
  bound_flips : int;
      (** ratio-test steps resolved by flipping the entering variable to
          its opposite bound — no basis change, no eta, no fresh BTRAN *)
  warm : warm;
  btran_saved : int;
      (** full BTRAN passes the dual re-optimisation avoided by updating
          the duals incrementally across pivots (one saved pass per dual
          pivot); 0 on cold starts that never enter the dual method *)
}

(** Refactorisation policy: [interval] is the hard cap on pivots between
    refactorisations of the eta file; the adaptive triggers refactor early
    when the eta file fills past [fill_factor] nonzeros per row (and has
    at least doubled since the last fresh factorisation, so dense bases
    cannot thrash) or when the relative residual of [B x = rhs] drifts
    past [residual_tol]. *)
type refactor_params = {
  interval : int;
  fill_factor : float;
  residual_tol : float;
}

(** [{ interval = 128; fill_factor = 16.0; residual_tol = 1e-7 }] *)
val default_refactor : refactor_params

exception Numerical_failure of string

val pricing_name : pricing -> string

(** Accepts ["dantzig"]/["full"] and ["devex"]/["partial"], case
    insensitively. *)
val pricing_of_string : string -> (pricing, string) Result.t

(** Solver parameters, replacing the former optional-argument soup on
    {!Instance.solve}. Build with {!make_params}. *)
module Params : sig
  type t = {
    basis : basis option;  (** warm-start basis (instance column layout) *)
    lower : float array option;
        (** overrides the structural lower bounds; length [nvars] *)
    upper : float array option;
    max_iters : int;
    deadline_s : float option;
        (** absolute [Unix.gettimeofday] abort time *)
    refactor : refactor_params;
    pricing : pricing;
  }

  (** No basis, no bound overrides, 200k iterations, no deadline,
      {!default_refactor}, and the pricing selected by the
      [OPTROUTER_PRICING] environment variable (default [Devex]). *)
  val default : t
end

(** Builder mirroring [Milp.make_params]: each argument defaults to the
    corresponding {!Params.default} field. *)
val make_params :
  ?basis:basis ->
  ?lower:float array ->
  ?upper:float array ->
  ?max_iters:int ->
  ?deadline_s:float ->
  ?refactor:refactor_params ->
  ?pricing:pricing ->
  unit ->
  Params.t

(** A prepared instance caches the column-wise matrix so that repeated
    solves with different variable bounds (as branch and bound does) avoid
    re-elaborating the problem. *)
module Instance : sig
  type t

  val create : Lp.t -> t
  val nvars : t -> int
  val nrows : t -> int

  (** [solve ?params inst] solves the instance under [params] (default
      {!Params.default}). Raises {!Numerical_failure} if the basis cannot
      be kept factorised, the iteration limit is hit, or the deadline
      passes. *)
  val solve : ?params:Params.t -> t -> result
end

(** One-shot convenience wrapper around {!Instance}. *)
val solve : ?params:Params.t -> Lp.t -> result

(** Name-keyed basis views, enabling warm starts across structurally
    different LPs (e.g. the RULE1 optimal basis remapped onto a RULEk
    encoding whose rule deltas added or dropped a few row families). Only
    per-column statuses travel; basis positions are rebuilt by
    refactorisation on intake. Variable and row names share one flat
    association list — a row entry carries the status of the row's logical
    slack. *)
module Basis : sig
  type t = basis

  (** [to_assoc lp b] lists [(name, status)] for every structural variable
      of [lp], then every row (its slack's status), in declaration order.
      Raises [Invalid_argument] if [b] does not match [lp]'s shape. *)
  val to_assoc : Lp.t -> basis -> (string * vstat) list

  (** [of_assoc lp assoc] rebuilds a basis for [lp] from name-keyed
      statuses, repairing structural mismatches: unknown-to-[assoc]
      columns start nonbasic, unknown rows get a basic slack, and the
      basic set is trimmed/filled to exactly [m] members (surplus demoted
      highest column index first, deficit filled by promoting slacks
      lowest row first). Returns [`Exact] when no repair was needed,
      [`Patched] otherwise. The result may still be singular — the solver
      repairs that during factorisation. *)
  val of_assoc :
    Lp.t -> (string * vstat) list -> basis * [ `Exact | `Patched ]

  (** Textual round-trip used by the [--warm-basis]/[--basis-out] CLI
      path: a [# optrouter basis v1] header, then one [v NAME S] line per
      variable and one [r NAME S] line per row with [S] in [B|L|U|F].
      [of_string] tolerates blank and [#] comment lines and repairs via
      {!of_assoc}. *)
  val to_string : Lp.t -> basis -> string

  val of_string :
    Lp.t -> string -> (basis * [ `Exact | `Patched ], string) Result.t
end

(** [verify_optimal ?tol lp result] independently checks the optimality
    certificate: primal feasibility of [result.x] and sign conditions of the
    reduced costs against the variable bounds. Returns an error description
    on failure. Useful in tests: it certifies optimality without trusting
    the solver internals — every pricing mode and warm-start path must pass
    it with the same objective. *)
val verify_optimal : ?tol:float -> Lp.t -> result -> (unit, string) Result.t
