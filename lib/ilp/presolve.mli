(** LP/MILP presolve: cheap reductions applied before the simplex.

    Implemented reductions, iterated to a fixed point:

    - {e empty rows}: [0 <= rhs]-style rows are dropped when trivially
      satisfied and reported as infeasible otherwise;
    - {e fixed variables} ([lower = upper]): substituted into every row's
      right-hand side and removed from the problem;
    - {e singleton rows} ([a x <= b] with one nonzero): converted into a
      bound tightening on the variable and dropped. For [Integer]
      variables the tightened bounds are rounded inward;
    - {e singleton columns}: a free continuous variable appearing in
      exactly one (equality) row is substituted out — its objective cost
      folds into the row's other variables and a constant — and the row
      is dropped;
    - {e dominated rows}: rows whose worst-case activity under the
      current bounds already satisfies their sense, and duplicate rows
      with the same normalised left-hand side where one right-hand side
      implies the other (two equalities forcing different values are
      infeasible);
    - {e inconsistent bounds} ([lower > upper] after tightening): reported
      as infeasible.

    The reduced problem's variables are a subset of the original's;
    {!restore} lifts a reduced solution back to the original index space
    (fixed variables get their pinned value). The objective value is
    unchanged by construction: eliminated variables contribute their fixed
    cost, which {!objective_offset} reports.

    Presolve is optional equipment — the routing pipeline does not apply
    it by default — but it is exact: optima before and after agree, which
    the test suite checks by property. *)

type mapping

(** Reduction census of one presolve run. *)
type stats = {
  rows_before : int;
  rows_after : int;
  cols_before : int;
  cols_after : int;
  passes : int;  (** fixed-point iterations until nothing changed *)
  singleton_cols : int;  (** variables substituted out of equality rows *)
  dominated_rows : int;  (** redundant / duplicate rows dropped *)
}

type result =
  | Reduced of Lp.t * mapping
  | Infeasible of string  (** human-readable reason *)

val presolve : Lp.t -> result

(** Number of variables / rows removed. *)
val removed : mapping -> int * int

(** Before/after problem sizes and per-reduction counts. *)
val stats : mapping -> stats

(** Constant objective contribution of the eliminated fixed variables. *)
val objective_offset : mapping -> float

(** [restore mapping x_reduced] is a point in the original variable space. *)
val restore : mapping -> float array -> float array

(** [project mapping x_original] drops the eliminated variables — the
    inverse of {!restore} on the kept coordinates. *)
val project : mapping -> float array -> float array
