type outcome = Proved_optimal | Feasible | Infeasible | Unbounded | Unknown

type result = {
  outcome : outcome;
  objective : float;
  x : float array;
  nodes : int;
  best_bound : float;
  simplex_iterations : int;
}

type params = {
  max_nodes : int;
  time_limit_s : float option;
  integrality_tol : float;
  log : bool;
}

let default_params =
  { max_nodes = 500_000; time_limit_s = None; integrality_tol = 1e-6; log = false }

let make_params ?(max_nodes = default_params.max_nodes) ?time_limit_s
    ?(integrality_tol = default_params.integrality_tol)
    ?(log = default_params.log) () =
  { max_nodes; time_limit_s; integrality_tol; log }

(* Wall clock for the time budget: CPU time is meaningless as a deadline
   when several solves share the process (domain-parallel sweeps), and
   [Unix.gettimeofday] is the only sub-second clock the stdlib exposes
   per-process rather than per-thread. *)
let now () = Unix.gettimeofday ()

let src = Logs.Src.create "optrouter.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type node = {
  lower : float array;
  upper : float array;
  warm : Simplex.basis option;
  parent_bound : float;
  depth : int;
}

let is_near_integer tol v = Float.abs (v -. Float.round v) <= tol

(* LP bounds may be rounded up to the next integer only when the objective
   is guaranteed integral at every feasible integral point: each variable
   with a nonzero cost must be an integer variable with an integer cost. *)
let objective_is_integral (lp : Lp.t) =
  Array.for_all
    (fun (v : Lp.var) ->
      v.obj = 0.0 || (v.kind = Lp.Integer && is_near_integer 1e-12 v.obj))
    lp.vars

(* Branching variable: fractionality weighted by objective coefficient, so
   expensive decisions (vias, in the routing instances) are fixed first —
   they move the bound fastest. *)
let most_fractional tol (lp : Lp.t) x =
  let best = ref None in
  Array.iteri
    (fun j (v : Lp.var) ->
      if v.kind = Lp.Integer then begin
        (* [Float.floor] directly: an int_of_float round-trip is undefined
           for values outside the native int range. *)
        let f = x.(j) -. Float.floor x.(j) in
        let dist = Float.min f (1.0 -. f) in
        if dist > tol then begin
          let score = dist *. (1.0 +. Float.abs v.obj) in
          match !best with
          | Some (_, s) when s >= score -> ()
          | Some _ | None -> best := Some (j, score)
        end
      end)
    lp.vars;
  Option.map fst !best

let rec solve ?(params = default_params) ?(presolve = false) ?initial ?cutoff
    (lp : Lp.t) =
  if presolve then
    match Presolve.presolve lp with
    | Presolve.Infeasible _ ->
      {
        outcome = Infeasible;
        objective = infinity;
        x = Array.make (Lp.nvars lp) 0.0;
        nodes = 0;
        best_bound = infinity;
        simplex_iterations = 0;
      }
    | Presolve.Reduced (lp', m) ->
      let offset = Presolve.objective_offset m in
      let initial = Option.map (Presolve.project m) initial in
      let cutoff = Option.map (fun c -> c -. offset) cutoff in
      let res = solve ~params ~presolve:false ?initial ?cutoff lp' in
      {
        res with
        objective = res.objective +. offset;
        best_bound = res.best_bound +. offset;
        x = (if Array.length res.x = Lp.nvars lp' then Presolve.restore m res.x else res.x);
      }
  else solve_unreduced ~params ?initial ?cutoff lp

and solve_unreduced ~params ?initial ?cutoff (lp : Lp.t) =
  let inst = Simplex.Instance.create lp in
  let n = Lp.nvars lp in
  let start = now () in
  let out_of_time () =
    match params.time_limit_s with
    | None -> false
    | Some limit -> now () -. start > limit
  in
  let integral_obj = objective_is_integral lp in
  let round_bound b = if integral_obj then Float.ceil (b -. 1e-6) else b in
  let incumbent = ref None in
  let incumbent_obj = ref (Option.value cutoff ~default:infinity) in
  (match initial with
  | Some x0
    when Array.length x0 = n
         && Lp.is_feasible lp x0
         && Lp.is_integral ~tol:params.integrality_tol lp x0 ->
    let obj = Lp.objective_value lp x0 in
    if obj < !incumbent_obj then begin
      incumbent := Some (Array.copy x0);
      incumbent_obj := obj
    end
  | Some _ | None -> ());
  let nodes = ref 0 in
  let iters = ref 0 in
  let hit_limit = ref false in
  let root_unbounded = ref false in
  let root_lower = Array.map (fun (v : Lp.var) -> v.lower) lp.vars in
  let root_upper = Array.map (fun (v : Lp.var) -> v.upper) lp.vars in
  let stack =
    ref
      [
        {
          lower = root_lower;
          upper = root_upper;
          warm = None;
          parent_bound = neg_infinity;
          depth = 0;
        };
      ]
  in
  let numerical_trouble = ref false in
  let deadline_s = Option.map (fun l -> start +. l) params.time_limit_s in
  let solve_lp node =
    let attempt basis =
      Simplex.Instance.solve ?basis ~lower:node.lower ~upper:node.upper
        ?deadline_s inst
    in
    match attempt node.warm with
    | r -> Some r
    | exception Simplex.Numerical_failure _ when out_of_time () ->
      (* past the global budget: do not even try a cold re-solve *)
      numerical_trouble := true;
      None
    | exception Simplex.Numerical_failure _ -> (
      (* A stale warm basis occasionally defeats the factorisation; a cold
         start is slower but always well-posed. If even that fails, the
         node cannot be resolved safely: the search degrades to a limit. *)
      match attempt None with
      | r -> Some r
      | exception Simplex.Numerical_failure _ ->
        numerical_trouble := true;
        None)
  in
  let record_incumbent res =
    if res.Simplex.objective < !incumbent_obj -. 1e-9 then begin
      incumbent := Some (Array.copy res.Simplex.x);
      incumbent_obj := res.Simplex.objective;
      if params.log then
        Log.info (fun m ->
            m "node %d: incumbent %.6g" !nodes res.Simplex.objective)
    end
  in
  let branch node res j =
    let xj = res.Simplex.x.(j) in
    let fl = Float.floor xj and ce = Float.ceil xj in
    let down =
      let upper = Array.copy node.upper in
      upper.(j) <- fl;
      {
        upper;
        lower = node.lower;
        warm = Some res.Simplex.basis;
        parent_bound = res.Simplex.objective;
        depth = node.depth + 1;
      }
    in
    let up =
      let lower = Array.copy node.lower in
      lower.(j) <- ce;
      {
        lower;
        upper = node.upper;
        warm = Some res.Simplex.basis;
        parent_bound = res.Simplex.objective;
        depth = node.depth + 1;
      }
    in
    (* Explore the rounding-preferred side first (it is pushed last). *)
    if xj -. fl <= 0.5 then stack := down :: up :: !stack
    else stack := up :: down :: !stack
  in
  let rec run () =
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      if !nodes >= params.max_nodes || out_of_time () then begin
        (* Put the node back so its bound still counts toward the gap. *)
        stack := node :: rest;
        hit_limit := true
      end
      else begin
        incr nodes;
        if round_bound node.parent_bound < !incumbent_obj -. 1e-9 then begin
          match solve_lp node with
          | None ->
            (* unresolved node: keep it so the bound stays honest *)
            stack := node :: !stack;
            hit_limit := true
          | Some res ->
          iters := !iters + res.Simplex.iterations;
          (match res.Simplex.status with
          | Simplex.Infeasible -> ()
          | Simplex.Unbounded ->
            if node.depth = 0 then root_unbounded := true
            else
              (* bounds only tighten below the root, so a truly unbounded
                 child implies an unbounded root; treat conservatively *)
              root_unbounded := true
          | Simplex.Optimal ->
            let bound = round_bound res.Simplex.objective in
            if bound < !incumbent_obj -. 1e-9 then begin
              match most_fractional params.integrality_tol lp res.Simplex.x with
              | None -> record_incumbent res
              | Some j -> branch node res j
            end);
          if not !root_unbounded then run ()
        end
        else run ()
      end
  in
  run ();
  let best_bound =
    if !root_unbounded then neg_infinity
    else
      List.fold_left
        (fun acc node -> Float.min acc (round_bound node.parent_bound))
        !incumbent_obj !stack
  in
  let outcome, objective, x =
    if !root_unbounded then (Unbounded, neg_infinity, Array.make n 0.0)
    else
      match !incumbent with
      | Some x when (not !hit_limit) && !stack = [] ->
        (Proved_optimal, !incumbent_obj, x)
      | Some x -> (Feasible, !incumbent_obj, x)
      | None when cutoff <> None && (not !hit_limit) && !stack = [] ->
        (* nothing strictly better than the external solution exists *)
        (Proved_optimal, !incumbent_obj, [||])
      | None when cutoff <> None -> (Feasible, !incumbent_obj, [||])
      | None when (not !hit_limit) && !stack = [] ->
        (Infeasible, infinity, Array.make n 0.0)
      | None -> (Unknown, infinity, Array.make n 0.0)
  in
  { outcome; objective; x; nodes = !nodes; best_bound; simplex_iterations = !iters }
