type outcome = Proved_optimal | Feasible | Infeasible | Unbounded | Unknown

type result = {
  outcome : outcome;
  objective : float;
  x : float array;
  nodes : int;
  best_bound : float;
  simplex_iterations : int;
  root_lp_iters : int;
  root_bound_flips : int;
  root_warm : Simplex.warm;
  root_basis : Simplex.basis option;
  workers : int;
  steals : int;
  solver_busy_s : float;
  solver_wall_s : float;
  dual_btran_saved : int;
}

type params = {
  max_nodes : int;
  time_limit_s : float option;
  integrality_tol : float;
  log : bool;
  solver_jobs : int;
  simplex : Simplex.Params.t;
}

let default_params =
  {
    max_nodes = 500_000;
    time_limit_s = None;
    integrality_tol = 1e-6;
    log = false;
    solver_jobs = 1;
    simplex = Simplex.Params.default;
  }

let make_params ?(max_nodes = default_params.max_nodes) ?time_limit_s
    ?(integrality_tol = default_params.integrality_tol)
    ?(log = default_params.log) ?(solver_jobs = default_params.solver_jobs)
    ?(simplex = default_params.simplex) () =
  { max_nodes; time_limit_s; integrality_tol; log; solver_jobs; simplex }

(* Wall clock for the time budget: CPU time is meaningless as a deadline
   when several solves share the process (domain-parallel sweeps), and
   [Unix.gettimeofday] is the only sub-second clock the stdlib exposes
   per-process rather than per-thread. *)
let now () = Unix.gettimeofday ()

let src = Logs.Src.create "optrouter.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

let is_near_integer tol v = Float.abs (v -. Float.round v) <= tol

(* LP bounds may be rounded up to the next integer only when the objective
   is guaranteed integral at every feasible integral point: each variable
   with a nonzero cost must be an integer variable with an integer cost. *)
let objective_is_integral (lp : Lp.t) =
  Array.for_all
    (fun (v : Lp.var) ->
      v.obj = 0.0 || (v.kind = Lp.Integer && is_near_integer 1e-12 v.obj))
    lp.vars

(* Fallback branching rule: fractionality weighted by objective
   coefficient, so expensive decisions (vias, in the routing instances)
   are fixed first — they move the bound fastest. The search proper uses
   pseudo-costs once both directions of a variable have been observed;
   until then it scores exactly like this function. *)
let most_fractional tol (lp : Lp.t) x =
  let best = ref None in
  Array.iteri
    (fun j (v : Lp.var) ->
      if v.kind = Lp.Integer then begin
        (* [Float.floor] directly: an int_of_float round-trip is undefined
           for values outside the native int range. *)
        let f = x.(j) -. Float.floor x.(j) in
        let dist = Float.min f (1.0 -. f) in
        if dist > tol then begin
          let score = dist *. (1.0 +. Float.abs v.obj) in
          match !best with
          | Some (_, s) when s >= score -> ()
          | Some _ | None -> best := Some (j, score)
        end
      end)
    lp.vars;
  Option.map fst !best

(* ------------------------------------------------------------------ *)
(* Search nodes: bound-delta chains                                    *)
(* ------------------------------------------------------------------ *)

(* A node stores only the single bound its branch tightened plus a parent
   pointer, so node creation is O(1) instead of the former pair of
   O(nvars) [Array.copy]. Bounds are materialised into per-worker scratch
   arrays when (and only when) the node's LP is actually solved. *)
type delta =
  | Root
  | Raised_lo of { bvar : int; bval : float; parent : delta }
  | Lowered_up of { bvar : int; bval : float; parent : delta }

type node = {
  deltas : delta;
  depth : int;
  parent_bound : float;  (** LP objective of the parent, a valid lower bound *)
  warm : Simplex.basis option;
  pc_var : int;  (** branching variable that created this node; -1 at root *)
  pc_up : bool;  (** true for the ceil (up) branch *)
  pc_frac : float;  (** distance the branch moved the variable: f or 1-f *)
  pusher : int;  (** worker that pushed the node; -1 for the root *)
}

(* Walking leaf -> root with max/min keeps the tightest bound per
   variable, so the application order of a chain that tightens the same
   variable twice does not matter. *)
let materialize ~root_lo ~root_up lo up deltas =
  let n = Array.length root_lo in
  Array.blit root_lo 0 lo 0 n;
  Array.blit root_up 0 up 0 n;
  let rec apply = function
    | Root -> ()
    | Raised_lo { bvar; bval; parent } ->
      if bval > lo.(bvar) then lo.(bvar) <- bval;
      apply parent
    | Lowered_up { bvar; bval; parent } ->
      if bval < up.(bvar) then up.(bvar) <- bval;
      apply parent
  in
  apply deltas

(* ------------------------------------------------------------------ *)
(* Shared search state                                                 *)
(* ------------------------------------------------------------------ *)

(* All cross-worker state of one solve. The frontier is a best-bound
   min-heap under [fmutex]; termination is detected with the classic
   busy-counter scheme (idle workers wait until either work appears or
   every worker is idle with an empty frontier). The incumbent objective
   lives in an [Atomic] so bound checks never take a lock; the solution
   vector itself is published under [imutex]. *)
type shared = {
  prm : params;
  lp : Lp.t;
  round_bound : float -> float;
  root_lo : float array;
  root_up : float array;
  deadline : float option;
  (* frontier *)
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable heap : node array;
  mutable hsize : int;
  mutable busy : int;
  stop : bool Atomic.t;
  (* incumbent *)
  best_obj : float Atomic.t;
  imutex : Mutex.t;
  mutable best : (float * float array) option;
  (* counters *)
  nodes : int Atomic.t;
  iters : int Atomic.t;
  btran_saved : int Atomic.t;
  steals : int Atomic.t;
  hit_limit : bool Atomic.t;
  root_unbounded : bool Atomic.t;
  (* Root-relaxation telemetry: the depth-0 node is processed exactly
     once, so this is written once; the mutex only orders that write
     against the driver's read after the workers join. *)
  rmutex : Mutex.t;
  mutable root_info : (int * int * Simplex.warm * Simplex.basis option) option;
  (* pseudo-costs: average objective degradation per unit of bound change,
     per variable and direction. Updated once per solved node, so one
     small mutex is cheap relative to the LP solves it guards. *)
  pmutex : Mutex.t;
  pc_sum_dn : float array;
  pc_cnt_dn : int array;
  pc_sum_up : float array;
  pc_cnt_up : int array;
}

let heap_swap sh i j =
  let tmp = sh.heap.(i) in
  sh.heap.(i) <- sh.heap.(j);
  sh.heap.(j) <- tmp

let heap_push sh nd =
  if sh.hsize = Array.length sh.heap then begin
    let cap = max 64 (2 * sh.hsize) in
    let bigger = Array.make cap nd in
    Array.blit sh.heap 0 bigger 0 sh.hsize;
    sh.heap <- bigger
  end;
  sh.heap.(sh.hsize) <- nd;
  sh.hsize <- sh.hsize + 1;
  let i = ref (sh.hsize - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if sh.heap.(p).parent_bound > sh.heap.(!i).parent_bound then begin
      heap_swap sh p !i;
      i := p
    end
    else continue := false
  done

let heap_pop sh =
  let top = sh.heap.(0) in
  sh.hsize <- sh.hsize - 1;
  sh.heap.(0) <- sh.heap.(sh.hsize);
  let i = ref 0 and continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < sh.hsize && sh.heap.(l).parent_bound < sh.heap.(!s).parent_bound then
      s := l;
    if r < sh.hsize && sh.heap.(r).parent_bound < sh.heap.(!s).parent_bound then
      s := r;
    if !s <> !i then begin
      heap_swap sh !s !i;
      i := !s
    end
    else continue := false
  done;
  top

let push_frontier sh nd =
  Mutex.lock sh.fmutex;
  heap_push sh nd;
  Condition.signal sh.fcond;
  Mutex.unlock sh.fmutex

(* Wind the search down (limit, unbounded root, numerical dead end). The
   flag is set under the frontier mutex so no waiter can miss the
   broadcast between testing the predicate and blocking. *)
let request_stop sh =
  Mutex.lock sh.fmutex;
  Atomic.set sh.stop true;
  Condition.broadcast sh.fcond;
  Mutex.unlock sh.fmutex

(* Pop the globally best-bound node, blocking while other workers might
   still produce work. Returns [None] exactly when the search is over:
   stop requested, or frontier empty with every worker idle. *)
let take sh =
  Mutex.lock sh.fmutex;
  let rec wait () =
    if Atomic.get sh.stop then None
    else if sh.hsize > 0 then Some (heap_pop sh)
    else if sh.busy = 0 then None
    else begin
      Condition.wait sh.fcond sh.fmutex;
      wait ()
    end
  in
  let nd = wait () in
  (match nd with
  | Some _ -> sh.busy <- sh.busy + 1
  | None -> Condition.broadcast sh.fcond);
  Mutex.unlock sh.fmutex;
  nd

let release_busy sh =
  Mutex.lock sh.fmutex;
  sh.busy <- sh.busy - 1;
  if sh.busy = 0 && sh.hsize = 0 then Condition.broadcast sh.fcond;
  Mutex.unlock sh.fmutex

let out_of_time sh =
  match sh.deadline with None -> false | Some d -> now () > d

(* New incumbent. The objective [Atomic] is only ever lowered, with a CAS
   retry loop so a concurrent reader can never observe it move up; the
   (objective, point) pair is kept consistent under [imutex]. Writers
   also hold [imutex] around the CAS, so the pair and the atomic agree
   whenever the mutex is free. *)
let record_incumbent sh obj x =
  if obj < Atomic.get sh.best_obj -. 1e-9 then begin
    Mutex.lock sh.imutex;
    let better =
      match sh.best with
      | Some (b, _) -> obj < b -. 1e-9
      | None -> obj < Atomic.get sh.best_obj -. 1e-9
    in
    if better then begin
      sh.best <- Some (obj, Array.copy x);
      let rec lower () =
        let cur = Atomic.get sh.best_obj in
        if obj < cur && not (Atomic.compare_and_set sh.best_obj cur obj) then
          lower ()
      in
      lower ();
      if sh.prm.log then
        Log.info (fun m ->
            m "node %d: incumbent %.6g" (Atomic.get sh.nodes) obj)
    end;
    Mutex.unlock sh.imutex
  end

let update_pseudocost sh nd obj =
  if nd.pc_var >= 0 then begin
    let unit = Float.max 0.0 (obj -. nd.parent_bound) /. nd.pc_frac in
    Mutex.lock sh.pmutex;
    if nd.pc_up then begin
      sh.pc_sum_up.(nd.pc_var) <- sh.pc_sum_up.(nd.pc_var) +. unit;
      sh.pc_cnt_up.(nd.pc_var) <- sh.pc_cnt_up.(nd.pc_var) + 1
    end
    else begin
      sh.pc_sum_dn.(nd.pc_var) <- sh.pc_sum_dn.(nd.pc_var) +. unit;
      sh.pc_cnt_dn.(nd.pc_var) <- sh.pc_cnt_dn.(nd.pc_var) + 1
    end;
    Mutex.unlock sh.pmutex
  end

(* Pseudo-cost branching (product of estimated up/down degradations) over
   the variables whose both directions have been observed; variables
   without history score with the [most_fractional] rule. A reliable
   pseudo-cost pick always wins over the fallback. *)
let branch_var sh x =
  let tol = sh.prm.integrality_tol in
  let best_pc = ref None and best_mf = ref None in
  Mutex.lock sh.pmutex;
  Array.iteri
    (fun j (v : Lp.var) ->
      if v.Lp.kind = Lp.Integer then begin
        let f = x.(j) -. Float.floor x.(j) in
        let dist = Float.min f (1.0 -. f) in
        if dist > tol then begin
          let mf = dist *. (1.0 +. Float.abs v.Lp.obj) in
          (match !best_mf with
          | Some (_, s) when s >= mf -> ()
          | Some _ | None -> best_mf := Some (j, mf));
          if sh.pc_cnt_dn.(j) > 0 && sh.pc_cnt_up.(j) > 0 then begin
            let dn =
              sh.pc_sum_dn.(j) /. float_of_int sh.pc_cnt_dn.(j) *. f
            in
            let up =
              sh.pc_sum_up.(j) /. float_of_int sh.pc_cnt_up.(j) *. (1.0 -. f)
            in
            let score = Float.max dn 1e-12 *. Float.max up 1e-12 in
            match !best_pc with
            | Some (_, s) when s >= score -> ()
            | Some _ | None -> best_pc := Some (j, score)
          end
        end
      end)
    sh.lp.Lp.vars;
  Mutex.unlock sh.pmutex;
  match (!best_pc, !best_mf) with
  | Some (j, _), _ -> Some j
  | None, Some (j, _) -> Some j
  | None, None -> None

(* Children of a branching: the rounding-preferred side is returned first
   and kept by the worker (plunging — a local DFS dive that reuses the hot
   warm basis); the sibling goes to the shared best-bound frontier where
   any worker may steal it. *)
let children nd (res : Simplex.result) j wid =
  let xj = res.Simplex.x.(j) in
  let fl = Float.floor xj and ce = Float.ceil xj in
  let f = xj -. fl in
  let mk deltas pc_up pc_frac =
    {
      deltas;
      depth = nd.depth + 1;
      parent_bound = res.Simplex.objective;
      warm = Some res.Simplex.basis;
      pc_var = j;
      pc_up;
      pc_frac;
      pusher = wid;
    }
  in
  let down = mk (Lowered_up { bvar = j; bval = fl; parent = nd.deltas }) false f in
  let up = mk (Raised_lo { bvar = j; bval = ce; parent = nd.deltas }) true (1.0 -. f) in
  if f <= 0.5 then (down, up) else (up, down)

let solve_lp sh inst warm lo up =
  let sp = sh.prm.simplex in
  let attempt basis =
    let params =
      {
        sp with
        Simplex.Params.basis;
        lower = Some lo;
        upper = Some up;
        deadline_s =
          (* the B&B time limit wins over any caller-supplied deadline *)
          (match sh.deadline with
          | Some _ as d -> d
          | None -> sp.Simplex.Params.deadline_s);
      }
    in
    Simplex.Instance.solve ~params inst
  in
  match attempt warm with
  | r -> Some r
  | exception Simplex.Numerical_failure _ when out_of_time sh ->
    (* past the global budget: do not even try a cold re-solve *)
    None
  | exception Simplex.Numerical_failure _ -> (
    (* A stale warm basis occasionally defeats the factorisation; a cold
       start is slower but always well-posed. If even that fails, the
       node cannot be resolved safely: the search degrades to a limit. *)
    match attempt None with
    | r -> Some r
    | exception Simplex.Numerical_failure _ -> None)

(* Process one node; the result is the child to plunge into, or [None]
   when this subtree is exhausted, pruned, or the search is stopping.
   Mirrors the serial solver exactly: limits are checked before the node
   counts, and a node that cannot be processed (limit, numerical dead
   end, wind-down) goes back to the frontier so the final best bound
   stays honest. *)
let process sh wid inst lo up nd =
  if Atomic.get sh.stop then begin
    push_frontier sh nd;
    None
  end
  else if Atomic.get sh.nodes >= sh.prm.max_nodes || out_of_time sh then begin
    push_frontier sh nd;
    Atomic.set sh.hit_limit true;
    request_stop sh;
    None
  end
  else begin
    Atomic.incr sh.nodes;
    if sh.round_bound nd.parent_bound < Atomic.get sh.best_obj -. 1e-9 then begin
      materialize ~root_lo:sh.root_lo ~root_up:sh.root_up lo up nd.deltas;
      match solve_lp sh inst nd.warm lo up with
      | None ->
        push_frontier sh nd;
        Atomic.set sh.hit_limit true;
        request_stop sh;
        None
      | Some res -> (
        ignore (Atomic.fetch_and_add sh.iters res.Simplex.iterations);
        ignore (Atomic.fetch_and_add sh.btran_saved res.Simplex.btran_saved);
        if nd.depth = 0 then begin
          Mutex.lock sh.rmutex;
          sh.root_info <-
            Some
              ( res.Simplex.iterations,
                res.Simplex.bound_flips,
                res.Simplex.warm,
                if res.Simplex.status = Simplex.Optimal then
                  Some res.Simplex.basis
                else None );
          Mutex.unlock sh.rmutex
        end;
        match res.Simplex.status with
        | Simplex.Infeasible -> None
        | Simplex.Unbounded ->
          (* bounds only tighten below the root, so an unbounded child
             implies an unbounded root; treat conservatively *)
          Atomic.set sh.root_unbounded true;
          request_stop sh;
          None
        | Simplex.Optimal ->
          update_pseudocost sh nd res.Simplex.objective;
          let bound = sh.round_bound res.Simplex.objective in
          if bound < Atomic.get sh.best_obj -. 1e-9 then begin
            match branch_var sh res.Simplex.x with
            | None ->
              record_incumbent sh res.Simplex.objective res.Simplex.x;
              None
            | Some j ->
              let keep, defer = children nd res j wid in
              push_frontier sh defer;
              Some keep
          end
          else None)
    end
    else None
  end

(* Worker body, run on the calling domain (wid 0) and [jobs - 1] spawned
   domains. Each worker owns a private simplex instance and scratch bound
   arrays; shared nodes are immutable, so the only cross-domain traffic
   is the frontier, the incumbent and a few atomics. Returns the busy
   time: seconds spent holding a node, excluding frontier waits. *)
let worker sh wid () =
  let inst = Simplex.Instance.create sh.lp in
  let nv = Array.length sh.root_lo in
  let lo = Array.make nv 0.0 and up = Array.make nv 0.0 in
  let busy = ref 0.0 in
  let rec top () =
    match take sh with
    | None -> ()
    | Some nd ->
      if nd.pusher >= 0 && nd.pusher <> wid then Atomic.incr sh.steals;
      let t0 = now () in
      let rec plunge nd =
        match process sh wid inst lo up nd with
        | Some next -> plunge next
        | None -> ()
      in
      plunge nd;
      busy := !busy +. (now () -. t0);
      release_busy sh;
      top ()
  in
  top ();
  !busy

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec solve ?(params = default_params) ?(presolve = false) ?initial ?cutoff
    ?root_basis (lp : Lp.t) =
  if presolve then
    match Presolve.presolve lp with
    | Presolve.Infeasible _ ->
      {
        outcome = Infeasible;
        objective = infinity;
        x = Array.make (Lp.nvars lp) 0.0;
        nodes = 0;
        best_bound = infinity;
        simplex_iterations = 0;
        root_lp_iters = 0;
        root_bound_flips = 0;
        root_warm = `Cold;
        root_basis = None;
        workers = max 1 params.solver_jobs;
        steals = 0;
        solver_busy_s = 0.0;
        solver_wall_s = 0.0;
        dual_btran_saved = 0;
      }
    | Presolve.Reduced (lp', m) ->
      let offset = Presolve.objective_offset m in
      let initial = Option.map (Presolve.project m) initial in
      let cutoff = Option.map (fun c -> c -. offset) cutoff in
      (* A caller-supplied root basis is positional in [lp]'s columns and
         cannot survive the reduction; drop it rather than misapply it. *)
      let res = solve ~params ~presolve:false ?initial ?cutoff lp' in
      {
        res with
        objective = res.objective +. offset;
        best_bound = res.best_bound +. offset;
        root_basis = None;
        x = (if Array.length res.x = Lp.nvars lp' then Presolve.restore m res.x else res.x);
      }
  else solve_unreduced ~params ?initial ?cutoff ?root_basis lp

and solve_unreduced ~params ?initial ?cutoff ?root_basis (lp : Lp.t) =
  let n = Lp.nvars lp in
  let start = now () in
  let integral_obj = objective_is_integral lp in
  let round_bound b = if integral_obj then Float.ceil (b -. 1e-6) else b in
  let initial_best =
    match initial with
    | Some x0
      when Array.length x0 = n
           && Lp.is_feasible lp x0
           && Lp.is_integral ~tol:params.integrality_tol lp x0 ->
      let obj = Lp.objective_value lp x0 in
      if obj < Option.value cutoff ~default:infinity then
        Some (obj, Array.copy x0)
      else None
    | Some _ | None -> None
  in
  let best_obj0 =
    match initial_best with
    | Some (obj, _) -> obj
    | None -> Option.value cutoff ~default:infinity
  in
  (* The pool's deliberate non-clamping rationale applies here too: an
     oversubscribed solve time-slices, a clamped one silently loses its
     parallel path. The cap only guards absurd requests. *)
  let jobs = max 1 (min params.solver_jobs 128) in
  let root =
    {
      deltas = Root;
      depth = 0;
      parent_bound = neg_infinity;
      warm = root_basis;
      pc_var = -1;
      pc_up = false;
      pc_frac = 1.0;
      pusher = -1;
    }
  in
  let sh =
    {
      prm = params;
      lp;
      round_bound;
      root_lo = Array.map (fun (v : Lp.var) -> v.lower) lp.vars;
      root_up = Array.map (fun (v : Lp.var) -> v.upper) lp.vars;
      deadline = Option.map (fun l -> start +. l) params.time_limit_s;
      fmutex = Mutex.create ();
      fcond = Condition.create ();
      heap = [||];
      hsize = 0;
      busy = 0;
      stop = Atomic.make false;
      best_obj = Atomic.make best_obj0;
      imutex = Mutex.create ();
      best = initial_best;
      nodes = Atomic.make 0;
      iters = Atomic.make 0;
      btran_saved = Atomic.make 0;
      steals = Atomic.make 0;
      hit_limit = Atomic.make false;
      root_unbounded = Atomic.make false;
      rmutex = Mutex.create ();
      root_info = None;
      pmutex = Mutex.create ();
      pc_sum_dn = Array.make n 0.0;
      pc_cnt_dn = Array.make n 0;
      pc_sum_up = Array.make n 0.0;
      pc_cnt_up = Array.make n 0;
    }
  in
  heap_push sh root;
  let helpers =
    List.init (jobs - 1) (fun i -> Domain.spawn (worker sh (i + 1)))
  in
  let busy0 = worker sh 0 () in
  let solver_busy_s =
    List.fold_left (fun acc d -> acc +. Domain.join d) busy0 helpers
  in
  let solver_wall_s = now () -. start in
  (* Every worker has joined: the shared state is quiescent from here. *)
  let hit_limit = Atomic.get sh.hit_limit in
  let root_unbounded = Atomic.get sh.root_unbounded in
  let incumbent_obj = Atomic.get sh.best_obj in
  let best_bound =
    if root_unbounded then neg_infinity
    else begin
      let acc = ref incumbent_obj in
      for i = 0 to sh.hsize - 1 do
        acc := Float.min !acc (round_bound sh.heap.(i).parent_bound)
      done;
      !acc
    end
  in
  let frontier_empty = sh.hsize = 0 in
  let outcome, objective, x =
    if root_unbounded then (Unbounded, neg_infinity, Array.make n 0.0)
    else
      match sh.best with
      | Some (obj, bx) when (not hit_limit) && frontier_empty ->
        (Proved_optimal, obj, bx)
      | Some (obj, bx) -> (Feasible, obj, bx)
      | None when cutoff <> None && (not hit_limit) && frontier_empty ->
        (* nothing strictly better than the external solution exists *)
        (Proved_optimal, incumbent_obj, [||])
      | None when cutoff <> None -> (Feasible, incumbent_obj, [||])
      | None when (not hit_limit) && frontier_empty ->
        (Infeasible, infinity, Array.make n 0.0)
      | None -> (Unknown, infinity, Array.make n 0.0)
  in
  let root_lp_iters, root_bound_flips, root_warm, root_basis =
    Mutex.lock sh.rmutex;
    let info = sh.root_info in
    Mutex.unlock sh.rmutex;
    match info with
    | Some (it, flips, warm, b) -> (it, flips, warm, b)
    | None -> (0, 0, `Cold, None)
  in
  {
    outcome;
    objective;
    x;
    nodes = Atomic.get sh.nodes;
    best_bound;
    simplex_iterations = Atomic.get sh.iters;
    root_lp_iters;
    root_bound_flips;
    root_warm;
    root_basis;
    workers = jobs;
    steals = Atomic.get sh.steals;
    solver_busy_s;
    solver_wall_s;
    dual_btran_saved = Atomic.get sh.btran_saved;
  }
