(** Technology presets: the three technology / cell-architecture pairs the
    paper evaluates (N28-12T, N28-8T, N7-9T), plus the geometry helpers the
    rest of the system needs.

    Pitches follow the paper: 28nm has 100nm horizontal-layer pitch and
    136nm vertical-layer pitch (the placement grid); the prototype 7nm
    technology has 40nm pitch on M1-M6 (here represented in its 2.5x-scaled
    form, as the paper scales 7nm cells into the 28nm BEOL stack). *)

type t = {
  name : string;
  cell_height_tracks : int;  (** M2 routing tracks per cell row: 12 / 8 / 9 *)
  hpitch : int;  (** pitch of horizontal-layer tracks, nm (row spacing) *)
  vpitch : int;  (** pitch of vertical-layer tracks, nm (column spacing) *)
  num_layers : int;  (** routing layers available, counted from M2 *)
  via_weight : int;  (** via count weight in routing cost (paper: 4) *)
  pin_width : int;  (** typical M1 pin finger width, nm *)
  access_points_per_pin : int;  (** typical usable access points per pin *)
}

val n28_12t : t
val n28_8t : t
val n7_9t : t
val all : t list

(** [by_name "N28-8T"] looks a preset up; raises [Not_found] otherwise. *)
val by_name : string -> t

(** [stack tech rules] instantiates the BEOL stack M2..M(1+num_layers) with
    directions alternating from horizontal M2 and patterning resolved from
    the rule configuration. *)
val stack : t -> Rules.t -> Layer.t list

(** Cell row height in nm. *)
val row_height : t -> int

(** Number of DSA assembly colors available for via/cut masks under the
    RULE12+ family (Ait-Ferhat et al.): 2 on the 28nm flows, 3 on the
    scaled 7nm flow. Derived, not stored — [canonical] is unchanged. *)
val dsa_colors : t -> int

(** Chebyshev distance (in tracks, same cut layer) within which two vias
    conflict for DSA coloring purposes. *)
val dsa_pitch_tracks : t -> int

(** Dimensions of the paper's 1.0um x 1.0um clip in tracks for this
    technology: (columns of vertical tracks, rows of horizontal tracks). *)
val clip_tracks_1um : t -> int * int

(** Canonical single-line text of every field, in a fixed order — the
    [Tech.t] component of content-addressed cache keys. Stable by
    contract: changing its format requires bumping the cache-key version
    (see [Optrouter_serve.Cache]). *)
val canonical : t -> string

val pp : Format.formatter -> t -> unit
