type via_restriction = No_blocking | Orthogonal | Orthogonal_diagonal

type objective = Wirelength | Via_weighted of float | Via_count

type t = {
  name : string;
  sadp_from : int option;
  via_restriction : via_restriction;
  dsa : bool;
  objective : objective;
}

let make name sadp_from via_restriction dsa =
  { name; sadp_from; via_restriction; dsa; objective = Wirelength }

let rule = function
  | 1 -> make "RULE1" None No_blocking false
  | 2 -> make "RULE2" (Some 2) No_blocking false
  | 3 -> make "RULE3" (Some 3) No_blocking false
  | 4 -> make "RULE4" (Some 4) No_blocking false
  | 5 -> make "RULE5" (Some 5) No_blocking false
  | 6 -> make "RULE6" None Orthogonal false
  | 7 -> make "RULE7" (Some 2) Orthogonal false
  | 8 -> make "RULE8" (Some 3) Orthogonal false
  | 9 -> make "RULE9" None Orthogonal_diagonal false
  | 10 -> make "RULE10" (Some 2) Orthogonal_diagonal false
  | 11 -> make "RULE11" (Some 3) Orthogonal_diagonal false
  (* RULE12+: DSA/multi-patterning via coloring (Ait-Ferhat et al.) —
     adjacent vias on the same cut layer must take distinct assembly
     colors, alone (12), on top of SADP from M3 (13), or on top of the
     orthogonal blocking restriction (14). *)
  | 12 -> make "RULE12" None No_blocking true
  | 13 -> make "RULE13" (Some 3) No_blocking true
  | 14 -> make "RULE14" None Orthogonal true
  | n -> invalid_arg (Printf.sprintf "Rules.rule: RULE%d does not exist" n)

let all = List.init 14 (fun i -> rule (i + 1))

let with_objective objective t = { t with objective }

(* N7-9T pins have only two access points close together; rules that need
   diagonal via adjacency (SADP from M2, or any 4/8-neighbour blocking
   beyond RULE6/RULE8) are not evaluable there — Section 4.1. DSA
   coloring never forbids a via placement outright (it only constrains
   mask assignment), so RULE12..14 stay evaluable everywhere. *)
let applicable ~tech_name t =
  if String.length tech_name >= 2 && String.sub tech_name 0 2 = "N7" then
    match t.name with
    | "RULE2" | "RULE7" | "RULE9" | "RULE10" | "RULE11" -> false
    | _ -> true
  else true

let blocked_neighbour_offsets = function
  | No_blocking -> []
  | Orthogonal -> [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
  | Orthogonal_diagonal ->
    [ (1, 0); (-1, 0); (0, 1); (0, -1); (1, 1); (1, -1); (-1, 1); (-1, -1) ]

let patterning_of t ~metal =
  match t.sadp_from with
  | Some m when metal >= m -> Layer.Sadp
  | Some _ | None -> Layer.Lele

(* ------------------------------------------------------------------ *)
(* Objective semantics                                                 *)
(* ------------------------------------------------------------------ *)

(* [objective_coeff obj ~via ~cost] is the ILP objective coefficient of
   an edge whose standard routing cost is [cost]; [via] marks the
   cost-carrying via edges (single-site vias and via-shape lower edges —
   exactly the edges [Route.metrics] counts as via instances).
   [Wirelength] is the paper's default combined objective (wire segments
   at 1, vias at their weighted cost); [Via_weighted w] rescales only
   the via component by [w]; [Via_count] isolates it, one unit per via
   instance. *)
let objective_coeff obj ~via ~cost =
  match obj with
  | Wirelength -> float_of_int cost
  | Via_weighted w -> if via then w *. float_of_int cost else float_of_int cost
  | Via_count -> if via then 1.0 else 0.0

(* The same objective evaluated from solution metrics. Exact by
   construction: [cost - wirelength] is precisely the sum of via-edge
   costs, and [vias] the number of via instances. *)
let objective_value obj ~wirelength ~vias ~cost =
  match obj with
  | Wirelength -> float_of_int cost
  | Via_weighted w ->
    float_of_int wirelength +. (w *. float_of_int (cost - wirelength))
  | Via_count -> float_of_int vias

(* Whether every objective coefficient is integral — when true a dual
   bound may be lifted to the next integer (used by the Lagrangian
   mode; the MILP detects the same property per-LP). *)
let objective_integral = function
  | Wirelength | Via_count -> true
  | Via_weighted w -> Float.is_integer w

let objective_name = function
  | Wirelength -> "wirelength"
  | Via_weighted w -> Printf.sprintf "via-weighted:%.17g" w
  | Via_count -> "via-count"

let objective_of_name s =
  match s with
  | "wirelength" -> Ok Wirelength
  | "via-count" -> Ok Via_count
  | _ ->
    let prefix = "via-weighted:" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match float_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some w when Float.is_finite w && w >= 0.0 -> Ok (Via_weighted w)
      | Some _ | None -> Error (Printf.sprintf "bad via weight in %S" s)
    else
      Error
        (Printf.sprintf
           "unknown objective %S (wirelength, via-count, via-weighted:<w>)" s)

(* Canonical text for content-addressed keys: every field that changes
   the feasible set or the objective, in a fixed order and spelling.
   Unlike [pp] (display output, free to evolve), this string is part of
   the serve cache's key format and must only change together with the
   key version. The [dsa]/[objective] suffixes appear only when they
   differ from the defaults, so every legacy rule set keeps its exact
   pre-RULE12 spelling (pinned by golden tests). *)
let canonical t =
  let base =
    Printf.sprintf "rule=%s;sadp_from=%s;via_restriction=%s" t.name
      (match t.sadp_from with None -> "none" | Some m -> string_of_int m)
      (match t.via_restriction with
      | No_blocking -> "none"
      | Orthogonal -> "orthogonal"
      | Orthogonal_diagonal -> "orthogonal+diagonal")
  in
  let base = if t.dsa then base ^ ";dsa=true" else base in
  match t.objective with
  | Wirelength -> base
  | obj -> base ^ ";objective=" ^ objective_name obj

let of_canonical s =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ';' s in
  let lookup key =
    let prefix = key ^ "=" in
    let plen = String.length prefix in
    List.find_map
      (fun f ->
        if String.length f >= plen && String.sub f 0 plen = prefix then
          Some (String.sub f plen (String.length f - plen))
        else None)
      fields
  in
  let* name =
    match lookup "rule" with
    | Some n -> Ok n
    | None -> Error "missing rule= field"
  in
  let* sadp_from =
    match lookup "sadp_from" with
    | Some "none" -> Ok None
    | Some m -> (
      match int_of_string_opt m with
      | Some m -> Ok (Some m)
      | None -> Error (Printf.sprintf "bad sadp_from %S" m))
    | None -> Error "missing sadp_from= field"
  in
  let* via_restriction =
    match lookup "via_restriction" with
    | Some "none" -> Ok No_blocking
    | Some "orthogonal" -> Ok Orthogonal
    | Some "orthogonal+diagonal" -> Ok Orthogonal_diagonal
    | Some v -> Error (Printf.sprintf "bad via_restriction %S" v)
    | None -> Error "missing via_restriction= field"
  in
  let* dsa =
    match lookup "dsa" with
    | None -> Ok false
    | Some "true" -> Ok true
    | Some v -> Error (Printf.sprintf "bad dsa %S" v)
  in
  let* objective =
    match lookup "objective" with
    | None -> Ok Wirelength
    | Some o -> objective_of_name o
  in
  Ok { name; sadp_from; via_restriction; dsa; objective }

let pp ppf t =
  let sadp =
    match t.sadp_from with
    | None -> "no SADP"
    | Some m -> Printf.sprintf "SADP >= M%d" m
  in
  let blocked =
    match t.via_restriction with
    | No_blocking -> 0
    | Orthogonal -> 4
    | Orthogonal_diagonal -> 8
  in
  Format.fprintf ppf "%s (%s, %d neighbours blocked%s%s)" t.name sadp blocked
    (if t.dsa then ", DSA via coloring" else "")
    (match t.objective with
    | Wirelength -> ""
    | obj -> ", objective " ^ objective_name obj)
