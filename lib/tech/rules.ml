type via_restriction = No_blocking | Orthogonal | Orthogonal_diagonal

type t = {
  name : string;
  sadp_from : int option;
  via_restriction : via_restriction;
}

let rule = function
  | 1 -> { name = "RULE1"; sadp_from = None; via_restriction = No_blocking }
  | 2 -> { name = "RULE2"; sadp_from = Some 2; via_restriction = No_blocking }
  | 3 -> { name = "RULE3"; sadp_from = Some 3; via_restriction = No_blocking }
  | 4 -> { name = "RULE4"; sadp_from = Some 4; via_restriction = No_blocking }
  | 5 -> { name = "RULE5"; sadp_from = Some 5; via_restriction = No_blocking }
  | 6 -> { name = "RULE6"; sadp_from = None; via_restriction = Orthogonal }
  | 7 -> { name = "RULE7"; sadp_from = Some 2; via_restriction = Orthogonal }
  | 8 -> { name = "RULE8"; sadp_from = Some 3; via_restriction = Orthogonal }
  | 9 ->
    { name = "RULE9"; sadp_from = None; via_restriction = Orthogonal_diagonal }
  | 10 ->
    {
      name = "RULE10";
      sadp_from = Some 2;
      via_restriction = Orthogonal_diagonal;
    }
  | 11 ->
    {
      name = "RULE11";
      sadp_from = Some 3;
      via_restriction = Orthogonal_diagonal;
    }
  | n -> invalid_arg (Printf.sprintf "Rules.rule: RULE%d does not exist" n)

let all = List.init 11 (fun i -> rule (i + 1))

(* N7-9T pins have only two access points close together; rules that need
   diagonal via adjacency (SADP from M2, or any 4/8-neighbour blocking
   beyond RULE6/RULE8) are not evaluable there — Section 4.1. *)
let applicable ~tech_name t =
  if String.length tech_name >= 2 && String.sub tech_name 0 2 = "N7" then
    match t.name with
    | "RULE2" | "RULE7" | "RULE9" | "RULE10" | "RULE11" -> false
    | _ -> true
  else true

let blocked_neighbour_offsets = function
  | No_blocking -> []
  | Orthogonal -> [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
  | Orthogonal_diagonal ->
    [ (1, 0); (-1, 0); (0, 1); (0, -1); (1, 1); (1, -1); (-1, 1); (-1, -1) ]

let patterning_of t ~metal =
  match t.sadp_from with
  | Some m when metal >= m -> Layer.Sadp
  | Some _ | None -> Layer.Lele

(* Canonical text for content-addressed keys: every field that changes
   the feasible set, in a fixed order and spelling. Unlike [pp] (display
   output, free to evolve), this string is part of the serve cache's key
   format and must only change together with the key version. *)
let canonical t =
  Printf.sprintf "rule=%s;sadp_from=%s;via_restriction=%s" t.name
    (match t.sadp_from with None -> "none" | Some m -> string_of_int m)
    (match t.via_restriction with
    | No_blocking -> "none"
    | Orthogonal -> "orthogonal"
    | Orthogonal_diagonal -> "orthogonal+diagonal")

let pp ppf t =
  let sadp =
    match t.sadp_from with
    | None -> "no SADP"
    | Some m -> Printf.sprintf "SADP >= M%d" m
  in
  let blocked =
    match t.via_restriction with
    | No_blocking -> 0
    | Orthogonal -> 4
    | Orthogonal_diagonal -> 8
  in
  Format.fprintf ppf "%s (%s, %d neighbours blocked)" t.name sadp blocked
