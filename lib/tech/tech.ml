type t = {
  name : string;
  cell_height_tracks : int;
  hpitch : int;
  vpitch : int;
  num_layers : int;
  via_weight : int;
  pin_width : int;
  access_points_per_pin : int;
}

let n28_12t =
  {
    name = "N28-12T";
    cell_height_tracks = 12;
    hpitch = 100;
    vpitch = 136;
    num_layers = 8;
    via_weight = 4;
    pin_width = 50;
    access_points_per_pin = 5;
  }

let n28_8t =
  {
    name = "N28-8T";
    cell_height_tracks = 8;
    hpitch = 100;
    vpitch = 136;
    num_layers = 8;
    via_weight = 4;
    pin_width = 50;
    access_points_per_pin = 4;
  }

(* The paper scales the 7nm cells by 2.5x into the 28nm BEOL stack, so the
   physical pitches match N28; what distinguishes N7-9T is the 9-track cell
   and the tiny two-access-point pins (Figure 9(c)). *)
let n7_9t =
  {
    name = "N7-9T";
    cell_height_tracks = 9;
    hpitch = 100;
    vpitch = 136;
    num_layers = 8;
    via_weight = 4;
    pin_width = 24;
    access_points_per_pin = 2;
  }

let all = [ n28_12t; n28_8t; n7_9t ]

let by_name name =
  match List.find_opt (fun t -> String.equal t.name name) all with
  | Some t -> t
  | None -> raise Not_found

let stack t rules =
  List.init t.num_layers (fun i ->
      let metal = i + 2 in
      {
        Layer.metal;
        dir = Layer.direction_of_metal metal;
        pitch =
          (match Layer.direction_of_metal metal with
          | Layer.Horizontal -> t.hpitch
          | Layer.Vertical -> t.vpitch);
        patterning = Rules.patterning_of rules ~metal;
      })

let row_height t = t.cell_height_tracks * t.hpitch

(* DSA multi-patterning parameters (Ait-Ferhat et al., RULE12+). The
   28nm flows print cut masks with two assembly colors; the scaled 7nm
   flow's tighter cut pitch needs a third. Derived from the preset name
   rather than stored, so [Tech.t] (and [canonical] below) is unchanged
   and every legacy cache key stays byte-identical. *)
let dsa_colors t =
  if String.length t.name >= 2 && String.sub t.name 0 2 = "N7" then 3 else 2

(* Vias within one track of each other (Chebyshev, same cut layer)
   conflict: they cannot share an assembly color. *)
let dsa_pitch_tracks _t = 1

let clip_tracks_1um t = (1000 / t.vpitch, 1000 / t.hpitch)

(* Canonical text for content-addressed keys: every field, fixed order.
   Part of the serve cache's key format — changes require a key-version
   bump (unlike [pp], which is free-form display output). *)
let canonical t =
  Printf.sprintf
    "tech=%s;cell_height_tracks=%d;hpitch=%d;vpitch=%d;num_layers=%d;via_weight=%d;pin_width=%d;access_points_per_pin=%d"
    t.name t.cell_height_tracks t.hpitch t.vpitch t.num_layers t.via_weight
    t.pin_width t.access_points_per_pin

let pp ppf t =
  Format.fprintf ppf "%s (%dT, hpitch %dnm, vpitch %dnm, %d layers)" t.name
    t.cell_height_tracks t.hpitch t.vpitch t.num_layers
