(** BEOL design-rule configurations (Table 3 of the paper, plus the
    RULE12+ DSA/multi-patterning family and the objective modes).

    A configuration combines (i) the lowest metal layer from which SADP
    patterning (and its end-of-line rules) applies, (ii) a via adjacency
    restriction, (iii) whether DSA via-coloring applies (adjacent vias on
    a cut layer must take distinct assembly colors — Ait-Ferhat et al.),
    and (iv) the routing objective. RULE1 — all-LELE, no via restriction,
    default objective — is the baseline that every Δcost in the
    evaluation is measured against. *)

(** How many neighbouring via sites a placed via blocks. *)
type via_restriction =
  | No_blocking  (** 0 neighbours blocked *)
  | Orthogonal  (** N, E, S, W neighbours blocked *)
  | Orthogonal_diagonal  (** plus NE, NW, SE, SW *)

(** The routing objective. [Wirelength] is the paper's combined default
    (wire segments at unit cost, vias at their weighted cost);
    [Via_weighted w] rescales the via component of that objective by
    [w]; [Via_count] minimises the number of via instances alone. *)
type objective = Wirelength | Via_weighted of float | Via_count

type t = {
  name : string;  (** "RULE1" .. "RULE14" or a custom label *)
  sadp_from : int option;  (** [Some m]: SADP on every layer >= Mm *)
  via_restriction : via_restriction;
  dsa : bool;
      (** DSA via coloring: the conflict graph of placed vias (within
          the technology's DSA pitch on the same cut layer) must be
          colorable with the technology's color count *)
  objective : objective;
}

(** [rule n] is RULEn for n in 1..14, per Table 3 (1..11) and the DSA
    extension (12..14):
    - RULE1: no SADP, 0 blocked;
    - RULE2..5: SADP >= M2..M5, 0 blocked;
    - RULE6: no SADP, 4 blocked;
    - RULE7, 8: SADP >= M2, M3, 4 blocked;
    - RULE9: no SADP, 8 blocked;
    - RULE10, 11: SADP >= M2, M3, 8 blocked;
    - RULE12: DSA via coloring alone;
    - RULE13: DSA + SADP >= M3;
    - RULE14: DSA + 4 blocked.
    All with the default [Wirelength] objective.
    Raises [Invalid_argument] outside 1..14. *)
val rule : int -> t

val all : t list

(** [with_objective obj t] is [t] solved under objective [obj]. *)
val with_objective : objective -> t -> t

(** Rules evaluated on each technology: the paper skips RULE2, 7, 9, 10 and
    11 on N7-9T because its small pin shapes do not admit the diagonal via
    placements those rules require. DSA rules are evaluable everywhere. *)
val applicable : tech_name:string -> t -> bool

(** Offsets of the via sites blocked by a via placed at the origin. *)
val blocked_neighbour_offsets : via_restriction -> (int * int) list

(** [patterning_of rules ~metal] resolves a layer's patterning. *)
val patterning_of : t -> metal:int -> Layer.patterning

(** {2 Objective semantics} *)

(** [objective_coeff obj ~via ~cost] is the ILP objective coefficient of
    an edge with standard routing cost [cost]; [via] marks cost-carrying
    via edges (single-site vias and via-shape lower edges). *)
val objective_coeff : objective -> via:bool -> cost:int -> float

(** [objective_value obj ~wirelength ~vias ~cost] evaluates the
    objective from solution metrics — exact, since
    [cost - wirelength] is the summed via-edge cost and [vias] the via
    instance count. *)
val objective_value : objective -> wirelength:int -> vias:int -> cost:int -> float

(** Whether every objective coefficient is integral (enables integer
    lifting of dual bounds). *)
val objective_integral : objective -> bool

(** Stable objective spelling ("wirelength", "via-count",
    "via-weighted:<w>") and its inverse. *)
val objective_name : objective -> string

val objective_of_name : string -> (objective, string) result

(** Canonical single-line text of every result-relevant field, in a fixed
    order — the [Rules.t] component of content-addressed cache keys.
    Stable by contract: changing its format requires bumping the cache-key
    version (see [Optrouter_serve.Cache]). Non-default [dsa]/[objective]
    values append [;dsa=true] / [;objective=...] suffixes; legacy rule
    sets keep their exact historical spelling. *)
val canonical : t -> string

(** Parse [canonical] output back; [Error] on malformed text. *)
val of_canonical : string -> (t, string) result

val pp : Format.formatter -> t -> unit
