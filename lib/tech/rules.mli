(** BEOL design-rule configurations (Table 3 of the paper).

    A configuration combines (i) the lowest metal layer from which SADP
    patterning (and its end-of-line rules) applies, and (ii) a via adjacency
    restriction. RULE1 — all-LELE, no via restriction — is the baseline that
    every Δcost in the evaluation is measured against. *)

(** How many neighbouring via sites a placed via blocks. *)
type via_restriction =
  | No_blocking  (** 0 neighbours blocked *)
  | Orthogonal  (** N, E, S, W neighbours blocked *)
  | Orthogonal_diagonal  (** plus NE, NW, SE, SW *)

type t = {
  name : string;  (** "RULE1" .. "RULE11" or a custom label *)
  sadp_from : int option;  (** [Some m]: SADP on every layer >= Mm *)
  via_restriction : via_restriction;
}

(** [rule n] is RULEn for n in 1..11, per Table 3:
    - RULE1: no SADP, 0 blocked;
    - RULE2..5: SADP >= M2..M5, 0 blocked;
    - RULE6: no SADP, 4 blocked;
    - RULE7, 8: SADP >= M2, M3, 4 blocked;
    - RULE9: no SADP, 8 blocked;
    - RULE10, 11: SADP >= M2, M3, 8 blocked.
    Raises [Invalid_argument] outside 1..11. *)
val rule : int -> t

val all : t list

(** Rules evaluated on each technology: the paper skips RULE2, 7, 9, 10 and
    11 on N7-9T because its small pin shapes do not admit the diagonal via
    placements those rules require. *)
val applicable : tech_name:string -> t -> bool

(** Offsets of the via sites blocked by a via placed at the origin. *)
val blocked_neighbour_offsets : via_restriction -> (int * int) list

(** [patterning_of rules ~metal] resolves a layer's patterning. *)
val patterning_of : t -> metal:int -> Layer.patterning

(** Canonical single-line text of every result-relevant field, in a fixed
    order — the [Rules.t] component of content-addressed cache keys.
    Stable by contract: changing its format requires bumping the cache-key
    version (see [Optrouter_serve.Cache]). *)
val canonical : t -> string

val pp : Format.formatter -> t -> unit
