module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Rules = Optrouter_tech.Rules
module Route = Optrouter_grid.Route
module Drc = Optrouter_grid.Drc
module Log = Optrouter_report.Report.Log

type params = { restarts : int; rip_up_rounds : int; seed : int }

let default_params = { restarts = 8; rip_up_rounds = 4; seed = 7 }

type result = {
  solution : Route.solution option;
  restarts_used : int;
  rip_ups : int;
}

type state = {
  g : Graph.t;
  rules : Rules.t;
  edge_owner : int array;
  vertex_owner : int array;  (** grid vertices only *)
  penalty : float array;
      (** per edge, from violation repair rounds: penalising the offending
          edges (not vertices) lets a route still reach a pin vertex by a
          via stack while making the conflicting wire arrival expensive *)
  jitter : float array;
      (** per-edge random cost noise, fresh per restart: diversifies the
          first nets' paths so later nets see different congestion *)
  pin_owner : int array;
      (** per z=0 grid vertex: the net owning an access point there, or
          -1. Other nets must not wire across a pin location — the ILP
          discovers this through vertex exclusivity, a greedy search has
          to be told. *)
  ngrid : int;
}

let allowed (g : Graph.t) k gid =
  match g.edges.(gid).Graph.net_only with None -> true | Some k' -> k = k'

let grid_coords st v =
  let cols = st.g.clip.Clip.cols and rows = st.g.clip.Clip.rows in
  let z = v / (cols * rows) in
  let rem = v mod (cols * rows) in
  (rem mod cols, rem / cols, z)

(* A via may not be placed next to any already-placed via (own or foreign)
   under an adjacency restriction. *)
let via_placement_ok st gid =
  let offsets () =
    Rules.blocked_neighbour_offsets st.rules.Rules.via_restriction
  in
  let cols = st.g.clip.Clip.cols and rows = st.g.clip.Clip.rows in
  match st.g.edges.(gid).Graph.kind with
  | Graph.Wire _ | Graph.Shape_lower _ | Graph.Shape_upper _ -> true
  | Graph.Access -> (
    (* an access edge is a V12 via: no other used access point nearby *)
    let offsets = offsets () in
    offsets = []
    ||
    let e = st.g.edges.(gid) in
    let grid_end = if e.Graph.u < st.ngrid then e.Graph.u else e.Graph.v in
    if grid_end >= cols * rows then true
    else
      let x, y, _ = grid_coords st grid_end in
      List.for_all
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' < 0 || x' >= cols || y' < 0 || y' >= rows then true
          else
            List.for_all
              (fun other -> st.edge_owner.(other) < 0)
              st.g.access_sites.((y' * cols) + x'))
        offsets)
  | Graph.Via _ ->
    let offsets = offsets () in
    offsets = []
    ||
    let x, y, z = grid_coords st st.g.edges.(gid).Graph.u in
    List.for_all
      (fun (dx, dy) ->
        let x' = x + dx and y' = y + dy in
        if x' < 0 || x' >= cols || y' < 0 || y' >= rows then true
        else
          match st.g.via_site.(((z * rows) + y') * cols + x') with
          | None -> true
          | Some other -> st.edge_owner.(other) < 0)
      offsets

let edge_usable st k gid dst =
  allowed st.g k gid
  && st.edge_owner.(gid) < 0
  && (dst >= st.ngrid || st.vertex_owner.(dst) < 0 || st.vertex_owner.(dst) = k)
  && (dst >= Array.length st.pin_owner
     || st.pin_owner.(dst) < 0
     || st.pin_owner.(dst) = k)
  && via_placement_ok st gid

(* Multi-source Dijkstra from the net's committed tree to the nearest
   unreached sink. Returns the edge list of the found path. *)
let search st k sources targets =
  let n = st.g.nverts in
  let dist = Array.make n infinity in
  let prev_edge = Array.make n (-1) in
  let q = Pqueue.create () in
  List.iter
    (fun v ->
      dist.(v) <- 0.0;
      Pqueue.push q 0.0 v)
    sources;
  let target_set = Hashtbl.create 4 in
  List.iter (fun t -> Hashtbl.replace target_set t ()) targets;
  let found = ref None in
  (try
     while not (Pqueue.is_empty q) do
       let d, v = Pqueue.pop q in
       if d <= dist.(v) then begin
         if Hashtbl.mem target_set v then begin
           found := Some v;
           raise Exit
         end;
         Array.iter
           (fun (gid, other) ->
             if edge_usable st k gid other then begin
               let nd =
                 d
                 +. float_of_int st.g.edges.(gid).Graph.cost
                 +. st.penalty.(gid) +. st.jitter.(gid)
               in
               if nd < dist.(other) then begin
                 dist.(other) <- nd;
                 prev_edge.(other) <- gid;
                 Pqueue.push q nd other
               end
             end)
           st.g.adj.(v)
       end
     done
   with Exit -> ());
  match !found with
  | None -> None
  | Some t ->
    let rec backtrack v acc =
      let gid = prev_edge.(v) in
      if gid < 0 then acc
      else begin
        let e = st.g.edges.(gid) in
        let u = Graph.other_end st.g e v in
        if dist.(u) = 0.0 && prev_edge.(u) < 0 then gid :: acc
        else backtrack u (gid :: acc)
      end
    in
    Some (t, backtrack t [])

let commit st k edges =
  List.iter
    (fun gid ->
      st.edge_owner.(gid) <- k;
      let e = st.g.edges.(gid) in
      if e.Graph.u < st.ngrid then st.vertex_owner.(e.Graph.u) <- k;
      if e.Graph.v < st.ngrid then st.vertex_owner.(e.Graph.v) <- k)
    edges

let rip st k =
  Array.iteri
    (fun gid owner -> if owner = k then st.edge_owner.(gid) <- -1)
    st.edge_owner;
  Array.iteri
    (fun v owner -> if owner = k then st.vertex_owner.(v) <- -1)
    st.vertex_owner

(* Route net k as a Steiner tree: connect sinks one at a time, reusing the
   committed tree as Dijkstra sources. *)
let route_net st k =
  let net = st.g.nets.(k) in
  let tree_vertices = ref [ net.Graph.source ] in
  let tree_edges = ref [] in
  let remaining = ref (Array.to_list net.Graph.sinks) in
  let ok = ref true in
  while !ok && !remaining <> [] do
    match search st k !tree_vertices !remaining with
    | None -> ok := false
    | Some (reached, path) ->
      commit st k path;
      tree_edges := path @ !tree_edges;
      List.iter
        (fun gid ->
          let e = st.g.edges.(gid) in
          tree_vertices := e.Graph.u :: e.Graph.v :: !tree_vertices)
        path;
      remaining := List.filter (fun t -> t <> reached) !remaining
  done;
  if !ok then Some !tree_edges
  else begin
    rip st k;
    None
  end

let net_order rng nnets first =
  let order = Array.init nnets Fun.id in
  if not first then
    for i = nnets - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
  order

(* Edges to penalise so a reroute avoids re-creating the violation. *)
let involved_edges st viol =
  let wire_edges_at v =
    Array.to_list st.g.adj.(v)
    |> List.filter_map (fun (gid, _) ->
           match st.g.edges.(gid).Graph.kind with
           | Graph.Wire _ -> Some gid
           | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _
           | Graph.Access ->
             None)
  in
  let all_edges_at v = Array.to_list st.g.adj.(v) |> List.map fst in
  match viol with
  | Drc.Sadp_conflict { v1; v2; _ } -> wire_edges_at v1 @ wire_edges_at v2
  | Drc.Via_adjacency { site1; site2 } -> [ site1; site2 ]
  | Drc.Dsa_conflict { sites } -> sites
  | Drc.Vertex_conflict { vertex; _ } -> all_edges_at vertex
  | Drc.Shape_side { rep; _ } | Drc.Shape_blocking { rep; _ } -> all_edges_at rep
  | Drc.Edge_conflict _ | Drc.Disconnected _ | Drc.Dangling _ -> []

let nets_of_violation (sol : Route.solution) st viol =
  let owner_of_edge gid =
    match Route.uses_edge sol gid with Some k -> [ k ] | None -> []
  in
  match viol with
  | Drc.Edge_conflict { net1; net2; _ } | Drc.Vertex_conflict { net1; net2; _ }
    ->
    [ net1; net2 ]
  | Drc.Disconnected { net; _ } | Drc.Dangling { net; _ } -> [ net ]
  | Drc.Via_adjacency { site1; site2 } ->
    owner_of_edge site1 @ owner_of_edge site2
  | Drc.Dsa_conflict { sites } -> List.concat_map owner_of_edge sites
  | Drc.Shape_side { net; _ } -> [ net ]
  | Drc.Shape_blocking { net; other; _ } -> [ net; other ]
  | Drc.Sadp_conflict { v1; v2; _ } ->
    let owner v = if v < st.ngrid then st.vertex_owner.(v) else -1 in
    List.filter (fun k -> k >= 0) [ owner v1; owner v2 ]

(* Legacy debug switch: bypasses the Report.Log level filter, but events
   still flow through its sink (single-write lines, no cross-domain
   interleaving) and are always counted into the telemetry either way. *)
let maze_debug = Sys.getenv_opt "OPTROUTER_MAZE_DEBUG" <> None

let maze_event line =
  if maze_debug then Log.emit Log.Debug ~src:"maze" line
  else Log.debug ~src:"maze" line

let route ?(params = default_params) ~rules (g : Graph.t) =
  let nnets = Array.length g.nets in
  let ngrid = g.clip.Clip.cols * g.clip.Clip.rows * g.clip.Clip.layers in
  let rng = Random.State.make [| params.seed |] in
  let best = ref None in
  let rip_ups = ref 0 in
  let restarts_used = ref 0 in
  for attempt = 0 to params.restarts - 1 do
    incr restarts_used;
    let st =
      {
        g;
        rules;
        edge_owner = Array.make (Graph.num_edges g) (-1);
        vertex_owner = Array.make ngrid (-1);
        penalty = Array.make (Graph.num_edges g) 0.0;
        jitter =
          Array.init (Graph.num_edges g) (fun _ ->
              if attempt = 0 then 0.0 else Random.State.float rng 0.45);
        pin_owner =
          (let owners =
             Array.make (g.Graph.clip.Clip.cols * g.Graph.clip.Clip.rows) (-1)
           in
           Array.iteri
             (fun v edges ->
               List.iter
                 (fun gid ->
                   match g.Graph.edges.(gid).Graph.net_only with
                   | Some k -> owners.(v) <- k
                   | None -> ())
                 edges)
             g.Graph.access_sites;
           owners);
        ngrid;
      }
    in
    let order = net_order rng nnets (attempt = 0) in
    let routes = Array.make nnets None in
    let all_ok = ref true in
    Array.iter
      (fun k ->
        match route_net st k with
        | Some edges -> routes.(k) <- Some { Route.net = k; edges }
        | None ->
          maze_event (fun () ->
              Printf.sprintf "attempt %d: net %d unroutable" attempt k);
          all_ok := false)
      order;
    (* Violation repair: penalise the offending vertices, rip the nets
       involved and reroute them. *)
    let round = ref 0 in
    let solution_of_routes () =
      let rs =
        Array.map
          (function Some r -> r | None -> { Route.net = 0; edges = [] })
          routes
      in
      { Route.routes = rs; metrics = Route.metrics_of g rs }
    in
    let continue_repair = ref !all_ok in
    while !continue_repair && !round < params.rip_up_rounds do
      incr round;
      let sol = solution_of_routes () in
      match Drc.check ~rules g sol with
      | [] -> continue_repair := false
      | viols ->
        maze_event (fun () ->
            Format.asprintf "attempt %d round %d: %d violations%a" attempt
              !round (List.length viols)
              (fun ppf ->
                List.iter (fun v ->
                    Format.fprintf ppf "@\n  %a" (Drc.pp_violation g) v))
              viols);
        let guilty = ref [] in
        List.iter
          (fun viol ->
            List.iter
              (fun gid -> st.penalty.(gid) <- st.penalty.(gid) +. 8.0)
              (involved_edges st viol);
            guilty := nets_of_violation sol st viol @ !guilty)
          viols;
        let guilty = List.sort_uniq Int.compare !guilty in
        if guilty = [] then begin
          all_ok := false;
          continue_repair := false
        end
        else begin
          (* Rip everything, not just the guilty nets: the innocent nets'
             vertex claims are usually what pins the guilty ones into the
             conflict. The accumulated penalties steer the full reroute. *)
          rip_ups := !rip_ups + List.length guilty;
          let full_order = net_order rng nnets false in
          Array.iter (fun k -> rip st k) full_order;
          Array.iter
            (fun k ->
              match route_net st k with
              | Some edges -> routes.(k) <- Some { Route.net = k; edges }
              | None -> all_ok := false)
            full_order;
          if not !all_ok then continue_repair := false
        end
    done;
    if !all_ok then begin
      let sol = solution_of_routes () in
      if Drc.check ~rules g sol = [] then begin
        match !best with
        | Some (b : Route.solution) when b.metrics.cost <= sol.Route.metrics.cost
          -> ()
        | Some _ | None -> best := Some sol
      end
    end
  done;
  { solution = !best; restarts_used = !restarts_used; rip_ups = !rip_ups }
