lib/core/render.ml: Array Buffer Char List Optrouter_grid Optrouter_tech Printf
