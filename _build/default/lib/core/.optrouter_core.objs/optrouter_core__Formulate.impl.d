lib/core/formulate.ml: Array Hashtbl List Option Optrouter_grid Optrouter_ilp Optrouter_tech Printf
