lib/core/render.mli: Optrouter_grid
