lib/core/formulate.mli: Optrouter_grid Optrouter_ilp Optrouter_tech
