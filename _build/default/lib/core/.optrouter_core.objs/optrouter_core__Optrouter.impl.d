lib/core/optrouter.ml: Format Formulate List Logs Optrouter_grid Optrouter_ilp Optrouter_maze Optrouter_tech Sys
