lib/core/optrouter.mli: Formulate Optrouter_grid Optrouter_ilp Optrouter_tech
