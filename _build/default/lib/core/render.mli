(** ASCII rendering of routing solutions, one panel per metal layer.

    Wire segments are drawn with the owning net's letter, vias as [v]
    (via below) / [^] (via above) markers on the vertices they pass
    through, and pin access points as the net letter in upper case. Meant
    for examples and debugging, not precision: each grid vertex is one
    character cell. *)

val solution :
  Optrouter_grid.Graph.t -> Optrouter_grid.Route.solution -> string

(** [layer g sol ~z] renders a single layer panel. *)
val layer : Optrouter_grid.Graph.t -> Optrouter_grid.Route.solution -> z:int -> string
