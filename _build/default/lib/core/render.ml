module Drc = Optrouter_grid.Drc
module Route = Optrouter_grid.Route
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Layer = Optrouter_tech.Layer

let net_char k = Char.chr (Char.code 'a' + (k mod 26))

(* Character canvas per layer: vertices at even (2x, 2y) cells so wire
   segments can occupy the odd cells between them. *)
let layer (g : Graph.t) (sol : Route.solution) ~z =
  let cols = g.clip.Clip.cols and rows = g.clip.Clip.rows in
  let w = (2 * cols) - 1 and h = (2 * rows) - 1 in
  let canvas = Array.make_matrix h w ' ' in
  for y = 0 to rows - 1 do
    for x = 0 to cols - 1 do
      canvas.(2 * y).(2 * x) <- '.'
    done
  done;
  let decode v =
    match g.vertex.(v) with
    | Graph.Grid { x; y; z = vz } -> Some (x, y, vz)
    | Graph.Via_node _ | Graph.Super _ -> None
  in
  Array.iter
    (fun (r : Route.net_route) ->
      let ch = net_char r.Route.net in
      List.iter
        (fun gid ->
          let e = g.edges.(gid) in
          match (e.Graph.kind, decode e.Graph.u, decode e.Graph.v) with
          | Graph.Wire wz, Some (x1, y1, _), Some (x2, y2, _) when wz = z ->
            canvas.(2 * y1).(2 * x1) <- ch;
            canvas.(2 * y2).(2 * x2) <- ch;
            canvas.(y1 + y2).(x1 + x2) <-
              (if y1 = y2 then '-' else '|')
          | Graph.Via vz, Some (x, y, _), Some _ ->
            if vz = z then canvas.(2 * y).(2 * x) <- '^'
            else if vz = z - 1 then canvas.(2 * y).(2 * x) <- 'v'
          | Graph.Shape_lower vz, Some (x, y, _), _ when vz = z ->
            canvas.(2 * y).(2 * x) <- '^'
          | Graph.Shape_upper vz, _, Some (x, y, _) when vz + 1 = z ->
            canvas.(2 * y).(2 * x) <- 'v'
          | Graph.Access, u, v -> (
            let pt = match (u, v) with Some p, _ | _, Some p -> Some p | _ -> None in
            match pt with
            | Some (x, y, vz) when vz = z ->
              canvas.(2 * y).(2 * x) <- Char.uppercase_ascii ch
            | Some _ | None -> ())
          | (Graph.Wire _ | Graph.Via _ | Graph.Shape_lower _ | Graph.Shape_upper _), _, _
            -> ())
        r.Route.edges)
    sol.Route.routes;
  let buf = Buffer.create ((h + 1) * (w + 4)) in
  Buffer.add_string buf
    (Printf.sprintf "M%d (%s):\n" (z + 2)
       (match g.layers.(z).Layer.dir with
       | Layer.Horizontal -> "horizontal"
       | Layer.Vertical -> "vertical"));
  for y = h - 1 downto 0 do
    Buffer.add_string buf "  ";
    for x = 0 to w - 1 do
      Buffer.add_char buf canvas.(y).(x)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let solution g sol =
  let buf = Buffer.create 1024 in
  let used_layer = Array.make g.Graph.clip.Clip.layers false in
  Array.iter
    (fun (r : Route.net_route) ->
      List.iter
        (fun gid ->
          match g.edges.(gid).Graph.kind with
          | Graph.Wire z -> used_layer.(z) <- true
          | Graph.Via z | Graph.Shape_lower z | Graph.Shape_upper z ->
            used_layer.(z) <- true;
            if z + 1 < Array.length used_layer then used_layer.(z + 1) <- true
          | Graph.Access -> used_layer.(0) <- true)
        r.Route.edges)
    sol.Route.routes;
  Array.iteri
    (fun z used -> if used then Buffer.add_string buf (layer g sol ~z))
    used_layer;
  Buffer.add_string buf
    (Printf.sprintf "cost=%d wirelength=%d vias=%d\n" sol.Route.metrics.cost
       sol.Route.metrics.wirelength sol.Route.metrics.vias);
  Buffer.contents buf
