module Rect = Optrouter_geom.Rect
module Tech = Optrouter_tech.Tech

type pin = {
  p_name : string;
  offsets : (int * int) list;
  shape : Rect.t;
  is_output : bool;
}

type t = { c_name : string; width_cols : int; pins : pin list }

(* Rows usable for pins: the top and bottom tracks are taken by power and
   ground rails, as in any standard-cell architecture. *)
let usable_rows tech =
  let h = tech.Tech.cell_height_tracks in
  (1, h - 2)

(* Access-point rows per technology class. N7-9T gets two adjacent rows at
   mid-cell (Figure 9(c)); the 28nm libraries spread points over the pin
   finger. *)
let access_rows tech ~count =
  let lo, hi = usable_rows tech in
  let span = hi - lo in
  if count >= span + 1 then List.init (span + 1) (fun i -> lo + i)
  else if count = 1 then [ lo + (span / 2) ]
  else if tech.Tech.access_points_per_pin <= 2 then
    let mid = lo + (span / 2) in
    List.init count (fun i -> mid + i)
  else
    let step = span / (count - 1) in
    List.init count (fun i -> lo + (i * max 1 step))

let pin_shape tech ~col rows =
  let pw = tech.Tech.pin_width in
  let cx = col * tech.Tech.vpitch in
  let ylo = List.fold_left min max_int rows * tech.Tech.hpitch in
  let yhi = List.fold_left max min_int rows * tech.Tech.hpitch in
  Rect.make ~xlo:(cx - (pw / 2)) ~ylo:(ylo - (pw / 2)) ~xhi:(cx + (pw / 2))
    ~yhi:(yhi + (pw / 2))

let make_pin tech ~name ~col ~is_output ?(extra = 0) () =
  let count = tech.Tech.access_points_per_pin + extra in
  let rows = access_rows tech ~count in
  {
    p_name = name;
    offsets = List.map (fun r -> (col, r)) rows;
    shape = pin_shape tech ~col rows;
    is_output;
  }

let cell tech name width spec =
  let pins =
    List.map
      (fun (pname, col, is_output) ->
        (* outputs are driven by wide fingers and expose more points *)
        let extra = if is_output then 1 else 0 in
        make_pin tech ~name:pname ~col ~is_output ~extra ())
      spec
  in
  { c_name = name; width_cols = width; pins }

let nand2 tech =
  cell tech "NAND2X1" 3 [ ("A", 0, false); ("B", 1, false); ("Y", 2, true) ]

let library tech =
  [
    (* inverters and buffers *)
    cell tech "INVX1" 2 [ ("A", 0, false); ("Y", 1, true) ];
    cell tech "INVX2" 2 [ ("A", 0, false); ("Y", 1, true) ];
    cell tech "INVX4" 3 [ ("A", 0, false); ("Y", 2, true) ];
    cell tech "BUFX2" 3 [ ("A", 0, false); ("Y", 2, true) ];
    cell tech "BUFX4" 4 [ ("A", 0, false); ("Y", 3, true) ];
    cell tech "CLKBUFX3" 4 [ ("A", 0, false); ("Y", 3, true) ];
    (* two-input gates *)
    nand2 tech;
    cell tech "NOR2X1" 3 [ ("A", 0, false); ("B", 1, false); ("Y", 2, true) ];
    cell tech "AND2X1" 3 [ ("A", 0, false); ("B", 1, false); ("Y", 2, true) ];
    cell tech "OR2X1" 3 [ ("A", 0, false); ("B", 1, false); ("Y", 2, true) ];
    cell tech "XOR2X1" 4 [ ("A", 0, false); ("B", 2, false); ("Y", 3, true) ];
    cell tech "XNOR2X1" 4 [ ("A", 0, false); ("B", 2, false); ("Y", 3, true) ];
    (* three-input and complex gates *)
    cell tech "NAND3X1" 4
      [ ("A", 0, false); ("B", 1, false); ("C", 2, false); ("Y", 3, true) ];
    cell tech "NOR3X1" 4
      [ ("A", 0, false); ("B", 1, false); ("C", 2, false); ("Y", 3, true) ];
    cell tech "AOI21X1" 4
      [ ("A", 0, false); ("B", 1, false); ("C", 2, false); ("Y", 3, true) ];
    cell tech "OAI21X1" 4
      [ ("A", 0, false); ("B", 1, false); ("C", 2, false); ("Y", 3, true) ];
    cell tech "AOI22X1" 5
      [
        ("A", 0, false); ("B", 1, false); ("C", 2, false); ("D", 3, false);
        ("Y", 4, true);
      ];
    cell tech "OAI22X1" 5
      [
        ("A", 0, false); ("B", 1, false); ("C", 2, false); ("D", 3, false);
        ("Y", 4, true);
      ];
    cell tech "MUX2X1" 5
      [ ("A", 0, false); ("B", 1, false); ("S", 2, false); ("Y", 4, true) ];
    (* arithmetic *)
    cell tech "ADDHX1" 6
      [ ("A", 0, false); ("B", 1, false); ("S", 4, true); ("CO", 5, true) ];
    cell tech "ADDFX1" 8
      [
        ("A", 0, false); ("B", 1, false); ("CI", 2, false); ("S", 6, true);
        ("CO", 7, true);
      ];
    (* sequential *)
    cell tech "DFFX1" 8 [ ("D", 1, false); ("CK", 3, false); ("Q", 6, true) ];
    cell tech "DFFRX1" 9
      [ ("D", 1, false); ("CK", 3, false); ("RN", 5, false); ("Q", 7, true) ];
    cell tech "SDFFX1" 10
      [
        ("D", 1, false); ("SI", 2, false); ("SE", 4, false); ("CK", 6, false);
        ("Q", 8, true);
      ];
    cell tech "LATX1" 6 [ ("D", 1, false); ("G", 3, false); ("Q", 5, true) ];
  ]

let find cells name =
  match List.find_opt (fun c -> String.equal c.c_name name) cells with
  | Some c -> c
  | None -> raise Not_found

let inputs c = List.filter (fun p -> not p.is_output) c.pins
let outputs c = List.filter (fun p -> p.is_output) c.pins
let access_count c = List.fold_left (fun acc p -> acc + List.length p.offsets) 0 c.pins

let render tech c =
  let h = tech.Tech.cell_height_tracks in
  let w = c.width_cols in
  let grid = Array.make_matrix h w '.' in
  (* power rails *)
  for x = 0 to w - 1 do
    grid.(0).(x) <- '=';
    grid.(h - 1).(x) <- '='
  done;
  List.iter
    (fun p ->
      let ch = p.p_name.[0] in
      List.iter
        (fun (x, y) -> if y >= 0 && y < h && x >= 0 && x < w then grid.(y).(x) <- ch)
        p.offsets)
    c.pins;
  let buf = Buffer.create (h * (w + 1)) in
  Buffer.add_string buf (Printf.sprintf "%s (%s)\n" c.c_name tech.Tech.name);
  for y = h - 1 downto 0 do
    for x = 0 to w - 1 do
      Buffer.add_char buf grid.(y).(x);
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf c =
  Format.fprintf ppf "%s (w=%d cols, pins:" c.c_name c.width_cols;
  List.iter
    (fun p -> Format.fprintf ppf " %s[%d]" p.p_name (List.length p.offsets))
    c.pins;
  Format.fprintf ppf ")"
