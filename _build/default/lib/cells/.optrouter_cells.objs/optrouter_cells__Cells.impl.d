lib/cells/cells.ml: Array Buffer Format List Optrouter_geom Optrouter_tech Printf String
