lib/cells/cells.mli: Format Optrouter_geom Optrouter_tech
