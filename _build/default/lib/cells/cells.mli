(** Synthetic standard-cell archetypes.

    The paper's experiments consume commercial 28nm 8-track / 12-track
    libraries and a prototype 7nm 9-track library, none of which can be
    redistributed. What the evaluation actually depends on is the {e pin
    statistics} of each library: how many pins a cell exposes, how large
    the pin shapes are, how close together they sit, and how many usable
    access points each offers (Figure 9). This module synthesises cells
    with those properties per technology:

    - N28-12T: tall cells, long pin fingers, ~5 access points per pin;
    - N28-8T: shorter cells, ~4 access points;
    - N7-9T: two access points per input pin, adjacent and near the
      neighbouring pin — the configuration that makes RULE2/7/9/10/11
      unevaluable in the paper.

    Geometry convention: a cell occupies [width_cols] vertical-track
    columns; pin access points are (column, row) offsets from the cell's
    lower-left placement site; pin shapes are nm rectangles relative to the
    same origin. *)

type pin = {
  p_name : string;
  offsets : (int * int) list;  (** access point offsets, in track units *)
  shape : Optrouter_geom.Rect.t;  (** nm, relative to the cell origin *)
  is_output : bool;
}

type t = {
  c_name : string;
  width_cols : int;
  pins : pin list;
}

(** [library tech] is the cell set used by the synthetic designs: INV, BUF,
    NAND2, NOR2, AOI21, OAI21, MUX2, XOR2 and DFF variants. *)
val library : Optrouter_tech.Tech.t -> t list

(** [nand2 tech] reproduces the NAND2X1 of Figure 9 for pin-shape studies. *)
val nand2 : Optrouter_tech.Tech.t -> t

val find : t list -> string -> t
val inputs : t -> pin list
val outputs : t -> pin list

(** Total access points over all pins. *)
val access_count : t -> int

(** ASCII rendering of the cell's pin layout (Figure 9 style). *)
val render : Optrouter_tech.Tech.t -> t -> string

val pp : Format.formatter -> t -> unit
