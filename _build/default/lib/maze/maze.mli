(** Heuristic sequential detailed router — the baseline OptRouter is
    compared against (the role the commercial router plays in the paper's
    footnote 6 validation).

    Nets are routed one at a time with multi-source Dijkstra growing a
    Steiner tree over the routing graph, honouring edge and vertex
    exclusivity and via adjacency restrictions during search. Multiple
    randomised net orders are tried and the cheapest legal result kept;
    SADP end-of-line violations (which a maze search cannot see locally)
    are repaired by penalise-rip-up-reroute rounds audited with the
    independent {!Optrouter_grid.Drc} checker. Like any sequential router
    it is (deliberately) suboptimal: tests assert its cost is never below
    OptRouter's. *)

type params = {
  restarts : int;  (** randomised net orders to try (default 8) *)
  rip_up_rounds : int;  (** violation-repair rounds per restart (default 4) *)
  seed : int;
}

val default_params : params

type result = {
  solution : Optrouter_grid.Route.solution option;
      (** best DRC-clean solution, or [None] if every attempt failed *)
  restarts_used : int;
  rip_ups : int;  (** total nets ripped up over all restarts *)
}

val route :
  ?params:params ->
  rules:Optrouter_tech.Rules.t ->
  Optrouter_grid.Graph.t ->
  result
