type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 None; size = 0 }
let is_empty q = q.size = 0
let length q = q.size

let swap q i j =
  let tk = q.keys.(i) and tv = q.vals.(i) in
  q.keys.(i) <- q.keys.(j);
  q.vals.(i) <- q.vals.(j);
  q.keys.(j) <- tk;
  q.vals.(j) <- tv

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.keys.(i) < q.keys.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.keys.(l) < q.keys.(!smallest) then smallest := l;
  if r < q.size && q.keys.(r) < q.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key v =
  if q.size = Array.length q.keys then begin
    let cap = 2 * q.size in
    let keys = Array.make cap 0.0 and vals = Array.make cap None in
    Array.blit q.keys 0 keys 0 q.size;
    Array.blit q.vals 0 vals 0 q.size;
    q.keys <- keys;
    q.vals <- vals
  end;
  q.keys.(q.size) <- key;
  q.vals.(q.size) <- Some v;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then raise Not_found;
  let key = q.keys.(0) in
  let v = match q.vals.(0) with Some v -> v | None -> assert false in
  q.size <- q.size - 1;
  q.keys.(0) <- q.keys.(q.size);
  q.vals.(0) <- q.vals.(q.size);
  q.vals.(q.size) <- None;
  if q.size > 0 then sift_down q 0;
  (key, v)
