(** Minimal binary min-heap priority queue on float keys.

    Supports lazy decrease-key by re-insertion: callers skip stale entries
    on [pop] by checking their own distance table. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit

(** [pop q] removes and returns the minimum-key entry. Raises [Not_found]
    when empty. *)
val pop : 'a t -> float * 'a
