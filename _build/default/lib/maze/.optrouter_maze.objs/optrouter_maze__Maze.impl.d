lib/maze/maze.ml: Array Format Fun Hashtbl Int List Optrouter_grid Optrouter_tech Pqueue Printf Random Sys
