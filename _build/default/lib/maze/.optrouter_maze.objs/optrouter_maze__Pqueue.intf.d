lib/maze/pqueue.mli:
