lib/maze/pqueue.ml: Array
