lib/maze/maze.mli: Optrouter_grid Optrouter_tech
