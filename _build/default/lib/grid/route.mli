(** Decoded routing solutions and their metrics. *)

type net_route = {
  net : int;
  edges : int list;  (** edge ids of {!Graph.t} used by the net *)
}

type metrics = {
  wirelength : int;  (** number of in-layer track segments *)
  vias : int;  (** single-site vias plus via-shape instances *)
  cost : int;  (** weighted routing cost: wirelength + via weights *)
}

type solution = { routes : net_route array; metrics : metrics }

(** [metrics_of graph routes] recomputes the metrics from the edge sets. A
    via-shape instance counts as one via however many member edges tie it
    in; access edges count as neither wire nor via. *)
val metrics_of : Graph.t -> net_route array -> metrics

(** [uses_edge solution edge_id] is the net using the edge, if any. *)
val uses_edge : solution -> int -> int option

(** Edge ids of a given net's route, as a set membership test. *)
val edge_set : solution -> net:int -> (int -> bool)

val pp : Graph.t -> Format.formatter -> solution -> unit
