lib/grid/route.ml: Array Format Graph Hashtbl List
