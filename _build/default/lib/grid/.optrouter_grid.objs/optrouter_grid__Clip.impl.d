lib/grid/clip.ml: Format Hashtbl List Optrouter_geom Result
