lib/grid/clip.mli: Format Optrouter_geom Result
