lib/grid/graph.ml: Array Clip Format List Optrouter_tech
