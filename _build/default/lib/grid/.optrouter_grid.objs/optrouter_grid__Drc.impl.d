lib/grid/drc.ml: Array Clip Format Graph Hashtbl List Option Optrouter_tech Route
