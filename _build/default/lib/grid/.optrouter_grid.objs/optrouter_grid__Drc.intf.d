lib/grid/drc.mli: Format Graph Optrouter_tech Route
