lib/grid/graph.mli: Clip Format Optrouter_tech
