lib/grid/route.mli: Format Graph
