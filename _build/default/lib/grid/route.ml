

type net_route = { net : int; edges : int list }
type metrics = { wirelength : int; vias : int; cost : int }
type solution = { routes : net_route array; metrics : metrics }

let metrics_of (g : Graph.t) routes =
  let wirelength = ref 0 and vias = ref 0 and cost = ref 0 in
  Array.iter
    (fun r ->
      List.iter
        (fun id ->
          let e = g.edges.(id) in
          cost := !cost + e.Graph.cost;
          match e.Graph.kind with
          | Graph.Wire _ -> incr wirelength
          | Graph.Via _ -> incr vias
          | Graph.Shape_lower _ ->
            (* one lower edge per via-shape use: counts the instance *)
            incr vias
          | Graph.Shape_upper _ | Graph.Access -> ())
        r.edges)
    routes;
  { wirelength = !wirelength; vias = !vias; cost = !cost }

let uses_edge sol id =
  let found = ref None in
  Array.iter
    (fun r -> if List.mem id r.edges then found := Some r.net)
    sol.routes;
  !found

let edge_set sol ~net =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun r -> if r.net = net then List.iter (fun id -> Hashtbl.replace tbl id ()) r.edges)
    sol.routes;
  fun id -> Hashtbl.mem tbl id

let pp (g : Graph.t) ppf sol =
  Format.fprintf ppf "@[<v>cost=%d wl=%d vias=%d" sol.metrics.cost
    sol.metrics.wirelength sol.metrics.vias;
  Array.iter
    (fun r ->
      Format.fprintf ppf "@ net %s:" g.nets.(r.net).Graph.n_name;
      List.iter
        (fun id ->
          let e = g.edges.(id) in
          Format.fprintf ppf " %a-%a" (Graph.pp_vertex g) e.Graph.u
            (Graph.pp_vertex g) e.Graph.v)
        r.edges)
    sol.routes;
  Format.fprintf ppf "@]"
