module Rect = Optrouter_geom.Rect

type pin = {
  p_name : string;
  access : (int * int) list;
  shape : Rect.t option;
}

type net = { n_name : string; pins : pin list }

type t = {
  c_name : string;
  tech_name : string;
  cols : int;
  rows : int;
  layers : int;
  nets : net list;
  obstructions : (int * int * int) list;
}

let make ?(name = "clip") ?(tech_name = "N28-12T") ?(obstructions = []) ~cols
    ~rows ~layers nets =
  { c_name = name; tech_name; cols; rows; layers; nets; obstructions }

let num_nets t = List.length t.nets
let num_pins t = List.fold_left (fun acc n -> acc + List.length n.pins) 0 t.nets

let access_points t =
  List.concat
    (List.mapi
       (fun k net ->
         List.concat_map
           (fun pin -> List.map (fun (x, y) -> (k, x, y)) pin.access)
           net.pins)
       t.nets)

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let* () =
    if t.cols > 0 && t.rows > 0 && t.layers > 0 then Ok ()
    else err "clip %s: non-positive dimensions" t.c_name
  in
  let* () =
    List.fold_left
      (fun acc (net : net) ->
        let* () = acc in
        let* () =
          if List.length net.pins >= 2 then Ok ()
          else err "net %s: fewer than two pins" net.n_name
        in
        List.fold_left
          (fun acc (pin : pin) ->
            let* () = acc in
            let* () =
              if pin.access <> [] then Ok ()
              else err "pin %s of net %s: no access points" pin.p_name net.n_name
            in
            List.fold_left
              (fun acc (x, y) ->
                let* () = acc in
                if x >= 0 && x < t.cols && y >= 0 && y < t.rows then Ok ()
                else
                  err "pin %s of net %s: access point (%d, %d) out of range"
                    pin.p_name net.n_name x y)
              (Ok ()) pin.access)
          (Ok ()) net.pins)
      (Ok ()) t.nets
  in
  let* () =
    List.fold_left
      (fun acc (x, y, z) ->
        let* () = acc in
        if x >= 0 && x < t.cols && y >= 0 && y < t.rows && z >= 0 && z < t.layers
        then Ok ()
        else err "obstruction (%d, %d, %d) out of range" x y z)
      (Ok ()) t.obstructions
  in
  (* An access point claimed by two different nets is a short. *)
  let tbl = Hashtbl.create 16 in
  List.fold_left
    (fun acc (k, x, y) ->
      let* () = acc in
      match Hashtbl.find_opt tbl (x, y) with
      | Some k' when k' <> k ->
        err "access point (%d, %d) shared by nets %d and %d" x y k' k
      | Some _ | None ->
        Hashtbl.replace tbl (x, y) k;
        Ok ())
    (Ok ()) (access_points t)

let pp ppf t =
  Format.fprintf ppf "@[<v>clip %s [%s] %dx%d tracks, %d layers, %d nets"
    t.c_name t.tech_name t.cols t.rows t.layers (num_nets t);
  List.iter
    (fun net ->
      Format.fprintf ppf "@   net %s:" net.n_name;
      List.iter
        (fun pin ->
          Format.fprintf ppf " %s{" pin.p_name;
          List.iter (fun (x, y) -> Format.fprintf ppf "(%d,%d)" x y) pin.access;
          Format.fprintf ppf "}")
        net.pins)
    t.nets;
  Format.fprintf ppf "@]"
