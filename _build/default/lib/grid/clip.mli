(** Routing clips (switchbox instances).

    A clip is the unit of optimal routing: a window of [cols] vertical
    tracks by [rows] horizontal tracks over [layers] routing layers
    (counted from M2), holding a small netlist whose pins expose access
    points on the lowest routing layer. This mirrors the paper's 1.0um x
    1.0um clips (7 x 10 tracks, 8 layers in 28nm). *)

type pin = {
  p_name : string;
  access : (int * int) list;
      (** usable access points, as (column, row) grid coordinates on M2 *)
  shape : Optrouter_geom.Rect.t option;
      (** physical pin shape in nm, used by the pin-cost metric *)
}

type net = {
  n_name : string;
  pins : pin list;  (** at least two; the first pin is the source *)
}

type t = {
  c_name : string;
  tech_name : string;
  cols : int;
  rows : int;
  layers : int;
  nets : net list;
  obstructions : (int * int * int) list;
      (** blocked grid vertices (column, row, layer index from M2) *)
}

val make :
  ?name:string ->
  ?tech_name:string ->
  ?obstructions:(int * int * int) list ->
  cols:int ->
  rows:int ->
  layers:int ->
  net list ->
  t

(** Structural sanity: dimensions positive, every net has >= 2 pins, every
    pin has >= 1 access point, access points and obstructions in range,
    and no access point is shared between two different nets (a short by
    construction). Returns a description of the first problem found. *)
val validate : t -> (unit, string) Result.t

val num_nets : t -> int
val num_pins : t -> int

(** All access points of all pins of all nets, with net index. *)
val access_points : t -> (int * int * int) list
(** triples (net_index, col, row) *)

val pp : Format.formatter -> t -> unit
