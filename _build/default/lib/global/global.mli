(** Gcell-based global router.

    The paper's clips are switchboxes "approximately the size of a single
    gcell" harvested from routed layouts, so nets that merely {e pass
    through} a clip window appear in its routing problem alongside the
    nets with pins inside. This module supplies that routed context: a
    congestion-negotiated global routing of a placed design over a grid
    of gcells.

    Each net is routed as a rectilinear tree on the gcell grid: pins are
    connected to the growing tree one at a time through L-shaped paths,
    picking, per connection, the bend with the lower congestion cost;
    edge usage feeds back into the cost so later nets avoid hot regions
    (one-shot negotiation — adequate for context generation, not a
    competitive global router).

    Gcell coordinates: gcell (gx, gy) covers track columns
    [gx * cell_w .. (gx+1) * cell_w - 1] and rows [gy * cell_h ..], with
    the partial last gcell clipped to the die. *)

type t

type congestion = {
  total_edges : int;
  used_edges : int;
  max_usage : int;
  overflowed : int;  (** edges above [capacity] *)
}

(** [route ?capacity ~cell_w ~cell_h design] globally routes every net of
    the design over gcells of [cell_w] x [cell_h] tracks. [capacity] is
    the nominal per-gcell-boundary wire capacity used for congestion
    statistics (default 8). *)
val route :
  ?capacity:int ->
  cell_w:int ->
  cell_h:int ->
  Optrouter_design.Design.t ->
  t

val grid_size : t -> int * int

(** Gcells traversed by a net (including the gcells of its pins). *)
val net_gcells : t -> int -> (int * int) list

(** [nets_through t ~gx ~gy] lists nets whose global route visits the
    gcell — both nets with pins there and pass-throughs. *)
val nets_through : t -> gx:int -> gy:int -> int list

(** [crossings t ~net ~gx ~gy] is the list of neighbouring gcells this
    net's route connects to from (gx, gy) — the window borders a
    pass-through net enters/leaves by. *)
val crossings : t -> net:int -> gx:int -> gy:int -> (int * int) list

val congestion : t -> congestion

(** ASCII heat map of gcell-edge usage (congestion per gcell,
    0-9 / '*' above nine). *)
val render_congestion : t -> string
