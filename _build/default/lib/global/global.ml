module Design = Optrouter_design.Design

type congestion = {
  total_edges : int;
  used_edges : int;
  max_usage : int;
  overflowed : int;
}

type t = {
  cell_w : int;
  cell_h : int;
  ngx : int;
  ngy : int;
  capacity : int;
  net_cells : (int * int) list array;
  net_edges : ((int * int) * (int * int)) list array;
  usage_h : int array;  (** edge (gx,gy)-(gx+1,gy) at gy * (ngx-1) + gx *)
  usage_v : int array;  (** edge (gx,gy)-(gx,gy+1) at gy * ngx + gx *)
  by_cell : int list array;  (** gcell -> nets visiting, gy * ngx + gx *)
}

let grid_size t = (t.ngx, t.ngy)

let hidx t gx gy = (gy * (t.ngx - 1)) + gx
let vidx t gx gy = (gy * t.ngx) + gx

(* Cost of one gcell-boundary crossing: congestion-quadratic so hot edges
   repel later nets strongly. *)
let edge_cost usage = 1 + (usage * usage)

let step_cost t (x1, y1) (x2, y2) =
  if y1 = y2 then edge_cost t.usage_h.(hidx t (min x1 x2) y1)
  else edge_cost t.usage_v.(vidx t x1 (min y1 y2))

let bump_usage t (x1, y1) (x2, y2) =
  if y1 = y2 then begin
    let i = hidx t (min x1 x2) y1 in
    t.usage_h.(i) <- t.usage_h.(i) + 1
  end
  else begin
    let i = vidx t x1 (min y1 y2) in
    t.usage_v.(i) <- t.usage_v.(i) + 1
  end

(* The two L-shaped gcell paths between two gcells (as step lists); for
   aligned gcells both collapse to the same straight path. *)
let l_paths (x1, y1) (x2, y2) =
  let xs = List.init (abs (x2 - x1)) (fun i -> x1 + ((i + 1) * compare x2 x1)) in
  let ys = List.init (abs (y2 - y1)) (fun i -> y1 + ((i + 1) * compare y2 y1)) in
  let horiz_then_vert =
    List.map (fun x -> (x, y1)) xs @ List.map (fun y -> (x2, y)) ys
  in
  let vert_then_horiz =
    List.map (fun y -> (x1, y)) ys @ List.map (fun x -> (x, y2)) xs
  in
  if xs = [] || ys = [] then [ horiz_then_vert ]
  else [ horiz_then_vert; vert_then_horiz ]

let path_cost t src path =
  let rec go prev acc = function
    | [] -> acc
    | cell :: rest -> go cell (acc + step_cost t prev cell) rest
  in
  go src 0 path

let route ?(capacity = 8) ~cell_w ~cell_h (d : Design.t) =
  if cell_w <= 0 || cell_h <= 0 then invalid_arg "Global.route: bad gcell size";
  let cols, rows = Design.extent d in
  let ngx = max 1 ((cols + cell_w - 1) / cell_w) in
  let ngy = max 1 ((rows + cell_h - 1) / cell_h) in
  let nnets = Array.length d.Design.nets in
  let t =
    {
      cell_w;
      cell_h;
      ngx;
      ngy;
      capacity;
      net_cells = Array.make nnets [];
      net_edges = Array.make nnets [];
      usage_h = Array.make (max 1 ((ngx - 1) * ngy)) 0;
      usage_v = Array.make (max 1 (ngx * max 1 (ngy - 1))) 0;
      by_cell = Array.make (ngx * ngy) [];
    }
  in
  let gcell_of (x, y) = (min (x / cell_w) (ngx - 1), min (y / cell_h) (ngy - 1)) in
  Array.iteri
    (fun ni (net : Design.dnet) ->
      let pins =
        List.concat_map
          (fun conn -> List.map gcell_of (Design.access_positions d conn))
          (net.Design.driver :: net.Design.loads)
        |> List.sort_uniq compare
      in
      match pins with
      | [] -> ()
      | first :: rest ->
        let tree = Hashtbl.create 8 in
        Hashtbl.replace tree first ();
        let edges = ref [] in
        List.iter
          (fun target ->
            if not (Hashtbl.mem tree target) then begin
              (* nearest tree gcell by Manhattan distance *)
              let src =
                Hashtbl.fold
                  (fun cell () best ->
                    let dist (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2) in
                    match best with
                    | Some b when dist b target <= dist cell target -> best
                    | Some _ | None -> Some cell)
                  tree None
              in
              let src = Option.get src in
              let best_path =
                List.fold_left
                  (fun best path ->
                    let c = path_cost t src path in
                    match best with
                    | Some (bc, _) when bc <= c -> best
                    | Some _ | None -> Some (c, path))
                  None (l_paths src target)
              in
              match best_path with
              | None -> ()
              | Some (_, path) ->
                (* walk the L outward; if it re-enters the tree early the
                   connection is already made and the tail is dropped *)
                let rec commit prev = function
                  | [] -> ()
                  | cell :: rest ->
                    if Hashtbl.mem tree cell then commit cell rest
                    else begin
                      bump_usage t prev cell;
                      edges := (prev, cell) :: !edges;
                      Hashtbl.replace tree cell ();
                      commit cell rest
                    end
                in
                commit src path
            end)
          rest;
        let cells = Hashtbl.fold (fun c () acc -> c :: acc) tree [] in
        t.net_cells.(ni) <- List.sort compare cells;
        t.net_edges.(ni) <- List.rev !edges;
        List.iter
          (fun (gx, gy) ->
            let i = (gy * ngx) + gx in
            t.by_cell.(i) <- ni :: t.by_cell.(i))
          cells)
    d.Design.nets;
  Array.iteri (fun i l -> t.by_cell.(i) <- List.rev l) t.by_cell;
  t

let net_gcells t ni = t.net_cells.(ni)

let nets_through t ~gx ~gy =
  if gx < 0 || gx >= t.ngx || gy < 0 || gy >= t.ngy then []
  else t.by_cell.((gy * t.ngx) + gx)

let crossings t ~net ~gx ~gy =
  List.filter_map
    (fun (a, b) ->
      if a = (gx, gy) then Some b else if b = (gx, gy) then Some a else None)
    t.net_edges.(net)

let congestion t =
  let fold arr (used, mx, over) =
    Array.fold_left
      (fun (used, mx, over) u ->
        ( (if u > 0 then used + 1 else used),
          max mx u,
          if u > t.capacity then over + 1 else over ))
      (used, mx, over) arr
  in
  let used, mx, over = fold t.usage_v (fold t.usage_h (0, 0, 0)) in
  {
    total_edges = Array.length t.usage_h + Array.length t.usage_v;
    used_edges = used;
    max_usage = mx;
    overflowed = over;
  }

let render_congestion t =
  let buf = Buffer.create (t.ngx * t.ngy * 2) in
  for gy = t.ngy - 1 downto 0 do
    for gx = 0 to t.ngx - 1 do
      (* demand at a gcell: sum of usage on its incident boundaries *)
      let total = ref 0 in
      if gx < t.ngx - 1 then total := !total + t.usage_h.(hidx t gx gy);
      if gx > 0 then total := !total + t.usage_h.(hidx t (gx - 1) gy);
      if gy < t.ngy - 1 then total := !total + t.usage_v.(vidx t gx gy);
      if gy > 0 then total := !total + t.usage_v.(vidx t gx (gy - 1));
      let c =
        if !total = 0 then '.'
        else if !total <= 9 then Char.chr (Char.code '0' + !total)
        else '*'
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
