lib/global/global.ml: Array Buffer Char Hashtbl List Option Optrouter_design
