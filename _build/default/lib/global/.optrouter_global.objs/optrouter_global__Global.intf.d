lib/global/global.mli: Optrouter_design
