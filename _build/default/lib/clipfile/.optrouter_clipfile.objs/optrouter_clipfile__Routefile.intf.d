lib/clipfile/routefile.mli: Format Optrouter_grid
