lib/clipfile/routefile.ml: Array Format List Optrouter_grid Optrouter_tech
