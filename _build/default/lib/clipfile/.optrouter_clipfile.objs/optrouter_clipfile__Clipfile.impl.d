lib/clipfile/clipfile.ml: Format List Optrouter_geom Optrouter_grid Printf Result String
