lib/clipfile/clipfile.mli: Format Optrouter_grid Result
