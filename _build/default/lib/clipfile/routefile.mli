(** Textual export of routed solutions.

    A routed clip is written as one record per net listing its wire
    segments (with layer), via placements (with via layer and shape) and
    the pin access points used — the information a downstream tool (or a
    human with grep) needs to consume OptRouter's output:

    {v
    route <clip-name> tech <tech> cost <c> wirelength <wl> vias <v>
    net <name>
      wire M2 0 3 -> 1 3
      via V23 1 3
      via V23 2x1 1 3        # multi-site via shapes carry their size
      access 0 3
    endnet
    endroute
    v} *)

val pp :
  Optrouter_grid.Graph.t ->
  Format.formatter ->
  Optrouter_grid.Route.solution ->
  unit

val to_string :
  Optrouter_grid.Graph.t -> Optrouter_grid.Route.solution -> string

val write_file :
  string -> Optrouter_grid.Graph.t -> Optrouter_grid.Route.solution -> unit
