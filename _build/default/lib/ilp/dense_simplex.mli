(** Dense Big-M tableau simplex, used as an independent test oracle.

    This is a deliberately different implementation from {!Simplex}: dense
    tableau, Big-M artificials, upper bounds expanded into explicit rows.
    It only accepts problems where every variable has finite bounds, and it
    is O((m+n)^3)-ish — use it on small instances in tests, never in the
    production path. *)

type status = Optimal of float * float array | Infeasible | Unbounded

(** [solve lp] returns the optimal objective and a primal point, or the
    infeasible/unbounded verdict. Raises [Invalid_argument] if some
    variable bound is infinite. *)
val solve : Lp.t -> status
