(** Linear / integer-linear program model.

    A problem is a set of variables (with bounds, objective coefficients and
    an integrality kind) and a set of linear rows (with a sense and a
    right-hand side). The objective is always {e minimized}.

    Problems are built through the mutable {!Builder} API, then frozen into
    an immutable {!t} that the solvers consume. *)

type sense = Le | Ge | Eq

type kind =
  | Continuous
  | Integer  (** integrality is enforced by {!Milp}, ignored by {!Simplex} *)

type var = {
  v_name : string;
  lower : float;  (** may be [neg_infinity] *)
  upper : float;  (** may be [infinity] *)
  obj : float;
  kind : kind;
}

type row = {
  r_name : string;
  sense : sense;
  rhs : float;
  coeffs : (int * float) array;
      (** sparse (variable index, coefficient); indices are strictly
          increasing and coefficients nonzero *)
}

type t = private { vars : var array; rows : row array }

val nvars : t -> int
val nrows : t -> int

(** Number of structural nonzeros over all rows. *)
val nnz : t -> int

(** [row_activity t row x] is the left-hand-side value of [row] at point
    [x]. *)
val row_activity : t -> row -> float array -> float

(** [objective_value t x] evaluates the objective at [x]. *)
val objective_value : t -> float array -> float

(** [is_feasible ?tol t x] checks bounds and all rows at point [x]. *)
val is_feasible : ?tol:float -> t -> float array -> bool

(** [is_integral ?tol t x] checks that every [Integer] variable takes an
    integral value in [x]. *)
val is_integral : ?tol:float -> t -> float array -> bool

val pp_sense : Format.formatter -> sense -> unit
val pp : Format.formatter -> t -> unit

module Builder : sig
  type problem := t
  type t

  val create : unit -> t

  (** [add_var b ~name ~lower ~upper ~obj kind] returns the new variable's
      index. Raises [Invalid_argument] if [lower > upper]. *)
  val add_var :
    t -> name:string -> lower:float -> upper:float -> obj:float -> kind -> int

  (** [add_binary b ~name ~obj] is [add_var] with bounds [0, 1] and kind
      [Integer]. *)
  val add_binary : t -> name:string -> obj:float -> int

  (** [add_row b ~name coeffs sense rhs] adds a linear row. Coefficients for
      a repeated variable index are summed; zero coefficients are dropped.
      Raises [Invalid_argument] on an out-of-range variable index. *)
  val add_row : t -> name:string -> (int * float) list -> sense -> float -> unit

  val var_count : t -> int
  val row_count : t -> int

  (** Freeze the builder. The builder may keep being extended afterwards;
      the frozen problem is unaffected. *)
  val finish : t -> problem
end
