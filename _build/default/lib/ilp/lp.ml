type sense = Le | Ge | Eq
type kind = Continuous | Integer

type var = {
  v_name : string;
  lower : float;
  upper : float;
  obj : float;
  kind : kind;
}

type row = {
  r_name : string;
  sense : sense;
  rhs : float;
  coeffs : (int * float) array;
}

type t = { vars : var array; rows : row array }

let nvars t = Array.length t.vars
let nrows t = Array.length t.rows

let nnz t =
  Array.fold_left (fun acc r -> acc + Array.length r.coeffs) 0 t.rows

let row_activity _t row x =
  Array.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 row.coeffs

let objective_value t x =
  let acc = ref 0.0 in
  Array.iteri (fun j v -> acc := !acc +. (v.obj *. x.(j))) t.vars;
  !acc

let is_feasible ?(tol = 1e-6) t x =
  let bounds_ok =
    Array.for_all
      (fun j -> x.(j) >= t.vars.(j).lower -. tol && x.(j) <= t.vars.(j).upper +. tol)
      (Array.init (nvars t) Fun.id)
  in
  let row_ok r =
    let a = row_activity t r x in
    match r.sense with
    | Le -> a <= r.rhs +. tol
    | Ge -> a >= r.rhs -. tol
    | Eq -> Float.abs (a -. r.rhs) <= tol
  in
  bounds_ok && Array.for_all row_ok t.rows

let is_integral ?(tol = 1e-6) t x =
  let ok j v =
    match v.kind with
    | Continuous -> true
    | Integer -> Float.abs (x.(j) -. Float.round x.(j)) <= tol
  in
  let result = ref true in
  Array.iteri (fun j v -> if not (ok j v) then result := false) t.vars;
  !result

let pp_sense ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf t =
  Format.fprintf ppf "@[<v>minimize";
  Array.iteri
    (fun j v ->
      if v.obj <> 0.0 then Format.fprintf ppf "@ %+g %s" v.obj v.v_name;
      ignore j)
    t.vars;
  Format.fprintf ppf "@ subject to";
  Array.iter
    (fun r ->
      Format.fprintf ppf "@ %s:" r.r_name;
      Array.iter
        (fun (j, a) -> Format.fprintf ppf " %+g %s" a t.vars.(j).v_name)
        r.coeffs;
      Format.fprintf ppf " %a %g" pp_sense r.sense r.rhs)
    t.rows;
  Format.fprintf ppf "@]"

module Builder = struct
  type t = {
    mutable bvars : var list;
    mutable nv : int;
    mutable brows : row list;
    mutable nr : int;
  }

  let create () = { bvars = []; nv = 0; brows = []; nr = 0 }

  let add_var b ~name ~lower ~upper ~obj kind =
    if lower > upper then
      invalid_arg
        (Printf.sprintf "Lp.Builder.add_var %s: lower %g > upper %g" name lower
           upper);
    let v = { v_name = name; lower; upper; obj; kind } in
    b.bvars <- v :: b.bvars;
    let j = b.nv in
    b.nv <- j + 1;
    j

  let add_binary b ~name ~obj =
    add_var b ~name ~lower:0.0 ~upper:1.0 ~obj Integer

  (* Sum duplicate indices and drop exact zeros, so downstream solvers can
     rely on clean sparse rows. *)
  let normalize_coeffs nv name coeffs =
    let tbl = Hashtbl.create (List.length coeffs) in
    List.iter
      (fun (j, a) ->
        if j < 0 || j >= nv then
          invalid_arg
            (Printf.sprintf "Lp.Builder.add_row %s: variable index %d out of range"
               name j);
        let prev = Option.value (Hashtbl.find_opt tbl j) ~default:0.0 in
        Hashtbl.replace tbl j (prev +. a))
      coeffs;
    let entries =
      Hashtbl.fold (fun j a acc -> if a = 0.0 then acc else (j, a) :: acc) tbl []
    in
    let arr = Array.of_list entries in
    Array.sort (fun (j1, _) (j2, _) -> Int.compare j1 j2) arr;
    arr

  let add_row b ~name coeffs sense rhs =
    let coeffs = normalize_coeffs b.nv name coeffs in
    b.brows <- { r_name = name; sense; rhs; coeffs } :: b.brows;
    b.nr <- b.nr + 1

  let var_count b = b.nv
  let row_count b = b.nr

  let finish b =
    {
      vars = Array.of_list (List.rev b.bvars);
      rows = Array.of_list (List.rev b.brows);
    }
end
