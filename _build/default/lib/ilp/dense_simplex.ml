type status = Optimal of float * float array | Infeasible | Unbounded

(* Standard-form conversion: shift x := l + x' with x' >= 0, emit upper
   bounds as explicit rows, make every rhs nonnegative, add a slack per Le
   row, a surplus per Ge row, and a Big-M artificial for Ge/Eq rows. *)
let solve (lp : Lp.t) =
  let n = Lp.nvars lp in
  Array.iter
    (fun (v : Lp.var) ->
      if v.lower = neg_infinity || v.upper = infinity then
        invalid_arg "Dense_simplex.solve: variable bounds must be finite")
    lp.vars;
  let shift = Array.map (fun (v : Lp.var) -> v.lower) lp.vars in
  (* Collect rows as (dense coeffs, sense, rhs) with rhs adjusted by the
     shift; append the upper-bound rows. *)
  let rows = ref [] in
  Array.iter
    (fun (row : Lp.row) ->
      let dense = Array.make n 0.0 in
      Array.iter (fun (j, a) -> dense.(j) <- a) row.coeffs;
      let adj =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun j a -> a *. shift.(j)) dense)
      in
      rows := (dense, row.sense, row.rhs -. adj) :: !rows)
    lp.rows;
  Array.iteri
    (fun j (v : Lp.var) ->
      let dense = Array.make n 0.0 in
      dense.(j) <- 1.0;
      rows := (dense, Lp.Le, v.upper -. v.lower) :: !rows)
    lp.vars;
  let rows = Array.of_list (List.rev !rows) in
  let m = Array.length rows in
  (* Normalise senses so every rhs is >= 0. *)
  let rows =
    Array.map
      (fun (dense, sense, rhs) ->
        if rhs >= 0.0 then (dense, sense, rhs)
        else
          let flipped =
            match sense with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq
          in
          (Array.map (fun a -> -.a) dense, flipped, -.rhs))
      rows
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, sense, _) ->
        match sense with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, sense, _) ->
        match sense with Lp.Ge | Lp.Eq -> acc + 1 | Lp.Le -> acc)
      0 rows
  in
  let total = n + n_slack + n_art in
  let tab = Array.make_matrix m (total + 1) 0.0 in
  let basis = Array.make m 0 in
  let max_abs_cost =
    Array.fold_left (fun acc (v : Lp.var) -> Float.max acc (Float.abs v.obj)) 1.0
      lp.vars
  in
  let big_m = 1e6 *. max_abs_cost in
  let cost = Array.make total 0.0 in
  Array.iteri (fun j (v : Lp.var) -> cost.(j) <- v.obj) lp.vars;
  let slack_at = ref n and art_at = ref (n + n_slack) in
  Array.iteri
    (fun i (dense, sense, rhs) ->
      Array.blit dense 0 tab.(i) 0 n;
      tab.(i).(total) <- rhs;
      (match sense with
      | Lp.Le ->
        tab.(i).(!slack_at) <- 1.0;
        basis.(i) <- !slack_at;
        incr slack_at
      | Lp.Ge ->
        tab.(i).(!slack_at) <- -1.0;
        incr slack_at;
        tab.(i).(!art_at) <- 1.0;
        cost.(!art_at) <- big_m;
        basis.(i) <- !art_at;
        incr art_at
      | Lp.Eq ->
        tab.(i).(!art_at) <- 1.0;
        cost.(!art_at) <- big_m;
        basis.(i) <- !art_at;
        incr art_at);
      ignore sense)
    rows;
  (* Reduced cost row: z_j - c_j maintained explicitly. *)
  let zrow = Array.make (total + 1) 0.0 in
  let recompute_zrow () =
    for j = 0 to total do
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        acc := !acc +. (cost.(basis.(i)) *. tab.(i).(j))
      done;
      zrow.(j) <- !acc -. (if j < total then cost.(j) else 0.0)
    done
  in
  recompute_zrow ();
  let tol = 1e-7 in
  let rec iterate count bland =
    if count > 20_000 then Unbounded (* cycling safeguard; unreachable in tests *)
    else begin
      let entering = ref (-1) in
      (if bland then begin
         (try
            for j = 0 to total - 1 do
              if zrow.(j) > tol then begin
                entering := j;
                raise Exit
              end
            done
          with Exit -> ())
       end
       else begin
         let best = ref tol in
         for j = 0 to total - 1 do
           if zrow.(j) > !best then begin
             best := zrow.(j);
             entering := j
           end
         done
       end);
      if !entering < 0 then begin
        (* Optimal tableau; check artificials. *)
        let art_active = ref false in
        for i = 0 to m - 1 do
          if basis.(i) >= n + n_slack && tab.(i).(total) > 1e-6 then
            art_active := true
        done;
        if !art_active then Infeasible
        else begin
          let x = Array.copy shift in
          for i = 0 to m - 1 do
            if basis.(i) < n then x.(basis.(i)) <- x.(basis.(i)) +. tab.(i).(total)
          done;
          Optimal (Lp.objective_value lp x, x)
        end
      end
      else begin
        let q = !entering in
        let leave = ref (-1) and best_ratio = ref infinity in
        for i = 0 to m - 1 do
          if tab.(i).(q) > tol then begin
            let ratio = tab.(i).(total) /. tab.(i).(q) in
            if
              ratio < !best_ratio -. 1e-12
              || (ratio < !best_ratio +. 1e-12
                 && !leave >= 0
                 && basis.(i) < basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then Unbounded
        else begin
          let r = !leave in
          let piv = tab.(r).(q) in
          for j = 0 to total do
            tab.(r).(j) <- tab.(r).(j) /. piv
          done;
          for i = 0 to m - 1 do
            if i <> r && tab.(i).(q) <> 0.0 then begin
              let f = tab.(i).(q) in
              for j = 0 to total do
                tab.(i).(j) <- tab.(i).(j) -. (f *. tab.(r).(j))
              done
            end
          done;
          let f = zrow.(q) in
          for j = 0 to total do
            zrow.(j) <- zrow.(j) -. (f *. tab.(r).(j))
          done;
          basis.(r) <- q;
          iterate (count + 1) (count > 5_000)
        end
      end
    end
  in
  iterate 0 false
