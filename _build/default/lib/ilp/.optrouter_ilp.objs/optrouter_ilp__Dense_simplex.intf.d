lib/ilp/dense_simplex.mli: Lp
