lib/ilp/lp_file.mli: Format Lp Result
