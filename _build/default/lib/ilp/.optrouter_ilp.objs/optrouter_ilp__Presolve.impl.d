lib/ilp/presolve.ml: Array Float Fun List Lp Printf
