lib/ilp/lp.ml: Array Float Format Fun Hashtbl Int List Option Printf
