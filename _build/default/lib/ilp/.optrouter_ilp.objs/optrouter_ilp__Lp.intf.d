lib/ilp/lp.mli: Format
