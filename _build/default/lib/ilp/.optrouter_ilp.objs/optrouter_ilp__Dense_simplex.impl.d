lib/ilp/dense_simplex.ml: Array Float List Lp
