lib/ilp/milp.ml: Array Float List Logs Lp Option Presolve Simplex Sys
