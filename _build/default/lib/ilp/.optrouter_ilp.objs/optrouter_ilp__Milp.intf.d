lib/ilp/milp.mli: Lp
