lib/ilp/simplex.ml: Array Float Int List Lp Option Printf Sys
