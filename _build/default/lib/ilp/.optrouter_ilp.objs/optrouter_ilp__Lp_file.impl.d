lib/ilp/lp_file.ml: Array Float Format Hashtbl List Lp Option Printf Result String
