lib/ilp/simplex.mli: Lp Result
