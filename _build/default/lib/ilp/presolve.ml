type mapping = {
  n_original : int;
  keep : int array;  (** reduced index -> original index *)
  fixed : (int * float) list;  (** original index -> pinned value *)
  offset : float;
  rows_removed : int;
}

type result = Reduced of Lp.t * mapping | Infeasible of string

let removed m = (List.length m.fixed, m.rows_removed)
let objective_offset m = m.offset

let project m x_original =
  Array.map (fun o -> x_original.(o)) m.keep

let restore m x_reduced =
  let x = Array.make m.n_original 0.0 in
  Array.iteri (fun r o -> x.(o) <- x_reduced.(r)) m.keep;
  List.iter (fun (o, v) -> x.(o) <- v) m.fixed;
  x

(* Working state: mutable bounds plus an alive flag per variable/row. *)
type work = {
  lp : Lp.t;
  lo : float array;
  up : float array;
  var_alive : bool array;
  row_alive : bool array;
  mutable changed : bool;
}

let feq a b = Float.abs (a -. b) <= 1e-12

let round_integer_bounds (w : work) j =
  match w.lp.vars.(j).Lp.kind with
  | Lp.Continuous -> ()
  | Lp.Integer ->
    if w.lo.(j) > neg_infinity then w.lo.(j) <- Float.ceil (w.lo.(j) -. 1e-9);
    if w.up.(j) < infinity then w.up.(j) <- Float.floor (w.up.(j) +. 1e-9)

(* Remaining activity of a row over alive variables, treating dead
   (fixed) variables as constants folded into [rhs]. Returns the live
   coefficients and the adjusted rhs. *)
let live_row (w : work) (row : Lp.row) =
  let rhs = ref row.Lp.rhs in
  let live = ref [] in
  Array.iter
    (fun (j, a) ->
      if w.var_alive.(j) then live := (j, a) :: !live
      else rhs := !rhs -. (a *. w.lo.(j) (* dead => lo = up = value *)))
    row.Lp.coeffs;
  (List.rev !live, !rhs)

let tighten (w : work) j lo' up' =
  if lo' > w.lo.(j) +. 1e-12 then begin
    w.lo.(j) <- lo';
    w.changed <- true
  end;
  if up' < w.up.(j) -. 1e-12 then begin
    w.up.(j) <- up';
    w.changed <- true
  end;
  round_integer_bounds w j

let pass (w : work) =
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  (* fix variables with equal bounds *)
  for j = 0 to Lp.nvars w.lp - 1 do
    if w.var_alive.(j) then begin
      if w.lo.(j) > w.up.(j) +. 1e-9 then
        fail
          (Printf.sprintf "variable %s has empty domain [%g, %g]"
             w.lp.vars.(j).Lp.v_name w.lo.(j) w.up.(j))
      else if
        w.lo.(j) > neg_infinity && w.up.(j) < infinity && feq w.lo.(j) w.up.(j)
      then begin
        (* normalise the pinned value exactly and retire the variable *)
        w.up.(j) <- w.lo.(j);
        w.var_alive.(j) <- false;
        w.changed <- true
      end
    end
  done;
  (* simplify rows *)
  Array.iteri
    (fun r (row : Lp.row) ->
      if w.row_alive.(r) && !error = None then begin
        let live, rhs = live_row w row in
        match live with
        | [] ->
          let ok =
            match row.Lp.sense with
            | Lp.Le -> 0.0 <= rhs +. 1e-9
            | Lp.Ge -> 0.0 >= rhs -. 1e-9
            | Lp.Eq -> Float.abs rhs <= 1e-9
          in
          if ok then begin
            w.row_alive.(r) <- false;
            w.changed <- true
          end
          else fail (Printf.sprintf "row %s is unsatisfiable" row.Lp.r_name)
        | [ (j, a) ] ->
          (* singleton: turn into a bound and drop the row *)
          let bound = rhs /. a in
          (match (row.Lp.sense, a > 0.0) with
          | Lp.Le, true | Lp.Ge, false -> tighten w j neg_infinity bound
          | Lp.Ge, true | Lp.Le, false -> tighten w j bound infinity
          | Lp.Eq, _ -> tighten w j bound bound);
          w.row_alive.(r) <- false;
          w.changed <- true
        | _ :: _ :: _ -> ()
      end)
    w.lp.rows;
  !error

let presolve (lp : Lp.t) =
  let n = Lp.nvars lp in
  let w =
    {
      lp;
      lo = Array.map (fun (v : Lp.var) -> v.Lp.lower) lp.vars;
      up = Array.map (fun (v : Lp.var) -> v.Lp.upper) lp.vars;
      var_alive = Array.make n true;
      row_alive = Array.make (Lp.nrows lp) true;
      changed = true;
    }
  in
  let error = ref None in
  let guard = ref 0 in
  while w.changed && !error = None && !guard < 100 do
    w.changed <- false;
    incr guard;
    error := pass w
  done;
  match !error with
  | Some msg -> Infeasible msg
  | None ->
    let keep =
      Array.of_list
        (List.filter (fun j -> w.var_alive.(j)) (List.init n Fun.id))
    in
    let reduced_index = Array.make n (-1) in
    Array.iteri (fun r o -> reduced_index.(o) <- r) keep;
    let fixed =
      List.filter_map
        (fun j -> if w.var_alive.(j) then None else Some (j, w.lo.(j)))
        (List.init n Fun.id)
    in
    let offset =
      List.fold_left (fun acc (j, v) -> acc +. (lp.vars.(j).Lp.obj *. v)) 0.0 fixed
    in
    let b = Lp.Builder.create () in
    Array.iter
      (fun o ->
        let v = lp.vars.(o) in
        (* sub-tolerance bound crossings survive the infeasibility check;
           collapse them rather than trip the builder's validation *)
        let lower = Float.min w.lo.(o) w.up.(o) in
        ignore
          (Lp.Builder.add_var b ~name:v.Lp.v_name ~lower ~upper:w.up.(o)
             ~obj:v.Lp.obj v.Lp.kind))
      keep;
    let rows_removed = ref 0 in
    Array.iteri
      (fun r (row : Lp.row) ->
        if not w.row_alive.(r) then incr rows_removed
        else begin
          let live, rhs = live_row w row in
          let coeffs = List.map (fun (j, a) -> (reduced_index.(j), a)) live in
          Lp.Builder.add_row b ~name:row.Lp.r_name coeffs row.Lp.sense rhs
        end)
      lp.rows;
    Reduced
      ( Lp.Builder.finish b,
        { n_original = n; keep; fixed; offset; rows_removed = !rows_removed } )
