(** Reproduction scoreboard: the paper's qualitative claims, checked
    mechanically against measured data.

    Each claim from Section 4.2 (and the Figure 8 discussion) is encoded
    as a predicate over sweep entries / pin-cost series; the harness
    prints one verdict line per claim so a reader can see at a glance
    which observations carry over to the reduced-scale run and which are
    inconclusive (e.g. drowned in solver limits). *)

type verdict =
  | Reproduced
  | Diverged of string  (** the data contradicts the claim *)
  | Inconclusive of string  (** not enough proved data points *)

type finding = { claim : string; verdict : verdict }

(** Claims about a technology's Δcost profiles (Figure 10):
    - SADP rules restricted to upper layers (RULE4, RULE5) barely move
      Δcost;
    - via-restriction rules cause at least as much infeasibility as
      SADP-only rules;
    - the broader the SADP scope, the higher the cost (RULE2 worst among
      RULE2..RULE5);
    - a large share of clips shows zero Δcost under upper-layer rules
      (the paper's pin-cost/routability gap observation). *)
val fig10_findings : Sweep.entry list -> finding list

(** Claims about the pin-cost distributions (Figure 8): top-cost ranges
    barely move with utilisation, and are not design specific. *)
val fig8_findings : Experiments.fig8_series list -> finding list

val pp_finding : Format.formatter -> finding -> unit
val pp_findings : Format.formatter -> finding list -> unit
