(** BEOL rule sweep over clips (the inner loop of Figure 6).

    Each clip is routed optimally under RULE1 to establish the baseline
    cost, then under every requested rule configuration; the result is the
    Δcost profile the paper plots in Figure 10. Following the paper's
    plotting convention, unroutable clips are reported with Δcost = 500
    ({!infeasible_delta}); solver limits are folded into the same bucket
    (and counted separately). *)

type delta =
  | Delta of int  (** cost - cost(RULE1) *)
  | Infeasible
  | Limit  (** solver gave up before proving either way *)

(** The paper's plotting constant for unroutable clips. *)
val infeasible_delta : int

val delta_value : delta -> float

type entry = {
  clip_name : string;
  rule_name : string;
  delta : delta;
  cost : int option;
  base_cost : int;
}

(** [clip_deltas ?config ~tech ~rules clip] routes [clip] under RULE1 and
    each configuration in [rules]. Clips that are unroutable even under
    RULE1 are dropped (returns []). *)
val clip_deltas :
  ?config:Optrouter_core.Optrouter.config ->
  tech:Optrouter_tech.Tech.t ->
  rules:Optrouter_tech.Rules.t list ->
  Optrouter_grid.Clip.t ->
  entry list

(** [series entries] groups by rule and sorts each rule's Δcost values
    ascending (infeasible / limit = 500 landing last), ready for a
    Figure-10 style plot. *)
val series : entry list -> (string * float array) list

(** Count of infeasible clips per rule, as discussed in Section 4.2. *)
val infeasible_counts : entry list -> (string * int) list
