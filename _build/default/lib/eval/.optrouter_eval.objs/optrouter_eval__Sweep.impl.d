lib/eval/sweep.ml: Array Float Hashtbl List Option Optrouter_core Optrouter_grid Optrouter_ilp Optrouter_tech Printf Sys
