lib/eval/experiments.ml: Array Float List Option Optrouter_cells Optrouter_clips Optrouter_core Optrouter_design Optrouter_grid Optrouter_ilp Optrouter_maze Optrouter_tech Printf Sweep
