lib/eval/experiments.mli: Optrouter_clips Optrouter_grid Optrouter_tech Sweep
