lib/eval/scoreboard.ml: Array Experiments Float Format Hashtbl List Option Printf String Sweep
