lib/eval/scoreboard.mli: Experiments Format Sweep
