lib/eval/sweep.mli: Optrouter_core Optrouter_grid Optrouter_tech
