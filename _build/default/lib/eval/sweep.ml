module Clip = Optrouter_grid.Clip
module Rules = Optrouter_tech.Rules
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route

type delta = Delta of int | Infeasible | Limit

let infeasible_delta = 500

let delta_value = function
  | Delta d -> float_of_int d
  | Infeasible | Limit -> float_of_int infeasible_delta

type entry = {
  clip_name : string;
  rule_name : string;
  delta : delta;
  cost : int option;
  base_cost : int;
}

(* Progress trace for long sweeps, enabled by OPTROUTER_PROGRESS=1. *)
let progress_enabled = Sys.getenv_opt "OPTROUTER_PROGRESS" <> None

let progress fmt =
  if progress_enabled then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let clip_deltas ?config ~tech ~rules clip =
  let route r =
    let t0 = Sys.time () in
    let result = Optrouter.route ?config ~tech ~rules:r clip in
    progress "[sweep] %s %s: %s (%.1fs)\n%!" clip.Clip.c_name r.Rules.name
      (match result.Optrouter.verdict with
      | Optrouter.Routed sol ->
        Printf.sprintf "cost %d" sol.Route.metrics.cost
      | Optrouter.Unroutable -> "unroutable"
      | Optrouter.Limit _ -> "limit")
      (Sys.time () -. t0);
    result
  in
  (* The RULE1 baseline gets a triple budget: if it cannot be proved the
     whole clip is dropped, wasting every other solve. *)
  let baseline_config =
    Option.map
      (fun (c : Optrouter.config) ->
        {
          c with
          Optrouter.milp =
            {
              c.Optrouter.milp with
              Optrouter_ilp.Milp.time_limit_s =
                Option.map (fun t -> 3.0 *. t)
                  c.Optrouter.milp.Optrouter_ilp.Milp.time_limit_s;
            };
        })
      config
  in
  let baseline =
    let t0 = Sys.time () in
    let result =
      Optrouter.route ?config:baseline_config ~tech ~rules:(Rules.rule 1) clip
    in
    progress "[sweep] %s RULE1: %s (%.1fs)\n%!" clip.Clip.c_name
      (match result.Optrouter.verdict with
      | Optrouter.Routed sol -> Printf.sprintf "cost %d" sol.Route.metrics.cost
      | Optrouter.Unroutable -> "unroutable"
      | Optrouter.Limit _ -> "limit")
      (Sys.time () -. t0);
    result
  in
  match baseline.Optrouter.verdict with
  | Optrouter.Unroutable | Optrouter.Limit None -> []
  | Optrouter.Limit (Some _) ->
    (* an unproved baseline would poison every delta; skip the clip *)
    []
  | Optrouter.Routed base ->
    let base_cost = base.Route.metrics.cost in
    List.map
      (fun r ->
        let delta, cost =
          match (route r).Optrouter.verdict with
          | Optrouter.Routed sol ->
            (Delta (sol.Route.metrics.cost - base_cost), Some sol.Route.metrics.cost)
          | Optrouter.Unroutable -> (Infeasible, None)
          | Optrouter.Limit (Some sol) -> (Limit, Some sol.Route.metrics.cost)
          | Optrouter.Limit None -> (Limit, None)
        in
        {
          clip_name = clip.Clip.c_name;
          rule_name = r.Rules.name;
          delta;
          cost;
          base_cost;
        })
      rules

let series entries =
  let by_rule = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      if not (Hashtbl.mem by_rule e.rule_name) then order := e.rule_name :: !order;
      let old = Option.value ~default:[] (Hashtbl.find_opt by_rule e.rule_name) in
      Hashtbl.replace by_rule e.rule_name (delta_value e.delta :: old))
    entries;
  List.rev_map
    (fun name ->
      let values = Array.of_list (Hashtbl.find by_rule name) in
      Array.sort Float.compare values;
      (name, values))
    !order

let infeasible_counts entries =
  let by_rule = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      if not (Hashtbl.mem by_rule e.rule_name) then order := e.rule_name :: !order;
      let old = Option.value ~default:0 (Hashtbl.find_opt by_rule e.rule_name) in
      let bump = match e.delta with Infeasible -> 1 | Delta _ | Limit -> 0 in
      Hashtbl.replace by_rule e.rule_name (old + bump))
    entries;
  List.rev_map (fun name -> (name, Hashtbl.find by_rule name)) !order
