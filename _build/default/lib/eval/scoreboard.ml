type verdict = Reproduced | Diverged of string | Inconclusive of string

type finding = { claim : string; verdict : verdict }

(* Per-rule statistics over sweep entries. *)
type stats = {
  total : int;
  solved : int;  (** entries with a proved Δcost *)
  zero : int;  (** proved Δcost = 0 *)
  infeasible : int;
  limits : int;
  mean : float;  (** over proved entries; nan if none *)
}

let stats_of entries rule_name =
  let sel =
    List.filter (fun (e : Sweep.entry) -> e.Sweep.rule_name = rule_name) entries
  in
  let total = List.length sel in
  let solved, zero, infeasible, limits, sum =
    List.fold_left
      (fun (s, z, i, l, sum) (e : Sweep.entry) ->
        match e.Sweep.delta with
        | Sweep.Delta d -> (s + 1, (if d = 0 then z + 1 else z), i, l, sum + d)
        | Sweep.Infeasible -> (s, z, i + 1, l, sum)
        | Sweep.Limit -> (s, z, i, l + 1, sum))
      (0, 0, 0, 0, 0) sel
  in
  {
    total;
    solved;
    zero;
    infeasible;
    limits;
    mean = (if solved = 0 then nan else float_of_int sum /. float_of_int solved);
  }

let have entries rule = stats_of entries rule

(* A rule's "severity" when comparing configurations: proved infeasibility
   counts heavily, proved mean Δcost adds on top. *)
let severity s =
  if s.solved + s.infeasible = 0 then None
  else
    Some
      ((float_of_int s.infeasible *. 500.0)
       +. (if s.solved = 0 then 0.0 else s.mean *. float_of_int s.solved))

let fig10_findings entries =
  let rules =
    List.sort_uniq String.compare
      (List.map (fun (e : Sweep.entry) -> e.Sweep.rule_name) entries)
  in
  let s = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace s r (have entries r)) rules;
  let get r = Hashtbl.find_opt s r in
  let findings = ref [] in
  let add claim verdict = findings := { claim; verdict } :: !findings in
  (* 1. upper-layer SADP rules barely move Δcost *)
  (match (get "RULE4", get "RULE5") with
  | Some r4, Some r5 when r4.solved + r5.solved > 0 ->
    let solved_mean =
      let vals =
        List.concat_map
          (fun (st : stats) -> if st.solved > 0 then [ st.mean ] else [])
          [ r4; r5 ]
      in
      List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
    in
    if solved_mean <= 2.0 && r4.infeasible + r5.infeasible = 0 then
      add "SADP >= M4/M5 has little Δcost impact" Reproduced
    else
      add "SADP >= M4/M5 has little Δcost impact"
        (Diverged
           (Printf.sprintf "mean Δcost %.1f, %d infeasible" solved_mean
              (r4.infeasible + r5.infeasible)))
  | _, _ ->
    add "SADP >= M4/M5 has little Δcost impact"
      (Inconclusive "RULE4/RULE5 not evaluated"));
  (* 2. via restrictions cause at least as much infeasibility as
     SADP-only rules *)
  let infeasibility names =
    let counted =
      List.filter_map
        (fun r -> Option.map (fun st -> st.infeasible) (get r))
        names
    in
    if counted = [] then None else Some (List.fold_left ( + ) 0 counted)
  in
  (match
     (infeasibility [ "RULE6"; "RULE9" ], infeasibility [ "RULE3"; "RULE4"; "RULE5" ])
   with
  | Some via, Some sadp ->
    if via >= sadp then
      add "via restrictions drive infeasibility at least as hard as SADP"
        Reproduced
    else
      add "via restrictions drive infeasibility at least as hard as SADP"
        (Diverged (Printf.sprintf "via %d < sadp %d unroutable" via sadp))
  | _, _ ->
    add "via restrictions drive infeasibility at least as hard as SADP"
      (Inconclusive "via-restriction rules not evaluated"));
  (* 3. broader SADP scope is at least as severe (RULE2 worst of 2..5) *)
  (match
     List.filter_map
       (fun r -> Option.bind (get r) severity)
       [ "RULE2"; "RULE3"; "RULE4"; "RULE5" ]
   with
  | (_ :: _ :: _ as sevs) -> (
    let worst = List.fold_left Float.max neg_infinity sevs in
    match Option.bind (get "RULE2") severity with
    | Some s2 when s2 >= worst -. 1e-6 ->
      add "SADP on every layer (RULE2) is the most severe SADP rule" Reproduced
    | Some s2 ->
      add "SADP on every layer (RULE2) is the most severe SADP rule"
        (Diverged (Printf.sprintf "RULE2 severity %.0f < worst %.0f" s2 worst))
    | None ->
      add "SADP on every layer (RULE2) is the most severe SADP rule"
        (Inconclusive "RULE2 hit solver limits on every clip"))
  | _ ->
    add "SADP on every layer (RULE2) is the most severe SADP rule"
      (Inconclusive "not enough SADP rules evaluated"));
  (* 4. many clips show zero Δcost under upper-layer rules (the pin-cost
     vs switchbox-routability gap) *)
  (match get "RULE4" with
  | Some r4 when r4.solved > 0 ->
    let share = float_of_int r4.zero /. float_of_int r4.solved in
    if share >= 0.4 then
      add "a large share of clips is untouched by upper-layer rules" Reproduced
    else
      add "a large share of clips is untouched by upper-layer rules"
        (Diverged (Printf.sprintf "only %.0f%% at zero Δcost" (share *. 100.0)))
  | Some _ | None ->
    add "a large share of clips is untouched by upper-layer rules"
      (Inconclusive "RULE4 not proved on any clip"));
  List.rev !findings

let fig8_findings (series : Experiments.fig8_series list) =
  let range (s : Experiments.fig8_series) =
    let a = s.Experiments.top_costs in
    if Array.length a = 0 then None
    else Some (a.(Array.length a - 1), a.(0))
  in
  let ranges = List.filter_map range series in
  let findings = ref [] in
  let add claim verdict = findings := { claim; verdict } :: !findings in
  (match ranges with
  | [] | [ _ ] -> add "pin-cost ranges overlap across versions" (Inconclusive "fewer than two series")
  | (lo0, hi0) :: rest ->
    (* every pair of ranges must overlap *)
    let overlap =
      List.for_all
        (fun (lo, hi) -> lo <= hi0 && lo0 <= hi)
        rest
    in
    if overlap then add "pin-cost ranges overlap across versions" Reproduced
    else add "pin-cost ranges overlap across versions" (Diverged "disjoint ranges found"));
  (match ranges with
  | [] -> add "medians vary little with utilisation" (Inconclusive "no data")
  | _ ->
    let medians =
      List.filter_map
        (fun (s : Experiments.fig8_series) ->
          let a = s.Experiments.top_costs in
          if Array.length a = 0 then None else Some a.(Array.length a / 2))
        series
    in
    let lo = List.fold_left Float.min infinity medians in
    let hi = List.fold_left Float.max neg_infinity medians in
    if hi -. lo <= 0.3 *. hi then
      add "medians vary little with utilisation" Reproduced
    else
      add "medians vary little with utilisation"
        (Diverged (Printf.sprintf "median spread %.1f..%.1f" lo hi)));
  List.rev !findings

let pp_finding ppf f =
  let tag, detail =
    match f.verdict with
    | Reproduced -> ("REPRODUCED ", "")
    | Diverged why -> ("DIVERGED   ", " — " ^ why)
    | Inconclusive why -> ("INCONCLUSIVE", " — " ^ why)
  in
  Format.fprintf ppf "  [%s] %s%s" tag f.claim detail

let pp_findings ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) findings
