type t = { lo : int; hi : int }

let make lo hi = { lo; hi }
let of_endpoints a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let is_empty i = i.lo > i.hi
let length i = if is_empty i then 0 else i.hi - i.lo
let cardinal i = if is_empty i then 0 else i.hi - i.lo + 1
let contains i x = i.lo <= x && x <= i.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi
let inter a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let distance a b =
  if overlaps a b then 0 else if a.hi < b.lo then b.lo - a.hi else a.lo - b.hi

let expand i d = { lo = i.lo - d; hi = i.hi + d }
let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf i = Format.fprintf ppf "[%d, %d]" i.lo i.hi
