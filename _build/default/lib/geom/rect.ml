type t = { xlo : int; ylo : int; xhi : int; yhi : int }

let make ~xlo ~ylo ~xhi ~yhi =
  assert (xlo <= xhi && ylo <= yhi);
  { xlo; ylo; xhi; yhi }

let of_corners (a : Point.t) (b : Point.t) =
  { xlo = min a.x b.x; ylo = min a.y b.y; xhi = max a.x b.x; yhi = max a.y b.y }

let width r = r.xhi - r.xlo
let height r = r.yhi - r.ylo
let area r = width r * height r
let center r = Point.make ((r.xlo + r.xhi) / 2) ((r.ylo + r.yhi) / 2)
let x_interval r = Interval.make r.xlo r.xhi
let y_interval r = Interval.make r.ylo r.yhi

let contains_point r (p : Point.t) =
  r.xlo <= p.x && p.x <= r.xhi && r.ylo <= p.y && p.y <= r.yhi

let contains outer inner =
  outer.xlo <= inner.xlo && inner.xhi <= outer.xhi && outer.ylo <= inner.ylo
  && inner.yhi <= outer.yhi

let overlaps a b =
  a.xlo <= b.xhi && b.xlo <= a.xhi && a.ylo <= b.yhi && b.ylo <= a.yhi

let inter a b =
  if overlaps a b then
    Some
      {
        xlo = max a.xlo b.xlo;
        ylo = max a.ylo b.ylo;
        xhi = min a.xhi b.xhi;
        yhi = min a.yhi b.yhi;
      }
  else None

let hull a b =
  {
    xlo = min a.xlo b.xlo;
    ylo = min a.ylo b.ylo;
    xhi = max a.xhi b.xhi;
    yhi = max a.yhi b.yhi;
  }

let distance a b =
  let dx = Interval.distance (x_interval a) (x_interval b) in
  let dy = Interval.distance (y_interval a) (y_interval b) in
  dx + dy

let expand r d =
  { xlo = r.xlo - d; ylo = r.ylo - d; xhi = r.xhi + d; yhi = r.yhi + d }

let translate r (p : Point.t) =
  { xlo = r.xlo + p.x; ylo = r.ylo + p.y; xhi = r.xhi + p.x; yhi = r.yhi + p.y }

let equal a b = a.xlo = b.xlo && a.ylo = b.ylo && a.xhi = b.xhi && a.yhi = b.yhi

let pp ppf r =
  Format.fprintf ppf "{x:[%d, %d] y:[%d, %d]}" r.xlo r.xhi r.ylo r.yhi
