type t = { x : int; y : int }

let make x y = { x; y }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let chebyshev a b = max (abs (a.x - b.x)) (abs (a.y - b.y))
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  match Int.compare a.x b.x with 0 -> Int.compare a.y b.y | c -> c

let pp ppf p = Format.fprintf ppf "(%d, %d)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
