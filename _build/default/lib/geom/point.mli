(** Integer 2-D points, in nanometers.

    All layout geometry in this project is expressed on an integer nanometer
    grid, which keeps comparisons exact and avoids floating-point drift in
    design-rule arithmetic. *)

type t = { x : int; y : int }

val make : int -> int -> t

(** Coordinate-wise addition and subtraction. *)

val add : t -> t -> t
val sub : t -> t -> t

(** [manhattan a b] is the L1 distance |ax - bx| + |ay - by|. *)
val manhattan : t -> t -> int

(** [chebyshev a b] is the Linf distance max(|ax - bx|, |ay - by|). *)
val chebyshev : t -> t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
