(** Axis-aligned integer rectangles, in nanometers.

    A rectangle is the closed region [\[xlo, xhi\] x \[ylo, yhi\]]. Pin
    shapes, cell outlines and clip windows are all rectangles. *)

type t = { xlo : int; ylo : int; xhi : int; yhi : int }

(** [make ~xlo ~ylo ~xhi ~yhi] requires [xlo <= xhi] and [ylo <= yhi]. *)
val make : xlo:int -> ylo:int -> xhi:int -> yhi:int -> t

(** [of_corners a b] builds the bounding rectangle of two points. *)
val of_corners : Point.t -> Point.t -> t

val width : t -> int
val height : t -> int

(** Area of the closed region, [width * height]. A degenerate (zero width or
    height) rectangle has area 0. *)
val area : t -> int

val center : t -> Point.t
val x_interval : t -> Interval.t
val y_interval : t -> Interval.t
val contains_point : t -> Point.t -> bool

(** [contains outer inner] is true when [inner] lies entirely in [outer]. *)
val contains : t -> t -> bool

val overlaps : t -> t -> bool
val inter : t -> t -> t option
val hull : t -> t -> t

(** [distance a b] is the L1 gap between two rectangles: 0 when they overlap
    or touch, otherwise the sum of the x-gap and y-gap. This matches the
    spacing notion used by the pin-cost metric. *)
val distance : t -> t -> int

val expand : t -> int -> t
val translate : t -> Point.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
