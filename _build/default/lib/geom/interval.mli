(** Closed integer intervals [lo, hi].

    An interval with [lo > hi] is empty. Used for track ranges and 1-D
    projections of rectangles. *)

type t = { lo : int; hi : int }

val make : int -> int -> t

(** [of_endpoints a b] orders its arguments, so the result is never empty. *)
val of_endpoints : int -> int -> t

val is_empty : t -> bool

(** Length of the closed interval; 0 when empty, [hi - lo] otherwise. *)
val length : t -> int

(** Number of integer points contained; 0 when empty. *)
val cardinal : t -> int

val contains : t -> int -> bool
val overlaps : t -> t -> bool

(** [inter a b] is the intersection (possibly empty). *)
val inter : t -> t -> t

(** [hull a b] is the smallest interval containing both. *)
val hull : t -> t -> t

(** [distance a b] is the gap between two disjoint intervals, 0 if they
    overlap or touch. *)
val distance : t -> t -> int

val expand : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
