(** Metal layers of the BEOL stack.

    Layers are identified by their metal number (M2, M3, ...). Routing in
    this project starts at M2 — M1 is reserved for intra-cell pin shapes, as
    in the paper. The preferred direction alternates: even metal numbers are
    horizontal, odd are vertical. *)

type direction = Horizontal | Vertical

(** Patterning technology of a layer: litho-etch-litho-etch (bidirectional
    mask-friendly) or self-aligned double patterning, which activates the
    end-of-line rules of Section 3.2. *)
type patterning = Lele | Sadp

type t = {
  metal : int;  (** metal number, >= 1 *)
  dir : direction;
  pitch : int;  (** track pitch in nm *)
  patterning : patterning;
}

(** [direction_of_metal m] is the project-wide convention: even metal
    numbers route horizontally, odd vertically. *)
val direction_of_metal : int -> direction

val is_horizontal : t -> bool
val pp_direction : Format.formatter -> direction -> unit
val pp_patterning : Format.formatter -> patterning -> unit
val pp : Format.formatter -> t -> unit
