type direction = Horizontal | Vertical
type patterning = Lele | Sadp

type t = { metal : int; dir : direction; pitch : int; patterning : patterning }

let direction_of_metal m = if m mod 2 = 0 then Horizontal else Vertical
let is_horizontal t = t.dir = Horizontal

let pp_direction ppf = function
  | Horizontal -> Format.pp_print_string ppf "H"
  | Vertical -> Format.pp_print_string ppf "V"

let pp_patterning ppf = function
  | Lele -> Format.pp_print_string ppf "LELE"
  | Sadp -> Format.pp_print_string ppf "SADP"

let pp ppf t =
  Format.fprintf ppf "M%d(%a, %dnm, %a)" t.metal pp_direction t.dir t.pitch
    pp_patterning t.patterning
