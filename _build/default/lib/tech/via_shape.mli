(** Via shape catalogue (Section 3.2, "Via shape").

    A via shape occupies [width x height] routing-grid sites on both the
    lower and upper layer. Larger shapes are given a {e lower} cost so that
    the optimizer prefers them when routability allows — the paper's proxy
    for better manufacturability. *)

type t = {
  name : string;
  width : int;  (** extent in grid columns, >= 1 *)
  height : int;  (** extent in grid rows, >= 1 *)
  cost : int;  (** cost charged when a route uses one instance *)
}

(** The default single-site via; its cost is the [via_weight] of the
    routing cost (4 in all paper experiments). *)
val single : cost:int -> t

(** 2x1 bar via and 2x2 square via used by the via-shape study; costs are
    relative to [single ~cost]. *)
val bar_2x1 : cost:int -> t

val square_2x2 : cost:int -> t
val sites : t -> (int * int) list
val pp : Format.formatter -> t -> unit
