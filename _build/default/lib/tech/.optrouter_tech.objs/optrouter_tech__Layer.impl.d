lib/tech/layer.ml: Format
