lib/tech/rules.ml: Format Layer List Printf String
