lib/tech/via_shape.ml: Format Fun List
