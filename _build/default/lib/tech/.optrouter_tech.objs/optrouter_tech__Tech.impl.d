lib/tech/tech.ml: Format Layer List Rules String
