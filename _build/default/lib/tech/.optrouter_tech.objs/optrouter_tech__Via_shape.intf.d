lib/tech/via_shape.mli: Format
