lib/tech/tech.mli: Format Layer Rules
