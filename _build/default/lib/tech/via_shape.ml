type t = { name : string; width : int; height : int; cost : int }

let single ~cost = { name = "V1x1"; width = 1; height = 1; cost }

(* Larger vias are cheaper than the single-cut via so the ILP picks them
   when congestion allows (paper: "lower cost values for larger via
   shapes"). Costs stay positive so a via is never free. *)
let bar_2x1 ~cost = { name = "V2x1"; width = 2; height = 1; cost = max 1 (cost - 1) }
let square_2x2 ~cost = { name = "V2x2"; width = 2; height = 2; cost = max 1 (cost - 2) }

let sites t =
  List.concat_map
    (fun dx -> List.init t.height (fun dy -> (dx, dy)))
    (List.init t.width Fun.id)

let pp ppf t = Format.fprintf ppf "%s(%dx%d, cost %d)" t.name t.width t.height t.cost
