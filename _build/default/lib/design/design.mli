(** Synthetic placed designs (the paper's Table 2 testbed).

    The paper implements an open-source AES core and an ARM Cortex M0 with
    Design Compiler and Encounter at several utilisations, then harvests
    routing clips from the routed result. Here the same role is played by a
    seeded synthetic design: instances drawn from the technology's cell
    library with a realistic mix, placed in rows at a target utilisation,
    and connected by a locality-biased random netlist (nets mostly connect
    nearby cells, fanout is geometrically distributed). Two profiles mimic
    the paper's designs: [aes] (~13.5K instances, high logic share) and
    [m0] (~9.2K instances, higher flop share).

    Everything is deterministic given the seed. *)

type profile = {
  pr_name : string;
  instance_count : int;
  period_ns : float;  (** carried as metadata only; there is no timer *)
  flop_share : float;  (** fraction of sequential cells *)
}

val aes : profile
val m0 : profile

type instance = {
  i_name : string;
  cell : Optrouter_cells.Cells.t;
  col : int;  (** leftmost placement column *)
  band : int;  (** placement row index *)
  flipped : bool;  (** odd rows are mirrored vertically, as in real rows *)
}

type conn = { inst : int; pin : string }

type dnet = { dn_name : string; driver : conn; loads : conn list }

type t = {
  d_name : string;
  tech : Optrouter_tech.Tech.t;
  profile : profile;
  target_util : float;
  width_cols : int;
  bands : int;
  instances : instance array;
  nets : dnet array;
  achieved_util : float;
}

(** [generate ?seed profile ~util tech] builds a placed design. [util] is
    the row utilisation in (0, 1]. *)
val generate : ?seed:int -> profile -> util:float -> Optrouter_tech.Tech.t -> t

(** Global (column, row) track coordinates of a connection's access points.
    Rows count M2 tracks from the chip's bottom; flipped bands mirror the
    in-cell offsets. *)
val access_positions : t -> conn -> (int * int) list

(** Physical pin shape of a connection in global nm coordinates. *)
val pin_shape : t -> conn -> Optrouter_geom.Rect.t

(** Chip extent in tracks: (columns, M2 rows). *)
val extent : t -> int * int

(** One row of Table 2: name, period, instance count, utilisation. *)
val summary_row : t -> string * float * int * float

val pp : Format.formatter -> t -> unit
