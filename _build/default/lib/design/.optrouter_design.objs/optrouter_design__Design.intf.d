lib/design/design.mli: Format Optrouter_cells Optrouter_geom Optrouter_tech
