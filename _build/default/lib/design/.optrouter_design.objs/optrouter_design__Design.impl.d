lib/design/design.ml: Array Float Format Fun Hashtbl List Optrouter_cells Optrouter_geom Optrouter_tech Printf Random String
