lib/report/report.mli:
