lib/report/report.ml: Array Buffer Float List Printf String
